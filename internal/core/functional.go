package core

import (
	"fmt"

	"repro/internal/env"
	"repro/internal/evolve"
	"repro/internal/gene"
	"repro/internal/hw/adam"
	"repro/internal/hw/eve"
)

// FunctionalSystem runs the GeneSys loop through the *functional*
// hardware models end to end: inference executes on the simulated
// systolic array (adam.Compiled) and reproduction streams through the
// functional PE pipeline (eve.HardwareReproducer), with genomes held at
// the quantized 64-bit gene-word precision throughout. Where System
// accounts what the chip would cost, FunctionalSystem computes what
// the chip would compute.
type FunctionalSystem struct {
	Workload evolve.Workload
	Pop      []*gene.Genome

	envName  string
	repro    *eve.HardwareReproducer
	executor *adam.Executor
	gen      int
	seed     uint64
	// History records per-generation best/mean fitness.
	History []FunctionalGenStats
}

// FunctionalGenStats is one functional generation's outcome.
type FunctionalGenStats struct {
	Generation  int
	MaxFitness  float64
	MeanFitness float64
	Solved      bool
	// ArrayCycles is the simulated systolic-array activity this
	// generation; PEGenes the genes streamed through the PEs during
	// the following reproduction.
	ArrayCycles int64
	PEGenes     int
}

// NewFunctional builds the functional system for a workload.
func NewFunctional(workload string, popSize int, seed uint64) (*FunctionalSystem, error) {
	w, err := evolve.WorkloadByName(workload)
	if err != nil {
		return nil, err
	}
	probe, err := env.New(w.EnvName)
	if err != nil {
		return nil, err
	}
	if popSize <= 0 {
		popSize = 150
	}
	arr, err := adam.NewArray(32, 32)
	if err != nil {
		return nil, err
	}
	s := &FunctionalSystem{
		Workload: w,
		envName:  w.EnvName,
		repro:    eve.NewHardwareReproducer(seed),
		executor: adam.NewExecutor(arr),
		seed:     seed,
	}
	// Tuned for the quantized, drop-on-split hardware semantics.
	s.repro.PE.PerturbProb = 0.25
	s.repro.PE.PerturbScale = 1.0
	s.repro.PE.AddNodeProb = 0.002
	s.repro.PE.AddConnProb = 0.01

	// Seed population: minimal topology at hardware precision.
	in, out := probe.ObservationSize(), probe.ActionSize()
	for i := 0; i < popSize; i++ {
		g := gene.NewGenome(int64(i))
		for n := 0; n < in; n++ {
			g.PutNode(gene.NewNode(int32(n), gene.Input))
		}
		for n := 0; n < out; n++ {
			g.PutNode(gene.NewNode(int32(in+n), gene.Output))
		}
		for a := 0; a < in; a++ {
			for b := 0; b < out; b++ {
				g.PutConn(gene.NewConn(int32(a), int32(in+b), 0))
			}
		}
		s.Pop = append(s.Pop, g)
	}
	return s, nil
}

// RunGeneration evaluates every genome on the simulated array and
// reproduces the next generation through the functional PEs.
func (s *FunctionalSystem) RunGeneration() (FunctionalGenStats, error) {
	e, err := env.New(s.envName)
	if err != nil {
		return FunctionalGenStats{}, err
	}
	shaper := s.Workload.NewShaper()
	cyclesBefore := s.executor.ArrayCycles

	st := FunctionalGenStats{Generation: s.gen}
	var sum float64
	for i, g := range s.Pop {
		fit, err := s.evaluate(e, shaper, g)
		if err != nil {
			return st, err
		}
		g.Fitness = fit
		sum += fit
		if i == 0 || fit > st.MaxFitness {
			st.MaxFitness = fit
		}
	}
	st.MeanFitness = sum / float64(len(s.Pop))
	st.Solved = st.MaxFitness >= s.Workload.Target
	st.ArrayCycles = s.executor.ArrayCycles - cyclesBefore

	if !st.Solved {
		genesBefore := s.repro.Stats.CyclesStreamed
		s.Pop = s.repro.NextGeneration(s.Pop, len(s.Pop))
		st.PEGenes = s.repro.Stats.CyclesStreamed - genesBefore
		s.gen++
	}
	s.History = append(s.History, st)
	return st, nil
}

// evaluate runs the workload's episodes for one genome on the array.
func (s *FunctionalSystem) evaluate(e env.Env, shaper evolve.Shaper, g *gene.Genome) (float64, error) {
	compiled, err := s.executor.Compile(g)
	if err != nil {
		// The hardware pipeline has no cycle checker; a cyclic child
		// simply cannot be scheduled and scores zero.
		return 0, nil
	}
	episodes := s.Workload.Episodes
	if episodes < 1 {
		episodes = 1
	}
	var total float64
	for ep := 0; ep < episodes; ep++ {
		seed := s.seed ^ uint64(s.gen)<<40 ^ uint64(g.ID)<<8 ^ uint64(ep)
		obs := e.Reset(seed)
		shaper.Reset()
		steps := 0
		for {
			act, err := compiled.Feed(obs)
			if err != nil {
				return 0, fmt.Errorf("functional inference: %w", err)
			}
			var r float64
			var done bool
			obs, r, done = e.Step(act)
			shaper.Observe(obs, r)
			steps++
			if done {
				break
			}
		}
		total += shaper.Fitness(e, steps)
	}
	return total / float64(episodes), nil
}

// Run executes generations until solved or the budget ends.
func (s *FunctionalSystem) Run(maxGenerations int) (bool, error) {
	for g := 0; g < maxGenerations; g++ {
		st, err := s.RunGeneration()
		if err != nil {
			return false, err
		}
		if st.Solved {
			return true, nil
		}
	}
	return false, nil
}
