package core_test

import (
	"fmt"
	"log"

	"repro/internal/core"
)

// ExampleSystem shows the minimal closed loop: build a system for a
// workload, run generations, inspect results. With HardwareInLoop the
// same call also accounts each generation on the simulated SoC.
func ExampleSystem() {
	sys, err := core.New(core.Config{
		Workload:   "cartpole",
		Seed:       7,
		Population: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	sum, err := sys.Run(20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("solved:", sum.Solved)
	// Output:
	// solved: true
}

// ExampleSystem_hardwareInLoop runs one generation with the chip model
// attached and reads the hardware ledger.
func ExampleSystem_hardwareInLoop() {
	sys, err := core.New(core.Config{
		Workload:       "mountaincar",
		Seed:           5,
		Population:     30,
		HardwareInLoop: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.RunGeneration()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("has hardware report:", res.HasHW)
	fmt.Println("spent energy:", res.HW.TotalEnergyPJ > 0)
	fmt.Println("fits on-chip:", !res.HW.Spilled)
	// Output:
	// has hardware report: true
	// spent energy: true
	// fits on-chip: true
}
