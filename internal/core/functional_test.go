package core

import "testing"

func TestFunctionalSystemConstruction(t *testing.T) {
	if _, err := NewFunctional("pong", 10, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
	s, err := NewFunctional("cartpole", 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Pop) != 20 {
		t.Fatalf("population %d", len(s.Pop))
	}
	// Default population size.
	d, err := NewFunctional("cartpole", 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pop) != 150 {
		t.Fatalf("default population %d", len(d.Pop))
	}
}

// TestFunctionalSystemSolvesCartPole is the capstone claim: the whole
// loop — quantized genomes, systolic-array inference, PE-pipeline
// reproduction — learns the task end to end.
func TestFunctionalSystemSolvesCartPole(t *testing.T) {
	s, err := NewFunctional("cartpole", 64, 23)
	if err != nil {
		t.Fatal(err)
	}
	solved, err := s.Run(30)
	if err != nil {
		t.Fatal(err)
	}
	first := s.History[0].MaxFitness
	last := s.History[len(s.History)-1].MaxFitness
	if !solved && last <= first {
		t.Fatalf("functional system made no progress: %v -> %v", first, last)
	}
	// The hardware actually worked for its result.
	var cycles int64
	genes := 0
	for _, st := range s.History {
		cycles += st.ArrayCycles
		genes += st.PEGenes
	}
	if cycles <= 0 {
		t.Fatal("no systolic-array cycles simulated")
	}
	if len(s.History) > 1 && genes <= 0 {
		t.Fatal("no genes streamed through the PEs")
	}
	t.Logf("functional cartpole: gen0=%v final=%v solved=%v (%d array cycles, %d PE genes)",
		first, last, solved, cycles, genes)
}

func TestFunctionalGenomesStayValid(t *testing.T) {
	s, err := NewFunctional("mountaincar", 24, 9)
	if err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 3; g++ {
		if _, err := s.RunGeneration(); err != nil {
			t.Fatal(err)
		}
		for _, genome := range s.Pop {
			if err := genome.Validate(); err != nil {
				t.Fatalf("generation %d: %v", g, err)
			}
		}
	}
}

func TestFunctionalMaxFitnessHandlesNegatives(t *testing.T) {
	// LunarLander's early generations score negative across the board;
	// MaxFitness must be the true maximum, not clamped at zero.
	s, err := NewFunctional("lunarlander", 12, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.RunGeneration()
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxFitness == 0 && st.MeanFitness < -1 {
		t.Fatalf("max fitness clamped at zero while mean is %v", st.MeanFitness)
	}
	if st.MaxFitness < st.MeanFitness {
		t.Fatalf("max %v below mean %v", st.MaxFitness, st.MeanFitness)
	}
}

func TestFunctionalDeterminism(t *testing.T) {
	run := func() float64 {
		s, err := NewFunctional("cartpole", 16, 31)
		if err != nil {
			t.Fatal(err)
		}
		st, err := s.RunGeneration()
		if err != nil {
			t.Fatal(err)
		}
		return st.MeanFitness
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("functional loop non-deterministic: %v vs %v", a, b)
	}
}
