package core

import (
	"testing"

	"repro/internal/neat"
)

func TestNewRequiresWorkload(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(Config{Workload: "chess"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestAlgorithmOnlyRun(t *testing.T) {
	sys, err := New(Config{Workload: "cartpole", Seed: 3, Population: 50})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := sys.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Generations == 0 {
		t.Fatal("no generations ran")
	}
	if sum.BestFitness <= 0 {
		t.Fatalf("best fitness %v", sum.BestFitness)
	}
	if sum.TotalCycles != 0 {
		t.Fatal("cycles accounted without hardware in loop")
	}
	if len(sys.History) != sum.Generations {
		t.Fatal("history length mismatch")
	}
	t.Logf("cartpole: solved=%v gens=%d best=%.1f", sum.Solved, sum.Generations, sum.BestFitness)
}

func TestHardwareInLoopRun(t *testing.T) {
	sys, err := New(Config{
		Workload: "mountaincar", Seed: 5, Population: 30, HardwareInLoop: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.SoC() == nil {
		t.Fatal("no chip attached")
	}
	res, err := sys.RunGeneration()
	if err != nil {
		t.Fatal(err)
	}
	if !res.HasHW {
		t.Fatal("no hardware report")
	}
	if res.HW.TotalCycles <= 0 || res.HW.TotalEnergyPJ <= 0 {
		t.Fatalf("empty hardware account: %+v", res.HW)
	}
	if res.HW.Inference.ComputeCycles <= 0 || res.HW.Evolution.TotalCycles <= 0 {
		t.Fatal("phase accounting missing")
	}
	sum := sys.Summary()
	if sum.TotalCycles != res.HW.TotalCycles {
		t.Fatal("summary does not aggregate hardware cycles")
	}
}

func TestCustomNEATConfig(t *testing.T) {
	ncfg := neat.DefaultConfig(1, 1)
	ncfg.PopulationSize = 20
	ncfg.AddNodeProb = 0
	ncfg.AddConnProb = 0
	sys, err := New(Config{Workload: "cartpole", Seed: 1, NEAT: &ncfg})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunGeneration(); err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Runner().Pop.Genomes); got != 20 {
		t.Fatalf("population %d", got)
	}
	// No structural mutation: genes per genome must stay at the seed
	// topology size (4 inputs + 1 output + 4 conns = 9).
	for _, g := range sys.Runner().Pop.Genomes {
		if g.NumGenes() > 9 {
			t.Fatalf("structure mutated despite zero probabilities: %d genes", g.NumGenes())
		}
	}
}

func TestSummaryBestFitnessHandlesNegatives(t *testing.T) {
	sys, err := New(Config{Workload: "lunarlander", Seed: 13, Population: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RunGeneration(); err != nil {
		t.Fatal(err)
	}
	sum := sys.Summary()
	// Early lunarlander generations are usually all-negative; the
	// summary must report the real maximum, not a zero clamp.
	if sum.BestFitness != sys.History[0].Stats.MaxFitness {
		t.Fatalf("summary best %v != generation max %v",
			sum.BestFitness, sys.History[0].Stats.MaxFitness)
	}
}

func TestDeterministicSystem(t *testing.T) {
	run := func() float64 {
		sys, err := New(Config{Workload: "cartpole", Seed: 11, Population: 30})
		if err != nil {
			t.Fatal(err)
		}
		sum, err := sys.Run(3)
		if err != nil {
			t.Fatal(err)
		}
		return sum.BestFitness
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
