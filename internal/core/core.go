// Package core is the public facade of the GeneSys reproduction: one
// type, System, that wires the NEAT population, an environment
// workload, and (optionally) the cycle-level GeneSys SoC model into the
// closed learning loop of Fig. 1(b) — ADAM inferring against the
// environment, EvE evolving the population, generation after
// generation.
//
// Typical use:
//
//	sys, err := core.New(core.Config{Workload: "cartpole", Seed: 1})
//	...
//	summary, err := sys.Run(100)
//
// Every example and command-line tool in this repository is built on
// this API; the experiment generators (internal/experiments) drive the
// same underlying packages directly.
package core

import (
	"context"
	"fmt"

	"repro/internal/evolve"
	"repro/internal/hw/adam"
	"repro/internal/hw/energy"
	"repro/internal/hw/hwsim"
	"repro/internal/hw/soc"
	"repro/internal/neat"
	"repro/internal/network"
	"repro/internal/trace"
)

// Config configures a System. Zero values select paper defaults.
type Config struct {
	// Workload names the task (see evolve.WorkloadNames).
	Workload string
	// Seed is the run's base seed.
	Seed uint64
	// Population overrides NEAT's population size (default 150, the
	// paper's setting).
	Population int
	// NEAT optionally replaces the whole algorithm configuration;
	// when nil, neat.DefaultConfig with Population applies.
	NEAT *neat.Config
	// HardwareInLoop attaches the GeneSys SoC model: every generation
	// is additionally accounted on the simulated chip.
	HardwareInLoop bool
	// SoC overrides the chip design point (default energy.DefaultSoC).
	SoC *energy.SoCConfig
	// Parallelism caps evaluation workers (0 = GOMAXPROCS).
	Parallelism int
	// Sink, when set, receives one structured hwsim.Record per
	// generation. With HardwareInLoop the record's report is a "gen"
	// tree holding the algorithm stats ("gen/evolve") next to the full
	// per-generation chip counter tree ("gen/soc"); without hardware it
	// is the algorithm tree alone.
	Sink hwsim.Sink
}

// GenerationResult is one generation's outcome: the algorithm-level
// statistics and, with HardwareInLoop, the chip-level account.
type GenerationResult struct {
	Stats evolve.GenStats
	// HW is valid only when the System runs with hardware in the loop.
	HW    soc.GenerationReport
	HasHW bool
}

// Summary describes a completed run.
type Summary struct {
	Workload    string
	Solved      bool
	Generations int
	BestFitness float64
	// Hardware totals (zero without HardwareInLoop).
	TotalCycles   int64
	TotalSeconds  float64
	TotalEnergyPJ float64
}

// System is a configured GeneSys learning loop.
type System struct {
	cfg    Config
	runner *evolve.Runner
	trace  *trace.Trace
	chip   *soc.SoC
	soCfg  energy.SoCConfig

	// History holds one result per completed generation.
	History []GenerationResult
}

// New builds a System.
func New(cfg Config) (*System, error) {
	if cfg.Workload == "" {
		return nil, fmt.Errorf("core: no workload given (have %v)", evolve.WorkloadNames())
	}
	ncfg := neat.DefaultConfig(1, 1)
	if cfg.NEAT != nil {
		ncfg = *cfg.NEAT
	}
	if cfg.Population > 0 {
		ncfg.PopulationSize = cfg.Population
	}
	r, err := evolve.NewRunner(cfg.Workload, ncfg, cfg.Seed)
	if err != nil {
		return nil, err
	}
	r.Parallelism = cfg.Parallelism
	s := &System{cfg: cfg, runner: r}
	if cfg.HardwareInLoop {
		s.soCfg = energy.DefaultSoC()
		if cfg.SoC != nil {
			s.soCfg = *cfg.SoC
		}
		s.chip = soc.New(s.soCfg)
		s.trace = &trace.Trace{}
		r.SetRecorder(s.trace)
	} else if cfg.Sink != nil {
		// No chip to snapshot: the runner streams the algorithm tree.
		r.Sink = cfg.Sink
	}
	return s, nil
}

// Runner exposes the underlying evolution runner for advanced use
// (custom recorders, direct population access).
func (s *System) Runner() *evolve.Runner { return s.runner }

// SoC exposes the chip model when hardware is in the loop (nil
// otherwise).
func (s *System) SoC() *soc.SoC { return s.chip }

// Workload returns the configured workload definition.
func (s *System) Workload() evolve.Workload { return s.runner.Workload }

// RunGeneration executes one full generation: population evaluation,
// optional chip accounting, and reproduction.
func (s *System) RunGeneration() (GenerationResult, error) {
	var jobs []adam.Job
	var footprint int
	if s.chip != nil {
		// Snapshot the population before reproduction replaces it —
		// these are the genomes ADAM runs this generation.
		footprint = s.runner.Pop.FootprintBytes()
		jobs = make([]adam.Job, 0, len(s.runner.Pop.Genomes))
		for _, g := range s.runner.Pop.Genomes {
			n, err := network.New(g)
			if err != nil {
				return GenerationResult{}, err
			}
			jobs = append(jobs, adam.Job{Plan: n.BuildPlan(false)})
		}
	}

	st, err := s.runner.Step(context.Background())
	if err != nil {
		return GenerationResult{}, err
	}
	res := GenerationResult{Stats: st}
	if s.chip != nil {
		// Charge each genome its measured mean episode length.
		steps := 1
		if n := len(jobs); n > 0 && st.EnvSteps > 0 {
			steps = int(st.EnvSteps) / n
			if steps < 1 {
				steps = 1
			}
		}
		for i := range jobs {
			jobs[i].Steps = steps
		}
		// Reset the chip's counter tree so the snapshot below is this
		// generation's ledger, not a running total.
		s.chip.Reset()
		res.HW = s.chip.RunGeneration(jobs, s.trace.Last(), footprint)
		res.HasHW = true
		if s.cfg.Sink != nil {
			s.cfg.Sink.Record(hwsim.Record{
				Workload:   s.cfg.Workload,
				Generation: st.Generation,
				Report: hwsim.Report{
					Name:     "gen",
					Children: []hwsim.Report{st.CounterReport(), s.chip.Snapshot()},
				},
			})
		}
	}
	s.History = append(s.History, res)
	return res, nil
}

// Run executes up to maxGenerations, stopping when the workload's
// target fitness is reached.
func (s *System) Run(maxGenerations int) (Summary, error) {
	for g := 0; g < maxGenerations; g++ {
		res, err := s.RunGeneration()
		if err != nil {
			return s.Summary(), err
		}
		if res.Stats.Solved {
			break
		}
	}
	return s.Summary(), nil
}

// Summary aggregates the run so far.
func (s *System) Summary() Summary {
	sum := Summary{
		Workload:    s.cfg.Workload,
		Generations: len(s.History),
	}
	for i, res := range s.History {
		if i == 0 || res.Stats.MaxFitness > sum.BestFitness {
			sum.BestFitness = res.Stats.MaxFitness
		}
		sum.Solved = sum.Solved || res.Stats.Solved
		if res.HasHW {
			sum.TotalCycles += res.HW.TotalCycles
			sum.TotalSeconds += res.HW.TotalSeconds
			sum.TotalEnergyPJ += res.HW.TotalEnergyPJ
		}
	}
	return sum
}
