package network

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gene"
	"repro/internal/neat"
	"repro/internal/rng"
)

// xorGenome hand-builds a 2-2-1 network computing XOR-ish structure.
func xorGenome() *gene.Genome {
	g := gene.NewGenome(1)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Input))
	out := gene.NewNode(2, gene.Output)
	out.Activation = gene.ActIdentity
	g.PutNode(out)
	h1 := gene.NewNode(3, gene.Hidden)
	h1.Activation = gene.ActReLU
	g.PutNode(h1)
	h2 := gene.NewNode(4, gene.Hidden)
	h2.Activation = gene.ActReLU
	g.PutNode(h2)
	g.PutConn(gene.NewConn(0, 3, 1))
	g.PutConn(gene.NewConn(1, 3, 1))
	g.PutConn(gene.NewConn(0, 4, 1))
	g.PutConn(gene.NewConn(1, 4, 1))
	// h1 detects sum>=1, h2 detects sum>=2 via biases.
	h1.Bias = 0
	h2.Bias = -1
	g.PutNode(h1)
	g.PutNode(h2)
	g.PutConn(gene.NewConn(3, 2, 1))
	g.PutConn(gene.NewConn(4, 2, -2))
	return g
}

func TestXORNetwork(t *testing.T) {
	n, err := New(xorGenome())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{0, 0}, 0},
		{[]float64{0, 1}, 1},
		{[]float64{1, 0}, 1},
		{[]float64{1, 1}, 0},
	}
	for _, c := range cases {
		got, err := n.Feed(c.in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got[0]-c.want) > 1e-9 {
			t.Fatalf("xor(%v) = %v, want %v", c.in, got[0], c.want)
		}
	}
}

func TestFeedDimensionCheck(t *testing.T) {
	n, _ := New(xorGenome())
	if _, err := n.Feed([]float64{1}); err == nil {
		t.Fatal("accepted wrong observation width")
	}
}

func TestCycleRejected(t *testing.T) {
	g := gene.NewGenome(1)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Output))
	g.PutNode(gene.NewNode(2, gene.Hidden))
	g.PutNode(gene.NewNode(3, gene.Hidden))
	g.PutConn(gene.NewConn(0, 2, 1))
	g.PutConn(gene.NewConn(2, 3, 1))
	g.PutConn(gene.NewConn(3, 2, 1)) // cycle 2->3->2
	g.PutConn(gene.NewConn(3, 1, 1))
	if _, err := New(g); err == nil {
		t.Fatal("cyclic genome accepted")
	}
}

func TestDisabledConnectionsIgnored(t *testing.T) {
	g := gene.NewGenome(1)
	g.PutNode(gene.NewNode(0, gene.Input))
	out := gene.NewNode(1, gene.Output)
	out.Activation = gene.ActIdentity
	g.PutNode(out)
	c := gene.NewConn(0, 1, 5)
	c.Enabled = false
	g.PutConn(c)
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := n.Feed([]float64{1})
	if got[0] != 0 {
		t.Fatalf("disabled connection contributed: output %v", got[0])
	}
	if n.NumEdges() != 0 {
		t.Fatalf("NumEdges counts disabled conns: %d", n.NumEdges())
	}
}

func TestBiasResponseAndAggregation(t *testing.T) {
	g := gene.NewGenome(1)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Input))
	out := gene.NewNode(2, gene.Output)
	out.Activation = gene.ActIdentity
	out.Aggregation = gene.AggMax
	out.Bias = 0.5
	out.Response = 2
	g.PutNode(out)
	g.PutConn(gene.NewConn(0, 2, 1))
	g.PutConn(gene.NewConn(1, 2, 1))
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := n.Feed([]float64{3, 7})
	// identity(0.5 + 2*max(3,7)) = 14.5
	if math.Abs(got[0]-14.5) > 1e-9 {
		t.Fatalf("output = %v, want 14.5", got[0])
	}
}

func TestOrphanOutputGetsBias(t *testing.T) {
	g := gene.NewGenome(1)
	g.PutNode(gene.NewNode(0, gene.Input))
	out := gene.NewNode(1, gene.Output)
	out.Activation = gene.ActIdentity
	out.Bias = 0.25
	g.PutNode(out)
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := n.Feed([]float64{42})
	if got[0] != 0.25 {
		t.Fatalf("orphan output = %v, want bias 0.25", got[0])
	}
}

func TestActivationFunctions(t *testing.T) {
	cases := []struct {
		f    gene.Activation
		x    float64
		want float64
		tol  float64
	}{
		{gene.ActSigmoid, 0, 0.5, 1e-9},
		{gene.ActSigmoid, 100, 1, 1e-6},
		{gene.ActSigmoid, -100, 0, 1e-6},
		{gene.ActTanh, 0, 0, 1e-9},
		{gene.ActReLU, -3, 0, 0},
		{gene.ActReLU, 3, 3, 0},
		{gene.ActIdentity, -1.5, -1.5, 0},
		{gene.ActAbs, -2, 2, 0},
		{gene.ActClamped, 4, 1, 0},
		{gene.ActClamped, -4, -1, 0},
		{gene.ActGauss, 0, 1, 1e-9},
		{gene.ActSin, 0, 0, 1e-9},
	}
	for _, c := range cases {
		if got := Activate(c.f, c.x); math.Abs(got-c.want) > c.tol {
			t.Errorf("%v(%v) = %v, want %v", c.f, c.x, got, c.want)
		}
	}
}

func TestActivationFiniteEverywhere(t *testing.T) {
	for f := gene.Activation(0); int(f) < gene.NumActivations; f++ {
		for _, x := range []float64{-1e9, -100, -1, 0, 1, 100, 1e9} {
			v := Activate(f, x)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v(%v) = %v", f, x, v)
			}
		}
	}
}

func TestAggregationFunctions(t *testing.T) {
	xs := []float64{2, -1, 3}
	cases := []struct {
		f    gene.Aggregation
		want float64
	}{
		{gene.AggSum, 4},
		{gene.AggProduct, -6},
		{gene.AggMax, 3},
		{gene.AggMin, -1},
		{gene.AggMean, 4.0 / 3},
	}
	for _, c := range cases {
		if got := Aggregate(c.f, xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v(%v) = %v, want %v", c.f, xs, got, c.want)
		}
	}
	for f := gene.Aggregation(0); int(f) < gene.NumAggregations; f++ {
		if got := Aggregate(f, nil); got != 0 {
			t.Errorf("%v(empty) = %v, want 0", f, got)
		}
	}
}

func TestPlanCoversAllEdges(t *testing.T) {
	n, _ := New(xorGenome())
	p := n.BuildPlan(false)
	nz := 0
	for _, s := range p.Stages {
		nz += s.NonZero
	}
	if nz != n.NumEdges() {
		t.Fatalf("plan covers %d edges, network has %d", nz, n.NumEdges())
	}
	if p.TotalMACs() < nz {
		t.Fatal("dense MACs below edge count")
	}
	if d := p.MeanDensity(); d <= 0 || d > 1 {
		t.Fatalf("mean density %v", d)
	}
}

func TestPlanMaterializedWeights(t *testing.T) {
	n, _ := New(xorGenome())
	p := n.BuildPlan(true)
	for si, s := range p.Stages {
		if len(s.Weights) != s.Rows {
			t.Fatalf("stage %d: %d weight rows for %d rows", si, len(s.Weights), s.Rows)
		}
		nz := 0
		for _, row := range s.Weights {
			if len(row) != s.Cols {
				t.Fatalf("stage %d: row width %d, want %d", si, len(row), s.Cols)
			}
			for _, w := range row {
				if w != 0 {
					nz++
				}
			}
		}
		if nz != s.NonZero {
			t.Fatalf("stage %d: %d materialized non-zeros, recorded %d", si, nz, s.NonZero)
		}
	}
}

// Property: every genome NEAT evolves builds into a network whose Feed
// returns finite outputs of the right width. This is the core
// algorithm↔inference integration invariant.
func TestQuickEvolvedGenomesAlwaysEvaluable(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := neat.DefaultConfig(3, 2)
		cfg.PopulationSize = 20
		pop, err := neat.NewPopulation(cfg, seed)
		if err != nil {
			return false
		}
		r := rng.New(seed ^ 0xABCD)
		for gen := 0; gen < 4; gen++ {
			for _, g := range pop.Genomes {
				g.Fitness = r.Float64()
			}
			if _, err := pop.Epoch(); err != nil {
				return false
			}
		}
		obs := []float64{0.1, -0.5, 2}
		for _, g := range pop.Genomes {
			n, err := New(g)
			if err != nil {
				t.Logf("genome %d: %v", g.ID, err)
				return false
			}
			out, err := n.Feed(obs)
			if err != nil || len(out) != 2 {
				return false
			}
			for _, v := range out {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkStatsOnEvolvedGenome(t *testing.T) {
	cfg := neat.DefaultConfig(4, 2)
	cfg.PopulationSize = 10
	pop, _ := neat.NewPopulation(cfg, 77)
	r := rng.New(7)
	for gen := 0; gen < 6; gen++ {
		for _, g := range pop.Genomes {
			g.Fitness = r.Float64()
		}
		if _, err := pop.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	g := pop.Genomes[0]
	n, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if n.NumInputs() != 4 || n.NumOutputs() != 2 {
		t.Fatalf("io mismatch: %d/%d", n.NumInputs(), n.NumOutputs())
	}
	if n.NumVertices() != len(g.Nodes) {
		t.Fatalf("vertex count %d vs %d node genes", n.NumVertices(), len(g.Nodes))
	}
	if n.Depth() < 1 {
		t.Fatal("network has no layers")
	}
}

func BenchmarkFeedSmall(b *testing.B) {
	n, _ := New(xorGenome())
	obs := []float64{1, 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Feed(obs); err != nil {
			b.Fatal(err)
		}
	}
}
