package network

import (
	"fmt"
	"math"

	"repro/internal/gene"
)

// program is the compiled, immutable form of one genome's phenotype:
// the irregular DAG flattened into contiguous CSR-style arrays in
// evaluation order. Building it is the "Genome to NN Topology" step of
// the GeneSys walkthrough (Fig. 6, step 1); it is immutable after the
// compile pass, so one program can back any number of Network instances
// (and be shared across generations through a Cache — the software
// mirror of the paper's genome-level reuse).
type program struct {
	// Per-vertex attributes, indexed by position in evaluation
	// (topological) order: inputs first, then hidden by layer, outputs
	// wherever their dependencies place them.
	ids  []int32
	bias []float64
	resp []float64
	act  []gene.Activation
	agg  []gene.Aggregation

	// Fan-in in CSR form: the in-edges of the vertex at position p are
	// (edgePos[k], edgeW[k]) for k in [edgeOff[p], edgeOff[p+1]), in the
	// genome's (src, dst) connection order — the order the previous
	// map-based evaluator summed in, so outputs stay byte-identical.
	edgeOff []int32
	edgePos []int32
	edgeW   []float64

	// inputs and outputs are positions of the io nodes in genome
	// (ascending id) order.
	inputs  []int32
	outputs []int32

	// evalPos lists the non-input vertex positions in update order;
	// layerEnd[l] is the end index (into evalPos) of layer l — the unit
	// the vectorize routine packs (Plan).
	evalPos  []int32
	layerEnd []int32

	macs int

	// topoHash fingerprints the evaluation structure (everything above
	// except ids and the parameter arrays bias/resp/edgeW) — the batch
	// engine's lane-compatibility grouping key. Set once by compile.
	topoHash uint64
}

// Network is an evaluable instance of a compiled phenotype: a shared
// immutable program plus this instance's private activation and output
// buffers. Instances are cheap (two float slices), so a compile cache
// can hand out a fresh instance per evaluation while sharing the
// program.
type Network struct {
	prog   *program
	values []float64
	out    []float64
}

// instantiate wraps the program with fresh evaluation state.
func (p *program) instantiate() *Network {
	return &Network{
		prog:   p,
		values: make([]float64, len(p.ids)),
		out:    make([]float64, len(p.outputs)),
	}
}

// New builds the phenotype for a genome with a one-shot Builder. It
// fails if the genome's enabled connections contain a cycle (the
// paper's inference model is a DAG) or if the genome fails validation.
// Callers compiling many genomes should reuse a Builder (or a Cache)
// instead.
func New(g *gene.Genome) (*Network, error) {
	return new(Builder).Build(g)
}

// Program returns the shared immutable program backing this instance.
func (n *Network) Program() Program { return Program{p: n.prog} }

// NumInputs returns the observation width the network expects.
func (n *Network) NumInputs() int { return len(n.prog.inputs) }

// NumOutputs returns the action width the network produces.
func (n *Network) NumOutputs() int { return len(n.prog.outputs) }

// NumVertices returns the node count.
func (n *Network) NumVertices() int { return len(n.prog.ids) }

// NumEdges returns the enabled connection count — the MAC count of one
// inference pass, the quantity Table II compares against DQN.
func (n *Network) NumEdges() int { return n.prog.macs }

// Depth returns the number of vertex-update layers.
func (n *Network) Depth() int { return len(n.prog.layerEnd) }

// Feed evaluates the network on one observation, returning the output
// activations in output-node order. The returned slice is reused across
// calls; copy it (or use FeedInto) if it must survive the next Feed.
func (n *Network) Feed(obs []float64) ([]float64, error) {
	if err := n.FeedInto(n.out, obs); err != nil {
		return nil, err
	}
	return n.out, nil
}

// FeedInto evaluates the network on one observation, writing the output
// activations into dst (which must have length NumOutputs). It performs
// no heap allocations, so the evaluation inner loop can run
// allocation-free with a caller-owned destination.
func (n *Network) FeedInto(dst, obs []float64) error {
	p := n.prog
	if len(obs) != len(p.inputs) {
		return fmt.Errorf("network: observation width %d, want %d", len(obs), len(p.inputs))
	}
	if len(dst) != len(p.outputs) {
		return fmt.Errorf("network: destination width %d, want %d", len(dst), len(p.outputs))
	}
	vals := n.values
	for i, pos := range p.inputs {
		vals[pos] = obs[i]
	}
	for _, pos := range p.evalPos {
		lo, hi := p.edgeOff[pos], p.edgeOff[pos+1]
		var a float64
		if f := p.agg[pos]; f == gene.AggSum {
			// Sum fast path: accumulate inline, in edge order — the
			// same float additions, in the same order, as summing the
			// old per-vertex product slice. Slicing to a shared length
			// lets the compiler drop the weight bounds check.
			src := p.edgePos[lo:hi]
			w := p.edgeW[lo:hi]
			w = w[:len(src)]
			for k, sp := range src {
				a += vals[sp] * w[k]
			}
		} else {
			a = aggregateEdges(f, vals, p.edgePos[lo:hi], p.edgeW[lo:hi])
		}
		pre := p.bias[pos] + p.resp[pos]*a
		if p.act[pos] == gene.ActSigmoid {
			// Inlined Activate sigmoid case (same ops, same order) —
			// sigmoid is the default gene and dominates evolved
			// populations, and the call overhead is measurable at this
			// loop's scale.
			vals[pos] = 1 / (1 + math.Exp(-clampExp(5*pre)))
		} else {
			vals[pos] = Activate(p.act[pos], pre)
		}
	}
	for i, pos := range p.outputs {
		dst[i] = vals[pos]
	}
	return nil
}

// aggregateEdges is the non-sum aggregation path of FeedInto: it
// combines the weighted inputs in edge order without materializing
// them, matching Aggregate over the product list exactly (an empty
// fan-in aggregates to 0, so the vertex outputs Activate(bias)).
func aggregateEdges(f gene.Aggregation, vals []float64, pos []int32, w []float64) float64 {
	if len(pos) == 0 {
		return 0
	}
	switch f {
	case gene.AggProduct:
		p := 1.0
		for k, sp := range pos {
			p *= vals[sp] * w[k]
		}
		return p
	case gene.AggMax:
		m := vals[pos[0]] * w[0]
		for k := 1; k < len(pos); k++ {
			if x := vals[pos[k]] * w[k]; x > m {
				m = x
			}
		}
		return m
	case gene.AggMin:
		m := vals[pos[0]] * w[0]
		for k := 1; k < len(pos); k++ {
			if x := vals[pos[k]] * w[k]; x < m {
				m = x
			}
		}
		return m
	case gene.AggMean:
		var s float64
		for k, sp := range pos {
			s += vals[sp] * w[k]
		}
		return s / float64(len(pos))
	default: // AggSum and unknown ids sum, as Aggregate does
		var s float64
		for k, sp := range pos {
			s += vals[sp] * w[k]
		}
		return s
	}
}

// Values returns the current activation of every vertex (post-Feed),
// keyed by node id. Used by tests and debugging tools.
func (n *Network) Values() map[int32]float64 {
	m := make(map[int32]float64, len(n.prog.ids))
	for i, id := range n.prog.ids {
		m[id] = n.values[i]
	}
	return m
}
