package network

import (
	"fmt"

	"repro/internal/gene"
)

// Network is the phenotype of one genome: an evaluable DAG of vertices.
// Building a Network is the "Genome to NN Topology" step of the GeneSys
// walkthrough (Fig. 6, step 1); evaluating it is the sequence of vertex
// updates ADAM performs.
type Network struct {
	// nodes in evaluation (topological) order: inputs first, then hidden
	// by layer, outputs wherever their dependencies place them.
	order []vertex
	// index maps node id to position in values.
	index map[int32]int
	// inputs and outputs are positions (into values) of the io nodes in
	// genome order.
	inputs  []int
	outputs []int
	// layers groups non-input vertex positions by topological depth —
	// the unit the vectorize routine packs (Plan).
	layers [][]int

	values []float64
	macs   int
}

// vertex is one evaluable node with its resolved fan-in.
type vertex struct {
	id   int32
	kind gene.NodeType
	bias float64
	resp float64
	act  gene.Activation
	agg  gene.Aggregation
	// in holds (source position, weight) pairs for enabled connections.
	in []inEdge
}

type inEdge struct {
	pos    int
	weight float64
}

// New builds the phenotype for a genome. It fails if the genome's
// enabled connections contain a cycle (the paper's inference model is a
// DAG) or if the genome fails validation.
func New(g *gene.Genome) (*Network, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}

	// Layer assignment by longest path from the inputs (Kahn's
	// algorithm over enabled connections).
	depth := make(map[int32]int, len(g.Nodes))
	indeg := make(map[int32]int, len(g.Nodes))
	adj := make(map[int32][]int32)
	for _, c := range g.Conns {
		if !c.Enabled {
			continue
		}
		adj[c.Src] = append(adj[c.Src], c.Dst)
		indeg[c.Dst]++
	}
	var queue []int32
	for _, n := range g.Nodes {
		if indeg[n.NodeID] == 0 {
			queue = append(queue, n.NodeID)
			depth[n.NodeID] = 0
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		processed++
		for _, next := range adj[id] {
			if d := depth[id] + 1; d > depth[next] {
				depth[next] = d
			}
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if processed != len(g.Nodes) {
		return nil, fmt.Errorf("network: genome %d has a cycle among enabled connections", g.ID)
	}

	// Build vertices in (depth, id) order for a deterministic layout.
	n := &Network{index: make(map[int32]int, len(g.Nodes))}
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	byDepth := make([][]gene.Gene, maxDepth+1)
	for _, ng := range g.Nodes {
		d := depth[ng.NodeID]
		byDepth[d] = append(byDepth[d], ng)
	}
	for _, level := range byDepth {
		for _, ng := range level {
			n.index[ng.NodeID] = len(n.order)
			n.order = append(n.order, vertex{
				id:   ng.NodeID,
				kind: ng.Type,
				bias: ng.Bias,
				resp: ng.Response,
				act:  ng.Activation,
				agg:  ng.Aggregation,
			})
		}
	}

	// Resolve fan-in.
	for _, c := range g.Conns {
		if !c.Enabled {
			continue
		}
		dst := &n.order[n.index[c.Dst]]
		dst.in = append(dst.in, inEdge{pos: n.index[c.Src], weight: c.Weight})
		n.macs++
	}

	// IO positions in genome (ascending id) order.
	for _, id := range g.InputIDs() {
		n.inputs = append(n.inputs, n.index[id])
	}
	for _, id := range g.OutputIDs() {
		n.outputs = append(n.outputs, n.index[id])
	}

	// Layer grouping of non-input vertices for the vectorize plan.
	n.layers = make([][]int, 0, maxDepth)
	for d := 1; d <= maxDepth; d++ {
		var layer []int
		for _, ng := range byDepth[d] {
			layer = append(layer, n.index[ng.NodeID])
		}
		if len(layer) > 0 {
			n.layers = append(n.layers, layer)
		}
	}
	// Non-input nodes stuck at depth 0 (no enabled fan-in) still need a
	// vertex update for their bias; give them a pseudo-layer.
	var orphan []int
	for _, ng := range byDepth[0] {
		if ng.Type != gene.Input {
			orphan = append(orphan, n.index[ng.NodeID])
		}
	}
	if len(orphan) > 0 {
		n.layers = append([][]int{orphan}, n.layers...)
	}

	n.values = make([]float64, len(n.order))
	return n, nil
}

// NumInputs returns the observation width the network expects.
func (n *Network) NumInputs() int { return len(n.inputs) }

// NumOutputs returns the action width the network produces.
func (n *Network) NumOutputs() int { return len(n.outputs) }

// NumVertices returns the node count.
func (n *Network) NumVertices() int { return len(n.order) }

// NumEdges returns the enabled connection count — the MAC count of one
// inference pass, the quantity Table II compares against DQN.
func (n *Network) NumEdges() int { return n.macs }

// Depth returns the number of vertex-update layers.
func (n *Network) Depth() int { return len(n.layers) }

// Feed evaluates the network on one observation, returning the output
// activations in output-node order. The returned slice is reused across
// calls; copy it if it must survive the next Feed.
func (n *Network) Feed(obs []float64) ([]float64, error) {
	if len(obs) != len(n.inputs) {
		return nil, fmt.Errorf("network: observation width %d, want %d", len(obs), len(n.inputs))
	}
	for i, pos := range n.inputs {
		n.values[pos] = obs[i]
	}
	var acc []float64
	for _, layer := range n.layers {
		for _, pos := range layer {
			v := &n.order[pos]
			acc = acc[:0]
			for _, e := range v.in {
				acc = append(acc, n.values[e.pos]*e.weight)
			}
			pre := v.bias + v.resp*Aggregate(v.agg, acc)
			n.values[pos] = Activate(v.act, pre)
		}
	}
	out := make([]float64, len(n.outputs))
	for i, pos := range n.outputs {
		out[i] = n.values[pos]
	}
	return out, nil
}

// Values returns the current activation of every vertex (post-Feed),
// keyed by node id. Used by tests and debugging tools.
func (n *Network) Values() map[int32]float64 {
	m := make(map[int32]float64, len(n.order))
	for i, v := range n.order {
		m[v.id] = n.values[i]
	}
	return m
}
