package network

import (
	"sync"

	"repro/internal/gene"
)

// Cache memoizes compiled phenotype programs across generations, keyed
// by the genome's version stamp (gene.Genome.Version). It is the
// software mirror of the paper's genome-level reuse (GLR, §III):
// elites, champions, and unmutated clones carry their parent's stamp,
// so their phenotypes are served from the cache instead of being
// recompiled every generation. Programs are immutable, so a cached
// entry can back concurrent evaluations; Get hands each caller a fresh
// lightweight instance (two float slices) around the shared program.
//
// The zero value is ready to use. Get is safe for concurrent use; Sweep
// must not race with Get (call it between generations).
type Cache struct {
	mu      sync.Mutex
	entries map[int64]*cacheEntry
	hits    int64
	misses  int64
}

type cacheEntry struct {
	prog *program
	// used marks the entry as touched since the last Sweep; Sweep
	// evicts untouched entries (genomes mutated away or culled).
	used bool
}

// Get returns an evaluable instance of the genome's compiled phenotype,
// compiling with b on a miss. Concurrent misses on the same stamp may
// compile twice; both results are identical, so the duplicate work is
// harmless and the window is one generation at most.
func (c *Cache) Get(b *Builder, g *gene.Genome) (*Network, error) {
	v := g.Version()
	c.mu.Lock()
	if e, ok := c.entries[v]; ok {
		e.used = true
		c.hits++
		c.mu.Unlock()
		return e.prog.instantiate(), nil
	}
	c.misses++
	c.mu.Unlock()

	n, err := b.Build(g)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[int64]*cacheEntry)
	}
	c.entries[v] = &cacheEntry{prog: n.prog, used: true}
	c.mu.Unlock()
	return n, nil
}

// GetProgram returns the genome's compiled program as a shared
// immutable handle, compiling with b on a miss. Unlike Get it performs
// no per-call instance allocation — the batch engine's fetch path,
// where lanes are loaded from Programs and scalar state is never built.
func (c *Cache) GetProgram(b *Builder, g *gene.Genome) (Program, error) {
	v := g.Version()
	c.mu.Lock()
	if e, ok := c.entries[v]; ok {
		e.used = true
		c.hits++
		c.mu.Unlock()
		return Program{p: e.prog}, nil
	}
	c.misses++
	c.mu.Unlock()

	p, err := b.compile(g)
	if err != nil {
		return Program{}, err
	}
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[int64]*cacheEntry)
	}
	c.entries[v] = &cacheEntry{prog: p, used: true}
	c.mu.Unlock()
	return Program{p: p}, nil
}

// Sweep evicts every entry not served since the previous Sweep and
// resets the usage marks. Called once per generation, it bounds the
// cache to roughly two generations of live phenotypes: an entry used in
// generation N survives exactly long enough for a clone (elite,
// champion) to hit it in generation N+1.
func (c *Cache) Sweep() {
	c.mu.Lock()
	for v, e := range c.entries {
		if !e.used {
			delete(c.entries, v)
		}
		e.used = false
	}
	c.mu.Unlock()
}

// Reset drops every cached program, releasing the compiled phenotypes
// for collection. The hit/miss counters survive (they describe the
// run, not the live set). Like Sweep it must not race with Get; call
// it only once evaluation has stopped.
func (c *Cache) Reset() {
	c.mu.Lock()
	c.entries = nil
	c.mu.Unlock()
}

// Len returns the number of cached programs.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the cumulative hit and miss counts.
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
