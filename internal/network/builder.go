package network

import (
	"fmt"

	"repro/internal/gene"
)

// Builder compiles genomes into phenotype programs. It owns the compile
// pass's scratch memory (id remap table, Kahn queue, degree and depth
// arrays), so a worker that compiles one genome after another — the
// population-level-parallel evaluation loop — pays no per-genome map or
// queue allocations. A Builder is NOT safe for concurrent use; give
// each worker its own. The zero value is ready to use.
type Builder struct {
	// slot maps node id → dense genome index. Only ids present in the
	// genome being built are ever read (Validate guarantees every
	// connection endpoint exists), so stale entries from earlier builds
	// are harmless and the table never needs clearing.
	slot []int32

	indeg  []int32 // per-vertex enabled fan-in count (consumed by Kahn)
	depth  []int32 // longest-path layer per dense index
	outOff []int32 // CSR offsets of the out-adjacency, len nv+1
	outAdj []int32 // CSR out-neighbors (dense indices)
	fill   []int32 // per-vertex fill cursors for the CSR passes
	queue  []int32 // Kahn worklist
	posOf  []int32 // dense index → final (depth-major) vertex position
	depOff []int32 // per-depth position offsets
}

// grow returns s resized to n, reallocating only when capacity is
// short. Contents are unspecified; callers that need zeros clear it.
func grow(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

// Build compiles the phenotype for a genome. It fails if the genome's
// enabled connections contain a cycle (the paper's inference model is a
// DAG) or if the genome fails validation. The returned Network owns
// fresh evaluation state; the compiled program inside it never aliases
// the Builder's scratch, so it may outlive any number of later Builds.
func (b *Builder) Build(g *gene.Genome) (*Network, error) {
	p, err := b.compile(g)
	if err != nil {
		return nil, err
	}
	return p.instantiate(), nil
}

// Compile compiles the genome and returns the shared immutable Program
// handle without allocating scalar evaluation state — the batch
// engine's entry point for one-off (uncached) compiles.
func (b *Builder) Compile(g *gene.Genome) (Program, error) {
	p, err := b.compile(g)
	if err != nil {
		return Program{}, err
	}
	return Program{p: p}, nil
}

// compile runs the full pass: dense id remap, CSR adjacency, Kahn
// longest-path layering, depth-major vertex placement, and the fan-in
// CSR in final-position space.
func (b *Builder) compile(g *gene.Genome) (*program, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	nv := len(g.Nodes)

	// Dense remap: node id → index in g.Nodes (already sorted by id).
	b.slot = grow(b.slot, int(g.MaxNodeIDIn())+1)
	slot := b.slot
	for i, n := range g.Nodes {
		slot[n.NodeID] = int32(i)
	}

	// Degree counts and out-adjacency CSR over enabled connections.
	b.indeg = grow(b.indeg, nv)
	b.outOff = grow(b.outOff, nv+1)
	clear(b.indeg)
	clear(b.outOff)
	ne := 0
	for _, c := range g.Conns {
		if !c.Enabled {
			continue
		}
		b.outOff[slot[c.Src]+1]++
		b.indeg[slot[c.Dst]]++
		ne++
	}
	for i := 0; i < nv; i++ {
		b.outOff[i+1] += b.outOff[i]
	}
	b.outAdj = grow(b.outAdj, ne)
	b.fill = grow(b.fill, nv)
	clear(b.fill)
	for _, c := range g.Conns {
		if !c.Enabled {
			continue
		}
		s := slot[c.Src]
		b.outAdj[b.outOff[s]+b.fill[s]] = slot[c.Dst]
		b.fill[s]++
	}

	// Layer assignment by longest path from the inputs (Kahn's
	// algorithm over enabled connections).
	b.depth = grow(b.depth, nv)
	clear(b.depth)
	b.queue = b.queue[:0]
	for i := 0; i < nv; i++ {
		if b.indeg[i] == 0 {
			b.queue = append(b.queue, int32(i))
		}
	}
	processed := 0
	for head := 0; head < len(b.queue); head++ {
		i := b.queue[head]
		processed++
		d := b.depth[i] + 1
		for k := b.outOff[i]; k < b.outOff[i+1]; k++ {
			j := b.outAdj[k]
			if d > b.depth[j] {
				b.depth[j] = d
			}
			b.indeg[j]--
			if b.indeg[j] == 0 {
				b.queue = append(b.queue, j)
			}
		}
	}
	if processed != nv {
		return nil, fmt.Errorf("network: genome %d has a cycle among enabled connections", g.ID)
	}
	maxDepth := int32(0)
	for i := 0; i < nv; i++ {
		if b.depth[i] > maxDepth {
			maxDepth = b.depth[i]
		}
	}

	// Vertex placement in (depth, id) order — a stable counting sort,
	// since g.Nodes is already ascending by id. After the placement
	// loop, depOff[d] is the end position of depth d.
	b.depOff = grow(b.depOff, int(maxDepth)+2)
	clear(b.depOff)
	for i := 0; i < nv; i++ {
		b.depOff[b.depth[i]+1]++
	}
	for d := int32(0); d <= maxDepth; d++ {
		b.depOff[d+1] += b.depOff[d]
	}
	b.posOf = grow(b.posOf, nv)
	for i := 0; i < nv; i++ {
		d := b.depth[i]
		b.posOf[i] = b.depOff[d]
		b.depOff[d]++
	}

	// Fill the program's flat per-vertex attribute arrays.
	numIn, numOut := 0, 0
	for _, n := range g.Nodes {
		switch n.Type {
		case gene.Input:
			numIn++
		case gene.Output:
			numOut++
		}
	}
	p := &program{
		ids:     make([]int32, nv),
		bias:    make([]float64, nv),
		resp:    make([]float64, nv),
		act:     make([]gene.Activation, nv),
		agg:     make([]gene.Aggregation, nv),
		edgeOff: make([]int32, nv+1),
		edgePos: make([]int32, ne),
		edgeW:   make([]float64, ne),
		inputs:  make([]int32, 0, numIn),
		outputs: make([]int32, 0, numOut),
		macs:    ne,
	}
	for i, n := range g.Nodes {
		pos := b.posOf[i]
		p.ids[pos] = n.NodeID
		p.bias[pos] = n.Bias
		p.resp[pos] = n.Response
		p.act[pos] = n.Activation
		p.agg[pos] = n.Aggregation
	}
	// IO positions in genome (ascending id) order.
	for i, n := range g.Nodes {
		switch n.Type {
		case gene.Input:
			p.inputs = append(p.inputs, b.posOf[i])
		case gene.Output:
			p.outputs = append(p.outputs, b.posOf[i])
		}
	}

	// Fan-in CSR in final-position space. Connections are visited in
	// genome (src, dst) order, so each vertex's in-edge order — and
	// therefore its summation order — matches the old map-based builder
	// exactly.
	for _, c := range g.Conns {
		if c.Enabled {
			p.edgeOff[b.posOf[slot[c.Dst]]+1]++
		}
	}
	for i := 0; i < nv; i++ {
		p.edgeOff[i+1] += p.edgeOff[i]
	}
	clear(b.fill)
	for _, c := range g.Conns {
		if !c.Enabled {
			continue
		}
		dp := b.posOf[slot[c.Dst]]
		k := p.edgeOff[dp] + b.fill[dp]
		p.edgePos[k] = b.posOf[slot[c.Src]]
		p.edgeW[k] = c.Weight
		b.fill[dp]++
	}

	// Evaluation schedule: non-input vertices stuck at depth 0 (no
	// enabled fan-in) still need a vertex update for their bias; they
	// form a pseudo-layer evaluated first. Layers 1..maxDepth are
	// contiguous position ranges in the depth-major layout.
	p.evalPos = make([]int32, 0, nv-numIn)
	p.layerEnd = make([]int32, 0, int(maxDepth)+1)
	for i, n := range g.Nodes {
		if b.depth[i] == 0 && n.Type != gene.Input {
			p.evalPos = append(p.evalPos, b.posOf[i])
		}
	}
	if len(p.evalPos) > 0 {
		p.layerEnd = append(p.layerEnd, int32(len(p.evalPos)))
	}
	for d := int32(1); d <= maxDepth; d++ {
		start, end := b.depOff[d-1], b.depOff[d]
		if end <= start {
			continue
		}
		for pos := start; pos < end; pos++ {
			p.evalPos = append(p.evalPos, pos)
		}
		p.layerEnd = append(p.layerEnd, int32(len(p.evalPos)))
	}
	p.topoHash = topoHashOf(p)
	return p, nil
}
