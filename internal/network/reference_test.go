package network

import (
	"fmt"
	"testing"

	"repro/internal/gene"
	"repro/internal/rng"
)

// referenceFeed is the pre-compile map-based evaluator, kept verbatim as
// the executable specification of the phenotype semantics: Kahn
// longest-path layering over enabled connections, per-vertex fan-in in
// genome (src, dst) connection order, products materialized and then
// aggregated. The compiled kernel must match it bit for bit — the
// determinism guardrail behind the byte-identical results/ files.
type refVertex struct {
	id   int32
	kind gene.NodeType
	bias float64
	resp float64
	act  gene.Activation
	agg  gene.Aggregation
	in   []refEdge
}

type refEdge struct {
	pos    int
	weight float64
}

type refNet struct {
	order   []refVertex
	inputs  []int
	outputs []int
	layers  [][]int
	values  []float64
}

func newRefNet(g *gene.Genome) (*refNet, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	depth := make(map[int32]int, len(g.Nodes))
	indeg := make(map[int32]int, len(g.Nodes))
	adj := make(map[int32][]int32)
	for _, c := range g.Conns {
		if !c.Enabled {
			continue
		}
		adj[c.Src] = append(adj[c.Src], c.Dst)
		indeg[c.Dst]++
	}
	var queue []int32
	for _, n := range g.Nodes {
		if indeg[n.NodeID] == 0 {
			queue = append(queue, n.NodeID)
			depth[n.NodeID] = 0
		}
	}
	processed := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		processed++
		for _, next := range adj[id] {
			if d := depth[id] + 1; d > depth[next] {
				depth[next] = d
			}
			indeg[next]--
			if indeg[next] == 0 {
				queue = append(queue, next)
			}
		}
	}
	if processed != len(g.Nodes) {
		return nil, fmt.Errorf("reference: genome %d has a cycle", g.ID)
	}
	maxDepth := 0
	for _, d := range depth {
		if d > maxDepth {
			maxDepth = d
		}
	}
	n := &refNet{}
	index := make(map[int32]int, len(g.Nodes))
	byDepth := make([][]gene.Gene, maxDepth+1)
	for _, ng := range g.Nodes {
		d := depth[ng.NodeID]
		byDepth[d] = append(byDepth[d], ng)
	}
	for _, level := range byDepth {
		for _, ng := range level {
			index[ng.NodeID] = len(n.order)
			n.order = append(n.order, refVertex{
				id: ng.NodeID, kind: ng.Type,
				bias: ng.Bias, resp: ng.Response,
				act: ng.Activation, agg: ng.Aggregation,
			})
		}
	}
	for _, c := range g.Conns {
		if !c.Enabled {
			continue
		}
		dst := &n.order[index[c.Dst]]
		dst.in = append(dst.in, refEdge{pos: index[c.Src], weight: c.Weight})
	}
	for _, id := range g.InputIDs() {
		n.inputs = append(n.inputs, index[id])
	}
	for _, id := range g.OutputIDs() {
		n.outputs = append(n.outputs, index[id])
	}
	for d := 1; d <= maxDepth; d++ {
		var layer []int
		for _, ng := range byDepth[d] {
			layer = append(layer, index[ng.NodeID])
		}
		if len(layer) > 0 {
			n.layers = append(n.layers, layer)
		}
	}
	var orphan []int
	for _, ng := range byDepth[0] {
		if ng.Type != gene.Input {
			orphan = append(orphan, index[ng.NodeID])
		}
	}
	if len(orphan) > 0 {
		n.layers = append([][]int{orphan}, n.layers...)
	}
	n.values = make([]float64, len(n.order))
	return n, nil
}

func (n *refNet) feed(obs []float64) []float64 {
	for i, pos := range n.inputs {
		n.values[pos] = obs[i]
	}
	var acc []float64
	for _, layer := range n.layers {
		for _, pos := range layer {
			v := &n.order[pos]
			acc = acc[:0]
			for _, e := range v.in {
				acc = append(acc, n.values[e.pos]*e.weight)
			}
			pre := v.bias + v.resp*Aggregate(v.agg, acc)
			n.values[pos] = Activate(v.act, pre)
		}
	}
	out := make([]float64, len(n.outputs))
	for i, pos := range n.outputs {
		out[i] = n.values[pos]
	}
	return out
}

// TestCompiledMatchesReferenceExactly drives randomly evolved genomes
// (hidden nodes, disabled connections, orphan vertices, irregular
// fan-in) through both evaluators and requires exact float64 equality —
// not approximate — on every output of every observation.
func TestCompiledMatchesReferenceExactly(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 8; trial++ {
		inputs := 2 + int(r.Intn(6))
		outputs := 1 + int(r.Intn(3))
		g := evolvedGenome(t, inputs, outputs, 24, 6, uint64(100+trial))
		ref, err := newRefNet(g)
		if err != nil {
			t.Fatalf("trial %d: reference build: %v", trial, err)
		}
		net, err := New(g)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		if net.NumVertices() != len(ref.order) || net.NumInputs() != len(ref.inputs) ||
			net.NumOutputs() != len(ref.outputs) {
			t.Fatalf("trial %d: shape mismatch: compiled %d/%d/%d vs reference %d/%d/%d",
				trial, net.NumVertices(), net.NumInputs(), net.NumOutputs(),
				len(ref.order), len(ref.inputs), len(ref.outputs))
		}
		obs := make([]float64, inputs)
		for step := 0; step < 50; step++ {
			for i := range obs {
				obs[i] = r.Range(-3, 3)
			}
			want := ref.feed(obs)
			got, err := net.Feed(obs)
			if err != nil {
				t.Fatalf("trial %d: feed: %v", trial, err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d step %d output %d: compiled %v != reference %v (genome %d)",
						trial, step, i, got[i], want[i], g.ID)
				}
			}
			// Per-vertex activations must agree too, not just outputs.
			vals := net.Values()
			for _, v := range ref.order {
				if vals[v.id] != ref.values[refIndex(ref, v.id)] {
					t.Fatalf("trial %d step %d: vertex %d activation mismatch", trial, step, v.id)
				}
			}
		}
	}
}

func refIndex(n *refNet, id int32) int {
	for i, v := range n.order {
		if v.id == id {
			return i
		}
	}
	return -1
}

// TestFeedSteadyStateZeroAlloc pins the compiled kernel's allocation
// contract: after instantiation, Feed and FeedInto perform zero heap
// allocations per call — the property the persistent evaluation pool
// depends on.
func TestFeedSteadyStateZeroAlloc(t *testing.T) {
	g := evolvedGenome(t, 6, 3, 48, 10, 11)
	net, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	obs := make([]float64, net.NumInputs())
	dst := make([]float64, net.NumOutputs())
	for i := range obs {
		obs[i] = float64(i) * 0.25
	}
	if _, err := net.Feed(obs); err != nil { // warm up
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(200, func() {
		if err := net.FeedInto(dst, obs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("FeedInto allocates %.1f times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, err := net.Feed(obs); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("Feed allocates %.1f times per call, want 0", n)
	}
}

// TestFeedReusesOutputBuffer documents the Feed contract: the returned
// slice is the instance's buffer, overwritten by the next call.
func TestFeedReusesOutputBuffer(t *testing.T) {
	n, err := New(xorGenome())
	if err != nil {
		t.Fatal(err)
	}
	a, err := n.Feed([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Feed([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Fatal("Feed returned distinct buffers; contract says it reuses one")
	}
}
