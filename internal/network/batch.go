package network

import (
	"fmt"

	"repro/internal/gene"
	"repro/internal/vmath"
)

// Program is an exported handle to one compiled, immutable phenotype
// program. It is what the batch engine schedules: the evolve layer
// fetches Programs from the Cache (no per-evaluation instance
// allocation), groups them by topology, and loads same-topology
// Programs into the lanes of one BatchProgram. The zero Program is
// invalid; check IsZero before use.
type Program struct {
	p *program
}

// IsZero reports whether the handle is empty (not compiled).
func (pr Program) IsZero() bool { return pr.p == nil }

// NumInputs returns the observation width the program expects.
func (pr Program) NumInputs() int { return len(pr.p.inputs) }

// NumOutputs returns the action width the program produces.
func (pr Program) NumOutputs() int { return len(pr.p.outputs) }

// NumVertices returns the node count.
func (pr Program) NumVertices() int { return len(pr.p.ids) }

// NumEdges returns the enabled connection count (MACs per inference).
func (pr Program) NumEdges() int { return pr.p.macs }

// Instantiate wraps the program with fresh scalar evaluation state —
// the same Network the serial path has always used.
func (pr Program) Instantiate() *Network { return pr.p.instantiate() }

// TopoKey returns a hash of the program's evaluation structure: vertex
// count, CSR fan-in shape, IO positions, schedule, and per-vertex
// activation/aggregation ids — everything except the per-genome
// parameters (weights, bias, response) and node ids. Two programs with
// equal TopoKeys are candidates for sharing one BatchProgram; confirm
// with SameTopology (keys can collide, topology equality cannot).
func (pr Program) TopoKey() uint64 { return pr.p.topoHash }

// SameTopology reports whether two programs share evaluation structure
// exactly, lane-compatibility for one BatchProgram.
func (pr Program) SameTopology(o Program) bool { return sameTopology(pr.p, o.p) }

func sameTopology(a, b *program) bool {
	if a == b {
		return true
	}
	if a.topoHash != b.topoHash ||
		len(a.ids) != len(b.ids) || a.macs != b.macs ||
		len(a.inputs) != len(b.inputs) || len(a.outputs) != len(b.outputs) ||
		len(a.evalPos) != len(b.evalPos) || len(a.layerEnd) != len(b.layerEnd) {
		return false
	}
	eq32 := func(x, y []int32) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !eq32(a.edgeOff, b.edgeOff) || !eq32(a.edgePos, b.edgePos) ||
		!eq32(a.inputs, b.inputs) || !eq32(a.outputs, b.outputs) ||
		!eq32(a.evalPos, b.evalPos) || !eq32(a.layerEnd, b.layerEnd) {
		return false
	}
	for i := range a.act {
		if a.act[i] != b.act[i] || a.agg[i] != b.agg[i] {
			return false
		}
	}
	return true
}

// topoHashOf computes the FNV-1a-style structural hash stored in every
// compiled program. Word-wise rather than byte-wise: collisions are
// tolerated (SameTopology confirms), speed matters (every compile pays
// this).
func topoHashOf(p *program) uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(x uint64) {
		h ^= x
		h *= prime
	}
	mix(uint64(len(p.ids)))
	mix(uint64(p.macs))
	mix32 := func(s []int32) {
		mix(uint64(len(s)))
		for _, v := range s {
			mix(uint64(uint32(v)))
		}
	}
	mix32(p.edgeOff)
	mix32(p.edgePos)
	mix32(p.inputs)
	mix32(p.outputs)
	mix32(p.evalPos)
	mix32(p.layerEnd)
	for i := range p.act {
		mix(uint64(p.act[i])<<8 | uint64(p.agg[i]))
	}
	return h
}

// BatchProgram evaluates up to Width lanes — same-topology phenotypes,
// independent parameters — in lock-step. Structure (CSR fan-in, eval
// schedule, activation ids) is shared across lanes; parameters live in
// struct-of-arrays planes, one contiguous [thing][lane] row per weight,
// bias, and response, so the inner loop streams each plane once per
// vertex while amortizing all index arithmetic over the whole batch.
//
// Lanes are mutable: SetLane loads a different same-topology program
// into one lane (the backfill operation of the evolve scheduler) and
// SwapLanes reorders lanes (retiring a finished episode out of the
// active prefix). A BatchProgram is not safe for concurrent use.
type BatchProgram struct {
	p      *program // structural exemplar; its params are NOT read
	width  int      // allocated lanes == plane stride
	biasL  []float64
	respL  []float64
	edgeWL []float64
	// inPrefix records that the inputs sit at positions 0..n-1 in
	// order (true for every genome whose input ids precede the rest —
	// the NEAT numbering convention), which lets ObsPlane alias the
	// observation plane onto the state's input rows.
	inPrefix bool
}

// BatchState is the mutable evaluation state for one BatchProgram: the
// [node][lane] activation planes plus the per-vertex lane scratch rows
// (accumulator, pre-activation, exp argument/result). Zero-alloc in
// steady state; create one per worker and reuse it.
type BatchState struct {
	vals []float64 // nv * stride activation planes
	acc  []float64 // stride
	pre  []float64 // stride
	earg []float64 // stride
	eexp []float64 // stride
}

// NewBatch allocates a batch evaluator with the given lane count,
// shaped by the exemplar's topology. Every lane starts loaded with the
// exemplar's parameters; use SetLane to load others.
func NewBatch(exemplar Program, width int) *BatchProgram {
	if exemplar.IsZero() {
		panic("network: NewBatch on zero Program")
	}
	if width < 1 {
		panic("network: NewBatch width < 1")
	}
	p := exemplar.p
	bp := &BatchProgram{
		p:      p,
		width:  width,
		biasL:  make([]float64, len(p.ids)*width),
		respL:  make([]float64, len(p.ids)*width),
		edgeWL: make([]float64, len(p.edgeW)*width),
	}
	for lane := 0; lane < width; lane++ {
		bp.setLane(lane, p)
	}
	bp.inPrefix = true
	for i, pos := range p.inputs {
		if int(pos) != i {
			bp.inPrefix = false
			break
		}
	}
	return bp
}

// Width returns the allocated lane count (the plane stride).
func (bp *BatchProgram) Width() int { return bp.width }

// NumInputs returns the observation width of every lane.
func (bp *BatchProgram) NumInputs() int { return len(bp.p.inputs) }

// NumOutputs returns the action width of every lane.
func (bp *BatchProgram) NumOutputs() int { return len(bp.p.outputs) }

// NumVertices returns the per-lane node count.
func (bp *BatchProgram) NumVertices() int { return len(bp.p.ids) }

// NumEdges returns the per-lane enabled connection count.
func (bp *BatchProgram) NumEdges() int { return bp.p.macs }

// SetLane loads pr's parameters into one lane. pr must share the batch
// topology (the caller grouped by TopoKey + SameTopology; this is
// re-checked cheaply by hash).
func (bp *BatchProgram) SetLane(lane int, pr Program) error {
	if lane < 0 || lane >= bp.width {
		return fmt.Errorf("network: SetLane %d out of range [0,%d)", lane, bp.width)
	}
	if pr.IsZero() || pr.p.topoHash != bp.p.topoHash || !sameTopology(pr.p, bp.p) {
		return fmt.Errorf("network: SetLane program topology mismatch")
	}
	bp.setLane(lane, pr.p)
	return nil
}

func (bp *BatchProgram) setLane(lane int, p *program) {
	w := bp.width
	for i, v := range p.bias {
		bp.biasL[i*w+lane] = v
	}
	for i, v := range p.resp {
		bp.respL[i*w+lane] = v
	}
	for k, v := range p.edgeW {
		bp.edgeWL[k*w+lane] = v
	}
}

// SwapLanes exchanges the parameters of two lanes (activation state is
// fully rewritten by every FeedBatchInto, so parameters are the only
// per-lane network state). The evolve scheduler uses this to compact
// live episodes into the active prefix.
func (bp *BatchProgram) SwapLanes(a, b int) {
	if a == b {
		return
	}
	w := bp.width
	nv := len(bp.p.ids)
	for i := 0; i < nv; i++ {
		r := i * w
		bp.biasL[r+a], bp.biasL[r+b] = bp.biasL[r+b], bp.biasL[r+a]
		bp.respL[r+a], bp.respL[r+b] = bp.respL[r+b], bp.respL[r+a]
	}
	for k := 0; k < len(bp.p.edgeW); k++ {
		r := k * w
		bp.edgeWL[r+a], bp.edgeWL[r+b] = bp.edgeWL[r+b], bp.edgeWL[r+a]
	}
}

// ObsPlane returns the slice of st that doubles as this batch's
// observation plane — the input rows of the activation state — or nil
// when the program's inputs are not the position prefix. Writing
// observations there directly (environment reset and step output) lets
// FeedBatchInto skip its ingest copy: it detects the aliasing and
// reads the rows in place.
func (bp *BatchProgram) ObsPlane(st *BatchState) []float64 {
	if !bp.inPrefix {
		return nil
	}
	return st.vals[:len(bp.p.inputs)*bp.width]
}

// NewState allocates evaluation state sized for this batch.
func (bp *BatchProgram) NewState() *BatchState {
	w := bp.width
	return &BatchState{
		vals: make([]float64, len(bp.p.ids)*w),
		acc:  make([]float64, w),
		pre:  make([]float64, w),
		earg: make([]float64, w),
		eexp: make([]float64, w),
	}
}

// FeedBatchInto evaluates the first active lanes on one observation
// plane, writing output activation planes into dst. obs and dst are
// struct-of-arrays: obs[i*Width+lane] is input i of lane, and
// dst[o*Width+lane] is output o of lane (rows beyond the active prefix
// are left untouched in dst). Per lane it performs exactly the float
// operations of Network.FeedInto in exactly the same order — the batch
// engine's byte-equality guarantee — with the one sigmoid exp computed
// through vmath.ExpSlice, which is bit-identical to math.Exp by
// construction.
// Zero allocations in steady state.
func (bp *BatchProgram) FeedBatchInto(st *BatchState, dst, obs []float64, active int) error {
	p := bp.p
	w := bp.width
	if active < 0 || active > w {
		return fmt.Errorf("network: active %d out of range [0,%d]", active, w)
	}
	if len(obs) < len(p.inputs)*w {
		return fmt.Errorf("network: observation plane %d floats, want %d", len(obs), len(p.inputs)*w)
	}
	if len(dst) < len(p.outputs)*w {
		return fmt.Errorf("network: destination plane %d floats, want %d", len(dst), len(p.outputs)*w)
	}
	if len(st.vals) != len(p.ids)*w {
		return fmt.Errorf("network: state sized for %d floats, want %d", len(st.vals), len(p.ids)*w)
	}
	vals := st.vals
	if !(bp.inPrefix && len(obs) > 0 && &obs[0] == &vals[0]) {
		for i, pos := range p.inputs {
			copy(vals[int(pos)*w:int(pos)*w+active], obs[i*w:i*w+active])
		}
	}
	acc := st.acc[:active]
	pre := st.pre[:active]
	for _, pos := range p.evalPos {
		lo, hi := p.edgeOff[pos], p.edgeOff[pos+1]
		if f := p.agg[pos]; f == gene.AggSum {
			for l := range acc {
				acc[l] = 0
			}
			for k := lo; k < hi; k++ {
				sp := int(p.edgePos[k]) * w
				src := vals[sp : sp+active]
				wp := bp.edgeWL[int(k)*w : int(k)*w+active]
				wp = wp[:len(src)]
				a := acc[:len(src)]
				for l, v := range src {
					a[l] += v * wp[l]
				}
			}
		} else {
			for l := 0; l < active; l++ {
				acc[l] = bp.aggregateLane(f, vals, lo, hi, l)
			}
		}
		bRow := bp.biasL[int(pos)*w : int(pos)*w+active]
		rRow := bp.respL[int(pos)*w : int(pos)*w+active]
		bRow = bRow[:len(acc)]
		rRow = rRow[:len(acc)]
		for l := range acc {
			pre[l] = bRow[l] + rRow[l]*acc[l]
		}
		if p.act[pos] == gene.ActSigmoid {
			earg := st.earg[:active]
			for l := range pre {
				earg[l] = -clampExp(5 * pre[l])
			}
			// Pad the exp call to the 4-lane vector quantum so a
			// non-multiple-of-4 active count doesn't strand its tail on
			// the scalar fallback: pad lanes hold stale (clamped,
			// in-window) or zeroed arguments, and their results are
			// never read.
			r4 := (active + 3) &^ 3
			if r4 > w {
				r4 = w
			}
			vmath.ExpSlice(st.eexp[:r4], st.earg[:r4])
			if r4 >= 16 {
				// Wide rows finish the sigmoid through the windowless
				// vector divide, over the same padded range (pad-lane
				// vals are never read). Narrow rows stay scalar: below
				// ~4 vector groups the call overhead costs more than
				// the divide latency it saves.
				vmath.Recip1pSlice(vals[int(pos)*w:int(pos)*w+r4], st.eexp[:r4])
			} else {
				row := vals[int(pos)*w : int(pos)*w+active]
				eexp := st.eexp[:active]
				for l := range row {
					row[l] = 1 / (1 + eexp[l])
				}
			}
		} else {
			act := p.act[pos]
			row := vals[int(pos)*w : int(pos)*w+active]
			for l := range row {
				row[l] = Activate(act, pre[l])
			}
		}
	}
	for i, pos := range p.outputs {
		copy(dst[i*w:i*w+active], vals[int(pos)*w:int(pos)*w+active])
	}
	return nil
}

// aggregateLane is the strided, single-lane twin of aggregateEdges for
// the non-sum aggregations: same cases, same edge order, same float
// operations, reading lane columns out of the SoA planes.
func (bp *BatchProgram) aggregateLane(f gene.Aggregation, vals []float64, lo, hi int32, lane int) float64 {
	if hi == lo {
		return 0
	}
	p, w := bp.p, bp.width
	lv := func(k int32) float64 {
		return vals[int(p.edgePos[k])*w+lane] * bp.edgeWL[int(k)*w+lane]
	}
	switch f {
	case gene.AggProduct:
		prod := 1.0
		for k := lo; k < hi; k++ {
			prod *= lv(k)
		}
		return prod
	case gene.AggMax:
		m := lv(lo)
		for k := lo + 1; k < hi; k++ {
			if x := lv(k); x > m {
				m = x
			}
		}
		return m
	case gene.AggMin:
		m := lv(lo)
		for k := lo + 1; k < hi; k++ {
			if x := lv(k); x < m {
				m = x
			}
		}
		return m
	case gene.AggMean:
		var s float64
		for k := lo; k < hi; k++ {
			s += lv(k)
		}
		return s / float64(hi-lo)
	default:
		var s float64
		for k := lo; k < hi; k++ {
			s += lv(k)
		}
		return s
	}
}

// LaneValue reads row r, lane l out of a struct-of-arrays plane — a
// readability helper for callers that index observation/action planes.
func LaneValue(plane []float64, width, row, lane int) float64 {
	return plane[row*width+lane]
}
