// Package network turns NEAT genomes into executable neural networks.
//
// Networks evolved by NEAT are irregular directed acyclic graphs, not
// layered MLPs (Section III-C2 of the paper). Inference is therefore a
// sequence of vertex updates in topological order. This package builds
// the phenotype from a genome, evaluates it, and computes the layer
// packing ("vectorize" routine, Section IV-D) that the ADAM systolic
// array model uses to schedule packed matrix–vector multiplications.
package network

import (
	"math"

	"repro/internal/gene"
)

// Activate applies the activation function selected by a node gene.
// The function set matches neat-python's defaults, which the paper's
// characterization runs used.
func Activate(f gene.Activation, x float64) float64 {
	switch f {
	case gene.ActSigmoid:
		// neat-python's scaled sigmoid: steeper than the textbook one so
		// small evolved weights can still saturate.
		return 1 / (1 + math.Exp(-clampExp(5*x)))
	case gene.ActTanh:
		return math.Tanh(clampExp(2.5 * x))
	case gene.ActReLU:
		if x > 0 {
			return x
		}
		return 0
	case gene.ActIdentity:
		return x
	case gene.ActSin:
		return math.Sin(5 * x)
	case gene.ActGauss:
		return math.Exp(-5 * clampUnit(x) * clampUnit(x))
	case gene.ActAbs:
		return math.Abs(x)
	case gene.ActClamped:
		return clampUnit(x)
	default:
		return x
	}
}

// clampExp bounds the argument of exp-based activations to avoid
// overflow; beyond ±60 the result saturates anyway.
func clampExp(x float64) float64 {
	if x > 60 {
		return 60
	}
	if x < -60 {
		return -60
	}
	return x
}

// clampUnit clamps to [-1, 1].
func clampUnit(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

// Aggregate combines a node's weighted inputs with the aggregation
// function selected by its gene. An empty input list aggregates to 0
// (the node then outputs Activate(bias)).
func Aggregate(f gene.Aggregation, xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	switch f {
	case gene.AggSum:
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	case gene.AggProduct:
		p := 1.0
		for _, x := range xs {
			p *= x
		}
		return p
	case gene.AggMax:
		m := xs[0]
		for _, x := range xs[1:] {
			if x > m {
				m = x
			}
		}
		return m
	case gene.AggMin:
		m := xs[0]
		for _, x := range xs[1:] {
			if x < m {
				m = x
			}
		}
		return m
	case gene.AggMean:
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	default:
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
}
