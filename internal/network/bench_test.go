package network

import (
	"testing"

	"repro/internal/gene"
	"repro/internal/neat"
	"repro/internal/rng"
)

// evolvedGenome grows a population for gens epochs under random fitness
// and returns its largest genome — a realistic mid-run phenotype with
// hidden nodes, disabled connections, and irregular fan-in.
func evolvedGenome(tb testing.TB, inputs, outputs, popSize, gens int, seed uint64) *gene.Genome {
	tb.Helper()
	cfg := neat.DefaultConfig(inputs, outputs)
	cfg.PopulationSize = popSize
	pop, err := neat.NewPopulation(cfg, seed)
	if err != nil {
		tb.Fatal(err)
	}
	r := rng.New(seed ^ 0x9E37)
	for g := 0; g < gens; g++ {
		for _, gn := range pop.Genomes {
			gn.Fitness = r.Float64()
		}
		if _, err := pop.Epoch(); err != nil {
			tb.Fatal(err)
		}
	}
	best := pop.Genomes[0]
	for _, gn := range pop.Genomes {
		if gn.NumGenes() > best.NumGenes() {
			best = gn
		}
	}
	return best
}

// BenchmarkNetworkCompile measures the genome→phenotype compile pass on
// a mid-evolution genome (the per-genome-per-generation cost PLP pays).
func BenchmarkNetworkCompile(b *testing.B) {
	g := evolvedGenome(b, 8, 4, 64, 12, 42)
	b.ReportMetric(float64(g.NumGenes()), "genes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := New(g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkFeed measures one inference pass on a compiled
// mid-evolution phenotype (the per-environment-step cost).
func BenchmarkNetworkFeed(b *testing.B) {
	g := evolvedGenome(b, 8, 4, 64, 12, 42)
	n, err := New(g)
	if err != nil {
		b.Fatal(err)
	}
	obs := make([]float64, n.NumInputs())
	for i := range obs {
		obs[i] = 0.25 * float64(i+1)
	}
	b.ReportMetric(float64(n.NumEdges()), "edges")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := n.Feed(obs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetworkFeedBatch measures one batched inference pass — the
// same mid-evolution phenotype as BenchmarkNetworkFeed, 32 lanes in
// lock-step — reported as ns per lane-inference so the number is
// directly comparable to BenchmarkNetworkFeed's ns/op.
func BenchmarkNetworkFeedBatch(b *testing.B) {
	g := evolvedGenome(b, 8, 4, 64, 12, 42)
	var bld Builder
	pr, err := bld.Compile(g)
	if err != nil {
		b.Fatal(err)
	}
	const width = 32
	bp := NewBatch(pr, width)
	st := bp.NewState()
	obs := make([]float64, bp.NumInputs()*width)
	for i := range obs {
		obs[i] = 0.25 * float64(i%9)
	}
	dst := make([]float64, bp.NumOutputs()*width)
	b.ReportMetric(float64(bp.NumEdges()), "edges")
	b.ReportMetric(width, "lanes")
	b.ResetTimer()
	for i := 0; i < b.N; i += width {
		if err := bp.FeedBatchInto(st, dst, obs, width); err != nil {
			b.Fatal(err)
		}
	}
}
