package network

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/gene"
)

// feedBoth runs the scalar path for each lane's program and the batch
// path once, and asserts every lane's outputs are bit-identical.
func feedBoth(t *testing.T, progs []Program, bp *BatchProgram, st *BatchState, active int, rnd *rand.Rand) {
	t.Helper()
	w := bp.Width()
	ni, no := bp.NumInputs(), bp.NumOutputs()
	obs := make([]float64, ni*w)
	for lane := 0; lane < active; lane++ {
		for i := 0; i < ni; i++ {
			obs[i*w+lane] = rnd.Float64()*4 - 2
		}
	}
	dst := make([]float64, no*w)
	if err := bp.FeedBatchInto(st, dst, obs, active); err != nil {
		t.Fatal(err)
	}
	scalarObs := make([]float64, ni)
	scalarOut := make([]float64, no)
	for lane := 0; lane < active; lane++ {
		net := progs[lane].Instantiate()
		for i := 0; i < ni; i++ {
			scalarObs[i] = obs[i*w+lane]
		}
		if err := net.FeedInto(scalarOut, scalarObs); err != nil {
			t.Fatal(err)
		}
		for o := 0; o < no; o++ {
			got, want := dst[o*w+lane], scalarOut[o]
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("lane %d output %d: batch %v (bits %016x) != scalar %v (bits %016x)",
					lane, o, got, math.Float64bits(got), want, math.Float64bits(want))
			}
		}
	}
}

// mutateWeights returns a same-topology clone with re-rolled weights,
// biases, and responses — the parameter-only variation that dominates
// evolved populations and fills batch lanes.
func mutateWeights(g *gene.Genome, rnd *rand.Rand) *gene.Genome {
	c := g.Clone()
	for i := range c.Conns {
		c.Conns[i].Weight = rnd.NormFloat64() * 2
	}
	for i := range c.Nodes {
		if c.Nodes[i].Type != gene.Input {
			c.Nodes[i].Bias = rnd.NormFloat64()
			c.Nodes[i].Response = 0.5 + rnd.Float64()
		}
	}
	c.BumpVersion()
	return c
}

// testNode builds a node gene with explicit attributes.
func testNode(id int32, typ gene.NodeType, act gene.Activation, agg gene.Aggregation, bias, resp float64) gene.Gene {
	n := gene.NewNode(id, typ)
	n.Activation = act
	n.Aggregation = agg
	n.Bias = bias
	n.Response = resp
	return n
}

// TestFeedBatchBitIdentical drives randomized evolved genomes through
// the batch kernel and pins every lane to the scalar FeedInto result,
// bit for bit, across random observations, varying active widths,
// lane swaps, and lane reloads.
func TestFeedBatchBitIdentical(t *testing.T) {
	for _, seed := range []int64{3, 17, 91} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rnd := rand.New(rand.NewSource(seed))
			base := evolvedGenome(t, 6, 3, 48, 10, uint64(seed))
			var b Builder
			exemplar, err := b.Compile(base)
			if err != nil {
				t.Fatal(err)
			}
			const width = 9 // odd width: exercises the vector kernel's scalar tail
			progs := make([]Program, width)
			progs[0] = exemplar
			for lane := 1; lane < width; lane++ {
				pr, err := b.Compile(mutateWeights(base, rnd))
				if err != nil {
					t.Fatal(err)
				}
				if !pr.SameTopology(exemplar) {
					t.Fatal("weight mutation changed topology")
				}
				progs[lane] = pr
			}

			bp := NewBatch(exemplar, width)
			for lane, pr := range progs {
				if err := bp.SetLane(lane, pr); err != nil {
					t.Fatal(err)
				}
			}
			st := bp.NewState()
			for step := 0; step < 20; step++ {
				feedBoth(t, progs, bp, st, width, rnd)
			}

			// Shrinking active prefix: retire the last lane each round.
			for active := width; active >= 1; active-- {
				feedBoth(t, progs, bp, st, active, rnd)
			}

			// Swap-retire then backfill: move lane 0 out of the prefix,
			// reload lane 0 with a fresh program, and recheck.
			last := width - 1
			bp.SwapLanes(0, last)
			progs[0], progs[last] = progs[last], progs[0]
			feedBoth(t, progs, bp, st, width-1, rnd)
			fresh, err := b.Compile(mutateWeights(base, rnd))
			if err != nil {
				t.Fatal(err)
			}
			if err := bp.SetLane(0, fresh); err != nil {
				t.Fatal(err)
			}
			progs[0] = fresh
			feedBoth(t, progs, bp, st, width, rnd)
		})
	}
}

// TestFeedBatchAllActivations covers every activation and aggregation
// id through hand-built single-hidden-node genomes, batch vs scalar.
func TestFeedBatchAllActivations(t *testing.T) {
	acts := []gene.Activation{
		gene.ActSigmoid, gene.ActTanh, gene.ActReLU, gene.ActIdentity,
		gene.ActSin, gene.ActGauss, gene.ActAbs, gene.ActClamped,
	}
	aggs := []gene.Aggregation{
		gene.AggSum, gene.AggProduct, gene.AggMax, gene.AggMin, gene.AggMean,
	}
	rnd := rand.New(rand.NewSource(5))
	for _, act := range acts {
		for _, agg := range aggs {
			g := &gene.Genome{
				ID: 1,
				Nodes: []gene.Gene{
					testNode(0, gene.Input, gene.ActIdentity, gene.AggSum, 0, 1),
					testNode(1, gene.Input, gene.ActIdentity, gene.AggSum, 0, 1),
					testNode(2, gene.Input, gene.ActIdentity, gene.AggSum, 0, 1),
					testNode(3, gene.Output, act, agg, 0.25, 1),
					testNode(4, gene.Hidden, act, agg, -0.5, 0.8),
				},
				Conns: []gene.Gene{
					gene.NewConn(0, 4, 1.5),
					gene.NewConn(1, 3, -0.4),
					gene.NewConn(1, 4, -2),
					gene.NewConn(2, 4, 0.3),
					gene.NewConn(4, 3, 1.1),
				},
			}
			g.BumpVersion()
			var b Builder
			pr, err := b.Compile(g)
			if err != nil {
				t.Fatalf("act %d agg %d: %v", act, agg, err)
			}
			const width = 5
			progs := make([]Program, width)
			for lane := range progs {
				progs[lane] = pr
				if lane > 0 {
					if progs[lane], err = b.Compile(mutateWeights(g, rnd)); err != nil {
						t.Fatal(err)
					}
				}
			}
			bp := NewBatch(pr, width)
			for lane, lp := range progs {
				if err := bp.SetLane(lane, lp); err != nil {
					t.Fatal(err)
				}
			}
			st := bp.NewState()
			feedBoth(t, progs, bp, st, width, rnd)
		}
	}
}

// TestTopoKeyGrouping pins the grouping contract: weight-only mutants
// share a key, structural mutants do not.
func TestTopoKeyGrouping(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	base := evolvedGenome(t, 4, 2, 32, 8, 23)
	var b Builder
	pr, err := b.Compile(base)
	if err != nil {
		t.Fatal(err)
	}
	mut, err := b.Compile(mutateWeights(base, rnd))
	if err != nil {
		t.Fatal(err)
	}
	if pr.TopoKey() != mut.TopoKey() || !pr.SameTopology(mut) {
		t.Fatal("weight mutation must preserve topology key")
	}

	structural := base.Clone()
	for i := range structural.Conns {
		if structural.Conns[i].Enabled {
			structural.Conns[i].Enabled = false
			break
		}
	}
	structural.BumpVersion()
	spr, err := b.Compile(structural)
	if err != nil {
		t.Fatal(err)
	}
	if pr.SameTopology(spr) {
		t.Fatal("disabling an edge must change topology")
	}
}

// TestBatchErrors covers the guard paths.
func TestBatchErrors(t *testing.T) {
	g := evolvedGenome(t, 3, 2, 16, 4, 7)
	var b Builder
	pr, err := b.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBatch(pr, 4)
	st := bp.NewState()
	obs := make([]float64, bp.NumInputs()*4)
	dst := make([]float64, bp.NumOutputs()*4)
	if err := bp.FeedBatchInto(st, dst, obs, 5); err == nil {
		t.Fatal("active > width must fail")
	}
	if err := bp.FeedBatchInto(st, dst, obs[:1], 4); err == nil {
		t.Fatal("short obs plane must fail")
	}
	if err := bp.FeedBatchInto(st, dst[:1], obs, 4); err == nil {
		t.Fatal("short dst plane must fail")
	}
	if err := bp.SetLane(9, pr); err == nil {
		t.Fatal("lane out of range must fail")
	}
	other, err := b.Compile(evolvedGenome(t, 4, 2, 16, 4, 8))
	if err != nil {
		t.Fatal(err)
	}
	if err := bp.SetLane(0, other); err == nil {
		t.Fatal("topology mismatch must fail")
	}
}

// TestFeedBatchZeroAlloc pins the zero-allocation steady state.
func TestFeedBatchZeroAlloc(t *testing.T) {
	g := evolvedGenome(t, 8, 4, 64, 12, 42)
	var b Builder
	pr, err := b.Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	bp := NewBatch(pr, 16)
	st := bp.NewState()
	obs := make([]float64, bp.NumInputs()*16)
	dst := make([]float64, bp.NumOutputs()*16)
	for i := range obs {
		obs[i] = float64(i%7) * 0.1
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := bp.FeedBatchInto(st, dst, obs, 16); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("FeedBatchInto allocates %v per run, want 0", allocs)
	}
}
