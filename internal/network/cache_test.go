package network

import (
	"testing"

	"repro/internal/gene"
)

func TestCacheHitOnClone(t *testing.T) {
	g := xorGenome()
	var c Cache
	var b Builder

	n1, err := c.Get(&b, g)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Stats(); h != 0 || m != 1 {
		t.Fatalf("after first Get: hits=%d misses=%d, want 0/1", h, m)
	}

	// A clone carries the parent's version stamp — the genome-level
	// reuse case (elite copied into the next generation).
	clone := g.Clone()
	clone.ID = 999
	n2, err := c.Get(&b, clone)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := c.Stats(); h != 1 || m != 1 {
		t.Fatalf("after clone Get: hits=%d misses=%d, want 1/1", h, m)
	}
	if n1.prog != n2.prog {
		t.Fatal("clone did not share the cached program")
	}
	if &n1.values[0] == &n2.values[0] || &n1.out[0] == &n2.out[0] {
		t.Fatal("instances share evaluation buffers; concurrent evaluation would race")
	}

	// Shared program, independent state: feeding one instance must not
	// disturb the other's outputs.
	a, err := n1.Feed([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	want := a[0]
	if _, err := n2.Feed([]float64{1, 1}); err != nil {
		t.Fatal(err)
	}
	if n1.out[0] != want {
		t.Fatal("feeding the clone's instance overwrote the original's output buffer")
	}
}

func TestCacheMissAfterMutation(t *testing.T) {
	g := xorGenome()
	var c Cache
	var b Builder
	if _, err := c.Get(&b, g); err != nil {
		t.Fatal(err)
	}

	// Any gene edit bumps the version stamp, so the stale phenotype can
	// never be served.
	mutated := g.Clone()
	cn := mutated.Conns[0]
	cn.Weight += 1
	mutated.PutConn(cn)
	if mutated.Version() == g.Version() {
		t.Fatal("mutation did not bump the version stamp")
	}
	if _, err := c.Get(&b, mutated); err != nil {
		t.Fatal(err)
	}
	if h, m := c.Stats(); h != 0 || m != 2 {
		t.Fatalf("hits=%d misses=%d, want 0/2", h, m)
	}

	// The two compiled phenotypes must actually differ.
	n1, _ := c.Get(&b, g)
	n2, _ := c.Get(&b, mutated)
	o1, err := n1.Feed([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	o2, err := n2.Feed([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if o1[0] == o2[0] {
		t.Fatal("mutated genome produced identical output; stale phenotype suspected")
	}
}

func TestCacheSweepEvictsUntouched(t *testing.T) {
	g1, g2 := xorGenome(), xorGenome()
	g2.ID = 2
	var c Cache
	var b Builder
	if _, err := c.Get(&b, g1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(&b, g2); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len=%d, want 2", c.Len())
	}

	c.Sweep() // clears marks; both entries survive one sweep
	if c.Len() != 2 {
		t.Fatalf("after first sweep Len=%d, want 2", c.Len())
	}

	if _, err := c.Get(&b, g1); err != nil { // touch only g1
		t.Fatal(err)
	}
	c.Sweep()
	if c.Len() != 1 {
		t.Fatalf("after second sweep Len=%d, want 1 (g2 evicted)", c.Len())
	}
	if _, err := c.Get(&b, g1); err != nil {
		t.Fatal(err)
	}
	if h, _ := c.Stats(); h != 2 {
		t.Fatalf("g1 should still hit after surviving the sweep (hits=%d)", h)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	// A cyclic genome fails compilation; the failure must not poison the
	// cache or be memoized.
	g := gene.NewGenome(1)
	g.PutNode(gene.NewNode(0, gene.Input))
	out := gene.NewNode(1, gene.Output)
	g.PutNode(out)
	h := gene.NewNode(2, gene.Hidden)
	g.PutNode(h)
	g.PutConn(gene.NewConn(2, 1, 1))
	g.PutConn(gene.NewConn(1, 2, 1)) // cycle 1→2→1

	var c Cache
	var b Builder
	if _, err := c.Get(&b, g); err == nil {
		t.Fatal("cyclic genome compiled")
	}
	if c.Len() != 0 {
		t.Fatalf("failed compile left %d cache entries", c.Len())
	}
}
