package network

// Plan is the output of the vectorize routine (Section IV-D): the
// irregular DAG re-posed as a sequence of dense matrix–vector
// multiplications, one per topological layer. The System CPU computes
// this packing once per genome per generation; ADAM then executes each
// stage on the systolic array, one inference per environment step.
type Plan struct {
	// Stages in evaluation order.
	Stages []Stage
	// Vertices and Edges describe the source network.
	Vertices int
	Edges    int
}

// Stage is one packed matrix–vector multiply: Rows destination vertices
// are updated from Cols already-computed source vertices through the
// Rows×Cols weight matrix. Density is the fraction of non-zero weights —
// the utilization the paper ties to connection-gene share (Fig. 11a).
type Stage struct {
	Rows    int
	Cols    int
	NonZero int
	// Weights is the dense packed matrix, Rows × Cols, row-major.
	// Present only when BuildPlan is called with materialize=true; the
	// cycle models only need the dimensions.
	Weights [][]float64
}

// Density returns the non-zero fraction of the stage matrix.
func (s Stage) Density() float64 {
	if s.Rows == 0 || s.Cols == 0 {
		return 0
	}
	return float64(s.NonZero) / float64(s.Rows*s.Cols)
}

// MACs returns the dense multiply-accumulate count the systolic array
// performs for this stage (it cannot skip the packed zeros).
func (s Stage) MACs() int { return s.Rows * s.Cols }

// BuildPlan computes the packed execution plan for the network. For
// each layer, the input vector is the set of distinct source vertices
// feeding that layer (the "well formed input vector" the CPU packs);
// the matrix holds the corresponding weights, zero where a destination
// lacks an edge from a source.
func (n *Network) BuildPlan(materialize bool) Plan {
	prog := n.prog
	p := Plan{Vertices: n.NumVertices(), Edges: n.NumEdges()}
	start := int32(0)
	for _, end := range prog.layerEnd {
		layer := prog.evalPos[start:end]
		start = end
		// Distinct sources feeding this layer.
		srcIndex := map[int32]int{}
		for _, pos := range layer {
			for k := prog.edgeOff[pos]; k < prog.edgeOff[pos+1]; k++ {
				if _, ok := srcIndex[prog.edgePos[k]]; !ok {
					srcIndex[prog.edgePos[k]] = len(srcIndex)
				}
			}
		}
		st := Stage{Rows: len(layer), Cols: len(srcIndex)}
		if materialize {
			st.Weights = make([][]float64, st.Rows)
			for i := range st.Weights {
				st.Weights[i] = make([]float64, st.Cols)
			}
		}
		for r, pos := range layer {
			for k := prog.edgeOff[pos]; k < prog.edgeOff[pos+1]; k++ {
				c := srcIndex[prog.edgePos[k]]
				if materialize {
					st.Weights[r][c] = prog.edgeW[k]
				}
				st.NonZero++
			}
		}
		p.Stages = append(p.Stages, st)
	}
	return p
}

// TotalMACs sums the dense MAC work across stages — what ADAM executes
// for one inference.
func (p Plan) TotalMACs() int {
	t := 0
	for _, s := range p.Stages {
		t += s.MACs()
	}
	return t
}

// MeanDensity is the edge-weighted mean stage density.
func (p Plan) MeanDensity() float64 {
	total, nz := 0, 0
	for _, s := range p.Stages {
		total += s.MACs()
		nz += s.NonZero
	}
	if total == 0 {
		return 0
	}
	return float64(nz) / float64(total)
}
