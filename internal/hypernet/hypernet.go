// Package hypernet implements the HyperNEAT-style indirect encoding the
// paper points to for denser genomes (Section III-D1: "other NE
// algorithms such as HyperNEAT provide a mechanism to encode the
// genomes more efficiently, which can be leveraged if need be").
//
// A Compositional Pattern Producing Network (CPPN) — itself an ordinary
// NEAT genome — is queried with the coordinates of node pairs laid out
// on a geometric substrate; its output becomes the connection weight.
// A small CPPN genome thereby encodes an arbitrarily large, regular
// phenotype network: exactly the compression a genome-buffer-limited
// accelerator wants for big substrates.
package hypernet

import (
	"fmt"
	"math"

	"repro/internal/gene"
	"repro/internal/neat"
	"repro/internal/network"
)

// Point is a node location on the substrate.
type Point struct{ X, Y float64 }

// Substrate is a fixed layered geometry: the phenotype network connects
// every node in one layer to every node in the next, with weights drawn
// from the CPPN.
type Substrate struct {
	// Layers holds node coordinates, input layer first, output last.
	Layers [][]Point
	// WeightThreshold prunes connections whose |CPPN output| falls
	// below it (HyperNEAT's expression threshold).
	WeightThreshold float64
	// WeightScale maps the CPPN output range onto phenotype weights.
	WeightScale float64
}

// GridSubstrate builds a substrate with the given layer widths, nodes
// evenly spaced in [-1, 1] per layer and layers stacked in Y.
func GridSubstrate(widths ...int) (Substrate, error) {
	if len(widths) < 2 {
		return Substrate{}, fmt.Errorf("hypernet: need at least input and output layers")
	}
	s := Substrate{WeightThreshold: 0.2, WeightScale: 3.0}
	for li, w := range widths {
		if w <= 0 {
			return Substrate{}, fmt.Errorf("hypernet: layer %d width %d", li, w)
		}
		y := -1 + 2*float64(li)/float64(len(widths)-1)
		layer := make([]Point, w)
		for i := range layer {
			x := 0.0
			if w > 1 {
				x = -1 + 2*float64(i)/float64(w-1)
			}
			layer[i] = Point{X: x, Y: y}
		}
		s.Layers = append(s.Layers, layer)
	}
	return s, nil
}

// NumInputs returns the substrate's input width.
func (s Substrate) NumInputs() int { return len(s.Layers[0]) }

// NumOutputs returns the substrate's output width.
func (s Substrate) NumOutputs() int { return len(s.Layers[len(s.Layers)-1]) }

// PhenotypeConnections returns the substrate's full connection count
// (before threshold pruning).
func (s Substrate) PhenotypeConnections() int {
	n := 0
	for l := 0; l+1 < len(s.Layers); l++ {
		n += len(s.Layers[l]) * len(s.Layers[l+1])
	}
	return n
}

// CPPNConfig returns the NEAT configuration for evolving CPPNs over
// this substrate: four inputs (x1, y1, x2, y2) and one weight output.
// CPPNs thrive on diverse activation functions, so the mutation rate
// for activations is raised.
func CPPNConfig() neat.Config {
	cfg := neat.DefaultConfig(4, 1)
	cfg.ActivationMutateRate = 0.3
	return cfg
}

// Decode expands a CPPN genome into the phenotype genome for the
// substrate: a regular NEAT genome (node and connection genes) that
// the network package — and therefore ADAM — consumes unchanged.
func Decode(cppn *gene.Genome, s Substrate) (*gene.Genome, error) {
	net, err := network.New(cppn)
	if err != nil {
		return nil, fmt.Errorf("hypernet: bad CPPN: %w", err)
	}
	if net.NumInputs() != 4 || net.NumOutputs() != 1 {
		return nil, fmt.Errorf("hypernet: CPPN must be 4-in/1-out, is %d/%d",
			net.NumInputs(), net.NumOutputs())
	}

	pheno := gene.NewGenome(cppn.ID)
	// Node ids: layer-major, contiguous.
	ids := make([][]int32, len(s.Layers))
	next := int32(0)
	for li, layer := range s.Layers {
		ids[li] = make([]int32, len(layer))
		for i := range layer {
			t := gene.Hidden
			switch li {
			case 0:
				t = gene.Input
			case len(s.Layers) - 1:
				t = gene.Output
			}
			n := gene.NewNode(next, t)
			if t != gene.Input {
				n.Activation = gene.ActTanh
			}
			pheno.PutNode(n)
			ids[li][i] = next
			next++
		}
	}
	for li := 0; li+1 < len(s.Layers); li++ {
		for ai, a := range s.Layers[li] {
			for bi, b := range s.Layers[li+1] {
				out, err := net.Feed([]float64{a.X, a.Y, b.X, b.Y})
				if err != nil {
					return nil, err
				}
				// Centre the sigmoid-ish CPPN output on zero.
				v := 2*out[0] - 1
				if math.Abs(v) < s.WeightThreshold {
					continue
				}
				w := v * s.WeightScale
				pheno.PutConn(gene.NewConn(ids[li][ai], ids[li+1][bi], w))
			}
		}
	}
	return pheno, nil
}

// CompressionRatio is the encoding win: phenotype genes per CPPN gene.
func CompressionRatio(cppn, pheno *gene.Genome) float64 {
	if cppn.NumGenes() == 0 {
		return 0
	}
	return float64(pheno.NumGenes()) / float64(cppn.NumGenes())
}
