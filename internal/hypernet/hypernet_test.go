package hypernet

import (
	"testing"

	"repro/internal/env"
	"repro/internal/gene"
	"repro/internal/neat"
	"repro/internal/network"
)

func TestGridSubstrate(t *testing.T) {
	s, err := GridSubstrate(4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumInputs() != 4 || s.NumOutputs() != 2 {
		t.Fatalf("io %d/%d", s.NumInputs(), s.NumOutputs())
	}
	if s.PhenotypeConnections() != 4*8+8*2 {
		t.Fatalf("connections %d", s.PhenotypeConnections())
	}
	// Coordinates span [-1, 1] in both axes.
	if s.Layers[0][0].Y != -1 || s.Layers[2][0].Y != 1 {
		t.Fatalf("layer Y coords: %v", s.Layers)
	}
	if _, err := GridSubstrate(4); err == nil {
		t.Fatal("single-layer substrate accepted")
	}
	if _, err := GridSubstrate(4, 0); err == nil {
		t.Fatal("zero-width layer accepted")
	}
}

// seedCPPN builds a population of CPPNs and returns one genome.
func seedCPPN(t *testing.T, seed uint64) *gene.Genome {
	t.Helper()
	cfg := CPPNConfig()
	cfg.PopulationSize = 10
	pop, err := neat.NewPopulation(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	// A couple of epochs to diversify the weights away from zero.
	for g := 0; g < 3; g++ {
		for i, gn := range pop.Genomes {
			gn.Fitness = float64(i)
		}
		if _, err := pop.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	return pop.Genomes[0]
}

func TestDecodeProducesValidPhenotype(t *testing.T) {
	cppn := seedCPPN(t, 5)
	s, _ := GridSubstrate(8, 16, 4)
	pheno, err := Decode(cppn, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := pheno.Validate(); err != nil {
		t.Fatal(err)
	}
	net, err := network.New(pheno)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumInputs() != 8 || net.NumOutputs() != 4 {
		t.Fatalf("phenotype io %d/%d", net.NumInputs(), net.NumOutputs())
	}
	obs := make([]float64, 8)
	if _, err := net.Feed(obs); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsWrongCPPNShape(t *testing.T) {
	cfg := neat.DefaultConfig(2, 1) // wrong input count
	cfg.PopulationSize = 4
	pop, _ := neat.NewPopulation(cfg, 1)
	s, _ := GridSubstrate(4, 2)
	if _, err := Decode(pop.Genomes[0], s); err == nil {
		t.Fatal("2-input CPPN accepted")
	}
}

func TestThresholdPrunes(t *testing.T) {
	cppn := seedCPPN(t, 7)
	s, _ := GridSubstrate(8, 8, 8)
	s.WeightThreshold = 0
	dense, err := Decode(cppn, s)
	if err != nil {
		t.Fatal(err)
	}
	s.WeightThreshold = 0.95
	sparse, err := Decode(cppn, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(sparse.Conns) > len(dense.Conns) {
		t.Fatalf("higher threshold added connections: %d vs %d",
			len(sparse.Conns), len(dense.Conns))
	}
	if len(dense.Conns) != s.PhenotypeConnections() {
		t.Fatalf("zero threshold expressed %d of %d", len(dense.Conns), s.PhenotypeConnections())
	}
}

func TestCompression(t *testing.T) {
	cppn := seedCPPN(t, 9)
	// A RAM-scale substrate: 128 inputs → 64 hidden → 18 outputs.
	s, _ := GridSubstrate(128, 64, 18)
	s.WeightThreshold = 0
	pheno, err := Decode(cppn, s)
	if err != nil {
		t.Fatal(err)
	}
	ratio := CompressionRatio(cppn, pheno)
	// The paper's point: a small CPPN encodes a much larger genome.
	if ratio < 50 {
		t.Fatalf("compression ratio only %.1f (CPPN %d genes, phenotype %d)",
			ratio, cppn.NumGenes(), pheno.NumGenes())
	}
	t.Logf("CPPN %d genes → phenotype %d genes (%.0f× compression)",
		cppn.NumGenes(), pheno.NumGenes(), ratio)
}

// TestHyperNEATEvolvesCartPole closes the loop: evolving CPPNs whose
// decoded substrate networks control the environment.
func TestHyperNEATEvolvesCartPole(t *testing.T) {
	e, err := env.New("cartpole")
	if err != nil {
		t.Fatal(err)
	}
	s, err := GridSubstrate(4, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := CPPNConfig()
	cfg.PopulationSize = 40
	pop, err := neat.NewPopulation(cfg, 17)
	if err != nil {
		t.Fatal(err)
	}

	evalCPPN := func(cppn *gene.Genome) float64 {
		pheno, err := Decode(cppn, s)
		if err != nil {
			return 0
		}
		net, err := network.New(pheno)
		if err != nil {
			return 0
		}
		obs := e.Reset(3)
		total := 0.0
		for {
			a, err := net.Feed(obs)
			if err != nil {
				return 0
			}
			var r float64
			var done bool
			obs, r, done = e.Step(a)
			total += r
			if done {
				return total
			}
		}
	}

	first, best := 0.0, 0.0
	for gen := 0; gen < 20; gen++ {
		genBest := 0.0
		for _, g := range pop.Genomes {
			g.Fitness = evalCPPN(g)
			if g.Fitness > genBest {
				genBest = g.Fitness
			}
		}
		if gen == 0 {
			first = genBest
		}
		if genBest > best {
			best = genBest
		}
		if best >= 195 {
			break
		}
		if _, err := pop.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	if best <= first {
		t.Fatalf("HyperNEAT made no progress: %v -> %v", first, best)
	}
	t.Logf("hyperneat cartpole: gen0=%v best=%v", first, best)
}
