package es

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestRankNormalize(t *testing.T) {
	r := rankNormalize([]float64{10, 30, 20})
	if r[0] != -0.5 || r[1] != 0.5 || r[2] != 0 {
		t.Fatalf("ranks %v", r)
	}
	if got := rankNormalize([]float64{7}); got[0] != 0 {
		t.Fatalf("singleton rank %v", got)
	}
	var sum float64
	for _, v := range rankNormalize([]float64{5, 1, 9, 2, 8}) {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("ranks not centered: sum %v", sum)
	}
}

func TestNewValidatesEnv(t *testing.T) {
	if _, err := New("tetris", DefaultConfig(), 1); err == nil {
		t.Fatal("unknown env accepted")
	}
	s, err := New("cartpole", DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4 → 16 → 1 network: 4·16+16 + 16·1+1 = 97 parameters.
	if s.NumParams() != 97 {
		t.Fatalf("params %d", s.NumParams())
	}
}

func TestESImprovesCartPole(t *testing.T) {
	cfg := DefaultConfig()
	s, err := New("cartpole", cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.evaluate(s.theta)
	if err != nil {
		t.Fatal(err)
	}
	hist, solved, err := s.Run(30, 195)
	if err != nil {
		t.Fatal(err)
	}
	best := first
	for _, f := range hist {
		if f > best {
			best = f
		}
	}
	if !solved && best <= first {
		t.Fatalf("ES made no progress: first %v best %v", first, best)
	}
	t.Logf("es cartpole: first=%v best=%v solved=%v gens=%d", first, best, solved, len(hist))
}

// TestESNeedsNoGradients pins the paper's compute argument: ES runs on
// forward passes alone.
func TestESNeedsNoGradients(t *testing.T) {
	s, err := New("mountaincar", DefaultConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if s.ForwardMACs <= 0 {
		t.Fatal("no forward work counted")
	}
	if s.policy.GradOps != 0 {
		t.Fatalf("ES performed %d gradient ops", s.policy.GradOps)
	}
}

func TestAntitheticSamplingIsBalanced(t *testing.T) {
	// With a fitness function linear in one parameter, the antithetic
	// estimate must move that parameter in the right direction.
	s, err := New("cartpole", Config{
		Hidden: []int{2}, PopulationSize: 8, Sigma: 0.05, LR: 0.1, Episodes: 1,
	}, 9)
	if err != nil {
		t.Fatal(err)
	}
	before := append([]float64(nil), s.theta...)
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	moved := false
	for d := range before {
		if s.theta[d] != before[d] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("update step did not move parameters")
	}
}

func TestDeterministicES(t *testing.T) {
	run := func() float64 {
		s, err := New("cartpole", DefaultConfig(), 21)
		if err != nil {
			t.Fatal(err)
		}
		f, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}

func TestFlatParamsRoundTrip(t *testing.T) {
	s, _ := New("cartpole", DefaultConfig(), 2)
	p := s.policy.FlatParams()
	r := rng.New(4)
	for i := range p {
		p[i] = r.Range(-1, 1)
	}
	if err := s.policy.SetFlatParams(p); err != nil {
		t.Fatal(err)
	}
	back := s.policy.FlatParams()
	for i := range p {
		if back[i] != p[i] {
			t.Fatalf("param %d: %v vs %v", i, back[i], p[i])
		}
	}
	if err := s.policy.SetFlatParams(p[:10]); err == nil {
		t.Fatal("short vector accepted")
	}
}
