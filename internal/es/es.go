// Package es implements OpenAI Evolution Strategies (Salimans et al.
// 2017) — the paper's reference [3] and its stated evidence that
// evolutionary methods cut compute by two-thirds versus
// backpropagation and scale without gradient communication.
//
// ES is the other pole of the EA design space GeneSys targets: where
// NEAT perturbs structure and weights of a growing genome, ES perturbs
// a fixed-topology parameter vector with Gaussian noise and ascends the
// fitness gradient estimate
//
//	θ ← θ + α · (1/nσ) Σᵢ Fᵢ εᵢ
//
// using antithetic sampling and rank normalization. Like NEAT — and
// unlike backpropagation — it needs only forward passes, which is the
// Table II compute argument in executable form.
package es

import (
	"fmt"
	"sort"

	"repro/internal/dnn"
	"repro/internal/env"
	"repro/internal/rng"
)

// Config tunes the strategy.
type Config struct {
	Hidden []int // policy network hidden layers
	// PopulationSize is the number of perturbation pairs per update
	// (2× episodes are run, antithetic).
	PopulationSize int
	// Sigma is the perturbation standard deviation.
	Sigma float64
	// LR is the update step size.
	LR float64
	// Episodes per fitness evaluation.
	Episodes int
}

// DefaultConfig follows the small-control-task settings of [3].
func DefaultConfig() Config {
	return Config{
		Hidden:         []int{16},
		PopulationSize: 25,
		Sigma:          0.1,
		LR:             0.05,
		Episodes:       1,
	}
}

// Strategy is an ES learner bound to one environment.
type Strategy struct {
	cfg    Config
	env    env.Env
	policy *dnn.MLP
	theta  []float64
	rnd    *rng.XorWow
	// ForwardMACs counts all policy evaluations; ES performs zero
	// gradient ops by construction.
	ForwardMACs int64
	gen         int
}

// New builds a strategy for the named environment.
func New(envName string, cfg Config, seed uint64) (*Strategy, error) {
	e, err := env.New(envName)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed)
	sizes := append([]int{e.ObservationSize()}, cfg.Hidden...)
	sizes = append(sizes, e.ActionSize())
	policy, err := dnn.NewMLP(r, sizes...)
	if err != nil {
		return nil, err
	}
	return &Strategy{
		cfg: cfg, env: e, policy: policy,
		theta: policy.FlatParams(), rnd: r,
	}, nil
}

// NumParams returns the dimension of the search space.
func (s *Strategy) NumParams() int { return len(s.theta) }

// evaluate runs the policy with the given parameters.
func (s *Strategy) evaluate(params []float64) (float64, error) {
	if err := s.policy.SetFlatParams(params); err != nil {
		return 0, err
	}
	var total float64
	for ep := 0; ep < s.cfg.Episodes; ep++ {
		obs := s.env.Reset(uint64(s.gen)<<16 | uint64(ep))
		for {
			act, err := s.policy.Forward(obs)
			if err != nil {
				return 0, err
			}
			var r float64
			var done bool
			obs, r, done = s.env.Step(act)
			total += r
			if done {
				break
			}
		}
	}
	return total / float64(s.cfg.Episodes), nil
}

// Step runs one ES generation: sample antithetic perturbation pairs,
// evaluate, rank-normalize, and update θ. It returns the unperturbed
// policy's fitness after the update.
func (s *Strategy) Step() (float64, error) {
	n := s.cfg.PopulationSize
	dim := len(s.theta)
	eps := make([][]float64, n)
	scores := make([]float64, 2*n)
	trial := make([]float64, dim)

	for i := 0; i < n; i++ {
		eps[i] = make([]float64, dim)
		for d := range eps[i] {
			eps[i][d] = s.rnd.NormFloat64()
		}
		for sign, slot := range []int{2 * i, 2*i + 1} {
			mul := 1.0
			if sign == 1 {
				mul = -1
			}
			for d := range trial {
				trial[d] = s.theta[d] + mul*s.cfg.Sigma*eps[i][d]
			}
			f, err := s.evaluate(trial)
			if err != nil {
				return 0, err
			}
			scores[slot] = f
		}
	}

	// Rank normalization: scores → centered ranks in [-0.5, 0.5].
	ranks := rankNormalize(scores)
	grad := make([]float64, dim)
	for i := 0; i < n; i++ {
		w := ranks[2*i] - ranks[2*i+1] // antithetic pair difference
		for d := range grad {
			grad[d] += w * eps[i][d]
		}
	}
	scale := s.cfg.LR / (float64(2*n) * s.cfg.Sigma)
	for d := range s.theta {
		s.theta[d] += scale * grad[d]
	}
	s.gen++
	s.ForwardMACs = s.policy.ForwardMACs

	return s.evaluate(s.theta)
}

// Run executes generations until the target fitness or the budget is
// reached, returning the per-generation fitness trajectory.
func (s *Strategy) Run(generations int, target float64) ([]float64, bool, error) {
	var hist []float64
	for g := 0; g < generations; g++ {
		f, err := s.Step()
		if err != nil {
			return hist, false, err
		}
		hist = append(hist, f)
		if f >= target {
			return hist, true, nil
		}
	}
	return hist, false, nil
}

// rankNormalize maps scores to centered ranks in [-0.5, 0.5]; ties
// keep input order (stable enough for fitness shaping).
func rankNormalize(scores []float64) []float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	out := make([]float64, n)
	if n == 1 {
		return out
	}
	for rank, i := range idx {
		out[i] = float64(rank)/float64(n-1) - 0.5
	}
	return out
}

// String describes the strategy.
func (s *Strategy) String() string {
	return fmt.Sprintf("es(%s dim=%d pop=%d sigma=%g)",
		s.env.Name(), len(s.theta), s.cfg.PopulationSize, s.cfg.Sigma)
}
