// Package moea implements the NSGA-II selection machinery for
// multi-objective, energy-aware evolution: fast non-dominated sorting,
// crowding-distance assignment and a deterministic total order over a
// pluggable objective vector (task fitness up, genome complexity down,
// simulated chip energy down).
//
// Two sorting implementations coexist, exactly as the PR 9 epoch
// kernel retained its slow speciation reference:
//
//   - ReferenceSort is the textbook O(M·N²) fast-non-dominated-sort
//     (Deb et al. 2002): full pairwise domination sets S[p] and
//     domination counts n[p], fronts peeled one rank at a time. It is
//     the executable specification.
//   - Sort is the production kernel: ENS-SS (Zhang et al. 2015,
//     "efficient non-dominated sort, sequential search"). Points are
//     pre-sorted lexicographically, so a point can only be dominated
//     by points already placed; each point then scans existing fronts
//     front-by-front and lands in the first front containing no
//     dominator. Same ranks, far fewer comparisons on realistic
//     populations.
//
// Both are serial and consume no PRNG state, so the assignment —
// ranks, crowding, total order — is a pure function of the objective
// matrix. Ties are broken by a fixed chain (rank asc, crowding desc,
// point ID asc), which makes the resulting order *total*: two distinct
// points never compare equal, so downstream consumers (selection
// pressure shaping in internal/evolve, front artifacts in
// internal/store) are byte-identical at any Parallelism/BatchWidth.
//
// Crowding uses math.MaxFloat64 — not +Inf — as the boundary-point
// sentinel: it orders identically (interior sums are vastly smaller)
// and, unlike +Inf, survives encoding/json round trips exactly.
package moea

import (
	"fmt"
	"math"
	"sort"
)

// Objective describes one axis of the objective vector.
type Objective struct {
	// Name identifies the objective ("fitness", "genes", "energy").
	Name string
	// Maximize is true when larger raw values are better. Internally
	// every objective is minimized; maximized axes are sign-flipped.
	Maximize bool
}

// Point is one candidate in objective space.
type Point struct {
	// ID is the stable identity used as the final tie-break (genome
	// ID in the evolution loop). IDs must be unique within a sort.
	ID int64
	// Values holds the raw objective values, index-aligned with the
	// []Objective passed to Sort.
	Values []float64
}

// CrowdingMax is the crowding-distance sentinel assigned to the
// boundary points of each front. math.MaxFloat64 rather than +Inf so
// the value survives JSON encoding exactly; interior crowding sums are
// bounded by a few times the per-objective spread ratio (≤ 2·M) and
// never approach it.
const CrowdingMax = math.MaxFloat64

// Result is the full NSGA-II assignment for one population.
type Result struct {
	// Rank[i] is the non-domination front index of points[i] (0 = the
	// Pareto front).
	Rank []int
	// Crowding[i] is the crowding distance of points[i] within its
	// front (CrowdingMax on front boundaries).
	Crowding []float64
	// Fronts[r] lists point indices of rank r, each in total order.
	Fronts [][]int
	// Order lists all point indices in total order: rank ascending,
	// then crowding descending, then ID ascending.
	Order []int
}

// Validate checks that the points form a well-defined sort input:
// at least one objective, value vectors aligned with it, unique IDs,
// and no NaNs (NaN breaks the strict weak ordering every sort here
// relies on).
func Validate(points []Point, objectives []Objective) error {
	if len(objectives) == 0 {
		return fmt.Errorf("moea: empty objective vector")
	}
	seen := make(map[int64]struct{}, len(points))
	for i, p := range points {
		if len(p.Values) != len(objectives) {
			return fmt.Errorf("moea: point %d has %d values for %d objectives", i, len(p.Values), len(objectives))
		}
		for m, v := range p.Values {
			if math.IsNaN(v) {
				return fmt.Errorf("moea: point %d objective %q is NaN", i, objectives[m].Name)
			}
		}
		if _, dup := seen[p.ID]; dup {
			return fmt.Errorf("moea: duplicate point ID %d", p.ID)
		}
		seen[p.ID] = struct{}{}
	}
	return nil
}

// minimized returns the objective matrix with maximized axes
// sign-flipped, so every comparison below is "smaller is better".
func minimized(points []Point, objectives []Objective) [][]float64 {
	vals := make([][]float64, len(points))
	for i, p := range points {
		row := make([]float64, len(objectives))
		for m, o := range objectives {
			if o.Maximize {
				row[m] = -p.Values[m]
			} else {
				row[m] = p.Values[m]
			}
		}
		vals[i] = row
	}
	return vals
}

// dominates reports Pareto dominance on minimized rows: a is no worse
// everywhere and strictly better somewhere.
func dominates(a, b []float64) bool {
	strict := false
	for m := range a {
		if a[m] > b[m] {
			return false
		}
		if a[m] < b[m] {
			strict = true
		}
	}
	return strict
}

// Sort runs the production non-dominated sort kernel (ENS-SS) plus
// crowding assignment and total ordering. The input is not mutated.
// Sort panics on invalid input; call Validate first when the points
// come from outside the evolution loop.
func Sort(points []Point, objectives []Objective) Result {
	if err := Validate(points, objectives); err != nil {
		panic(err)
	}
	vals := minimized(points, objectives)
	n := len(points)
	rank := make([]int, n)

	// Lexicographic pre-sort (value-major, ID as the final key): after
	// this, any dominator of points[order[i]] appears strictly earlier
	// in order, so fronts can be built by insertion.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		va, vb := vals[order[a]], vals[order[b]]
		for m := range va {
			if va[m] != vb[m] {
				return va[m] < vb[m]
			}
		}
		return points[order[a]].ID < points[order[b]].ID
	})

	// ENS-SS insertion: for each point in lexicographic order, place it
	// into the first front whose members (all lexicographically
	// earlier) do not dominate it. Members are checked newest-first —
	// recently inserted points are the likeliest dominators.
	var fronts [][]int
	for _, i := range order {
		placed := false
		for r := range fronts {
			dominated := false
			members := fronts[r]
			for k := len(members) - 1; k >= 0; k-- {
				if dominates(vals[members[k]], vals[i]) {
					dominated = true
					break
				}
			}
			if !dominated {
				fronts[r] = append(fronts[r], i)
				rank[i] = r
				placed = true
				break
			}
		}
		if !placed {
			fronts = append(fronts, []int{i})
			rank[i] = len(fronts) - 1
		}
	}

	return assemble(points, vals, rank, fronts)
}

// ReferenceSort is the retained slow reference: the textbook O(M·N²)
// fast non-dominated sort of Deb et al. (2002), kept as the executable
// specification the kernel is differentially pinned against
// (TestSortMatchesReference). Identical output to Sort.
func ReferenceSort(points []Point, objectives []Objective) Result {
	if err := Validate(points, objectives); err != nil {
		panic(err)
	}
	vals := minimized(points, objectives)
	n := len(points)

	// S[p]: the set of points p dominates. domCount[p]: how many
	// points dominate p.
	dominated := make([][]int, n)
	domCount := make([]int, n)
	for p := 0; p < n; p++ {
		for q := 0; q < n; q++ {
			if p == q {
				continue
			}
			if dominates(vals[p], vals[q]) {
				dominated[p] = append(dominated[p], q)
			} else if dominates(vals[q], vals[p]) {
				domCount[p]++
			}
		}
	}

	rank := make([]int, n)
	var fronts [][]int
	var current []int
	for p := 0; p < n; p++ {
		if domCount[p] == 0 {
			rank[p] = 0
			current = append(current, p)
		}
	}
	for len(current) > 0 {
		fronts = append(fronts, current)
		var next []int
		for _, p := range current {
			for _, q := range dominated[p] {
				domCount[q]--
				if domCount[q] == 0 {
					rank[q] = len(fronts)
					next = append(next, q)
				}
			}
		}
		current = next
	}

	return assemble(points, vals, rank, fronts)
}

// assemble finishes either sort: crowding per front, then the total
// order. Front membership arrives in implementation-specific order and
// is renormalized here, so both implementations emit identical bytes.
func assemble(points []Point, vals [][]float64, rank []int, fronts [][]int) Result {
	crowding := crowdingDistances(points, vals, fronts)

	// Total order: rank asc, crowding desc, ID asc. Because IDs are
	// unique this is a strict total order — no two points tie.
	order := make([]int, 0, len(points))
	for i := range points {
		order = append(order, i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if rank[ia] != rank[ib] {
			return rank[ia] < rank[ib]
		}
		if crowding[ia] != crowding[ib] {
			return crowding[ia] > crowding[ib]
		}
		return points[ia].ID < points[ib].ID
	})

	// Renormalize front membership into total order.
	normFronts := make([][]int, len(fronts))
	for _, i := range order {
		r := rank[i]
		normFronts[r] = append(normFronts[r], i)
	}

	return Result{Rank: rank, Crowding: crowding, Fronts: normFronts, Order: order}
}

// crowdingDistances assigns the NSGA-II crowding distance within each
// front. For every objective the front is sorted by value (ID as the
// deterministic tie-break); boundary points receive CrowdingMax,
// interior points accumulate the normalized neighbour gap. The
// accumulation order is fixed (objective 0, 1, ...), so the float sums
// are bit-reproducible.
func crowdingDistances(points []Point, vals [][]float64, fronts [][]int) []float64 {
	crowding := make([]float64, len(points))
	for _, front := range fronts {
		if len(front) == 0 {
			continue
		}
		byObj := make([]int, len(front))
		boundary := make(map[int]bool, 2)
		for m := range vals[front[0]] {
			copy(byObj, front)
			m := m
			sort.Slice(byObj, func(a, b int) bool {
				if vals[byObj[a]][m] != vals[byObj[b]][m] {
					return vals[byObj[a]][m] < vals[byObj[b]][m]
				}
				return points[byObj[a]].ID < points[byObj[b]].ID
			})
			lo, hi := vals[byObj[0]][m], vals[byObj[len(byObj)-1]][m]
			boundary[byObj[0]] = true
			boundary[byObj[len(byObj)-1]] = true
			if hi == lo {
				continue // degenerate axis: no spread to reward
			}
			span := hi - lo
			for k := 1; k < len(byObj)-1; k++ {
				gap := (vals[byObj[k+1]][m] - vals[byObj[k-1]][m]) / span
				crowding[byObj[k]] += gap
			}
		}
		for i := range boundary {
			crowding[i] = CrowdingMax
		}
	}
	return crowding
}
