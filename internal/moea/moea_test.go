package moea

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

var testObjectives = []Objective{
	{Name: "fitness", Maximize: true},
	{Name: "genes"},
	{Name: "energy"},
}

// randomPoints builds a population with clustered values so duplicate
// coordinates, dominated chains and degenerate axes all occur.
func randomPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			ID: int64(i + 1),
			Values: []float64{
				float64(rng.Intn(50)) / 2,       // fitness (maximized)
				float64(10 + rng.Intn(40)),      // genes
				float64(rng.Intn(30)) * 12.5625, // energy pJ
			},
		}
	}
	return pts
}

// TestSortMatchesReference differentially pins the ENS-SS kernel
// against the retained O(MN²) reference across many random
// populations: identical ranks, crowding bits, fronts and total order.
func TestSortMatchesReference(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range []int{1, 2, 3, 7, 32, 150} {
			pts := randomPoints(rng, n)
			got := Sort(pts, testObjectives)
			want := ReferenceSort(pts, testObjectives)
			if !reflect.DeepEqual(got.Rank, want.Rank) {
				t.Fatalf("seed %d n %d: ranks diverge\nkernel %v\nref    %v", seed, n, got.Rank, want.Rank)
			}
			for i := range got.Crowding {
				if math.Float64bits(got.Crowding[i]) != math.Float64bits(want.Crowding[i]) {
					t.Fatalf("seed %d n %d: crowding[%d] %v != %v", seed, n, i, got.Crowding[i], want.Crowding[i])
				}
			}
			if !reflect.DeepEqual(got.Fronts, want.Fronts) {
				t.Fatalf("seed %d n %d: fronts diverge\nkernel %v\nref    %v", seed, n, got.Fronts, want.Fronts)
			}
			if !reflect.DeepEqual(got.Order, want.Order) {
				t.Fatalf("seed %d n %d: total order diverges\nkernel %v\nref    %v", seed, n, got.Order, want.Order)
			}
		}
	}
}

// TestSortDeterministic re-sorts the same population concurrently from
// many goroutines (race-clean, forced fan-out) and requires
// byte-identical results every time.
func TestSortDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pts := randomPoints(rng, 96)
	want, err := json.Marshal(Sort(pts, testObjectives))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				got, err := json.Marshal(Sort(pts, testObjectives))
				if err != nil {
					t.Error(err)
					return
				}
				if string(got) != string(want) {
					t.Errorf("sort result diverged across invocations")
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSortProperties checks the NSGA-II invariants directly: front 0
// is mutually non-dominating, every rank-r>0 point is dominated by
// some rank r-1 point, boundaries carry CrowdingMax, and the total
// order is strict.
func TestSortProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pts := randomPoints(rng, 80)
	res := Sort(pts, testObjectives)
	vals := minimized(pts, testObjectives)

	for _, i := range res.Fronts[0] {
		for _, j := range res.Fronts[0] {
			if i != j && dominates(vals[i], vals[j]) {
				t.Fatalf("front 0 not mutually non-dominating: %d dominates %d", i, j)
			}
		}
	}
	for r := 1; r < len(res.Fronts); r++ {
		for _, i := range res.Fronts[r] {
			found := false
			for _, j := range res.Fronts[r-1] {
				if dominates(vals[j], vals[i]) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("rank %d point %d not dominated by any rank %d point", r, i, r-1)
			}
		}
	}
	for r, front := range res.Fronts {
		if len(front) == 1 && res.Crowding[front[0]] != CrowdingMax {
			t.Fatalf("singleton front %d lacks CrowdingMax", r)
		}
	}
	seen := map[int]bool{}
	for _, i := range res.Order {
		if seen[i] {
			t.Fatalf("total order repeats index %d", i)
		}
		seen[i] = true
	}
	if len(seen) != len(pts) {
		t.Fatalf("total order covers %d of %d points", len(seen), len(pts))
	}
}

// TestCrowdingSurvivesJSON pins the MaxFloat64 sentinel design: a
// Result round-trips through encoding/json bit-exactly, which +Inf
// would not.
func TestCrowdingSurvivesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := randomPoints(rng, 40)
	res := Sort(pts, testObjectives)
	raw, err := json.Marshal(res)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	for i := range res.Crowding {
		if math.Float64bits(res.Crowding[i]) != math.Float64bits(back.Crowding[i]) {
			t.Fatalf("crowding[%d] changed across JSON: %v -> %v", i, res.Crowding[i], back.Crowding[i])
		}
	}
}

// TestValidate exercises the rejection paths.
func TestValidate(t *testing.T) {
	objs := testObjectives
	cases := []struct {
		name string
		pts  []Point
		objs []Objective
	}{
		{"no objectives", []Point{{ID: 1, Values: []float64{1}}}, nil},
		{"width mismatch", []Point{{ID: 1, Values: []float64{1, 2}}}, objs},
		{"nan value", []Point{{ID: 1, Values: []float64{math.NaN(), 0, 0}}}, objs},
		{"duplicate id", []Point{
			{ID: 1, Values: []float64{1, 2, 3}},
			{ID: 1, Values: []float64{4, 5, 6}},
		}, objs},
	}
	for _, tc := range cases {
		if err := Validate(tc.pts, tc.objs); err == nil {
			t.Errorf("%s: Validate accepted invalid input", tc.name)
		}
	}
	ok := []Point{{ID: 1, Values: []float64{1, 2, 3}}, {ID: 2, Values: []float64{3, 2, 1}}}
	if err := Validate(ok, objs); err != nil {
		t.Errorf("valid input rejected: %v", err)
	}
}

// TestMaximizeDirection checks that a maximized axis actually inverts
// dominance: with fitness maximized, the higher-fitness point must be
// rank 0 and the lower rank 1 when all else is equal.
func TestMaximizeDirection(t *testing.T) {
	pts := []Point{
		{ID: 1, Values: []float64{10, 5, 5}},
		{ID: 2, Values: []float64{20, 5, 5}},
	}
	res := Sort(pts, testObjectives)
	if res.Rank[1] != 0 || res.Rank[0] != 1 {
		t.Fatalf("maximized fitness not honored: ranks %v", res.Rank)
	}
}
