package moea

import (
	"math/rand"
	"testing"
)

// benchPoints is sized to the paper-scale RAM population (150) with a
// realistic three-axis objective vector.
func benchPoints(n int) []Point {
	rng := rand.New(rand.NewSource(42))
	return randomPoints(rng, n)
}

// BenchmarkNonDominatedSort measures the production ENS-SS kernel —
// the per-generation selection cost of a Pareto-mode run.
func BenchmarkNonDominatedSort(b *testing.B) {
	pts := benchPoints(150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sort(pts, testObjectives)
	}
}

// BenchmarkNonDominatedSortReference measures the retained O(MN²)
// reference; cmd/benchjson reports kernel speedup as the
// NonDominatedSort_ref_vs_kernel headline.
func BenchmarkNonDominatedSortReference(b *testing.B) {
	pts := benchPoints(150)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ReferenceSort(pts, testObjectives)
	}
}
