package store

import (
	"os"
	"path/filepath"
	"testing"
)

// TestParseKeyFilenameIslandFields pins the island-key filename format
// ("-i<islands>-m<migrationEvery>" appended to the base tuple) and its
// round trip.
func TestParseKeyFilenameIslandFields(t *testing.T) {
	good := map[string]Key{
		"cartpole-p64-g30-s42-i4-m5.ckpt": {Workload: "cartpole", Population: 64, Generations: 30, Seed: 42, Islands: 4, MigrationEvery: 5},
		"alien-ram-p32-g8-s7-i2-m1":       {Workload: "alien-ram", Population: 32, Generations: 8, Seed: 7, Islands: 2, MigrationEvery: 1},
		// A workload whose own name ends in an island-like suffix still
		// parses as an ordinary key when the numeric fields don't fit.
		"w-i2-m3-p4-g5-s6": {Workload: "w-i2-m3", Population: 4, Generations: 5, Seed: 6},
	}
	for name, want := range good {
		got, ok := ParseKeyFilename(name)
		if !ok || got != want {
			t.Errorf("ParseKeyFilename(%q) = %+v, %v; want %+v", name, got, ok, want)
		}
	}
	bad := []string{
		"cartpole-p64-g30-s42-i1-m5", // islands < 2
		"cartpole-p64-g30-s42-i2-m0", // migration period < 1
		"cartpole-p64-g30-s42-i02-m5",
	}
	for _, name := range bad {
		if k, ok := ParseKeyFilename(name); ok {
			t.Errorf("ParseKeyFilename(%q) accepted: %+v", name, k)
		}
	}
}

// TestParseKeyFilenameOwnerSuffix pins the worker-owned checkpoint
// form "<key>~<owner>.ckpt": the owner is stripped, the key parses as
// usual, so recovery attributes any worker's orphan to its run.
func TestParseKeyFilenameOwnerSuffix(t *testing.T) {
	cases := map[string]Key{
		"cartpole-p64-g30-s42~a1b2c3d4.ckpt":       {Workload: "cartpole", Population: 64, Generations: 30, Seed: 42},
		"cartpole-p64-g30-s42-i2-m5~ffee0011.ckpt": {Workload: "cartpole", Population: 64, Generations: 30, Seed: 42, Islands: 2, MigrationEvery: 5},
	}
	for name, want := range cases {
		got, ok := ParseKeyFilename(name)
		if !ok || got != want {
			t.Errorf("ParseKeyFilename(%q) = %+v, %v; want %+v", name, got, ok, want)
		}
	}
	if k, ok := ParseKeyFilename("~deadbeef.ckpt"); ok {
		t.Errorf("bare owner suffix accepted: %+v", k)
	}
}

// TestRecoverDedupesOwnedCheckpoints: two workers' checkpoints for the
// same key (one orphaned by a crash, one from the re-dispatched run)
// must surface the interrupted key once, not once per file.
func TestRecoverDedupesOwnedCheckpoints(t *testing.T) {
	root := t.TempDir()
	ckptDir := filepath.Join(root, "ckpt")
	if err := os.MkdirAll(ckptDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"cartpole-p64-g30-s42~aaaa0000.ckpt",
		"cartpole-p64-g30-s42~bbbb1111.ckpt",
		"cartpole-p64-g30-s42.ckpt",
	} {
		if err := os.WriteFile(filepath.Join(ckptDir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(Config{Root: root, CheckpointDir: ckptDir})
	if err != nil {
		t.Fatal(err)
	}
	rep := s.Recover()
	if len(rep.Interrupted) != 1 {
		t.Fatalf("Interrupted = %+v, want the one key exactly once", rep.Interrupted)
	}
	want := Key{Workload: "cartpole", Population: 64, Generations: 30, Seed: 42}
	if rep.Interrupted[0] != want {
		t.Fatalf("Interrupted[0] = %+v, want %+v", rep.Interrupted[0], want)
	}
}

func TestKeyStringIslandValidate(t *testing.T) {
	k := Key{Workload: "cartpole", Population: 64, Generations: 30, Seed: 42, Islands: 4, MigrationEvery: 5}
	if got, want := k.String(), "cartpole-p64-g30-s42-i4-m5"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if err := k.validate(); err != nil {
		t.Fatalf("valid island key rejected: %v", err)
	}
	k.Islands = 1
	if err := k.validate(); err == nil {
		t.Fatal("islands=1 accepted")
	}
	k.Islands, k.MigrationEvery = 2, 0
	if err := k.validate(); err == nil {
		t.Fatal("migrationEvery=0 accepted")
	}
}
