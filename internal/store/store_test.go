package store

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testKey(seed uint64) Key {
	return Key{Workload: "cartpole", Population: 64, Generations: 30, Seed: seed}
}

func testFiles() map[string][]byte {
	return map[string][]byte{
		"history.json":    []byte(`[{"generation":0,"best":1.5}]`),
		"population.json": []byte(`{"genomes":[]}`),
		"trace.txt":       []byte("G 0\nP 1 2\n"),
	}
}

func openTest(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Root == "" {
		cfg.Root = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	key := testKey(1)
	meta := Meta{Solved: true, BestFitness: 199.5, Generations: 12}
	files := testFiles()
	if err := s.Put(key, meta, files); err != nil {
		t.Fatalf("Put: %v", err)
	}
	art, ok := s.Get(key)
	if !ok {
		t.Fatal("Get: miss after Put")
	}
	if art.Key != key || art.Meta != meta {
		t.Fatalf("Get: key/meta mismatch: %+v %+v", art.Key, art.Meta)
	}
	if !reflect.DeepEqual(art.Files, files) {
		t.Fatalf("Get: files mismatch: %+v", art.Files)
	}
	st := s.Stats()
	if st.Artifacts != 1 || st.Hits != 1 || st.Commits != 1 {
		t.Fatalf("Stats: %+v", st)
	}
}

func TestGetMiss(t *testing.T) {
	s := openTest(t, Config{})
	if _, ok := s.Get(testKey(2)); ok {
		t.Fatal("Get: hit on empty store")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("Stats: %+v", st)
	}
}

func TestPutDuplicateIsIdempotent(t *testing.T) {
	s := openTest(t, Config{})
	key := testKey(3)
	if err := s.Put(key, Meta{}, testFiles()); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Second commit of the same key: untouched store, accounted as a
	// duplicate, and not an error.
	if err := s.Put(key, Meta{Solved: true}, map[string][]byte{"other.json": []byte("x")}); err != nil {
		t.Fatalf("duplicate Put: %v", err)
	}
	art, ok := s.Get(key)
	if !ok || art.Meta.Solved {
		t.Fatalf("duplicate Put overwrote the artifact: ok=%v meta=%+v", ok, art.Meta)
	}
	if st := s.Stats(); st.Commits != 1 || st.DuplicateCommits != 1 {
		t.Fatalf("Stats: %+v", st)
	}
}

func TestPutRejectsBadInput(t *testing.T) {
	s := openTest(t, Config{})
	bad := []struct {
		name  string
		key   Key
		files map[string][]byte
	}{
		{"empty workload", Key{Population: 1, Generations: 1}, testFiles()},
		{"slash workload", Key{Workload: "a/b", Population: 1, Generations: 1}, testFiles()},
		{"zero pop", Key{Workload: "x", Generations: 1}, testFiles()},
		{"no files", testKey(4), nil},
		{"traversal file", testKey(4), map[string][]byte{"../evil": []byte("x")}},
		{"manifest collision", testKey(4), map[string][]byte{"manifest.json": []byte("x")}},
	}
	for _, tc := range bad {
		if err := s.Put(tc.key, Meta{}, tc.files); err == nil {
			t.Errorf("%s: Put accepted", tc.name)
		}
	}
	if st := s.Stats(); st.Artifacts != 0 {
		t.Fatalf("bad puts left artifacts: %+v", st)
	}
	// Failed puts must not leak staging dirs.
	tmp, err := os.ReadDir(filepath.Join(s.cfg.Root, "tmp"))
	if err != nil || len(tmp) != 0 {
		t.Fatalf("tmp not clean after failed puts: %v entries, err %v", len(tmp), err)
	}
}

func TestCorruptPayloadQuarantines(t *testing.T) {
	s := openTest(t, Config{})
	key := testKey(5)
	if err := s.Put(key, Meta{}, testFiles()); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Flip bytes on disk behind the store's back.
	victim := filepath.Join(s.dirOf(key), "history.json")
	if err := os.WriteFile(victim, []byte(`[{"generation":0,"best":9.9}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("Get: returned corrupt artifact")
	}
	// The key is freed: a fresh Put succeeds and then hits.
	if err := s.Put(key, Meta{}, testFiles()); err != nil {
		t.Fatalf("Put after quarantine: %v", err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("Get: miss after recommit")
	}
	st := s.Stats()
	if st.Quarantined != 1 || st.QuarantineEntries != 1 {
		t.Fatalf("Stats: %+v", st)
	}
	q := s.Quarantined()
	if len(q) != 1 || q[0].Reason == "" {
		t.Fatalf("Quarantined: %+v", q)
	}
	if n := s.PurgeQuarantine(); n != 1 {
		t.Fatalf("PurgeQuarantine: %d", n)
	}
	if len(s.Quarantined()) != 0 {
		t.Fatal("quarantine not empty after purge")
	}
}

func TestCorruptManifestQuarantines(t *testing.T) {
	s := openTest(t, Config{})
	key := testKey(6)
	if err := s.Put(key, Meta{}, testFiles()); err != nil {
		t.Fatalf("Put: %v", err)
	}
	for name, data := range map[string][]byte{
		"truncated": []byte(`{"schema":"genesys-store/1","ke`),
		"wrong schema": []byte(`{"schema":"genesys-store/0","key":{"workload":"cartpole",` +
			`"population":64,"generations":30,"seed":6},"files":[{"name":"x","sha256":"00","size":1}]}`),
		"not json": []byte("\x00\x01\x02"),
	} {
		if err := os.WriteFile(filepath.Join(s.dirOf(key), manifestFile), data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(key); ok {
			t.Fatalf("%s: Get trusted a corrupt manifest", name)
		}
		// Re-commit for the next round.
		if err := s.Put(key, Meta{}, testFiles()); err != nil {
			t.Fatalf("%s: recommit: %v", name, err)
		}
	}
	if st := s.Stats(); st.Quarantined != 3 {
		t.Fatalf("Stats: %+v", st)
	}
}

func TestWrongKeyDirectoryQuarantines(t *testing.T) {
	s := openTest(t, Config{})
	a, b := testKey(7), testKey(8)
	if err := s.Put(a, Meta{}, testFiles()); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Simulate a mis-renamed artifact: b's directory holds a's manifest.
	if err := os.Rename(s.dirOf(a), s.dirOf(b)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(b); ok {
		t.Fatal("Get: returned artifact committed under a different key")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats: %+v", st)
	}
}

func TestGCMaxAge(t *testing.T) {
	clock := time.Unix(1_700_000_000, 0)
	s := openTest(t, Config{MaxAge: time.Hour, Now: func() time.Time { return clock }})
	old, fresh := testKey(9), testKey(10)
	if err := s.Put(old, Meta{}, testFiles()); err != nil {
		t.Fatal(err)
	}
	// The manifest mtime is the commit wall-clock (os-level), so age the
	// old artifact on disk explicitly.
	past := clock.Add(-2 * time.Hour)
	if err := os.Chtimes(filepath.Join(s.dirOf(old), manifestFile), past, past); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fresh, Meta{}, testFiles()); err != nil {
		t.Fatal(err)
	}
	res := s.GC()
	if res.EvictedAge != 1 || res.BytesReclaimed == 0 {
		t.Fatalf("GC: %+v", res)
	}
	if _, ok := s.Get(old); ok {
		t.Fatal("aged artifact survived GC")
	}
	if _, ok := s.Get(fresh); !ok {
		t.Fatal("fresh artifact evicted")
	}
}

func TestGCMaxBytesEvictsLRU(t *testing.T) {
	s := openTest(t, Config{MaxBytes: 1}) // everything is over budget
	k1, k2 := testKey(11), testKey(12)
	if err := s.Put(k1, Meta{}, testFiles()); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(k2, Meta{}, testFiles()); err != nil {
		t.Fatal(err)
	}
	// Make k1 the most recently used despite its older commit: a hit
	// stamps recency.
	old := time.Now().Add(-time.Hour)
	for _, k := range []Key{k1, k2} {
		if err := os.Chtimes(filepath.Join(s.dirOf(k), manifestFile), old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(k1); !ok {
		t.Fatal("Get k1")
	}
	res := s.GC()
	// Budget of 1 byte cannot be met while any artifact remains, so both
	// go — but k2 (older mtime) must be selected first.
	if res.EvictedSize != 2 {
		t.Fatalf("GC: %+v", res)
	}
	if st := s.Stats(); st.Artifacts != 0 {
		t.Fatalf("Stats: %+v", st)
	}

	// And with a budget that one artifact fits under (each is ~750
	// bytes here), only the LRU one is evicted.
	s2 := openTest(t, Config{MaxBytes: 1000})
	if err := s2.Put(k1, Meta{}, testFiles()); err != nil {
		t.Fatal(err)
	}
	if err := s2.Put(k2, Meta{}, testFiles()); err != nil {
		t.Fatal(err)
	}
	for _, k := range []Key{k1, k2} {
		if err := os.Chtimes(filepath.Join(s2.dirOf(k), manifestFile), old, old); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s2.Get(k1); !ok { // k1 is now MRU
		t.Fatal("Get k1")
	}
	res = s2.GC()
	if res.EvictedSize != 1 {
		t.Fatalf("GC: %+v", res)
	}
	if _, ok := s2.Get(k1); !ok {
		t.Fatal("MRU artifact evicted instead of LRU")
	}
}

func TestGCSweepsCheckpoints(t *testing.T) {
	ckptDir := t.TempDir()
	s := openTest(t, Config{CheckpointDir: ckptDir, CheckpointMaxAge: time.Hour})
	done := testKey(13)
	if err := s.Put(done, Meta{}, testFiles()); err != nil {
		t.Fatal(err)
	}
	write := func(name string, age time.Duration) string {
		path := filepath.Join(ckptDir, name)
		if err := os.WriteFile(path, []byte("ckpt"), 0o644); err != nil {
			t.Fatal(err)
		}
		if age > 0 {
			old := time.Now().Add(-age)
			if err := os.Chtimes(path, old, old); err != nil {
				t.Fatal(err)
			}
		}
		return path
	}
	completed := write(done.String()+".ckpt", 0)             // run finished: sweep
	stale := write("alien-ram-p30-g8-s99.ckpt", 2*time.Hour) // cancelled, aged out: sweep
	tmp := write("cartpole-p64-g30-s1.ckpt.tmp", 0)          // interrupted save: sweep
	live := write("alien-ram-p30-g8-s100.ckpt", 0)           // orphan, young: keep
	unrelated := write("notes.txt", 2*time.Hour)             // not a checkpoint: keep
	res := s.GC()
	if res.CheckpointsSwept != 3 {
		t.Fatalf("GC: %+v", res)
	}
	for _, gone := range []string{completed, stale, tmp} {
		if _, err := os.Stat(gone); err == nil {
			t.Errorf("%s survived sweep", filepath.Base(gone))
		}
	}
	for _, kept := range []string{live, unrelated} {
		if _, err := os.Stat(kept); err != nil {
			t.Errorf("%s swept: %v", filepath.Base(kept), err)
		}
	}
}

func TestRecover(t *testing.T) {
	root, ckptDir := t.TempDir(), t.TempDir()
	s := openTest(t, Config{Root: root, CheckpointDir: ckptDir})
	good, bad, doneKey := testKey(14), testKey(15), testKey(16)
	for _, k := range []Key{good, bad, doneKey} {
		if err := s.Put(k, Meta{}, testFiles()); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt one artifact, orphan a staging dir, plant checkpoints.
	if err := os.WriteFile(filepath.Join(s.dirOf(bad), "trace.txt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "tmp", "cartpole-p64-g30-s9.1"), 0o755); err != nil {
		t.Fatal(err)
	}
	orphan := Key{Workload: "alien-ram", Population: 30, Generations: 8, Seed: 200}
	for _, name := range []string{orphan.String() + ".ckpt", doneKey.String() + ".ckpt"} {
		if err := os.WriteFile(filepath.Join(ckptDir, name), []byte("ckpt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A fresh Store over the same root: the restarted process.
	s2 := openTest(t, Config{Root: root, CheckpointDir: ckptDir})
	rep := s2.Recover()
	if rep.Verified != 2 || rep.Quarantined != 1 || rep.TmpSwept != 1 || rep.CheckpointsSwept != 1 {
		t.Fatalf("Recover: %+v", rep)
	}
	if len(rep.Interrupted) != 1 || rep.Interrupted[0] != orphan {
		t.Fatalf("Interrupted: %+v", rep.Interrupted)
	}
	if _, ok := s2.Get(good); !ok {
		t.Fatal("verified artifact unreadable after recovery")
	}
	if _, ok := s2.Get(bad); ok {
		t.Fatal("corrupt artifact survived recovery")
	}
}

func TestParseKeyFilename(t *testing.T) {
	good := map[string]Key{
		"cartpole-p64-g30-s42.ckpt":     {Workload: "cartpole", Population: 64, Generations: 30, Seed: 42},
		"alien-ram-p30-g8-s9001":        {Workload: "alien-ram", Population: 30, Generations: 8, Seed: 9001},
		"a_b-p1-g1-s0":                  {Workload: "a_b", Population: 1, Generations: 1, Seed: 0},
		"x-p2-g3-s18446744073709551615": {Workload: "x", Population: 2, Generations: 3, Seed: 18446744073709551615},
	}
	for name, want := range good {
		got, ok := ParseKeyFilename(name)
		if !ok || got != want {
			t.Errorf("ParseKeyFilename(%q) = %+v, %v; want %+v", name, got, ok, want)
		}
		if got.String() != strings.TrimSuffix(name, ".ckpt") {
			t.Errorf("round trip: %q -> %q", name, got.String())
		}
	}
	bad := []string{
		"", "notes.txt", "cartpole", "cartpole-p64-g30", "cartpole-pX-g30-s42",
		"cartpole-p64-g30-s-1", "cartpole-p0-g30-s42", "-p1-g1-s1",
		"cartpole-p64-g30-s042", // non-canonical number must not round-trip to a different name
	}
	for _, name := range bad {
		if k, ok := ParseKeyFilename(name); ok {
			t.Errorf("ParseKeyFilename(%q) accepted: %+v", name, k)
		}
	}
}

func TestCountersSnapshot(t *testing.T) {
	s := openTest(t, Config{})
	key := testKey(17)
	if err := s.Put(key, Meta{}, testFiles()); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("Get")
	}
	rep := s.Counters().Snapshot()
	if got := rep.Int("ops/hits"); got != 1 {
		t.Fatalf("ops/hits = %d", got)
	}
	if got := rep.Int("disk/artifacts"); got != 1 {
		t.Fatalf("disk/artifacts = %d", got)
	}
	if got := rep.Int("disk/bytes"); got <= 0 {
		t.Fatalf("disk/bytes = %d", got)
	}
}
