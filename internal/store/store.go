// Package store is the persistent, content-addressed run store: the
// on-disk half of the experiment harness's singleflight run cache.
// Completed evolution runs — their generation histories, final
// populations, and reproduction traces — are committed as checksummed
// artifacts addressed by the same (workload, population, generations,
// seed) tuple the in-memory cache keys on, so a run computed once
// survives daemon restarts and replays from disk instead of
// re-evolving. This is what makes a heavy-traffic deployment
// plausible: most submissions become a disk-or-memory hit that never
// touches the evolution engine.
//
// Robustness is the design center, mirroring the hardware side's
// fault discipline (internal/hw/fault): the serving layer deserves
// the same treatment the SRAM and NoC get.
//
//   - Atomic commits: an artifact is staged under tmp/ and renamed
//     into runs/ only once every payload and the manifest are fully
//     written. Readers can never observe a half-committed artifact;
//     a crash mid-commit leaves only a tmp/ orphan that startup
//     recovery sweeps.
//   - Checksummed manifests: every payload file's SHA-256 and size
//     are recorded in a manifest written last. Reads verify before
//     trusting.
//   - Corruption-tolerant reads: a bad artifact (torn write, bit rot,
//     hand-editing) is quarantined — moved aside with its reason, the
//     key freed — and the caller sees a miss, so the run transparently
//     recomputes instead of failing the job.
//   - Deterministic fault injection: the FS seam (fs.go) accepts a
//     seeded FaultFS so every degradation path above is exercised by
//     tests, not just argued about.
//
// All Store methods are safe for concurrent use. Multiple processes
// may share one store root: commits are atomic renames and duplicate
// commits of a key are idempotent (evolution is deterministic, so two
// processes committing the same key wrote the same bytes).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hw/hwsim"
)

// Schema is the manifest schema identifier; a manifest with any other
// value is treated as corrupt.
const Schema = "genesys-store/1"

// manifestFile is the per-artifact integrity record, written last
// during a commit.
const manifestFile = "manifest.json"

// reasonFile records why an artifact was quarantined (best-effort).
const reasonFile = "REASON"

// Key identifies one unique evolution run — the exact tuple the
// in-memory run cache keys on. Its canonical string form doubles as
// the artifact directory name and the checkpoint file stem, so the
// store, the scheduler's checkpoint files, and the cache all agree on
// identity by construction.
type Key struct {
	Workload    string `json:"workload"`
	Population  int    `json:"population"`
	Generations int    `json:"generations"`
	Seed        uint64 `json:"seed"`
	// Islands/MigrationEvery extend the tuple for island-model runs
	// (both zero for ordinary runs — the PR 7 key space is unchanged).
	// An island run is a different computation than an ordinary run of
	// the same (workload, pop, gens, seed), so the fields are part of
	// identity.
	Islands        int `json:"islands,omitempty"`
	MigrationEvery int `json:"migration_every,omitempty"`
	// Objectives extends the tuple for Pareto (multi-objective) runs:
	// the objective vector in identity order, joined with '+'
	// (e.g. "fitness+genes+energy"; empty for scalar runs). Vector
	// order is part of identity — it fixes the NSGA-II lexicographic
	// pre-sort and crowding accumulation order. Mutually exclusive
	// with the island fields.
	Objectives string `json:"objectives,omitempty"`
}

// String renders the canonical form, e.g. "cartpole-p64-g30-s42";
// island runs append the island fields: "cartpole-p64-g30-s42-i4-m5";
// Pareto runs append the objective vector:
// "cartpole-p64-g30-s42-ofitness+genes+energy".
func (k Key) String() string {
	base := fmt.Sprintf("%s-p%d-g%d-s%d", k.Workload, k.Population, k.Generations, k.Seed)
	if k.Islands > 0 {
		base += fmt.Sprintf("-i%d-m%d", k.Islands, k.MigrationEvery)
	}
	if k.Objectives != "" {
		base += "-o" + k.Objectives
	}
	return base
}

// validate rejects keys that cannot address a sane artifact directory.
func (k Key) validate() error {
	if k.Workload == "" {
		return fmt.Errorf("store: empty workload")
	}
	for _, r := range k.Workload {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return fmt.Errorf("store: workload %q: invalid character %q", k.Workload, r)
		}
	}
	if k.Population <= 0 {
		return fmt.Errorf("store: population %d", k.Population)
	}
	if k.Generations <= 0 {
		return fmt.Errorf("store: generations %d", k.Generations)
	}
	if k.Islands != 0 || k.MigrationEvery != 0 {
		if k.Islands < 2 {
			return fmt.Errorf("store: islands %d (need >= 2)", k.Islands)
		}
		if k.MigrationEvery < 1 {
			return fmt.Errorf("store: migration_every %d (need >= 1)", k.MigrationEvery)
		}
	}
	if k.Objectives != "" {
		if k.Islands != 0 {
			return fmt.Errorf("store: objectives and islands are mutually exclusive")
		}
		for _, seg := range strings.Split(k.Objectives, "+") {
			if seg == "" {
				return fmt.Errorf("store: objectives %q: empty segment", k.Objectives)
			}
			for _, r := range seg {
				if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '_' {
					return fmt.Errorf("store: objectives %q: invalid character %q", k.Objectives, r)
				}
			}
		}
	}
	return nil
}

// ParseKeyFilename recovers a Key from a checkpoint or artifact name
// of the canonical forms
//
//	<workload>-p<P>-g<G>-s<S>[-i<I>-m<M>][-o<objectives>][~<owner>][.ckpt]
//
// The "~<owner>" segment is the checkpoint owner suffix cluster-mode
// workers append so two workers can never interleave writes into the
// same checkpoint file; '~' never appears in a canonical key, so the
// strip is unambiguous. Workload names may themselves contain dashes,
// so the numeric fields parse from the right; the optional island and
// objectives fields are accepted only when they parse round-trip
// clean, otherwise the name is re-read as an ordinary key (a workload
// legitimately ending in "-i3-m2" or "-ofoo" is impossible to confuse
// because the strict round-trips and key validation arbitrate). It
// reports false for anything else.
func ParseKeyFilename(name string) (Key, bool) {
	name = strings.TrimSuffix(name, ".ckpt")
	if i := strings.LastIndex(name, "~"); i >= 0 {
		name = name[:i]
	}
	if k, ok := parseKeyName(name, false, true); ok {
		return k, true
	}
	if k, ok := parseKeyName(name, true, false); ok {
		return k, true
	}
	return parseKeyName(name, false, false)
}

// parseKeyName parses one canonical key name, optionally consuming the
// trailing island or objectives fields (mutually exclusive in valid
// keys, so the two are never requested together).
func parseKeyName(name string, islandFields, objectiveField bool) (Key, bool) {
	var k Key
	cut := func(sep string) (string, bool) {
		i := strings.LastIndex(name, sep)
		if i < 0 {
			return "", false
		}
		field := name[i+len(sep):]
		name = name[:i]
		return field, true
	}
	// numeric enforces an exact round-trip, so "07" or "3x" never parse.
	numeric := func(field string, dst *int) bool {
		if _, err := fmt.Sscanf(field, "%d", dst); err != nil || fmt.Sprintf("%d", *dst) != field {
			return false
		}
		return true
	}
	if objectiveField {
		o, ok := cut("-o")
		if !ok || o == "" {
			return Key{}, false
		}
		k.Objectives = o
	}
	if islandFields {
		m, ok := cut("-m")
		if !ok || !numeric(m, &k.MigrationEvery) {
			return Key{}, false
		}
		i, ok := cut("-i")
		if !ok || !numeric(i, &k.Islands) {
			return Key{}, false
		}
	}
	s, ok := cut("-s")
	if !ok {
		return Key{}, false
	}
	g, ok := cut("-g")
	if !ok {
		return Key{}, false
	}
	p, ok := cut("-p")
	if !ok {
		return Key{}, false
	}
	if _, err := fmt.Sscanf(s, "%d", &k.Seed); err != nil || fmt.Sprintf("%d", k.Seed) != s {
		return Key{}, false
	}
	if !numeric(g, &k.Generations) || !numeric(p, &k.Population) {
		return Key{}, false
	}
	k.Workload = name
	if k.validate() != nil {
		return Key{}, false
	}
	return k, true
}

// Meta is the artifact's summary record — what admin surfaces list
// without decoding payloads.
type Meta struct {
	Solved      bool    `json:"solved"`
	BestFitness float64 `json:"best_fitness"`
	Generations int     `json:"generations"`
}

// fileEntry is one payload file's integrity record.
type fileEntry struct {
	Name   string `json:"name"`
	SHA256 string `json:"sha256"`
	Size   int64  `json:"size"`
}

// manifest is the checksummed per-artifact integrity record.
type manifest struct {
	Schema      string      `json:"schema"`
	Key         Key         `json:"key"`
	Meta        Meta        `json:"meta"`
	CreatedUnix int64       `json:"created_unix"`
	Files       []fileEntry `json:"files"`
}

// decodeManifest parses and validates manifest bytes. Anything it
// rejects is corruption: the caller quarantines. It never panics on
// arbitrary input (pinned by FuzzManifest).
func decodeManifest(data []byte) (*manifest, error) {
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	if m.Schema != Schema {
		return nil, fmt.Errorf("schema %q, want %q", m.Schema, Schema)
	}
	if err := m.Key.validate(); err != nil {
		return nil, err
	}
	if len(m.Files) == 0 {
		return nil, fmt.Errorf("manifest lists no files")
	}
	seen := map[string]bool{}
	for _, fe := range m.Files {
		if fe.Name == "" || fe.Name == manifestFile || fe.Name == reasonFile ||
			strings.ContainsAny(fe.Name, `/\`) || strings.Contains(fe.Name, "..") {
			return nil, fmt.Errorf("bad file name %q", fe.Name)
		}
		if seen[fe.Name] {
			return nil, fmt.Errorf("duplicate file %q", fe.Name)
		}
		seen[fe.Name] = true
		if fe.Size < 0 {
			return nil, fmt.Errorf("file %q: negative size", fe.Name)
		}
		if len(fe.SHA256) != hex.EncodedLen(sha256.Size) {
			return nil, fmt.Errorf("file %q: bad digest length", fe.Name)
		}
		if _, err := hex.DecodeString(fe.SHA256); err != nil {
			return nil, fmt.Errorf("file %q: bad digest: %w", fe.Name, err)
		}
	}
	return &m, nil
}

// Artifact is one verified read: the payload files exactly as
// committed.
type Artifact struct {
	Key   Key
	Meta  Meta
	Files map[string][]byte
}

// Config tunes a store. Zero values select the defaults.
type Config struct {
	// Root is the store directory (created on Open).
	Root string
	// MaxBytes bounds the total payload bytes under runs/; GC evicts
	// least-recently-used artifacts over the budget. 0 = unlimited.
	MaxBytes int64
	// MaxAge bounds artifact idle time (since last hit or commit); GC
	// evicts older ones. 0 = unlimited.
	MaxAge time.Duration
	// CheckpointDir, when set, is swept by GC and Recover: checkpoint
	// files of completed runs (their artifact exists) are removed, stale
	// ones past CheckpointMaxAge are removed, and orphaned ones are
	// reported by Recover for re-enqueueing.
	CheckpointDir string
	// CheckpointMaxAge bounds how long an orphaned checkpoint may sit
	// before GC reclaims it (a cancelled job whose spec is never
	// resubmitted would otherwise leak its checkpoint forever).
	// 0 = unlimited.
	CheckpointMaxAge time.Duration
	// FS is the filesystem seam; nil means the real OS filesystem. A
	// FaultFS here makes every degradation path deterministic.
	FS FS
	// Now is the clock seam for GC age decisions; nil means time.Now.
	Now func() time.Time
}

// Store is one opened artifact store.
type Store struct {
	cfg Config
	fs  FS
	now func() time.Time

	// mu serializes structural transitions (commit renames, quarantine
	// moves, GC, recovery). Reads verify immutable committed artifacts
	// and only take mu if they need to quarantine.
	mu  sync.Mutex
	seq atomic.Int64

	counters *hwsim.Counters
	ops      *hwsim.Counters
	gcCtr    *hwsim.Counters
}

// Open initializes the store layout under cfg.Root.
func Open(cfg Config) (*Store, error) {
	s := &Store{cfg: cfg, fs: cfg.FS, now: cfg.Now}
	if s.fs == nil {
		s.fs = OSFS{}
	}
	if s.now == nil {
		s.now = time.Now
	}
	for _, dir := range []string{s.runsDir(), s.tmpDir(), s.quarDir()} {
		if err := s.fs.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: open: %w", err)
		}
	}
	s.counters = hwsim.New("store")
	s.ops = s.counters.Child("ops")
	s.gcCtr = s.counters.Child("gc")
	s.counters.Child("disk").OnSnapshot(func(c *hwsim.Counters) {
		n, bytes := s.diskUsage()
		c.SetInt("artifacts", int64(n))
		c.SetInt("bytes", bytes)
		c.SetInt("quarantine_entries", int64(len(s.Quarantined())))
	})
	return s, nil
}

// Counters exposes the store's hwsim registry node (mounted under the
// daemon's /metrics tree as "store").
func (s *Store) Counters() *hwsim.Counters { return s.counters }

func (s *Store) runsDir() string { return filepath.Join(s.cfg.Root, "runs") }
func (s *Store) tmpDir() string  { return filepath.Join(s.cfg.Root, "tmp") }
func (s *Store) quarDir() string { return filepath.Join(s.cfg.Root, "quarantine") }

// dirOf is the committed location of one key's artifact.
func (s *Store) dirOf(key Key) string { return filepath.Join(s.runsDir(), key.String()) }

func digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Has reports whether a committed artifact exists for the key (no
// payload verification — a cheap existence probe for GC and recovery).
func (s *Store) Has(key Key) bool {
	_, err := s.fs.Stat(filepath.Join(s.dirOf(key), manifestFile))
	return err == nil
}

// Put commits one artifact: payload files staged under tmp/, manifest
// written last, then one atomic rename into runs/. A key that already
// has an artifact is left untouched (runs are deterministic, so the
// existing bytes are the same result). Commit failures are accounted
// and returned but are safe to ignore — the store degrades to a
// cache miss, never to wrong data.
func (s *Store) Put(key Key, meta Meta, files map[string][]byte) error {
	if err := key.validate(); err != nil {
		s.ops.AddInt("commit_errors", 1)
		return err
	}
	if len(files) == 0 {
		s.ops.AddInt("commit_errors", 1)
		return fmt.Errorf("store: put %s: no files", key)
	}
	if s.Has(key) {
		s.ops.AddInt("duplicate_commits", 1)
		return nil
	}

	staging := filepath.Join(s.tmpDir(), fmt.Sprintf("%s.%d", key, s.seq.Add(1)))
	fail := func(err error) error {
		s.fs.RemoveAll(staging)
		s.ops.AddInt("commit_errors", 1)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	if err := s.fs.MkdirAll(staging, 0o755); err != nil {
		return fail(err)
	}

	man := manifest{Schema: Schema, Key: key, Meta: meta, CreatedUnix: s.now().Unix()}
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	var written int64
	for _, name := range names {
		if name == "" || name == manifestFile || name == reasonFile ||
			strings.ContainsAny(name, `/\`) || strings.Contains(name, "..") {
			return fail(fmt.Errorf("bad file name %q", name))
		}
		data := files[name]
		if err := s.fs.WriteFile(filepath.Join(staging, name), data, 0o644); err != nil {
			return fail(err)
		}
		man.Files = append(man.Files, fileEntry{Name: name, SHA256: digest(data), Size: int64(len(data))})
		written += int64(len(data))
	}
	manData, err := json.MarshalIndent(&man, "", "  ")
	if err != nil {
		return fail(err)
	}
	if err := s.fs.WriteFile(filepath.Join(staging, manifestFile), manData, 0o644); err != nil {
		return fail(err)
	}

	s.mu.Lock()
	err = s.fs.Rename(staging, s.dirOf(key))
	s.mu.Unlock()
	if err != nil {
		s.fs.RemoveAll(staging)
		if s.Has(key) {
			// Lost a benign race: someone committed the identical result
			// first.
			s.ops.AddInt("duplicate_commits", 1)
			return nil
		}
		s.ops.AddInt("commit_errors", 1)
		return fmt.Errorf("store: put %s: %w", key, err)
	}
	s.ops.AddInt("commits", 1)
	s.ops.AddInt("bytes_written", written)
	return nil
}

// Get reads and verifies one artifact. A miss returns (nil, false); so
// does any integrity failure — manifest undecodable, key mismatch,
// payload size or checksum wrong — after the artifact is quarantined,
// so the caller's recompute can commit a fresh one under the same key.
func (s *Store) Get(key Key) (*Artifact, bool) {
	dir := s.dirOf(key)
	manPath := filepath.Join(dir, manifestFile)
	data, err := s.fs.ReadFile(manPath)
	if err != nil {
		s.ops.AddInt("misses", 1)
		return nil, false
	}
	man, err := decodeManifest(data)
	if err != nil {
		s.quarantine(dir, fmt.Sprintf("manifest: %v", err))
		s.ops.AddInt("misses", 1)
		return nil, false
	}
	if man.Key != key {
		s.quarantine(dir, fmt.Sprintf("manifest key %s under directory for %s", man.Key, key))
		s.ops.AddInt("misses", 1)
		return nil, false
	}
	art := &Artifact{Key: key, Meta: man.Meta, Files: make(map[string][]byte, len(man.Files))}
	var read int64
	for _, fe := range man.Files {
		b, err := s.fs.ReadFile(filepath.Join(dir, fe.Name))
		switch {
		case err != nil:
			s.quarantine(dir, fmt.Sprintf("payload %s: %v", fe.Name, err))
		case int64(len(b)) != fe.Size:
			s.quarantine(dir, fmt.Sprintf("payload %s: %d bytes, manifest says %d", fe.Name, len(b), fe.Size))
		case digest(b) != fe.SHA256:
			s.quarantine(dir, fmt.Sprintf("payload %s: checksum mismatch", fe.Name))
		default:
			art.Files[fe.Name] = b
			read += int64(len(b))
			continue
		}
		s.ops.AddInt("misses", 1)
		return nil, false
	}
	s.ops.AddInt("hits", 1)
	s.ops.AddInt("bytes_read", read)
	// Stamp recency for the GC's LRU ordering (best-effort).
	now := s.now()
	s.fs.Chtimes(manPath, now, now)
	return art, true
}

// QuarantineKey moves a key's artifact aside. It is the seam for the
// decode layer above the store: an artifact whose bytes verify but
// whose payload fails semantic decoding is just as corrupt as a
// checksum mismatch.
func (s *Store) QuarantineKey(key Key, reason string) {
	s.quarantine(s.dirOf(key), reason)
}

// quarantine moves an artifact directory into quarantine/ (or removes
// it if the move fails), freeing the key for a fresh recompute.
func (s *Store) quarantine(dir, reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.fs.Stat(dir); err != nil {
		return // already quarantined by a concurrent reader
	}
	dest := filepath.Join(s.quarDir(), fmt.Sprintf("%s.%d", filepath.Base(dir), s.seq.Add(1)))
	if err := s.fs.Rename(dir, dest); err != nil {
		// A poisoned artifact must never wedge its key: removal is the
		// fallback when the move itself fails.
		s.fs.RemoveAll(dir)
	} else {
		// Best-effort breadcrumb for the admin surface.
		s.fs.WriteFile(filepath.Join(dest, reasonFile), []byte(reason+"\n"), 0o644)
	}
	s.ops.AddInt("quarantined", 1)
}

// QuarantineEntry describes one quarantined artifact.
type QuarantineEntry struct {
	Name   string `json:"name"`
	Reason string `json:"reason,omitempty"`
	Bytes  int64  `json:"bytes"`
}

// Quarantined lists the quarantine directory, oldest name first.
func (s *Store) Quarantined() []QuarantineEntry {
	entries, err := s.fs.ReadDir(s.quarDir())
	if err != nil {
		return nil
	}
	out := make([]QuarantineEntry, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		q := QuarantineEntry{Name: e.Name()}
		dir := filepath.Join(s.quarDir(), e.Name())
		if b, err := s.fs.ReadFile(filepath.Join(dir, reasonFile)); err == nil {
			q.Reason = strings.TrimSpace(string(b))
		}
		q.Bytes = s.dirBytes(dir)
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PurgeQuarantine deletes every quarantined artifact, returning how
// many were removed.
func (s *Store) PurgeQuarantine() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := s.fs.ReadDir(s.quarDir())
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if s.fs.RemoveAll(filepath.Join(s.quarDir(), e.Name())) == nil {
			n++
		}
	}
	return n
}

// Stats is the admin-surface snapshot of the store.
type Stats struct {
	Artifacts         int   `json:"artifacts"`
	DiskBytes         int64 `json:"disk_bytes"`
	QuarantineEntries int   `json:"quarantine_entries"`
	Hits              int64 `json:"hits"`
	Misses            int64 `json:"misses"`
	Quarantined       int64 `json:"quarantined"`
	Commits           int64 `json:"commits"`
	CommitErrors      int64 `json:"commit_errors"`
	DuplicateCommits  int64 `json:"duplicate_commits"`
	EvictedAge        int64 `json:"evicted_age"`
	EvictedSize       int64 `json:"evicted_size"`
	BytesReclaimed    int64 `json:"bytes_reclaimed"`
	CheckpointsSwept  int64 `json:"checkpoints_swept"`
}

// Stats scans the store and reads the op counters.
func (s *Store) Stats() Stats {
	n, bytes := s.diskUsage()
	return Stats{
		Artifacts:         n,
		DiskBytes:         bytes,
		QuarantineEntries: len(s.Quarantined()),
		Hits:              s.ops.IntValue("hits"),
		Misses:            s.ops.IntValue("misses"),
		Quarantined:       s.ops.IntValue("quarantined"),
		Commits:           s.ops.IntValue("commits"),
		CommitErrors:      s.ops.IntValue("commit_errors"),
		DuplicateCommits:  s.ops.IntValue("duplicate_commits"),
		EvictedAge:        s.gcCtr.IntValue("evicted_age"),
		EvictedSize:       s.gcCtr.IntValue("evicted_size"),
		BytesReclaimed:    s.gcCtr.IntValue("bytes_reclaimed"),
		CheckpointsSwept:  s.gcCtr.IntValue("checkpoints_swept"),
	}
}

// diskUsage sums committed artifacts and their payload bytes.
func (s *Store) diskUsage() (artifacts int, bytes int64) {
	entries, err := s.fs.ReadDir(s.runsDir())
	if err != nil {
		return 0, 0
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		artifacts++
		bytes += s.dirBytes(filepath.Join(s.runsDir(), e.Name()))
	}
	return artifacts, bytes
}

// dirBytes sums the file sizes directly under dir.
func (s *Store) dirBytes(dir string) int64 {
	files, err := s.fs.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, f := range files {
		if info, err := f.Info(); err == nil && !info.IsDir() {
			total += info.Size()
		}
	}
	return total
}
