package store

import (
	"errors"
	"testing"
)

// TestTornWriteDegradesToMiss commits through an FS that tears writes:
// the manifest (written last) or a payload lands truncated. Whatever
// tore, the reader must never see wrong data — only a quarantine-then-
// miss, after which a clean recommit restores service.
func TestTornWriteDegradesToMiss(t *testing.T) {
	for _, every := range []int{1, 2, 3, 4} {
		root := t.TempDir()
		ffs := &FaultFS{Inner: OSFS{}, Seed: uint64(every), TornWriteEvery: every}
		s, err := Open(Config{Root: root, FS: ffs})
		if err != nil {
			t.Fatal(err)
		}
		key := testKey(uint64(20 + every))
		meta := Meta{Solved: true, BestFitness: 7}
		s.Put(key, meta, testFiles()) // may "succeed" with torn bytes on disk

		art, ok := s.Get(key)
		if ok {
			// Only acceptable if the surviving bytes verify exactly — which
			// with a strict-prefix tear of non-empty files cannot happen for
			// the torn file, so a hit means every torn write missed this
			// artifact's files. Verify content integrity regardless.
			if art.Meta != meta {
				t.Fatalf("every=%d: torn artifact served with wrong meta: %+v", every, art.Meta)
			}
			continue
		}
		// Degraded to a miss: the key must be free for recompute on a
		// healthy disk.
		s2, err := Open(Config{Root: root})
		if err != nil {
			t.Fatal(err)
		}
		if err := s2.Put(key, meta, testFiles()); err != nil {
			t.Fatalf("every=%d: recommit after torn write: %v", every, err)
		}
		if got, ok := s2.Get(key); !ok || got.Meta != meta {
			t.Fatalf("every=%d: recompute path broken: ok=%v", every, ok)
		}
	}
}

// TestBitRotQuarantines serves reads through a bit-flipping FS: every
// read is rotten, so the verified Get must quarantine and miss, never
// return flipped bytes.
func TestBitRotQuarantines(t *testing.T) {
	root := t.TempDir()
	s, err := Open(Config{Root: root})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(30)
	if err := s.Put(key, Meta{}, testFiles()); err != nil {
		t.Fatal(err)
	}

	ffs := &FaultFS{Inner: OSFS{}, Seed: 99, BitRotEvery: 1}
	rotten, err := Open(Config{Root: root, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rotten.Get(key); ok {
		t.Fatal("Get served bit-rotten data")
	}
	if st := rotten.Stats(); st.Quarantined != 1 {
		t.Fatalf("Stats: %+v", st)
	}
}

// TestDiskFullFailsCommitCleanly fails writes with ErrDiskFull: the
// commit must report the error, leave no staging garbage, and leave
// the store serving.
func TestDiskFullFailsCommitCleanly(t *testing.T) {
	root := t.TempDir()
	ffs := &FaultFS{Inner: OSFS{}, WriteFailEvery: 1}
	s, err := Open(Config{Root: root, FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(31)
	if err := s.Put(key, Meta{}, testFiles()); !errors.Is(err, ErrDiskFull) {
		t.Fatalf("Put: %v, want ErrDiskFull", err)
	}
	st := s.Stats()
	if st.CommitErrors != 1 || st.Artifacts != 0 {
		t.Fatalf("Stats: %+v", st)
	}
	entries, err := s.fs.ReadDir(s.tmpDir())
	if err != nil || len(entries) != 0 {
		t.Fatalf("tmp not clean: %d entries, err %v", len(entries), err)
	}
	// Disk recovers: the same store commits fine.
	ffs.WriteFailEvery = 0
	if err := s.Put(key, Meta{}, testFiles()); err != nil {
		t.Fatalf("Put after recovery: %v", err)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("Get after recovery")
	}
}

// TestFaultsAreDeterministic pins the FaultFS contract: the same seed
// and schedule corrupt the same bytes.
func TestFaultsAreDeterministic(t *testing.T) {
	run := func() ([]byte, bool) {
		root := t.TempDir()
		s, err := Open(Config{Root: root})
		if err != nil {
			t.Fatal(err)
		}
		key := testKey(32)
		if err := s.Put(key, Meta{}, testFiles()); err != nil {
			t.Fatal(err)
		}
		ffs := &FaultFS{Inner: OSFS{}, Seed: 7, BitRotEvery: 2}
		data1, err1 := ffs.ReadFile(s.dirOf(key) + "/history.json")
		if err1 != nil {
			t.Fatal(err1)
		}
		data2, err2 := ffs.ReadFile(s.dirOf(key) + "/history.json")
		if err2 != nil {
			t.Fatal(err2)
		}
		// Read 1 clean, read 2 rotten (every 2nd).
		return data2, string(data1) == string(data2)
	}
	a, sameA := run()
	b, sameB := run()
	if sameA || sameB {
		t.Fatal("BitRotEvery=2 did not rot the second read")
	}
	if string(a) != string(b) {
		t.Fatalf("same seed rotted different bytes:\n%q\n%q", a, b)
	}
}
