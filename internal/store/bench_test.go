package store

import (
	"fmt"
	"testing"
)

// BenchmarkStoreHitThroughput measures the verified read path — the
// hot loop of a warm daemon where most submissions replay from disk.
// One artifact shaped like a real committed run (~64 KiB history +
// population + trace), read and checksum-verified per iteration.
func BenchmarkStoreHitThroughput(b *testing.B) {
	s, err := Open(Config{Root: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	key := Key{Workload: "cartpole", Population: 64, Generations: 30, Seed: 42}
	history := make([]byte, 0, 48<<10)
	for g := 0; len(history) < 48<<10; g++ {
		history = append(history, fmt.Sprintf(`{"generation":%d,"best_fitness":%f,"mean_fitness":%f,"species":%d}`+"\n",
			g, float64(g)*1.618, float64(g)*0.577, 5+g%7)...)
	}
	population := make([]byte, 12<<10)
	for i := range population {
		population[i] = byte('a' + i%26)
	}
	files := map[string][]byte{
		"history.json":    history,
		"population.json": population,
		"trace.txt":       []byte("G 0\nP 1 2\nC 3 4\n"),
	}
	if err := s.Put(key, Meta{Solved: true, BestFitness: 199, Generations: 30}, files); err != nil {
		b.Fatal(err)
	}
	var total int64
	for _, data := range files {
		total += int64(len(data))
	}
	b.SetBytes(total)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		art, ok := s.Get(key)
		if !ok {
			b.Fatal("miss")
		}
		if len(art.Files) != 3 {
			b.Fatal("short read")
		}
	}
}
