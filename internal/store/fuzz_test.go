package store

import (
	"encoding/json"
	"testing"
)

// FuzzManifest feeds arbitrary bytes to the manifest decoder — the one
// store input a crashed or hostile writer controls. The contract is
// the quarantine path's foundation: never panic, and anything accepted
// is internally consistent enough to drive verification.
func FuzzManifest(f *testing.F) {
	valid, _ := json.Marshal(&manifest{
		Schema: Schema,
		Key:    Key{Workload: "cartpole", Population: 64, Generations: 30, Seed: 42},
		Meta:   Meta{Solved: true, BestFitness: 1.5, Generations: 12},
		Files: []fileEntry{{
			Name:   "history.json",
			SHA256: "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08",
			Size:   3,
		}},
	})
	front, _ := json.Marshal(&manifest{
		Schema: Schema,
		Key: Key{Workload: "cartpole", Population: 64, Generations: 30, Seed: 42,
			Objectives: "fitness+genes+energy"},
		Meta: Meta{BestFitness: 88.5, Generations: 30},
		Files: []fileEntry{{
			Name:   "pareto.json",
			SHA256: "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08",
			Size:   3,
		}},
	})
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn write
	f.Add(front)                // Pareto-front artifact manifest
	f.Add(front[:len(front)/2])
	f.Add([]byte(`{"schema":"genesys-store/1","key":{"workload":"x","population":1,"generations":1,"objectives":"fit-ness"},"files":[{"name":"pareto.json","sha256":"00","size":1}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"schema":"genesys-store/1"}`))
	f.Add([]byte(`{"schema":"genesys-store/1","key":{"workload":"x","population":1,"generations":1},"files":[]}`))
	f.Add([]byte(`{"schema":"genesys-store/1","key":{"workload":"x","population":1,"generations":1},"files":[{"name":"../evil","sha256":"00","size":-1}]}`))
	f.Add([]byte(`null`))
	f.Add([]byte("\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeManifest(data)
		if err != nil {
			return
		}
		// Accepted manifests must satisfy the invariants verification
		// relies on.
		if m.Schema != Schema {
			t.Fatalf("accepted schema %q", m.Schema)
		}
		if err := m.Key.validate(); err != nil {
			t.Fatalf("accepted invalid key: %v", err)
		}
		if len(m.Files) == 0 {
			t.Fatal("accepted empty file list")
		}
		seen := map[string]bool{}
		for _, fe := range m.Files {
			if fe.Name == "" || fe.Name == manifestFile || seen[fe.Name] {
				t.Fatalf("accepted bad/duplicate file name %q", fe.Name)
			}
			seen[fe.Name] = true
			if fe.Size < 0 || len(fe.SHA256) != 64 {
				t.Fatalf("accepted bad entry %+v", fe)
			}
		}
		// And re-encoding must round-trip through the decoder.
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		if _, err := decodeManifest(out); err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
	})
}

// FuzzCheckpointKey pins ParseKeyFilename: arbitrary directory entries
// (recovery scans them) never panic, and anything accepted round-trips
// to its canonical name.
func FuzzCheckpointKey(f *testing.F) {
	f.Add("cartpole-p64-g30-s42.ckpt")
	f.Add("alien-ram-p30-g8-s9001")
	f.Add("cartpole-p64-g30-s42-ofitness+genes+energy")
	f.Add("x-p2-g3-s1-o")
	f.Add("foo-obar-p8-g5-s1")
	f.Add("x-p2-g3-s18446744073709551615")
	f.Add("notes.txt")
	f.Add("-p1-g1-s1")
	f.Add("a-p-1-g1-s1")
	f.Add("")

	f.Fuzz(func(t *testing.T, name string) {
		k, ok := ParseKeyFilename(name)
		if !ok {
			return
		}
		want := name
		if len(want) >= 5 && want[len(want)-5:] == ".ckpt" {
			want = want[:len(want)-5]
		}
		if k.String() != want {
			t.Fatalf("ParseKeyFilename(%q) = %+v does not round-trip: %q", name, k, k.String())
		}
	})
}
