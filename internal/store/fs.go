package store

import (
	"errors"
	"io/fs"
	"os"
	"sync/atomic"
	"time"
)

// FS is the store's filesystem seam: the eight operations the store
// performs, injectable so tests drive every degradation path with a
// deterministic fault layer instead of hoping the disk misbehaves on
// cue.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	MkdirAll(path string, perm fs.FileMode) error
	RemoveAll(path string) error
	ReadDir(name string) ([]fs.DirEntry, error)
	Stat(name string) (fs.FileInfo, error)
	Chtimes(name string, atime, mtime time.Time) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OSFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OSFS) Stat(name string) (fs.FileInfo, error)        { return os.Stat(name) }
func (OSFS) Chtimes(name string, atime, mtime time.Time) error {
	return os.Chtimes(name, atime, mtime)
}

// ErrDiskFull is the write failure a FaultFS injects.
var ErrDiskFull = errors.New("store: injected disk full")

// FaultFS wraps an FS with seeded, deterministic fault injection in
// the spirit of internal/hw/fault: each fault is a pure function of
// (Seed, operation index), so a failing sequence replays identically
// under the same configuration, and the zero configuration is a
// transparent pass-through.
//
// Operation indices count only the fault-eligible calls: WriteFile
// draws for TornWriteEvery and WriteFailEvery, ReadFile for
// BitRotEvery. Periods are in units of those calls: TornWriteEvery=3
// tears every third write.
type FaultFS struct {
	Inner FS
	// Seed selects which byte/bit each injected fault hits.
	Seed uint64
	// TornWriteEvery > 0 truncates every Nth WriteFile to a strict
	// prefix while still reporting success — the classic crash-mid-write
	// artifact.
	TornWriteEvery int
	// BitRotEvery > 0 flips one bit in every Nth successful ReadFile —
	// silent media decay.
	BitRotEvery int
	// WriteFailEvery > 0 fails every Nth WriteFile with ErrDiskFull
	// (after the torn-write draw, so the two compose deterministically).
	WriteFailEvery int

	writes atomic.Uint64
	reads  atomic.Uint64
}

// mix is splitmix64: one well-scattered draw per (seed, index).
func mix(seed, index uint64) uint64 {
	z := seed + index*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	n := f.writes.Add(1)
	if f.WriteFailEvery > 0 && n%uint64(f.WriteFailEvery) == 0 {
		return ErrDiskFull
	}
	if f.TornWriteEvery > 0 && n%uint64(f.TornWriteEvery) == 0 && len(data) > 0 {
		cut := mix(f.Seed, n) % uint64(len(data)) // strict prefix: [0, len)
		return f.Inner.WriteFile(name, data[:cut], perm)
	}
	return f.Inner.WriteFile(name, data, perm)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	data, err := f.Inner.ReadFile(name)
	if err != nil {
		return data, err
	}
	n := f.reads.Add(1)
	if f.BitRotEvery > 0 && n%uint64(f.BitRotEvery) == 0 && len(data) > 0 {
		rotten := make([]byte, len(data))
		copy(rotten, data)
		draw := mix(f.Seed, n)
		rotten[draw%uint64(len(data))] ^= 1 << (draw >> 32 % 8)
		return rotten, nil
	}
	return data, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error { return f.Inner.Rename(oldpath, newpath) }
func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	return f.Inner.MkdirAll(path, perm)
}
func (f *FaultFS) RemoveAll(path string) error                { return f.Inner.RemoveAll(path) }
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.Inner.ReadDir(name) }
func (f *FaultFS) Stat(name string) (fs.FileInfo, error)      { return f.Inner.Stat(name) }
func (f *FaultFS) Chtimes(name string, atime, mtime time.Time) error {
	return f.Inner.Chtimes(name, atime, mtime)
}
