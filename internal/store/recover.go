package store

import (
	"path/filepath"
	"sort"
	"strings"
)

// RecoveryReport accounts one startup-recovery pass.
type RecoveryReport struct {
	// Interrupted holds the keys of orphaned checkpoints: runs that were
	// in flight when the previous process died and should be re-enqueued
	// so they resume from their checkpoints.
	Interrupted []Key
	// Verified counts committed artifacts that passed full verification.
	Verified int
	// Quarantined counts artifacts that failed it and were moved aside.
	Quarantined int
	// TmpSwept counts abandoned staging directories removed from tmp/.
	TmpSwept int
	// CheckpointsSwept counts checkpoint files reclaimed because their
	// run already has a committed artifact (completed before the crash).
	CheckpointsSwept int
}

// Recover is the startup pass after an unclean shutdown (or any
// start — it is a no-op on a healthy store). It sweeps abandoned
// commit staging from tmp/, fully verifies every committed artifact
// (quarantining corruption now, at boot, rather than at first read
// under traffic), reclaims checkpoints of completed runs, and returns
// the keys of orphaned checkpoints so the scheduler can re-enqueue the
// interrupted runs.
func (s *Store) Recover() RecoveryReport {
	var rep RecoveryReport

	// Abandoned staging: a crash between "stage" and "rename" leaves the
	// partial artifact here, never in runs/, which is the atomicity
	// argument in one line.
	if entries, err := s.fs.ReadDir(s.tmpDir()); err == nil {
		for _, e := range entries {
			if s.fs.RemoveAll(filepath.Join(s.tmpDir(), e.Name())) == nil {
				rep.TmpSwept++
			}
		}
	}

	// Full verification of the committed set. Get already quarantines on
	// any integrity failure; the hit-vs-quarantine delta is observable
	// through the same counters traffic uses.
	if entries, err := s.fs.ReadDir(s.runsDir()); err == nil {
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			key, ok := ParseKeyFilename(e.Name())
			if !ok {
				// Not a canonical artifact name: it can never be addressed
				// by Get, so treat it as corruption.
				s.quarantine(filepath.Join(s.runsDir(), e.Name()), "unparseable artifact name")
				rep.Quarantined++
				continue
			}
			if _, ok := s.Get(key); ok {
				rep.Verified++
			} else {
				rep.Quarantined++
			}
		}
	}

	// Checkpoints: completed runs' checkpoints are reclaimed; the rest
	// are interrupted runs to re-enqueue. Owner-suffixed files
	// ("<key>~<worker>.ckpt") from different workers can map to the same
	// key, so the interrupted set is deduplicated — one re-enqueue per
	// key no matter how many workers left a checkpoint behind.
	if s.cfg.CheckpointDir != "" {
		interrupted := map[Key]bool{}
		entries, err := s.fs.ReadDir(s.cfg.CheckpointDir)
		if err == nil {
			for _, e := range entries {
				name := e.Name()
				if e.IsDir() || !strings.HasSuffix(name, ".ckpt") {
					continue
				}
				key, ok := ParseKeyFilename(name)
				if !ok {
					continue
				}
				if s.Has(key) {
					if s.fs.RemoveAll(filepath.Join(s.cfg.CheckpointDir, name)) == nil {
						rep.CheckpointsSwept++
					}
					continue
				}
				if !interrupted[key] {
					interrupted[key] = true
					rep.Interrupted = append(rep.Interrupted, key)
				}
			}
		}
	}
	sort.Slice(rep.Interrupted, func(i, j int) bool {
		return rep.Interrupted[i].String() < rep.Interrupted[j].String()
	})
	return rep
}
