package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestParseKeyFilenameObjectives pins the Pareto key extension: the
// "-o<objectives>" suffix parses, round-trips, and never confuses
// ordinary or island keys.
func TestParseKeyFilenameObjectives(t *testing.T) {
	good := map[string]Key{
		"cartpole-p64-g30-s42-ofitness+genes+energy": {
			Workload: "cartpole", Population: 64, Generations: 30, Seed: 42,
			Objectives: "fitness+genes+energy",
		},
		"alien-ram-p30-g8-s9-ofitness+energy.ckpt": {
			Workload: "alien-ram", Population: 30, Generations: 8, Seed: 9,
			Objectives: "fitness+energy",
		},
		"x-p2-g3-s1-ogenes+energy": {
			Workload: "x", Population: 2, Generations: 3, Seed: 1,
			Objectives: "genes+energy",
		},
		// A workload whose name contains "-o" must still parse as an
		// ordinary key (the objectives charset rejects the dash-bearing
		// candidate field).
		"foo-obar-p8-g5-s1": {Workload: "foo-obar", Population: 8, Generations: 5, Seed: 1},
		// Island keys are untouched by the objectives pass.
		"cartpole-p64-g30-s42-i4-m5": {
			Workload: "cartpole", Population: 64, Generations: 30, Seed: 42,
			Islands: 4, MigrationEvery: 5,
		},
	}
	for name, want := range good {
		got, ok := ParseKeyFilename(name)
		if !ok || got != want {
			t.Errorf("ParseKeyFilename(%q) = %+v, %v; want %+v", name, got, ok, want)
		}
	}
	bad := []string{
		"cartpole-p64-g30-s42-o",         // empty objectives
		"cartpole-p64-g30-s42-o++",       // empty segments
		"cartpole-p64-g30-s42-oA+B",      // uppercase outside charset
		"cartpole-p64-g30-s42-ofit-ness", // dash inside objective name
	}
	for _, name := range bad {
		if k, ok := ParseKeyFilename(name); ok {
			t.Errorf("ParseKeyFilename(%q) accepted: %+v", name, k)
		}
	}
}

// TestKeyObjectivesValidate pins the validation rules of the extended
// tuple.
func TestKeyObjectivesValidate(t *testing.T) {
	ok := Key{Workload: "cartpole", Population: 64, Generations: 30, Seed: 42, Objectives: "fitness+genes+energy"}
	if err := ok.validate(); err != nil {
		t.Fatalf("valid pareto key rejected: %v", err)
	}
	if got := ok.String(); got != "cartpole-p64-g30-s42-ofitness+genes+energy" {
		t.Fatalf("String() = %q", got)
	}
	bad := []Key{
		{Workload: "c", Population: 1, Generations: 1, Objectives: "fitness", Islands: 2, MigrationEvery: 1},
		{Workload: "c", Population: 1, Generations: 1, Objectives: "fit-ness"},
		{Workload: "c", Population: 1, Generations: 1, Objectives: "+fitness"},
		{Workload: "c", Population: 1, Generations: 1, Objectives: "Fitness"},
	}
	for _, k := range bad {
		if err := k.validate(); err == nil {
			t.Errorf("validate accepted %+v", k)
		}
	}
}

// TestFrontArtifactRoundTrip stores a Pareto-front artifact under an
// objectives key and requires the verified Get to return the payload
// byte-identically — the disk-replay path of pareto jobs — then pins
// the quarantine-on-corruption contract for the same artifact class.
func TestFrontArtifactRoundTrip(t *testing.T) {
	s := openTest(t, Config{})
	key := Key{
		Workload: "cartpole", Population: 32, Generations: 10, Seed: 7,
		Objectives: "fitness+genes+energy",
	}
	payload := []byte(`{"schema":"genesys-pareto/1","run":{"workload":"cartpole","front":[{"genome_id":3,"values":{"energy":1205.4,"fitness":88.5,"genes":24},"crowding":1.7976931348623157e+308}]}}`)
	if err := s.Put(key, Meta{Solved: false, BestFitness: 88.5, Generations: 10}, map[string][]byte{
		"pareto.json": payload,
	}); err != nil {
		t.Fatal(err)
	}
	art, hit := s.Get(key)
	if !hit {
		t.Fatal("front artifact not found")
	}
	if art.Key != key {
		t.Fatalf("artifact key %+v != %+v", art.Key, key)
	}
	if !bytes.Equal(art.Files["pareto.json"], payload) {
		t.Fatal("front payload not byte-identical after round trip")
	}

	// Corrupt the payload on disk: the verified Get must refuse and
	// quarantine rather than replay a damaged front.
	path := filepath.Join(s.dirOf(key), "pareto.json")
	if err := os.WriteFile(path, append(payload, 'x'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, hit := s.Get(key); hit {
		t.Fatal("corrupt front artifact replayed")
	}
	if len(s.Quarantined()) == 0 {
		t.Fatal("corrupt front artifact not quarantined")
	}
}
