package store

import (
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// GCResult accounts one GC pass.
type GCResult struct {
	EvictedAge       int   `json:"evicted_age"`
	EvictedSize      int   `json:"evicted_size"`
	BytesReclaimed   int64 `json:"bytes_reclaimed"`
	CheckpointsSwept int   `json:"checkpoints_swept"`
}

// gcCandidate is one committed artifact with its GC-relevant facts.
type gcCandidate struct {
	dir   string
	bytes int64
	mtime time.Time // manifest mtime: commit time, refreshed on every hit
}

// GC enforces the store's size and age budgets and sweeps the
// checkpoint directory. Eviction order is least-recently-used: the
// manifest's mtime is stamped on every hit, so an artifact's recency
// is exactly its last replay. Results are also accumulated into the
// store's hwsim counters, so the /metrics tree carries lifetime GC
// accounting.
func (s *Store) GC() GCResult {
	s.mu.Lock()
	defer s.mu.Unlock()

	var res GCResult
	now := s.now()

	var cands []gcCandidate
	entries, err := s.fs.ReadDir(s.runsDir())
	if err == nil {
		for _, e := range entries {
			if !e.IsDir() {
				continue
			}
			dir := filepath.Join(s.runsDir(), e.Name())
			c := gcCandidate{dir: dir, bytes: s.dirBytes(dir)}
			if info, err := s.fs.Stat(filepath.Join(dir, manifestFile)); err == nil {
				c.mtime = info.ModTime()
			}
			// No manifest (zero mtime) sorts oldest: a torn commit that
			// somehow landed in runs/ is the first thing reclaimed.
			cands = append(cands, c)
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mtime.Before(cands[j].mtime) })

	var total int64
	for _, c := range cands {
		total += c.bytes
	}
	evicted := make(map[string]bool)
	if s.cfg.MaxAge > 0 {
		for _, c := range cands {
			if now.Sub(c.mtime) > s.cfg.MaxAge {
				if s.fs.RemoveAll(c.dir) == nil {
					evicted[c.dir] = true
					total -= c.bytes
					res.EvictedAge++
					res.BytesReclaimed += c.bytes
				}
			}
		}
	}
	if s.cfg.MaxBytes > 0 {
		for _, c := range cands {
			if total <= s.cfg.MaxBytes {
				break
			}
			if evicted[c.dir] {
				continue
			}
			if s.fs.RemoveAll(c.dir) == nil {
				evicted[c.dir] = true
				total -= c.bytes
				res.EvictedSize++
				res.BytesReclaimed += c.bytes
			}
		}
	}

	res.CheckpointsSwept = s.sweepCheckpointsLocked(now)

	s.gcCtr.AddInt("evicted_age", int64(res.EvictedAge))
	s.gcCtr.AddInt("evicted_size", int64(res.EvictedSize))
	s.gcCtr.AddInt("bytes_reclaimed", res.BytesReclaimed)
	s.gcCtr.AddInt("checkpoints_swept", int64(res.CheckpointsSwept))
	s.gcCtr.AddInt("passes", 1)
	return res
}

// sweepCheckpointsLocked reclaims checkpoint files that can never be
// useful again: checkpoints whose run already has a committed artifact
// (the run finished; resume is moot), checkpoints older than
// CheckpointMaxAge (a cancelled job nobody resubmitted — the leak this
// sweep exists to fix), leftover ".ckpt.tmp" staging files from an
// interrupted save, and files that don't parse as checkpoint names at
// all are left alone.
func (s *Store) sweepCheckpointsLocked(now time.Time) int {
	if s.cfg.CheckpointDir == "" {
		return 0
	}
	entries, err := s.fs.ReadDir(s.cfg.CheckpointDir)
	if err != nil {
		return 0
	}
	swept := 0
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(s.cfg.CheckpointDir, name)
		if strings.HasSuffix(name, ".ckpt.tmp") {
			if s.fs.RemoveAll(path) == nil {
				swept++
			}
			continue
		}
		if !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		key, ok := ParseKeyFilename(name)
		if ok && s.hasLocked(key) {
			if s.fs.RemoveAll(path) == nil {
				swept++
			}
			continue
		}
		if s.cfg.CheckpointMaxAge > 0 {
			if info, err := e.Info(); err == nil && now.Sub(info.ModTime()) > s.cfg.CheckpointMaxAge {
				if s.fs.RemoveAll(path) == nil {
					swept++
				}
			}
		}
	}
	return swept
}

// hasLocked is Has without re-entering mu.
func (s *Store) hasLocked(key Key) bool {
	_, err := s.fs.Stat(filepath.Join(s.dirOf(key), manifestFile))
	return err == nil
}
