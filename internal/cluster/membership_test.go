package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
)

// healthServer is a /healthz endpoint whose liveness flips on demand.
type healthServer struct {
	ok atomic.Bool
	ts *httptest.Server
}

func newHealthServer(t *testing.T) *healthServer {
	t.Helper()
	h := &healthServer{}
	h.ok.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if !h.ok.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	h.ts = httptest.NewServer(mux)
	t.Cleanup(h.ts.Close)
	return h
}

func TestMembershipJoinAndOwner(t *testing.T) {
	m := NewMembership(MembershipConfig{})
	if _, ok := m.Owner("k"); ok {
		t.Fatal("empty membership claimed an owner")
	}
	a := m.Join("http://127.0.0.1:9001")
	b := m.Join("http://127.0.0.1:9002")
	if a.ID == b.ID {
		t.Fatalf("distinct addresses share member id %s", a.ID)
	}
	if got := m.Join("http://127.0.0.1:9001"); got.ID != a.ID {
		t.Fatalf("re-join changed id: %s → %s", a.ID, got.ID)
	}
	if live := m.Live(); len(live) != 2 {
		t.Fatalf("live = %v, want 2 members", live)
	}
	owner, ok := m.Owner("cartpole-p64-g30-s42")
	if !ok || (owner.ID != a.ID && owner.ID != b.ID) {
		t.Fatalf("owner = %+v ok=%v", owner, ok)
	}
}

func TestMembershipFailAfterRemovesAndRevives(t *testing.T) {
	h := newHealthServer(t)
	var changes atomic.Int64
	m := NewMembership(MembershipConfig{
		FailAfter: 2,
		OnChange:  func() { changes.Add(1) },
	})
	mem := m.Join(h.ts.URL)
	ctx := context.Background()

	m.CheckOnce(ctx)
	if live := m.Live(); len(live) != 1 {
		t.Fatalf("healthy member dropped: %v", live)
	}

	h.ok.Store(false)
	m.CheckOnce(ctx) // failure 1 of 2: still alive
	if live := m.Live(); len(live) != 1 {
		t.Fatal("member removed before FailAfter consecutive failures")
	}
	m.CheckOnce(ctx) // failure 2 of 2: dead
	if live := m.Live(); len(live) != 0 {
		t.Fatalf("member still live after %d failures: %v", 2, live)
	}
	if _, ok := m.Owner("any"); ok {
		t.Fatal("dead member still owns keys")
	}

	// Recovery: the next successful heartbeat revives it in place.
	h.ok.Store(true)
	m.CheckOnce(ctx)
	if live := m.Live(); len(live) != 1 || live[0].ID != mem.ID {
		t.Fatalf("member not revived: %v", live)
	}
	if changes.Load() < 3 { // join, death, revival
		t.Fatalf("OnChange fired %d times, want >= 3", changes.Load())
	}
}

func TestMembershipReportFailureImmediate(t *testing.T) {
	m := NewMembership(MembershipConfig{})
	a := m.Join("http://127.0.0.1:9001")
	m.Join("http://127.0.0.1:9002")
	m.ReportFailure(a.ID)
	live := m.Live()
	if len(live) != 1 || live[0].ID == a.ID {
		t.Fatalf("reported-failed member still live: %v", live)
	}
	// Its keys re-shard to the survivor instantly.
	for _, k := range []string{"a", "b", "c", "d"} {
		if owner, ok := m.Owner(k); !ok || owner.ID == a.ID {
			t.Fatalf("key %q owner = %+v ok=%v after failure report", k, owner, ok)
		}
	}
	// Re-join revives.
	m.Join("http://127.0.0.1:9001")
	if len(m.Live()) != 2 {
		t.Fatal("re-join did not revive the failed member")
	}
}

func TestMembershipStatus(t *testing.T) {
	m := NewMembership(MembershipConfig{})
	a := m.Join("http://127.0.0.1:9001")
	m.ReportFailure(a.ID)
	status, points := m.Status()
	if len(status) != 1 || status[0].Alive {
		t.Fatalf("status = %+v, want one dead member", status)
	}
	if points != 0 {
		t.Fatalf("ring holds %d points with no live members", points)
	}
}

func TestPartitionIslands(t *testing.T) {
	cases := []struct {
		islands, shards int
		want            [][]int
	}{
		{4, 2, [][]int{{0, 2}, {1, 3}}},
		{5, 2, [][]int{{0, 2, 4}, {1, 3}}},
		{3, 5, [][]int{{0}, {1}, {2}}}, // more shards than islands collapses
		{6, 1, [][]int{{0, 1, 2, 3, 4, 5}}},
	}
	for _, c := range cases {
		got := PartitionIslands(c.islands, c.shards)
		if len(got) != len(c.want) {
			t.Fatalf("PartitionIslands(%d,%d) = %v, want %v", c.islands, c.shards, got, c.want)
		}
		for k := range got {
			if len(got[k]) != len(c.want[k]) {
				t.Fatalf("PartitionIslands(%d,%d) shard %d = %v, want %v", c.islands, c.shards, k, got[k], c.want[k])
			}
			for i := range got[k] {
				if got[k][i] != c.want[k][i] {
					t.Fatalf("PartitionIslands(%d,%d) = %v, want %v", c.islands, c.shards, got, c.want)
				}
			}
		}
	}
}
