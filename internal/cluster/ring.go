// Package cluster is the distribution layer under genesysd's cluster
// mode: a consistent-hash ring that shards run-cache keys across a
// worker fleet, a membership registry with heartbeat health-checking,
// and the HTTP/JSON worker RPC the coordinator drives island-model
// evolution sessions over. The paper's scale story is population-level
// parallelism inside one chip (the EvE PE array evolves many genomes
// concurrently); this package takes the same axis horizontal — many
// worker processes, each evolving its shard of the key space or its
// subset of islands.
//
// The ring is what keeps the PR 7 disk store coherent under a fleet:
// each unique (workload, pop, gens, seed) tuple hashes to exactly one
// owner, so one worker evolves it, one worker writes its checkpoint,
// and one worker commits its artifact — the coordinator proxies
// everything else.
package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per member. 64 points per
// worker keeps the max/min load ratio within a few percent for small
// fleets while the ring stays tiny (a 16-worker fleet is 1024 points).
const DefaultVnodes = 64

// point is one virtual node: a position on the ring owned by a member.
type point struct {
	hash uint64
	id   string
}

// Ring is a consistent-hash ring. Keys and members hash onto the same
// 64-bit circle; a key is owned by the first member point clockwise
// from the key's hash. Adding or removing a member only moves the keys
// adjacent to its points — the property that makes membership change
// cheap: a worker death re-shards only that worker's keys instead of
// reshuffling the whole cache.
//
// Ring is not safe for concurrent use; Membership serializes access.
type Ring struct {
	vnodes int
	points []point // sorted by hash
}

// NewRing builds an empty ring with the given virtual-node count per
// member (<= 0 selects DefaultVnodes).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	return &Ring{vnodes: vnodes}
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV alone clusters badly on short, similar strings (vnode labels
	// differ only in a numeric suffix), which skews the load split; a
	// splitmix64 finalizer spreads the points uniformly over the circle.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Add inserts a member's virtual nodes. Adding an existing member is a
// no-op (the points would be duplicates).
func (r *Ring) Add(id string) {
	if r.Has(id) {
		return
	}
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, point{hash: hash64(id + "#" + strconv.Itoa(v)), id: id})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Hash ties (vanishingly rare with 64-bit FNV) break on the id so
		// every process builds the identical ring from the same members.
		return r.points[i].id < r.points[j].id
	})
}

// Remove deletes a member's virtual nodes.
func (r *Ring) Remove(id string) {
	kept := r.points[:0]
	for _, p := range r.points {
		if p.id != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports whether the member has points on the ring.
func (r *Ring) Has(id string) bool {
	for _, p := range r.points {
		if p.id == id {
			return true
		}
	}
	return false
}

// Owner returns the member owning the key: the first virtual node
// clockwise from the key's hash. False when the ring is empty.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return r.points[i].id, true
}

// Members returns the distinct member ids on the ring, sorted.
func (r *Ring) Members() []string {
	seen := map[string]bool{}
	var ids []string
	for _, p := range r.points {
		if !seen[p.id] {
			seen[p.id] = true
			ids = append(ids, p.id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Points returns the virtual-node count currently on the ring.
func (r *Ring) Points() int { return len(r.points) }
