package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"repro/internal/evolve"
)

// This file is the island-model worker protocol: four HTTP/JSON
// endpoints a worker mounts (WorkerAPI) and the coordinator-side
// client + segment loop that drives them (RunDistributed). The
// protocol is session-oriented — a coordinator opens one session per
// worker holding that worker's island shard, then alternates step
// (advance to the next migration barrier, optionally injecting the
// previous barrier's migrants first) until the run solves or exhausts
// its budget, gathers results, and closes. Workers step their islands
// with evolve.IslandGroup, so the distributed run and the
// single-process RunIslands reference execute the identical code on
// identical seeds — byte-identical results by construction.

// islandOpenReq opens a session evolving a shard of a run's islands.
type islandOpenReq struct {
	Session string            `json:"session"`
	Spec    evolve.IslandSpec `json:"spec"`
	Islands []int             `json:"islands"`
}

// islandStepReq advances a session to the target generation. Plan,
// when present, is the migration plan of the previous barrier and is
// injected before stepping.
type islandStepReq struct {
	Session string                  `json:"session"`
	Target  int                     `json:"target"`
	Plan    map[int]evolve.Champion `json:"plan,omitempty"`
}

// islandStepReply carries the shard's champions at the barrier.
type islandStepReply struct {
	Champions []evolve.Champion `json:"champions"`
	Solved    bool              `json:"solved"`
}

// islandResultReply carries the shard's finished islands.
type islandResultReply struct {
	Results []evolve.IslandResult `json:"results"`
}

type sessionReq struct {
	Session string `json:"session"`
}

// WorkerAPI hosts island sessions on a worker process. Mount with
// Routes on the worker's mux.
type WorkerAPI struct {
	mu       sync.Mutex
	sessions map[string]*evolve.IslandGroup
}

// NewWorkerAPI builds an empty session host.
func NewWorkerAPI() *WorkerAPI {
	return &WorkerAPI{sessions: map[string]*evolve.IslandGroup{}}
}

// Routes mounts the island endpoints on mux.
func (w *WorkerAPI) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /island/open", w.handleOpen)
	mux.HandleFunc("POST /island/step", w.handleStep)
	mux.HandleFunc("POST /island/result", w.handleResult)
	mux.HandleFunc("POST /island/close", w.handleClose)
}

// Sessions reports the live session count (worker metrics).
func (w *WorkerAPI) Sessions() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sessions)
}

func (w *WorkerAPI) handleOpen(rw http.ResponseWriter, r *http.Request) {
	var req islandOpenReq
	if !decodeJSON(rw, r, &req) {
		return
	}
	if req.Session == "" {
		httpError(rw, http.StatusBadRequest, "island: empty session id")
		return
	}
	g, err := evolve.NewIslandGroup(req.Spec, req.Islands)
	if err != nil {
		httpError(rw, http.StatusBadRequest, err.Error())
		return
	}
	w.mu.Lock()
	// Re-opening a session id replaces the old group — the coordinator
	// restarting a failed run reuses its job-scoped session id, and the
	// stale group (if any) is garbage.
	w.sessions[req.Session] = g
	w.mu.Unlock()
	writeJSON(rw, struct{}{})
}

func (w *WorkerAPI) handleStep(rw http.ResponseWriter, r *http.Request) {
	var req islandStepReq
	if !decodeJSON(rw, r, &req) {
		return
	}
	g, ok := w.lookup(req.Session)
	if !ok {
		httpError(rw, http.StatusNotFound, "island: unknown session "+req.Session)
		return
	}
	if req.Plan != nil {
		if err := g.Inject(req.Plan); err != nil {
			httpError(rw, http.StatusBadRequest, err.Error())
			return
		}
	}
	// The step computes on the request goroutine under the request
	// context: a coordinator that dies (or re-dispatches) disconnects,
	// cancelling the evolution mid-generation.
	champs, solved, err := g.Step(r.Context(), req.Target)
	if err != nil {
		httpError(rw, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(rw, islandStepReply{Champions: champs, Solved: solved})
}

func (w *WorkerAPI) handleResult(rw http.ResponseWriter, r *http.Request) {
	var req sessionReq
	if !decodeJSON(rw, r, &req) {
		return
	}
	g, ok := w.lookup(req.Session)
	if !ok {
		httpError(rw, http.StatusNotFound, "island: unknown session "+req.Session)
		return
	}
	writeJSON(rw, islandResultReply{Results: g.Results()})
}

func (w *WorkerAPI) handleClose(rw http.ResponseWriter, r *http.Request) {
	var req sessionReq
	if !decodeJSON(rw, r, &req) {
		return
	}
	w.mu.Lock()
	delete(w.sessions, req.Session)
	w.mu.Unlock()
	writeJSON(rw, struct{}{})
}

func (w *WorkerAPI) lookup(session string) (*evolve.IslandGroup, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	g, ok := w.sessions[session]
	return g, ok
}

func decodeJSON(rw http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(io.LimitReader(r.Body, 64<<20)).Decode(v); err != nil {
		httpError(rw, http.StatusBadRequest, "island: bad request body: "+err.Error())
		return false
	}
	return true
}

func writeJSON(rw http.ResponseWriter, v any) {
	rw.Header().Set("Content-Type", "application/json")
	json.NewEncoder(rw).Encode(v)
}

func httpError(rw http.ResponseWriter, code int, msg string) {
	http.Error(rw, msg, code)
}

// IslandClient drives one worker's island endpoints.
type IslandClient struct {
	Base string // worker base URL, e.g. http://127.0.0.1:9001
	HTTP *http.Client
}

func (c *IslandClient) post(ctx context.Context, path string, req, reply any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("%s%s: %s: %s", c.Base, path, resp.Status, bytes.TrimSpace(msg))
	}
	if reply == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(reply)
}

// Open starts a session evolving islands of spec on the worker.
func (c *IslandClient) Open(ctx context.Context, session string, spec evolve.IslandSpec, islands []int) error {
	return c.post(ctx, "/island/open", islandOpenReq{Session: session, Spec: spec, Islands: islands}, nil)
}

// Step advances the session to target, injecting plan first when set.
func (c *IslandClient) Step(ctx context.Context, session string, target int, plan map[int]evolve.Champion) ([]evolve.Champion, bool, error) {
	var reply islandStepReply
	if err := c.post(ctx, "/island/step", islandStepReq{Session: session, Target: target, Plan: plan}, &reply); err != nil {
		return nil, false, err
	}
	return reply.Champions, reply.Solved, nil
}

// Results gathers the session's finished islands.
func (c *IslandClient) Results(ctx context.Context, session string) ([]evolve.IslandResult, error) {
	var reply islandResultReply
	if err := c.post(ctx, "/island/result", sessionReq{Session: session}, &reply); err != nil {
		return nil, err
	}
	return reply.Results, nil
}

// Close tears the session down (best-effort cleanup).
func (c *IslandClient) Close(ctx context.Context, session string) error {
	return c.post(ctx, "/island/close", sessionReq{Session: session}, nil)
}

// ShardError attributes a distributed-run failure to the worker whose
// shard failed, so the dispatch layer can mark that member dead before
// retrying the run on the survivors.
type ShardError struct {
	Shard  int
	Member Member
	Err    error
}

func (e *ShardError) Error() string {
	return fmt.Sprintf("shard %d on %s (%s): %v", e.Shard, e.Member.ID, e.Member.Addr, e.Err)
}

func (e *ShardError) Unwrap() error { return e.Err }

// PartitionIslands deals islands round-robin across shards: shard k
// owns islands k, k+shards, k+2·shards, … Deterministic, balanced to
// within one island.
func PartitionIslands(islands, shards int) [][]int {
	if shards > islands {
		shards = islands
	}
	parts := make([][]int, shards)
	for i := 0; i < islands; i++ {
		parts[i%shards] = append(parts[i%shards], i)
	}
	return parts
}

// RunDistributed executes one island-model run across a worker fleet:
// islands are partitioned over the workers (sorted by id, so the
// sharding is a pure function of the member set), each worker evolves
// its shard through an island session, and the coordinator drives the
// segment loop — gathering champions at every migration barrier,
// computing the ring migration plan, and shipping each worker its
// migrants with the next step. The loop is the same as
// evolve.RunIslands; only where islands execute differs, so results
// are byte-identical to the reference.
//
// Any RPC failure aborts the whole run (sessions are closed
// best-effort) and surfaces the error; the caller owns retry — an
// island run has no cross-barrier checkpoint, so a worker death means
// restarting the run on the surviving fleet (still deterministic:
// the result does not depend on the fleet shape).
func RunDistributed(ctx context.Context, spec evolve.IslandSpec, session string, workers []Member, httpc *http.Client) (*evolve.IslandRun, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(workers) == 0 {
		return nil, fmt.Errorf("island: no workers")
	}
	ws := append([]Member(nil), workers...)
	sort.Slice(ws, func(i, j int) bool { return ws[i].ID < ws[j].ID })
	parts := PartitionIslands(spec.Islands, len(ws))
	clients := make([]*IslandClient, len(parts))
	for k := range parts {
		clients[k] = &IslandClient{Base: ws[k].Addr, HTTP: httpc}
	}
	defer func() {
		// Best-effort teardown, detached from the (possibly cancelled)
		// run context so close still reaches live workers.
		for _, c := range clients {
			c.Close(context.WithoutCancel(ctx), session)
		}
	}()

	for k, c := range clients {
		if err := c.Open(ctx, session, spec, parts[k]); err != nil {
			return nil, &ShardError{Shard: k, Member: ws[k], Err: err}
		}
	}

	// fanOut runs one call per shard concurrently — shards computing in
	// parallel is the throughput win — and joins the first error.
	fanOut := func(f func(k int, c *IslandClient) error) error {
		errs := make([]error, len(clients))
		var wg sync.WaitGroup
		for k, c := range clients {
			wg.Add(1)
			go func() {
				defer wg.Done()
				errs[k] = f(k, c)
			}()
		}
		wg.Wait()
		for k, err := range errs {
			if err != nil {
				return &ShardError{Shard: k, Member: ws[k], Err: err}
			}
		}
		return nil
	}

	var plan map[int]evolve.Champion
	for target := min(spec.MigrationEvery, spec.Generations); ; {
		var mu sync.Mutex
		var champs []evolve.Champion
		solved := false
		err := fanOut(func(k int, c *IslandClient) error {
			cs, s, err := c.Step(ctx, session, target, plan)
			if err != nil {
				return err
			}
			mu.Lock()
			champs = append(champs, cs...)
			solved = solved || s
			mu.Unlock()
			return nil
		})
		if err != nil {
			return nil, err
		}
		if solved || target >= spec.Generations {
			break
		}
		plan, err = evolve.MigrationPlan(champs, spec.Islands)
		if err != nil {
			return nil, err
		}
		target = min(target+spec.MigrationEvery, spec.Generations)
	}

	results := make([][]evolve.IslandResult, len(clients))
	if err := fanOut(func(k int, c *IslandClient) error {
		rs, err := c.Results(ctx, session)
		if err != nil {
			return err
		}
		results[k] = rs
		return nil
	}); err != nil {
		return nil, err
	}
	var all []evolve.IslandResult
	for _, rs := range results {
		all = append(all, rs...)
	}
	if len(all) != spec.Islands {
		return nil, fmt.Errorf("island: gathered %d of %d islands", len(all), spec.Islands)
	}
	return evolve.AssembleRun(spec, all), nil
}
