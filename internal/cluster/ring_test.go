package cluster

import (
	"fmt"
	"testing"
)

func TestRingOwnerDeterministic(t *testing.T) {
	build := func() *Ring {
		r := NewRing(0)
		r.Add("worker-a")
		r.Add("worker-b")
		r.Add("worker-c")
		return r
	}
	a, b := build(), build()
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("cartpole-p64-g30-s%d", i)
		oa, oka := a.Owner(key)
		ob, okb := b.Owner(key)
		if !oka || !okb {
			t.Fatalf("key %q: no owner (oka=%v okb=%v)", key, oka, okb)
		}
		if oa != ob {
			t.Fatalf("key %q: owners differ across identical rings: %q vs %q", key, oa, ob)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	r := NewRing(0)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	r.Add("only")
	for i := 0; i < 50; i++ {
		owner, ok := r.Owner(fmt.Sprintf("key-%d", i))
		if !ok || owner != "only" {
			t.Fatalf("single-member ring: got (%q, %v)", owner, ok)
		}
	}
}

func TestRingDistribution(t *testing.T) {
	r := NewRing(0)
	members := []string{"w0", "w1", "w2", "w3"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		owner, _ := r.Owner(fmt.Sprintf("workload-%d-p64", i))
		counts[owner]++
	}
	// With 64 vnodes per member the split should be roughly even; allow
	// a generous band so the test pins the property, not the constants.
	for _, m := range members {
		share := float64(counts[m]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("member %s owns %.1f%% of keys; distribution too skewed: %v", m, 100*share, counts)
		}
	}
}

func TestRingRemoveOnlyMovesRemovedKeys(t *testing.T) {
	r := NewRing(0)
	r.Add("w0")
	r.Add("w1")
	r.Add("w2")
	before := map[string]string{}
	const keys = 1000
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("key-%d", i)
		before[k], _ = r.Owner(k)
	}
	r.Remove("w1")
	for k, prev := range before {
		now, ok := r.Owner(k)
		if !ok {
			t.Fatalf("key %q lost its owner after removal", k)
		}
		if prev != "w1" && now != prev {
			t.Fatalf("key %q moved %q → %q though its owner stayed alive", k, prev, now)
		}
		if now == "w1" {
			t.Fatalf("key %q still owned by removed member", k)
		}
	}
	// Re-adding restores the exact original assignment (pure function
	// of the member set).
	r.Add("w1")
	for k, prev := range before {
		if now, _ := r.Owner(k); now != prev {
			t.Fatalf("key %q: %q after re-add, want original %q", k, now, prev)
		}
	}
}

func TestRingAddIdempotent(t *testing.T) {
	r := NewRing(0)
	r.Add("w0")
	points := r.Points()
	r.Add("w0")
	if r.Points() != points {
		t.Fatalf("re-adding a member changed the ring: %d → %d points", points, r.Points())
	}
	if got := r.Members(); len(got) != 1 || got[0] != "w0" {
		t.Fatalf("members = %v, want [w0]", got)
	}
}
