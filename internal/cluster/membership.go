package cluster

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"sort"
	"sync"
	"time"
)

// MemberID derives a worker's stable short identity from its address:
// eight hex characters of a SHA-256, safe for filenames (the
// checkpoint owner suffix) and counter names (per-worker gauges).
func MemberID(addr string) string {
	sum := sha256.Sum256([]byte(addr))
	return hex.EncodeToString(sum[:4])
}

// Member is one worker known to the coordinator.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// MemberStatus is the admin view of one worker — what GET /cluster
// reports per member.
type MemberStatus struct {
	Member
	Alive        bool      `json:"alive"`
	Joined       time.Time `json:"joined"`
	LastSeen     time.Time `json:"last_seen,omitempty"`
	FailedChecks int       `json:"failed_checks,omitempty"`
}

// memberState is the registry's internal record.
type memberState struct {
	Member
	alive    bool
	joined   time.Time
	lastSeen time.Time
	failures int
}

// MembershipConfig tunes the registry. Zero values select defaults.
type MembershipConfig struct {
	// Vnodes is the ring's virtual-node count per member (0 =
	// DefaultVnodes).
	Vnodes int
	// HeartbeatEvery is the health-check poll interval (0 = 2s).
	HeartbeatEvery time.Duration
	// HeartbeatTimeout bounds one health-check request (0 = 1s).
	HeartbeatTimeout time.Duration
	// FailAfter is the consecutive failed heartbeats that mark a member
	// dead and remove it from the ring (0 = 3). A dispatch-observed
	// transport failure (ReportFailure) skips the count: the connection
	// to the worker demonstrably broke mid-job.
	FailAfter int
	// HTTP is the health-check transport; nil means http.DefaultClient
	// (per-request timeouts come from HeartbeatTimeout).
	HTTP *http.Client
	// OnChange, when set, is invoked (without the registry lock) after
	// any membership change: join, death, revival.
	OnChange func()
	// now is the test seam for time.
	now func() time.Time
}

func (c MembershipConfig) withDefaults() MembershipConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = time.Second
	}
	if c.FailAfter <= 0 {
		c.FailAfter = 3
	}
	if c.HTTP == nil {
		c.HTTP = http.DefaultClient
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Membership is the coordinator's worker registry: who is in the
// fleet, who is alive, and — through the embedded consistent-hash
// ring — who owns which run-cache key. All methods are safe for
// concurrent use.
type Membership struct {
	cfg MembershipConfig

	mu      sync.Mutex
	ring    *Ring
	members map[string]*memberState // by id
}

// NewMembership builds an empty registry.
func NewMembership(cfg MembershipConfig) *Membership {
	cfg = cfg.withDefaults()
	return &Membership{cfg: cfg, ring: NewRing(cfg.Vnodes), members: map[string]*memberState{}}
}

// Join registers a worker by address (idempotent: re-joining an alive
// member refreshes its last-seen time; re-joining a dead one revives
// it and re-adds its ring points). Returns the member identity.
func (m *Membership) Join(addr string) Member {
	id := MemberID(addr)
	m.mu.Lock()
	st, ok := m.members[id]
	changed := false
	now := m.cfg.now()
	if !ok {
		st = &memberState{Member: Member{ID: id, Addr: addr}, joined: now}
		m.members[id] = st
		changed = true
	}
	st.lastSeen = now
	st.failures = 0
	if !st.alive {
		st.alive = true
		m.ring.Add(id)
		changed = true
	}
	m.mu.Unlock()
	if changed {
		m.notify()
	}
	return st.Member
}

// ReportFailure marks a member dead immediately — the dispatch path
// observed a hard transport failure mid-job, which is stronger
// evidence than a missed heartbeat. Its ring points are removed so
// the very next Owner call re-shards the dead worker's keys. A later
// successful heartbeat (or re-join) revives it.
func (m *Membership) ReportFailure(id string) {
	m.mu.Lock()
	st, ok := m.members[id]
	changed := ok && st.alive
	if changed {
		st.alive = false
		st.failures = m.cfg.FailAfter
		m.ring.Remove(id)
	}
	m.mu.Unlock()
	if changed {
		m.notify()
	}
}

// Owner resolves the live member owning a run-cache key. False when
// no member is alive.
func (m *Membership) Owner(key string) (Member, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	id, ok := m.ring.Owner(key)
	if !ok {
		return Member{}, false
	}
	return m.members[id].Member, true
}

// Live returns the alive members sorted by id.
func (m *Membership) Live() []Member {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Member
	for _, st := range m.members {
		if st.alive {
			out = append(out, st.Member)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Status reports every known member (alive and dead) sorted by id,
// plus the ring's point count.
func (m *Membership) Status() ([]MemberStatus, int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []MemberStatus
	for _, st := range m.members {
		out = append(out, MemberStatus{
			Member: st.Member, Alive: st.alive,
			Joined: st.joined, LastSeen: st.lastSeen, FailedChecks: st.failures,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, m.ring.Points()
}

// Run drives the heartbeat loop until ctx is cancelled: every
// HeartbeatEvery, each known member (dead ones included — that is how
// a worker that restarted in place revives) is probed with GET
// /healthz; FailAfter consecutive failures remove it from the ring.
func (m *Membership) Run(ctx context.Context) {
	t := time.NewTicker(m.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			m.CheckOnce(ctx)
		}
	}
}

// CheckOnce performs one heartbeat round over every known member —
// exported so tests (and a future admin surface) can force a round
// without waiting out the ticker.
func (m *Membership) CheckOnce(ctx context.Context) {
	m.mu.Lock()
	probes := make([]Member, 0, len(m.members))
	for _, st := range m.members {
		probes = append(probes, st.Member)
	}
	m.mu.Unlock()
	sort.Slice(probes, func(i, j int) bool { return probes[i].ID < probes[j].ID })

	for _, mem := range probes {
		ok := m.probe(ctx, mem.Addr)
		m.mu.Lock()
		st, known := m.members[mem.ID]
		changed := false
		if known {
			if ok {
				st.lastSeen = m.cfg.now()
				st.failures = 0
				if !st.alive {
					st.alive = true
					m.ring.Add(st.ID)
					changed = true
				}
			} else {
				st.failures++
				if st.alive && st.failures >= m.cfg.FailAfter {
					st.alive = false
					m.ring.Remove(st.ID)
					changed = true
				}
			}
		}
		m.mu.Unlock()
		if changed {
			m.notify()
		}
	}
}

// probe is one health check: GET /healthz within HeartbeatTimeout.
func (m *Membership) probe(ctx context.Context, addr string) bool {
	ctx, cancel := context.WithTimeout(ctx, m.cfg.HeartbeatTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := m.cfg.HTTP.Do(req)
	if err != nil {
		return false
	}
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (m *Membership) notify() {
	if m.cfg.OnChange != nil {
		m.cfg.OnChange()
	}
}
