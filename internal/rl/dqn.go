// Package rl implements the Deep Q-Network baseline the paper compares
// evolutionary algorithms against (Table II and footnote 1: "we also
// ran the same environments with open-source implementations of A3C
// and DQN, and found that certain OpenAI environments never converged,
// or required a lot of tuning"). Having the baseline executable makes
// the DQN side of Table II a measurement: the agent counts its forward
// MACs, backward gradient ops, and replay/parameter memory while it
// trains.
package rl

import (
	"fmt"

	"repro/internal/dnn"
	"repro/internal/env"
	"repro/internal/rng"
)

// transition is one replay-memory entry (s, a, r, s', done).
type transition struct {
	state  []float64
	action int
	reward float64
	next   []float64
	done   bool
}

// ReplayBuffer is a fixed-capacity ring of transitions.
type ReplayBuffer struct {
	buf  []transition
	next int
	full bool
}

// NewReplayBuffer allocates a buffer with the given capacity.
func NewReplayBuffer(capacity int) *ReplayBuffer {
	if capacity < 1 {
		capacity = 1
	}
	return &ReplayBuffer{buf: make([]transition, capacity)}
}

// Len returns the number of stored transitions.
func (b *ReplayBuffer) Len() int {
	if b.full {
		return len(b.buf)
	}
	return b.next
}

// Add stores a transition, evicting the oldest when full.
func (b *ReplayBuffer) Add(t transition) {
	b.buf[b.next] = t
	b.next++
	if b.next == len(b.buf) {
		b.next = 0
		b.full = true
	}
}

// Sample draws n transitions uniformly with replacement.
func (b *ReplayBuffer) Sample(r *rng.XorWow, n int) []transition {
	out := make([]transition, n)
	for i := range out {
		out[i] = b.buf[r.Intn(b.Len())]
	}
	return out
}

// MemoryBytes is the buffer's storage: two states, action, reward and
// flag per entry — the Table II replay-memory row, measured.
func (b *ReplayBuffer) MemoryBytes(obsSize int) int64 {
	per := int64(2*obsSize*8 + 8 + 8 + 1)
	return int64(len(b.buf)) * per
}

// Config tunes the agent.
type Config struct {
	Hidden       []int   // hidden layer sizes
	Gamma        float64 // discount
	LR           float64 // SGD learning rate
	BatchSize    int
	ReplaySize   int
	TargetEvery  int     // env steps between target-network refreshes
	EpsilonStart float64 // ε-greedy schedule
	EpsilonEnd   float64
	EpsilonDecay int // steps to anneal over
	WarmupSteps  int // steps before learning starts
}

// DefaultConfig follows the classic Atari-DQN shape scaled to the
// classic-control tasks.
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{64, 64},
		Gamma:        0.99,
		LR:           5e-3,
		BatchSize:    32,
		ReplaySize:   10000,
		TargetEvery:  200,
		EpsilonStart: 1.0,
		EpsilonEnd:   0.05,
		EpsilonDecay: 5000,
		WarmupSteps:  500,
	}
}

// Agent is a DQN learner bound to one environment.
type Agent struct {
	cfg    Config
	env    env.Env
	online *dnn.MLP
	target *dnn.MLP
	replay *ReplayBuffer
	rnd    *rng.XorWow
	steps  int
}

// NewAgent builds an agent for the named environment.
func NewAgent(envName string, cfg Config, seed uint64) (*Agent, error) {
	e, err := env.New(envName)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed)
	sizes := append([]int{e.ObservationSize()}, cfg.Hidden...)
	sizes = append(sizes, actionCount(e))
	online, err := dnn.NewMLP(r, sizes...)
	if err != nil {
		return nil, err
	}
	target, err := dnn.NewMLP(r, sizes...)
	if err != nil {
		return nil, err
	}
	if err := target.CopyFrom(online); err != nil {
		return nil, err
	}
	return &Agent{
		cfg: cfg, env: e, online: online, target: target,
		replay: NewReplayBuffer(cfg.ReplaySize), rnd: r,
	}, nil
}

// actionCount maps the env's raw action vector onto a discrete set:
// one discrete action per output (argmax decode), or two for a single
// binary/continuous output.
func actionCount(e env.Env) int {
	if e.ActionSize() == 1 {
		return 2
	}
	return e.ActionSize()
}

// actionVector converts a discrete choice back into the environment's
// action vector.
func (a *Agent) actionVector(choice int) []float64 {
	out := make([]float64, a.env.ActionSize())
	if a.env.ActionSize() == 1 {
		// Binary/continuous single output: 0 → low, 1 → high.
		if choice == 1 {
			out[0] = 1
		} else {
			out[0] = -1
		}
		return out
	}
	out[choice] = 1
	return out
}

// epsilon returns the current exploration rate.
func (a *Agent) epsilon() float64 {
	if a.steps >= a.cfg.EpsilonDecay {
		return a.cfg.EpsilonEnd
	}
	frac := float64(a.steps) / float64(a.cfg.EpsilonDecay)
	return a.cfg.EpsilonStart + (a.cfg.EpsilonEnd-a.cfg.EpsilonStart)*frac
}

// act picks an ε-greedy action for the state.
func (a *Agent) act(state []float64) (int, error) {
	if a.rnd.Bool(a.epsilon()) {
		return a.rnd.Intn(a.online.NumOutputs()), nil
	}
	q, err := a.online.Forward(state)
	if err != nil {
		return 0, err
	}
	best := 0
	for i, v := range q {
		if v > q[best] {
			best = i
		}
	}
	return best, nil
}

// learn runs one mini-batch TD update.
func (a *Agent) learn() error {
	batch := a.replay.Sample(a.rnd, a.cfg.BatchSize)
	for _, tr := range batch {
		target := tr.reward
		if !tr.done {
			qn, err := a.target.Forward(tr.next)
			if err != nil {
				return err
			}
			best := qn[0]
			for _, v := range qn[1:] {
				if v > best {
					best = v
				}
			}
			target += a.cfg.Gamma * best
		}
		if _, err := a.online.Forward(tr.state); err != nil {
			return err
		}
		if err := a.online.BackwardMSE([]int{tr.action}, []float64{target}); err != nil {
			return err
		}
	}
	a.online.SGDStep(a.cfg.LR, a.cfg.BatchSize, 1.0)
	return nil
}

// EpisodeResult is one training episode's outcome.
type EpisodeResult struct {
	Episode int
	Reward  float64
	Epsilon float64
}

// Train runs the given number of episodes, returning per-episode
// rewards.
func (a *Agent) Train(episodes int) ([]EpisodeResult, error) {
	results := make([]EpisodeResult, 0, episodes)
	for ep := 0; ep < episodes; ep++ {
		obs := a.env.Reset(uint64(ep)*2654435761 + 1)
		state := append([]float64(nil), obs...)
		total := 0.0
		for {
			choice, err := a.act(state)
			if err != nil {
				return nil, err
			}
			nextObs, reward, done := a.env.Step(a.actionVector(choice))
			next := append([]float64(nil), nextObs...)
			a.replay.Add(transition{
				state: state, action: choice, reward: reward, next: next, done: done,
			})
			total += reward
			state = next
			a.steps++
			if a.steps > a.cfg.WarmupSteps && a.replay.Len() >= a.cfg.BatchSize {
				if err := a.learn(); err != nil {
					return nil, err
				}
			}
			if a.steps%a.cfg.TargetEvery == 0 {
				if err := a.target.CopyFrom(a.online); err != nil {
					return nil, err
				}
			}
			if done {
				break
			}
		}
		results = append(results, EpisodeResult{Episode: ep, Reward: total, Epsilon: a.epsilon()})
	}
	return results, nil
}

// Measured is the measured Table II ledger for this agent.
type Measured struct {
	ForwardMACs int64
	GradOps     int64
	ReplayBytes int64
	ParamBytes  int64
	Steps       int
}

// Measured reports the agent's accumulated compute and memory.
func (a *Agent) Measured() Measured {
	return Measured{
		ForwardMACs: a.online.ForwardMACs + a.target.ForwardMACs,
		GradOps:     a.online.GradOps,
		ReplayBytes: a.replay.MemoryBytes(a.env.ObservationSize()),
		ParamBytes:  a.online.MemoryBytes() + a.target.MemoryBytes(),
		Steps:       a.steps,
	}
}

// PerStep normalizes the compute ledger per environment step.
func (m Measured) PerStep() (fwdMACs, gradOps float64) {
	if m.Steps == 0 {
		return 0, 0
	}
	return float64(m.ForwardMACs) / float64(m.Steps), float64(m.GradOps) / float64(m.Steps)
}

// String renders the ledger.
func (m Measured) String() string {
	f, g := m.PerStep()
	return fmt.Sprintf("dqn: %.0f MACs/step fwd, %.0f grad-ops/step, replay %d KB, params %d KB",
		f, g, m.ReplayBytes>>10, m.ParamBytes>>10)
}
