package rl

import (
	"testing"

	"repro/internal/platform"
	"repro/internal/rng"
)

func TestReplayBufferRing(t *testing.T) {
	b := NewReplayBuffer(3)
	if b.Len() != 0 {
		t.Fatal("fresh buffer not empty")
	}
	for i := 0; i < 5; i++ {
		b.Add(transition{reward: float64(i)})
	}
	if b.Len() != 3 {
		t.Fatalf("len %d after overfill", b.Len())
	}
	// Entries 0 and 1 must have been evicted.
	r := rng.New(1)
	for i := 0; i < 50; i++ {
		tr := b.Sample(r, 1)[0]
		if tr.reward < 2 {
			t.Fatalf("evicted entry sampled: %v", tr.reward)
		}
	}
}

func TestReplayMemoryBytes(t *testing.T) {
	b := NewReplayBuffer(100)
	// 2 states ×4 obs ×8B + action 8 + reward 8 + flag 1 = 81 B/entry.
	if got := b.MemoryBytes(4); got != 100*81 {
		t.Fatalf("memory %d", got)
	}
}

func TestAgentConstruction(t *testing.T) {
	if _, err := NewAgent("pong", DefaultConfig(), 1); err == nil {
		t.Fatal("unknown env accepted")
	}
	a, err := NewAgent("cartpole", DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// CartPole's single binary output becomes two discrete actions.
	if a.online.NumOutputs() != 2 {
		t.Fatalf("action count %d", a.online.NumOutputs())
	}
	m, err := NewAgent("mountaincar", DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.online.NumOutputs() != 3 {
		t.Fatalf("mountaincar action count %d", m.online.NumOutputs())
	}
}

func TestEpsilonSchedule(t *testing.T) {
	a, _ := NewAgent("cartpole", DefaultConfig(), 1)
	if a.epsilon() != a.cfg.EpsilonStart {
		t.Fatal("epsilon does not start at start")
	}
	a.steps = a.cfg.EpsilonDecay * 2
	if a.epsilon() != a.cfg.EpsilonEnd {
		t.Fatal("epsilon does not anneal to end")
	}
}

// smallConfig keeps DQN training tests fast.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Hidden = []int{32, 32}
	cfg.BatchSize = 16
	cfg.ReplaySize = 4000
	cfg.EpsilonDecay = 3000
	cfg.WarmupSteps = 300
	return cfg
}

// TestDQNImprovesOnCartPole: the baseline works where the paper found
// it workable.
func TestDQNImprovesOnCartPole(t *testing.T) {
	a, err := NewAgent("cartpole", smallConfig(), 11)
	if err != nil {
		t.Fatal(err)
	}
	results, err := a.Train(120)
	if err != nil {
		t.Fatal(err)
	}
	head := meanReward(results[:20])
	tail := meanReward(results[len(results)-20:])
	if tail <= head+10 {
		t.Fatalf("DQN did not improve: first-20 %.1f, last-20 %.1f", head, tail)
	}
	t.Logf("dqn cartpole: first-20 mean %.1f → last-20 mean %.1f over %d steps",
		head, tail, a.steps)
}

// TestDQNStallsOnMountainCar reproduces footnote 1: without reward
// shaping, vanilla DQN fails to converge on sparse-reward tasks within
// a comparable budget (every episode times out at −200).
func TestDQNStallsOnMountainCar(t *testing.T) {
	a, err := NewAgent("mountaincar", smallConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	results, err := a.Train(40)
	if err != nil {
		t.Fatal(err)
	}
	solvedOnce := false
	for _, r := range results {
		if r.Reward > -200 {
			solvedOnce = true
		}
	}
	if solvedOnce {
		t.Log("DQN happened to reach the flag — acceptable but rare without shaping")
	}
	if tail := meanReward(results[len(results)-10:]); tail > -190 {
		t.Fatalf("vanilla DQN 'solved' sparse mountaincar suspiciously fast: %.1f", tail)
	}
}

// TestMeasuredLedgerMatchesAnalyticModel ties the executed DQN to the
// Table II analytic model: per-step forward MACs must equal the
// layer-size product sum, and replay memory must match the configured
// capacity.
func TestMeasuredLedgerMatchesAnalyticModel(t *testing.T) {
	cfg := smallConfig()
	cfg.WarmupSteps = 50
	cfg.EpsilonDecay = 100 // mostly greedy quickly, so acting forwards
	a, err := NewAgent("cartpole", cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(30); err != nil {
		t.Fatal(err)
	}
	m := a.Measured()
	if m.ForwardMACs <= 0 || m.GradOps <= 0 {
		t.Fatalf("empty ledger: %+v", m)
	}
	// Analytic single-pass MACs for a 4-32-32-2 network.
	d := platform.DQN{Layers: []int{4, 32, 32, 2}}
	perPass := d.ForwardMACs()
	// The agent runs ≥1 forward pass per step (action) plus batch
	// training passes; the measured per-step count must be ≥ one pass
	// and ≤ a few hundred passes.
	fwd, _ := m.PerStep()
	if fwd < float64(perPass) {
		t.Fatalf("measured %.0f MACs/step below one analytic pass (%d)", fwd, perPass)
	}
	if fwd > float64(perPass)*200 {
		t.Fatalf("measured %.0f MACs/step implausibly high", fwd)
	}
	if m.ReplayBytes != NewReplayBuffer(cfg.ReplaySize).MemoryBytes(4) {
		t.Fatal("replay ledger mismatch")
	}
	if m.String() == "" {
		t.Fatal("empty ledger string")
	}
}

func meanReward(rs []EpisodeResult) float64 {
	var sum float64
	for _, r := range rs {
		sum += r.Reward
	}
	return sum / float64(len(rs))
}
