// Package signalctx is the one shared shutdown-signal helper for every
// binary in the repository. All of the CLIs — and the genesysd daemon —
// stop the same way: a context cancelled on the first SIGINT (Ctrl-C)
// or SIGTERM (container stop, service manager), after which each
// program runs its own checkpoint/flush path and exits. Centralizing
// the os/signal wiring keeps that contract identical everywhere
// instead of five hand-copied NotifyContext calls that can drift (the
// pre-PR5 state: two binaries caught nothing, so `docker stop` lost
// their partial work).
package signalctx

import (
	"context"
	"os"
	"os/signal"
	"syscall"
)

// Notify returns a child of parent that is cancelled on the first
// SIGINT or SIGTERM. The returned stop func releases the signal
// registration (restoring default signal behavior, so a second signal
// kills the process the usual way) and must be called on every exit
// path — `defer stop()` right after the call is the intended shape.
func Notify(parent context.Context) (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}
