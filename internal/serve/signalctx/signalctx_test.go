package signalctx

import (
	"context"
	"syscall"
	"testing"
	"time"
)

// TestNotifyCancelsOnSIGTERM sends the process a real SIGTERM and
// asserts the context cancels — the path a container stop exercises.
// The registration swallows the signal, so the test process survives.
func TestNotifyCancelsOnSIGTERM(t *testing.T) {
	ctx, stop := Notify(context.Background())
	defer stop()

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatalf("kill: %v", err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("context not cancelled within 5s of SIGTERM")
	}
	if ctx.Err() != context.Canceled {
		t.Fatalf("ctx.Err() = %v, want context.Canceled", ctx.Err())
	}
}

// TestStopDetachesParent: after stop, the context is cancelled (stop
// cancels, like any CancelFunc) and signal delivery is restored.
func TestStopDetachesParent(t *testing.T) {
	ctx, stop := Notify(context.Background())
	stop()
	select {
	case <-ctx.Done():
	default:
		t.Fatal("stop() should cancel the context")
	}
}
