package serve

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/evolve"
	"repro/internal/experiments"
)

// State is a job's lifecycle position. The transitions are:
//
//	queued ──▶ running ──▶ done
//	   │          ├──────▶ failed
//	   └──────────┴──────▶ cancelled
//
// Terminal states (done, failed, cancelled) never transition again.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Spec is one evolution job request — the JSON body of POST /jobs.
// (Workload, Population, Generations, Seed) is also the shared run
// cache key: two admitted jobs with equal tuples execute one
// evolution.
type Spec struct {
	Workload    string `json:"workload"`
	Population  int    `json:"population,omitempty"`
	Generations int    `json:"generations,omitempty"`
	Seed        uint64 `json:"seed,omitempty"`
	// Islands, when > 0, makes this an island-model job: the population
	// splits into Islands sub-populations that evolve independently and
	// exchange champions every MigrationEvery generations. Both fields
	// join the cache key — an island run is a different computation
	// than a panmictic run of the same tuple.
	Islands        int `json:"islands,omitempty"`
	MigrationEvery int `json:"migration_every,omitempty"`
	// Objectives, when non-empty, makes this a Pareto (multi-objective)
	// job: the population evolves under NSGA-II selection over the named
	// objective vector and the job's stream and result carry the Pareto
	// front. The canonical '+'-joined form ("fitness+genes+energy") is
	// used on the wire and in the cache key — the vector, order
	// included, is part of the run's identity. Mutually exclusive with
	// Islands.
	Objectives string `json:"objectives,omitempty"`
	// Client identifies the submitter for the per-client in-flight
	// cap; empty falls back to the transport identity (header, then
	// remote address).
	Client string `json:"client,omitempty"`
}

// withDefaults fills unset fields with the daemon's defaults.
func (sp Spec) withDefaults() Spec {
	if sp.Population <= 0 {
		sp.Population = 64
	}
	if sp.Generations <= 0 {
		sp.Generations = 30
	}
	if sp.Seed == 0 {
		sp.Seed = 42
	}
	if sp.Islands > 0 && sp.MigrationEvery <= 0 {
		sp.MigrationEvery = 5
	}
	return sp
}

// IsIsland reports whether the spec requests an island-model run.
func (sp Spec) IsIsland() bool { return sp.Islands > 0 }

// IsPareto reports whether the spec requests a Pareto-mode run.
func (sp Spec) IsPareto() bool { return sp.Objectives != "" }

// paretoSpec maps the job spec onto the evolve-layer Pareto tuple.
func (sp Spec) paretoSpec() evolve.ParetoSpec {
	return evolve.ParetoSpec{
		Workload:    sp.Workload,
		Population:  sp.Population,
		Generations: sp.Generations,
		Seed:        sp.Seed,
		Objectives:  experiments.SplitObjectives(sp.Objectives),
	}
}

// islandSpec maps the job spec onto the evolve-layer island tuple.
func (sp Spec) islandSpec() evolve.IslandSpec {
	return evolve.IslandSpec{
		Workload:       sp.Workload,
		Population:     sp.Population,
		Generations:    sp.Generations,
		Islands:        sp.Islands,
		MigrationEvery: sp.MigrationEvery,
		Seed:           sp.Seed,
	}
}

// validate rejects specs the scheduler would choke on.
func (sp Spec) validate() error {
	if _, err := evolve.WorkloadByName(sp.Workload); err != nil {
		return err
	}
	if sp.Population < 2 {
		return fmt.Errorf("population %d: need at least 2", sp.Population)
	}
	if sp.Generations < 1 {
		return fmt.Errorf("generations %d: need at least 1", sp.Generations)
	}
	if sp.IsIsland() && sp.IsPareto() {
		return fmt.Errorf("islands and objectives are mutually exclusive")
	}
	if sp.IsIsland() {
		return sp.islandSpec().Validate()
	}
	if sp.IsPareto() {
		return sp.paretoSpec().Validate()
	}
	return nil
}

// key is the spec's run-cache identity rendered as a stable string —
// used for checkpoint file names and cluster sharding, so an
// interrupted job's resubmission finds its checkpoint and the ring
// finds the same owner by construction. Matches store.Key.String().
func (sp Spec) key() string {
	base := fmt.Sprintf("%s-p%d-g%d-s%d", sp.Workload, sp.Population, sp.Generations, sp.Seed)
	if sp.IsIsland() {
		base += fmt.Sprintf("-i%d-m%d", sp.Islands, sp.MigrationEvery)
	}
	if sp.IsPareto() {
		base += "-o" + sp.Objectives
	}
	return base
}

// Job is one submitted evolution with its lifecycle state and record
// stream. All mutable fields are guarded by mu; reads go through
// Status.
type Job struct {
	ID   string
	Spec Spec

	stream *stream
	// done closes when the job reaches a terminal state.
	done chan struct{}

	// runner is published by the compute hook while the job is live on
	// a cache miss; used for on-demand checkpoint requests.
	runner atomic.Pointer[evolve.Runner]

	mu        sync.Mutex
	state     State
	err       string
	solved    bool
	shared    bool // result came from the run cache, not a fresh execution
	resumed   bool // fresh execution restored a checkpoint
	stored    bool // cache miss was served from the persistent store
	best      float64
	gens      int
	cancel    context.CancelFunc
	created   time.Time
	started   time.Time
	finished  time.Time
	ckptAsked bool
}

// Status is the wire form of a job — what every jobs endpoint returns.
type Status struct {
	ID          string  `json:"id"`
	Spec        Spec    `json:"spec"`
	State       State   `json:"state"`
	Error       string  `json:"error,omitempty"`
	Solved      bool    `json:"solved,omitempty"`
	Shared      bool    `json:"shared,omitempty"`
	Resumed     bool    `json:"resumed,omitempty"`
	Stored      bool    `json:"stored,omitempty"`
	BestFitness float64 `json:"best_fitness,omitempty"`
	Generations int     `json:"generations"`
	CreatedMs   int64   `json:"created_unix_ms"`
	StartedMs   int64   `json:"started_unix_ms,omitempty"`
	FinishedMs  int64   `json:"finished_unix_ms,omitempty"`
}

// Status snapshots the job under its lock.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		Spec:        j.Spec,
		State:       j.state,
		Error:       j.err,
		Solved:      j.solved,
		Shared:      j.shared,
		Resumed:     j.resumed,
		Stored:      j.stored,
		BestFitness: j.best,
		Generations: j.gens,
		CreatedMs:   j.created.UnixMilli(),
	}
	if !j.started.IsZero() {
		st.StartedMs = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		st.FinishedMs = j.finished.UnixMilli()
	}
	return st
}

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// start moves queued → running, wiring the cancel func. It reports
// false when the job was cancelled while queued.
func (j *Job) start(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	return true
}

// finish moves the job into a terminal state and closes the stream
// and done channel, reporting whether this call performed the
// transition (false if already terminal — a DELETE racing completion
// keeps the first outcome).
func (j *Job) finish(state State, errMsg string) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = errMsg
	j.finished = time.Now()
	j.cancel = nil
	j.mu.Unlock()
	j.stream.Close()
	close(j.done)
	return true
}

// requestCancel cancels a running job's context, or reports the job
// is still queued (the scheduler then finishes it directly). Terminal
// jobs are left alone.
func (j *Job) requestCancel() (wasQueued, wasRunning bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch j.state {
	case StateQueued:
		return true, false
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
		return false, true
	}
	return false, false
}

// setOutcome records a finished run's result fields before finish.
func (j *Job) setOutcome(solved, shared, resumed, stored bool, best float64, gens int) {
	j.mu.Lock()
	j.solved = solved
	j.shared = shared
	j.resumed = resumed
	j.stored = stored
	j.best = best
	j.gens = gens
	j.mu.Unlock()
}

// PublishRunner publishes (or clears, with nil) the live runner an
// executor is driving, so CheckpointJob can reach it, and applies any
// checkpoint request that arrived while the job was still queued.
func (j *Job) PublishRunner(r *evolve.Runner) {
	j.runner.Store(r)
	if r == nil {
		return
	}
	j.mu.Lock()
	asked := j.ckptAsked
	j.ckptAsked = false
	j.mu.Unlock()
	if asked {
		r.RequestCheckpoint()
	}
}

// noteRecord bumps the streamed-generation count and best fitness as
// records flow — so GET /jobs/{id} shows live progress.
func (j *Job) noteRecord(maxFitness float64) {
	j.mu.Lock()
	j.gens++
	if maxFitness > j.best || j.gens == 1 {
		j.best = maxFitness
	}
	j.mu.Unlock()
}
