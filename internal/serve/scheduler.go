// Package serve is the evolution-as-a-service layer: a job scheduler
// and HTTP surface (genesysd) that accept evolution jobs over JSON,
// execute them on a bounded worker pool through the experiment
// harness's shared run cache, and stream per-generation records to
// clients as Server-Sent Events. The paper frames GeneSys as an
// always-on continuously learning system (EvE/ADAM never stop); this
// package is that framing applied to the simulation stack — evolution
// as a long-lived service rather than a batch script.
//
// Load policy: the daemon sheds rather than degrades. Admission is
// checked synchronously at submit time against a fixed queue depth
// and a per-client in-flight cap; a request over either limit is
// refused immediately with 429 + Retry-After, so admitted jobs keep
// their latency instead of everyone queueing into the floor. Draining
// (SIGTERM) refuses new work with 503, lets running jobs finish for a
// grace period, then cancels the stragglers — which checkpoint at a
// generation boundary and resume on resubmission.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/hw/hwsim"
	"repro/internal/store"
)

// Config tunes the scheduler. Zero values select the defaults.
type Config struct {
	// MaxRunning is the worker-pool size: jobs executing concurrently.
	// 0 means runtime.NumCPU().
	MaxRunning int
	// MaxQueue bounds jobs waiting behind the workers; a submit that
	// finds the queue full is shed with 429. 0 means 16.
	MaxQueue int
	// MaxPerClient caps one client's queued+running jobs; over the cap
	// the submit is shed with 429. 0 disables the cap.
	MaxPerClient int
	// RunnerParallelism is each job's evaluation-pool width
	// (evolve.Runner.Parallelism). 0 means 1: the scheduler's worker
	// slots are the parallelism, so MaxRunning jobs use MaxRunning
	// cores.
	RunnerParallelism int
	// RunnerBatchWidth caps each job's batch evaluation engine lane
	// count (evolve.Runner.BatchWidth). 0 means the engine default.
	// Results are byte-identical at every width; this only tunes the
	// throughput/memory trade per job.
	RunnerBatchWidth int
	// CheckpointDir, when set, gives every cache-miss job a
	// checkpoint file named by its cache key, so an interrupted job
	// (cancel or drain) resumes when the same spec is resubmitted.
	CheckpointDir string
	// CheckpointEvery is the periodic checkpoint interval in
	// generations (with CheckpointDir); 0 means 5.
	CheckpointEvery int
	// Store, when set, is the persistent run store: completed jobs
	// commit their results, identical submissions (from any process
	// lifetime) replay from disk, Recover re-enqueues interrupted jobs
	// at boot, and the /store admin surface exposes stats/GC/quarantine.
	Store *store.Store
	// WorkerID, when set, suffixes this process's checkpoint files
	// ("<key>~<worker>.ckpt") so fleet workers sharing a checkpoint
	// directory can never interleave writes into the same
	// cache-key-named file; resume discovery still finds any owner's
	// orphan (see findResume).
	WorkerID string
	// Executor, when set, replaces local job execution — the cluster
	// coordinator installs a Dispatcher here, so admitted jobs execute
	// on the worker fleet while admission control, queueing, SSE
	// streams, cancellation, and metrics stay exactly the single-process
	// surface.
	Executor Executor
}

// Outcome is an executor's report of one successfully completed job.
type Outcome struct {
	Solved  bool
	Shared  bool
	Resumed bool
	Stored  bool
	Best    float64
	Gens    int
}

// Executor runs one admitted job to completion, streaming its
// per-generation records through sink (live or replayed — the job's
// subscribers cannot tell). A returned error with ctx cancelled marks
// the job cancelled; any other error marks it failed. Implementations
// may publish the live runner via j.PublishRunner for on-demand
// checkpointing.
type Executor interface {
	Execute(ctx context.Context, j *Job, sink hwsim.Sink) (Outcome, error)
}

func (c Config) withDefaults() Config {
	if c.MaxRunning <= 0 {
		c.MaxRunning = runtime.NumCPU()
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 16
	}
	if c.RunnerParallelism <= 0 {
		c.RunnerParallelism = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 5
	}
	return c
}

// ErrDraining is returned by Submit once the scheduler is draining;
// the HTTP layer maps it to 503.
var ErrDraining = errors.New("serve: daemon is draining, not admitting jobs")

// ShedError is an admission refusal — the load-shedding outcome. The
// HTTP layer maps it to 429 with the Retry-After hint.
type ShedError struct {
	Reason     string
	RetryAfter int // seconds
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("serve: load shed (%s), retry after %ds", e.Reason, e.RetryAfter)
}

// ErrUnknownJob is returned for job ids the store has never seen.
var ErrUnknownJob = errors.New("serve: unknown job")

// Scheduler owns the job store, the admission policy, and the worker
// pool. All methods are safe for concurrent use.
type Scheduler struct {
	cfg Config

	baseCtx   context.Context
	cancelAll context.CancelFunc

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	active   map[string]int // queued+running per client
	seq      int
	draining bool

	running atomic.Int64

	exec      Executor
	counters  *hwsim.Counters
	ctrJobs   *hwsim.Counters
	ctrStream *hwsim.Counters
}

// NewScheduler builds a scheduler and starts its worker pool.
func NewScheduler(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:       cfg,
		baseCtx:   ctx,
		cancelAll: cancel,
		queue:     make(chan *Job, cfg.MaxQueue),
		jobs:      map[string]*Job{},
		active:    map[string]int{},
		counters:  hwsim.New("genesysd"),
	}
	s.ctrJobs = s.counters.Child("jobs")
	s.ctrStream = s.counters.Child("stream")
	// Gauges refresh at snapshot time, so /metrics is always current
	// without the hot paths maintaining them.
	s.counters.Child("queue").OnSnapshot(func(c *hwsim.Counters) {
		s.mu.Lock()
		draining := s.draining
		clients := int64(len(s.active))
		s.mu.Unlock()
		c.SetInt("depth", int64(len(s.queue)))
		c.SetInt("capacity", int64(cfg.MaxQueue))
		c.SetInt("running", s.running.Load())
		c.SetInt("workers", int64(cfg.MaxRunning))
		c.SetInt("active_clients", clients)
		c.SetInt("draining", boolInt(draining))
	})
	s.counters.Child("cache").OnSnapshot(func(c *hwsim.Counters) {
		c.SetInt("evolutions_executed", experiments.EvolutionsExecuted())
	})
	if cfg.Store != nil {
		// Attach the disk tier under the run cache and mount its
		// counters into this daemon's /metrics tree.
		experiments.UseStore(cfg.Store)
		s.counters.Adopt(cfg.Store.Counters())
	}
	s.exec = cfg.Executor
	if s.exec == nil {
		s.exec = newLocalExecutor(cfg)
	}
	if cw, ok := s.exec.(interface{ Counters() *hwsim.Counters }); ok {
		// An executor with its own registry (the cluster Dispatcher)
		// mounts it into this daemon's /metrics tree.
		s.counters.Adopt(cw.Counters())
	}
	if pw, ok := s.exec.(interface{ Phases() *hwsim.Counters }); ok {
		// An executor keeping a separate phase-accounting node (the
		// cluster Dispatcher — localExecutor's Counters() already IS its
		// phase node) mounts it too, so coordinator /metrics carries
		// evaluate/speciate/reproduce wall-clock like a worker's.
		s.counters.Adopt(pw.Phases())
	}
	s.ctrStream.OnSnapshot(func(c *hwsim.Counters) {
		s.mu.Lock()
		var subs int64
		for _, j := range s.jobs {
			subs += int64(j.stream.Subscribers())
		}
		s.mu.Unlock()
		c.SetInt("subscribers", subs)
	})
	for i := 0; i < cfg.MaxRunning; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Counters exposes the scheduler's hwsim registry (the /metrics tree).
func (s *Scheduler) Counters() *hwsim.Counters { return s.counters }

// retryAfterLocked estimates (in whole seconds) when capacity is
// likely to free up — a queue-depth heuristic, clamped to [1, 60].
func (s *Scheduler) retryAfterLocked() int {
	est := 1 + len(s.queue)
	if est > 60 {
		est = 60
	}
	return est
}

// Submit validates and admits one job, or sheds it. Returned errors:
// ErrDraining (refused, daemon stopping), *ShedError (refused, over
// capacity), anything else (invalid spec).
func (s *Scheduler) Submit(spec Spec) (*Job, error) {
	spec = spec.withDefaults()
	if err := spec.validate(); err != nil {
		return nil, err
	}
	client := spec.Client
	if client == "" {
		client = "(anon)"
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctrJobs.AddInt("submitted", 1)
	if s.draining {
		s.ctrJobs.AddInt("rejected_draining", 1)
		return nil, ErrDraining
	}
	if s.cfg.MaxPerClient > 0 && s.active[client] >= s.cfg.MaxPerClient {
		s.ctrJobs.AddInt("shed", 1)
		return nil, &ShedError{
			Reason:     fmt.Sprintf("client %q at in-flight cap %d", client, s.cfg.MaxPerClient),
			RetryAfter: s.retryAfterLocked(),
		}
	}
	s.seq++
	j := &Job{
		ID:     fmt.Sprintf("job-%04d", s.seq),
		Spec:   spec,
		stream: newStream(),
		done:   make(chan struct{}),
		state:  StateQueued,
	}
	j.created = time.Now()
	select {
	case s.queue <- j:
	default:
		s.seq-- // the id was never published
		s.ctrJobs.AddInt("shed", 1)
		return nil, &ShedError{
			Reason:     fmt.Sprintf("queue full (%d waiting)", len(s.queue)),
			RetryAfter: s.retryAfterLocked(),
		}
	}
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	s.active[client]++
	s.ctrJobs.AddInt("admitted", 1)
	return j, nil
}

// Job looks up one job by id.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Scheduler) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// Cancel cancels one job: a queued job is finished immediately, a
// running one has its context cancelled (it checkpoints at the next
// generation boundary when checkpointing is configured and then
// reports cancelled). Terminal jobs are left as they are.
func (s *Scheduler) Cancel(id string) (*Job, error) {
	j, ok := s.Job(id)
	if !ok {
		return nil, ErrUnknownJob
	}
	wasQueued, _ := j.requestCancel()
	if wasQueued {
		s.finishJob(j, StateCancelled, "cancelled before start")
	}
	return j, nil
}

// CheckpointJob asks a running job to persist a checkpoint at its
// next generation boundary (no-op without a checkpoint dir). A queued
// job records the request and applies it once it starts.
func (s *Scheduler) CheckpointJob(id string) (*Job, error) {
	j, ok := s.Job(id)
	if !ok {
		return nil, ErrUnknownJob
	}
	if r := j.runner.Load(); r != nil {
		r.RequestCheckpoint()
		return j, nil
	}
	j.mu.Lock()
	j.ckptAsked = true
	j.mu.Unlock()
	return j, nil
}

// Drain stops admission, cancels everything still queued, and waits
// up to grace for running jobs to finish; jobs still running after
// the grace period are cancelled (checkpointing at their next
// generation boundary) and then awaited. Idempotent; the second call
// just waits for the first drain's workers.
func (s *Scheduler) Drain(grace time.Duration) {
	s.mu.Lock()
	first := !s.draining
	s.draining = true
	if first {
		// No submit can race this loop: admission checks draining
		// under the same lock that guards this channel drain.
	drainQueued:
		for {
			select {
			case j := <-s.queue:
				s.mu.Unlock()
				s.finishJob(j, StateCancelled, "daemon draining")
				s.mu.Lock()
			default:
				break drainQueued
			}
		}
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(grace):
		s.cancelAll()
		<-done
	}
	s.cancelAll()
}

// Recover runs the store's startup-recovery pass and re-enqueues every
// interrupted run as a fresh job under the "(recovery)" client: the
// checkpoint file is found by name construction (both sides derive it
// from the cache-key tuple), so each re-enqueued job resumes where the
// crashed process stopped. Call after NewScheduler, before serving
// traffic. No-op without a configured store.
func (s *Scheduler) Recover() (store.RecoveryReport, []*Job) {
	if s.cfg.Store == nil {
		return store.RecoveryReport{}, nil
	}
	rep := s.cfg.Store.Recover()
	jobs := make([]*Job, 0, len(rep.Interrupted))
	for _, key := range rep.Interrupted {
		j, err := s.Submit(Spec{
			Workload:       key.Workload,
			Population:     key.Population,
			Generations:    key.Generations,
			Seed:           key.Seed,
			Islands:        key.Islands,
			MigrationEvery: key.MigrationEvery,
			Objectives:     key.Objectives,
			Client:         "(recovery)",
		})
		if err != nil {
			// Queue full or an unloadable workload: the checkpoint stays
			// on disk and a later submission (or GC age-out) handles it.
			s.ctrJobs.AddInt("recovery_skipped", 1)
			continue
		}
		s.ctrJobs.AddInt("recovered", 1)
		jobs = append(jobs, j)
	}
	return rep, jobs
}

// worker is one slot of the pool.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one admitted job through the configured executor —
// the shared run cache locally, or the cluster dispatcher on a
// coordinator.
func (s *Scheduler) runJob(j *Job) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	if !j.start(cancel) {
		// Cancelled while queued; its terminal state is already set.
		return
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	// The job's sink: progress tracking fanned out with the SSE
	// stream. Live cache-miss records and cache-hit replays both go
	// through it, so a job's stream looks the same either way.
	sink := hwsim.MultiSink(hwsim.SinkFunc(func(r hwsim.Record) {
		j.noteRecord(r.Report.Float("max_fitness"))
		s.ctrStream.AddInt("records_streamed", 1)
	}), j.stream)

	out, err := s.exec.Execute(ctx, j, sink)
	j.runner.Store(nil)
	switch {
	case err != nil && ctx.Err() != nil:
		s.finishJob(j, StateCancelled, err.Error())
	case err != nil:
		s.finishJob(j, StateFailed, err.Error())
	default:
		if out.Stored {
			s.ctrJobs.AddInt("store_hits", 1)
		}
		if out.Shared {
			s.ctrJobs.AddInt("shared_cache", 1)
		}
		if out.Resumed {
			s.ctrJobs.AddInt("resumed", 1)
		}
		j.setOutcome(out.Solved, out.Shared, out.Resumed, out.Stored, out.Best, out.Gens)
		s.finishJob(j, StateDone, "")
	}
}

// finishJob finalizes a job exactly once: terminal state, client slot
// release, outcome counters.
func (s *Scheduler) finishJob(j *Job, state State, msg string) {
	if !j.finish(state, msg) {
		return
	}
	client := j.Spec.Client
	if client == "" {
		client = "(anon)"
	}
	s.mu.Lock()
	if s.active[client]--; s.active[client] <= 0 {
		delete(s.active, client)
	}
	s.mu.Unlock()
	switch state {
	case StateDone:
		s.ctrJobs.AddInt("completed", 1)
	case StateFailed:
		s.ctrJobs.AddInt("failed", 1)
	case StateCancelled:
		s.ctrJobs.AddInt("cancelled", 1)
	}
	if d := j.stream.Dropped(); d > 0 {
		s.ctrStream.AddInt("sse_dropped", d)
	}
}
