package serve

import (
	"context"
	"errors"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/hw/hwsim"
)

// Seed ranges per test, so the process-global run cache never aliases
// one test's evolutions into another's execution counts:
//
//	smoke 9000s · admission 9100s · dedup 9200s · cancel/resume 9300s ·
//	integration 9500s · bench 1<<40 and up
const (
	seedSmoke       = 9000
	seedAdmission   = 9100
	seedDedup       = 9200
	seedResume      = 9300
	seedIntegration = 9500
)

// Tests that need a job to still be in flight when the next request
// lands use alien-ram: ~65ms per generation at population 30 and no
// reachable solve target, so a large generation budget pins a worker
// for as long as the test wants (the control workloads solve within a
// few cheap generations and finish in single-digit milliseconds).
func slowSpec(seed uint64, gens int) Spec {
	return Spec{Workload: "alien-ram", Population: 30, Generations: gens, Seed: seed}
}

// startDaemon runs a real genesysd stack — scheduler, HTTP server, TCP
// loopback listener — and returns a client pointed at it.
func startDaemon(t testing.TB, cfg Config) (*Scheduler, *Client, *http.Server) {
	t.Helper()
	sched := NewScheduler(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: NewServer(sched)}
	go srv.Serve(ln)
	c := &Client{Base: "http://" + ln.Addr().String(), Name: "test"}
	t.Cleanup(func() {
		sched.Drain(5 * time.Second)
		srv.Close()
	})
	return sched, c, srv
}

// waitState polls until the job reaches the predicate or the deadline.
func waitStatus(t *testing.T, c *Client, id string, deadline time.Duration, ok func(Status) bool) Status {
	t.Helper()
	ctx := context.Background()
	for start := time.Now(); time.Since(start) < deadline; {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if ok(st) {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach the wanted status within %s", id, deadline)
	return Status{}
}

// TestServerSmoke is the check.sh smoke scenario: one tiny CartPole
// job end to end — SSE records arrive, the terminal status is done,
// and /metrics parses as a valid counter tree.
func TestServerSmoke(t *testing.T) {
	_, c, _ := startDaemon(t, Config{MaxRunning: 2, MaxQueue: 8})
	ctx := context.Background()

	st, err := c.Submit(ctx, Spec{Workload: "cartpole", Population: 24, Generations: 3, Seed: seedSmoke})
	if err != nil {
		t.Fatal(err)
	}
	var recs int
	final, err := c.Watch(ctx, st.ID, func(r hwsim.Record) error {
		if r.Workload != "cartpole" {
			t.Errorf("record workload %q", r.Workload)
		}
		recs++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("final state %s (err %q), want done", final.State, final.Error)
	}
	if recs < 1 || recs != final.Generations {
		t.Fatalf("streamed %d records, status says %d generations", recs, final.Generations)
	}

	rep, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if rep.Name != "genesysd" {
		t.Fatalf("metrics root %q", rep.Name)
	}
	if got := rep.Int("jobs/admitted"); got < 1 {
		t.Fatalf("jobs/admitted = %d", got)
	}
	if got := rep.Int("jobs/completed"); got < 1 {
		t.Fatalf("jobs/completed = %d", got)
	}
	if got := rep.Int("stream/records_streamed"); got < int64(recs) {
		t.Fatalf("stream/records_streamed = %d, want >= %d", got, recs)
	}
}

// TestAdmissionPerClientCap: one client over its in-flight cap is
// shed with a Retry-After hint while another client is admitted — the
// per-client fairness half of the load-shedding policy.
func TestAdmissionPerClientCap(t *testing.T) {
	_, c, _ := startDaemon(t, Config{MaxRunning: 1, MaxQueue: 4, MaxPerClient: 1})
	ctx := context.Background()

	st, err := c.Submit(ctx, slowSpec(seedAdmission, 1000))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, slowSpec(seedAdmission+1, 1000))
	var shed *ShedError
	if !errors.As(err, &shed) {
		t.Fatalf("second submit from the same client: err %v, want ShedError", err)
	}
	if shed.RetryAfter < 1 {
		t.Fatalf("shed without a Retry-After hint: %+v", shed)
	}

	other := &Client{Base: c.Base, Name: "other-client"}
	st2, err := other.Submit(ctx, slowSpec(seedAdmission+2, 1000))
	if err != nil {
		t.Fatalf("other client shed too: %v", err)
	}

	for _, id := range []string{st.ID, st2.ID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDedupSharedEvolution: identical (workload, pop, gens, seed)
// submissions execute one evolution — the second job is served from
// the run cache, streams the same records, and the execution counter
// moves by exactly one.
func TestDedupSharedEvolution(t *testing.T) {
	_, c, _ := startDaemon(t, Config{MaxRunning: 2, MaxQueue: 8})
	ctx := context.Background()
	spec := Spec{Workload: "cartpole", Population: 20, Generations: 3, Seed: seedDedup}

	before := experiments.EvolutionsExecuted()
	st1, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final1, err := c.Watch(ctx, st1.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	var recs2 int
	final2, err := c.Watch(ctx, st2.ID, func(hwsim.Record) error { recs2++; return nil })
	if err != nil {
		t.Fatal(err)
	}

	if d := experiments.EvolutionsExecuted() - before; d != 1 {
		t.Fatalf("2 identical jobs executed %d evolutions, want 1", d)
	}
	if final1.State != StateDone || final2.State != StateDone {
		t.Fatalf("states %s / %s, want done / done", final1.State, final2.State)
	}
	if final1.Shared {
		t.Fatal("first submission marked shared; it should have computed")
	}
	if !final2.Shared {
		t.Fatal("second identical submission not served from the run cache")
	}
	if recs2 != final1.Generations {
		t.Fatalf("replayed %d records, original streamed %d", recs2, final1.Generations)
	}
}

// TestCancelCheckpointResume: DELETE mid-run cancels the job and
// leaves a checkpoint; resubmitting the same spec resumes from it
// instead of starting over.
func TestCancelCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	_, c, _ := startDaemon(t, Config{
		MaxRunning: 1, MaxQueue: 4,
		CheckpointDir: dir, CheckpointEvery: 1,
	})
	ctx := context.Background()
	// 8 generations is ~0.5s of compute: long enough that the cancel
	// lands mid-run (we poll for generation 2 first), short enough that
	// the resumed job finishes the remainder quickly.
	spec := slowSpec(seedResume, 8)

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let it stream a couple of generations, poke the on-demand
	// checkpoint endpoint, then cancel via the API.
	waitStatus(t, c, st.ID, 30*time.Second, func(s Status) bool { return s.Generations >= 2 })
	if _, err := c.Checkpoint(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, c, st.ID, 30*time.Second, func(s Status) bool { return s.State.Terminal() })
	if final.State != StateCancelled {
		t.Fatalf("cancelled job reports %s (err %q)", final.State, final.Error)
	}

	ckpt := filepath.Join(dir, spec.withDefaults().key()+".ckpt")
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint after cancel: %v", err)
	}

	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c.Watch(ctx, st2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != StateDone {
		t.Fatalf("resumed job reports %s (err %q)", final2.State, final2.Error)
	}
	if !final2.Resumed {
		t.Fatal("resubmitted job did not resume from the checkpoint")
	}
	if _, err := os.Stat(ckpt); err == nil {
		t.Fatal("checkpoint not cleaned up after successful completion")
	}
}

// TestServeIntegration is the acceptance scenario: a real genesysd on
// a loopback listener under a deliberately tiny queue — a concurrent
// burst sheds with 429, admitted jobs stream SSE records, one job is
// cancelled mid-run via the API, identical submissions share one
// evolution, and the daemon drains cleanly. scripts/check.sh runs
// this under the race detector.
func TestServeIntegration(t *testing.T) {
	dir := t.TempDir()
	sched, c, srv := startDaemon(t, Config{
		MaxRunning: 2, MaxQueue: 2,
		CheckpointDir: dir, CheckpointEvery: 5,
	})
	ctx := context.Background()

	// Burst: 10 concurrent watched jobs against capacity 2+2. The
	// submissions land within milliseconds while each job runs for
	// ~130ms, so the overflow must shed.
	rep, err := c.Load(ctx, LoadSpec{
		Template:      slowSpec(seedIntegration, 2),
		Jobs:          10,
		DistinctSeeds: true,
		Watch:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed < 1 {
		t.Fatalf("no 429 under a 2+2 capacity with a 10-job burst: %+v", rep)
	}
	if rep.Admitted < 2 {
		t.Fatalf("burst admitted %d jobs, want >= 2: %+v", rep.Admitted, rep)
	}
	if rep.Completed != rep.Admitted || rep.Failed != 0 {
		t.Fatalf("admitted jobs did not all complete: %+v", rep)
	}
	if rep.Records < rep.Completed {
		t.Fatalf("only %d SSE records across %d completed jobs: %+v", rep.Records, rep.Completed, rep)
	}

	// Cancel mid-run via the API, observing the stream end.
	long, err := c.Submit(ctx, slowSpec(seedIntegration+50, 1000))
	if err != nil {
		t.Fatal(err)
	}
	watched := make(chan Status, 1)
	go func() {
		final, werr := c.Watch(ctx, long.ID, nil)
		if werr != nil {
			t.Error(werr)
		}
		watched <- final
	}()
	waitStatus(t, c, long.ID, 30*time.Second, func(s Status) bool { return s.Generations >= 1 })
	if _, err := c.Cancel(ctx, long.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case final := <-watched:
		if final.State != StateCancelled {
			t.Fatalf("mid-run cancel produced state %s", final.State)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SSE watch did not end after cancel")
	}

	// Identical submissions share one evolution via the run cache.
	pair := Spec{Workload: "cartpole", Population: 20, Generations: 3, Seed: seedIntegration + 60}
	before := experiments.EvolutionsExecuted()
	a, err := c.Submit(ctx, pair)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch(ctx, a.ID, nil); err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, pair)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := c.Watch(ctx, b.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := experiments.EvolutionsExecuted() - before; d != 1 {
		t.Fatalf("identical pair executed %d evolutions, want 1", d)
	}
	if !fb.Shared {
		t.Fatal("identical resubmission did not share the cached evolution")
	}

	// Drain with a job still running: it is cancelled at a generation
	// boundary (checkpointing), and new submissions are refused 503.
	drainee, err := c.Submit(ctx, slowSpec(seedIntegration+70, 1000))
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, c, drainee.ID, 30*time.Second, func(s Status) bool { return s.State == StateRunning })
	sched.Drain(10 * time.Millisecond)

	st, err := c.Job(ctx, drainee.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCancelled {
		t.Fatalf("drained job in state %s, want cancelled", st.State)
	}
	if _, err := c.Submit(ctx, Spec{Workload: "cartpole", Seed: seedIntegration + 80}); err == nil ||
		!strings.Contains(err.Error(), "draining") {
		t.Fatalf("submit while draining: err %v, want 503 draining", err)
	}
	shutdownCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("shutdown after drain: %v", err)
	}
}
