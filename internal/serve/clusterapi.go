package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"

	"repro/internal/cluster"
)

// This file is the HTTP face of cluster mode, layered onto the
// ordinary Server so coordinators and workers keep the whole
// single-process surface:
//
//	POST /cluster/join  {"addr": "http://host:port"}  register a worker
//	GET  /cluster       membership + ring status
//
// plus, on workers, the island session protocol (cluster.WorkerAPI).

// ClusterStatus is GET /cluster's payload.
type ClusterStatus struct {
	Members    []cluster.MemberStatus `json:"members"`
	RingPoints int                    `json:"ring_points"`
}

// EnableCluster mounts the coordinator's cluster admin surface over a
// membership registry. Call before serving traffic.
func (s *Server) EnableCluster(m *cluster.Membership) {
	s.mux.HandleFunc("POST /cluster/join", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Addr string `json:"addr"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Addr == "" {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "join: body must be {\"addr\": \"http://host:port\"}"})
			return
		}
		writeJSON(w, http.StatusOK, m.Join(req.Addr))
	})
	s.mux.HandleFunc("GET /cluster", func(w http.ResponseWriter, r *http.Request) {
		members, points := m.Status()
		if members == nil {
			members = []cluster.MemberStatus{}
		}
		writeJSON(w, http.StatusOK, ClusterStatus{Members: members, RingPoints: points})
	})
}

// EnableWorker mounts the island session protocol — what makes this
// daemon dispatchable as a fleet worker.
func (s *Server) EnableWorker(api *cluster.WorkerAPI) {
	api.Routes(s.mux)
}

// ClusterJoin registers a worker address with a coordinator — the
// call a worker retries at boot until the coordinator is reachable.
func (c *Client) ClusterJoin(ctx context.Context, workerAddr string) (cluster.Member, error) {
	var mem cluster.Member
	err := c.withRetry(ctx, func() error {
		resp, err := c.do(ctx, http.MethodPost, "/cluster/join", struct {
			Addr string `json:"addr"`
		}{Addr: workerAddr})
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		return json.NewDecoder(resp.Body).Decode(&mem)
	})
	if err != nil {
		return cluster.Member{}, fmt.Errorf("cluster join: %w", err)
	}
	return mem, nil
}

// Cluster fetches a coordinator's membership status.
func (c *Client) Cluster(ctx context.Context) (ClusterStatus, error) {
	var st ClusterStatus
	err := c.withRetry(ctx, func() error {
		resp, err := c.do(ctx, http.MethodGet, "/cluster", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		return json.NewDecoder(resp.Body).Decode(&st)
	})
	if err != nil {
		return ClusterStatus{}, err
	}
	return st, nil
}
