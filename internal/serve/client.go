package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/hw/hwsim"
)

// Client talks to a genesysd instance: the programmatic form of
// genesysctl, and the load generator the integration tests drive a
// real server with.
type Client struct {
	// Base is the server root, e.g. "http://127.0.0.1:8177".
	Base string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
	// Name, when set, is sent as X-Genesys-Client on every request.
	Name string
	// Retry governs backoff on shed (429) responses and transient
	// transport errors, and the Watch reconnect budget. The zero value
	// never retries.
	Retry RetryPolicy
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, strings.TrimRight(c.Base, "/")+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Name != "" {
		req.Header.Set("X-Genesys-Client", c.Name)
	}
	return c.http().Do(req)
}

// apiError decodes a non-2xx response into an error. 429 responses
// come back as *ShedError carrying the Retry-After hint, so callers
// can distinguish shed load from failure.
func apiError(resp *http.Response) error {
	var body errorBody
	json.NewDecoder(resp.Body).Decode(&body)
	msg := body.Error
	if msg == "" {
		msg = resp.Status
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		after := body.RetryAfter
		if after == 0 {
			after, _ = strconv.Atoi(resp.Header.Get("Retry-After"))
		}
		return &ShedError{Reason: msg, RetryAfter: after}
	}
	return fmt.Errorf("%s: %s", resp.Status, msg)
}

func (c *Client) statusCall(ctx context.Context, method, path string, body any, want int) (Status, error) {
	var st Status
	err := c.withRetry(ctx, func() error {
		resp, err := c.do(ctx, method, path, body)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != want {
			return apiError(resp)
		}
		return json.NewDecoder(resp.Body).Decode(&st)
	})
	if err != nil {
		return Status{}, err
	}
	return st, nil
}

// Submit posts one job. A shed submission returns *ShedError.
func (c *Client) Submit(ctx context.Context, spec Spec) (Status, error) {
	return c.statusCall(ctx, http.MethodPost, "/jobs", spec, http.StatusAccepted)
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (Status, error) {
	return c.statusCall(ctx, http.MethodGet, "/jobs/"+id, nil, http.StatusOK)
}

// Cancel cancels one job.
func (c *Client) Cancel(ctx context.Context, id string) (Status, error) {
	return c.statusCall(ctx, http.MethodDelete, "/jobs/"+id, nil, http.StatusOK)
}

// Checkpoint asks a job to persist at its next generation boundary.
func (c *Client) Checkpoint(ctx context.Context, id string) (Status, error) {
	return c.statusCall(ctx, http.MethodPost, "/jobs/"+id+"/checkpoint", nil, http.StatusAccepted)
}

// List fetches every job in submission order.
func (c *Client) List(ctx context.Context) ([]Status, error) {
	var out struct {
		Jobs []Status `json:"jobs"`
	}
	err := c.withRetry(ctx, func() error {
		resp, err := c.do(ctx, http.MethodGet, "/jobs", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		return json.NewDecoder(resp.Body).Decode(&out)
	})
	if err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// Metrics fetches the daemon's counter registry snapshot.
func (c *Client) Metrics(ctx context.Context) (hwsim.Report, error) {
	var rep hwsim.Report
	err := c.withRetry(ctx, func() error {
		resp, err := c.do(ctx, http.MethodGet, "/metrics", nil)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return apiError(resp)
		}
		return json.NewDecoder(resp.Body).Decode(&rep)
	})
	if err != nil {
		return hwsim.Report{}, err
	}
	return rep, nil
}

// watchAbort marks an error that must end the watch without a
// reconnect: the caller's callback said stop, or an event failed to
// decode.
type watchAbort struct{ err error }

func (e *watchAbort) Error() string { return e.err.Error() }
func (e *watchAbort) Unwrap() error { return e.err }

// watchDropped marks a mid-stream read failure — an established
// subscription that died (daemon killed, connection reset). Always
// worth a reconnect: the server replays history, the client skips
// what it has seen.
type watchDropped struct{ err error }

func (e *watchDropped) Error() string { return e.err.Error() }
func (e *watchDropped) Unwrap() error { return e.err }

// Watch subscribes to a job's SSE stream, invoking fn (which may be
// nil) for every generation record — history replay included — and
// returns the job's terminal status from the final done event. A
// non-nil error from fn aborts the watch.
//
// A dropped stream (daemon restart, broken connection, clean EOF
// before the job finished) reconnects under the client's RetryPolicy
// and resumes from the last-seen event: the server replays the full
// history on every subscription, and the client skips the records it
// already delivered, so fn sees each generation exactly once across
// any number of reconnects. Progress resets the attempt budget —
// only consecutive fruitless reconnects exhaust it.
func (c *Client) Watch(ctx context.Context, id string, fn func(hwsim.Record) error) (Status, error) {
	pol := c.Retry.withDefaults()
	attempts := pol.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	seen, failures := 0, 0
	for {
		before := seen
		final, err := c.watchOnce(ctx, id, fn, &seen)
		if err != nil {
			var abort *watchAbort
			if errors.As(err, &abort) {
				return Status{}, abort.err
			}
			var dropped *watchDropped
			if !errors.As(err, &dropped) && !retryable(ctx, err) {
				return Status{}, err
			}
			if ctx.Err() != nil {
				return Status{}, err
			}
		} else if final != nil {
			return *final, nil
		} else {
			// Clean EOF without a done event: a drained daemon ends
			// streams after the job is already terminal — fetch the
			// status; if the job really is finished there is nothing to
			// reconnect for.
			if st, jerr := c.Job(ctx, id); jerr == nil && st.State.Terminal() {
				return st, nil
			}
		}
		if seen > before {
			failures = 0
		}
		failures++
		if failures >= attempts {
			if err != nil {
				return Status{}, err
			}
			return c.Job(ctx, id)
		}
		if serr := pol.sleep(ctx, pol.delay(failures, err)); serr != nil {
			return Status{}, serr
		}
	}
}

// watchOnce runs one SSE subscription. It bumps *seen past every
// generation event it observes and invokes fn only for events beyond
// the initial *seen — the resume-from-counter contract reconnects rely
// on. Returns the terminal status if a done event arrived, nil on a
// dropped stream.
func (c *Client) watchOnce(ctx context.Context, id string, fn func(hwsim.Record) error, seen *int) (*Status, error) {
	resp, err := c.do(ctx, http.MethodGet, "/jobs/"+id+"/events", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}

	var event string
	var data bytes.Buffer
	events := 0
	sc := bufio.NewScanner(resp.Body)
	// Start small — SSE event lines are a few hundred bytes — and let
	// the scanner grow toward the 1 MiB cap only if a line demands it.
	// A pre-sized 1 MiB buffer here costs a zeroed large alloc per
	// watched job, which at load-test rates turns into GC pressure that
	// throttles the very workers the watch is timing.
	sc.Buffer(make([]byte, 4096), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimSpace(strings.TrimPrefix(line, "data:")))
		case line == "":
			// Dispatch boundary.
			switch event {
			case "generation":
				events++
				if events > *seen {
					*seen = events
					if fn != nil {
						var rec hwsim.Record
						if err := json.Unmarshal(data.Bytes(), &rec); err != nil {
							return nil, &watchAbort{fmt.Errorf("bad generation event: %w", err)}
						}
						if err := fn(rec); err != nil {
							return nil, &watchAbort{err}
						}
					}
				}
			case "done":
				var st Status
				if err := json.Unmarshal(data.Bytes(), &st); err != nil {
					return nil, &watchAbort{fmt.Errorf("bad done event: %w", err)}
				}
				return &st, nil
			}
			event = ""
			data.Reset()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, &watchDropped{err}
	}
	return nil, nil
}

// LoadSpec configures one load-generator sweep.
type LoadSpec struct {
	// Template is the job all submissions derive from.
	Template Spec
	// Jobs is the number of submissions.
	Jobs int
	// Concurrency caps in-flight submissions (0 means Jobs).
	Concurrency int
	// DistinctSeeds offsets each submission's seed by its index, so
	// every job is a unique evolution; false submits identical specs,
	// exercising the shared run cache.
	DistinctSeeds bool
	// Watch makes every admitted submission follow its SSE stream to
	// completion (counting records); false fire-and-forgets.
	Watch bool
}

// LoadReport aggregates one load-generator sweep.
type LoadReport struct {
	Submitted  int           `json:"submitted"`
	Admitted   int           `json:"admitted"`
	Shed       int           `json:"shed"`
	Rejected   int           `json:"rejected"`
	Completed  int           `json:"completed"`
	Failed     int           `json:"failed"`
	Cancelled  int           `json:"cancelled"`
	Records    int           `json:"records"`
	Elapsed    time.Duration `json:"elapsed_ns"`
	JobsPerSec float64       `json:"jobs_per_sec"`
}

// Load drives the load-generator sweep: Jobs submissions at the
// configured concurrency, watching the admitted ones to completion
// when asked. Shed (429) submissions are counted, not retried — the
// point of the shedding policy is that the client learns immediately.
func (c *Client) Load(ctx context.Context, spec LoadSpec) (LoadReport, error) {
	if spec.Jobs <= 0 {
		spec.Jobs = 1
	}
	conc := spec.Concurrency
	if conc <= 0 || conc > spec.Jobs {
		conc = spec.Jobs
	}
	var (
		rep     LoadReport
		mu      sync.Mutex
		records atomic.Int64
		wg      sync.WaitGroup
		sem     = make(chan struct{}, conc)
	)
	start := time.Now()
	for i := 0; i < spec.Jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			job := spec.Template
			if spec.DistinctSeeds {
				job.Seed = job.Seed + uint64(i)
			}
			st, err := c.Submit(ctx, job)
			mu.Lock()
			rep.Submitted++
			mu.Unlock()
			if err != nil {
				mu.Lock()
				if _, ok := err.(*ShedError); ok {
					rep.Shed++
				} else {
					rep.Rejected++
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			rep.Admitted++
			mu.Unlock()
			if !spec.Watch {
				return
			}
			final, err := c.Watch(ctx, st.ID, func(hwsim.Record) error {
				records.Add(1)
				return nil
			})
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rep.Failed++
				return
			}
			switch final.State {
			case StateDone:
				rep.Completed++
			case StateCancelled:
				rep.Cancelled++
			default:
				rep.Failed++
			}
		}(i)
	}
	wg.Wait()
	rep.Records = int(records.Load())
	rep.Elapsed = time.Since(start)
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.JobsPerSec = float64(rep.Completed) / secs
	}
	return rep, nil
}
