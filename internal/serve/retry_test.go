package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hw/hwsim"
)

// Seeds 9700s: client retry/ETag. See the seed-range note in
// server_test.go.
const seedRetry = 9700

// instantRetry is a retry policy whose sleeps are recorded instead of
// slept and whose jitter draw is pinned to the midpoint (factor 1.0),
// so tests assert exact delays without wall-clock time.
func instantRetry(attempts int, slept *[]time.Duration) RetryPolicy {
	return RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   10 * time.Millisecond,
		rand:        func() float64 { return 0.5 },
		sleep: func(_ context.Context, d time.Duration) error {
			*slept = append(*slept, d)
			return nil
		},
	}
}

// TestRetryDelayJitterBounds pins the jitter envelope: for every
// attempt and any jitter draw, the delay stays within ±Jitter of the
// capped exponential schedule — never shorter than the low bound
// (which would stampede a recovering server) and never longer than
// the high bound (which would stall failover).
func TestRetryDelayJitterBounds(t *testing.T) {
	const base, cap = 100 * time.Millisecond, 800 * time.Millisecond
	for _, draw := range []float64{0, 0.25, 0.5, 0.75, 1} {
		pol := RetryPolicy{
			BaseDelay: base, MaxDelay: cap, Jitter: 0.2,
			rand: func() float64 { return draw },
		}.withDefaults()
		for attempt := 1; attempt <= 6; attempt++ {
			exp := base
			for i := 1; i < attempt && exp < cap; i++ {
				exp *= 2
			}
			if exp > cap {
				exp = cap
			}
			d := pol.delay(attempt, nil)
			lo := time.Duration(float64(exp) * 0.8)
			hi := time.Duration(float64(exp) * 1.2)
			if d < lo || d > hi {
				t.Fatalf("attempt %d draw %.2f: delay %v outside [%v, %v]", attempt, draw, d, lo, hi)
			}
		}
	}
	// A server's Retry-After hint floors the schedule even at the
	// lowest jitter draw.
	pol := RetryPolicy{BaseDelay: base, MaxDelay: cap, Jitter: 0.2, rand: func() float64 { return 0 }}.withDefaults()
	if d := pol.delay(1, &ShedError{RetryAfter: 2}); d != 2*time.Second {
		t.Fatalf("Retry-After floor: delay %v, want 2s", d)
	}
}

// TestSubmitRetriesShed: a submission shed twice with 429 + Retry-After
// succeeds on the third attempt, and every backoff honors the server's
// Retry-After floor even when the exponential schedule is shorter.
func TestSubmitRetriesShed(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorBody{Error: "queue full", RetryAfter: 1})
			return
		}
		writeJSON(w, http.StatusAccepted, Status{ID: "job-1", State: StateQueued})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{Base: srv.URL, Retry: instantRetry(4, &slept)}
	st, err := c.Submit(context.Background(), Spec{Workload: "cartpole", Seed: seedRetry})
	if err != nil {
		t.Fatalf("submit with retries: %v", err)
	}
	if st.ID != "job-1" {
		t.Fatalf("got %+v", st)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2: %v", len(slept), slept)
	}
	for i, d := range slept {
		if d != time.Second {
			t.Fatalf("backoff %d = %s, want the 1s Retry-After floor (base is 10ms)", i, d)
		}
	}
}

// TestRetryTransportError: a connection-refused transport error is
// retried up to the budget, then surfaced.
func TestRetryTransportError(t *testing.T) {
	// An address that refuses connections: bind-and-close.
	srv := httptest.NewServer(http.NotFoundHandler())
	dead := srv.URL
	srv.Close()

	var slept []time.Duration
	c := &Client{Base: dead, Retry: instantRetry(3, &slept)}
	_, err := c.Submit(context.Background(), Spec{Workload: "cartpole", Seed: seedRetry + 1})
	if err == nil {
		t.Fatal("submit against a dead server succeeded")
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (3 attempts): %v", len(slept), slept)
	}
	// Pure exponential here — no Retry-After floor: 10ms then 20ms.
	if slept[0] != 10*time.Millisecond || slept[1] != 20*time.Millisecond {
		t.Fatalf("backoff schedule %v, want [10ms 20ms]", slept)
	}
}

// TestNoRetryOnClientError: 4xx semantics (other than 429) mean the
// request itself is wrong — retrying would just repeat it.
func TestNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "unknown workload"})
	}))
	defer srv.Close()

	var slept []time.Duration
	c := &Client{Base: srv.URL, Retry: instantRetry(5, &slept)}
	if _, err := c.Submit(context.Background(), Spec{Workload: "nope"}); err == nil {
		t.Fatal("bad request succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", got)
	}
	if len(slept) != 0 {
		t.Fatalf("slept %v for a non-retryable error", slept)
	}
}

// sseRecord writes one generation event.
func sseRecord(t *testing.T, w http.ResponseWriter, gen int) {
	t.Helper()
	data, err := json.Marshal(hwsim.Record{Workload: "fake", Generation: gen})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(w, "event: generation\ndata: %s\n\n", data)
}

// TestWatchReconnectResumes: the first subscription dies mid-stream
// after three generations; the reconnected subscription replays the
// full history plus the rest and the done event. The callback must see
// every generation exactly once across the drop, and Watch must return
// the terminal status.
func TestWatchReconnectResumes(t *testing.T) {
	total := 5
	var conns atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/job-1/events", func(w http.ResponseWriter, r *http.Request) {
		conn := conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		flusher := w.(http.Flusher)
		if conn == 1 {
			// Three generations, then the connection dies abruptly —
			// the daemon was killed mid-stream.
			for g := 0; g < 3; g++ {
				sseRecord(t, w, g)
			}
			flusher.Flush()
			panic(http.ErrAbortHandler)
		}
		// The restarted daemon replays the full history, then finishes.
		for g := 0; g < total; g++ {
			sseRecord(t, w, g)
		}
		data, _ := json.Marshal(Status{ID: "job-1", State: StateDone, Solved: true, Generations: total})
		fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
		flusher.Flush()
	})
	mux.HandleFunc("GET /jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Status{ID: "job-1", State: StateRunning})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	var slept []time.Duration
	c := &Client{Base: srv.URL, Retry: instantRetry(4, &slept)}
	var got []int
	final, err := c.Watch(context.Background(), "job-1", func(r hwsim.Record) error {
		got = append(got, r.Generation)
		return nil
	})
	if err != nil {
		t.Fatalf("watch across a dropped stream: %v", err)
	}
	if final.State != StateDone || !final.Solved {
		t.Fatalf("final %+v, want done solved", final)
	}
	if conns.Load() != 2 {
		t.Fatalf("server saw %d subscriptions, want 2", conns.Load())
	}
	if len(got) != total {
		t.Fatalf("callback saw generations %v, want each of 0..%d exactly once", got, total-1)
	}
	for i, g := range got {
		if g != i {
			t.Fatalf("callback saw generations %v: duplicates or gaps across the reconnect", got)
		}
	}
}

// TestWatchNoRetryWithoutPolicy: the zero-value policy keeps old
// single-shot semantics — a dropped stream on a non-terminal job is an
// error, not a silent hang.
func TestWatchNoRetryWithoutPolicy(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /jobs/job-1/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		sseRecord(t, w, 0)
		w.(http.Flusher).Flush()
		panic(http.ErrAbortHandler)
	})
	mux.HandleFunc("GET /jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Status{ID: "job-1", State: StateRunning})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := &Client{Base: srv.URL}
	if _, err := c.Watch(context.Background(), "job-1", nil); err == nil {
		t.Fatal("dropped stream with no retry policy returned no error")
	}
}

// TestTerminalJobETag: a finished job's status is served with a strong
// ETag, and revalidating with If-None-Match costs a 304 with no body.
func TestTerminalJobETag(t *testing.T) {
	_, c, _ := startDaemon(t, Config{MaxRunning: 1, MaxQueue: 4})
	ctx := context.Background()
	st, err := c.Submit(ctx, Spec{Workload: "cartpole", Population: 20, Generations: 2, Seed: seedRetry + 60})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}

	url := c.Base + "/jobs/" + st.ID
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if resp.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("terminal GET: status %d etag %q, want 200 with an ETag", resp.StatusCode, etag)
	}

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation with the ETag: status %d, want 304", resp2.StatusCode)
	}
}
