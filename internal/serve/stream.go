package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/hw/hwsim"
)

// subBuffer is the per-subscriber channel depth. A generation record
// is a few hundred bytes and job budgets are a few hundred
// generations, so a buffer this size absorbs any realistic burst; a
// subscriber that still falls behind loses records (counted) rather
// than stalling the evolution loop.
const subBuffer = 256

// stream is one job's record history plus its live subscribers — the
// adapter that turns the pull-free hwsim.Sink contract ("records are
// pushed at you") into the replay-then-follow contract SSE clients
// need ("give me everything so far, then keep going"). It implements
// hwsim.Sink, so it plugs directly into evolve.Runner.Sink.
//
// Subscribe and Record are serialized by one mutex, which is what
// makes the replay seam exact: a subscriber atomically receives the
// full history and a channel that sees every later record, with no
// record lost or duplicated across the boundary.
type stream struct {
	mu      sync.Mutex
	recs    []hwsim.Record
	subs    map[int]chan hwsim.Record
	nextSub int
	closed  bool

	dropped atomic.Int64
}

func newStream() *stream {
	return &stream{subs: map[int]chan hwsim.Record{}}
}

// Record appends to the history and fans out to every live
// subscriber. It never blocks: a full subscriber channel drops the
// record for that subscriber only (the history still has it).
func (s *stream) Record(r hwsim.Record) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.recs = append(s.recs, r)
	for _, ch := range s.subs {
		select {
		case ch <- r:
		default:
			s.dropped.Add(1)
		}
	}
	s.mu.Unlock()
}

// Subscribe returns the history so far and a channel carrying every
// subsequent record; the channel is closed when the stream closes.
// The returned cancel func detaches the subscriber (idempotent,
// safe after close).
func (s *stream) Subscribe() (history []hwsim.Record, ch <-chan hwsim.Record, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	history = append([]hwsim.Record(nil), s.recs...)
	c := make(chan hwsim.Record, subBuffer)
	if s.closed {
		close(c)
		return history, c, func() {}
	}
	id := s.nextSub
	s.nextSub++
	s.subs[id] = c
	return history, c, func() {
		s.mu.Lock()
		if sub, ok := s.subs[id]; ok {
			delete(s.subs, id)
			close(sub)
		}
		s.mu.Unlock()
	}
}

// Records returns a copy of the history so far.
func (s *stream) Records() []hwsim.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]hwsim.Record(nil), s.recs...)
}

// Len returns the number of records in the history.
func (s *stream) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Close ends the stream: every subscriber channel is closed and later
// Record calls are ignored. Idempotent.
func (s *stream) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		for id, ch := range s.subs {
			delete(s.subs, id)
			close(ch)
		}
	}
	s.mu.Unlock()
}

// Dropped reports how many records were dropped on full subscriber
// channels.
func (s *stream) Dropped() int64 { return s.dropped.Load() }

// Subscribers reports the live subscriber count.
func (s *stream) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}
