package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/evolve"
	"repro/internal/experiments"
	"repro/internal/hw/hwsim"
)

// Seeds 9800s: cluster mode. See the seed-range note in server_test.go.
const seedCluster = 9800

// fleetWorker is one in-process worker daemon: its own scheduler, its
// own listener, the island session protocol mounted — everything a
// separate worker process would run, killable mid-job.
type fleetWorker struct {
	sched *Scheduler
	srv   *http.Server
	addr  string // http:// base URL
	id    string
}

func startFleetWorker(t *testing.T, ckptDir string) *fleetWorker {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := "http://" + ln.Addr().String()
	w := &fleetWorker{addr: addr, id: cluster.MemberID(addr)}
	w.sched = NewScheduler(Config{
		MaxRunning:      2,
		CheckpointDir:   ckptDir,
		CheckpointEvery: 1,
		WorkerID:        w.id,
	})
	server := NewServer(w.sched)
	server.EnableWorker(cluster.NewWorkerAPI())
	w.srv = &http.Server{Handler: server}
	go w.srv.Serve(ln)
	t.Cleanup(func() {
		w.sched.Drain(2 * time.Second)
		w.srv.Close()
	})
	return w
}

// kill simulates the worker process dying: the scheduler cancels its
// running jobs (which checkpoint at a generation boundary, like a
// drain would) and the HTTP surface goes away, so the coordinator's
// stream drops and its health checks fail.
func (w *fleetWorker) kill(t *testing.T) {
	t.Helper()
	done := make(chan struct{})
	go func() { w.sched.Drain(0); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("worker drain wedged")
	}
	w.srv.Close()
}

// startCoordinator runs a coordinator daemon whose executor is the
// fleet dispatcher over the given workers.
func startCoordinator(t *testing.T, workers ...*fleetWorker) (*Membership, *Dispatcher, *Client, *http.Server, net.Listener) {
	t.Helper()
	members := cluster.NewMembership(cluster.MembershipConfig{})
	for _, w := range workers {
		members.Join(w.addr)
	}
	disp := &Dispatcher{Members: members}
	sched := NewScheduler(Config{MaxRunning: 2, Executor: disp})
	server := NewServer(sched)
	server.EnableCluster(members)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: server}
	go srv.Serve(ln)
	c := &Client{Base: "http://" + ln.Addr().String(), Name: "test"}
	t.Cleanup(func() {
		sched.Drain(2 * time.Second)
		srv.Close()
	})
	return members, disp, c, srv, ln
}

// Membership aliases the cluster type for the test helper signature.
type Membership = cluster.Membership

// clusterMembership builds a registry with every worker joined — the
// benchmark's non-health-checked fleet.
func clusterMembership(workers []*fleetWorker) *cluster.Membership {
	members := cluster.NewMembership(cluster.MembershipConfig{})
	for _, w := range workers {
		members.Join(w.addr)
	}
	return members
}

// TestClusterFailoverResumes is the fleet acceptance test: a job
// dispatched to a 2-worker fleet survives its worker dying mid-run —
// the coordinator re-dispatches to the survivor, which resumes from
// the dead worker's orphaned checkpoint, and the client's stream stays
// exactly-once throughout.
func TestClusterFailoverResumes(t *testing.T) {
	ckptDir := t.TempDir()
	w1 := startFleetWorker(t, ckptDir)
	w2 := startFleetWorker(t, ckptDir)
	_, disp, c, _, _ := startCoordinator(t, w1, w2)
	ctx := context.Background()

	spec := slowSpec(seedCluster+1, 40)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Follow the coordinator's stream, recording every generation.
	var mu sync.Mutex
	var gens []int
	watchDone := make(chan Status, 1)
	go func() {
		final, werr := (&Client{Base: c.Base, Name: "watcher", Retry: RetryPolicy{MaxAttempts: 8}}).
			Watch(ctx, st.ID, func(r hwsim.Record) error {
				mu.Lock()
				gens = append(gens, r.Generation)
				mu.Unlock()
				return nil
			})
		if werr != nil {
			t.Error(werr)
		}
		watchDone <- final
	}()

	// Find the worker the ring dispatched to.
	var victim, survivor *fleetWorker
	deadline := time.Now().Add(20 * time.Second)
	for victim == nil {
		if time.Now().After(deadline) {
			t.Fatal("no worker picked the job up")
		}
		for _, w := range []*fleetWorker{w1, w2} {
			for _, j := range w.sched.Jobs() {
				if j.State() == StateRunning {
					victim = w
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if victim == w1 {
		survivor = w2
	} else {
		survivor = w1
	}

	// Wait for the victim to have a rename-committed checkpoint on disk
	// (a ".ckpt.tmp" still staging would be torn by the kill), then
	// kill it.
	key := spec.withDefaults().key()
	waitFor(t, 20*time.Second, "victim checkpoint", func() bool {
		ents, _ := os.ReadDir(ckptDir)
		for _, e := range ents {
			if strings.HasPrefix(e.Name(), key+"~"+victim.id) && strings.HasSuffix(e.Name(), ".ckpt") {
				return true
			}
		}
		return false
	})
	victim.kill(t)

	select {
	case final := <-watchDone:
		if final.State != StateDone {
			t.Fatalf("job finished %s (%s), want done", final.State, final.Error)
		}
		if !final.Resumed {
			t.Fatal("failover completion did not resume from the orphaned checkpoint")
		}
	case <-time.After(120 * time.Second):
		t.Fatal("job did not finish after failover")
	}

	// Exactly-once: generations strictly increase across the failover
	// (the survivor's history replay was deduplicated).
	mu.Lock()
	defer mu.Unlock()
	if len(gens) == 0 {
		t.Fatal("no records streamed")
	}
	for i := 1; i < len(gens); i++ {
		if gens[i] <= gens[i-1] {
			t.Fatalf("stream not exactly-once: gen %d after %d (all: %v)", gens[i], gens[i-1], gens)
		}
	}

	if got := disp.Counters().Snapshot().Int("redispatched"); got < 1 {
		t.Fatalf("redispatched = %d, want >= 1", got)
	}
	// The survivor ran the job to completion.
	found := false
	for _, j := range survivor.sched.Jobs() {
		if j.State() == StateDone {
			found = true
		}
	}
	if !found {
		t.Fatal("survivor has no completed job")
	}
	// Completion reclaimed both checkpoint files (the survivor's own
	// and the orphan it resumed from).
	ents, _ := os.ReadDir(ckptDir)
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), key) {
			t.Fatalf("checkpoint %s not reclaimed after completion", e.Name())
		}
	}
}

// TestClusterIslandDifferential pins the tentpole determinism claim:
// an island job computed by a 2-worker fleet is byte-identical to the
// single-process reference of the same tuple.
func TestClusterIslandDifferential(t *testing.T) {
	experiments.ResetCaches()
	t.Cleanup(experiments.ResetCaches)

	spec := Spec{
		Workload: "cartpole", Population: 32, Generations: 8,
		Seed: seedCluster + 2, Islands: 2, MigrationEvery: 3,
	}
	ref, err := evolve.RunIslands(context.Background(), evolve.IslandSpec{
		Workload: spec.Workload, Population: spec.Population, Generations: spec.Generations,
		Islands: spec.Islands, MigrationEvery: spec.MigrationEvery, Seed: spec.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}

	w1 := startFleetWorker(t, t.TempDir())
	w2 := startFleetWorker(t, t.TempDir())
	_, disp, c, _, _ := startCoordinator(t, w1, w2)
	ctx := context.Background()

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitStatus(t, c, st.ID, 120*time.Second, func(s Status) bool { return s.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("island job finished %s: %s", final.State, final.Error)
	}
	if got := disp.Counters().Snapshot().Int("island_distributed"); got != 1 {
		t.Fatalf("island_distributed = %d, want 1 (the fleet executed it)", got)
	}

	run, _, ok := experiments.PeekSharedIsland(spec.Workload, spec.Population, spec.Generations, spec.Islands, spec.MigrationEvery, spec.Seed)
	if !ok {
		t.Fatal("island run not in the coordinator's cache")
	}
	jref, _ := json.Marshal(ref)
	jgot, _ := json.Marshal(run)
	if string(jref) != string(jgot) {
		t.Fatal("fleet island run is not byte-identical to the single-process reference")
	}
	if final.Generations == 0 || !strings.Contains(final.Spec.Workload, "cartpole") {
		t.Fatalf("suspicious final status: %+v", final)
	}
}

// TestClusterStoreHitProxy: a key the coordinator already holds is
// answered locally — replayed to the client with no fleet dispatch.
func TestClusterStoreHitProxy(t *testing.T) {
	w1 := startFleetWorker(t, t.TempDir())
	_, disp, c, _, _ := startCoordinator(t, w1)
	ctx := context.Background()

	spec := Spec{Workload: "cartpole", Population: 16, Generations: 2, Seed: seedCluster + 3}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	first := waitStatus(t, c, st.ID, 60*time.Second, func(s Status) bool { return s.State.Terminal() })
	if first.State != StateDone {
		t.Fatalf("first job: %s (%s)", first.State, first.Error)
	}
	if got := disp.Counters().Snapshot().Int("dispatched"); got != 1 {
		t.Fatalf("dispatched = %d, want 1", got)
	}

	// Same tuple again: the worker computed it in this process, so the
	// coordinator's run-cache peek answers without dispatching.
	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second := waitStatus(t, c, st2.ID, 60*time.Second, func(s Status) bool { return s.State.Terminal() })
	if second.State != StateDone || !second.Shared {
		t.Fatalf("second job: state=%s shared=%v", second.State, second.Shared)
	}
	snap := disp.Counters().Snapshot()
	if got := snap.Int("dispatched"); got != 1 {
		t.Fatalf("dispatched = %d after proxy hit, want still 1", got)
	}
	if got := snap.Int("proxied_store_hits"); got < 1 {
		t.Fatalf("proxied_store_hits = %d, want >= 1", got)
	}
	if second.Generations != first.Generations {
		t.Fatalf("proxied replay streamed %d generations, original %d", second.Generations, first.Generations)
	}
}

// TestWatchReconnectAcrossCoordinatorRestart: a client watch survives
// the coordinator's HTTP frontend dying mid-stream — it reconnects to
// the restarted listener and still sees every generation exactly once.
func TestWatchReconnectAcrossCoordinatorRestart(t *testing.T) {
	w1 := startFleetWorker(t, t.TempDir())
	_, _, c, srv, ln := startCoordinator(t, w1)
	ctx := context.Background()

	spec := slowSpec(seedCluster+4, 25)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var gens []int
	watcher := &Client{Base: c.Base, Name: "watcher", Retry: RetryPolicy{MaxAttempts: 10, BaseDelay: 20 * time.Millisecond}}
	watchDone := make(chan Status, 1)
	watchErr := make(chan error, 1)
	go func() {
		final, werr := watcher.Watch(ctx, st.ID, func(r hwsim.Record) error {
			mu.Lock()
			gens = append(gens, r.Generation)
			mu.Unlock()
			return nil
		})
		if werr != nil {
			watchErr <- werr
			return
		}
		watchDone <- final
	}()

	// Let some records flow, then kill the coordinator's HTTP frontend
	// (scheduler and dispatcher keep running — this is a frontend
	// failover, the server-side half of the reconnect contract).
	waitFor(t, 30*time.Second, "records before restart", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(gens) >= 3
	})
	addr := ln.Addr().String()
	srv.Close()
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	srv2 := &http.Server{Handler: srv.Handler}
	go srv2.Serve(ln2)
	t.Cleanup(func() { srv2.Close() })

	select {
	case final := <-watchDone:
		if final.State != StateDone {
			t.Fatalf("job finished %s (%s)", final.State, final.Error)
		}
		mu.Lock()
		defer mu.Unlock()
		for i := 1; i < len(gens); i++ {
			if gens[i] <= gens[i-1] {
				t.Fatalf("duplicate or reordered record after reconnect: gen %d after %d", gens[i], gens[i-1])
			}
		}
		if len(gens) != final.Generations {
			t.Fatalf("streamed %d records, job ran %d generations", len(gens), final.Generations)
		}
	case werr := <-watchErr:
		t.Fatalf("watch failed: %v", werr)
	case <-time.After(120 * time.Second):
		t.Fatal("watch did not finish after coordinator restart")
	}
}

// TestClusterRouteSurface smoke-tests the /cluster admin routes.
func TestClusterRouteSurface(t *testing.T) {
	w1 := startFleetWorker(t, t.TempDir())
	members, _, c, _, _ := startCoordinator(t, w1)
	ctx := context.Background()

	st, err := c.Cluster(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Members) != 1 || !st.Members[0].Alive || st.RingPoints != cluster.DefaultVnodes {
		t.Fatalf("cluster status: %+v", st)
	}
	mem, err := c.ClusterJoin(ctx, "http://127.0.0.1:59999")
	if err != nil {
		t.Fatal(err)
	}
	if mem.ID != cluster.MemberID("http://127.0.0.1:59999") {
		t.Fatalf("join returned id %s", mem.ID)
	}
	if live := members.Live(); len(live) != 2 {
		t.Fatalf("live = %v after join", live)
	}
}

// waitFor polls cond until true or the deadline fails the test.
func waitFor(t *testing.T, deadline time.Duration, what string, cond func() bool) {
	t.Helper()
	for start := time.Now(); time.Since(start) < deadline; {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
