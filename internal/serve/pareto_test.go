package serve

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/hw/hwsim"
)

// Seeds 9900s: Pareto jobs and rebalancing. See the seed-range note in
// server_test.go.
const seedPareto = 9900

func paretoSpec(seed uint64) Spec {
	return Spec{
		Workload: "cartpole", Population: 16, Generations: 3,
		Seed: seed, Objectives: "fitness+genes+energy",
	}
}

// collectStream watches a job to completion and returns its terminal
// status plus the full record stream rendered as JSON lines.
func collectStream(t *testing.T, c *Client, id string) (Status, []string) {
	t.Helper()
	var lines []string
	final, err := c.Watch(context.Background(), id, func(r hwsim.Record) error {
		b, jerr := json.Marshal(r)
		if jerr != nil {
			return jerr
		}
		lines = append(lines, string(b))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return final, lines
}

// TestParetoJobStreamAndReplay is the serve-layer acceptance test for
// the pareto job type: a submitted Pareto job finishes done, its SSE
// stream carries the per-generation history followed by the front
// records (monotonic generation numbers throughout), and an identical
// resubmission replays from the run cache with a byte-identical
// stream.
func TestParetoJobStreamAndReplay(t *testing.T) {
	experiments.ResetCaches()
	t.Cleanup(experiments.ResetCaches)
	_, c, _ := startDaemon(t, Config{MaxRunning: 2})
	ctx := context.Background()

	spec := paretoSpec(seedPareto + 1)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	first, live := collectStream(t, c, st.ID)
	if first.State != StateDone {
		t.Fatalf("pareto job finished %s: %s", first.State, first.Error)
	}
	if first.Shared {
		t.Fatal("first pareto job claims a cache hit")
	}
	fronts := 0
	for _, ln := range live {
		if strings.Contains(ln, "cartpole#front") {
			fronts++
		}
	}
	if fronts == 0 {
		t.Fatalf("stream carries no front records:\n%s", strings.Join(live, "\n"))
	}
	// History first, fronts after, generations strictly increasing
	// across the boundary (the dedup invariant failover relies on).
	var recs []hwsim.Record
	for _, ln := range live {
		var r hwsim.Record
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Generation <= recs[i-1].Generation {
			t.Fatalf("generation %d after %d at record %d", recs[i].Generation, recs[i-1].Generation, i)
		}
		if strings.HasSuffix(recs[i-1].Workload, "#front") && !strings.HasSuffix(recs[i].Workload, "#front") {
			t.Fatal("history record after a front record")
		}
	}

	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, replay := collectStream(t, c, st2.ID)
	if second.State != StateDone || !second.Shared {
		t.Fatalf("replay job: state=%s shared=%v", second.State, second.Shared)
	}
	if len(replay) != len(live) {
		t.Fatalf("replay streamed %d records, live %d", len(replay), len(live))
	}
	for i := range live {
		if live[i] != replay[i] {
			t.Fatalf("record %d differs between live and replay:\n%s\n%s", i, live[i], replay[i])
		}
	}
}

// TestParetoSpecValidation: the HTTP surface rejects contradictory or
// unresolvable Pareto specs at submit time.
func TestParetoSpecValidation(t *testing.T) {
	_, c, _ := startDaemon(t, Config{MaxRunning: 1})
	ctx := context.Background()

	bad := paretoSpec(seedPareto + 10)
	bad.Islands = 2
	if _, err := c.Submit(ctx, bad); err == nil {
		t.Fatal("islands+objectives spec accepted")
	}
	bad = paretoSpec(seedPareto + 11)
	bad.Objectives = "fitness+unobtainium"
	if _, err := c.Submit(ctx, bad); err == nil {
		t.Fatal("unknown objective accepted")
	}
	bad = paretoSpec(seedPareto + 12)
	bad.Objectives = "fitness"
	if _, err := c.Submit(ctx, bad); err == nil {
		t.Fatal("single-objective vector accepted")
	}
}

// TestClusterParetoDispatch: a coordinator routes a Pareto job to its
// ring owner like any other job, front records flow back through the
// dedup proxy, and a resubmission is answered from the coordinator's
// own cache without touching the fleet.
func TestClusterParetoDispatch(t *testing.T) {
	experiments.ResetCaches()
	t.Cleanup(experiments.ResetCaches)
	w1 := startFleetWorker(t, t.TempDir())
	_, disp, c, _, _ := startCoordinator(t, w1)
	ctx := context.Background()

	spec := paretoSpec(seedPareto + 20)
	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	first, stream := collectStream(t, c, st.ID)
	if first.State != StateDone {
		t.Fatalf("pareto job finished %s: %s", first.State, first.Error)
	}
	if got := disp.Counters().Snapshot().Int("dispatched"); got != 1 {
		t.Fatalf("dispatched = %d, want 1", got)
	}
	fronts := 0
	for _, ln := range stream {
		if strings.Contains(ln, "#front") {
			fronts++
		}
	}
	if fronts == 0 {
		t.Fatal("coordinator stream carries no front records")
	}

	st2, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	second, replay := collectStream(t, c, st2.ID)
	if second.State != StateDone || !second.Shared {
		t.Fatalf("second job: state=%s shared=%v", second.State, second.Shared)
	}
	snap := disp.Counters().Snapshot()
	if got := snap.Int("dispatched"); got != 1 {
		t.Fatalf("dispatched = %d after proxy hit, want still 1", got)
	}
	if got := snap.Int("proxied_store_hits"); got < 1 {
		t.Fatalf("proxied_store_hits = %d, want >= 1", got)
	}
	if len(replay) != len(stream) {
		t.Fatalf("proxied replay streamed %d records, original %d", len(replay), len(stream))
	}
	for i := range stream {
		if stream[i] != replay[i] {
			t.Fatalf("record %d differs between dispatch and proxy replay", i)
		}
	}
}

// findChild walks a counter report tree for a child by name.
func findChild(r hwsim.Report, name string) (hwsim.Report, bool) {
	if r.Name == name {
		return r, true
	}
	for _, ch := range r.Children {
		if found, ok := findChild(ch, name); ok {
			return found, true
		}
	}
	return hwsim.Report{}, false
}

// TestClusterParetoLocalFallbackPhases: with no live workers the
// coordinator computes the Pareto job in-process — and its /metrics
// tree carries the per-phase wall-clock counters, the accounting the
// Dispatcher path previously lacked.
func TestClusterParetoLocalFallbackPhases(t *testing.T) {
	experiments.ResetCaches()
	t.Cleanup(experiments.ResetCaches)
	members := cluster.NewMembership(cluster.MembershipConfig{})
	disp := &Dispatcher{Members: members}
	sched := NewScheduler(Config{MaxRunning: 1, Executor: disp})
	t.Cleanup(func() { sched.Drain(2 * time.Second) })

	j, err := sched.Submit(paretoSpec(seedPareto + 30))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatal("local-fallback pareto job did not finish")
	}
	if j.State() != StateDone {
		t.Fatalf("job finished %s", j.State())
	}
	if got := disp.Counters().Snapshot().Int("pareto_local"); got != 1 {
		t.Fatalf("pareto_local = %d, want 1", got)
	}
	phases, ok := findChild(sched.Counters().Snapshot(), "phases")
	if !ok {
		t.Fatal("coordinator /metrics tree has no phases node")
	}
	for _, name := range []string{"generations", "evaluate_ns", "speciate_ns", "reproduce_ns"} {
		if phases.Ints[name] <= 0 {
			t.Fatalf("phase counter %s = %d, want > 0 (%+v)", name, phases.Ints[name], phases.Ints)
		}
	}
}

// TestRebalanceQueuedJobOnJoin is the satellite acceptance test: a job
// queued behind a busy worker is re-routed when a new worker joins and
// the consistent-hash ring says the key now belongs to it. The old
// worker stays alive and unblamed; the new worker runs the job.
func TestRebalanceQueuedJobOnJoin(t *testing.T) {
	experiments.ResetCaches()
	t.Cleanup(experiments.ResetCaches)
	w1 := startFleetWorker(t, t.TempDir())
	w2 := startFleetWorker(t, t.TempDir())

	// Coordinator with the membership-change hook wired the way
	// genesysd wires it: any join/death/revival triggers a rebalance
	// pass. Only w1 joins up front.
	disp := &Dispatcher{}
	members := cluster.NewMembership(cluster.MembershipConfig{OnChange: disp.Rebalance})
	disp.Members = members
	members.Join(w1.addr)
	sched := NewScheduler(Config{MaxRunning: 4, Executor: disp})
	server := NewServer(sched)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: server}
	go srv.Serve(ln)
	c := &Client{Base: "http://" + ln.Addr().String(), Name: "test"}
	t.Cleanup(func() {
		sched.Drain(2 * time.Second)
		srv.Close()
	})
	ctx := context.Background()

	// Occupy both of w1's slots with slow jobs so the target queues.
	b1, err := c.Submit(ctx, slowSpec(seedPareto+40, 1000))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := c.Submit(ctx, slowSpec(seedPareto+41, 1000))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 30*time.Second, "blockers running on w1", func() bool {
		running := 0
		for _, j := range w1.sched.Jobs() {
			if j.State() == StateRunning {
				running++
			}
		}
		return running == 2
	})

	// Pick a target whose key the ring re-assigns to w2 once it joins
	// (checked on a scratch ring with both members).
	scratch := cluster.NewMembership(cluster.MembershipConfig{})
	scratch.Join(w1.addr)
	scratch.Join(w2.addr)
	var target Spec
	found := false
	for s := uint64(seedPareto + 50); s < seedPareto+250; s++ {
		cand := Spec{Workload: "cartpole", Population: 16, Generations: 2, Seed: s}.withDefaults()
		if owner, ok := scratch.Owner(cand.key()); ok && owner.ID == w2.id {
			target, found = cand, true
			break
		}
	}
	if !found {
		t.Fatal("no candidate key maps to w2")
	}

	st, err := c.Submit(ctx, target)
	if err != nil {
		t.Fatal(err)
	}
	// The target lands on w1 (the only live worker) and queues behind
	// the blockers.
	waitFor(t, 30*time.Second, "target queued on w1", func() bool {
		for _, j := range w1.sched.Jobs() {
			if j.Spec.Seed == target.Seed && j.State() == StateQueued {
				return true
			}
		}
		return false
	})

	// The join fires OnChange → Rebalance synchronously: the queued
	// remote job is cancelled and re-dispatched to w2.
	members.Join(w2.addr)

	defer func() {
		if t.Failed() {
			snap, _ := json.Marshal(disp.Counters().Snapshot())
			t.Logf("disp counters: %s", snap)
			for _, j := range w1.sched.Jobs() {
				t.Logf("w1 job %s seed=%d state=%s err=%q", j.ID, j.Spec.Seed, j.State(), j.Status().Error)
			}
			for _, j := range w2.sched.Jobs() {
				t.Logf("w2 job %s seed=%d state=%s err=%q", j.ID, j.Spec.Seed, j.State(), j.Status().Error)
			}
			cj, _ := c.Job(ctx, st.ID)
			t.Logf("coordinator job: %+v", cj)
		}
	}()
	final := waitStatus(t, c, st.ID, 60*time.Second, func(s Status) bool { return s.State.Terminal() })
	if final.State != StateDone {
		t.Fatalf("rebalanced job finished %s: %s", final.State, final.Error)
	}
	snap := disp.Counters().Snapshot()
	if got := snap.Int("rebalanced"); got < 1 {
		t.Fatalf("rebalanced = %d, want >= 1", got)
	}
	if got := snap.Int("redispatched"); got != 0 {
		t.Fatalf("redispatched = %d, want 0 (no worker failed)", got)
	}
	if live := members.Live(); len(live) != 2 {
		t.Fatalf("live members = %d, want 2 (w1 must not be blamed)", len(live))
	}
	ranOnW2 := false
	for _, j := range w2.sched.Jobs() {
		if j.Spec.Seed == target.Seed && j.State() == StateDone {
			ranOnW2 = true
		}
	}
	if !ranOnW2 {
		t.Fatal("target did not complete on the new owner")
	}
	for _, id := range []string{b1.ID, b2.ID} {
		if _, err := c.Cancel(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
}
