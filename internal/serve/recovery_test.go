package serve

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/hw/hwsim"
	"repro/internal/store"
)

// Seeds 9600s: crash recovery. See the seed-range note in
// server_test.go.
const seedRecovery = 9600

// resetPersistence detaches the process-global store binding and wipes
// the in-memory caches after a store-backed test, so later tests see
// the same world earlier ones did.
func resetPersistence(t *testing.T) {
	t.Cleanup(func() {
		experiments.UseStore(nil)
		experiments.ResetCaches()
	})
}

// marshalRec renders a streamed record for byte-level comparison.
func marshalRec(t *testing.T, r hwsim.Record) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestCrashRecoveryReplay is the durability acceptance scenario: a
// daemon computes one fast job (committed to the store) and is killed
// with a slow job mid-flight (leaving only its checkpoint). A second
// daemon over the same store directory — with every in-memory cache
// wiped, as a real restart would — must re-enqueue the interrupted job
// from its orphaned checkpoint and finish it as a resume, and must
// replay the completed job's record stream byte-identically from disk
// without executing any evolution.
func TestCrashRecoveryReplay(t *testing.T) {
	resetPersistence(t)
	root, ckpt := t.TempDir(), t.TempDir()
	ctx := context.Background()

	stA, err := store.Open(store.Config{Root: root, CheckpointDir: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	schedA, cA, srvA := startDaemon(t, Config{
		MaxRunning: 2, MaxQueue: 8,
		CheckpointDir: ckpt, CheckpointEvery: 1,
		Store: stA,
	})

	// Life A: compute the fast job to completion; it commits to disk.
	fast := Spec{Workload: "cartpole", Population: 20, Generations: 3, Seed: seedRecovery}
	sub, err := cA.Submit(ctx, fast)
	if err != nil {
		t.Fatal(err)
	}
	var origRecs []string
	finalA, err := cA.Watch(ctx, sub.ID, func(r hwsim.Record) error {
		origRecs = append(origRecs, marshalRec(t, r))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalA.State != StateDone || finalA.Stored {
		t.Fatalf("first life: state %s stored=%v, want done stored=false", finalA.State, finalA.Stored)
	}

	// Get the slow job a couple of generations in, then "crash": drain
	// with near-zero grace checkpoints and cancels it, and the HTTP
	// server goes away. Only the disk outlives this.
	slow := slowSpec(seedRecovery+1, 8)
	subSlow, err := cA.Submit(ctx, slow)
	if err != nil {
		t.Fatal(err)
	}
	waitStatus(t, cA, subSlow.ID, 30*time.Second, func(s Status) bool { return s.Generations >= 2 })
	schedA.Drain(10 * time.Millisecond)
	srvA.Close()

	// A real restart loses every in-memory tier; simulate that.
	experiments.UseStore(nil)
	experiments.ResetCaches()

	// Life B over the same directories.
	stB, err := store.Open(store.Config{Root: root, CheckpointDir: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	schedB, cB, _ := startDaemon(t, Config{
		MaxRunning: 2, MaxQueue: 8,
		CheckpointDir: ckpt, CheckpointEvery: 1,
		Store: stB,
	})
	rep, requeued := schedB.Recover()
	if len(rep.Interrupted) != 1 || rep.Interrupted[0].String() != slow.withDefaults().key() {
		t.Fatalf("recovery found interrupted %v, want [%s]", rep.Interrupted, slow.withDefaults().key())
	}
	if rep.Verified != 1 {
		t.Fatalf("recovery verified %d artifacts, want 1 (the fast job)", rep.Verified)
	}
	if len(requeued) != 1 {
		t.Fatalf("recovery re-enqueued %d jobs, want 1", len(requeued))
	}

	// The interrupted job must finish as a checkpoint resume, not a
	// from-scratch run.
	finSlow := waitStatus(t, cB, requeued[0].ID, 60*time.Second, func(s Status) bool { return s.State.Terminal() })
	if finSlow.State != StateDone || !finSlow.Resumed {
		t.Fatalf("recovered job: state %s resumed=%v (err %q), want done resumed=true",
			finSlow.State, finSlow.Resumed, finSlow.Error)
	}

	// The completed job must replay from disk: stored, zero evolutions,
	// byte-identical record stream.
	before := experiments.EvolutionsExecuted()
	sub2, err := cB.Submit(ctx, fast)
	if err != nil {
		t.Fatal(err)
	}
	var replayRecs []string
	finalB, err := cB.Watch(ctx, sub2.ID, func(r hwsim.Record) error {
		replayRecs = append(replayRecs, marshalRec(t, r))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalB.State != StateDone || !finalB.Stored {
		t.Fatalf("replayed job: state %s stored=%v (err %q), want done stored=true",
			finalB.State, finalB.Stored, finalB.Error)
	}
	if d := experiments.EvolutionsExecuted() - before; d != 0 {
		t.Fatalf("store replay executed %d evolutions, want 0", d)
	}
	if finalB.Solved != finalA.Solved || finalB.Generations != finalA.Generations ||
		finalB.BestFitness != finalA.BestFitness {
		t.Fatalf("replayed outcome %+v differs from original %+v", finalB, finalA)
	}
	if len(replayRecs) != len(origRecs) {
		t.Fatalf("replay streamed %d records, original %d", len(replayRecs), len(origRecs))
	}
	for i := range origRecs {
		if replayRecs[i] != origRecs[i] {
			t.Fatalf("record %d differs across restart:\n  original: %s\n  replayed: %s",
				i, origRecs[i], replayRecs[i])
		}
	}
}

// TestStoreFaultDegradationNeverFailsJobs: with bit rot injected on
// every read, every store lookup and verification fails — and no job
// may notice. Corruption degrades to recompute: both submissions
// complete, the rotted artifacts land in quarantine, and the corrupt
// counter moves.
func TestStoreFaultDegradationNeverFailsJobs(t *testing.T) {
	resetPersistence(t)
	st, err := store.Open(store.Config{
		Root: t.TempDir(),
		FS:   &store.FaultFS{Inner: store.OSFS{}, Seed: 7, BitRotEvery: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, c, _ := startDaemon(t, Config{MaxRunning: 1, MaxQueue: 4, Store: st})
	ctx := context.Background()
	spec := Spec{Workload: "cartpole", Population: 24, Generations: 3, Seed: seedRecovery + 50}

	for life := 0; life < 2; life++ {
		// Between lives, wipe the memory tiers so the second submission
		// must go through the (rotting) disk store.
		if life > 0 {
			experiments.ResetCaches()
			experiments.UseStore(st)
		}
		before := experiments.EvolutionsExecuted()
		sub, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		final, err := c.Watch(ctx, sub.ID, nil)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone || final.Stored {
			t.Fatalf("life %d: state %s stored=%v (err %q), want done stored=false under total bit rot",
				life, final.State, final.Stored, final.Error)
		}
		if d := experiments.EvolutionsExecuted() - before; d != 1 {
			t.Fatalf("life %d: %d evolutions, want 1 (degrade to recompute)", life, d)
		}
	}
	if got := st.Counters().Snapshot().Int("ops/quarantined"); got < 1 {
		t.Fatalf("ops/quarantined = %d after total bit rot, want >= 1", got)
	}
	if q := st.Quarantined(); len(q) < 1 {
		t.Fatal("no quarantined artifacts after bit-rot degradation")
	}
}
