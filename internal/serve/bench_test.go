package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
)

// benchSeed hands every benchmark job a seed no other job (or test in
// this package) has used, so the process-global run cache never turns
// a measured evolution into a replay across -count repetitions.
var benchSeed atomic.Uint64

func init() { benchSeed.Store(1 << 40) }

// BenchmarkServeThroughput measures end-to-end daemon throughput in
// jobs/sec: real HTTP over loopback, SSE watch to completion, tiny
// fixed-cost CartPole evolutions. The j=1 case is the serial floor —
// one worker, jobs back to back — and j=N shows scheduler scaling
// across NumCPU workers. scripts/bench.sh feeds both into
// BENCH_PR5.json, where their ratio is the parallel-speedup headline.
func BenchmarkServeThroughput(b *testing.B) {
	// Floor the parallel case at 2 so single-core machines still
	// exercise the multi-worker path (there it measures pipelining of
	// HTTP/SSE overhead against compute rather than core scaling).
	parallel := runtime.NumCPU()
	if parallel < 2 {
		parallel = 2
	}
	for _, workers := range []int{1, parallel} {
		b.Run(fmt.Sprintf("j=%d", workers), func(b *testing.B) {
			// Every job here has a unique seed, so each one leaves an
			// entry in the process-global run cache. Start each
			// sub-benchmark with an empty cache and a fresh GC floor:
			// otherwise the heap accumulated by earlier sub-runs taxes
			// later ones and the j=1 vs j=N comparison measures cache
			// residue, not scheduling.
			experiments.ResetCaches()
			runtime.GC()
			sched := NewScheduler(Config{
				MaxRunning: workers,
				MaxQueue:   b.N + 16, // admission is not under test here
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := &http.Server{Handler: NewServer(sched)}
			go srv.Serve(ln)
			c := &Client{Base: "http://" + ln.Addr().String(), Name: "bench"}
			base := benchSeed.Add(uint64(b.N)) - uint64(b.N)

			b.ResetTimer()
			rep, err := c.Load(context.Background(), LoadSpec{
				Template:      Spec{Workload: "cartpole", Population: 16, Generations: 2, Seed: base},
				Jobs:          b.N,
				Concurrency:   workers * 4,
				DistinctSeeds: true,
				Watch:         true,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Completed != b.N {
				b.Fatalf("completed %d of %d jobs: %+v", rep.Completed, b.N, rep)
			}
			b.ReportMetric(rep.JobsPerSec, "jobs/sec")

			sched.Drain(time.Minute)
			srv.Close()
		})
	}
}

// BenchmarkClusterThroughput measures fleet scaling end to end: a
// coordinator dispatching jobs over real loopback HTTP to w in-process
// worker daemons, each capped at 2 run slots so capacity grows with
// fleet size. The w=1/w=2 ratio is the PR8 cluster-speedup headline in
// BENCH_PR8.json; on a single-core host it measures the pipelining of
// dispatch overhead against compute rather than core scaling (the
// recorded ratio carries that caveat).
func BenchmarkClusterThroughput(b *testing.B) {
	for _, nWorkers := range []int{1, 2} {
		b.Run(fmt.Sprintf("w=%d", nWorkers), func(b *testing.B) {
			experiments.ResetCaches()
			runtime.GC()
			var workers []*fleetWorker
			var cleanups []func()
			for i := 0; i < nWorkers; i++ {
				ln, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					b.Fatal(err)
				}
				addr := "http://" + ln.Addr().String()
				w := &fleetWorker{addr: addr, id: cluster.MemberID(addr)}
				w.sched = NewScheduler(Config{
					MaxRunning: 2,
					MaxQueue:   b.N + 16,
					WorkerID:   w.id,
				})
				w.srv = &http.Server{Handler: NewServer(w.sched)}
				go w.srv.Serve(ln)
				workers = append(workers, w)
				cleanups = append(cleanups, func() {
					w.sched.Drain(time.Minute)
					w.srv.Close()
				})
			}
			members := clusterMembership(workers)
			sched := NewScheduler(Config{
				MaxRunning: nWorkers * 2,
				MaxQueue:   b.N + 16,
				Executor:   &Dispatcher{Members: members},
			})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv := &http.Server{Handler: NewServer(sched)}
			go srv.Serve(ln)
			c := &Client{Base: "http://" + ln.Addr().String(), Name: "bench"}
			base := benchSeed.Add(uint64(b.N)) - uint64(b.N)

			b.ResetTimer()
			rep, err := c.Load(context.Background(), LoadSpec{
				Template:      Spec{Workload: "cartpole", Population: 16, Generations: 2, Seed: base},
				Jobs:          b.N,
				Concurrency:   nWorkers * 4,
				DistinctSeeds: true,
				Watch:         true,
			})
			b.StopTimer()
			if err != nil {
				b.Fatal(err)
			}
			if rep.Completed != b.N {
				b.Fatalf("completed %d of %d jobs: %+v", rep.Completed, b.N, rep)
			}
			b.ReportMetric(rep.JobsPerSec, "jobs/sec")

			sched.Drain(time.Minute)
			srv.Close()
			for _, f := range cleanups {
				f()
			}
		})
	}
}
