package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"repro/internal/hw/hwsim"
	"repro/internal/store"
)

// Server is the genesysd HTTP surface over one Scheduler.
//
// Routes:
//
//	POST   /jobs                 submit a job (Spec JSON) → 202 Status
//	GET    /jobs                 list jobs in submission order
//	GET    /jobs/{id}            one job's Status
//	DELETE /jobs/{id}            cancel (queued or running)
//	POST   /jobs/{id}/checkpoint checkpoint at the next generation boundary
//	GET    /jobs/{id}/events     Server-Sent Events record stream
//	GET    /metrics              the hwsim counter registry as JSON
//	GET    /healthz              liveness + drain state
//	GET    /store                persistent run-store stats
//	POST   /store/gc             run one GC pass, return its accounting
//	GET    /store/quarantine     list quarantined artifacts
//	DELETE /store/quarantine     purge the quarantine
//
// Terminal job results are immutable (a done job never changes), so
// GET /jobs/{id} carries an ETag once terminal and honors
// If-None-Match with 304 — real HTTP caching semantics for the result
// a client polls. The /store routes 404 when no store is configured.
//
// Admission failures: 429 (+ Retry-After seconds) when shed over the
// queue depth or per-client cap, 503 while draining, 400 for invalid
// specs.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer wires the routes over the scheduler.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /jobs/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /store", s.handleStoreStats)
	s.mux.HandleFunc("POST /store/gc", s.handleStoreGC)
	s.mux.HandleFunc("GET /store/quarantine", s.handleStoreQuarantine)
	s.mux.HandleFunc("DELETE /store/quarantine", s.handleStorePurge)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clientOf resolves the submitter identity for the per-client cap:
// the spec's own client field, then the X-Genesys-Client header, then
// the remote host.
func clientOf(spec Spec, r *http.Request) string {
	if spec.Client != "" {
		return spec.Client
	}
	if h := r.Header.Get("X-Genesys-Client"); h != "" {
		return h
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad spec: %v", err)})
		return
	}
	spec.Client = clientOf(spec, r)
	j, err := s.sched.Submit(spec)
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		w.Header().Set("Retry-After", strconv.Itoa(shed.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: shed.Reason, RetryAfter: shed.RetryAfter})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "daemon is draining"})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	out := struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: make([]Status, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	st := j.Status()
	if !st.State.Terminal() {
		writeJSON(w, http.StatusOK, st)
		return
	}
	// Terminal results never change: serve them with a strong ETag so a
	// polling client's revalidation costs one 304 instead of a body.
	body, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	sum := sha256.Sum256(body)
	etag := `"` + hex.EncodeToString(sum[:16]) + `"`
	w.Header().Set("ETag", etag)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(body, '\n'))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.CheckpointJob(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	data, err := s.sched.Counters().Snapshot().JSON()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.sched.mu.Lock()
	draining := s.sched.draining
	s.sched.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}{Status: "ok", Draining: draining})
}

// handleStoreStats serves the persistent store's stats snapshot.
func (s *Server) handleStoreStats(w http.ResponseWriter, r *http.Request) {
	st := s.sched.cfg.Store
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no store configured"})
		return
	}
	writeJSON(w, http.StatusOK, st.Stats())
}

// handleStoreGC runs one GC pass on demand.
func (s *Server) handleStoreGC(w http.ResponseWriter, r *http.Request) {
	st := s.sched.cfg.Store
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no store configured"})
		return
	}
	writeJSON(w, http.StatusOK, st.GC())
}

// handleStoreQuarantine lists quarantined artifacts.
func (s *Server) handleStoreQuarantine(w http.ResponseWriter, r *http.Request) {
	st := s.sched.cfg.Store
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no store configured"})
		return
	}
	entries := st.Quarantined()
	if entries == nil {
		entries = []store.QuarantineEntry{}
	}
	writeJSON(w, http.StatusOK, struct {
		Quarantine []store.QuarantineEntry `json:"quarantine"`
	}{Quarantine: entries})
}

// handleStorePurge deletes every quarantined artifact.
func (s *Server) handleStorePurge(w http.ResponseWriter, r *http.Request) {
	st := s.sched.cfg.Store
	if st == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "no store configured"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Purged int `json:"purged"`
	}{Purged: st.PurgeQuarantine()})
}

// handleEvents streams a job's records as Server-Sent Events:
//
//	event: generation   data: hwsim.Record JSON   (one per generation)
//	event: done         data: Status JSON         (terminal state, then EOF)
//
// A subscriber attaching mid-run first receives the full history —
// the stream's replay seam guarantees no record is lost or duplicated
// across the attach boundary.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	history, live, cancel := j.stream.Subscribe()
	defer cancel()
	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, rec := range history {
		if !send("generation", rec) {
			return
		}
	}
	for {
		select {
		case rec, ok := <-live:
			if !ok {
				// Stream closed: the job is terminal; emit the final
				// status and end the response.
				send("done", j.Status())
				return
			}
			if !send("generation", rec) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

var _ hwsim.Sink = (*stream)(nil)
