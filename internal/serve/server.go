package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"

	"repro/internal/hw/hwsim"
)

// Server is the genesysd HTTP surface over one Scheduler.
//
// Routes:
//
//	POST   /jobs                 submit a job (Spec JSON) → 202 Status
//	GET    /jobs                 list jobs in submission order
//	GET    /jobs/{id}            one job's Status
//	DELETE /jobs/{id}            cancel (queued or running)
//	POST   /jobs/{id}/checkpoint checkpoint at the next generation boundary
//	GET    /jobs/{id}/events     Server-Sent Events record stream
//	GET    /metrics              the hwsim counter registry as JSON
//	GET    /healthz              liveness + drain state
//
// Admission failures: 429 (+ Retry-After seconds) when shed over the
// queue depth or per-client cap, 503 while draining, 400 for invalid
// specs.
type Server struct {
	sched *Scheduler
	mux   *http.ServeMux
}

// NewServer wires the routes over the scheduler.
func NewServer(sched *Scheduler) *Server {
	s := &Server{sched: sched, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /jobs", s.handleList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /jobs/{id}/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// errorBody is every non-2xx JSON payload.
type errorBody struct {
	Error      string `json:"error"`
	RetryAfter int    `json:"retry_after_seconds,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// clientOf resolves the submitter identity for the per-client cap:
// the spec's own client field, then the X-Genesys-Client header, then
// the remote host.
func clientOf(spec Spec, r *http.Request) string {
	if spec.Client != "" {
		return spec.Client
	}
	if h := r.Header.Get("X-Genesys-Client"); h != "" {
		return h
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad spec: %v", err)})
		return
	}
	spec.Client = clientOf(spec, r)
	j, err := s.sched.Submit(spec)
	var shed *ShedError
	switch {
	case errors.As(err, &shed):
		w.Header().Set("Retry-After", strconv.Itoa(shed.RetryAfter))
		writeJSON(w, http.StatusTooManyRequests, errorBody{Error: shed.Reason, RetryAfter: shed.RetryAfter})
	case errors.Is(err, ErrDraining):
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "daemon is draining"})
	case err != nil:
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
	default:
		writeJSON(w, http.StatusAccepted, j.Status())
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.sched.Jobs()
	out := struct {
		Jobs []Status `json:"jobs"`
	}{Jobs: make([]Status, 0, len(jobs))}
	for _, j := range jobs {
		out.Jobs = append(out.Jobs, j.Status())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.Cancel(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	j, err := s.sched.CheckpointJob(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	data, err := s.sched.Counters().Snapshot().JSON()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(data, '\n'))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.sched.mu.Lock()
	draining := s.sched.draining
	s.sched.mu.Unlock()
	writeJSON(w, http.StatusOK, struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}{Status: "ok", Draining: draining})
}

// handleEvents streams a job's records as Server-Sent Events:
//
//	event: generation   data: hwsim.Record JSON   (one per generation)
//	event: done         data: Status JSON         (terminal state, then EOF)
//
// A subscriber attaching mid-run first receives the full history —
// the stream's replay seam guarantees no record is lost or duplicated
// across the attach boundary.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	history, live, cancel := j.stream.Subscribe()
	defer cancel()
	send := func(event string, v any) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	for _, rec := range history {
		if !send("generation", rec) {
			return
		}
	}
	for {
		select {
		case rec, ok := <-live:
			if !ok {
				// Stream closed: the job is terminal; emit the final
				// status and end the response.
				send("done", j.Status())
				return
			}
			if !send("generation", rec) {
				return
			}
		case <-r.Context().Done():
			return
		}
	}
}

var _ hwsim.Sink = (*stream)(nil)
