package serve

import (
	"context"
	"errors"
	"math/rand"
	"net/url"
	"time"
)

// RetryPolicy is the client-side half of the daemon's load story: the
// server sheds with 429 + Retry-After, and a polite client backs off
// and returns. Bounded exponential backoff with jitter (so a shed
// burst doesn't resynchronize into a retry burst), honoring the
// server's Retry-After hint as a floor, retrying shed responses and
// transient transport errors only.
//
// The zero value performs no retries — library callers and existing
// tests see single-shot semantics unless they opt in.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (first call included);
	// <= 1 means no retries.
	MaxAttempts int
	// BaseDelay is the first backoff; doubles per retry. 0 means 200ms.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. 0 means 5s.
	MaxDelay time.Duration
	// Jitter spreads each delay uniformly within ±Jitter fraction.
	// 0 means 0.2; negative disables.
	Jitter float64

	// Test seams: deterministic jitter and instant sleeps.
	rand  func() float64
	sleep func(context.Context, time.Duration) error
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.BaseDelay <= 0 {
		p.BaseDelay = 200 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 5 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.2
	}
	if p.rand == nil {
		p.rand = rand.Float64
	}
	if p.sleep == nil {
		p.sleep = sleepCtx
	}
	return p
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// delay computes the backoff before retry `attempt` (1-based): capped
// exponential with jitter, floored by a shed response's Retry-After.
func (p RetryPolicy) delay(attempt int, err error) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d *= 2
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if p.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + p.Jitter*(2*p.rand()-1)))
	}
	var shed *ShedError
	if errors.As(err, &shed) && shed.RetryAfter > 0 {
		if ra := time.Duration(shed.RetryAfter) * time.Second; ra > d {
			d = ra
		}
	}
	return d
}

// retryable classifies an error: shed responses (the server said
// "later") and transport-level failures (connection refused/reset
// while a daemon restarts) are worth retrying; everything else — 4xx
// semantics, decode failures, a cancelled context — is not.
func retryable(ctx context.Context, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	var shed *ShedError
	if errors.As(err, &shed) {
		return true
	}
	var uerr *url.Error
	return errors.As(err, &uerr)
}

// withRetry runs call under the client's retry policy.
func (c *Client) withRetry(ctx context.Context, call func() error) error {
	pol := c.Retry.withDefaults()
	attempts := pol.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 1; ; attempt++ {
		err := call()
		if err == nil || attempt >= attempts || !retryable(ctx, err) {
			return err
		}
		if serr := pol.sleep(ctx, pol.delay(attempt, err)); serr != nil {
			return err
		}
	}
}
