package serve

import (
	"context"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/evolve"
	"repro/internal/experiments"
	"repro/internal/hw/hwsim"
)

// localExecutor is the default Executor: it runs jobs in-process
// through the experiment harness's shared run cache, exactly as the
// single-process daemon always has. Fleet workers use it too — the
// only difference is a WorkerID suffixing their checkpoint files.
type localExecutor struct {
	cfg Config
	// phases aggregates per-phase generation wall-clock
	// (evaluate/speciate/reproduce) across every cache-miss run this
	// executor computes; the scheduler adopts it into the /metrics tree.
	phases *hwsim.Counters
}

func newLocalExecutor(cfg Config) *localExecutor {
	return &localExecutor{cfg: cfg, phases: hwsim.New("phases")}
}

// Counters exposes the executor's phase-accounting node; the scheduler
// mounts it into the daemon's /metrics registry via the same adoption
// seam the cluster Dispatcher uses.
func (e *localExecutor) Counters() *hwsim.Counters { return e.phases }

// Execute resolves one job through the shared run cache (ordinary or
// island flavor), streaming records through sink either live (cache
// miss) or by replaying the memoized history (hit).
func (e *localExecutor) Execute(ctx context.Context, j *Job, sink hwsim.Sink) (Outcome, error) {
	if j.Spec.IsIsland() {
		return e.executeIsland(ctx, j, sink)
	}
	if j.Spec.IsPareto() {
		return e.executePareto(ctx, j, sink)
	}

	req := experiments.SharedRequest{
		Workload:    j.Spec.Workload,
		Population:  j.Spec.Population,
		Generations: j.Spec.Generations,
		Seed:        j.Spec.Seed,
		Ctx:         ctx,
		Sink:        sink,
		Parallelism: e.cfg.RunnerParallelism,
		BatchWidth:  e.cfg.RunnerBatchWidth,
		OnRunner:    j.PublishRunner,
		Phases:      e.phases,
	}
	if e.cfg.CheckpointDir != "" {
		key := j.Spec.key()
		req.CheckpointPath = checkpointFile(e.cfg.CheckpointDir, key, e.cfg.WorkerID)
		req.CheckpointEvery = e.cfg.CheckpointEvery
		// Resume from the freshest checkpoint of this key regardless of
		// which worker wrote it — the failover path: a re-dispatched job
		// picks up the dead worker's orphan.
		if resume, ok := findResume(e.cfg.CheckpointDir, key); ok && resume != req.CheckpointPath {
			req.ResumeFromPath = resume
		}
	}

	res, err := experiments.RunShared(req)
	if err != nil {
		return Outcome{}, err
	}
	if !res.Computed {
		// Served from the run cache (memory or disk tier): replay the
		// memoized history so this job's subscribers see the same record
		// stream a fresh execution would have produced.
		for _, st := range res.Runner.History {
			sink.Record(hwsim.Record{
				Workload:   j.Spec.Workload,
				Generation: st.Generation,
				Report:     st.CounterReport(),
			})
		}
	}
	var best float64
	for i, st := range res.Runner.History {
		if i == 0 || st.MaxFitness > best {
			best = st.MaxFitness
		}
	}
	return Outcome{
		Solved:  res.Solved,
		Shared:  !res.Computed,
		Resumed: res.Resumed,
		Stored:  res.Stored,
		Best:    best,
		Gens:    len(res.Runner.History),
	}, nil
}

// executeIsland resolves an island-model job through the island run
// cache. Island runs have no checkpoint machinery (each segment is
// short and the whole run is deterministic), so interruption means
// recomputation — the store tier still dedupes across restarts.
func (e *localExecutor) executeIsland(ctx context.Context, j *Job, sink hwsim.Sink) (Outcome, error) {
	out, err := experiments.RunSharedIsland(experiments.IslandRequest{
		Workload:       j.Spec.Workload,
		Population:     j.Spec.Population,
		Generations:    j.Spec.Generations,
		Islands:        j.Spec.Islands,
		MigrationEvery: j.Spec.MigrationEvery,
		Seed:           j.Spec.Seed,
		Ctx:            ctx,
		Parallelism:    e.cfg.RunnerParallelism,
		BatchWidth:     e.cfg.RunnerBatchWidth,
		Phases:         e.phases,
	})
	if err != nil {
		return Outcome{}, err
	}
	return islandOutcome(out, sink), nil
}

// executePareto resolves a Pareto-mode job through the Pareto run
// cache. On a cache miss this executor's run streams its history live
// through sink and appends the front records once the run completes;
// every hit (memory, store, or singleflight wait) replays the full
// stream from the memoized run. Both paths produce byte-identical
// record streams, so subscribers cannot tell a hit from a miss. Like
// island jobs, Pareto runs have no checkpoint machinery — the run is
// deterministic end to end and the store tier dedupes across restarts.
func (e *localExecutor) executePareto(ctx context.Context, j *Job, sink hwsim.Sink) (Outcome, error) {
	return resolveParetoLocal(ctx, j, sink, e.phases, e.cfg.RunnerParallelism, e.cfg.RunnerBatchWidth)
}

// resolveParetoLocal resolves a Pareto job through the shared Pareto
// cache in-process — the body of localExecutor.executePareto, shared
// with the Dispatcher's empty-fleet fallback.
func resolveParetoLocal(ctx context.Context, j *Job, sink hwsim.Sink, phases *hwsim.Counters, parallelism, batchWidth int) (Outcome, error) {
	out, err := experiments.RunSharedPareto(experiments.ParetoRequest{
		Workload:    j.Spec.Workload,
		Population:  j.Spec.Population,
		Generations: j.Spec.Generations,
		Seed:        j.Spec.Seed,
		Objectives:  experiments.SplitObjectives(j.Spec.Objectives),
		Ctx:         ctx,
		Parallelism: parallelism,
		BatchWidth:  batchWidth,
		Phases:      phases,
		Sink:        sink,
	})
	if err != nil {
		return Outcome{}, err
	}
	if out.Computed {
		// History already streamed live; finish with the front records.
		evolve.FrontRecords(out.Run, sink)
	} else {
		evolve.ReplayParetoRecords(out.Run, sink)
	}
	return paretoOutcome(out.Run, !out.Computed, out.Stored), nil
}

// paretoOutcome folds a resolved Pareto run into a job Outcome.
func paretoOutcome(run *evolve.ParetoRun, shared, stored bool) Outcome {
	return Outcome{
		Solved: run.Solved,
		Shared: shared,
		Stored: stored,
		Best:   run.BestFitness,
		Gens:   len(run.History),
	}
}

// islandOutcome converts a shared island result into a job Outcome,
// replaying the run's records through sink. Island runs always replay
// (the per-island runners never stream live), so a computed run and a
// cache hit produce the identical record stream.
func islandOutcome(out *experiments.IslandOutcome, sink hwsim.Sink) Outcome {
	evolve.ReplayIslandRecords(out.Run, sink)
	gens := 0
	for _, ir := range out.Run.Results {
		if len(ir.History) > gens {
			gens = len(ir.History)
		}
	}
	return Outcome{
		Solved: out.Run.Solved,
		Shared: !out.Computed,
		Stored: out.Stored,
		Best:   out.Run.BestFitness,
		Gens:   gens,
	}
}

// checkpointFile names the checkpoint a job writes: the cache key,
// plus an owner suffix when the process has a WorkerID, so fleet
// workers sharing a checkpoint directory never interleave writes into
// one file. '~' cannot appear in a canonical key, so the suffix parses
// back unambiguously (store.ParseKeyFilename strips it).
func checkpointFile(dir, key, owner string) string {
	name := key
	if owner != "" {
		name += "~" + owner
	}
	return filepath.Join(dir, name+".ckpt")
}

// findResume locates the freshest checkpoint for key in dir — the
// unowned "<key>.ckpt" or any owner's "<key>~<owner>.ckpt" — so a
// job re-dispatched after a worker death resumes from the orphan the
// dead worker left behind, whoever wrote it.
func findResume(dir, key string) (string, bool) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", false
	}
	var best string
	var bestMod int64
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		name := ent.Name()
		base, ok := strings.CutSuffix(name, ".ckpt")
		if !ok {
			continue
		}
		if owned, hasOwner := strings.CutPrefix(base, key+"~"); hasOwner {
			if owned == "" || strings.ContainsAny(owned, "/\\") {
				continue
			}
		} else if base != key {
			continue
		}
		info, ierr := ent.Info()
		if ierr != nil {
			continue
		}
		if mod := info.ModTime().UnixNano(); best == "" || mod > bestMod {
			best = filepath.Join(dir, name)
			bestMod = mod
		}
	}
	return best, best != ""
}
