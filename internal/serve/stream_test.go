package serve

import (
	"sync"
	"testing"

	"repro/internal/hw/hwsim"
)

func rec(gen int) hwsim.Record {
	return hwsim.Record{Workload: "w", Generation: gen}
}

// TestStreamReplaySeam: a subscriber attaching mid-stream sees every
// record exactly once — history replay plus live follow with no loss
// or duplication across the attach boundary, even under concurrent
// recording.
func TestStreamReplaySeam(t *testing.T) {
	const total = 200
	s := newStream()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < total; i++ {
			s.Record(rec(i))
		}
		s.Close()
	}()

	history, live, cancel := s.Subscribe()
	defer cancel()
	seen := append([]hwsim.Record(nil), history...)
	for r := range live {
		seen = append(seen, r)
	}
	wg.Wait()

	if len(seen) != total {
		t.Fatalf("subscriber saw %d records, want %d", len(seen), total)
	}
	for i, r := range seen {
		if r.Generation != i {
			t.Fatalf("record %d has generation %d: lost or duplicated at the seam", i, r.Generation)
		}
	}
	if s.Dropped() != 0 {
		t.Fatalf("%d records dropped with an attentive subscriber", s.Dropped())
	}
}

// TestStreamCloseIdempotent: records after close are ignored, late
// subscribers get the full history and an already-closed channel, and
// double close is safe.
func TestStreamCloseIdempotent(t *testing.T) {
	s := newStream()
	s.Record(rec(0))
	s.Record(rec(1))
	s.Close()
	s.Close()
	s.Record(rec(2)) // ignored

	history, live, cancel := s.Subscribe()
	defer cancel()
	if len(history) != 2 {
		t.Fatalf("late subscriber got %d history records, want 2", len(history))
	}
	if _, ok := <-live; ok {
		t.Fatal("late subscriber's channel should be closed")
	}
}

// TestStreamSlowSubscriberDropsNotBlocks: a subscriber that never
// drains loses records past its buffer, and Record never blocks.
func TestStreamSlowSubscriberDropsNotBlocks(t *testing.T) {
	s := newStream()
	_, _, cancel := s.Subscribe()
	defer cancel()
	for i := 0; i < subBuffer+50; i++ {
		s.Record(rec(i)) // would deadlock here if Record blocked
	}
	if d := s.Dropped(); d != 50 {
		t.Fatalf("dropped %d records, want 50", d)
	}
	if s.Len() != subBuffer+50 {
		t.Fatalf("history has %d records, want %d (drops must not touch history)", s.Len(), subBuffer+50)
	}
}
