package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/evolve"
	"repro/internal/experiments"
	"repro/internal/hw/hwsim"
)

// Dispatcher is the cluster coordinator's Executor: admitted jobs are
// routed to the worker owning their run-cache key on the consistent
// hash ring, executed remotely through the ordinary genesysd client
// surface, and their record streams proxied back into the local job's
// sink — so submitters talk to one coordinator and cannot tell the
// fleet from a single process. Island-model jobs are instead sharded
// across every live worker (cluster.RunDistributed).
//
// Failover: a transport failure mid-job marks the worker dead in the
// registry (its ring points are removed immediately) and re-dispatches
// the job to the key's new owner, which resumes from the dead worker's
// orphaned checkpoint when the fleet shares a checkpoint directory.
// Records replayed by the new worker are deduplicated by generation
// number, so the coordinator's stream stays exactly-once.
type Dispatcher struct {
	// Members is the worker registry and hash ring.
	Members *cluster.Membership
	// HTTP is the transport to workers; nil means http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts bounds one job's dispatch attempts across worker
	// deaths; 0 means 4.
	MaxAttempts int

	init     sync.Once
	counters *hwsim.Counters
	ctr      *hwsim.Counters
	// phases aggregates per-phase generation wall-clock for every run
	// the coordinator computes in-process (island local fallback, Pareto
	// local resolution) — the same accounting localExecutor keeps, so
	// a coordinator's /metrics carries the phase tree too.
	phases *hwsim.Counters

	mu       sync.Mutex
	inflight map[string]int // live dispatched jobs per worker id
	live     map[string]*liveDispatch
}

// liveDispatch is one job currently placed on a remote worker, indexed
// by coordinator job ID — the state Rebalance consults when the ring
// changes.
type liveDispatch struct {
	key      string
	workerID string
	remoteID string
	cl       *Client
	// rebalanced marks that the coordinator itself cancelled the remote
	// job to move it to a new ring owner; runOn turns the resulting
	// cancelled outcome into errRebalanced instead of a worker failure.
	rebalanced atomic.Bool
}

// errRebalanced marks a dispatch attempt ended by the coordinator
// cancelling a still-queued remote job whose consistent-hash owner
// changed (a new worker joined). The dispatch loop retries on the new
// owner WITHOUT marking the old worker dead — it is healthy; the job
// just belongs elsewhere now.
var errRebalanced = errors.New("serve: queued job re-routed to its new ring owner")

// workerFailure marks a dispatch error attributable to the worker
// (transport broke, stream died) rather than to the job itself — the
// signal to mark the worker dead and re-dispatch.
type workerFailure struct{ err error }

func (e *workerFailure) Error() string { return e.err.Error() }
func (e *workerFailure) Unwrap() error { return e.err }

func (d *Dispatcher) http() *http.Client {
	if d.HTTP != nil {
		return d.HTTP
	}
	return http.DefaultClient
}

func (d *Dispatcher) attempts() int {
	if d.MaxAttempts > 0 {
		return d.MaxAttempts
	}
	return 4
}

// Counters exposes the dispatcher's cluster registry; the scheduler
// adopts it into the daemon's /metrics tree.
func (d *Dispatcher) Counters() *hwsim.Counters {
	d.ensure()
	return d.counters
}

// Phases exposes the dispatcher's phase-accounting node — the
// scheduler mounts it next to the cluster registry, so the coordinator
// reports evaluate/speciate/reproduce wall-clock for runs it computes
// in-process exactly as a single-process daemon does.
func (d *Dispatcher) Phases() *hwsim.Counters {
	d.ensure()
	return d.phases
}

func (d *Dispatcher) ensure() {
	d.init.Do(func() {
		d.counters = hwsim.New("cluster")
		d.ctr = d.counters
		d.phases = hwsim.New("phases")
		d.inflight = map[string]int{}
		d.live = map[string]*liveDispatch{}
		// Fleet gauges refresh at snapshot time from the registry.
		d.counters.OnSnapshot(func(c *hwsim.Counters) {
			status, points := d.Members.Status()
			live := 0
			for _, st := range status {
				if st.Alive {
					live++
				}
			}
			c.SetInt("workers_known", int64(len(status)))
			c.SetInt("workers_live", int64(live))
			c.SetInt("ring_points", int64(points))
		})
		d.counters.Child("inflight").OnSnapshot(func(c *hwsim.Counters) {
			d.mu.Lock()
			for id, n := range d.inflight {
				c.SetInt(id, int64(n))
			}
			d.mu.Unlock()
		})
	})
}

func (d *Dispatcher) track(workerID string, delta int) {
	d.mu.Lock()
	d.inflight[workerID] += delta
	if d.inflight[workerID] <= 0 {
		delete(d.inflight, workerID)
	}
	d.mu.Unlock()
}

// Execute routes one admitted job to the fleet. Jobs the coordinator
// can answer from its own run cache or store never touch a worker.
func (d *Dispatcher) Execute(ctx context.Context, j *Job, sink hwsim.Sink) (Outcome, error) {
	d.ensure()
	if j.Spec.IsIsland() {
		return d.executeIsland(ctx, j, sink)
	}
	if j.Spec.IsPareto() {
		return d.executePareto(ctx, j, sink)
	}
	if run, ok := experiments.PeekShared(j.Spec.Workload, j.Spec.Population, j.Spec.Generations, j.Spec.Seed); ok {
		d.ctr.AddInt("proxied_store_hits", 1)
		return replayShared(j.Spec.Workload, run, sink), nil
	}
	return d.dispatch(ctx, j, sink)
}

// replayShared streams a locally cached run's history through sink and
// folds it into an Outcome — the coordinator's store-hit proxy.
func replayShared(workload string, run *experiments.SharedRun, sink hwsim.Sink) Outcome {
	var best float64
	for i, st := range run.Runner.History {
		sink.Record(hwsim.Record{
			Workload:   workload,
			Generation: st.Generation,
			Report:     st.CounterReport(),
		})
		if i == 0 || st.MaxFitness > best {
			best = st.MaxFitness
		}
	}
	return Outcome{
		Solved: run.Solved,
		Shared: true,
		Stored: run.Stored,
		Best:   best,
		Gens:   len(run.Runner.History),
	}
}

// executePareto resolves a Pareto-mode job: answered from the
// coordinator's own run cache or store when possible, computed
// in-process when the fleet is empty (mirroring the island local
// fallback), and otherwise dispatched to the key's ring owner exactly
// like an ordinary job — the worker streams history plus front
// records, whose generation numbers continue monotonically, so the
// coordinator's dedup proxy forwards them unchanged.
func (d *Dispatcher) executePareto(ctx context.Context, j *Job, sink hwsim.Sink) (Outcome, error) {
	objectives := experiments.SplitObjectives(j.Spec.Objectives)
	if run, stored, ok := experiments.PeekSharedPareto(j.Spec.Workload, j.Spec.Population, j.Spec.Generations, j.Spec.Seed, objectives); ok {
		d.ctr.AddInt("proxied_store_hits", 1)
		evolve.ReplayParetoRecords(run, sink)
		return paretoOutcome(run, true, stored), nil
	}
	if len(d.Members.Live()) == 0 {
		// No fleet: the coordinator is the only compute. The run is
		// deterministic, so the result is identical to a worker's.
		d.ctr.AddInt("pareto_local", 1)
		return resolveParetoLocal(ctx, j, sink, d.phases, 0, 0)
	}
	return d.dispatch(ctx, j, sink)
}

// registerDispatch publishes a placed job for Rebalance to see.
func (d *Dispatcher) registerDispatch(jobID string, ld *liveDispatch) {
	d.mu.Lock()
	d.live[jobID] = ld
	d.mu.Unlock()
}

func (d *Dispatcher) unregisterDispatch(jobID string) {
	d.mu.Lock()
	delete(d.live, jobID)
	d.mu.Unlock()
}

// Rebalance re-routes still-queued remote jobs whose consistent-hash
// owner changed — the membership OnChange hook calls it when a worker
// joins, dies, or revives. Only queued jobs move: a running job has
// progress worth keeping where it is, while a queued one has none to
// lose and its new owner may already hold the key's checkpoint or
// store entry. The race with the remote scheduler (the job starts
// between the state probe and the cancel) is benign — the job
// checkpoints at its next generation boundary and the new owner
// resumes from that orphan.
func (d *Dispatcher) Rebalance() {
	if d.Members == nil {
		// The hook can be wired before the registry is assigned.
		return
	}
	d.ensure()
	d.mu.Lock()
	placed := make([]*liveDispatch, 0, len(d.live))
	for _, ld := range d.live {
		placed = append(placed, ld)
	}
	d.mu.Unlock()
	for _, ld := range placed {
		d.maybeRebalance(ld)
	}
}

// maybeRebalance moves one placed job to its current ring owner when
// the key no longer belongs to the worker it was placed on and the
// remote job has not started. Called by the membership-change pass for
// every placed job, and by runOn right after placement — the double
// check that closes the race between placing a job and a concurrent
// join (whichever side runs second sees the other's state).
func (d *Dispatcher) maybeRebalance(ld *liveDispatch) {
	owner, ok := d.Members.Owner(ld.key)
	if !ok || owner.ID == ld.workerID || ld.rebalanced.Load() {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	st, err := ld.cl.Job(ctx, ld.remoteID)
	if err != nil || st.State != StateQueued {
		return
	}
	ld.rebalanced.Store(true)
	ld.cl.Cancel(ctx, ld.remoteID)
	d.ctr.AddInt("rebalanced", 1)
}

// dispatch runs one ordinary job on the fleet with failover. Stream
// state (last generation seen, best fitness, forwarded count) lives
// across attempts so a re-dispatched worker's history replay is
// deduplicated and the outcome reflects the whole job.
func (d *Dispatcher) dispatch(ctx context.Context, j *Job, sink hwsim.Sink) (Outcome, error) {
	lastGen := -1
	forwarded := 0
	var best float64
	var lastErr error
	for attempt := 0; attempt < d.attempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			return Outcome{}, err
		}
		owner, ok := d.Members.Owner(j.Spec.key())
		if !ok {
			return Outcome{}, errors.New("serve: no live workers in the fleet")
		}
		out, err := d.runOn(ctx, owner, j, sink, &lastGen, &forwarded, &best)
		if err == nil {
			return out, nil
		}
		if ctx.Err() != nil {
			return Outcome{}, err
		}
		if errors.Is(err, errRebalanced) {
			// The coordinator moved the still-queued job off a healthy
			// worker; retry resolves the new ring owner. No failure is
			// reported — nothing is wrong with the old worker.
			lastErr = err
			continue
		}
		var fail *workerFailure
		if !errors.As(err, &fail) {
			// The job itself failed on a healthy worker; re-dispatching
			// the same deterministic computation would fail the same way.
			return Outcome{}, err
		}
		lastErr = err
		d.Members.ReportFailure(owner.ID)
		d.ctr.AddInt("redispatched", 1)
	}
	return Outcome{}, fmt.Errorf("serve: dispatch failed after %d attempts: %w", d.attempts(), lastErr)
}

// runOn executes the job on one worker: submit, watch the stream to
// completion (forwarding records beyond lastGen), fetch the outcome.
func (d *Dispatcher) runOn(ctx context.Context, owner cluster.Member, j *Job, sink hwsim.Sink, lastGen *int, forwarded *int, best *float64) (Outcome, error) {
	cl := &Client{
		Base: owner.Addr,
		HTTP: d.http(),
		Name: "(coordinator)",
		// A small budget smooths worker restarts and momentary sheds;
		// persistent failure surfaces fast so failover can run.
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: 50 * time.Millisecond, MaxDelay: 500 * time.Millisecond},
	}
	d.ctr.AddInt("dispatched", 1)
	d.track(owner.ID, +1)
	defer d.track(owner.ID, -1)

	spec := j.Spec
	spec.Client = "(coordinator)"
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		return Outcome{}, &workerFailure{err}
	}
	ld := &liveDispatch{key: j.Spec.key(), workerID: owner.ID, remoteID: st.ID, cl: cl}
	d.registerDispatch(j.ID, ld)
	defer d.unregisterDispatch(j.ID)
	// A membership change between Owner and this registration would
	// have run its rebalance pass without seeing this job — re-check
	// the ring now that the placement is visible.
	d.maybeRebalance(ld)
	// Cancelling the coordinator job cancels the remote one, freeing
	// the worker's slot (and letting it checkpoint) promptly.
	stop := context.AfterFunc(ctx, func() {
		cctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*time.Second)
		defer cancel()
		cl.Cancel(cctx, st.ID)
	})
	defer stop()

	final, err := cl.Watch(ctx, st.ID, func(rec hwsim.Record) error {
		if rec.Generation <= *lastGen {
			return nil // duplicate from a post-failover history replay
		}
		*lastGen = rec.Generation
		*forwarded++
		if mf := rec.Report.Float("max_fitness"); *forwarded == 1 || mf > *best {
			*best = mf
		}
		sink.Record(rec)
		return nil
	})
	if err != nil {
		return Outcome{}, &workerFailure{err}
	}
	switch final.State {
	case StateDone:
		out := Outcome{
			Solved:  final.Solved,
			Shared:  final.Shared,
			Resumed: final.Resumed,
			Stored:  final.Stored,
			Best:    *best,
			Gens:    *forwarded,
		}
		if final.BestFitness > out.Best {
			out.Best = final.BestFitness
		}
		if out.Gens == 0 {
			out.Gens = final.Generations
		}
		return out, nil
	case StateCancelled:
		if ld.rebalanced.Load() {
			// The coordinator itself cancelled the queued remote job
			// because its ring owner changed: retry on the new owner
			// without blaming this (healthy) worker.
			return Outcome{}, errRebalanced
		}
		// The coordinator did not cancel (its context is alive — a
		// cancelled context surfaces as a Watch error above), so the
		// worker cancelled on its own: it is draining. The job
		// checkpointed at a generation boundary; fail over so another
		// worker resumes it.
		return Outcome{}, &workerFailure{fmt.Errorf("serve: worker %s cancelled job %s (draining): %s", owner.ID, st.ID, final.Error)}
	default:
		return Outcome{}, fmt.Errorf("serve: worker job %s on %s %s: %s", st.ID, owner.ID, final.State, final.Error)
	}
}

// executeIsland resolves an island job through the shared island
// cache, computing cold misses on the fleet (every live worker gets a
// shard). The result is byte-identical to the single-process
// reference, so cache and store contents are fleet-shape independent.
func (d *Dispatcher) executeIsland(ctx context.Context, j *Job, sink hwsim.Sink) (Outcome, error) {
	out, err := experiments.RunSharedIsland(experiments.IslandRequest{
		Workload:       j.Spec.Workload,
		Population:     j.Spec.Population,
		Generations:    j.Spec.Generations,
		Islands:        j.Spec.Islands,
		MigrationEvery: j.Spec.MigrationEvery,
		Seed:           j.Spec.Seed,
		Ctx:            ctx,
		Run: func(ctx context.Context) (*evolve.IslandRun, error) {
			return d.runIslandsOnFleet(ctx, j)
		},
	})
	if err != nil {
		return Outcome{}, err
	}
	if out.Stored {
		d.ctr.AddInt("proxied_store_hits", 1)
	}
	return islandOutcome(out, sink), nil
}

// runIslandsOnFleet computes one island run across the live workers,
// restarting on the survivors when a shard's worker dies (the run is
// deterministic, so the fleet shape never changes the result). With
// no live workers the coordinator falls back to the local reference.
func (d *Dispatcher) runIslandsOnFleet(ctx context.Context, j *Job) (*evolve.IslandRun, error) {
	spec := j.Spec.islandSpec()
	// The local fallback computes in-process; account its phase
	// wall-clock like any other local run. (Distributed shards account
	// on their own workers.)
	spec.Phases = d.phases
	session := j.Spec.key() + "@" + j.ID
	var lastErr error
	for attempt := 0; attempt < d.attempts(); attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		workers := d.Members.Live()
		if len(workers) == 0 {
			d.ctr.AddInt("island_local", 1)
			return evolve.RunIslands(ctx, spec)
		}
		d.ctr.AddInt("island_distributed", 1)
		run, err := cluster.RunDistributed(ctx, spec, session, workers, d.http())
		if err == nil {
			return run, nil
		}
		if ctx.Err() != nil {
			return nil, err
		}
		lastErr = err
		var shard *cluster.ShardError
		if !errors.As(err, &shard) {
			return nil, err
		}
		d.Members.ReportFailure(shard.Member.ID)
		d.ctr.AddInt("redispatched", 1)
	}
	return nil, fmt.Errorf("serve: island dispatch failed after %d attempts: %w", d.attempts(), lastErr)
}
