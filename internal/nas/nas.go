// Package nas implements the paper's second Future-Directions idea:
// running GeneSys-style evolution where "genes represent layers in
// MLPs" — the genetic algorithm explores network architectures while
// conventional gradient training tunes the weights ("rapid topology
// exploration and then using conventional training to tune the
// weights", Section VII). This is the neuro-architecture-search regime
// the paper cites through Real et al. and Miikkulainen et al.
//
// A genome here is a short list of layer genes (width + activation
// shape); fitness is the validation loss after a fixed budget of SGD
// on the decoded MLP (package dnn). Mutation adds/removes/resizes
// layers; crossover splices prefixes — gene-level operations an EvE-
// class accelerator would execute, with only the gene definition
// changed, exactly as the paper argues.
package nas

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dnn"
	"repro/internal/rng"
)

// LayerGene is one gene: a hidden layer's width. (The dnn substrate
// fixes ReLU hidden activations; width is the architectural knob.)
type LayerGene struct {
	Width int
}

// Genome is an architecture: an ordered list of hidden-layer genes.
type Genome struct {
	ID      int64
	Layers  []LayerGene
	Fitness float64 // negative validation loss (higher is better)
}

// Clone deep-copies the genome.
func (g *Genome) Clone() *Genome {
	c := &Genome{ID: g.ID, Fitness: g.Fitness}
	c.Layers = append([]LayerGene(nil), g.Layers...)
	return c
}

// sizes returns the dnn layer sizes for the given io widths.
func (g *Genome) sizes(in, out int) []int {
	s := []int{in}
	for _, l := range g.Layers {
		s = append(s, l.Width)
	}
	return append(s, out)
}

// Params counts the decoded network's parameters.
func (g *Genome) Params(in, out int) int64 {
	sizes := g.sizes(in, out)
	var p int64
	for i := 1; i < len(sizes); i++ {
		p += int64(sizes[i-1])*int64(sizes[i]) + int64(sizes[i])
	}
	return p
}

// Task is a supervised problem the search optimizes against.
type Task struct {
	In, Out int
	// Train and Val are (x, y) example sets.
	TrainX, TrainY [][]float64
	ValX, ValY     [][]float64
}

// SyntheticTask builds a nonlinear regression problem (a product-and-
// sine composition) — the stand-in for a labeled dataset, which this
// environment does not have (see DESIGN.md substitutions).
func SyntheticTask(r *rng.XorWow, trainN, valN int) Task {
	t := Task{In: 3, Out: 1}
	gen := func(n int) (xs, ys [][]float64) {
		for i := 0; i < n; i++ {
			x := []float64{r.Range(-1, 1), r.Range(-1, 1), r.Range(-1, 1)}
			y := []float64{math.Sin(2*x[0])*x[1]*0.5 + 0.3*x[2]*x[2]}
			xs = append(xs, x)
			ys = append(ys, y)
		}
		return
	}
	t.TrainX, t.TrainY = gen(trainN)
	t.ValX, t.ValY = gen(valN)
	return t
}

// Config tunes the search.
type Config struct {
	PopulationSize int
	// TrainSteps is the SGD budget per fitness evaluation (the
	// "conventional training" half of the hybrid).
	TrainSteps int
	LR         float64
	// MaxLayers / MaxWidth bound the architecture space.
	MaxLayers int
	MaxWidth  int
	// Mutation probabilities.
	AddLayerProb, DelLayerProb, ResizeProb float64
	SurvivalFraction                       float64
}

// DefaultConfig is a small, fast search space.
func DefaultConfig() Config {
	return Config{
		PopulationSize:   16,
		TrainSteps:       300,
		LR:               0.05,
		MaxLayers:        4,
		MaxWidth:         32,
		AddLayerProb:     0.25,
		DelLayerProb:     0.15,
		ResizeProb:       0.5,
		SurvivalFraction: 0.4,
	}
}

// Search runs the architecture evolution.
type Search struct {
	cfg    Config
	task   Task
	rnd    *rng.XorWow
	pop    []*Genome
	nextID int64
	// Generation counts completed epochs.
	Generation int
}

// NewSearch seeds a population of single-layer architectures.
func NewSearch(cfg Config, task Task, seed uint64) (*Search, error) {
	if cfg.PopulationSize < 2 {
		return nil, fmt.Errorf("nas: population %d too small", cfg.PopulationSize)
	}
	if task.In <= 0 || task.Out <= 0 || len(task.TrainX) == 0 || len(task.ValX) == 0 {
		return nil, fmt.Errorf("nas: task is empty")
	}
	s := &Search{cfg: cfg, task: task, rnd: rng.New(seed)}
	for i := 0; i < cfg.PopulationSize; i++ {
		s.pop = append(s.pop, &Genome{
			ID:     s.nextID,
			Layers: []LayerGene{{Width: 2 + s.rnd.Intn(cfg.MaxWidth-1)}},
		})
		s.nextID++
	}
	return s, nil
}

// Population exposes the current genomes.
func (s *Search) Population() []*Genome { return s.pop }

// evaluate trains the decoded MLP briefly and scores validation loss.
func (s *Search) evaluate(g *Genome) (float64, error) {
	net, err := dnn.NewMLP(s.rnd.Split(), g.sizes(s.task.In, s.task.Out)...)
	if err != nil {
		return 0, err
	}
	n := len(s.task.TrainX)
	for step := 0; step < s.cfg.TrainSteps; step++ {
		i := step % n
		if _, err := net.Forward(s.task.TrainX[i]); err != nil {
			return 0, err
		}
		if err := net.BackwardMSE(outIndices(s.task.Out), s.task.TrainY[i]); err != nil {
			return 0, err
		}
		net.SGDStep(s.cfg.LR, 1, 1)
	}
	var loss float64
	for i := range s.task.ValX {
		out, err := net.Forward(s.task.ValX[i])
		if err != nil {
			return 0, err
		}
		for j := range out {
			d := out[j] - s.task.ValY[i][j]
			loss += d * d
		}
	}
	return -loss / float64(len(s.task.ValX)), nil
}

func outIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Step runs one generation: evaluate, select, reproduce. It returns
// the generation's best genome (post-evaluation).
func (s *Search) Step() (*Genome, error) {
	for _, g := range s.pop {
		fit, err := s.evaluate(g)
		if err != nil {
			return nil, err
		}
		g.Fitness = fit
	}
	sort.Slice(s.pop, func(i, j int) bool { return s.pop[i].Fitness > s.pop[j].Fitness })
	best := s.pop[0].Clone()

	cut := int(float64(len(s.pop))*s.cfg.SurvivalFraction + 0.5)
	if cut < 2 {
		cut = 2
	}
	pool := s.pop[:cut]
	next := []*Genome{best} // elitism
	for len(next) < s.cfg.PopulationSize {
		p1 := pool[s.rnd.Intn(len(pool))]
		p2 := pool[s.rnd.Intn(len(pool))]
		child := s.crossover(p1, p2)
		s.mutate(child)
		next = append(next, child)
	}
	s.pop = next
	s.Generation++
	return best, nil
}

// crossover splices a prefix of p1 with a suffix of p2 — the layer-
// gene analogue of the PE crossover stage.
func (s *Search) crossover(p1, p2 *Genome) *Genome {
	child := &Genome{ID: s.nextID}
	s.nextID++
	i := s.rnd.Intn(len(p1.Layers) + 1)
	j := s.rnd.Intn(len(p2.Layers) + 1)
	child.Layers = append(child.Layers, p1.Layers[:i]...)
	child.Layers = append(child.Layers, p2.Layers[j:]...)
	if len(child.Layers) == 0 {
		child.Layers = []LayerGene{{Width: 4}}
	}
	if len(child.Layers) > s.cfg.MaxLayers {
		child.Layers = child.Layers[:s.cfg.MaxLayers]
	}
	return child
}

// mutate applies the add/delete/resize layer-gene operations.
func (s *Search) mutate(g *Genome) {
	if s.rnd.Bool(s.cfg.AddLayerProb) && len(g.Layers) < s.cfg.MaxLayers {
		at := s.rnd.Intn(len(g.Layers) + 1)
		g.Layers = append(g.Layers, LayerGene{})
		copy(g.Layers[at+1:], g.Layers[at:])
		g.Layers[at] = LayerGene{Width: 2 + s.rnd.Intn(s.cfg.MaxWidth-1)}
	}
	if s.rnd.Bool(s.cfg.DelLayerProb) && len(g.Layers) > 1 {
		at := s.rnd.Intn(len(g.Layers))
		g.Layers = append(g.Layers[:at], g.Layers[at+1:]...)
	}
	if s.rnd.Bool(s.cfg.ResizeProb) && len(g.Layers) > 0 {
		at := s.rnd.Intn(len(g.Layers))
		w := g.Layers[at].Width + s.rnd.Intn(9) - 4
		if w < 2 {
			w = 2
		}
		if w > s.cfg.MaxWidth {
			w = s.cfg.MaxWidth
		}
		g.Layers[at].Width = w
	}
}
