package nas

import (
	"testing"

	"repro/internal/rng"
)

func testTask() Task {
	return SyntheticTask(rng.New(1), 200, 50)
}

func TestNewSearchValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewSearch(cfg, Task{}, 1); err == nil {
		t.Fatal("empty task accepted")
	}
	bad := cfg
	bad.PopulationSize = 1
	if _, err := NewSearch(bad, testTask(), 1); err == nil {
		t.Fatal("population of 1 accepted")
	}
	s, err := NewSearch(cfg, testTask(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Population()) != cfg.PopulationSize {
		t.Fatalf("population %d", len(s.Population()))
	}
	for _, g := range s.Population() {
		if len(g.Layers) != 1 || g.Layers[0].Width < 2 {
			t.Fatalf("bad seed genome %+v", g)
		}
	}
}

func TestArchitectureBounds(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainSteps = 20 // keep the test fast; we only check structure
	s, err := NewSearch(cfg, testTask(), 5)
	if err != nil {
		t.Fatal(err)
	}
	for gen := 0; gen < 4; gen++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		for _, g := range s.Population() {
			if len(g.Layers) < 1 || len(g.Layers) > cfg.MaxLayers {
				t.Fatalf("gen %d: %d layers", gen, len(g.Layers))
			}
			for _, l := range g.Layers {
				if l.Width < 2 || l.Width > cfg.MaxWidth {
					t.Fatalf("gen %d: width %d", gen, l.Width)
				}
			}
		}
	}
	if s.Generation != 4 {
		t.Fatalf("generation counter %d", s.Generation)
	}
}

// TestSearchImprovesValidationLoss is the hybrid's claim: GA over
// layer genes + SGD over weights reduces validation loss across
// generations.
func TestSearchImprovesValidationLoss(t *testing.T) {
	cfg := DefaultConfig()
	s, err := NewSearch(cfg, testTask(), 9)
	if err != nil {
		t.Fatal(err)
	}
	first, err := s.Step()
	if err != nil {
		t.Fatal(err)
	}
	var last *Genome
	for gen := 0; gen < 6; gen++ {
		last, err = s.Step()
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.Fitness < first.Fitness {
		t.Fatalf("search regressed: %v -> %v", first.Fitness, last.Fitness)
	}
	// Final loss must be meaningfully small on this easy function.
	if -last.Fitness > 0.05 {
		t.Fatalf("validation MSE %v too high", -last.Fitness)
	}
	t.Logf("nas: val MSE %.4f -> %.4f, best arch %v",
		-first.Fitness, -last.Fitness, last.Layers)
}

func TestGenomeParams(t *testing.T) {
	g := &Genome{Layers: []LayerGene{{Width: 4}}}
	// 3→4→1: 3·4+4 + 4·1+1 = 21.
	if p := g.Params(3, 1); p != 21 {
		t.Fatalf("params %d", p)
	}
	c := g.Clone()
	c.Layers[0].Width = 9
	if g.Layers[0].Width == 9 {
		t.Fatal("clone shares layer storage")
	}
}

func TestDeterministicSearch(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig()
		cfg.TrainSteps = 50
		s, err := NewSearch(cfg, testTask(), 21)
		if err != nil {
			t.Fatal(err)
		}
		best, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		return best.Fitness
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
