// Package sram models the genome buffer: the shared multi-banked SRAM
// that holds every genome of the current generation and feeds both EvE
// and ADAM (Fig. 6). The paper provisions 1.5 MB in 48 banks of 4096
// 64-bit entries, sized from the <1 MB-per-generation footprint of
// Section III-D1 and banked to exploit parent reuse and avoid conflicts
// while feeding ADAM.
//
// The model is an activity counter with bank-conflict accounting: the
// cycle models present their per-cycle access demand and the buffer
// reports how many cycles the banks need to serve it, while tallying
// accesses and energy. All activity lives in a hwsim counter node named
// "sram", so the buffer slots directly into a SoC component tree.
package sram

import (
	"fmt"
	"sync/atomic"

	"repro/internal/hw/fault"
	"repro/internal/hw/hwsim"
)

// Config fixes the buffer geometry.
type Config struct {
	Banks     int // number of independent banks
	Depth     int // 64-bit entries per bank
	AccessPJ  float64
	PortsEach int // accesses each bank serves per cycle (1 = single-ported)
}

// DefaultConfig is the paper's 48 × 4096 × 64-bit buffer.
func DefaultConfig() Config {
	return Config{Banks: 48, Depth: 4096, AccessPJ: 50, PortsEach: 1}
}

// CapacityWords returns total 64-bit capacity.
func (c Config) CapacityWords() int { return c.Banks * c.Depth }

// CapacityBytes returns total capacity in bytes.
func (c Config) CapacityBytes() int { return c.CapacityWords() * 8 }

// Buffer is the genome buffer activity model.
//
// Concurrency contract: Read, Write and every counter getter are safe
// for concurrent use (counters are atomic), so parallel design-point
// sweeps can charge one shared buffer without corruption. SetResidency
// is atomic too, but is not ordered with in-flight accesses — declare
// the generation's working set before issuing its accesses.
type Buffer struct {
	cfg Config
	ctr *hwsim.Counters

	reads, writes *hwsim.Int
	// conflictCycles counts extra cycles lost to bank conflicts.
	conflictCycles *hwsim.Int
	// spillWords counts accesses that missed on-chip capacity and went
	// to DRAM ("backed by DRAM for cases when the genomes do not fit").
	spillWords *hwsim.Int
	residency  atomic.Int64 // words currently allocated

	// faults, when attached, injects word bit-flips on reads and the
	// configured ECC scheme reacts: detection, correction scrubs and
	// code-bit energy are charged to the buffer and the fault ledger.
	faults *fault.Plan
	// eccPJ accumulates the code-bit (check-bit) energy overhead of
	// every protected access; registered only when ECC is modeled so a
	// fault-free buffer's snapshot is unchanged.
	eccPJ *hwsim.Float
}

// New returns an empty buffer with the given geometry.
func New(cfg Config) *Buffer {
	if cfg.Banks <= 0 || cfg.Depth <= 0 {
		panic(fmt.Sprintf("sram: bad geometry %+v", cfg))
	}
	if cfg.PortsEach <= 0 {
		cfg.PortsEach = 1
	}
	b := &Buffer{cfg: cfg, ctr: hwsim.New("sram")}
	b.reads = b.ctr.Int("reads")
	b.writes = b.ctr.Int("writes")
	b.conflictCycles = b.ctr.Int("conflict_cycles")
	b.spillWords = b.ctr.Int("spill_words")
	b.ctr.OnSnapshot(func(c *hwsim.Counters) {
		c.SetFloat("energy_pj", b.EnergyPJ())
		c.SetInt("capacity_words", int64(cfg.CapacityWords()))
	})
	return b
}

// Config returns the geometry.
func (b *Buffer) Config() Config { return b.cfg }

// AttachFaults wires a fault plan into the buffer. Reads then suffer
// seeded word bit-flips, and the plan's ECC scheme determines the
// outcome per flipped word:
//
//   - Unprotected: the flip is a silent error (charged, not repaired);
//   - Parity: the flip is detected and confirmed by a re-read, but the
//     word stays uncorrectable;
//   - SECDED: single-bit flips are corrected by a read-modify-write
//     scrub (extra read + write traffic and cycles); double-bit flips
//     remain uncorrectable.
//
// Recovery traffic is charged to the buffer's own counters (so it
// appears in sram reads/writes/energy) and itemized under the plan's
// "fault/sram" scope. Passing nil detaches.
func (b *Buffer) AttachFaults(p *fault.Plan) {
	b.faults = p
	if p != nil && p.Config().ECC != fault.Unprotected {
		b.eccPJ = b.ctr.Float("ecc_overhead_pj")
	}
}

// Name is the buffer's hwsim component name.
func (b *Buffer) Name() string { return "sram" }

// Counters returns the buffer's live registry node.
func (b *Buffer) Counters() *hwsim.Counters { return b.ctr }

// SetResidency declares how many words the current generation occupies;
// accesses beyond capacity are charged as DRAM spills.
func (b *Buffer) SetResidency(words int) {
	if words < 0 {
		words = 0
	}
	b.residency.Store(int64(words))
}

// Resident reports whether the declared working set fits on-chip.
func (b *Buffer) Resident() bool {
	return b.residency.Load() <= int64(b.cfg.CapacityWords())
}

// spillFraction is the fraction of the working set that lives off-chip.
func (b *Buffer) spillFraction() float64 {
	cap := int64(b.cfg.CapacityWords())
	res := b.residency.Load()
	if res <= cap || res == 0 {
		return 0
	}
	return float64(res-cap) / float64(res)
}

// Read charges n word reads spread across banks and returns the cycles
// the banks need to serve them (bandwidth = Banks × PortsEach words per
// cycle; genomes are stored bank-interleaved so streaming reads load
// banks evenly).
func (b *Buffer) Read(n int64) int64 {
	return b.access(n, false)
}

// Write charges n word writes.
func (b *Buffer) Write(n int64) int64 {
	return b.access(n, true)
}

func (b *Buffer) access(n int64, write bool) int64 {
	if n <= 0 {
		return 0
	}
	if write {
		b.writes.Add(n)
	} else {
		b.reads.Add(n)
	}
	spilled := int64(float64(n) * b.spillFraction())
	b.spillWords.Add(spilled)

	bw := int64(b.cfg.Banks * b.cfg.PortsEach)
	cycles := (n + bw - 1) / bw
	// Perfectly interleaved streams would finish in n/bw cycles; the
	// residual partial cycle is the conflict cost we account.
	ideal := n / bw
	b.conflictCycles.Add(cycles - ideal)
	cycles += b.inject(n, write, bw)
	return cycles
}

// inject applies the attached fault plan to one access batch and
// returns the extra cycles the protection scheme spends recovering.
func (b *Buffer) inject(n int64, write bool, bw int64) int64 {
	p := b.faults
	if p == nil {
		return 0
	}
	cfg := p.Config()
	if b.eccPJ != nil {
		// Every protected access also reads/writes the check bits.
		b.eccPJ.Add(float64(n) * b.cfg.AccessPJ * cfg.ECC.CodeOverhead())
	}
	if write {
		// Flips manifest when a word is read back; writes just (re)encode.
		return 0
	}
	flips := p.SRAMFlips(n)
	if flips == 0 {
		return 0
	}
	fc := p.SRAMCounters()
	switch cfg.ECC {
	case fault.Parity:
		// Detect-only: one verification re-read per flagged word, then
		// the word is surfaced as uncorrectable.
		fc.AddInt("detected_errors", flips)
		fc.AddInt("uncorrectable_words", flips)
		fc.AddInt("recovery_reads", flips)
		b.reads.Add(flips)
		rec := (flips + bw - 1) / bw
		fc.AddInt("recovery_cycles", rec)
		return rec
	case fault.SECDED:
		double := p.SRAMDoubleFlips(flips)
		corrected := flips - double
		fc.AddInt("detected_errors", flips)
		fc.AddInt("corrected_words", corrected)
		fc.AddInt("uncorrectable_words", double)
		// Correction is a read-modify-write scrub per corrected word.
		fc.AddInt("recovery_reads", corrected)
		fc.AddInt("recovery_writes", corrected)
		b.reads.Add(corrected)
		b.writes.Add(corrected)
		rec := (2*corrected + bw - 1) / bw
		fc.AddInt("recovery_cycles", rec)
		return rec
	default:
		// No code bits: the flip sails through as corrupted data.
		fc.AddInt("silent_errors", flips)
		return 0
	}
}

// ReadCount returns total word reads so far.
func (b *Buffer) ReadCount() int64 { return b.reads.Load() }

// WriteCount returns total word writes so far.
func (b *Buffer) WriteCount() int64 { return b.writes.Load() }

// SpillWords returns accesses served by DRAM due to capacity misses.
func (b *Buffer) SpillWords() int64 { return b.spillWords.Load() }

// ConflictCycles returns cycles lost to partial-bandwidth cycles.
func (b *Buffer) ConflictCycles() int64 { return b.conflictCycles.Load() }

// EnergyPJ returns the access energy consumed so far. DRAM spills are
// charged at 100× the SRAM access energy (the usual off-chip ratio);
// with ECC modeled, the check-bit overhead of every access is included.
func (b *Buffer) EnergyPJ() float64 {
	onChip := float64(b.reads.Load()+b.writes.Load()-b.spillWords.Load()) * b.cfg.AccessPJ
	offChip := float64(b.spillWords.Load()) * b.cfg.AccessPJ * 100
	total := onChip + offChip
	if b.eccPJ != nil {
		total += b.eccPJ.Load()
	}
	return total
}

// Reset clears the activity counters (not the residency).
func (b *Buffer) Reset() {
	b.ctr.Reset()
}
