package sram

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestCapacityMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.CapacityBytes() != 1536*1024 {
		t.Fatalf("capacity %d bytes, want 1.5 MB", c.CapacityBytes())
	}
}

func TestAccessCounting(t *testing.T) {
	b := New(DefaultConfig())
	b.Read(100)
	b.Write(40)
	if b.ReadCount() != 100 || b.WriteCount() != 40 {
		t.Fatalf("counts %d/%d", b.ReadCount(), b.WriteCount())
	}
	b.Reset()
	if b.ReadCount() != 0 || b.WriteCount() != 0 || b.EnergyPJ() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestBandwidthCycles(t *testing.T) {
	b := New(Config{Banks: 48, Depth: 4096, AccessPJ: 50, PortsEach: 1})
	// 48 words in one cycle.
	if c := b.Read(48); c != 1 {
		t.Fatalf("48 reads took %d cycles", c)
	}
	// 49 words need two.
	if c := b.Read(49); c != 2 {
		t.Fatalf("49 reads took %d cycles", c)
	}
	if c := b.Read(0); c != 0 {
		t.Fatalf("0 reads took %d cycles", c)
	}
}

func TestEnergyScalesWithAccesses(t *testing.T) {
	b := New(DefaultConfig())
	b.Read(1000)
	e1 := b.EnergyPJ()
	b.Read(1000)
	if e2 := b.EnergyPJ(); e2 != 2*e1 {
		t.Fatalf("energy not linear: %v then %v", e1, e2)
	}
	if e1 != 1000*50 {
		t.Fatalf("energy %v, want 50 pJ/access", e1)
	}
}

func TestSpillAccounting(t *testing.T) {
	b := New(DefaultConfig())
	// Fits on-chip: no spill.
	b.SetResidency(b.Config().CapacityWords())
	if !b.Resident() {
		t.Fatal("exact fit reported as spilled")
	}
	b.Read(1000)
	if b.SpillWords() != 0 {
		t.Fatalf("resident working set spilled %d", b.SpillWords())
	}
	// Twice the capacity: half the accesses go off-chip.
	b.Reset()
	b.SetResidency(2 * b.Config().CapacityWords())
	if b.Resident() {
		t.Fatal("oversized set reported resident")
	}
	b.Read(1000)
	if b.SpillWords() != 500 {
		t.Fatalf("spilled %d of 1000, want 500", b.SpillWords())
	}
	// Off-chip accesses are 100× the energy.
	wantPJ := float64(500)*50 + float64(500)*50*100
	if b.EnergyPJ() != wantPJ {
		t.Fatalf("spill energy %v, want %v", b.EnergyPJ(), wantPJ)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-bank geometry accepted")
		}
	}()
	New(Config{Banks: 0, Depth: 10})
}

func TestSpillPartialResidency(t *testing.T) {
	b := New(DefaultConfig())
	// 4/3 of capacity resident: a quarter of every access spills.
	b.SetResidency(4 * b.Config().CapacityWords() / 3)
	b.Read(1200)
	if got := b.SpillWords(); got < 295 || got > 305 {
		t.Fatalf("spilled %d of 1200 at 25%% overflow, want ~300", got)
	}
	// Residency survives Reset; only the activity tally clears.
	b.Reset()
	if b.SpillWords() != 0 {
		t.Fatal("reset kept spill tally")
	}
	b.Read(1200)
	if b.SpillWords() == 0 {
		t.Fatal("reset dropped the declared residency")
	}
}

func TestConcurrentAccessSafe(t *testing.T) {
	// The documented contract: Read/Write and the getters are safe for
	// concurrent use. Run under -race and check nothing is lost.
	b := New(DefaultConfig())
	const workers, each = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				b.Read(3)
				b.Write(2)
				_ = b.EnergyPJ()
			}
		}()
	}
	wg.Wait()
	if b.ReadCount() != workers*each*3 || b.WriteCount() != workers*each*2 {
		t.Fatalf("lost updates: reads %d writes %d", b.ReadCount(), b.WriteCount())
	}
	if want := float64(workers*each*5) * b.Config().AccessPJ; b.EnergyPJ() != want {
		t.Fatalf("energy %v, want %v", b.EnergyPJ(), want)
	}
}

func TestCounterNodeMirrorsGetters(t *testing.T) {
	b := New(DefaultConfig())
	b.SetResidency(2 * b.Config().CapacityWords())
	b.Read(100)
	b.Write(60)
	rep := b.Counters().Snapshot()
	if rep.Name != "sram" {
		t.Fatalf("component name %q", rep.Name)
	}
	if rep.Int("reads") != b.ReadCount() || rep.Int("writes") != b.WriteCount() {
		t.Fatalf("registry reads/writes %d/%d vs getters %d/%d",
			rep.Int("reads"), rep.Int("writes"), b.ReadCount(), b.WriteCount())
	}
	if rep.Int("spill_words") != b.SpillWords() {
		t.Fatalf("registry spill %d vs getter %d", rep.Int("spill_words"), b.SpillWords())
	}
	if rep.Float("energy_pj") != b.EnergyPJ() {
		t.Fatalf("registry energy %v vs getter %v", rep.Float("energy_pj"), b.EnergyPJ())
	}
	if rep.Int("capacity_words") != int64(b.Config().CapacityWords()) {
		t.Fatalf("capacity %d", rep.Int("capacity_words"))
	}
}

// Property: cycles returned are always ceil(n / bandwidth).
func TestQuickCycleLaw(t *testing.T) {
	f := func(n uint16, banks, ports uint8) bool {
		bk := int(banks%64) + 1
		pt := int(ports%4) + 1
		b := New(Config{Banks: bk, Depth: 128, AccessPJ: 1, PortsEach: pt})
		words := int64(n)
		got := b.Read(words)
		bw := int64(bk * pt)
		want := (words + bw - 1) / bw
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
