package sram

import (
	"testing"
	"testing/quick"
)

func TestCapacityMatchesPaper(t *testing.T) {
	c := DefaultConfig()
	if c.CapacityBytes() != 1536*1024 {
		t.Fatalf("capacity %d bytes, want 1.5 MB", c.CapacityBytes())
	}
}

func TestAccessCounting(t *testing.T) {
	b := New(DefaultConfig())
	b.Read(100)
	b.Write(40)
	if b.ReadCount() != 100 || b.WriteCount() != 40 {
		t.Fatalf("counts %d/%d", b.ReadCount(), b.WriteCount())
	}
	b.Reset()
	if b.ReadCount() != 0 || b.WriteCount() != 0 || b.EnergyPJ() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestBandwidthCycles(t *testing.T) {
	b := New(Config{Banks: 48, Depth: 4096, AccessPJ: 50, PortsEach: 1})
	// 48 words in one cycle.
	if c := b.Read(48); c != 1 {
		t.Fatalf("48 reads took %d cycles", c)
	}
	// 49 words need two.
	if c := b.Read(49); c != 2 {
		t.Fatalf("49 reads took %d cycles", c)
	}
	if c := b.Read(0); c != 0 {
		t.Fatalf("0 reads took %d cycles", c)
	}
}

func TestEnergyScalesWithAccesses(t *testing.T) {
	b := New(DefaultConfig())
	b.Read(1000)
	e1 := b.EnergyPJ()
	b.Read(1000)
	if e2 := b.EnergyPJ(); e2 != 2*e1 {
		t.Fatalf("energy not linear: %v then %v", e1, e2)
	}
	if e1 != 1000*50 {
		t.Fatalf("energy %v, want 50 pJ/access", e1)
	}
}

func TestSpillAccounting(t *testing.T) {
	b := New(DefaultConfig())
	// Fits on-chip: no spill.
	b.SetResidency(b.Config().CapacityWords())
	if !b.Resident() {
		t.Fatal("exact fit reported as spilled")
	}
	b.Read(1000)
	if b.SpillWords() != 0 {
		t.Fatalf("resident working set spilled %d", b.SpillWords())
	}
	// Twice the capacity: half the accesses go off-chip.
	b.Reset()
	b.SetResidency(2 * b.Config().CapacityWords())
	if b.Resident() {
		t.Fatal("oversized set reported resident")
	}
	b.Read(1000)
	if b.SpillWords() != 500 {
		t.Fatalf("spilled %d of 1000, want 500", b.SpillWords())
	}
	// Off-chip accesses are 100× the energy.
	wantPJ := float64(500)*50 + float64(500)*50*100
	if b.EnergyPJ() != wantPJ {
		t.Fatalf("spill energy %v, want %v", b.EnergyPJ(), wantPJ)
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-bank geometry accepted")
		}
	}()
	New(Config{Banks: 0, Depth: 10})
}

// Property: cycles returned are always ceil(n / bandwidth).
func TestQuickCycleLaw(t *testing.T) {
	f := func(n uint16, banks, ports uint8) bool {
		bk := int(banks%64) + 1
		pt := int(ports%4) + 1
		b := New(Config{Banks: bk, Depth: 128, AccessPJ: 1, PortsEach: pt})
		words := int64(n)
		got := b.Read(words)
		bw := int64(bk * pt)
		want := (words + bw - 1) / bw
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
