// Package soc assembles the GeneSys SoC from its components — EvE,
// ADAM, the genome buffer SRAM, the NoC and the system-CPU threads —
// and accounts full generations of the Section IV-B walkthrough:
// inference over the population (steps 1–6), selection (step 7) and
// reproduction (steps 8–10).
package soc

import (
	"repro/internal/hw/adam"
	"repro/internal/hw/energy"
	"repro/internal/hw/eve"
	"repro/internal/hw/fault"
	"repro/internal/hw/hwsim"
	"repro/internal/hw/noc"
	"repro/internal/hw/sram"
	"repro/internal/trace"
)

// SoC is one configured GeneSys chip. It is the root of a hwsim
// component tree: its "soc" counter node adopts the EvE ("soc/eve",
// with "soc/eve/pe" and "soc/eve/noc" below it), ADAM ("soc/adam"),
// genome buffer ("soc/sram") and static technology ("soc/tech") nodes,
// so one snapshot yields the full chip ledger. When the design point
// configures a fault environment, the chip also owns a fault.Plan and
// adopts its reliability ledger ("soc/fault" with "sram"/"noc"/"eve"
// scopes below it); a zero fault.Config leaves the tree untouched.
type SoC struct {
	Cfg  energy.SoCConfig
	EvE  *eve.Engine
	ADAM *adam.Engine
	Buf  *sram.Buffer
	// Faults is the chip's fault injector; nil on a perfect chip.
	Faults *fault.Plan

	ctr *hwsim.Counters
}

// New builds the SoC for a design point.
func New(cfg energy.SoCConfig) *SoC {
	buf := sram.New(sram.Config{
		Banks:     cfg.Tech.SRAMBanks,
		Depth:     cfg.SRAMKB * 1024 / 8 / cfg.Tech.SRAMBanks,
		AccessPJ:  cfg.Tech.ESRAMAccess,
		PortsEach: 1,
	})
	kind := noc.PointToPoint
	if cfg.Multicast {
		kind = noc.MulticastTree
	}
	ecfg := eve.DefaultConfig(cfg.NumEvEPEs, kind)
	ecfg.NoC.SRAMReadsPerCycle = cfg.Tech.SRAMBanks
	ecfg.NoC.HopEnergyPJ = cfg.Tech.ENoCHop
	ecfg.OpEnergyPJ = cfg.Tech.EEvEOp
	acfg := adam.DefaultConfig()
	acfg.Rows, acfg.Cols = cfg.ADAMRows, cfg.ADAMCols
	acfg.MACEnergyPJ = cfg.Tech.EMAC
	acfg.SRAMAccessPJ = cfg.Tech.ESRAMAccess
	s := &SoC{
		Cfg:  cfg,
		EvE:  eve.New(ecfg, buf),
		ADAM: adam.New(acfg),
		Buf:  buf,
		ctr:  hwsim.New("soc"),
	}
	if cfg.Fault.Enabled() {
		s.Faults = fault.NewPlan(cfg.Fault)
		s.Buf.AttachFaults(s.Faults)
		s.EvE.AttachFaults(s.Faults)
		s.ctr.Adopt(s.Faults.Counters())
	}
	s.ctr.Adopt(s.EvE.Counters())
	s.ctr.Adopt(s.ADAM.Counters())
	s.ctr.Adopt(buf.Counters())
	s.ctr.Adopt(energy.NewModel(cfg).Counters())
	s.ctr.OnSnapshot(func(c *hwsim.Counters) {
		move := c.IntValue("scratchpad_to_adam_cycles") + c.IntValue("adam_to_scratchpad_cycles")
		if total := move + c.IntValue("inference_compute_cycles"); total > 0 {
			c.SetFloat("data_movement_fraction", float64(move)/float64(total))
		}
		if sec := c.FloatValue("total_seconds"); sec > 0 {
			c.SetFloat("average_power_mw", c.FloatValue("energy_pj")/sec*1e-9)
		}
	})
	return s
}

// Name is the chip's hwsim component name.
func (s *SoC) Name() string { return "soc" }

// Counters returns the live root of the chip's counter tree.
func (s *SoC) Counters() *hwsim.Counters { return s.ctr }

// Reset zeroes the whole tree (every component) for a fresh
// accounting interval, e.g. per-generation snapshots.
func (s *SoC) Reset() { s.ctr.Reset() }

// Snapshot returns the full chip ledger as a structured report tree.
func (s *SoC) Snapshot() hwsim.Report { return s.ctr.Snapshot() }

// GenerationReport accounts one full generation on the SoC.
type GenerationReport struct {
	Inference adam.Report
	Evolution eve.Report

	// Time decomposition (Fig. 10c): moving data between the scratchpad
	// and ADAM versus computing in ADAM, plus the evolution phase.
	ScratchpadToADAMCycles int64
	ADAMToScratchpadCycles int64
	InferenceComputeCycles int64

	// Totals. TotalCycles serializes the phases (the paper's reported
	// split); OverlappedCycles applies the step-10 pipelining remark
	// (children launch over ADAM as they become ready), bounded below
	// by the serial selector.
	TotalCycles      int64
	OverlappedCycles int64
	TotalSeconds     float64
	TotalEnergyPJ    float64
	AveragePowerMW   float64

	// FootprintBytes is the genome-buffer working set; Spilled reports
	// whether it exceeded on-chip capacity.
	FootprintBytes int
	Spilled        bool
}

// DataMovementFraction is the share of inference time spent on
// scratchpad↔ADAM transfers — the ~15% the paper reports for GeneSys.
func (r GenerationReport) DataMovementFraction() float64 {
	total := r.ScratchpadToADAMCycles + r.ADAMToScratchpadCycles + r.InferenceComputeCycles
	if total == 0 {
		return 0
	}
	return float64(r.ScratchpadToADAMCycles+r.ADAMToScratchpadCycles) / float64(total)
}

// RunGeneration accounts one generation: the population's inference
// jobs and its reproduction trace.
func (s *SoC) RunGeneration(jobs []adam.Job, g *trace.Generation, footprintBytes int) GenerationReport {
	s.Buf.SetResidency(footprintBytes / 8)

	var r GenerationReport
	r.FootprintBytes = footprintBytes
	r.Spilled = !s.Buf.Resident()

	r.Inference = s.ADAM.RunGeneration(jobs)
	if g != nil {
		r.Evolution = s.EvE.RunGeneration(g)
	}

	// Inference-phase transfers ride the banked scratchpad: reads feed
	// the array, writes return vertex values.
	bw := int64(s.Buf.Config().Banks * s.Buf.Config().PortsEach)
	r.ScratchpadToADAMCycles = (r.Inference.SRAMReads + bw - 1) / bw
	r.ADAMToScratchpadCycles = (r.Inference.SRAMWrites + bw - 1) / bw
	r.InferenceComputeCycles = r.Inference.ComputeCycles

	// Transfers overlap with compute only partially; the paper's
	// GeneSys split (Fig. 10c) counts them additively, as do we.
	r.TotalCycles = r.Inference.TotalCycles +
		r.ScratchpadToADAMCycles + r.ADAMToScratchpadCycles +
		r.Evolution.TotalCycles
	// Step 10 of the walkthrough: "as each child genome becomes ready,
	// it can be launched over ADAM once again" — with phase overlap
	// the generation takes the longer phase plus the serial selector,
	// not the sum.
	inferCycles := r.Inference.TotalCycles +
		r.ScratchpadToADAMCycles + r.ADAMToScratchpadCycles
	r.OverlappedCycles = r.Evolution.SelectorCycles + max(inferCycles,
		r.Evolution.TotalCycles-r.Evolution.SelectorCycles)
	r.TotalSeconds = s.Cfg.CyclesToSeconds(r.TotalCycles)
	r.TotalEnergyPJ = r.Inference.TotalEnergyPJ() + r.Evolution.TotalEnergyPJ()
	if r.TotalSeconds > 0 {
		// pJ / s = pW; convert to mW.
		r.AveragePowerMW = r.TotalEnergyPJ / r.TotalSeconds * 1e-9
	}
	s.publish(r)
	return r
}

// publish charges the SoC-level quantities of one generation into the
// registry (component-level quantities were charged by EvE/ADAM/the
// buffer as they ran).
func (s *SoC) publish(r GenerationReport) {
	c := s.ctr
	c.AddInt("generations", 1)
	c.AddInt("scratchpad_to_adam_cycles", r.ScratchpadToADAMCycles)
	c.AddInt("adam_to_scratchpad_cycles", r.ADAMToScratchpadCycles)
	c.AddInt("inference_compute_cycles", r.InferenceComputeCycles)
	c.AddInt("total_cycles", r.TotalCycles)
	c.AddInt("overlapped_cycles", r.OverlappedCycles)
	c.AddFloat("total_seconds", r.TotalSeconds)
	c.AddFloat("energy_pj", r.TotalEnergyPJ)
	c.SetInt("footprint_bytes", int64(r.FootprintBytes))
	if r.Spilled {
		c.AddInt("spills", 1)
	}
}
