package soc

import (
	"context"
	"testing"

	"repro/internal/evolve"
	"repro/internal/hw/adam"
	"repro/internal/hw/energy"
	"repro/internal/neat"
	"repro/internal/network"
	"repro/internal/trace"
)

// evolveWorkload runs a short real evolution and returns the SoC inputs
// for its last generation: inference jobs, the reproduction trace and
// the footprint.
func evolveWorkload(t testing.TB, workload string, pop int) ([]adam.Job, *trace.Generation, int) {
	t.Helper()
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = pop
	r, err := evolve.NewRunner(workload, cfg, 11)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{}
	r.SetRecorder(tr)
	var jobs []adam.Job
	for gen := 0; gen < 2; gen++ {
		// Build jobs from the population *before* it reproduces.
		jobs = jobs[:0]
		for _, g := range r.Pop.Genomes {
			n, err := network.New(g)
			if err != nil {
				t.Fatal(err)
			}
			jobs = append(jobs, adam.Job{Plan: n.BuildPlan(false), Steps: 50})
		}
		if _, err := r.Step(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	return jobs, tr.Last(), r.Pop.FootprintBytes()
}

func TestFullGenerationReport(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)
	s := New(energy.DefaultSoC())
	r := s.RunGeneration(jobs, gen, footprint)

	if r.TotalCycles <= 0 || r.TotalSeconds <= 0 {
		t.Fatalf("degenerate time: %+v", r)
	}
	if r.TotalEnergyPJ <= 0 {
		t.Fatal("no energy accounted")
	}
	if r.Inference.ComputeCycles <= 0 || r.Evolution.TotalCycles <= 0 {
		t.Fatal("phase cycles missing")
	}
	if r.Spilled {
		t.Fatal("cartpole population spilled the 1.5 MB buffer")
	}
	if f := r.DataMovementFraction(); f <= 0 || f >= 1 {
		t.Fatalf("data movement fraction %v", f)
	}
}

func TestAveragePowerBelowRoofline(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)
	cfg := energy.DefaultSoC()
	s := New(cfg)
	r := s.RunGeneration(jobs, gen, footprint)
	roof := cfg.RooflinePower().Total
	if r.AveragePowerMW <= 0 {
		t.Fatal("no average power")
	}
	// The paper calls the roofline "overly pessimistic"; the activity-
	// derived average must come in below it.
	if r.AveragePowerMW >= roof {
		t.Fatalf("average power %.1f mW above roofline %.1f mW",
			r.AveragePowerMW, roof)
	}
}

func TestRAMWorkloadOnChip(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "asterix-ram", 20)
	s := New(energy.DefaultSoC())
	r := s.RunGeneration(jobs, gen, footprint)
	// 20 asterix genomes ≈ 26k genes ≈ 200 KB: fits in 1.5 MB.
	if r.Spilled {
		t.Fatalf("footprint %d B spilled the buffer", r.FootprintBytes)
	}
	if r.Inference.DenseMACs <= 0 {
		t.Fatal("no inference work")
	}
}

func TestMulticastConfigFlowsThrough(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)
	mc := energy.DefaultSoC()
	p2p := energy.DefaultSoC()
	p2p.Multicast = false
	rMC := New(mc).RunGeneration(jobs, gen, footprint)
	rP2P := New(p2p).RunGeneration(jobs, gen, footprint)
	if rMC.Evolution.SRAMReads >= rP2P.Evolution.SRAMReads {
		t.Fatalf("multicast SoC reads %d not below p2p %d",
			rMC.Evolution.SRAMReads, rP2P.Evolution.SRAMReads)
	}
}

func TestOverlappedCyclesBounds(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)
	s := New(energy.DefaultSoC())
	r := s.RunGeneration(jobs, gen, footprint)
	if r.OverlappedCycles <= 0 {
		t.Fatal("no overlapped cycle count")
	}
	if r.OverlappedCycles > r.TotalCycles {
		t.Fatalf("overlap (%d) exceeds serial total (%d)",
			r.OverlappedCycles, r.TotalCycles)
	}
	// Overlap can never beat the longer phase alone.
	inferCycles := r.Inference.TotalCycles +
		r.ScratchpadToADAMCycles + r.ADAMToScratchpadCycles
	if r.OverlappedCycles < inferCycles || r.OverlappedCycles < r.Evolution.TotalCycles {
		t.Fatalf("overlap %d below a single phase (infer %d, evolve %d)",
			r.OverlappedCycles, inferCycles, r.Evolution.TotalCycles)
	}
}

func TestNilTraceGeneration(t *testing.T) {
	jobs, _, footprint := evolveWorkload(t, "cartpole", 10)
	s := New(energy.DefaultSoC())
	r := s.RunGeneration(jobs, nil, footprint)
	if r.Evolution.TotalCycles != 0 {
		t.Fatal("nil trace produced evolution cycles")
	}
	if r.Inference.ComputeCycles <= 0 {
		t.Fatal("inference missing")
	}
}
