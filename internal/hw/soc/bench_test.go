package soc

import (
	"testing"

	"repro/internal/hw/energy"
)

// BenchmarkSoCRunGeneration measures one full-chip generation replay —
// the unit the experiment harness fans out per design point: ADAM
// inference jobs plus the EvE reproduction trace of a real evolved RAM
// generation, charged into a fresh chip's counter tree. The evolution
// happens once outside the timed loop; the benchmark isolates the
// replay layer the parallel pipeline schedules.
func BenchmarkSoCRunGeneration(b *testing.B) {
	jobs, gen, footprint := evolveWorkload(b, "asterix-ram", 24)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(energy.DefaultSoC())
		s.RunGeneration(jobs, gen, footprint)
	}
}
