package soc

import (
	"testing"

	"repro/internal/hw/adam"
	"repro/internal/hw/energy"
	"repro/internal/hw/eve"
	"repro/internal/hw/hwsim"
	"repro/internal/hw/noc"
	"repro/internal/hw/sram"
)

// Compile-time conformance: every hardware block in the stack is a
// hwsim.Component.
var (
	_ hwsim.Component = (*SoC)(nil)
	_ hwsim.Component = (*eve.Engine)(nil)
	_ hwsim.Component = (*adam.Engine)(nil)
	_ hwsim.Component = (*sram.Buffer)(nil)
	_ hwsim.Component = (*noc.Network)(nil)
	_ hwsim.Component = (*energy.Model)(nil)
)

// TestSnapshotMatchesGenerationReport pins the registry to the legacy
// report structs: after one generation on a fresh chip, every value the
// GenerationReport carries must be readable — bit-identical — from the
// counter tree. This is the numeric-equivalence contract that lets the
// experiment generators traverse the registry instead of struct fields.
func TestSnapshotMatchesGenerationReport(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)
	s := New(energy.DefaultSoC())
	r := s.RunGeneration(jobs, gen, footprint)
	rep := s.Snapshot()

	ints := map[string]int64{
		"generations":               1,
		"scratchpad_to_adam_cycles": r.ScratchpadToADAMCycles,
		"adam_to_scratchpad_cycles": r.ADAMToScratchpadCycles,
		"inference_compute_cycles":  r.InferenceComputeCycles,
		"total_cycles":              r.TotalCycles,
		"overlapped_cycles":         r.OverlappedCycles,
		"footprint_bytes":           int64(r.FootprintBytes),
		"spills":                    0,
		"eve/total_cycles":          r.Evolution.TotalCycles,
		"eve/selector_cycles":       r.Evolution.SelectorCycles,
		"eve/stream_cycles":         r.Evolution.StreamCycles,
		"eve/waves":                 int64(r.Evolution.Waves),
		"eve/children":              int64(r.Evolution.Children),
		"eve/sram_reads":            r.Evolution.SRAMReads,
		"eve/sram_writes":           r.Evolution.SRAMWrites,
		"eve/pe/gene_ops":           r.Evolution.GeneOps,
		"adam/total_cycles":         r.Inference.TotalCycles,
		"adam/pass_cycles":          r.Inference.PassCycles,
		"adam/compute_cycles":       r.Inference.ComputeCycles,
		"adam/weight_load_cycles":   r.Inference.WeightLoadCycles,
		"adam/dense_macs":           r.Inference.DenseMACs,
		"adam/useful_macs":          r.Inference.UsefulMACs,
		"adam/sram_reads":           r.Inference.SRAMReads,
		"adam/sram_writes":          r.Inference.SRAMWrites,
	}
	for path, want := range ints {
		if got := rep.Int(path); got != want {
			t.Errorf("%s = %d, want %d", path, got, want)
		}
	}
	floats := map[string]float64{
		"total_seconds":          r.TotalSeconds,
		"energy_pj":              r.TotalEnergyPJ,
		"average_power_mw":       r.AveragePowerMW,
		"data_movement_fraction": r.DataMovementFraction(),
		"eve/energy_pj":          r.Evolution.TotalEnergyPJ(),
		"eve/noc_energy_pj":      r.Evolution.NoCEnergyPJ,
		"eve/sram_energy_pj":     r.Evolution.SRAMEnergyPJ,
		"eve/pe/energy_pj":       r.Evolution.PEEnergyPJ,
		"eve/utilization":        r.Evolution.Utilization,
		"adam/energy_pj":         r.Inference.TotalEnergyPJ(),
		"adam/mac_energy_pj":     r.Inference.MACEnergyPJ,
		"adam/sram_energy_pj":    r.Inference.SRAMEnergyPJ,
		"adam/utilization":       r.Inference.Utilization,
	}
	for path, want := range floats {
		if got := rep.Float(path); got != want {
			t.Errorf("%s = %v, want %v", path, got, want)
		}
	}
}

// TestResetGivesPerGenerationLedgers checks that Reset between
// generations makes consecutive snapshots independent: the second
// snapshot reflects only the second generation, and statics (tech
// areas, sram capacity) survive the reset.
func TestResetGivesPerGenerationLedgers(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)
	s := New(energy.DefaultSoC())

	s.RunGeneration(jobs, gen, footprint)
	first := s.Snapshot()
	s.Reset()
	r2 := s.RunGeneration(jobs, gen, footprint)
	second := s.Snapshot()

	if g := second.Int("generations"); g != 1 {
		t.Fatalf("second ledger counts %d generations, want 1", g)
	}
	if got, want := second.Int("total_cycles"), r2.TotalCycles; got != want {
		t.Fatalf("second ledger total_cycles %d, want %d", got, want)
	}
	if first.Int("total_cycles") != second.Int("total_cycles") {
		t.Fatalf("same generation replayed, ledgers differ: %d vs %d",
			first.Int("total_cycles"), second.Int("total_cycles"))
	}
	if a := second.Float("tech/area/total_mm2"); a <= 0 {
		t.Fatalf("tech statics lost across reset: total area %v", a)
	}
	if c := second.Int("sram/capacity_words"); c <= 0 {
		t.Fatalf("sram capacity lost across reset: %d", c)
	}
}
