package soc

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/hw/energy"
	"repro/internal/hw/fault"
)

// faultySoC is a design point with every fault class active. The
// rates are far above field rates so that the short test workload
// (tens of SRAM words, hundreds of flits) still exercises every
// detection/correction path.
func faultySoC(ecc fault.ECC) energy.SoCConfig {
	cfg := energy.DefaultSoC()
	cfg.Fault = fault.Config{
		Seed:              99,
		SRAMWordFlip:      0.2,
		DoubleBitFraction: 0.1,
		ECC:               ecc,
		NoCFlitDrop:       1e-2,
		PEStuckAt:         0.05,
	}
	return cfg
}

// TestZeroFaultConfigIsStructuralNoOp pins the acceptance criterion
// that an all-zero fault.Config changes nothing: no injector is built
// and the snapshot tree is byte-identical to the pre-fault-layer chip
// (no "fault" node, no ECC counters anywhere).
func TestZeroFaultConfigIsStructuralNoOp(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)
	s := New(energy.DefaultSoC())
	if s.Faults != nil {
		t.Fatal("zero fault config built an injector")
	}
	s.RunGeneration(jobs, gen, footprint)
	snap := s.Snapshot()
	for _, child := range snap.Children {
		if child.Name == "fault" {
			t.Fatal("zero fault config grew a fault node")
		}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte("fault")) || bytes.Contains(data, []byte("ecc")) {
		t.Fatalf("fault bookkeeping leaked into a fault-free snapshot")
	}
}

// TestFaultInjectionDeterministic pins the other half of the
// criterion: the same seed replaying the same generation yields
// byte-identical snapshots, fault sites included.
func TestFaultInjectionDeterministic(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)
	run := func() []byte {
		s := New(faultySoC(fault.SECDED))
		s.RunGeneration(jobs, gen, footprint)
		data, err := json.Marshal(s.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed, different snapshots:\n%s\nvs\n%s", a, b)
	}
}

// TestFaultLedgerPopulated exercises every injection path end to end
// and checks the reliability ledger shows up under soc/fault/...
func TestFaultLedgerPopulated(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)
	s := New(faultySoC(fault.SECDED))
	if s.Faults == nil {
		t.Fatal("no injector for a faulty config")
	}
	s.RunGeneration(jobs, gen, footprint)
	snap := s.Snapshot()

	if snap.Int("fault/sram/flipped_words") == 0 {
		t.Fatal("no SRAM flips over a full generation")
	}
	if snap.Int("fault/sram/detected_errors") == 0 {
		t.Fatal("SECDED detected nothing")
	}
	if snap.Int("fault/sram/corrected_words") == 0 {
		t.Fatal("SECDED corrected nothing")
	}
	if snap.Float("sram/ecc_overhead_pj") <= 0 {
		t.Fatal("no ECC code-bit energy charged")
	}
	if snap.Int("fault/noc/dropped_flits") == 0 {
		t.Fatal("no NoC drops over a full generation")
	}
	if snap.Int("fault/noc/retransmitted_flits") == 0 {
		t.Fatal("drops were never retransmitted")
	}
	if snap.Int("fault/eve/dead_pes") == 0 {
		t.Fatal("no dead PEs at 5% stuck-at over 256 PEs")
	}
	if snap.Int("fault/eve/redispatched_children") == 0 {
		t.Fatal("dead PEs but no re-dispatched children")
	}
	if snap.Float("fault/eve/imbalance") < 1 {
		t.Fatalf("imbalance %v < 1 with dead PEs", snap.Float("fault/eve/imbalance"))
	}
}

// TestFaultsCostTimeAndEnergy: recovery is not free — the faulty chip
// must run longer and hotter than the clean one, and the unprotected
// chip must log silent errors instead of corrections.
func TestFaultsCostTimeAndEnergy(t *testing.T) {
	jobs, gen, footprint := evolveWorkload(t, "cartpole", 30)

	clean := New(energy.DefaultSoC())
	cr := clean.RunGeneration(jobs, gen, footprint)

	secded := New(faultySoC(fault.SECDED))
	sr := secded.RunGeneration(jobs, gen, footprint)

	unprot := New(faultySoC(fault.Unprotected))
	unprot.RunGeneration(jobs, gen, footprint)

	if sr.TotalCycles <= cr.TotalCycles {
		t.Fatalf("SECDED chip not slower: %d vs clean %d", sr.TotalCycles, cr.TotalCycles)
	}
	if sr.TotalEnergyPJ <= cr.TotalEnergyPJ {
		t.Fatalf("SECDED chip not hotter: %v vs clean %v", sr.TotalEnergyPJ, cr.TotalEnergyPJ)
	}
	// SRAM protection costs are charged inside the buffer's counter
	// node (the legacy GenerationReport recomputes SRAM energy from
	// access counts alone), so the code-bit ordering is checked on the
	// snapshot: unprotected < SECDED, clean < SECDED.
	ss := secded.Snapshot()
	us := unprot.Snapshot()
	cs := clean.Snapshot()
	if us.Float("sram/energy_pj") >= ss.Float("sram/energy_pj") {
		t.Fatalf("unprotected SRAM energy %v >= SECDED %v: code bits were free",
			us.Float("sram/energy_pj"), ss.Float("sram/energy_pj"))
	}
	if cs.Float("sram/energy_pj") >= ss.Float("sram/energy_pj") {
		t.Fatalf("clean SRAM energy %v >= SECDED %v: scrub/code bits were free",
			cs.Float("sram/energy_pj"), ss.Float("sram/energy_pj"))
	}
	if us.Int("fault/sram/silent_errors") == 0 {
		t.Fatal("unprotected chip logged no silent errors")
	}
	if us.Int("fault/sram/corrected_words") != 0 {
		t.Fatal("unprotected chip corrected words")
	}
}
