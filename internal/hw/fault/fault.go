// Package fault is the reliability model of the GeneSys SoC: a seeded,
// deterministic fault injector for the physical substrate an always-on
// edge chip actually lives on — SRAM soft errors in the genome buffer,
// flit loss on the EvE interconnect, and hard (stuck-at) failures of
// EvE processing elements — together with the bookkeeping scopes the
// protection models charge their recovery work into.
//
// Design:
//
//   - Config is plain data on energy.SoCConfig. The zero value means a
//     perfect chip: no Plan is built, no counters appear, and every
//     hardware model is byte-identical to the fault-free stack.
//   - Plan is the live injector one chip instance owns. Every fault
//     decision is a pure function of (Config.Seed, stream id, event
//     index), so two chips with the same seed replaying the same work
//     suffer identical fault sites — fault sweeps are reproducible and
//     a re-run of a study sees the same broken bits.
//   - Plan is a hwsim.Component named "fault". The SoC adopts it, so
//     every detection/correction/retransmission shows up in the chip
//     snapshot under "soc/fault/sram", "soc/fault/noc" and
//     "soc/fault/eve" — a full reliability ledger next to the
//     performance ledger.
//
// The protection models themselves live with the blocks they protect:
// ECC in sram.Buffer, bounded retransmit in noc.Network, PE remapping
// in eve.Engine. This package only decides *where* faults strike and
// owns the ledger they are reported in.
//
// Determinism contract: fault draws are sequenced by per-stream atomic
// indices, so a deterministic access sequence yields deterministic
// fault sites. The SoC models issue accesses serially per chip; a
// buffer shared across concurrently-running chips would interleave
// draws nondeterministically — give each parallel design point its own
// Plan (its own chip), as soc.New does.
package fault

import (
	"sync/atomic"

	"repro/internal/hw/hwsim"
)

// ECC selects the genome-buffer protection scheme.
type ECC int

// Protection schemes.
const (
	// Unprotected stores bare words: every bit flip is a silent error.
	Unprotected ECC = iota
	// Parity adds one parity bit per 64-bit word: single-bit flips are
	// detected (and re-read to confirm) but cannot be corrected.
	Parity
	// SECDED adds an 8-bit Hamming code per 64-bit word: single-bit
	// flips are corrected with a read-modify-write scrub; double-bit
	// flips are detected but uncorrectable.
	SECDED
)

// String names the scheme.
func (e ECC) String() string {
	switch e {
	case Parity:
		return "parity"
	case SECDED:
		return "secded"
	default:
		return "unprotected"
	}
}

// CodeOverhead is the extra-bit fraction the scheme adds to every
// access (check bits per 64-bit word).
func (e ECC) CodeOverhead() float64 {
	switch e {
	case Parity:
		return 1.0 / 64
	case SECDED:
		return 8.0 / 64
	default:
		return 0
	}
}

// Config fixes the fault environment of one chip. All rates are
// per-event probabilities; the zero value disables injection entirely.
type Config struct {
	// Seed drives every fault-site decision. Two chips with equal
	// Config replay identical faults for identical work.
	Seed uint64

	// SRAMWordFlip is the probability that one genome-buffer word
	// access returns a word with a flipped bit.
	SRAMWordFlip float64
	// DoubleBitFraction is the conditional probability that a flipped
	// word has a second flipped bit (the SECDED-uncorrectable case).
	DoubleBitFraction float64
	// ECC selects the buffer protection scheme (modeled only when
	// injection is enabled).
	ECC ECC

	// NoCFlitDrop is the probability that one gene delivery (flit) is
	// dropped in the EvE interconnect and must be retransmitted.
	NoCFlitDrop float64
	// MaxRetries bounds NoC retransmission attempts per wave; flits
	// still outstanding afterwards are lost. 0 selects the default (3).
	MaxRetries int
	// RetryBackoffCycles is the base backoff charged before each
	// retransmission attempt (doubling per attempt). 0 selects the
	// default (8).
	RetryBackoffCycles int

	// PEStuckAt is the probability that one EvE PE is dead (stuck-at
	// fault) for the chip's whole lifetime. Its children are
	// re-dispatched to live PEs.
	PEStuckAt float64
}

// Enabled reports whether any fault injection is configured. A false
// return is the contract that the whole fault layer is a no-op.
func (c Config) Enabled() bool {
	return c.SRAMWordFlip > 0 || c.NoCFlitDrop > 0 || c.PEStuckAt > 0
}

// MaxRetriesOrDefault returns the bounded retransmit budget.
func (c Config) MaxRetriesOrDefault() int {
	if c.MaxRetries <= 0 {
		return 3
	}
	return c.MaxRetries
}

// BackoffCyclesOrDefault returns the base retransmit backoff.
func (c Config) BackoffCyclesOrDefault() int64 {
	if c.RetryBackoffCycles <= 0 {
		return 8
	}
	return int64(c.RetryBackoffCycles)
}

// Stream ids separate the independent fault sequences. Each stream has
// its own event index so injection in one component never perturbs the
// sites in another.
const (
	streamSRAM uint64 = iota + 1
	streamSRAMDouble
	streamNoC
	streamPE
)

// Plan is one chip's live fault injector and reliability ledger.
type Plan struct {
	cfg Config
	ctr *hwsim.Counters

	sramC, nocC, eveC *hwsim.Counters

	sramIdx, dblIdx, nocIdx atomic.Uint64
}

// NewPlan builds the injector for a fault environment.
func NewPlan(cfg Config) *Plan {
	p := &Plan{cfg: cfg, ctr: hwsim.New("fault")}
	p.sramC = p.ctr.Child("sram")
	p.nocC = p.ctr.Child("noc")
	p.eveC = p.ctr.Child("eve")
	return p
}

// Config returns the fault environment.
func (p *Plan) Config() Config { return p.cfg }

// Name is the hwsim component name.
func (p *Plan) Name() string { return "fault" }

// Counters returns the live reliability ledger root.
func (p *Plan) Counters() *hwsim.Counters { return p.ctr }

// Reset zeroes the ledger. The injector's event indices keep
// advancing: a per-generation ledger reset does not replay faults.
func (p *Plan) Reset() { p.ctr.Reset() }

// SRAMCounters is the "fault/sram" scope the buffer's ECC model
// charges detection, correction and scrub work into.
func (p *Plan) SRAMCounters() *hwsim.Counters { return p.sramC }

// NoCCounters is the "fault/noc" scope the retransmit model charges.
func (p *Plan) NoCCounters() *hwsim.Counters { return p.nocC }

// EvECounters is the "fault/eve" scope the PE-remap model charges.
func (p *Plan) EvECounters() *hwsim.Counters { return p.eveC }

// uniform returns a deterministic draw in [0, 1) for event i of the
// given stream: a splitmix64 finalizer over (seed, stream, index).
func (p *Plan) uniform(stream, i uint64) float64 {
	x := p.cfg.Seed ^ stream*0x9E3779B97F4A7C15 ^ i*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// count converts a batch of n events with per-event probability rate
// into a fault count: the expectation, with the fractional remainder
// resolved by one deterministic draw from the stream. This matches the
// batch granularity the analytical models account at while keeping the
// long-run rate exact.
func (p *Plan) count(stream uint64, idx *atomic.Uint64, rate float64, n int64) int64 {
	if rate <= 0 || n <= 0 {
		return 0
	}
	exp := float64(n) * rate
	k := int64(exp)
	if p.uniform(stream, idx.Add(1)) < exp-float64(k) {
		k++
	}
	if k > n {
		k = n
	}
	return k
}

// SRAMFlips draws how many of n word accesses return a flipped word,
// charging the raw event to the ledger.
func (p *Plan) SRAMFlips(n int64) int64 {
	flips := p.count(streamSRAM, &p.sramIdx, p.cfg.SRAMWordFlip, n)
	if flips > 0 {
		p.sramC.AddInt("flipped_words", flips)
	}
	return flips
}

// SRAMDoubleFlips draws how many of the flipped words carry a second
// flipped bit (uncorrectable under SECDED).
func (p *Plan) SRAMDoubleFlips(flips int64) int64 {
	return p.count(streamSRAMDouble, &p.dblIdx, p.cfg.DoubleBitFraction, flips)
}

// NoCDrops draws how many of n flit deliveries are dropped, charging
// the raw event to the ledger.
func (p *Plan) NoCDrops(n int64) int64 {
	drops := p.count(streamNoC, &p.nocIdx, p.cfg.NoCFlitDrop, n)
	if drops > 0 {
		p.nocC.AddInt("dropped_flits", drops)
	}
	return drops
}

// DeadPEs returns the stuck-at map for a pool of numPEs processing
// elements. The map is a pure function of the seed (lifetime hard
// faults, not transient ones), so every engine built on this plan
// agrees on which PEs are dead.
func (p *Plan) DeadPEs(numPEs int) []bool {
	dead := make([]bool, numPEs)
	if p.cfg.PEStuckAt <= 0 {
		return dead
	}
	for i := range dead {
		dead[i] = p.uniform(streamPE, uint64(i)) < p.cfg.PEStuckAt
	}
	return dead
}
