package fault

import "testing"

func TestConfigEnabled(t *testing.T) {
	if (Config{}).Enabled() {
		t.Fatal("zero config must disable injection")
	}
	if (Config{ECC: SECDED, Seed: 9}).Enabled() {
		t.Fatal("ECC without rates must not enable injection")
	}
	for _, c := range []Config{
		{SRAMWordFlip: 1e-6},
		{NoCFlitDrop: 1e-6},
		{PEStuckAt: 1e-3},
	} {
		if !c.Enabled() {
			t.Fatalf("%+v not enabled", c)
		}
	}
}

func TestDefaults(t *testing.T) {
	if got := (Config{}).MaxRetriesOrDefault(); got != 3 {
		t.Fatalf("default retries %d", got)
	}
	if got := (Config{MaxRetries: 7}).MaxRetriesOrDefault(); got != 7 {
		t.Fatalf("retries %d", got)
	}
	if got := (Config{}).BackoffCyclesOrDefault(); got != 8 {
		t.Fatalf("default backoff %d", got)
	}
	if Parity.CodeOverhead() >= SECDED.CodeOverhead() {
		t.Fatal("SECDED must cost more code bits than parity")
	}
	if Unprotected.CodeOverhead() != 0 {
		t.Fatal("unprotected has no code bits")
	}
}

// TestDeterministicDraws pins the injector's core contract: two plans
// with the same config replay identical fault sites for an identical
// access sequence.
func TestDeterministicDraws(t *testing.T) {
	cfg := Config{Seed: 42, SRAMWordFlip: 1e-3, NoCFlitDrop: 1e-3, PEStuckAt: 0.05}
	a, b := NewPlan(cfg), NewPlan(cfg)
	batches := []int64{100, 1, 5000, 37, 100000}
	for i, n := range batches {
		if fa, fb := a.SRAMFlips(n), b.SRAMFlips(n); fa != fb {
			t.Fatalf("batch %d: flips %d vs %d", i, fa, fb)
		}
		if da, db := a.NoCDrops(n), b.NoCDrops(n); da != db {
			t.Fatalf("batch %d: drops %d vs %d", i, da, db)
		}
	}
	da, db := a.DeadPEs(256), b.DeadPEs(256)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("dead map diverges at PE %d", i)
		}
	}
	// And the repeated call on the same plan agrees too (pure function
	// of the seed, not of draw history).
	dc := a.DeadPEs(256)
	for i := range da {
		if da[i] != dc[i] {
			t.Fatalf("dead map not stable at PE %d", i)
		}
	}
}

func TestSeedChangesSites(t *testing.T) {
	// A fractional expectation (0.7 per batch) forces the per-batch
	// remainder draw to decide, which is where seeds diverge.
	a := NewPlan(Config{Seed: 1, SRAMWordFlip: 7e-4})
	b := NewPlan(Config{Seed: 2, SRAMWordFlip: 7e-4})
	same := true
	for i := 0; i < 64; i++ {
		if a.SRAMFlips(1000) != b.SRAMFlips(1000) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical flip sequences")
	}
}

// TestRateAccuracy checks the expectation-plus-remainder draw tracks
// the configured rate over many batches.
func TestRateAccuracy(t *testing.T) {
	p := NewPlan(Config{Seed: 3, SRAMWordFlip: 2.5e-4})
	var flips, total int64
	for i := 0; i < 2000; i++ {
		flips += p.SRAMFlips(1000)
		total += 1000
	}
	got := float64(flips) / float64(total)
	if got < 2e-4 || got > 3e-4 {
		t.Fatalf("long-run flip rate %.3g, want ~2.5e-4", got)
	}
	if v := p.SRAMCounters().IntValue("flipped_words"); v != flips {
		t.Fatalf("ledger %d vs drawn %d", v, flips)
	}
}

func TestZeroRateDrawsNothing(t *testing.T) {
	p := NewPlan(Config{Seed: 4})
	if p.SRAMFlips(1e6) != 0 || p.NoCDrops(1e6) != 0 {
		t.Fatal("zero rates must never fire")
	}
	for _, d := range p.DeadPEs(64) {
		if d {
			t.Fatal("zero stuck-at rate produced a dead PE")
		}
	}
}

// TestResetKeepsIndices: resetting the ledger must not rewind the
// event indices — a per-generation counter reset does not replay the
// same faults.
func TestResetKeepsIndices(t *testing.T) {
	cfg := Config{Seed: 5, SRAMWordFlip: 0.01}
	a, b := NewPlan(cfg), NewPlan(cfg)
	a.SRAMFlips(1000)
	b.SRAMFlips(1000)
	a.Reset()
	if a.SRAMCounters().IntValue("flipped_words") != 0 {
		t.Fatal("reset did not clear the ledger")
	}
	if fa, fb := a.SRAMFlips(1000), b.SRAMFlips(1000); fa != fb {
		t.Fatalf("reset perturbed the draw stream: %d vs %d", fa, fb)
	}
}
