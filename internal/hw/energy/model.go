package energy

import "repro/internal/hw/hwsim"

// Model exposes a design point's static technology figures — the
// Fig. 8 area and roofline-power breakdowns — as a hwsim component
// named "tech", so design-point constants travel in the same report
// tree as the activity counters they contextualize. The values are
// refreshed at every snapshot, so they survive tree resets.
type Model struct {
	cfg SoCConfig
	ctr *hwsim.Counters
}

// NewModel wraps a design point.
func NewModel(cfg SoCConfig) *Model {
	m := &Model{cfg: cfg, ctr: hwsim.New("tech")}
	m.ctr.OnSnapshot(func(c *hwsim.Counters) { m.fill() })
	m.fill()
	return m
}

func (m *Model) fill() {
	a := m.cfg.Area()
	p := m.cfg.RooflinePower()
	c := m.ctr
	area := c.Child("area")
	area.SetFloat("eve_mm2", a.EvE)
	area.SetFloat("adam_mm2", a.ADAM)
	area.SetFloat("sram_mm2", a.SRAM)
	area.SetFloat("cpu_mm2", a.CPU)
	area.SetFloat("noc_mm2", a.NoC)
	area.SetFloat("total_mm2", a.Total)
	power := c.Child("power")
	power.SetFloat("eve_mw", p.EvE)
	power.SetFloat("adam_mw", p.ADAM)
	power.SetFloat("sram_mw", p.SRAM)
	power.SetFloat("cpu_mw", p.CPU)
	power.SetFloat("total_mw", p.Total)
	c.SetFloat("frequency_hz", m.cfg.Tech.FrequencyHz)
	c.SetInt("eve_pes", int64(m.cfg.NumEvEPEs))
	c.SetInt("adam_macs", int64(m.cfg.MACs()))
	c.SetInt("sram_banks", int64(m.cfg.Tech.SRAMBanks))
	c.SetInt("sram_kb", int64(m.cfg.SRAMKB))
}

// SoC returns the wrapped design point.
func (m *Model) SoC() SoCConfig { return m.cfg }

// Name is the hwsim component name.
func (m *Model) Name() string { return "tech" }

// Counters returns the live registry node.
func (m *Model) Counters() *hwsim.Counters { return m.ctr }

// Reset re-derives the static figures (they carry no activity).
func (m *Model) Reset() {
	m.ctr.Reset()
	m.fill()
}
