package energy

import (
	"math"
	"testing"
)

func TestDefaultSoCMatchesPaperParameters(t *testing.T) {
	c := DefaultSoC()
	if c.NumEvEPEs != 256 {
		t.Fatalf("EvE PEs = %d", c.NumEvEPEs)
	}
	if c.MACs() != 1024 {
		t.Fatalf("ADAM MACs = %d", c.MACs())
	}
	if c.SRAMKB != 1536 {
		t.Fatalf("SRAM = %d KB", c.SRAMKB)
	}
	if c.Tech.SRAMBanks != 48 || c.Tech.SRAMDepth != 4096 {
		t.Fatalf("SRAM geometry %d×%d", c.Tech.SRAMBanks, c.Tech.SRAMDepth)
	}
	if c.Tech.FrequencyHz != 200e6 {
		t.Fatalf("frequency %v", c.Tech.FrequencyHz)
	}
}

func TestAreaMatchesFig8a(t *testing.T) {
	c := DefaultSoC()
	a := c.Area()
	// Paper: EvE 0.89 mm², ADAM 0.25 mm², SoC 2.45 mm².
	if math.Abs(a.EvE-0.89) > 0.01 {
		t.Fatalf("EvE area %.3f, paper 0.89", a.EvE)
	}
	if math.Abs(a.ADAM-0.25) > 0.01 {
		t.Fatalf("ADAM area %.3f, paper 0.25", a.ADAM)
	}
	if math.Abs(a.Total-2.45) > 0.15 {
		t.Fatalf("SoC area %.3f, paper 2.45", a.Total)
	}
}

func TestPowerMatchesFig8a(t *testing.T) {
	p := DefaultSoC().RooflinePower()
	if math.Abs(p.Total-947.5) > 15 {
		t.Fatalf("roofline power %.1f mW, paper 947.5", p.Total)
	}
	// With 256 PEs the paper stays under 1 W.
	if p.Total >= 1000 {
		t.Fatalf("256-PE design point exceeds 1 W: %.1f", p.Total)
	}
}

func TestPowerSweepMonotonic(t *testing.T) {
	prev := 0.0
	for _, n := range []int{2, 4, 8, 16, 32, 64, 128, 256, 512} {
		c := DefaultSoC()
		c.NumEvEPEs = n
		p := c.RooflinePower().Total
		if p <= prev {
			t.Fatalf("power not increasing at %d PEs: %v after %v", n, p, prev)
		}
		prev = p
	}
	// 512 PEs exceed 1 W (the paper picks 256 to stay under it).
	c := DefaultSoC()
	c.NumEvEPEs = 512
	if c.RooflinePower().Total <= 1000 {
		t.Fatalf("512-PE power %.1f should exceed 1 W", c.RooflinePower().Total)
	}
}

func TestAreaSweepMonotonic(t *testing.T) {
	prev := 0.0
	for _, n := range []int{2, 8, 64, 256, 512} {
		c := DefaultSoC()
		c.NumEvEPEs = n
		a := c.Area().Total
		if a <= prev {
			t.Fatalf("area not increasing at %d PEs", n)
		}
		prev = a
	}
}

func TestSRAMWords(t *testing.T) {
	c := DefaultSoC()
	if c.SRAMWords() != 48*4096 {
		t.Fatalf("SRAM words %d, want 48×4096", c.SRAMWords())
	}
}

func TestCyclesToSeconds(t *testing.T) {
	c := DefaultSoC()
	if got := c.CyclesToSeconds(200e6); got != 1.0 {
		t.Fatalf("200M cycles = %v s at 200 MHz", got)
	}
}

func TestGatedPower(t *testing.T) {
	c := DefaultSoC()
	roof := c.RooflinePower().Total
	if got := c.GatedPower(1, 0.03); math.Abs(got-roof) > 1e-9 {
		t.Fatalf("full duty = %v, want roofline %v", got, roof)
	}
	idle := c.GatedPower(0, 0.03)
	if math.Abs(idle-0.03*roof) > 1e-9 {
		t.Fatalf("idle power %v, want 3%% of roofline", idle)
	}
	// A GeneSys computing 1 ms/generation against a 100 ms real-world
	// environment runs near the leakage floor — the Section VI-D point.
	slow := c.GatedPower(0.01, 0.03)
	if slow > 0.05*roof {
		t.Fatalf("slow-environment power %v too high", slow)
	}
	// Inputs are clamped, never negative power.
	if c.GatedPower(-1, -1) != 0 {
		t.Fatal("clamping failed")
	}
}
