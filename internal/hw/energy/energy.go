// Package energy is the technology model of the GeneSys SoC: the 15 nm
// area, power and per-operation energy constants behind every hardware
// number this repository reports.
//
// The paper implements the SoC in Nangate 15 nm FreePDK and publishes
// post-synthesis figures (Fig. 8a): a 59 µm × 59 µm EvE PE, a
// 15 µm × 15 µm ADAM MAC PE, 0.89 mm² for 256 EvE PEs, 0.25 mm² for the
// 32×32 ADAM array, 2.45 mm² and 947.5 mW for the full SoC at 200 MHz
// and 1.0 V with 1.5 MB of SRAM in 48 banks. We cannot re-run synthesis
// here, so this package encodes those published constants directly and
// derives the component-wise models the paper sweeps (power and area as
// a function of EvE PE count, Fig. 8b/8c; SRAM energy, Fig. 11c).
package energy

import "repro/internal/hw/fault"

// Tech holds the per-component constants of the 15 nm implementation.
// All areas in mm², powers in mW, energies in pJ, at 200 MHz / 1.0 V.
type Tech struct {
	// EvEPEArea is one EvE processing element (59 µm × 59 µm).
	EvEPEArea float64
	// MACPEArea is one ADAM MAC element (15 µm × 15 µm).
	MACPEArea float64
	// SRAMAreaPerKB is genome-buffer array area per kilobyte.
	SRAMAreaPerKB float64
	// CPUArea is the Cortex-M0 system CPU.
	CPUArea float64
	// NoCAreaPerPE is the interconnect overhead per EvE PE.
	NoCAreaPerPE float64

	// EvEPEPower is dynamic power of one busy EvE PE.
	EvEPEPower float64
	// MACPEPower is dynamic power of one busy MAC.
	MACPEPower float64
	// SRAMPowerPerBank is one active SRAM bank.
	SRAMPowerPerBank float64
	// CPUPower is the M0 running the selector/vectorize threads.
	CPUPower float64

	// ESRAMAccess is the energy of one 64-bit genome-buffer access.
	ESRAMAccess float64
	// EEvEOp is one gene-level crossover/mutation pipeline operation.
	EEvEOp float64
	// EMAC is one multiply-accumulate in the systolic array.
	EMAC float64
	// ENoCHop is moving one 64-bit gene across one interconnect hop.
	ENoCHop float64

	// FrequencyHz is the SoC clock.
	FrequencyHz float64
	// SRAMBanks and SRAMDepth give the genome buffer geometry
	// (48 banks × 4096 entries × 64 bits = 1.5 MB).
	SRAMBanks int
	SRAMDepth int
}

// Default15nm returns the technology constants calibrated against the
// paper's published Fig. 8 values.
func Default15nm() Tech {
	return Tech{
		// 59 µm × 59 µm = 3.481e-3 mm²; ×256 = 0.891 mm² (paper: 0.89).
		EvEPEArea: 59e-3 * 59e-3,
		// 15 µm × 15 µm = 2.25e-4 mm²; ×1024 = 0.230 mm² (paper: 0.25,
		// which includes array wiring; we fold the remainder into the
		// per-PE figure).
		MACPEArea:     0.25 / 1024,
		SRAMAreaPerKB: 0.72 / 1536, // ~0.72 mm² for the 1.5 MB buffer
		CPUArea:       0.10,
		NoCAreaPerPE:  1.6e-3,

		// Power split reproducing the 947.5 mW roofline at 256 EvE PEs:
		// EvE 256×1.45 = 371 mW, ADAM 1024×0.30 = 307 mW, SRAM
		// 48×5.2 = 250 mW, M0 ≈ 20 mW → 948 mW.
		EvEPEPower:       1.45,
		MACPEPower:       0.30,
		SRAMPowerPerBank: 5.2,
		CPUPower:         20,

		ESRAMAccess: 50,  // pJ per 64-bit access (array + periphery)
		EEvEOp:      1.2, // pJ per gene op in the 4-stage pipeline
		EMAC:        0.35,
		ENoCHop:     0.15,

		FrequencyHz: 200e6,
		SRAMBanks:   48,
		SRAMDepth:   4096,
	}
}

// SoCConfig is one design point of the GeneSys SoC.
type SoCConfig struct {
	Tech Tech
	// NumEvEPEs is the EvE pool size (paper default 256).
	NumEvEPEs int
	// ADAMRows/ADAMCols give the systolic array shape (32 × 32).
	ADAMRows, ADAMCols int
	// SRAMKB is the genome buffer capacity in KB (1536 = 1.5 MB).
	SRAMKB int
	// Multicast selects the multicast-tree NoC (vs point-to-point).
	Multicast bool
	// Fault is the chip's fault environment. The zero value is a
	// perfect chip: no injector is built and the counter tree is
	// byte-identical to a fault-free build.
	Fault fault.Config
}

// DefaultSoC returns the paper's chosen design point: 256 EvE PEs,
// 32×32 ADAM, 1.5 MB SRAM, multicast tree.
func DefaultSoC() SoCConfig {
	return SoCConfig{
		Tech:      Default15nm(),
		NumEvEPEs: 256,
		ADAMRows:  32,
		ADAMCols:  32,
		SRAMKB:    1536,
		Multicast: true,
	}
}

// MACs returns the ADAM MAC count.
func (c SoCConfig) MACs() int { return c.ADAMRows * c.ADAMCols }

// SRAMWords returns the genome-buffer capacity in 64-bit words.
func (c SoCConfig) SRAMWords() int { return c.SRAMKB * 1024 / 8 }

// AreaBreakdown is the Fig. 8c decomposition in mm².
type AreaBreakdown struct {
	EvE, ADAM, SRAM, CPU, NoC, Total float64
}

// Area computes the SoC area for this design point.
func (c SoCConfig) Area() AreaBreakdown {
	t := c.Tech
	a := AreaBreakdown{
		EvE:  t.EvEPEArea * float64(c.NumEvEPEs),
		ADAM: t.MACPEArea * float64(c.MACs()),
		SRAM: t.SRAMAreaPerKB * float64(c.SRAMKB),
		CPU:  t.CPUArea,
		NoC:  t.NoCAreaPerPE * float64(c.NumEvEPEs),
	}
	a.Total = a.EvE + a.ADAM + a.SRAM + a.CPU + a.NoC
	return a
}

// PowerBreakdown is the Fig. 8b decomposition in mW.
type PowerBreakdown struct {
	EvE, ADAM, SRAM, CPU, Total float64
}

// RooflinePower computes the maximum (always-computing) power draw —
// the pessimistic roofline the paper plots in Fig. 8b.
func (c SoCConfig) RooflinePower() PowerBreakdown {
	t := c.Tech
	p := PowerBreakdown{
		EvE:  t.EvEPEPower * float64(c.NumEvEPEs),
		ADAM: t.MACPEPower * float64(c.MACs()),
		SRAM: t.SRAMPowerPerBank * float64(t.SRAMBanks),
		CPU:  t.CPUPower,
	}
	p.Total = p.EvE + p.ADAM + p.SRAM + p.CPU
	return p
}

// CyclesToSeconds converts a cycle count at the SoC clock.
func (c SoCConfig) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / c.Tech.FrequencyHz
}

// GatedPower models the clock/power-gating opportunity of
// Section VI-D: real deployments interact with slow physical
// environments, so the chip computes only a fraction of wall-clock
// time and the rest is gated down to leakage. computeFraction is the
// duty cycle in [0, 1]; leakageFraction is the gated floor as a share
// of roofline (a few percent for a power-gated 15 nm design).
func (c SoCConfig) GatedPower(computeFraction, leakageFraction float64) float64 {
	if computeFraction < 0 {
		computeFraction = 0
	}
	if computeFraction > 1 {
		computeFraction = 1
	}
	if leakageFraction < 0 {
		leakageFraction = 0
	}
	roof := c.RooflinePower().Total
	return roof*computeFraction + roof*leakageFraction*(1-computeFraction)
}
