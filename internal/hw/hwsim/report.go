package hwsim

import (
	"encoding/json"
	"sort"
	"strings"
)

// Report is an immutable snapshot of one registry node: the structured
// tree the SoC stack serializes, traverses and aggregates instead of
// bespoke per-block report structs. Maps serialize with sorted keys and
// children are name-sorted, so JSON output is deterministic.
type Report struct {
	Name     string             `json:"name"`
	Ints     map[string]int64   `json:"ints,omitempty"`
	Floats   map[string]float64 `json:"floats,omitempty"`
	Children []Report           `json:"children,omitempty"`
}

// Child returns the named child subtree.
func (r Report) Child(name string) (Report, bool) {
	for _, ch := range r.Children {
		if ch.Name == name {
			return ch, true
		}
	}
	return Report{}, false
}

// node walks the child path (all but the last path segment).
func (r Report) node(segs []string) (Report, bool) {
	cur := r
	for _, s := range segs {
		ch, ok := cur.Child(s)
		if !ok {
			return Report{}, false
		}
		cur = ch
	}
	return cur, true
}

// split separates a slash path into its node walk and counter name.
func split(path string) (segs []string, leaf string) {
	parts := strings.Split(path, "/")
	return parts[:len(parts)-1], parts[len(parts)-1]
}

// Int reads the integer counter at a slash path relative to this node,
// e.g. "eve/pe/gene_ops". Missing paths read as 0.
func (r Report) Int(path string) int64 {
	segs, leaf := split(path)
	n, ok := r.node(segs)
	if !ok {
		return 0
	}
	return n.Ints[leaf]
}

// Float reads the float counter at a slash path relative to this node.
// Missing paths read as 0.
func (r Report) Float(path string) float64 {
	segs, leaf := split(path)
	n, ok := r.node(segs)
	if !ok {
		return 0
	}
	return n.Floats[leaf]
}

// FloatNames lists this node's float counter names sorted — for
// renderers that walk a record's values without knowing them ahead of
// time (e.g. a Pareto front record's objective columns).
func (r Report) FloatNames() []string {
	names := make([]string, 0, len(r.Floats))
	for name := range r.Floats {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Value reads either kind of counter at a slash path, reporting
// whether it exists. Float counters win on a name collision.
func (r Report) Value(path string) (float64, bool) {
	segs, leaf := split(path)
	n, ok := r.node(segs)
	if !ok {
		return 0, false
	}
	if v, ok := n.Floats[leaf]; ok {
		return v, true
	}
	if v, ok := n.Ints[leaf]; ok {
		return float64(v), true
	}
	return 0, false
}

// Row is one flattened counter: its full slash path and value.
type Row struct {
	Path  string  `json:"path"`
	Value float64 `json:"value"`
	IsInt bool    `json:"is_int,omitempty"`
}

// Flatten renders the tree as sorted rows — the structured-row form
// the stats and CLI layers consume.
func (r Report) Flatten() []Row {
	var rows []Row
	r.flatten(r.Name, &rows)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Path < rows[j].Path })
	return rows
}

func (r Report) flatten(prefix string, rows *[]Row) {
	for name, v := range r.Ints {
		*rows = append(*rows, Row{Path: prefix + "/" + name, Value: float64(v), IsInt: true})
	}
	for name, v := range r.Floats {
		*rows = append(*rows, Row{Path: prefix + "/" + name, Value: v})
	}
	for _, ch := range r.Children {
		ch.flatten(prefix+"/"+ch.Name, rows)
	}
}

// JSON renders the tree as indented JSON.
func (r Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
