// Package hwsim is the accounting kernel shared by every hardware
// model in the SoC stack. It provides three pieces:
//
//   - Counters: a hierarchical, race-safe registry of named int64 and
//     float64 counters. Each hardware block owns one node; nodes nest
//     (soc/eve/pe, soc/adam, soc/sram, ...) so a whole chip is one
//     tree with a single uniform ledger for cycles, ops, traffic and
//     energy-pJ.
//   - Component: the interface every modeled block implements so that
//     assemblies (the SoC, the CLIs, the experiment harness) can walk,
//     snapshot and reset heterogeneous blocks uniformly instead of
//     hand-plumbing bespoke report structs.
//   - Report / Sink (report.go, sink.go): an immutable snapshot tree
//     that serializes to JSON, and the per-generation record stream
//     that carries snapshots to stats and the CLIs.
//
// Counter naming scheme: snake_case leaf names; the unit is the name
// suffix (`*_cycles`, `*_pj`, `*_mw`, `*_mm2`, `*_bytes`); unsuffixed
// names are event or word counts. Node paths join child names with
// "/" and address a counter with a final path segment, e.g.
// "soc/eve/pe/gene_ops".
//
// Concurrency: all Counters methods are safe for concurrent use.
// Counter mutation is lock-free (atomics); name registration and tree
// edits take a per-node mutex. This is what lets a parallel design-
// point sweep charge one shared registry without corruption.
package hwsim

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Int is a race-safe integer counter.
type Int struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Int) Add(d int64) { c.v.Add(d) }

// Store overwrites the counter.
func (c *Int) Store(v int64) { c.v.Store(v) }

// Load returns the current value.
func (c *Int) Load() int64 { return c.v.Load() }

// Float is a race-safe float64 counter (CAS-accumulated).
type Float struct{ bits atomic.Uint64 }

// Add increments the counter by d.
func (c *Float) Add(d float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Store overwrites the counter.
func (c *Float) Store(v float64) { c.bits.Store(math.Float64bits(v)) }

// Load returns the current value.
func (c *Float) Load() float64 { return math.Float64frombits(c.bits.Load()) }

// Component is one modeled hardware block: anything that owns a node
// in the counter tree. Engines (eve, adam), buffers (sram), networks
// (noc), static models (energy) and whole assemblies (soc) all
// implement it.
type Component interface {
	// Name is the block's node name in the tree (e.g. "eve").
	Name() string
	// Counters returns the block's registry node. The node is live:
	// it accumulates as the model runs.
	Counters() *Counters
	// Reset zeroes the block's activity counters (recursively), ready
	// for a fresh accounting interval. Configuration is untouched.
	Reset()
}

// Counters is one node of the hierarchical counter registry.
type Counters struct {
	name string

	mu       sync.Mutex
	ints     map[string]*Int
	floats   map[string]*Float
	children map[string]*Counters
	finalize func(*Counters)
}

// New returns an empty registry node.
func New(name string) *Counters { return &Counters{name: name} }

// Name returns the node name.
func (c *Counters) Name() string { return c.name }

// Child returns the named child node, creating it on first use.
func (c *Counters) Child(name string) *Counters {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ch, ok := c.children[name]; ok {
		return ch
	}
	if c.children == nil {
		c.children = map[string]*Counters{}
	}
	ch := New(name)
	c.children[name] = ch
	return ch
}

// Adopt mounts an existing node (typically another Component's root)
// as a child under its own name, replacing any previous child of that
// name. This is how assemblies compose sub-component trees without
// copying counters.
func (c *Counters) Adopt(child *Counters) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.children == nil {
		c.children = map[string]*Counters{}
	}
	c.children[child.name] = child
}

// Int returns the named integer counter, creating it on first use.
func (c *Counters) Int(name string) *Int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr, ok := c.ints[name]; ok {
		return ctr
	}
	if c.ints == nil {
		c.ints = map[string]*Int{}
	}
	ctr := &Int{}
	c.ints[name] = ctr
	return ctr
}

// Float returns the named float counter, creating it on first use.
func (c *Counters) Float(name string) *Float {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ctr, ok := c.floats[name]; ok {
		return ctr
	}
	if c.floats == nil {
		c.floats = map[string]*Float{}
	}
	ctr := &Float{}
	c.floats[name] = ctr
	return ctr
}

// AddInt increments the named integer counter.
func (c *Counters) AddInt(name string, d int64) { c.Int(name).Add(d) }

// AddFloat increments the named float counter.
func (c *Counters) AddFloat(name string, d float64) { c.Float(name).Add(d) }

// SetInt overwrites the named integer counter.
func (c *Counters) SetInt(name string, v int64) { c.Int(name).Store(v) }

// SetFloat overwrites the named float counter.
func (c *Counters) SetFloat(name string, v float64) { c.Float(name).Store(v) }

// IntValue reads the named integer counter (0 if never registered).
func (c *Counters) IntValue(name string) int64 {
	c.mu.Lock()
	ctr, ok := c.ints[name]
	c.mu.Unlock()
	if !ok {
		return 0
	}
	return ctr.Load()
}

// FloatValue reads the named float counter (0 if never registered).
func (c *Counters) FloatValue(name string) float64 {
	c.mu.Lock()
	ctr, ok := c.floats[name]
	c.mu.Unlock()
	if !ok {
		return 0
	}
	return ctr.Load()
}

// OnSnapshot registers a hook run on this node (after its children's
// hooks) at every Snapshot and Reset. Blocks use it to refresh derived
// metrics — ratios like utilization or reads-per-cycle, and static
// breakdowns like area — so snapshots are always self-consistent with
// the accumulated raw counters.
func (c *Counters) OnSnapshot(fn func(*Counters)) {
	c.mu.Lock()
	c.finalize = fn
	c.mu.Unlock()
}

// Reset zeroes every counter in this node and all descendants (the
// registered names survive), then re-runs snapshot hooks so derived
// and static values are rebuilt.
func (c *Counters) Reset() {
	c.zero()
	c.runFinalizers()
}

func (c *Counters) zero() {
	c.mu.Lock()
	ints := make([]*Int, 0, len(c.ints))
	for _, ctr := range c.ints {
		ints = append(ints, ctr)
	}
	floats := make([]*Float, 0, len(c.floats))
	for _, ctr := range c.floats {
		floats = append(floats, ctr)
	}
	children := make([]*Counters, 0, len(c.children))
	for _, ch := range c.children {
		children = append(children, ch)
	}
	c.mu.Unlock()
	for _, ctr := range ints {
		ctr.Store(0)
	}
	for _, ctr := range floats {
		ctr.Store(0)
	}
	for _, ch := range children {
		ch.zero()
	}
}

func (c *Counters) runFinalizers() {
	c.mu.Lock()
	fn := c.finalize
	children := make([]*Counters, 0, len(c.children))
	for _, ch := range c.children {
		children = append(children, ch)
	}
	c.mu.Unlock()
	for _, ch := range children {
		ch.runFinalizers()
	}
	if fn != nil {
		fn(c)
	}
}

// Snapshot runs the snapshot hooks bottom-up and returns an immutable
// copy of the subtree, with children sorted by name for deterministic
// serialization.
func (c *Counters) Snapshot() Report {
	c.runFinalizers()
	return c.snapshot()
}

func (c *Counters) snapshot() Report {
	c.mu.Lock()
	r := Report{Name: c.name}
	if len(c.ints) > 0 {
		r.Ints = make(map[string]int64, len(c.ints))
		for name, ctr := range c.ints {
			r.Ints[name] = ctr.Load()
		}
	}
	if len(c.floats) > 0 {
		r.Floats = make(map[string]float64, len(c.floats))
		for name, ctr := range c.floats {
			r.Floats[name] = ctr.Load()
		}
	}
	children := make([]*Counters, 0, len(c.children))
	for _, ch := range c.children {
		children = append(children, ch)
	}
	c.mu.Unlock()

	sort.Slice(children, func(i, j int) bool { return children[i].name < children[j].name })
	for _, ch := range children {
		r.Children = append(r.Children, ch.snapshot())
	}
	return r
}
