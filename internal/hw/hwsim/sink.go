package hwsim

import (
	"encoding/json"
	"sort"
	"sync"
)

// Record is one per-generation hardware sample: a snapshot of a
// component tree tagged with where it came from.
type Record struct {
	Workload   string `json:"workload,omitempty"`
	Run        int    `json:"run,omitempty"`
	Generation int    `json:"generation"`
	Report     Report `json:"report"`
}

// Sink receives per-generation records. Implementations must be safe
// for concurrent use: study runs record from many goroutines.
type Sink interface {
	Record(Record)
}

// Tagged wraps a Sink, stamping every record with a workload and run
// index — how a study labels the shared sink per run.
type Tagged struct {
	Sink     Sink
	Workload string
	Run      int
}

// Record stamps and forwards.
func (t Tagged) Record(r Record) {
	if t.Workload != "" {
		r.Workload = t.Workload
	}
	r.Run = t.Run
	t.Sink.Record(r)
}

// SinkFunc adapts a function to the Sink interface — the glue that
// lets a serving layer (or a test) tap a record stream without
// defining a type. The function must be safe for concurrent calls if
// the producer records from multiple goroutines.
type SinkFunc func(Record)

// Record invokes the function.
func (f SinkFunc) Record(r Record) { f(r) }

// MultiSink fans one record stream out to several sinks in order —
// how a daemon feeds a job's live subscribers and its persistent log
// from the single Sink slot a Runner exposes. Nil sinks are skipped.
func MultiSink(sinks ...Sink) Sink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

type multiSink []Sink

// Record forwards to every sink.
func (m multiSink) Record(r Record) {
	for _, s := range m {
		s.Record(r)
	}
}

// Log is an in-memory Sink. It is safe for concurrent recording.
type Log struct {
	mu   sync.Mutex
	recs []Record
}

// Record appends one record.
func (l *Log) Record(r Record) {
	l.mu.Lock()
	l.recs = append(l.recs, r)
	l.mu.Unlock()
}

// Len returns the number of records.
func (l *Log) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.recs)
}

// Records returns a copy of the log sorted by (workload, run,
// generation) — a deterministic order regardless of the goroutine
// interleaving that produced it.
func (l *Log) Records() []Record {
	l.mu.Lock()
	out := append([]Record(nil), l.recs...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Workload != out[j].Workload {
			return out[i].Workload < out[j].Workload
		}
		if out[i].Run != out[j].Run {
			return out[i].Run < out[j].Run
		}
		return out[i].Generation < out[j].Generation
	})
	return out
}

// Series extracts one counter (by slash path relative to each record's
// report root) across the sorted records — one float per record that
// has the counter. This is the bridge from the record stream into the
// stats package.
func (l *Log) Series(path string) []float64 {
	var out []float64
	for _, rec := range l.Records() {
		if v, ok := rec.Report.Value(path); ok {
			out = append(out, v)
		}
	}
	return out
}

// JSON renders the sorted records as an indented JSON array.
func (l *Log) JSON() ([]byte, error) {
	return json.MarshalIndent(l.Records(), "", "  ")
}
