package hwsim

import (
	"bytes"
	"sync"
	"testing"
)

func TestCountersTreeAndValues(t *testing.T) {
	root := New("soc")
	root.AddInt("total_cycles", 100)
	root.AddInt("total_cycles", 50)
	root.AddFloat("energy_pj", 1.5)
	pe := root.Child("eve").Child("pe")
	pe.AddInt("gene_ops", 7)

	if got := root.IntValue("total_cycles"); got != 150 {
		t.Fatalf("total_cycles = %d, want 150", got)
	}
	if got := root.FloatValue("energy_pj"); got != 1.5 {
		t.Fatalf("energy_pj = %v", got)
	}
	rep := root.Snapshot()
	if got := rep.Int("eve/pe/gene_ops"); got != 7 {
		t.Fatalf("path read = %d, want 7", got)
	}
	if got := rep.Int("eve/pe/missing"); got != 0 {
		t.Fatalf("missing counter = %d, want 0", got)
	}
	if _, ok := rep.Value("nope/gene_ops"); ok {
		t.Fatal("missing node should not resolve")
	}
}

func TestAdoptMountsComponentTree(t *testing.T) {
	soc := New("soc")
	eve := New("eve")
	eve.AddInt("waves", 3)
	soc.Adopt(eve)
	if got := soc.Snapshot().Int("eve/waves"); got != 3 {
		t.Fatalf("adopted read = %d, want 3", got)
	}
	// The adopted node stays live: later charges show up in the parent.
	eve.AddInt("waves", 2)
	if got := soc.Snapshot().Int("eve/waves"); got != 5 {
		t.Fatalf("live adopted read = %d, want 5", got)
	}
}

func TestResetZeroesRecursivelyAndKeepsNames(t *testing.T) {
	root := New("soc")
	root.AddInt("cycles", 9)
	root.Child("sram").AddFloat("energy_pj", 4)
	root.Reset()
	rep := root.Snapshot()
	if rep.Int("cycles") != 0 || rep.Float("sram/energy_pj") != 0 {
		t.Fatalf("reset left values: %+v", rep)
	}
	// Names survive reset so the schema is stable across generations.
	if _, ok := rep.Value("sram/energy_pj"); !ok {
		t.Fatal("counter name lost on reset")
	}
}

func TestSnapshotHookDerivesMetrics(t *testing.T) {
	c := New("eve")
	c.OnSnapshot(func(c *Counters) {
		if sc := c.IntValue("stream_cycles"); sc > 0 {
			c.SetFloat("reads_per_cycle", float64(c.IntValue("sram_reads"))/float64(sc))
		}
	})
	c.AddInt("sram_reads", 90)
	c.AddInt("stream_cycles", 30)
	if got := c.Snapshot().Float("reads_per_cycle"); got != 3 {
		t.Fatalf("derived = %v, want 3", got)
	}
}

func TestSnapshotDeterministicJSON(t *testing.T) {
	build := func() []byte {
		c := New("soc")
		c.Child("eve").AddInt("waves", 1)
		c.Child("adam").AddFloat("mac_energy_pj", 2)
		c.AddInt("total_cycles", 3)
		b, err := c.Snapshot().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("snapshot JSON not deterministic")
	}
}

func TestFlattenRows(t *testing.T) {
	c := New("soc")
	c.AddInt("total_cycles", 10)
	c.Child("eve").AddFloat("energy_pj", 2.5)
	rows := c.Snapshot().Flatten()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Path != "soc/eve/energy_pj" || rows[0].Value != 2.5 || rows[0].IsInt {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[1].Path != "soc/total_cycles" || rows[1].Value != 10 || !rows[1].IsInt {
		t.Fatalf("row1 = %+v", rows[1])
	}
}

func TestConcurrentCharging(t *testing.T) {
	root := New("soc")
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				root.AddInt("ops", 1)
				root.AddFloat("energy_pj", 0.5)
				root.Child("eve").AddInt("waves", 1)
			}
		}()
	}
	wg.Wait()
	rep := root.Snapshot()
	if got := rep.Int("ops"); got != workers*per {
		t.Fatalf("ops = %d, want %d", got, workers*per)
	}
	if got := rep.Float("energy_pj"); got != workers*per*0.5 {
		t.Fatalf("energy = %v", got)
	}
	if got := rep.Int("eve/waves"); got != workers*per {
		t.Fatalf("child ops = %d", got)
	}
}

func TestLogSortsAndExtractsSeries(t *testing.T) {
	l := &Log{}
	mk := func(run, gen int, v int64) Record {
		c := New("evolve")
		c.AddInt("ops", v)
		return Record{Workload: "cartpole", Run: run, Generation: gen, Report: c.Snapshot()}
	}
	l.Record(mk(1, 1, 4))
	l.Record(mk(0, 1, 2))
	l.Record(mk(1, 0, 3))
	l.Record(mk(0, 0, 1))
	got := l.Series("ops")
	want := []float64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("series = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("series = %v, want %v", got, want)
		}
	}
}

func TestTaggedStampsRecords(t *testing.T) {
	l := &Log{}
	s := Tagged{Sink: l, Workload: "mario", Run: 7}
	s.Record(Record{Generation: 3})
	recs := l.Records()
	if recs[0].Workload != "mario" || recs[0].Run != 7 || recs[0].Generation != 3 {
		t.Fatalf("record = %+v", recs[0])
	}
}
