// Package adam models the ACCELERATOR FOR DENSE ADDITION &
// MULTIPLICATION: the inference engine of the GeneSys SoC
// (Section IV-D). ADAM evaluates the irregular NEAT networks by posing
// groups of vertex updates as packed matrix–vector multiplications on a
// 32×32 systolic array of MAC units, with the System CPU's vectorize
// routine packing ready node values into well-formed input vectors.
//
// The model consumes the per-genome execution plans produced by
// network.BuildPlan (the vectorize output) and accounts cycles, MACs,
// SRAM traffic and energy for a full generation of inference.
//
// Two scheduling modes are modeled:
//
//   - Packed (the paper's design): at every environment step, the
//     vertex updates of all still-running genomes are packed together
//     (population-level parallelism), so the array is throughput-bound
//     on the summed MAC work plus a fill/drain overhead per topological
//     level;
//   - Serial: one genome at a time, its stage matrices tiled over the
//     array — the ablation the paper's GPU_a configuration resembles.
package adam

import (
	"repro/internal/hw/hwsim"
	"repro/internal/network"
)

// Config is one ADAM design point.
type Config struct {
	// Rows, Cols give the systolic array shape (32 × 32 in the paper).
	Rows, Cols int
	// Packed selects population-packed scheduling (the paper's mode).
	Packed bool
	// MACEnergyPJ is one multiply-accumulate.
	MACEnergyPJ float64
	// SRAMAccessPJ is one 64-bit genome-buffer access.
	SRAMAccessPJ float64
	// VectorizeCyclesPerElement is the CPU cost of packing one element
	// of an input vector; packing overlaps with array execution, so a
	// stage takes max(array, vectorize) cycles.
	VectorizeCyclesPerElement int
}

// DefaultConfig is the paper's 32×32 array with packed scheduling.
func DefaultConfig() Config {
	return Config{
		Rows: 32, Cols: 32,
		Packed:                    true,
		MACEnergyPJ:               0.35,
		SRAMAccessPJ:              50,
		VectorizeCyclesPerElement: 1,
	}
}

// MACs returns the array's MAC count.
func (c Config) MACs() int { return c.Rows * c.Cols }

// Job is one genome's inference workload for a generation: its packed
// plan and the number of environment steps (each step is one full
// inference pass).
type Job struct {
	Plan  network.Plan
	Steps int
}

// Report is the generation-level inference account.
type Report struct {
	// WeightLoadCycles is the once-per-generation weight-matrix setup
	// ("the weight matrices do not change within a given generation").
	WeightLoadCycles int64
	// PassCycles is the array time for a single inference pass over
	// every genome (the per-generation-sweep number Fig. 11c plots).
	PassCycles int64
	// ComputeCycles is the full evaluation phase (all steps).
	ComputeCycles int64
	// TotalCycles includes weight loading.
	TotalCycles int64
	// DenseMACs is the MAC work actually executed (packed zeros
	// included — the array cannot skip them).
	DenseMACs int64
	// UsefulMACs is the non-zero (true edge) MAC count.
	UsefulMACs int64
	// SRAM traffic: input-vector reads, output writes, weight reads.
	SRAMReads  int64
	SRAMWrites int64
	// Energy decomposition in pJ.
	MACEnergyPJ  float64
	SRAMEnergyPJ float64
	// Utilization is useful MACs over array capacity over compute time.
	Utilization float64
}

// TotalEnergyPJ sums the energy components.
func (r Report) TotalEnergyPJ() float64 { return r.MACEnergyPJ + r.SRAMEnergyPJ }

// Engine is the ADAM model. Its activity accumulates in a hwsim
// counter node named "adam"; the per-generation Report is a view over
// the same quantities.
type Engine struct {
	cfg Config
	ctr *hwsim.Counters
}

// New builds an engine.
func New(cfg Config) *Engine {
	if cfg.Rows < 1 {
		cfg.Rows = 1
	}
	if cfg.Cols < 1 {
		cfg.Cols = 1
	}
	e := &Engine{cfg: cfg, ctr: hwsim.New("adam")}
	macs := float64(e.cfg.MACs())
	e.ctr.OnSnapshot(func(c *hwsim.Counters) {
		c.SetFloat("energy_pj", c.FloatValue("mac_energy_pj")+c.FloatValue("sram_energy_pj"))
		if cc := c.IntValue("compute_cycles"); cc > 0 {
			util := float64(c.IntValue("useful_macs")) / (float64(cc) * macs)
			if util > 1 {
				util = 1
			}
			c.SetFloat("utilization", util)
		}
	})
	return e
}

// Config returns the design point.
func (e *Engine) Config() Config { return e.cfg }

// Name is the engine's hwsim component name.
func (e *Engine) Name() string { return "adam" }

// Counters returns the engine's live registry node.
func (e *Engine) Counters() *hwsim.Counters { return e.ctr }

// Reset zeroes the engine's counters.
func (e *Engine) Reset() { e.ctr.Reset() }

// publish charges one generation's Report into the registry.
func (e *Engine) publish(r Report) {
	c := e.ctr
	c.AddInt("weight_load_cycles", r.WeightLoadCycles)
	c.AddInt("pass_cycles", r.PassCycles)
	c.AddInt("compute_cycles", r.ComputeCycles)
	c.AddInt("total_cycles", r.TotalCycles)
	c.AddInt("dense_macs", r.DenseMACs)
	c.AddInt("useful_macs", r.UsefulMACs)
	c.AddInt("sram_reads", r.SRAMReads)
	c.AddInt("sram_writes", r.SRAMWrites)
	c.AddFloat("mac_energy_pj", r.MACEnergyPJ)
	c.AddFloat("sram_energy_pj", r.SRAMEnergyPJ)
}

// stageCycles returns the serial-mode array cycles for one
// matrix–vector stage: the stage is tiled over the array; each tile
// streams its input sub-vector (Cols cycles) and drains partial sums
// (Rows cycles), output-stationary.
func (e *Engine) stageCycles(s network.Stage) int64 {
	rowTiles := int64((s.Rows + e.cfg.Rows - 1) / e.cfg.Rows)
	colTiles := int64((s.Cols + e.cfg.Cols - 1) / e.cfg.Cols)
	if rowTiles == 0 || colTiles == 0 {
		return 0
	}
	perTile := int64(e.cfg.Cols + e.cfg.Rows) // stream + drain
	array := rowTiles * colTiles * perTile
	vectorize := int64(s.Cols * e.cfg.VectorizeCyclesPerElement)
	if vectorize > array {
		return vectorize
	}
	return array
}

// jobProfile is the per-pass summary of one job.
type jobProfile struct {
	steps       int
	passCycles  int64 // serial-mode pass cycles
	passMACs    int64
	passUseful  int64
	passReads   int64
	passWrites  int64
	depth       int
	vecElements int64
}

func (e *Engine) profile(j Job) jobProfile {
	p := jobProfile{steps: j.Steps, depth: len(j.Plan.Stages)}
	if p.steps < 0 {
		p.steps = 0
	}
	for _, s := range j.Plan.Stages {
		p.passCycles += e.stageCycles(s)
		p.passMACs += int64(s.MACs())
		p.passUseful += int64(s.NonZero)
		p.passReads += int64(s.Cols)
		p.passWrites += int64(s.Rows)
		p.vecElements += int64(s.Cols)
	}
	return p
}

// RunGeneration accounts a full generation of inference.
func (e *Engine) RunGeneration(jobs []Job) Report {
	var r Report
	profiles := make([]jobProfile, 0, len(jobs))
	maxSteps := 0
	for _, j := range jobs {
		p := e.profile(j)
		profiles = append(profiles, p)
		if p.steps > maxSteps {
			maxSteps = p.steps
		}
		// Weight matrices built once per generation: read the genome's
		// connection genes once and push the tiles in.
		r.WeightLoadCycles += int64(j.Plan.Edges) / int64(e.cfg.Cols) * 2
		r.SRAMReads += int64(j.Plan.Edges)

		steps := int64(p.steps)
		r.DenseMACs += p.passMACs * steps
		r.UsefulMACs += p.passUseful * steps
		r.SRAMReads += p.passReads * steps
		r.SRAMWrites += p.passWrites * steps
	}

	if e.cfg.Packed {
		r.PassCycles = e.packedRound(profiles, 0)
		// Episodes end at different steps; each round packs only the
		// still-running genomes.
		for round := 0; round < maxSteps; round++ {
			r.ComputeCycles += e.packedRound(profiles, round)
		}
	} else {
		for _, p := range profiles {
			r.PassCycles += p.passCycles
			r.ComputeCycles += p.passCycles * int64(p.steps)
		}
	}

	r.TotalCycles = r.WeightLoadCycles + r.ComputeCycles
	r.MACEnergyPJ = float64(r.DenseMACs) * e.cfg.MACEnergyPJ
	r.SRAMEnergyPJ = float64(r.SRAMReads+r.SRAMWrites) * e.cfg.SRAMAccessPJ
	if r.ComputeCycles > 0 {
		r.Utilization = float64(r.UsefulMACs) /
			(float64(r.ComputeCycles) * float64(e.cfg.MACs()))
		if r.Utilization > 1 {
			r.Utilization = 1
		}
	}
	e.publish(r)
	return r
}

// packedRound returns the array cycles of one environment-step round
// with population packing: throughput-bound MAC streaming of every
// active genome's pass, plus a fill/drain overhead per topological
// level of the deepest active network, plus the CPU vectorize bound.
func (e *Engine) packedRound(profiles []jobProfile, round int) int64 {
	var macs, vec int64
	depth := 0
	for i := range profiles {
		p := &profiles[i]
		if p.steps <= round {
			continue
		}
		macs += p.passMACs
		vec += p.vecElements
		if p.depth > depth {
			depth = p.depth
		}
	}
	if macs == 0 {
		return 0
	}
	array := int64(e.cfg.MACs())
	cycles := (macs+array-1)/array + int64(depth*(e.cfg.Rows+e.cfg.Cols))
	vecCycles := vec * int64(e.cfg.VectorizeCyclesPerElement) / int64(e.cfg.Rows)
	if vecCycles > cycles {
		cycles = vecCycles
	}
	return cycles
}
