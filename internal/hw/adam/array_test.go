package adam

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gene"
	"repro/internal/neat"
	"repro/internal/network"
	"repro/internal/rng"
)

func TestMatVecSmall(t *testing.T) {
	arr, err := NewArray(32, 32)
	if err != nil {
		t.Fatal(err)
	}
	w := [][]float64{{1, 2}, {3, 4}, {5, 6}}
	x := []float64{10, 100}
	y, cycles, err := arr.MatVec(w, x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{210, 430, 650}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
	if cycles != 64 {
		t.Fatalf("cycles %d, want one tile (64)", cycles)
	}
}

func TestMatVecTiled(t *testing.T) {
	arr, _ := NewArray(2, 2) // tiny array forces tiling
	w := [][]float64{
		{1, 0, 2, 0, 3},
		{0, 1, 0, 2, 0},
		{1, 1, 1, 1, 1},
	}
	x := []float64{1, 2, 3, 4, 5}
	y, cycles, err := arr.MatVec(w, x)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1 + 6 + 15, 2 + 8, 15}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("y = %v, want %v", y, want)
		}
	}
	// 3 rows → 2 row-tiles; 5 cols → 3 col-tiles; 6 tiles × 4 cycles.
	if cycles != 24 {
		t.Fatalf("cycles %d, want 24", cycles)
	}
}

func TestMatVecShapeErrors(t *testing.T) {
	if _, err := NewArray(0, 4); err == nil {
		t.Fatal("zero-row array accepted")
	}
	arr, _ := NewArray(4, 4)
	if _, _, err := arr.MatVec([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Fatal("mismatched vector accepted")
	}
	y, cycles, err := arr.MatVec(nil, nil)
	if err != nil || y != nil || cycles != 0 {
		t.Fatal("empty matrix mishandled")
	}
}

// Property: the systolic wavefront equals a plain matrix–vector product
// for arbitrary shapes and array sizes.
func TestQuickMatVecEquivalence(t *testing.T) {
	f := func(seed uint64, rowsU, colsU, arU, acU uint8) bool {
		rows := int(rowsU%40) + 1
		cols := int(colsU%40) + 1
		ar := int(arU%8) + 1
		ac := int(acU%8) + 1
		g := rng.New(seed)
		w := make([][]float64, rows)
		ref := make([]float64, rows)
		x := make([]float64, cols)
		for c := range x {
			x[c] = g.Range(-2, 2)
		}
		for r := range w {
			w[r] = make([]float64, cols)
			for c := range w[r] {
				w[r][c] = g.Range(-2, 2)
				ref[r] += w[r][c] * x[c]
			}
		}
		arr, err := NewArray(ar, ac)
		if err != nil {
			return false
		}
		y, _, err := arr.MatVec(w, x)
		if err != nil {
			return false
		}
		for r := range ref {
			if math.Abs(y[r]-ref[r]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// hwFriendlyGenome evolves genomes restricted to sum aggregation so
// the whole network maps onto the array.
func hwFriendlyGenome(t *testing.T, seed uint64) *gene.Genome {
	t.Helper()
	cfg := neat.DefaultConfig(4, 2)
	cfg.PopulationSize = 12
	cfg.AggregationMutateRate = 0
	pop, err := neat.NewPopulation(cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(seed)
	for gen := 0; gen < 6; gen++ {
		for _, g := range pop.Genomes {
			g.Fitness = r.Float64()
		}
		if _, err := pop.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	return pop.Genomes[0]
}

// TestExecutorMatchesSoftwareNetwork is the hardware/software
// equivalence claim: inference through the simulated systolic array
// equals the software network evaluated at quantized precision.
func TestExecutorMatchesSoftwareNetwork(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := hwFriendlyGenome(t, seed)
		hw := gene.FromWords(g.ID, g.Pack())
		net, err := network.New(hw)
		if err != nil {
			t.Fatal(err)
		}
		arr, _ := NewArray(32, 32)
		ex := NewExecutor(arr)
		obs := []float64{0.3, -0.7, 1.2, 0.05}
		want, err := net.Feed(obs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ex.Infer(g, obs)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("seed %d: width %d vs %d", seed, len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("seed %d: output %d: array %v, software %v", seed, i, got[i], want[i])
			}
		}
		if ex.ArrayCycles <= 0 {
			t.Fatal("no array cycles simulated")
		}
	}
}

// TestCompiledMatchesOneShotInfer: the per-generation compiled
// executor must compute exactly what the one-shot path computes.
func TestCompiledMatchesOneShotInfer(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		g := hwFriendlyGenome(t, seed)
		arr, _ := NewArray(32, 32)
		oneShot := NewExecutor(arr)
		compiled, err := NewExecutor(arr).Compile(g)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 5; trial++ {
			obs := []float64{
				float64(trial) * 0.2, -0.5, float64(seed) * 0.1, 0.9,
			}
			want, err := oneShot.Infer(g, obs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := compiled.Feed(obs)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if math.Abs(got[i]-want[i]) > 1e-12 {
					t.Fatalf("seed %d trial %d: compiled %v vs one-shot %v",
						seed, trial, got[i], want[i])
				}
			}
		}
	}
}

func TestCompiledRejectsWrongWidth(t *testing.T) {
	g := hwFriendlyGenome(t, 2)
	arr, _ := NewArray(8, 8)
	c, err := NewExecutor(arr).Compile(g)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != 4 || c.NumOutputs() != 2 {
		t.Fatalf("io %d/%d", c.NumInputs(), c.NumOutputs())
	}
	if _, err := c.Feed([]float64{1}); err == nil {
		t.Fatal("wrong width accepted")
	}
}

func TestExecutorNonSumFallback(t *testing.T) {
	g := gene.NewGenome(1)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Input))
	out := gene.NewNode(2, gene.Output)
	out.Activation = gene.ActIdentity
	out.Aggregation = gene.AggMax
	g.PutNode(out)
	g.PutConn(gene.NewConn(0, 2, 1))
	g.PutConn(gene.NewConn(1, 2, 1))

	arr, _ := NewArray(8, 8)
	ex := NewExecutor(arr)
	got, err := ex.Infer(g, []float64{2, 5})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 5 {
		t.Fatalf("max aggregation output %v, want 5", got[0])
	}
	if ex.FallbackVertices != 1 {
		t.Fatalf("fallback count %d", ex.FallbackVertices)
	}
}

func TestExecutorObservationWidth(t *testing.T) {
	g := hwFriendlyGenome(t, 3)
	arr, _ := NewArray(8, 8)
	ex := NewExecutor(arr)
	if _, err := ex.Infer(g, []float64{1}); err == nil {
		t.Fatal("wrong observation width accepted")
	}
}

func BenchmarkArrayMatVec32(b *testing.B) {
	arr, _ := NewArray(32, 32)
	w := make([][]float64, 32)
	x := make([]float64, 32)
	for r := range w {
		w[r] = make([]float64, 32)
		for c := range w[r] {
			w[r][c] = float64(r*c) / 100
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := arr.MatVec(w, x); err != nil {
			b.Fatal(err)
		}
	}
}
