package adam

import (
	"testing"

	"repro/internal/gene"
	"repro/internal/network"
)

// planOf builds a plan for a simple dense genome: ins fully connected
// to outs.
func planOf(t *testing.T, ins, outs int) network.Plan {
	t.Helper()
	g := gene.NewGenome(1)
	for i := 0; i < ins; i++ {
		g.PutNode(gene.NewNode(int32(i), gene.Input))
	}
	for o := 0; o < outs; o++ {
		g.PutNode(gene.NewNode(int32(ins+o), gene.Output))
	}
	for i := 0; i < ins; i++ {
		for o := 0; o < outs; o++ {
			g.PutConn(gene.NewConn(int32(i), int32(ins+o), 0.5))
		}
	}
	n, err := network.New(g)
	if err != nil {
		t.Fatal(err)
	}
	return n.BuildPlan(false)
}

// serialConfig returns the genome-at-a-time tiling mode used by the
// scheduling ablation.
func serialConfig() Config {
	cfg := DefaultConfig()
	cfg.Packed = false
	return cfg
}

func TestSingleTileStage(t *testing.T) {
	e := New(serialConfig())
	p := planOf(t, 4, 2) // 2×4 matrix: one 32×32 tile
	r := e.RunGeneration([]Job{{Plan: p, Steps: 1}})
	// One tile: 32 stream + 32 drain cycles.
	if r.PassCycles != 64 {
		t.Fatalf("pass cycles %d, want 64", r.PassCycles)
	}
	if r.DenseMACs != 8 || r.UsefulMACs != 8 {
		t.Fatalf("MACs %d/%d, want 8/8", r.DenseMACs, r.UsefulMACs)
	}
}

func TestTilingLargeStage(t *testing.T) {
	e := New(serialConfig())
	p := planOf(t, 128, 18) // alien-ram-sized: 18×128 → 1×4 tiles
	r := e.RunGeneration([]Job{{Plan: p, Steps: 1}})
	if r.PassCycles != 4*64 {
		t.Fatalf("pass cycles %d, want 256", r.PassCycles)
	}
	if r.DenseMACs != 128*18 {
		t.Fatalf("dense MACs %d", r.DenseMACs)
	}
}

func TestStepsMultiplyWork(t *testing.T) {
	e := New(DefaultConfig())
	p := planOf(t, 8, 3)
	one := e.RunGeneration([]Job{{Plan: p, Steps: 1}})
	ten := e.RunGeneration([]Job{{Plan: p, Steps: 10}})
	if ten.ComputeCycles != 10*one.ComputeCycles {
		t.Fatalf("compute cycles %d vs 10×%d", ten.ComputeCycles, one.ComputeCycles)
	}
	if ten.DenseMACs != 10*one.DenseMACs {
		t.Fatalf("MACs %d vs 10×%d", ten.DenseMACs, one.DenseMACs)
	}
	// Weight load happens once per generation regardless of steps.
	if ten.WeightLoadCycles != one.WeightLoadCycles {
		t.Fatalf("weight load grew with steps: %d vs %d",
			ten.WeightLoadCycles, one.WeightLoadCycles)
	}
}

func TestUtilizationBounds(t *testing.T) {
	e := New(DefaultConfig())
	p := planOf(t, 32, 32) // perfectly shaped stage
	r := e.RunGeneration([]Job{{Plan: p, Steps: 5}})
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %v", r.Utilization)
	}
	// Denser plans utilize the array better (Fig. 11a's point: more
	// connection genes → denser matrices → higher utilization).
	sparse := planOf(t, 2, 1)
	rs := e.RunGeneration([]Job{{Plan: sparse, Steps: 5}})
	if rs.Utilization >= r.Utilization {
		t.Fatalf("sparse plan utilization %v >= dense %v", rs.Utilization, r.Utilization)
	}
}

func TestEnergyComponents(t *testing.T) {
	e := New(DefaultConfig())
	p := planOf(t, 16, 4)
	r := e.RunGeneration([]Job{{Plan: p, Steps: 3}})
	if r.MACEnergyPJ <= 0 || r.SRAMEnergyPJ <= 0 {
		t.Fatalf("energy components %v/%v", r.MACEnergyPJ, r.SRAMEnergyPJ)
	}
	if r.TotalEnergyPJ() != r.MACEnergyPJ+r.SRAMEnergyPJ {
		t.Fatal("energy sum mismatch")
	}
	wantMAC := float64(r.DenseMACs) * e.Config().MACEnergyPJ
	if r.MACEnergyPJ != wantMAC {
		t.Fatalf("MAC energy %v, want %v", r.MACEnergyPJ, wantMAC)
	}
}

func TestEmptyGeneration(t *testing.T) {
	e := New(DefaultConfig())
	r := e.RunGeneration(nil)
	if r.TotalCycles != 0 || r.TotalEnergyPJ() != 0 {
		t.Fatalf("empty generation accounted %+v", r)
	}
}

func TestPopulationAccumulatesSerial(t *testing.T) {
	e := New(serialConfig())
	p := planOf(t, 4, 2)
	jobs := make([]Job, 150)
	for i := range jobs {
		jobs[i] = Job{Plan: p, Steps: 100}
	}
	r := e.RunGeneration(jobs)
	single := e.RunGeneration(jobs[:1])
	if r.ComputeCycles != 150*single.ComputeCycles {
		t.Fatalf("population cycles %d vs 150×%d", r.ComputeCycles, single.ComputeCycles)
	}
}

func TestVectorizeBound(t *testing.T) {
	// With an expensive CPU pack, wide stages become vectorize-bound.
	cfg := serialConfig()
	cfg.VectorizeCyclesPerElement = 100
	e := New(cfg)
	p := planOf(t, 64, 1)
	r := e.RunGeneration([]Job{{Plan: p, Steps: 1}})
	if r.PassCycles != 64*100 {
		t.Fatalf("vectorize-bound pass %d, want 6400", r.PassCycles)
	}
}

func TestPackedBeatsSerialOnPopulation(t *testing.T) {
	// 150 tiny genomes: packed scheduling shares the array across the
	// population (PLP) and must be far faster than genome-at-a-time.
	p := planOf(t, 4, 2)
	jobs := make([]Job, 150)
	for i := range jobs {
		jobs[i] = Job{Plan: p, Steps: 200}
	}
	packed := New(DefaultConfig()).RunGeneration(jobs)
	serial := New(serialConfig()).RunGeneration(jobs)
	if packed.ComputeCycles*10 > serial.ComputeCycles {
		t.Fatalf("packed %d cycles not ≥10× faster than serial %d",
			packed.ComputeCycles, serial.ComputeCycles)
	}
	// Work and energy are identical; only scheduling differs.
	if packed.DenseMACs != serial.DenseMACs || packed.SRAMReads != serial.SRAMReads {
		t.Fatal("scheduling changed the work accounting")
	}
}

func TestPackedHandlesRaggedSteps(t *testing.T) {
	// Episodes ending at different steps: later rounds pack fewer
	// genomes. With a MAC-dominated population (RAM-game-sized plans),
	// compute must come in well under maxSteps × first-round cost.
	p := planOf(t, 128, 18)
	jobs := make([]Job, 100)
	for i := range jobs {
		steps := 10
		if i%2 == 0 {
			steps = 100
		}
		jobs[i] = Job{Plan: p, Steps: steps}
	}
	r := New(DefaultConfig()).RunGeneration(jobs)
	firstRound := r.PassCycles
	if r.ComputeCycles >= firstRound*100 {
		t.Fatalf("ragged steps not exploited: %d vs %d×100",
			r.ComputeCycles, firstRound)
	}
	if r.ComputeCycles < firstRound*10 {
		t.Fatalf("compute %d below 10 full rounds", r.ComputeCycles)
	}
}
