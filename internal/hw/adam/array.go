package adam

import (
	"fmt"

	"repro/internal/gene"
	"repro/internal/network"
)

// This file is the functional model of ADAM: where adam.go prices
// cycles and energy, Array actually executes the packed matrix–vector
// multiplications on a simulated weight-stationary systolic grid, and
// Executor runs whole-network inference through it — verifying that
// the hardware path computes the same activations as the software
// network (at the genome's quantized precision).

// Array is a functional rows×cols weight-stationary systolic array.
// Inputs stream in from the left with one-cycle skew per column;
// partial sums accumulate down the rows. The simulation moves data
// through explicit pipeline registers so the cycle count it reports is
// the count the analytic model charges (cols + rows per tile).
type Array struct {
	rows, cols int
}

// NewArray builds an array; dimensions must be positive.
func NewArray(rows, cols int) (*Array, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("adam: bad array shape %d×%d", rows, cols)
	}
	return &Array{rows: rows, cols: cols}, nil
}

// MatVec computes y = W·x on the array, tiling W (r×c) over the grid.
// It returns the product and the simulated cycle count.
func (a *Array) MatVec(w [][]float64, x []float64) ([]float64, int, error) {
	rows := len(w)
	if rows == 0 {
		return nil, 0, nil
	}
	cols := len(w[0])
	if cols != len(x) {
		return nil, 0, fmt.Errorf("adam: matrix is %d wide, vector is %d", cols, len(x))
	}
	y := make([]float64, rows)
	cycles := 0
	for r0 := 0; r0 < rows; r0 += a.rows {
		r1 := min(r0+a.rows, rows)
		for c0 := 0; c0 < cols; c0 += a.cols {
			c1 := min(c0+a.cols, cols)
			cycles += a.runTile(w, x, y, r0, r1, c0, c1)
		}
	}
	return y, cycles, nil
}

// runTile simulates one tile pass: weights loaded stationary at
// PE(r,c); the input x[c] enters the top of column c at cycle c
// (skewed wavefront) and steps down one row per cycle; the partial sum
// of row r enters at its left edge at cycle r and steps right one PE
// per cycle, so PE(r,c) fires exactly at cycle r+c, when its input and
// its upstream partial sum meet. Row r's dot product drains from the
// right edge at cycle r+tc; the tile completes after tc+tr cycles.
func (a *Array) runTile(w [][]float64, x, y []float64, r0, r1, c0, c1 int) int {
	tr, tc := r1-r0, c1-c0
	ps := make([]float64, tr) // partial sum moving right along each row
	for t := 0; t < tr+tc-1; t++ {
		// All PEs on the anti-diagonal r+c == t fire this cycle.
		rLo := t - tc + 1
		if rLo < 0 {
			rLo = 0
		}
		rHi := t
		if rHi > tr-1 {
			rHi = tr - 1
		}
		for r := rLo; r <= rHi; r++ {
			c := t - r
			ps[r] += w[r0+r][c0+c] * x[c0+c]
		}
	}
	// Drained partial sums are the tile's contribution to y.
	for r := 0; r < tr; r++ {
		y[r0+r] += ps[r]
	}
	// Partial sums exit at the physical right edge and inputs load at
	// the physical top edge, so a tile pass occupies the full array
	// traversal regardless of how much of the grid it fills — the same
	// cols+rows the analytic model charges.
	return a.cols + a.rows
}

// Executor runs full-network inference through the array: the CPU
// vectorize thread gathers ready node values per stage, the array does
// the packed multiply, and the per-vertex epilogue applies response,
// bias and activation. Vertices whose aggregation is not sum cannot be
// expressed as a dot product; they fall back to the CPU path and are
// counted in FallbackVertices.
type Executor struct {
	arr *Array
	// FallbackVertices counts vertex updates the array could not take.
	FallbackVertices int64
	// ArrayCycles accumulates simulated array cycles.
	ArrayCycles int64
}

// NewExecutor wraps an array.
func NewExecutor(arr *Array) *Executor { return &Executor{arr: arr} }

// Infer evaluates the genome's network on one observation through the
// array. The genome is first passed through its packed 64-bit encoding
// so all attributes are at hardware precision.
func (e *Executor) Infer(g *gene.Genome, obs []float64) ([]float64, error) {
	hw := gene.FromWords(g.ID, g.Pack()) // quantize to the gene word
	net, err := network.New(hw)
	if err != nil {
		return nil, err
	}
	return e.inferNet(hw, net, obs)
}

// Compiled is a per-genome execution state: the vectorize routine's
// output (stage membership, source indices, weight matrices) computed
// once per generation, as the System CPU does ("the weight matrices do
// not change within a given generation, and are reused for multiple
// inferences"). Feed then runs one inference per environment step on
// the array.
type Compiled struct {
	ex       *Executor
	inputs   []int32
	outputs  []int32
	stages   []compiledStage
	vertex   map[int32]vertexEpilogue
	values   map[int32]float64
	fallback []int32 // non-sum vertices, evaluated on the CPU path
	genome   *gene.Genome
}

// compiledStage is one packed matrix–vector stage.
type compiledStage struct {
	rows []int32 // destination vertices (sum aggregation only)
	srcs []int32 // input vector membership
	w    [][]float64
	x    []float64
	// cpuRows are the layer's non-sum vertices.
	cpuRows []int32
}

// vertexEpilogue is the per-vertex activation applied after the MACs.
type vertexEpilogue struct {
	bias, resp float64
	act        gene.Activation
}

// Compile builds the per-generation state for one genome (quantized to
// the hardware gene word).
func (e *Executor) Compile(g *gene.Genome) (*Compiled, error) {
	hw := gene.FromWords(g.ID, g.Pack())
	layers, err := layering(hw)
	if err != nil {
		return nil, err
	}
	c := &Compiled{
		ex:      e,
		inputs:  hw.InputIDs(),
		outputs: hw.OutputIDs(),
		vertex:  make(map[int32]vertexEpilogue, len(hw.Nodes)),
		values:  make(map[int32]float64, len(hw.Nodes)),
		genome:  hw,
	}
	for _, n := range hw.Nodes {
		c.vertex[n.NodeID] = vertexEpilogue{bias: n.Bias, resp: n.Response, act: n.Activation}
	}
	for _, layer := range layers {
		st := compiledStage{}
		srcIdx := map[int32]int{}
		for _, id := range layer {
			n, _ := hw.Node(id)
			if n.Aggregation != gene.AggSum {
				st.cpuRows = append(st.cpuRows, id)
				continue
			}
			st.rows = append(st.rows, id)
			for _, cn := range hw.Conns {
				if cn.Enabled && cn.Dst == id {
					if _, ok := srcIdx[cn.Src]; !ok {
						srcIdx[cn.Src] = len(st.srcs)
						st.srcs = append(st.srcs, cn.Src)
					}
				}
			}
		}
		// Fallback rows also need their sources resolvable; they read
		// values directly, no matrix needed.
		st.w = make([][]float64, len(st.rows))
		st.x = make([]float64, len(st.srcs))
		for r, id := range st.rows {
			st.w[r] = make([]float64, len(st.srcs))
			for _, cn := range hw.Conns {
				if cn.Enabled && cn.Dst == id {
					st.w[r][srcIdx[cn.Src]] = cn.Weight
				}
			}
		}
		c.stages = append(c.stages, st)
	}
	return c, nil
}

// NumInputs returns the observation width.
func (c *Compiled) NumInputs() int { return len(c.inputs) }

// NumOutputs returns the action width.
func (c *Compiled) NumOutputs() int { return len(c.outputs) }

// Feed runs one inference pass on the simulated array. The returned
// slice is reused across calls.
func (c *Compiled) Feed(obs []float64) ([]float64, error) {
	if len(obs) != len(c.inputs) {
		return nil, fmt.Errorf("adam: observation width %d, want %d", len(obs), len(c.inputs))
	}
	for i, id := range c.inputs {
		c.values[id] = obs[i]
	}
	for si := range c.stages {
		st := &c.stages[si]
		for i, s := range st.srcs {
			st.x[i] = c.values[s]
		}
		if len(st.rows) > 0 {
			y, cycles, err := c.ex.arr.MatVec(st.w, st.x)
			if err != nil {
				return nil, err
			}
			c.ex.ArrayCycles += int64(cycles)
			for r, id := range st.rows {
				v := c.vertex[id]
				c.values[id] = network.Activate(v.act, v.bias+v.resp*y[r])
			}
		}
		for _, id := range st.cpuRows {
			n, _ := c.genome.Node(id)
			c.values[id] = cpuVertex(c.genome, n, c.values)
			c.ex.FallbackVertices++
		}
	}
	out := make([]float64, len(c.outputs))
	for i, id := range c.outputs {
		out[i] = c.values[id]
	}
	return out, nil
}

func (e *Executor) inferNet(g *gene.Genome, net *network.Network, obs []float64) ([]float64, error) {
	if len(obs) != net.NumInputs() {
		return nil, fmt.Errorf("adam: observation width %d, want %d", len(obs), net.NumInputs())
	}
	// Values by node id; inputs seeded from the observation.
	values := make(map[int32]float64, len(g.Nodes))
	for i, id := range g.InputIDs() {
		values[id] = obs[i]
	}

	// Stage order: reuse the network's layering via its plan, but we
	// need node identities per stage, so rebuild the layering here from
	// the genome (same longest-path rule as network.New).
	layers, err := layering(g)
	if err != nil {
		return nil, err
	}

	for _, layer := range layers {
		// Vectorize: distinct ready sources feeding this layer.
		srcIdx := map[int32]int{}
		var srcs []int32
		for _, id := range layer {
			for _, c := range g.Conns {
				if c.Enabled && c.Dst == id {
					if _, ok := srcIdx[c.Src]; !ok {
						srcIdx[c.Src] = len(srcs)
						srcs = append(srcs, c.Src)
					}
				}
			}
		}
		x := make([]float64, len(srcs))
		for i, s := range srcs {
			x[i] = values[s]
		}

		// Split the layer into array vertices (sum aggregation) and
		// CPU-fallback vertices.
		var rows []int32
		for _, id := range layer {
			n, _ := g.Node(id)
			if n.Aggregation == gene.AggSum {
				rows = append(rows, id)
			} else {
				values[id] = cpuVertex(g, n, values)
				e.FallbackVertices++
			}
		}
		if len(rows) == 0 {
			continue
		}
		w := make([][]float64, len(rows))
		for r, id := range rows {
			w[r] = make([]float64, len(srcs))
			for _, c := range g.Conns {
				if c.Enabled && c.Dst == id {
					w[r][srcIdx[c.Src]] = c.Weight
				}
			}
		}
		y, cycles, err := e.arr.MatVec(w, x)
		if err != nil {
			return nil, err
		}
		e.ArrayCycles += int64(cycles)
		for r, id := range rows {
			n, _ := g.Node(id)
			values[id] = network.Activate(n.Activation, n.Bias+n.Response*y[r])
		}
	}

	out := make([]float64, 0, len(g.OutputIDs()))
	for _, id := range g.OutputIDs() {
		out = append(out, values[id])
	}
	return out, nil
}

// cpuVertex evaluates a non-sum-aggregation vertex on the CPU path.
func cpuVertex(g *gene.Genome, n gene.Gene, values map[int32]float64) float64 {
	var acc []float64
	for _, c := range g.Conns {
		if c.Enabled && c.Dst == n.NodeID {
			acc = append(acc, values[c.Src]*c.Weight)
		}
	}
	return network.Activate(n.Activation, n.Bias+n.Response*network.Aggregate(n.Aggregation, acc))
}

// layering groups non-input nodes by longest-path depth over enabled
// connections (mirrors network.New; returns an error on cycles).
func layering(g *gene.Genome) ([][]int32, error) {
	depth := map[int32]int{}
	indeg := map[int32]int{}
	adj := map[int32][]int32{}
	for _, c := range g.Conns {
		if !c.Enabled {
			continue
		}
		adj[c.Src] = append(adj[c.Src], c.Dst)
		indeg[c.Dst]++
	}
	var queue []int32
	for _, n := range g.Nodes {
		if indeg[n.NodeID] == 0 {
			queue = append(queue, n.NodeID)
		}
	}
	seen := 0
	maxDepth := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, nx := range adj[id] {
			if d := depth[id] + 1; d > depth[nx] {
				depth[nx] = d
				if d > maxDepth {
					maxDepth = d
				}
			}
			indeg[nx]--
			if indeg[nx] == 0 {
				queue = append(queue, nx)
			}
		}
	}
	if seen != len(g.Nodes) {
		return nil, fmt.Errorf("adam: genome %d has a cycle", g.ID)
	}
	layers := make([][]int32, maxDepth+1)
	for _, n := range g.Nodes {
		if n.Type == gene.Input && depth[n.NodeID] == 0 {
			continue
		}
		d := depth[n.NodeID]
		layers[d] = append(layers[d], n.NodeID)
	}
	var out [][]int32
	for _, l := range layers {
		if len(l) > 0 {
			out = append(out, l)
		}
	}
	return out, nil
}
