package eve

import (
	"testing"

	"repro/internal/hw/noc"
	"repro/internal/neat"
	"repro/internal/rng"
	"repro/internal/trace"
)

// syntheticGeneration builds a trace generation with `children` children
// drawn from `parents` parents of `genes` genes each, with heavy reuse
// of parent 0 (the "fit parent" pattern of Fig. 4c).
func syntheticGeneration(children, parents, genes int) *trace.Generation {
	g := &trace.Generation{
		Index:       0,
		ParentSizes: map[int64]int{},
	}
	for p := 0; p < parents; p++ {
		g.ParentSizes[int64(p)] = genes
		g.PopulationGenes += genes
	}
	r := rng.New(1)
	for c := 0; c < children; c++ {
		child := trace.ChildRecord{
			Child:   int64(1000 + c),
			Parent1: 0, // hot parent
			Parent2: int64(1 + r.Intn(parents-1)),
		}
		child.Ops[neat.OpCrossover] = int64(genes)
		child.Ops[neat.OpPerturb] = int64(genes / 2)
		child.Ops[neat.OpAddConn] = 1
		g.Children = append(g.Children, child)
	}
	return g
}

// realTrace evolves a real population and returns its trace.
func realTrace(t *testing.T) *trace.Trace {
	t.Helper()
	cfg := neat.DefaultConfig(4, 2)
	cfg.PopulationSize = 50
	pop, err := neat.NewPopulation(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	tr := &trace.Trace{}
	pop.SetRecorder(tr)
	r := rng.New(5)
	for gen := 0; gen < 3; gen++ {
		for _, g := range pop.Genomes {
			g.Fitness = r.Float64()
		}
		if _, err := pop.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestReportBasics(t *testing.T) {
	g := syntheticGeneration(150, 10, 100)
	e := New(DefaultConfig(256, noc.MulticastTree), nil)
	r := e.RunGeneration(g)
	if r.Children != 150 {
		t.Fatalf("children %d", r.Children)
	}
	if r.Waves != 1 {
		t.Fatalf("150 children on 256 PEs took %d waves", r.Waves)
	}
	if r.TotalCycles <= 0 || r.StreamCycles <= 0 || r.SelectorCycles <= 0 {
		t.Fatalf("degenerate cycles: %+v", r)
	}
	if r.SRAMWrites <= 0 || r.SRAMReads <= 0 {
		t.Fatalf("no SRAM traffic: %+v", r)
	}
	if r.GeneOps != 150*(100+50+1) {
		t.Fatalf("gene ops %d", r.GeneOps)
	}
	if r.TotalEnergyPJ() <= 0 {
		t.Fatal("no energy")
	}
	if r.Utilization <= 0 || r.Utilization > 1 {
		t.Fatalf("utilization %v", r.Utilization)
	}
}

func TestMulticastReducesReads(t *testing.T) {
	g := syntheticGeneration(150, 5, 500)
	p2p := New(DefaultConfig(256, noc.PointToPoint), nil).RunGeneration(g)
	mc := New(DefaultConfig(256, noc.MulticastTree), nil).RunGeneration(g)
	if mc.SRAMReads >= p2p.SRAMReads {
		t.Fatalf("multicast reads %d not below p2p %d", mc.SRAMReads, p2p.SRAMReads)
	}
	// Heavy parent reuse (parent 0 in every child): expect a large
	// reduction, the Fig. 11b effect.
	if p2p.SRAMReads/mc.SRAMReads < 20 {
		t.Fatalf("reduction only %d×", p2p.SRAMReads/mc.SRAMReads)
	}
	// Writes are identical: every child genome is written once.
	if mc.SRAMWrites != p2p.SRAMWrites {
		t.Fatalf("writes differ: %d vs %d", mc.SRAMWrites, p2p.SRAMWrites)
	}
}

func TestMorePEsFewerWavesFasterGeneration(t *testing.T) {
	g := syntheticGeneration(150, 10, 200)
	prevCycles := int64(1 << 62)
	prevWaves := 1 << 30
	for _, pes := range []int{2, 8, 32, 128} {
		r := New(DefaultConfig(pes, noc.MulticastTree), nil).RunGeneration(g)
		if r.Waves > prevWaves {
			t.Fatalf("%d PEs: waves grew to %d", pes, r.Waves)
		}
		if r.StreamCycles > prevCycles {
			t.Fatalf("%d PEs: cycles grew to %d", pes, r.StreamCycles)
		}
		prevCycles, prevWaves = r.StreamCycles, r.Waves
	}
}

func TestMorePEsWithMulticastFewerReads(t *testing.T) {
	// The Fig. 11c effect: at low PE counts, children sharing a parent
	// run in different waves, so the parent is re-read; more PEs let a
	// single multicast read serve them.
	g := syntheticGeneration(150, 5, 300)
	few := New(DefaultConfig(2, noc.MulticastTree), nil).RunGeneration(g)
	many := New(DefaultConfig(256, noc.MulticastTree), nil).RunGeneration(g)
	if many.SRAMReads >= few.SRAMReads {
		t.Fatalf("reads did not fall with PEs: %d (2 PEs) vs %d (256 PEs)",
			few.SRAMReads, many.SRAMReads)
	}
	if few.SRAMReads/many.SRAMReads < 10 {
		t.Fatalf("read reduction only %d×", few.SRAMReads/many.SRAMReads)
	}
}

func TestGreedyAllocationCoSchedulesSiblings(t *testing.T) {
	// 4 children of one parent pair + 4 of another, 4 PEs: greedy
	// packing puts each family in its own wave, so multicast reads are
	// one stream per parent per wave.
	g := &trace.Generation{ParentSizes: map[int64]int{0: 100, 1: 100, 2: 100, 3: 100}}
	for c := 0; c < 8; c++ {
		child := trace.ChildRecord{Child: int64(c)}
		if c < 4 {
			child.Parent1, child.Parent2 = 0, 1
		} else {
			child.Parent1, child.Parent2 = 2, 3
		}
		child.Ops[neat.OpCrossover] = 100
		g.Children = append(g.Children, child)
	}
	r := New(DefaultConfig(4, noc.MulticastTree), nil).RunGeneration(g)
	if r.Waves != 2 {
		t.Fatalf("waves %d, want 2", r.Waves)
	}
	// 2 streams of 100 genes per wave × 2 waves = 400 reads.
	if r.SRAMReads != 400 {
		t.Fatalf("reads %d, want 400", r.SRAMReads)
	}
}

func TestMutationOnlyChildren(t *testing.T) {
	g := &trace.Generation{ParentSizes: map[int64]int{7: 50}}
	child := trace.ChildRecord{Child: 1, Parent1: 7, Parent2: -1}
	child.Ops[neat.OpPerturb] = 20
	g.Children = append(g.Children, child)
	r := New(DefaultConfig(8, noc.MulticastTree), nil).RunGeneration(g)
	if r.SRAMReads != 50 {
		t.Fatalf("clone child read %d genes, want parent's 50", r.SRAMReads)
	}
	if r.SRAMWrites != 50 {
		t.Fatalf("clone child wrote %d genes, want 50", r.SRAMWrites)
	}
}

func TestRealTraceReplay(t *testing.T) {
	tr := realTrace(t)
	e := New(DefaultConfig(256, noc.MulticastTree), nil)
	for i := range tr.Generations {
		r := e.RunGeneration(&tr.Generations[i])
		if r.TotalCycles <= 0 || r.GeneOps <= 0 {
			t.Fatalf("generation %d: empty report %+v", i, r)
		}
		if r.SRAMWrites <= 0 {
			t.Fatalf("generation %d: no child writes", i)
		}
	}
	if e.Buffer().ReadCount() <= 0 {
		t.Fatal("shared buffer saw no traffic")
	}
}

func TestFIFOAllocationIgnoresFamilies(t *testing.T) {
	// Interleaved families on 2 PEs: greedy groups siblings (2 waves of
	// one family each → 1 stream per parent per wave); FIFO interleaves
	// them (each wave touches both families → more streams per wave).
	g := &trace.Generation{ParentSizes: map[int64]int{0: 100, 1: 100}}
	for c := 0; c < 4; c++ {
		child := trace.ChildRecord{Child: int64(c), Parent1: int64(c % 2), Parent2: -1}
		child.Ops[neat.OpCrossover] = 100
		g.Children = append(g.Children, child)
	}
	gCfg := DefaultConfig(2, noc.MulticastTree)
	fCfg := gCfg
	fCfg.Allocation = AllocFIFO
	greedy := New(gCfg, nil).RunGeneration(g)
	fifo := New(fCfg, nil).RunGeneration(g)
	// Greedy: 2 waves × 1 distinct parent = 200 reads.
	if greedy.SRAMReads != 200 {
		t.Fatalf("greedy reads %d, want 200", greedy.SRAMReads)
	}
	// FIFO: children arrive 0,1,2,3 → each wave holds both parents.
	if fifo.SRAMReads != 400 {
		t.Fatalf("fifo reads %d, want 400", fifo.SRAMReads)
	}
	if AllocGreedy.String() != "greedy" || AllocFIFO.String() != "fifo" {
		t.Fatal("allocation names wrong")
	}
}

func BenchmarkReplayAtariGeneration(b *testing.B) {
	g := syntheticGeneration(150, 30, 2400)
	e := New(DefaultConfig(256, noc.MulticastTree), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunGeneration(g)
	}
}

func TestDeterministicReplay(t *testing.T) {
	g := syntheticGeneration(64, 7, 80)
	a := New(DefaultConfig(16, noc.MulticastTree), nil).RunGeneration(g)
	b := New(DefaultConfig(16, noc.MulticastTree), nil).RunGeneration(g)
	if a != b {
		t.Fatalf("replay not deterministic:\n%+v\n%+v", a, b)
	}
}
