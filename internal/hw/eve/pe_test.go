package eve

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/env"
	"repro/internal/gene"
	"repro/internal/network"
	"repro/internal/rng"
)

// parentPair builds two homologous parents with distinct attributes.
func parentPair() (*gene.Genome, *gene.Genome) {
	p1 := gene.NewGenome(1)
	p1.Fitness = 2
	p1.PutNode(gene.NewNode(0, gene.Input))
	p1.PutNode(gene.NewNode(1, gene.Input))
	out := gene.NewNode(2, gene.Output)
	out.Bias = 1
	p1.PutNode(out)
	hid := gene.NewNode(5, gene.Hidden)
	hid.Bias = 0.5
	p1.PutNode(hid)
	p1.PutConn(gene.NewConn(0, 5, 1.0))
	p1.PutConn(gene.NewConn(1, 5, 1.0))
	p1.PutConn(gene.NewConn(5, 2, 1.0))
	p1.PutConn(gene.NewConn(0, 2, 1.0))

	p2 := p1.Clone()
	p2.ID = 2
	p2.Fitness = 1
	for i := range p2.Conns {
		p2.Conns[i].Weight = -1.0
	}
	n, _ := p2.Node(2)
	n.Bias = -1
	p2.PutNode(n)
	return p1, p2
}

// passthroughCfg disables all stochastic stages.
func passthroughCfg() PEConfig {
	return PEConfig{CrossoverBias: 1.0, MaxDeletedNodes: 1}
}

func TestPassthroughChildEqualsParent1(t *testing.T) {
	p1, p2 := parentPair()
	child, st := RunChild(p1, p2, 9, passthroughCfg(), rng.New(1))
	if child.NumGenes() != p1.NumGenes() {
		t.Fatalf("child %d genes, parent %d", child.NumGenes(), p1.NumGenes())
	}
	if err := child.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, c := range child.Conns {
		if c.Weight != p1.Conns[i].Weight {
			t.Fatalf("weight changed in passthrough: %v", c)
		}
	}
	if st.CyclesStreamed != p1.NumGenes() {
		t.Fatalf("streamed %d cycles for %d genes", st.CyclesStreamed, p1.NumGenes())
	}
	if st.Crossovers != p1.NumGenes() {
		t.Fatalf("crossovers %d", st.Crossovers)
	}
}

func TestCrossoverBiasZeroTakesParent2(t *testing.T) {
	p1, p2 := parentPair()
	cfg := passthroughCfg()
	cfg.CrossoverBias = 0 // every attribute from parent 2
	child, _ := RunChild(p1, p2, 9, cfg, rng.New(1))
	for _, c := range child.Conns {
		if c.Weight != -1.0 {
			t.Fatalf("attribute not from parent 2: %v", c)
		}
	}
	n, _ := child.Node(2)
	if n.Bias != -1 {
		t.Fatalf("node bias not from parent 2: %v", n)
	}
}

func TestCrossoverMixingRate(t *testing.T) {
	p1, p2 := parentPair()
	cfg := passthroughCfg()
	cfg.CrossoverBias = 0.5
	prng := rng.New(7)
	fromP2 := 0
	const trials = 400
	for i := 0; i < trials; i++ {
		child, _ := RunChild(p1, p2, int64(i), cfg, prng)
		c, _ := child.Conn(0, 2)
		if c.Weight == -1.0 {
			fromP2++
		}
	}
	frac := float64(fromP2) / trials
	if math.Abs(frac-0.5) > 0.1 {
		t.Fatalf("bias-0.5 mixing skewed: %.2f from parent 2", frac)
	}
}

func TestPerturbationQuantizedAndBounded(t *testing.T) {
	p1, _ := parentPair()
	cfg := passthroughCfg()
	cfg.PerturbProb = 1
	cfg.PerturbScale = 4
	prng := rng.New(3)
	for i := 0; i < 50; i++ {
		child, st := RunChild(p1, nil, int64(i), cfg, prng)
		if st.Perturbs == 0 {
			t.Fatal("no perturbations at prob 1")
		}
		for _, c := range child.Conns {
			if c.Weight >= gene.AttrLimit || c.Weight < -gene.AttrLimit {
				t.Fatalf("weight out of hardware range: %v", c.Weight)
			}
			if gene.Quantize(c.Weight) != c.Weight {
				t.Fatalf("weight not quantized: %v", c.Weight)
			}
		}
		p1 = child
	}
}

func TestDeleteNodeThreshold(t *testing.T) {
	p1, _ := parentPair()
	cfg := passthroughCfg()
	cfg.DeleteProb = 1
	cfg.MaxDeletedNodes = 1
	// DeleteProb 1 also deletes every connection; expect a heavily
	// pruned but structurally valid child with at most 1 node deleted.
	child, st := RunChild(p1, nil, 9, cfg, rng.New(5))
	if st.DeletedNodes > 1 {
		t.Fatalf("threshold breached: %d nodes deleted", st.DeletedNodes)
	}
	if err := child.Validate(); err != nil {
		t.Fatal(err)
	}
	// IO nodes always survive.
	if !child.HasNode(0) || !child.HasNode(1) || !child.HasNode(2) {
		t.Fatal("io node deleted")
	}
}

func TestAddNodeDropsIncomingConn(t *testing.T) {
	p1, _ := parentPair()
	cfg := passthroughCfg()
	cfg.AddNodeProb = 1 // split on the first connection drawn
	child, st := RunChild(p1, nil, 9, cfg, rng.New(9))
	if st.AddedNodes == 0 {
		t.Fatal("no node added at prob 1")
	}
	if st.AddedConns < 2*st.AddedNodes {
		t.Fatalf("added %d nodes but only %d conns", st.AddedNodes, st.AddedConns)
	}
	if err := child.Validate(); err != nil {
		t.Fatal(err)
	}
	// Hardware semantics: the split connection is dropped, not
	// disabled, so every connection in the child is enabled.
	for _, c := range child.Conns {
		if !c.Enabled {
			t.Fatalf("disabled connection survived a drop-splitting PE: %v", c)
		}
	}
	// New node ids come from the max-id register.
	if child.MaxNodeIDIn() <= p1.MaxNodeIDIn() {
		t.Fatal("no fresh node id assigned")
	}
}

func TestAddConnTwoCycleProducesValidEdges(t *testing.T) {
	p1, _ := parentPair()
	cfg := passthroughCfg()
	cfg.AddConnProb = 1
	child, st := RunChild(p1, nil, 9, cfg, rng.New(11))
	if st.AddedConns == 0 {
		t.Fatal("no connection added at prob 1")
	}
	if err := child.Validate(); err != nil {
		t.Fatalf("two-cycle addition produced invalid genome: %v", err)
	}
}

func TestMutationOnlyChildWithoutParent2(t *testing.T) {
	p1, _ := parentPair()
	child, st := RunChild(p1, nil, 9, passthroughCfg(), rng.New(2))
	if st.Crossovers != 0 {
		t.Fatalf("crossovers counted without a second parent: %d", st.Crossovers)
	}
	if child.NumGenes() != p1.NumGenes() {
		t.Fatal("clone-path child differs structurally")
	}
}

// Property: arbitrary seeds and default probabilities always yield a
// structurally valid child (sorted clusters, no dangling connections,
// no connections into inputs).
func TestQuickPEAlwaysValid(t *testing.T) {
	p1, p2 := parentPair()
	f := func(seed uint64) bool {
		cfg := DefaultPEConfig()
		cfg.AddNodeProb = 0.1
		cfg.AddConnProb = 0.2
		cfg.DeleteProb = 0.05
		child, _ := RunChild(p1, p2, 9, cfg, rng.New(seed))
		return child.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHardwareReproducerGeneration(t *testing.T) {
	p1, p2 := parentPair()
	pop := []*gene.Genome{p1, p2}
	h := NewHardwareReproducer(13)
	next := h.NextGeneration(pop, 20)
	if len(next) != 20 {
		t.Fatalf("produced %d children", len(next))
	}
	ids := map[int64]bool{}
	for _, g := range next {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
		if ids[g.ID] {
			t.Fatalf("duplicate child id %d", g.ID)
		}
		ids[g.ID] = true
	}
	if h.Stats.CyclesStreamed == 0 {
		t.Fatal("no PE activity recorded")
	}
}

func TestHardwareReproducerEmpty(t *testing.T) {
	h := NewHardwareReproducer(1)
	if h.NextGeneration(nil, 10) != nil {
		t.Fatal("empty population reproduced")
	}
}

// TestHardwareEvolutionLearnsCartPole is the integration claim of the
// paper: the functional hardware datapath — quantized genes, 8-bit
// randoms, PE pipeline — can evolve a working controller end to end.
func TestHardwareEvolutionLearnsCartPole(t *testing.T) {
	e, err := env.New("cartpole")
	if err != nil {
		t.Fatal(err)
	}
	// Seed population: minimal topology at quantized precision.
	const popSize = 64
	pop := make([]*gene.Genome, popSize)
	for i := range pop {
		g := gene.NewGenome(int64(i))
		for in := int32(0); in < 4; in++ {
			g.PutNode(gene.NewNode(in, gene.Input))
		}
		g.PutNode(gene.NewNode(4, gene.Output))
		for in := int32(0); in < 4; in++ {
			g.PutConn(gene.NewConn(in, 4, 0))
		}
		pop[i] = g
	}
	evaluate := func(g *gene.Genome) float64 {
		n, err := network.New(g)
		if err != nil {
			// Hardware has no cycle checker; a cyclic child just
			// scores zero (the environment run would fail).
			return 0
		}
		obs := e.Reset(99)
		total := 0.0
		for {
			a, err := n.Feed(obs)
			if err != nil {
				return 0
			}
			var r float64
			var done bool
			obs, r, done = e.Step(a)
			total += r
			if done {
				return total
			}
		}
	}

	h := NewHardwareReproducer(21)
	h.PE.PerturbProb = 0.25
	h.PE.PerturbScale = 1.0
	first, best := 0.0, 0.0
	for gen := 0; gen < 30; gen++ {
		genBest := 0.0
		for _, g := range pop {
			g.Fitness = evaluate(g)
			if g.Fitness > genBest {
				genBest = g.Fitness
			}
		}
		if gen == 0 {
			first = genBest
		}
		if genBest > best {
			best = genBest
		}
		if best >= 195 {
			break
		}
		pop = h.NextGeneration(pop, popSize)
	}
	if best <= first {
		t.Fatalf("hardware evolution made no progress: gen0 %v, best %v", first, best)
	}
	t.Logf("hardware-datapath cartpole: gen0=%v best=%v", first, best)
}
