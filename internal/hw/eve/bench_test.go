package eve

import (
	"testing"

	"repro/internal/hw/noc"
	"repro/internal/neat"
	"repro/internal/trace"
)

// synthGeneration builds a deterministic reproduction generation shaped
// like a mid-run RAM workload: genome sizes spread around meanGenes,
// crossover children concentrated on a small set of fit parents (the
// genome-level-reuse pattern the multicast tree exploits), and a tail
// of mutation-only children. No randomness and no clock — the same
// arguments always produce the same generation, so the benchmark's work
// is pinned.
func synthGeneration(pop, meanGenes int) *trace.Generation {
	g := &trace.Generation{Index: 1, ParentSizes: map[int64]int{}}
	for i := 0; i < pop; i++ {
		sz := meanGenes/2 + (i*37)%meanGenes
		g.ParentSizes[int64(i)] = sz
		g.PopulationGenes += sz
	}
	for c := 0; c < pop; c++ {
		cr := trace.ChildRecord{
			Child:   int64(pop + c),
			Parent1: int64(c % (pop/4 + 1)), // heavy reuse of the fittest quarter
			Parent2: int64((c * 13) % pop),
		}
		if c%5 == 0 {
			cr.Parent2 = -1 // mutation-only child
		}
		cr.Ops[neat.OpCrossover] = int64(g.ParentSizes[cr.Parent1])
		cr.Ops[neat.OpPerturb] = int64(c % 7)
		cr.Ops[neat.OpAddConn] = int64(c % 3)
		if c%11 == 0 {
			cr.Ops[neat.OpAddNode] = 1
		}
		g.Children = append(g.Children, cr)
	}
	return g
}

// BenchmarkEvEReplay measures one EvE engine replay of a reproduction
// generation — the inner unit of the Fig. 11b/11c design-point sweeps,
// which the experiment harness runs concurrently on private engines
// over one shared trace.
func BenchmarkEvEReplay(b *testing.B) {
	g := synthGeneration(96, 3000)
	eng := New(DefaultConfig(256, noc.MulticastTree), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.RunGeneration(g)
	}
}
