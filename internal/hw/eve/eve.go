// Package eve models the EVOLUTION ENGINE: the accelerator that carries
// out selection and reproduction for every genome of the population
// (Section IV-C). It replays reproduction traces (package trace) through
// a configurable pool of processing elements, the gene split/merge
// blocks, and an interconnect model, producing the cycle, SRAM-traffic
// and energy accounts behind Fig. 9c/9d and Fig. 11.
//
// Model summary, at the abstraction the paper quotes its numbers:
//
//   - each PE is the 4-stage pipeline of Fig. 7 (crossover,
//     perturbation, delete gene, add gene) consuming one aligned parent
//     gene pair per cycle after a 2-cycle per-child setup
//     (Section IV-C5);
//   - one PE produces one whole child genome (footnote 2);
//   - the gene selector runs as a software thread on the system CPU —
//     the only serial step;
//   - PE allocation is greedy: children sharing parents are scheduled
//     in the same wave so a multicast NoC can serve them with single
//     SRAM reads (genome-level reuse).
package eve

import (
	"fmt"
	"sort"

	"repro/internal/hw/fault"
	"repro/internal/hw/hwsim"
	"repro/internal/hw/noc"
	"repro/internal/hw/sram"
	"repro/internal/neat"
	"repro/internal/trace"
)

// Allocation selects the PE allocation policy.
type Allocation int

// Allocation policies.
const (
	// AllocGreedy co-schedules children sharing parents in the same
	// wave ("PE allocation is done with a greedy policy, such that
	// maximum number of children can be created from the parents
	// currently in the SRAM") — the paper's design.
	AllocGreedy Allocation = iota
	// AllocFIFO assigns children in arrival order; the ablation
	// baseline that forgoes genome-level reuse.
	AllocFIFO
)

// String names the policy.
func (a Allocation) String() string {
	if a == AllocFIFO {
		return "fifo"
	}
	return "greedy"
}

// Config is one EvE design point.
type Config struct {
	// NumPEs is the PE pool size.
	NumPEs int
	// Allocation is the PE scheduling policy (default greedy).
	Allocation Allocation
	// NoC is the distribution/collection interconnect.
	NoC noc.Config
	// PipelineDepth is the PE pipeline length (4 stages in Fig. 7).
	PipelineDepth int
	// SetupCycles is the per-child control/fitness load time
	// ("it takes 2 cycles to load the parents' fitness values").
	SetupCycles int
	// SelectorCyclesPerGenome approximates the CPU software selector
	// cost per population member (fitness sharing + threshold + pick).
	SelectorCyclesPerGenome int
	// OpEnergyPJ is the per-gene-operation PE energy.
	OpEnergyPJ float64
}

// DefaultConfig returns the paper's design point wired to the given PE
// count and NoC kind.
func DefaultConfig(numPEs int, kind noc.Kind) Config {
	return Config{
		NumPEs: numPEs,
		NoC: noc.Config{
			Kind:              kind,
			NumPEs:            numPEs,
			SRAMReadsPerCycle: 48, // one read per bank per cycle
			HopEnergyPJ:       0.15,
		},
		PipelineDepth:           4,
		SetupCycles:             2,
		SelectorCyclesPerGenome: 16,
		OpEnergyPJ:              1.2,
	}
}

// Report is the per-generation account of the evolution phase.
type Report struct {
	// Cycles decomposes the generation's evolution time.
	SelectorCycles int64
	StreamCycles   int64
	TotalCycles    int64
	// Waves is the number of PE scheduling rounds.
	Waves int
	// Children reproduced.
	Children int
	// SRAM traffic of reproduction.
	SRAMReads  int64
	SRAMWrites int64
	// ReadsPerCycle is the mean SRAM read rate during streaming — the
	// Fig. 11b metric.
	ReadsPerCycle float64
	// Energy decomposition in pJ.
	PEEnergyPJ   float64
	NoCEnergyPJ  float64
	SRAMEnergyPJ float64
	// GeneOps is the total gene-level operation count replayed.
	GeneOps int64
	// Utilization is busy-PE-cycles over total PE-cycles while
	// streaming.
	Utilization float64
}

// TotalEnergyPJ sums the energy components.
func (r Report) TotalEnergyPJ() float64 {
	return r.PEEnergyPJ + r.NoCEnergyPJ + r.SRAMEnergyPJ
}

// Engine replays traces against a design point and a genome buffer.
// Its activity accumulates in a hwsim counter node named "eve" with
// child scopes "pe" (pipeline work) and "noc" (interconnect tally);
// the per-generation Report is a view over the same quantities.
type Engine struct {
	cfg Config
	buf *sram.Buffer
	net *noc.Network
	ctr *hwsim.Counters

	// faults, when attached, marks stuck-at PEs: dead[i] is a lifetime
	// hard fault and liveIdx lists the usable pool the scheduler remaps
	// onto (waves shrink to the live capacity, so a dead PE's children
	// spill into extra waves and pile load onto the survivors).
	faults  *fault.Plan
	dead    []bool
	liveIdx []int
}

// New builds an engine. The buffer may be shared with an ADAM model;
// pass nil to let the engine allocate a private default buffer.
func New(cfg Config, buf *sram.Buffer) *Engine {
	if buf == nil {
		buf = sram.New(sram.DefaultConfig())
	}
	if cfg.NumPEs < 1 {
		cfg.NumPEs = 1
	}
	e := &Engine{cfg: cfg, buf: buf, net: noc.NewNetwork(cfg.NoC), ctr: hwsim.New("eve")}
	e.ctr.Adopt(e.net.Counters())
	numPEs := int64(cfg.NumPEs)
	e.ctr.OnSnapshot(func(c *hwsim.Counters) {
		pe := c.Child("pe")
		c.SetFloat("energy_pj", pe.FloatValue("energy_pj")+
			c.FloatValue("noc_energy_pj")+c.FloatValue("sram_energy_pj"))
		if sc := c.IntValue("stream_cycles"); sc > 0 {
			c.SetFloat("reads_per_cycle", float64(c.IntValue("sram_reads"))/float64(sc))
			util := float64(pe.IntValue("busy_cycles")) / float64(sc*numPEs)
			if util > 1 {
				util = 1
			}
			c.SetFloat("utilization", util)
		}
	})
	return e
}

// Config returns the engine's design point.
func (e *Engine) Config() Config { return e.cfg }

// AttachFaults wires a fault plan into the engine and its interconnect.
// The plan's stuck-at map decides which PEs are dead for the chip's
// lifetime: their children are re-dispatched to live PEs (waves shrink
// to live capacity), which shows up as extra waves and per-PE load
// imbalance under the plan's "fault/eve" scope. Passing nil detaches.
func (e *Engine) AttachFaults(p *fault.Plan) {
	e.faults = p
	e.net.AttachFaults(p)
	e.dead = nil
	e.liveIdx = nil
	if p == nil {
		return
	}
	e.dead = p.DeadPEs(e.cfg.NumPEs)
	for i, d := range e.dead {
		if !d {
			e.liveIdx = append(e.liveIdx, i)
		}
	}
	if len(e.liveIdx) == 0 {
		// A fully-dead pool would deadlock the schedule; keep PE 0
		// limping so the model stays total (the imbalance counters make
		// the catastrophe visible).
		e.liveIdx = []int{0}
	}
	deadCount := int64(e.cfg.NumPEs - len(e.liveIdx))
	fc := p.EvECounters()
	fc.OnSnapshot(func(c *hwsim.Counters) {
		c.SetInt("dead_pes", deadCount)
		var max, sum int64
		for i := 0; i < e.cfg.NumPEs; i++ {
			b := c.IntValue(peBusyName(i))
			if b > max {
				max = b
			}
			sum += b
		}
		if sum > 0 {
			mean := float64(sum) / float64(len(e.liveIdx))
			c.SetFloat("busy_max", float64(max))
			c.SetFloat("busy_mean", mean)
			c.SetFloat("imbalance", float64(max)/mean)
		}
	})
}

// peBusyName is the per-PE busy-cycle counter under "fault/eve".
func peBusyName(i int) string { return fmt.Sprintf("pe%02d_busy_cycles", i) }

// Buffer exposes the genome buffer for shared accounting.
func (e *Engine) Buffer() *sram.Buffer { return e.buf }

// Name is the engine's hwsim component name.
func (e *Engine) Name() string { return "eve" }

// Counters returns the engine's live registry node.
func (e *Engine) Counters() *hwsim.Counters { return e.ctr }

// Reset zeroes the engine's counter tree, including the NoC tally.
// The shared genome buffer is not touched (its owner resets it).
func (e *Engine) Reset() { e.ctr.Reset() }

// publish charges one generation's Report into the registry. Integer
// totals accumulate; ratio metrics are re-derived from the running
// totals at snapshot time.
func (e *Engine) publish(r Report, busyPECycles int64) {
	c := e.ctr
	c.AddInt("selector_cycles", r.SelectorCycles)
	c.AddInt("stream_cycles", r.StreamCycles)
	c.AddInt("total_cycles", r.TotalCycles)
	c.AddInt("waves", int64(r.Waves))
	c.AddInt("children", int64(r.Children))
	c.AddInt("sram_reads", r.SRAMReads)
	c.AddInt("sram_writes", r.SRAMWrites)
	c.AddFloat("noc_energy_pj", r.NoCEnergyPJ)
	c.AddFloat("sram_energy_pj", r.SRAMEnergyPJ)
	pe := c.Child("pe")
	pe.AddInt("gene_ops", r.GeneOps)
	pe.AddInt("busy_cycles", busyPECycles)
	pe.AddFloat("energy_pj", r.PEEnergyPJ)
}

// pairKey groups children by their parent pair for GLR-aware
// scheduling.
type pairKey struct{ p1, p2 int64 }

// wave is one scheduling round: at most NumPEs children.
type wave struct {
	children []*trace.ChildRecord
}

// RunGeneration replays one reproduction round.
func (e *Engine) RunGeneration(g *trace.Generation) Report {
	cfg := e.cfg
	r := Report{Children: len(g.Children)}
	r.SelectorCycles = int64(cfg.SelectorCyclesPerGenome) * int64(len(g.ParentSizes))
	if r.SelectorCycles == 0 {
		r.SelectorCycles = int64(cfg.SelectorCyclesPerGenome) * int64(len(g.Children))
	}

	waves := e.allocate(g)
	r.Waves = len(waves)
	e.chargeRemap(g, len(waves))

	var busyPECycles int64
	for _, w := range waves {
		// Build the distribution streams: one per distinct parent.
		streamSet := map[int64]*noc.Stream{}
		longestChild := 0
		var childGenes int64
		for ci, c := range w.children {
			for _, pid := range []int64{c.Parent1, c.Parent2} {
				if pid < 0 {
					continue
				}
				s, ok := streamSet[pid]
				if !ok {
					s = &noc.Stream{Genes: e.parentSize(g, c, pid)}
					streamSet[pid] = s
				}
				s.Consumers++
			}
			size := childStreamLen(g, c)
			if size > longestChild {
				longestChild = size
			}
			childGenes += childSize(c, g)
			busy := int64(cfg.SetupCycles + size + cfg.PipelineDepth)
			busyPECycles += busy
			if e.faults != nil {
				// Children fill the live PEs in ascending index order.
				pe := e.liveIdx[ci%len(e.liveIdx)]
				e.faults.EvECounters().AddInt(peBusyName(pe), busy)
			}
		}
		streams := make([]noc.Stream, 0, len(streamSet))
		for _, s := range streamSet {
			streams = append(streams, *s)
		}

		d := e.net.Distribute(streams)
		coll := e.net.Collect(childGenes)
		r.SRAMReads += d.SRAMReads
		r.SRAMWrites += childGenes
		r.NoCEnergyPJ += d.EnergyPJ + coll.EnergyPJ

		waveCycles := int64(cfg.SetupCycles + longestChild + cfg.PipelineDepth)
		if d.Cycles > waveCycles {
			waveCycles = d.Cycles
		}
		r.StreamCycles += waveCycles
	}

	// Charge the SRAM traffic against the shared buffer.
	e.buf.Read(r.SRAMReads)
	e.buf.Write(r.SRAMWrites)
	r.SRAMEnergyPJ = float64(r.SRAMReads+r.SRAMWrites) * e.buf.Config().AccessPJ

	for i := range g.Children {
		r.GeneOps += g.Children[i].TotalOps()
	}
	r.PEEnergyPJ = float64(r.GeneOps) * cfg.OpEnergyPJ

	r.TotalCycles = r.SelectorCycles + r.StreamCycles
	if r.StreamCycles > 0 {
		r.ReadsPerCycle = float64(r.SRAMReads) / float64(r.StreamCycles)
		r.Utilization = float64(busyPECycles) /
			float64(r.StreamCycles*int64(cfg.NumPEs))
		if r.Utilization > 1 {
			r.Utilization = 1
		}
	}
	e.publish(r, busyPECycles)
	return r
}

// allocate builds the wave schedule under the configured policy.
//
// Greedy buckets children by parent pair, largest groups first, and
// fills waves group-by-group so same-parent children are co-scheduled
// (maximizing multicast fan-out per SRAM read). FIFO packs children in
// arrival order.
func (e *Engine) allocate(g *trace.Generation) []wave {
	cfg := e.cfg
	ordered := make([]*trace.ChildRecord, 0, len(g.Children))
	if cfg.Allocation == AllocFIFO {
		for i := range g.Children {
			ordered = append(ordered, &g.Children[i])
		}
	} else {
		groups := map[pairKey][]*trace.ChildRecord{}
		var order []pairKey
		for i := range g.Children {
			c := &g.Children[i]
			k := pairKey{c.Parent1, c.Parent2}
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], c)
		}
		sort.Slice(order, func(i, j int) bool {
			if len(groups[order[i]]) != len(groups[order[j]]) {
				return len(groups[order[i]]) > len(groups[order[j]])
			}
			// Deterministic tiebreak.
			if order[i].p1 != order[j].p1 {
				return order[i].p1 < order[j].p1
			}
			return order[i].p2 < order[j].p2
		})
		for _, k := range order {
			ordered = append(ordered, groups[k]...)
		}
	}

	var waves []wave
	capacity := e.waveCapacity()
	cur := wave{}
	for _, c := range ordered {
		if len(cur.children) == capacity {
			waves = append(waves, cur)
			cur = wave{}
		}
		cur.children = append(cur.children, c)
	}
	if len(cur.children) > 0 {
		waves = append(waves, cur)
	}
	return waves
}

// waveCapacity is the number of children one wave can host: the full
// pool on a healthy chip, only the live PEs under stuck-at faults.
func (e *Engine) waveCapacity() int {
	if e.faults != nil && len(e.liveIdx) < e.cfg.NumPEs {
		return len(e.liveIdx)
	}
	return e.cfg.NumPEs
}

// chargeRemap itemizes the scheduling cost of dead PEs for one
// generation: how many children would have landed on a dead PE under
// fault-free packing (and so were re-dispatched), and how many extra
// waves the shrunken pool needed.
func (e *Engine) chargeRemap(g *trace.Generation, actualWaves int) {
	if e.faults == nil || len(g.Children) == 0 || len(e.liveIdx) == e.cfg.NumPEs {
		return
	}
	fc := e.faults.EvECounters()
	ideal := (len(g.Children) + e.cfg.NumPEs - 1) / e.cfg.NumPEs
	if extra := actualWaves - ideal; extra > 0 {
		fc.AddInt("extra_waves", int64(extra))
	}
	var redispatched int64
	for k := range g.Children {
		if e.dead[k%e.cfg.NumPEs] {
			redispatched++
		}
	}
	if redispatched > 0 {
		fc.AddInt("redispatched_children", redispatched)
	}
}

// parentSize returns the gene count of parent pid, falling back to the
// child's crossover op count when the snapshot is missing.
func (e *Engine) parentSize(g *trace.Generation, c *trace.ChildRecord, pid int64) int {
	if sz, ok := g.ParentSizes[pid]; ok && sz > 0 {
		return sz
	}
	if n := int(c.GenesStreamed()); n > 0 {
		return n
	}
	return 1
}

// childStreamLen is the number of cycles a PE spends streaming this
// child: the longer of the two aligned parent streams.
func childStreamLen(g *trace.Generation, c *trace.ChildRecord) int {
	longest := 0
	for _, pid := range []int64{c.Parent1, c.Parent2} {
		if pid < 0 {
			continue
		}
		if sz := g.ParentSizes[pid]; sz > longest {
			longest = sz
		}
	}
	if n := int(c.GenesStreamed()); n > longest {
		longest = n
	}
	if longest == 0 {
		longest = 1
	}
	return longest
}

// childSize estimates the genes written back for this child: the
// inherited topology plus additions minus deletions.
func childSize(c *trace.ChildRecord, g *trace.Generation) int64 {
	base := c.Ops[neat.OpCrossover] // genes inherited through crossover
	if base == 0 {
		// Mutation-only child: clone of parent1.
		base = int64(g.ParentSizes[c.Parent1])
	}
	size := base + c.Ops[neat.OpAddNode] + c.Ops[neat.OpAddConn] -
		c.Ops[neat.OpDeleteNode] - c.Ops[neat.OpDeleteConn]
	if size < 1 {
		size = 1
	}
	return size
}
