package eve

import (
	"sort"

	"repro/internal/gene"
	"repro/internal/rng"
)

// HardwareReproducer evolves populations entirely through the
// functional PE datapath: the system-CPU selector thread picks parents
// (step 7 of the walkthrough), the gene split block streams them
// through PEs (steps 8–9), and the gene merge block writes children
// back (step 10). This is the "evolve the topology and weights of
// neural networks completely in hardware" claim, executed.
//
// The selector here is truncation selection with elitism — the
// software thread on the Cortex-M0 is free to implement any policy;
// speciation bookkeeping stays an algorithm-level concern (package
// neat) and is intentionally not part of the datapath model.
type HardwareReproducer struct {
	// PE is the pipeline configuration shared by all PEs.
	PE PEConfig
	// SurvivalThreshold is the parent-pool fraction.
	SurvivalThreshold float64
	// Elitism copies the top genomes unchanged.
	Elitism int
	// CrossoverRate is the two-parent child probability.
	CrossoverRate float64
	// TournamentSize biases parent picks toward fitter survivors
	// (1 = uniform).
	TournamentSize int

	prng   *rng.XorWow
	nextID int64
	// Stats accumulates PE activity across generations.
	Stats PEStats
}

// NewHardwareReproducer seeds the shared PRNG block.
func NewHardwareReproducer(seed uint64) *HardwareReproducer {
	return &HardwareReproducer{
		PE:                DefaultPEConfig(),
		SurvivalThreshold: 0.2,
		Elitism:           2,
		CrossoverRate:     0.75,
		TournamentSize:    3,
		prng:              rng.New(seed),
		nextID:            1 << 32, // clear of software-assigned ids
	}
}

// NextGeneration produces popSize children from the evaluated genomes.
func (h *HardwareReproducer) NextGeneration(genomes []*gene.Genome, popSize int) []*gene.Genome {
	if len(genomes) == 0 || popSize <= 0 {
		return nil
	}
	// Selector: fitness sort (descending), deterministic tiebreak.
	parents := append([]*gene.Genome(nil), genomes...)
	sort.Slice(parents, func(i, j int) bool {
		if parents[i].Fitness != parents[j].Fitness {
			return parents[i].Fitness > parents[j].Fitness
		}
		return parents[i].ID < parents[j].ID
	})
	cut := int(float64(len(parents))*h.SurvivalThreshold + 0.5)
	if cut < 1 {
		cut = 1
	}
	pool := parents[:cut]

	next := make([]*gene.Genome, 0, popSize)
	for e := 0; e < h.Elitism && e < len(parents) && len(next) < popSize; e++ {
		elite := parents[e].Clone()
		elite.ID = h.nextID
		h.nextID++
		next = append(next, elite)
	}
	pick := func() *gene.Genome {
		best := pool[h.prng.Intn(len(pool))]
		for t := 1; t < h.TournamentSize; t++ {
			c := pool[h.prng.Intn(len(pool))]
			if c.Fitness > best.Fitness {
				best = c
			}
		}
		return best
	}
	for len(next) < popSize {
		p1 := pick()
		var p2 *gene.Genome
		if len(pool) > 1 && h.prng.Bool(h.CrossoverRate) {
			p2 = pick()
			for p2 == p1 {
				p2 = pool[h.prng.Intn(len(pool))]
			}
			if p2.Fitness > p1.Fitness {
				p1, p2 = p2, p1
			}
		}
		child, st := RunChild(p1, p2, h.nextID, h.PE, h.prng)
		h.nextID++
		h.accumulate(st)
		child.Fitness = 0
		next = append(next, child)
	}
	return next
}

func (h *HardwareReproducer) accumulate(st PEStats) {
	h.Stats.CyclesStreamed += st.CyclesStreamed
	h.Stats.Crossovers += st.Crossovers
	h.Stats.Perturbs += st.Perturbs
	h.Stats.DeletedNodes += st.DeletedNodes
	h.Stats.DeletedConns += st.DeletedConns
	h.Stats.AddedNodes += st.AddedNodes
	h.Stats.AddedConns += st.AddedConns
}
