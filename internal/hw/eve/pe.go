package eve

import (
	"repro/internal/gene"
	"repro/internal/rng"
)

// This file is the functional model of the EvE datapath: where eve.go
// accounts cycles and energy, the types here actually execute
// reproduction the way the silicon does — streaming packed 64-bit gene
// words through the four pipeline stages of Fig. 7, driven by 8-bit
// XOR-WOW draws — so that "evolving the topology and weights of neural
// networks completely in hardware" is demonstrated, not just priced.
//
// Hardware semantics differ from software NEAT in documented ways:
//
//   - attributes are quantized to the 64-bit gene word (Fig. 6);
//   - perturbation deltas come from an 8-bit random scaled into the
//     attribute range ("Limit & Quantize", Fig. 7);
//   - add-node drops the split connection ("the incoming connection
//     gene is dropped") where software NEAT disables it;
//   - new node ids are assigned genome-locally (max id + 1), the Add
//     Gene engine rule;
//   - no cycle check exists in the pipeline; the vectorize routine
//     tolerates back-edges by treating them as zero contributions.
type PEConfig struct {
	// CrossoverBias is the per-attribute probability of taking the
	// fitter parent's attribute (the programmable bias register).
	CrossoverBias float64
	// PerturbProb is the per-attribute perturbation probability.
	PerturbProb float64
	// PerturbScale is the full-scale magnitude of a perturbation: the
	// 8-bit random maps to [-PerturbScale, +PerturbScale).
	PerturbScale float64
	// DeleteProb is the per-gene deletion probability.
	DeleteProb float64
	// MaxDeletedNodes is the node-deletion threshold that keeps the
	// genome alive.
	MaxDeletedNodes int
	// AddNodeProb and AddConnProb are the per-gene addition
	// probabilities evaluated in the add-gene engine.
	AddNodeProb float64
	AddConnProb float64
}

// DefaultPEConfig mirrors the software defaults at hardware precision.
func DefaultPEConfig() PEConfig {
	return PEConfig{
		CrossoverBias:   0.5,
		PerturbProb:     0.08,
		PerturbScale:    0.5,
		DeleteProb:      0.002,
		MaxDeletedNodes: 1,
		AddNodeProb:     0.001,
		AddConnProb:     0.004,
	}
}

// PEStats reports what one child's pipeline pass did.
type PEStats struct {
	CyclesStreamed int
	Crossovers     int
	Perturbs       int
	DeletedNodes   int
	DeletedConns   int
	AddedNodes     int
	AddedConns     int
}

// prob8 converts a probability to the 8-bit comparator threshold the
// hardware uses.
func prob8(p float64) uint8 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 255
	}
	return uint8(p * 256)
}

// draw compares a fresh 8-bit random against a probability threshold.
func draw(prng *rng.XorWow, p float64) bool {
	return prng.Byte() < prob8(p)
}

// genePair is one aligned (parent1, parent2) gene pair from the gene
// split block; p2ok marks whether parent 2 had a homologous gene.
type genePair struct {
	p1   gene.Gene
	p2   gene.Gene
	p2ok bool
}

// splitGenes aligns the two parents' packed streams: node genes first,
// then connection genes, in key order, one pair per cycle — the gene
// split block's job. The child inherits parent 1's topology, so the
// stream walks parent 1's genes and looks up homologues in parent 2.
func splitGenes(p1, p2 *gene.Genome) []genePair {
	pairs := make([]genePair, 0, p1.NumGenes())
	for _, n := range p1.Nodes {
		pr := genePair{p1: n}
		if p2 != nil {
			pr.p2, pr.p2ok = p2.Node(n.NodeID)
		}
		pairs = append(pairs, pr)
	}
	for _, c := range p1.Conns {
		pr := genePair{p1: c}
		if p2 != nil {
			pr.p2, pr.p2ok = p2.Conn(c.Src, c.Dst)
		}
		pairs = append(pairs, pr)
	}
	return pairs
}

// pe is the functional four-stage pipeline state.
type pe struct {
	cfg  PEConfig
	prng *rng.XorWow

	// Node ID registers (Fig. 7): deleted ids, max id seen, and the
	// pending source of a two-cycle connection addition.
	deletedNodes []int32
	maxNodeID    int32
	pendingSrc   int32
	havePending  bool

	out   []gene.Gene
	stats PEStats
}

// RunChild streams one child genome through a functional PE: parent 1
// is the fitter parent (its fitness ordering is the caller's job, as in
// the chip where the selector sorts before streaming); parent 2 may be
// nil for a mutation-only child. The returned genome is rebuilt by the
// gene-merge logic: clusters sorted, duplicates resolved, dangling
// connections pruned.
func RunChild(p1, p2 *gene.Genome, childID int64, cfg PEConfig, prng *rng.XorWow) (*gene.Genome, PEStats) {
	p := &pe{cfg: cfg, prng: prng, maxNodeID: p1.MaxNodeIDIn()}
	pairs := splitGenes(p1, p2)
	for _, pr := range pairs {
		p.cycle(pr)
	}
	p.stats.CyclesStreamed = len(pairs)
	return p.merge(childID), p.stats
}

// cycle pushes one aligned gene pair through the four stages.
func (p *pe) cycle(pr genePair) {
	g := p.crossover(pr)
	g = p.perturb(g)
	g, alive := p.deleteStage(g)
	if alive {
		p.out = append(p.out, g)
	}
	p.addStage(g, alive)
}

// crossover is stage 1: per-attribute selection between the parents.
func (p *pe) crossover(pr genePair) gene.Gene {
	g := pr.p1
	if !pr.p2ok {
		return g
	}
	p.stats.Crossovers++
	pick1 := func() bool { return draw(p.prng, p.cfg.CrossoverBias) }
	if g.Kind == gene.KindNode {
		if !pick1() {
			g.Bias = pr.p2.Bias
		}
		if !pick1() {
			g.Response = pr.p2.Response
		}
		if !pick1() {
			g.Activation = pr.p2.Activation
		}
		if !pick1() {
			g.Aggregation = pr.p2.Aggregation
		}
		return g
	}
	if !pick1() {
		g.Weight = pr.p2.Weight
	}
	if !pick1() {
		g.Enabled = pr.p2.Enabled
	}
	return g
}

// mutVal produces a hardware perturbation delta: the 8-bit random
// mapped to [-scale, scale), then limited and quantized.
func (p *pe) mutVal(scale float64) float64 {
	b := p.prng.Byte()
	return (float64(b)/128 - 1) * scale
}

// perturb is stage 2: stochastic attribute perturbation.
func (p *pe) perturb(g gene.Gene) gene.Gene {
	touched := false
	if g.Kind == gene.KindNode {
		if g.Type != gene.Input {
			if draw(p.prng, p.cfg.PerturbProb) {
				g.Bias = gene.Quantize(clampAttr(g.Bias + p.mutVal(p.cfg.PerturbScale)))
				touched = true
			}
			if draw(p.prng, p.cfg.PerturbProb) {
				g.Response = gene.Quantize(clampAttr(g.Response + p.mutVal(p.cfg.PerturbScale)))
				touched = true
			}
		}
	} else {
		if draw(p.prng, p.cfg.PerturbProb) {
			g.Weight = gene.Quantize(clampAttr(g.Weight + p.mutVal(p.cfg.PerturbScale)))
			touched = true
		}
		if draw(p.prng, p.cfg.PerturbProb) {
			g.Enabled = !g.Enabled
			touched = true
		}
	}
	if touched {
		p.stats.Perturbs++
	}
	return g
}

// clampAttr bounds a perturbed attribute into the representable range.
func clampAttr(v float64) float64 {
	const lim = gene.AttrLimit
	if v >= lim {
		return lim - 1.0/(1<<12)
	}
	if v < -lim {
		return -lim
	}
	return v
}

// deleteStage is stage 3: node deletion (threshold-guarded, id stored
// in the node-id registers so later connection genes touching it are
// nullified) and connection deletion.
func (p *pe) deleteStage(g gene.Gene) (gene.Gene, bool) {
	if g.Kind == gene.KindNode {
		if g.Type == gene.Hidden &&
			len(p.deletedNodes) < p.cfg.MaxDeletedNodes &&
			draw(p.prng, p.cfg.DeleteProb) {
			p.deletedNodes = append(p.deletedNodes, g.NodeID)
			p.stats.DeletedNodes++
			return g, false
		}
		return g, true
	}
	// Connections: dropped if either endpoint was deleted, or by the
	// deletion draw.
	for _, id := range p.deletedNodes {
		if g.Src == id || g.Dst == id {
			p.stats.DeletedConns++
			return g, false
		}
	}
	if draw(p.prng, p.cfg.DeleteProb) {
		p.stats.DeletedConns++
		return g, false
	}
	return g, true
}

// addStage is stage 4: node addition (splitting the incoming
// connection, which is dropped) and the two-cycle connection addition.
func (p *pe) addStage(g gene.Gene, alive bool) {
	if g.Kind != gene.KindConn || !alive {
		return
	}
	// Node addition: replace the incoming connection with a default
	// node and two connections through it.
	if draw(p.prng, p.cfg.AddNodeProb) && p.maxNodeID < gene.MaxNodeID {
		p.maxNodeID++
		id := p.maxNodeID
		n := gene.NewNode(id, gene.Hidden)
		// The incoming connection gene is dropped (hardware semantics;
		// software NEAT disables it instead).
		p.dropLast(g)
		p.out = append(p.out, n,
			gene.NewConn(g.Src, id, 1.0),
			gene.NewConn(id, g.Dst, gene.Quantize(g.Weight)))
		p.stats.AddedNodes++
		p.stats.AddedConns += 2
		return
	}
	// Connection addition, two-cycle: latch this gene's source; on a
	// later connection gene, pair the latched source with its
	// destination.
	if !p.havePending {
		if draw(p.prng, p.cfg.AddConnProb) {
			p.pendingSrc = g.Src
			p.havePending = true
		}
		return
	}
	if g.Dst != p.pendingSrc { // avoid trivial self loops
		p.out = append(p.out, gene.NewConn(p.pendingSrc, g.Dst, 0))
		p.stats.AddedConns++
	}
	p.havePending = false
}

// dropLast removes the most recent output gene if it matches g (the
// connection the add-node engine consumes).
func (p *pe) dropLast(g gene.Gene) {
	if n := len(p.out); n > 0 {
		last := p.out[n-1]
		if last.Kind == gene.KindConn && last.Src == g.Src && last.Dst == g.Dst {
			p.out = p.out[:n-1]
		}
	}
}

// merge is the gene-merge block: rebuild the sorted two-cluster genome
// from the output stream, resolving duplicates (last write wins) and
// pruning any connection whose endpoint does not exist.
func (p *pe) merge(childID int64) *gene.Genome {
	child := gene.NewGenome(childID)
	for _, g := range p.out {
		if g.Kind == gene.KindNode {
			child.PutNode(g)
		}
	}
	for _, g := range p.out {
		if g.Kind != gene.KindConn {
			continue
		}
		if !child.HasNode(g.Src) || !child.HasNode(g.Dst) {
			continue
		}
		if dst, _ := child.Node(g.Dst); dst.Type == gene.Input {
			continue
		}
		child.PutConn(g)
	}
	return child
}
