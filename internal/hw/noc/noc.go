// Package noc models the EvE interconnect: the network that distributes
// parent genes from the gene-split block to the PEs and collects child
// genes into the gene-merge block (Section IV-C4).
//
// Two design options from the paper:
//
//   - PointToPoint: separate high-bandwidth buses, one stream per PE —
//     every PE's parent genes are read from the SRAM independently, so
//     SRAM reads grow with active PE count;
//   - MulticastTree: a tree with multicast support — one SRAM read of a
//     parent gene serves every PE consuming that parent in the same
//     wave, exploiting genome-level reuse (Fig. 11b shows >100× read
//     reduction).
package noc

import "math"

// Kind selects the interconnect topology.
type Kind int

// NoC topologies.
const (
	PointToPoint Kind = iota
	MulticastTree
)

// String names the topology.
func (k Kind) String() string {
	if k == MulticastTree {
		return "multicast-tree"
	}
	return "point-to-point"
}

// Config parameterizes the interconnect model.
type Config struct {
	Kind Kind
	// NumPEs is the number of leaf PEs the network serves.
	NumPEs int
	// SRAMReadsPerCycle is the read bandwidth the genome buffer offers
	// (banks × ports); the distribution network stalls beyond it.
	SRAMReadsPerCycle int
	// HopEnergyPJ is the energy of moving one 64-bit gene one hop.
	HopEnergyPJ float64
}

// Stream is one parent genome being distributed during a wave.
type Stream struct {
	// Genes is the stream length (the parent's gene count).
	Genes int
	// Consumers is the number of PEs consuming this stream in the wave.
	Consumers int
}

// Delivery is the accounting result of distributing one wave.
type Delivery struct {
	// SRAMReads is the number of genome-buffer word reads required.
	SRAMReads int64
	// Deliveries is the number of gene deliveries to PEs (reads ×
	// fan-out for multicast; equal to reads for point-to-point).
	Deliveries int64
	// Cycles is the distribution time: streams advance one gene per
	// cycle, stalling if the SRAM read bandwidth is exceeded.
	Cycles int64
	// ReadsPerCycle is the average SRAM read rate while the wave is
	// active — the y-axis of Fig. 11b.
	ReadsPerCycle float64
	// EnergyPJ is the interconnect traversal energy.
	EnergyPJ float64
}

// hops returns the per-delivery hop count of the topology: a bus is a
// single hop; a tree traverses log2(NumPEs) levels.
func (c Config) hops() float64 {
	if c.Kind == PointToPoint || c.NumPEs <= 2 {
		return 1
	}
	return math.Log2(float64(c.NumPEs))
}

// Distribute accounts one wave of parent-gene distribution.
//
// Under PointToPoint every consumer's copy of every gene is a separate
// SRAM read. Under MulticastTree each stream is read once and forked in
// the network. In both cases child-gene collection is handled by
// Collect.
func (c Config) Distribute(streams []Stream) Delivery {
	var d Delivery
	longest := 0
	for _, s := range streams {
		if s.Genes <= 0 || s.Consumers <= 0 {
			continue
		}
		reads := int64(s.Genes)
		if c.Kind == PointToPoint {
			reads = int64(s.Genes) * int64(s.Consumers)
		}
		d.SRAMReads += reads
		d.Deliveries += int64(s.Genes) * int64(s.Consumers)
		if s.Genes > longest {
			longest = s.Genes
		}
	}
	// Streams advance in lockstep: the wave needs at least the longest
	// stream, and at least enough cycles to issue all reads at the SRAM
	// bandwidth.
	bw := int64(c.SRAMReadsPerCycle)
	if bw <= 0 {
		bw = 1
	}
	minByBW := (d.SRAMReads + bw - 1) / bw
	d.Cycles = int64(longest)
	if minByBW > d.Cycles {
		d.Cycles = minByBW
	}
	if d.Cycles > 0 {
		d.ReadsPerCycle = float64(d.SRAMReads) / float64(d.Cycles)
	}
	d.EnergyPJ = float64(d.Deliveries) * c.HopEnergyPJ * c.hops()
	return d
}

// Collect accounts child-gene collection from the PEs into the gene
// merge block: one delivery (and eventually one SRAM write, charged by
// the caller) per produced gene, for either topology.
func (c Config) Collect(childGenes int64) Delivery {
	var d Delivery
	d.Deliveries = childGenes
	d.EnergyPJ = float64(childGenes) * c.HopEnergyPJ * c.hops()
	return d
}
