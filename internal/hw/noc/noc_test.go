package noc

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func cfg(kind Kind, pes int) Config {
	return Config{Kind: kind, NumPEs: pes, SRAMReadsPerCycle: 48, HopEnergyPJ: 0.15}
}

func TestP2PReadsScaleWithConsumers(t *testing.T) {
	streams := []Stream{{Genes: 100, Consumers: 8}}
	d := cfg(PointToPoint, 8).Distribute(streams)
	if d.SRAMReads != 800 {
		t.Fatalf("p2p reads %d, want 800", d.SRAMReads)
	}
	if d.Deliveries != 800 {
		t.Fatalf("p2p deliveries %d", d.Deliveries)
	}
}

func TestMulticastReadsOncePerStream(t *testing.T) {
	streams := []Stream{{Genes: 100, Consumers: 8}}
	d := cfg(MulticastTree, 8).Distribute(streams)
	if d.SRAMReads != 100 {
		t.Fatalf("multicast reads %d, want 100", d.SRAMReads)
	}
	if d.Deliveries != 800 {
		t.Fatalf("multicast deliveries %d", d.Deliveries)
	}
}

func TestMulticastReductionFactor(t *testing.T) {
	// 128 PEs all consuming the same hot parent: the paper's >100×
	// read reduction (Fig. 11b).
	streams := []Stream{{Genes: 1000, Consumers: 128}}
	p2p := cfg(PointToPoint, 128).Distribute(streams)
	mc := cfg(MulticastTree, 128).Distribute(streams)
	if p2p.SRAMReads/mc.SRAMReads < 100 {
		t.Fatalf("reduction only %d×", p2p.SRAMReads/mc.SRAMReads)
	}
}

func TestBandwidthStall(t *testing.T) {
	// 96 independent streams of one gene each at 48 reads/cycle need 2
	// cycles even though each stream is one cycle long.
	streams := make([]Stream, 96)
	for i := range streams {
		streams[i] = Stream{Genes: 1, Consumers: 1}
	}
	d := cfg(MulticastTree, 96).Distribute(streams)
	if d.Cycles != 2 {
		t.Fatalf("cycles %d, want 2 (bandwidth bound)", d.Cycles)
	}
}

func TestLockstepCycles(t *testing.T) {
	// One long stream dominates wave time when bandwidth suffices.
	streams := []Stream{
		{Genes: 500, Consumers: 1},
		{Genes: 10, Consumers: 1},
	}
	d := cfg(MulticastTree, 2).Distribute(streams)
	if d.Cycles != 500 {
		t.Fatalf("cycles %d, want 500", d.Cycles)
	}
	if d.ReadsPerCycle <= 1 || d.ReadsPerCycle > 2 {
		t.Fatalf("reads/cycle %v", d.ReadsPerCycle)
	}
}

func TestEmptyAndDegenerateStreams(t *testing.T) {
	d := cfg(MulticastTree, 4).Distribute(nil)
	if d.SRAMReads != 0 || d.Cycles != 0 || d.EnergyPJ != 0 {
		t.Fatalf("empty wave accounted %+v", d)
	}
	d = cfg(MulticastTree, 4).Distribute([]Stream{{Genes: 0, Consumers: 3}, {Genes: 5, Consumers: 0}})
	if d.SRAMReads != 0 {
		t.Fatalf("degenerate streams read %d", d.SRAMReads)
	}
}

func TestTreeEnergyHasLogHops(t *testing.T) {
	streams := []Stream{{Genes: 10, Consumers: 4}}
	bus := cfg(PointToPoint, 256).Distribute(streams)
	tree := cfg(MulticastTree, 256).Distribute(streams)
	// Same deliveries; tree pays log2(256)=8 hops each, bus pays 1.
	if tree.EnergyPJ <= bus.EnergyPJ/4 {
		t.Fatalf("tree hop energy implausible: tree %v vs bus %v", tree.EnergyPJ, bus.EnergyPJ)
	}
	if bus.EnergyPJ != 40*0.15 {
		t.Fatalf("bus energy %v", bus.EnergyPJ)
	}
}

func TestCollect(t *testing.T) {
	d := cfg(MulticastTree, 8).Collect(100)
	if d.Deliveries != 100 {
		t.Fatalf("collect deliveries %d", d.Deliveries)
	}
	if d.EnergyPJ <= 0 {
		t.Fatal("collect charged no energy")
	}
}

func TestKindString(t *testing.T) {
	if PointToPoint.String() != "point-to-point" || MulticastTree.String() != "multicast-tree" {
		t.Fatal("kind names wrong")
	}
}

// Property: for any wave, multicast never reads more than
// point-to-point, deliveries are identical across topologies, and
// reads never exceed deliveries.
func TestQuickTopologyConservation(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		streams := make([]Stream, int(n%12)+1)
		for i := range streams {
			streams[i] = Stream{Genes: r.Intn(500), Consumers: r.Intn(8)}
		}
		p2p := cfg(PointToPoint, 64).Distribute(streams)
		mc := cfg(MulticastTree, 64).Distribute(streams)
		return mc.SRAMReads <= p2p.SRAMReads &&
			mc.Deliveries == p2p.Deliveries &&
			mc.SRAMReads <= mc.Deliveries &&
			p2p.SRAMReads <= p2p.Deliveries
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroBandwidthDefaults(t *testing.T) {
	c := Config{Kind: MulticastTree, NumPEs: 2, SRAMReadsPerCycle: 0}
	d := c.Distribute([]Stream{{Genes: 3, Consumers: 1}})
	if d.Cycles != 3 {
		t.Fatalf("cycles %d with defaulted bandwidth", d.Cycles)
	}
}
