package noc

import (
	"math"
	"testing"
)

func TestHops(t *testing.T) {
	cases := []struct {
		kind Kind
		pes  int
		want float64
	}{
		// A bus is one hop regardless of fan-out.
		{PointToPoint, 1, 1},
		{PointToPoint, 2, 1},
		{PointToPoint, 256, 1},
		// Tiny trees degenerate to a single link.
		{MulticastTree, 1, 1},
		{MulticastTree, 2, 1},
		// Larger trees traverse log2(NumPEs) levels.
		{MulticastTree, 4, 2},
		{MulticastTree, 8, 3},
		{MulticastTree, 256, 8},
	}
	for _, c := range cases {
		got := Config{Kind: c.kind, NumPEs: c.pes}.hops()
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("hops(%v, %d PEs) = %v, want %v", c.kind, c.pes, got, c.want)
		}
	}
}

func TestDistributeSinglePE(t *testing.T) {
	// With one PE there is no reuse to exploit: both topologies read and
	// deliver the same gene count at one hop.
	streams := []Stream{{Genes: 50, Consumers: 1}}
	p2p := cfg(PointToPoint, 1).Distribute(streams)
	mc := cfg(MulticastTree, 1).Distribute(streams)
	if p2p.SRAMReads != 50 || mc.SRAMReads != 50 {
		t.Fatalf("single-PE reads p2p=%d mc=%d, want 50", p2p.SRAMReads, mc.SRAMReads)
	}
	if p2p.Deliveries != mc.Deliveries || p2p.EnergyPJ != mc.EnergyPJ {
		t.Fatalf("single-PE topologies diverged: %+v vs %+v", p2p, mc)
	}
}

func TestDistributeZeroStreams(t *testing.T) {
	for _, kind := range []Kind{PointToPoint, MulticastTree} {
		d := cfg(kind, 16).Distribute([]Stream{})
		if d.SRAMReads != 0 || d.Deliveries != 0 || d.Cycles != 0 ||
			d.ReadsPerCycle != 0 || d.EnergyPJ != 0 {
			t.Fatalf("%v zero-stream wave accounted %+v", kind, d)
		}
	}
}

func TestCollectEdges(t *testing.T) {
	if d := cfg(MulticastTree, 8).Collect(0); d.Deliveries != 0 || d.EnergyPJ != 0 {
		t.Fatalf("zero-gene collect accounted %+v", d)
	}
	// Collection pays the same per-topology hop count as distribution:
	// the tree path back to the merge block is log2(NumPEs) deep.
	bus := cfg(PointToPoint, 256).Collect(10)
	tree := cfg(MulticastTree, 256).Collect(10)
	if bus.EnergyPJ != 10*0.15 {
		t.Fatalf("bus collect energy %v, want 1.5", bus.EnergyPJ)
	}
	if want := 10 * 0.15 * 8; math.Abs(tree.EnergyPJ-want) > 1e-9 {
		t.Fatalf("tree collect energy %v, want %v", tree.EnergyPJ, want)
	}
}

func TestNetworkChargesRegistry(t *testing.T) {
	n := NewNetwork(cfg(MulticastTree, 8))
	d1 := n.Distribute([]Stream{{Genes: 100, Consumers: 8}})
	d2 := n.Collect(40)
	rep := n.Counters().Snapshot()
	if got := rep.Int("sram_reads"); got != d1.SRAMReads {
		t.Fatalf("registry sram_reads %d, want %d", got, d1.SRAMReads)
	}
	if got := rep.Int("deliveries"); got != d1.Deliveries+d2.Deliveries {
		t.Fatalf("registry deliveries %d, want %d", got, d1.Deliveries+d2.Deliveries)
	}
	if got := rep.Float("energy_pj"); got != d1.EnergyPJ+d2.EnergyPJ {
		t.Fatalf("registry energy %v, want %v", got, d1.EnergyPJ+d2.EnergyPJ)
	}
	if got, want := rep.Float("reads_per_cycle"),
		float64(d1.SRAMReads)/float64(d1.Cycles); got != want {
		t.Fatalf("registry reads_per_cycle %v, want %v", got, want)
	}
	n.Reset()
	if rep := n.Counters().Snapshot(); rep.Int("sram_reads") != 0 || rep.Float("energy_pj") != 0 {
		t.Fatalf("reset left charges behind: %+v", rep)
	}
}
