package noc

import (
	"repro/internal/hw/fault"
	"repro/internal/hw/hwsim"
)

// Network is a stateful interconnect: a Config plus a hwsim counter
// tally, so the NoC's traffic and energy appear as a node ("noc") in a
// component tree. Config stays a pure pricing function; Network is the
// accountable block an engine mounts.
type Network struct {
	cfg Config
	ctr *hwsim.Counters

	// faults, when attached, drops flits out of each priced delivery;
	// the network reacts with bounded retransmission (backoff + resend
	// cycles and energy folded into the Delivery it returns).
	faults *fault.Plan
}

// NewNetwork wraps a Config with a counter node.
func NewNetwork(cfg Config) *Network {
	n := &Network{cfg: cfg, ctr: hwsim.New("noc")}
	n.ctr.OnSnapshot(func(c *hwsim.Counters) {
		if cyc := c.IntValue("cycles"); cyc > 0 {
			c.SetFloat("reads_per_cycle",
				float64(c.IntValue("sram_reads"))/float64(cyc))
		}
	})
	return n
}

// Config returns the interconnect parameters.
func (n *Network) Config() Config { return n.cfg }

// AttachFaults wires a fault plan into the network. Deliveries then
// suffer seeded flit drops and the network retransmits: each attempt
// charges an exponential backoff plus one cycle per resent flit, and
// resent flits pay hop energy again. Flits still outstanding after the
// retry budget are counted as lost. All recovery work is itemized
// under the plan's "fault/noc" scope. Passing nil detaches.
func (n *Network) AttachFaults(p *fault.Plan) { n.faults = p }

// Name is the hwsim component name.
func (n *Network) Name() string { return "noc" }

// Counters returns the live registry node.
func (n *Network) Counters() *hwsim.Counters { return n.ctr }

// Reset zeroes the tally.
func (n *Network) Reset() { n.ctr.Reset() }

// Distribute prices one wave of parent-gene distribution and charges
// it to the tally.
func (n *Network) Distribute(streams []Stream) Delivery {
	d := n.cfg.Distribute(streams)
	n.faultAdjust(&d)
	n.charge(d)
	return d
}

// Collect prices child-gene collection and charges it to the tally.
func (n *Network) Collect(childGenes int64) Delivery {
	d := n.cfg.Collect(childGenes)
	n.faultAdjust(&d)
	n.charge(d)
	return d
}

// faultAdjust applies the attached fault plan to one priced delivery:
// flits drop at the configured rate, the network retries up to the
// bounded budget (backoff doubling per attempt, one cycle per resent
// flit, hop energy paid again), and anything left is lost. The
// inflated Cycles/EnergyPJ flow back through the caller's wave timing.
func (n *Network) faultAdjust(d *Delivery) {
	p := n.faults
	if p == nil || d.Deliveries <= 0 {
		return
	}
	cfg := p.Config()
	hopPJ := n.cfg.hops() * n.cfg.HopEnergyPJ
	fc := p.NoCCounters()
	outstanding := p.NoCDrops(d.Deliveries)
	for attempt := 1; outstanding > 0 && attempt <= cfg.MaxRetriesOrDefault(); attempt++ {
		backoff := cfg.BackoffCyclesOrDefault() << (attempt - 1)
		resend := outstanding
		d.Cycles += backoff + resend // resends replay at one flit per cycle
		d.EnergyPJ += float64(resend) * hopPJ
		fc.AddInt("retransmitted_flits", resend)
		fc.AddInt("backoff_cycles", backoff)
		fc.AddInt("retransmit_cycles", resend)
		outstanding = p.NoCDrops(resend)
	}
	if outstanding > 0 {
		fc.AddInt("lost_flits", outstanding)
	}
	if d.Cycles > 0 {
		d.ReadsPerCycle = float64(d.SRAMReads) / float64(d.Cycles)
	}
}

func (n *Network) charge(d Delivery) {
	n.ctr.AddInt("sram_reads", d.SRAMReads)
	n.ctr.AddInt("deliveries", d.Deliveries)
	n.ctr.AddInt("cycles", d.Cycles)
	n.ctr.AddFloat("energy_pj", d.EnergyPJ)
}
