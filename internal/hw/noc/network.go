package noc

import "repro/internal/hw/hwsim"

// Network is a stateful interconnect: a Config plus a hwsim counter
// tally, so the NoC's traffic and energy appear as a node ("noc") in a
// component tree. Config stays a pure pricing function; Network is the
// accountable block an engine mounts.
type Network struct {
	cfg Config
	ctr *hwsim.Counters
}

// NewNetwork wraps a Config with a counter node.
func NewNetwork(cfg Config) *Network {
	n := &Network{cfg: cfg, ctr: hwsim.New("noc")}
	n.ctr.OnSnapshot(func(c *hwsim.Counters) {
		if cyc := c.IntValue("cycles"); cyc > 0 {
			c.SetFloat("reads_per_cycle",
				float64(c.IntValue("sram_reads"))/float64(cyc))
		}
	})
	return n
}

// Config returns the interconnect parameters.
func (n *Network) Config() Config { return n.cfg }

// Name is the hwsim component name.
func (n *Network) Name() string { return "noc" }

// Counters returns the live registry node.
func (n *Network) Counters() *hwsim.Counters { return n.ctr }

// Reset zeroes the tally.
func (n *Network) Reset() { n.ctr.Reset() }

// Distribute prices one wave of parent-gene distribution and charges
// it to the tally.
func (n *Network) Distribute(streams []Stream) Delivery {
	d := n.cfg.Distribute(streams)
	n.charge(d)
	return d
}

// Collect prices child-gene collection and charges it to the tally.
func (n *Network) Collect(childGenes int64) Delivery {
	d := n.cfg.Collect(childGenes)
	n.charge(d)
	return d
}

func (n *Network) charge(d Delivery) {
	n.ctr.AddInt("sram_reads", d.SRAMReads)
	n.ctr.AddInt("deliveries", d.Deliveries)
	n.ctr.AddInt("cycles", d.Cycles)
	n.ctr.AddFloat("energy_pj", d.EnergyPJ)
}
