package vmath

import (
	"math"
	"math/rand"
	"testing"
)

// TestExpSliceBitIdentical is the foundation of the batch engine's
// byte-equality guarantee: ExpSlice must agree with math.Exp to the
// bit on every input class — the clamped sigmoid range the hot path
// actually uses, the full in-window range, window boundaries, and the
// out-of-window/special values that force the scalar fallback.
func TestExpSliceBitIdentical(t *testing.T) {
	t.Logf("vector kernel enabled: %v", HaveVec)

	check := func(t *testing.T, src []float64) {
		t.Helper()
		dst := make([]float64, len(src))
		ExpSlice(dst, src)
		for i, x := range src {
			want := math.Exp(x)
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("ExpSlice(%v) = %v (bits %016x), math.Exp = %v (bits %016x) at index %d",
					x, dst[i], math.Float64bits(dst[i]), want, math.Float64bits(want), i)
			}
		}
	}

	t.Run("sigmoid-range", func(t *testing.T) {
		// The sigmoid clamps its argument to [-60, 60]; sweep it densely.
		src := make([]float64, 0, 48001)
		for x := -60.0; x <= 60.0; x += 0.0025 {
			src = append(src, x)
		}
		check(t, src)
	})

	t.Run("random-window", func(t *testing.T) {
		rnd := rand.New(rand.NewSource(61))
		src := make([]float64, 1<<16)
		for i := range src {
			src[i] = (rnd.Float64()*2 - 1) * 690
		}
		check(t, src)
	})

	t.Run("boundaries", func(t *testing.T) {
		check(t, []float64{
			-690, 690, math.Nextafter(-690, 0), math.Nextafter(690, 0),
			math.Nextafter(-690, -1000), math.Nextafter(690, 1000),
			0, math.Copysign(0, -1), 1, -1, math.Ln2, -math.Ln2,
			690.5, -690.5, 700, -700, 709.78, 710, -745, -746,
		})
	})

	t.Run("specials", func(t *testing.T) {
		check(t, []float64{
			math.Inf(1), math.Inf(-1), math.NaN(),
			math.MaxFloat64, -math.MaxFloat64,
			math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		})
	})

	t.Run("mixed-forces-fallback", func(t *testing.T) {
		// Out-of-window lanes scattered mid-slice: the kernel must stop
		// at the offending group and the scalar tail must still match.
		rnd := rand.New(rand.NewSource(62))
		src := make([]float64, 513)
		for i := range src {
			src[i] = (rnd.Float64()*2 - 1) * 50
		}
		src[97] = 1e6
		src[98] = math.NaN()
		src[511] = math.Inf(-1)
		check(t, src)
	})

	t.Run("short-slices", func(t *testing.T) {
		for n := 0; n <= 9; n++ {
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(i)*1.7 - 5
			}
			check(t, src)
		}
	})
}

func TestExpSliceDstShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ExpSlice with short dst did not panic")
		}
	}()
	ExpSlice(make([]float64, 3), make([]float64, 4))
}

func BenchmarkExpSlice(b *testing.B) {
	src := make([]float64, 256)
	dst := make([]float64, 256)
	rnd := rand.New(rand.NewSource(7))
	for i := range src {
		src[i] = (rnd.Float64()*2 - 1) * 60
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExpSlice(dst, src)
	}
}

func BenchmarkExpScalarLoop(b *testing.B) {
	src := make([]float64, 256)
	dst := make([]float64, 256)
	rnd := rand.New(rand.NewSource(7))
	for i := range src {
		src[i] = (rnd.Float64()*2 - 1) * 60
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range src {
			dst[j] = math.Exp(x)
		}
	}
}
