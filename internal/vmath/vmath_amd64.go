//go:build amd64

package vmath

// expVec is the 4-lane AVX2+FMA exp kernel (exp_amd64.s). It processes
// leading groups of 4 and returns how many elements it wrote; it stops
// early at the first group containing a lane outside [-690, 690] (the
// range where math.Exp's assembly takes no special-case branch),
// leaving the remainder to the scalar fallback in ExpSlice.
//
//go:noescape
func expVec(dst, src *float64, n int) int

// sinCosVec is the fused 4-lane sin+cos kernel (sincos_amd64.s) for
// the octant-zero window 0 < |x| < π/4. Same contract: leading groups,
// early stop on the first group with any lane outside the window.
//
//go:noescape
func sinCosVec(sinDst, cosDst, src *float64, n int) int

// recip1pVec is the 4-lane sigmoid-finish kernel (recip_amd64.s):
// dst = 1/(1+src). Correctly rounded ops only, so it takes every
// leading 4-group regardless of value; the return is len(src)&^3.
//
//go:noescape
func recip1pVec(dst, src *float64, n int) int

// cpuidLeaf and xgetbv0 are thin wrappers over CPUID / XGETBV(0),
// used once at init to decide whether the vector kernels are safe.
func cpuidLeaf(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

// HaveVec reports AVX2 + FMA with OS-enabled YMM state — whether the
// vector kernels are active on this host. Exported so differential
// tests can assert which path they exercised.
var HaveVec = detectAVX2FMA()

func detectAVX2FMA() bool {
	maxID, _, _, _ := cpuidLeaf(0, 0)
	if maxID < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	_, _, ecx1, _ := cpuidLeaf(1, 0)
	if ecx1&(fmaBit|osxsaveBit|avxBit) != fmaBit|osxsaveBit|avxBit {
		return false
	}
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	xlo, _ := xgetbv0()
	if xlo&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuidLeaf(7, 0)
	return ebx7&(1<<5) != 0 // AVX2
}

func expVecAccel(dst, src []float64) int {
	if !HaveVec || len(src) < 4 {
		return 0
	}
	return expVec(&dst[0], &src[0], len(src))
}

func sinCosVecAccel(sinDst, cosDst, src []float64) int {
	if !HaveVec || len(src) < 4 {
		return 0
	}
	return sinCosVec(&sinDst[0], &cosDst[0], &src[0], len(src))
}

func recip1pAccel(dst, src []float64) int {
	if !HaveVec || len(src) < 4 {
		return 0
	}
	return recip1pVec(&dst[0], &src[0], len(src))
}
