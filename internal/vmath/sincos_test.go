package vmath

import (
	"math"
	"math/rand"
	"testing"
)

// TestSinCosSliceBitIdentical pins the fused kernel to the stdlib
// scalars on every input class: the octant-zero window the vector path
// owns, its exact boundaries, signed zeros (whose sin sign must
// survive), and the out-of-window/special values that force the scalar
// fallback.
func TestSinCosSliceBitIdentical(t *testing.T) {
	t.Logf("vector kernel enabled: %v", HaveVec)

	check := func(t *testing.T, src []float64) {
		t.Helper()
		sinDst := make([]float64, len(src))
		cosDst := make([]float64, len(src))
		SinCosSlice(sinDst, cosDst, src)
		for i, x := range src {
			ws, wc := math.Sin(x), math.Cos(x)
			if math.Float64bits(sinDst[i]) != math.Float64bits(ws) {
				t.Fatalf("sin(%v) = %v (bits %016x), math.Sin = %v (bits %016x) at index %d",
					x, sinDst[i], math.Float64bits(sinDst[i]), ws, math.Float64bits(ws), i)
			}
			if math.Float64bits(cosDst[i]) != math.Float64bits(wc) {
				t.Fatalf("cos(%v) = %v (bits %016x), math.Cos = %v (bits %016x) at index %d",
					x, cosDst[i], math.Float64bits(cosDst[i]), wc, math.Float64bits(wc), i)
			}
		}
	}

	t.Run("cartpole-range", func(t *testing.T) {
		// The batch stepper feeds pole angles; sweep their realistic
		// band densely, both signs.
		src := make([]float64, 0, 100001)
		for x := -0.25; x <= 0.25; x += 0.000005 {
			src = append(src, x)
		}
		check(t, src)
	})

	t.Run("random-window", func(t *testing.T) {
		rnd := rand.New(rand.NewSource(71))
		src := make([]float64, 1<<16)
		for i := range src {
			src[i] = (rnd.Float64()*2 - 1) * (math.Pi / 4)
		}
		check(t, src)
	})

	t.Run("boundaries", func(t *testing.T) {
		q := math.Pi / 4
		check(t, []float64{
			q, -q, math.Nextafter(q, 0), math.Nextafter(-q, 0),
			math.Nextafter(q, 1), math.Nextafter(-q, -1),
			math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
			0.5, -0.5, 0.75, -0.75, 0.8, -0.8,
		})
	})

	t.Run("signed-zeros", func(t *testing.T) {
		// math.Sin(±0) = ±0; the window must push zeros to the scalar
		// path so the -0 sign is preserved.
		check(t, []float64{0, math.Copysign(0, -1), 0.1, math.Copysign(0, -1), 0, 0.2, -0.3, 0.4})
	})

	t.Run("specials", func(t *testing.T) {
		check(t, []float64{
			math.Inf(1), math.Inf(-1), math.NaN(),
			1, -1, math.Pi, -math.Pi, 100, -100, 1e9, 1e18,
		})
	})

	t.Run("mixed-forces-fallback", func(t *testing.T) {
		rnd := rand.New(rand.NewSource(72))
		src := make([]float64, 513)
		for i := range src {
			src[i] = (rnd.Float64()*2 - 1) * 0.7
		}
		src[97] = 2.5
		src[98] = math.NaN()
		src[200] = math.Copysign(0, -1)
		src[511] = math.Inf(1)
		check(t, src)
	})

	t.Run("short-slices", func(t *testing.T) {
		for n := 0; n <= 9; n++ {
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(i)*0.09 - 0.3
			}
			check(t, src)
		}
	})
}

func TestSinCosSliceDstShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SinCosSlice with short dst did not panic")
		}
	}()
	SinCosSlice(make([]float64, 3), make([]float64, 4), make([]float64, 4))
}

func BenchmarkSinCosSlice(b *testing.B) {
	src := make([]float64, 256)
	sinDst := make([]float64, 256)
	cosDst := make([]float64, 256)
	rnd := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = (rnd.Float64()*2 - 1) * 0.2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SinCosSlice(sinDst, cosDst, src)
	}
}

func BenchmarkSinCosScalarLoop(b *testing.B) {
	src := make([]float64, 256)
	sinDst := make([]float64, 256)
	cosDst := make([]float64, 256)
	rnd := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = (rnd.Float64()*2 - 1) * 0.2
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range src {
			sinDst[j] = math.Sin(x)
			cosDst[j] = math.Cos(x)
		}
	}
}
