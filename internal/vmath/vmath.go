// Package vmath holds the 4-lane AVX2+FMA vector kernels the batch
// evaluation engine leans on. Every kernel is bit-identical to its
// math-package scalar: it mirrors the exact instruction-level rounding
// sequence of the stdlib implementation for arguments inside a fast
// window, and declines anything else to a scalar fallback. That
// property is what lets the batch engine promise byte-equal results to
// the serial reference path while still vectorizing the transcendental
// hot spots (sigmoid exp, cartpole sin/cos).
package vmath

import "math"

// ExpSlice computes dst[i] = math.Exp(src[i]) for every i. On hosts
// with AVX2+FMA it runs a 4-lane vector kernel that mirrors the exact
// FMA instruction sequence of math.Exp's assembly path, so the results
// are bit-identical to calling math.Exp per element. Elements the
// vector kernel declines (trailing partial group, or anything at and
// after the first group with a lane outside [-690, 690]) fall back to
// math.Exp itself.
func ExpSlice(dst, src []float64) {
	if len(dst) < len(src) {
		panic("vmath: ExpSlice dst shorter than src")
	}
	i := expVecAccel(dst, src)
	for ; i < len(src); i++ {
		dst[i] = math.Exp(src[i])
	}
}

// Recip1pSlice computes dst[i] = 1 / (1 + src[i]) for every i — the
// sigmoid finish. This kernel needs no window: addition and division
// are correctly rounded IEEE-754 operations and the constant 1 is
// never NaN, so the 4-lane vector path is bit-identical to the scalar
// expression for every input, including NaN and ±Inf. Only the sub-4
// tail runs the scalar loop.
func Recip1pSlice(dst, src []float64) {
	if len(dst) < len(src) {
		panic("vmath: Recip1pSlice dst shorter than src")
	}
	i := recip1pAccel(dst, src)
	for ; i < len(src); i++ {
		dst[i] = 1 / (1 + src[i])
	}
}

// SinCosSlice computes sinDst[i], cosDst[i] = math.Sin(src[i]),
// math.Cos(src[i]) for every i. The vector kernel handles lanes with
// 0 < |x| < π/4 — the octant-zero window where the stdlib reduction is
// the identity and both functions are one straight-line polynomial —
// and performs exactly those polynomial operations, so results are
// bit-identical. Lanes at and after the first group outside the window
// (including ±0, whose sign math.Sin preserves, and NaN/Inf) fall back
// to the stdlib scalars.
func SinCosSlice(sinDst, cosDst, src []float64) {
	if len(sinDst) < len(src) || len(cosDst) < len(src) {
		panic("vmath: SinCosSlice dst shorter than src")
	}
	i := sinCosVecAccel(sinDst, cosDst, src)
	for ; i < len(src); i++ {
		sinDst[i] = math.Sin(src[i])
		cosDst[i] = math.Cos(src[i])
	}
}
