// 4-lane sigmoid finish: dst[i] = 1 / (1 + src[i]). Unlike the exp
// and sincos kernels this one needs no argument window: IEEE-754
// addition and division are correctly rounded operations, VADDPD and
// VDIVPD implement exactly them, and in 1+x / 1/(1+x) at most one
// operand of each op can be NaN (the constant 1 never is), so NaN
// propagation is unambiguous too. The kernel therefore handles every
// leading 4-group unconditionally; only the sub-4 tail is left to the
// caller's scalar loop.

#include "textflag.h"

DATA vrecip<>+0(SB)/8, $0x3FF0000000000000
DATA vrecip<>+8(SB)/8, $0x3FF0000000000000
DATA vrecip<>+16(SB)/8, $0x3FF0000000000000
DATA vrecip<>+24(SB)/8, $0x3FF0000000000000
GLOBL vrecip<>(SB), RODATA|NOPTR, $32

// func recip1pVec(dst, src *float64, n int) int
TEXT ·recip1pVec(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX
	VMOVUPD vrecip<>+0(SB), Y1 // 1.0 ×4
	SUBQ $3, CX                // full 4-groups exist while AX < n-3
	JLE  done

loop:
	CMPQ AX, CX
	JGE  done
	VMOVUPD (SI)(AX*8), Y0
	VADDPD  Y0, Y1, Y0 // 1 + x
	VDIVPD  Y0, Y1, Y0 // 1 / (1 + x)
	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
	JMP  loop

done:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET
