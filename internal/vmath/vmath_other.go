//go:build !amd64

package vmath

// HaveVec is false off amd64: the slice helpers run their scalar
// loops, which are trivially bit-identical to the stdlib.
var HaveVec = false

func expVecAccel(dst, src []float64) int { return 0 }

func sinCosVecAccel(sinDst, cosDst, src []float64) int { return 0 }

func recip1pAccel(dst, src []float64) int { return 0 }
