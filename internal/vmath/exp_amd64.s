// 4-lane AVX2+FMA vector exp, lane-for-lane identical to the FMA path
// of math.Exp's amd64 assembly (a SLEEF-derived kernel; see
// $GOROOT/src/math/exp_amd64.s). Every arithmetic step below is the
// packed twin of one scalar instruction there, executed in the same
// order with the same constants, so each lane performs the same
// sequence of IEEE-754 roundings and the results are bit-identical.
//
// The kernel only handles lanes in [-690, 690]: there the scalar code
// takes no special-case branch (the biased exponent lands strictly
// inside (0, 0x7FF), so neither the denormal nor the overflow path can
// trigger, and the argument is finite by construction). On the first
// 4-group with any lane outside that window the kernel stops and
// reports how far it got; ExpSlice finishes with scalar math.Exp.
// The sigmoid hot path clamps arguments to +/-60, so in practice the
// window test always passes.

#include "textflag.h"

// Constant table, each value broadcast across 4 lanes. Offsets are
// referenced through the #defines below; the polynomial coefficients
// and split-log2 constants are copied verbatim from exp_amd64.s.
#define VLO 0
#define VHI 32
#define VLOG2E 64
#define VLN2U 96
#define VLN2L 128
#define VSIXTEENTH 160
#define VC8 192
#define VC7 224
#define VC6 256
#define VC5 288
#define VC4 320
#define VC3 352
#define VHALF 384
#define VONE 416
#define VTWO 448
#define VBIAS 480

DATA vexp<>+0(SB)/8, $-690.0
DATA vexp<>+8(SB)/8, $-690.0
DATA vexp<>+16(SB)/8, $-690.0
DATA vexp<>+24(SB)/8, $-690.0
DATA vexp<>+32(SB)/8, $690.0
DATA vexp<>+40(SB)/8, $690.0
DATA vexp<>+48(SB)/8, $690.0
DATA vexp<>+56(SB)/8, $690.0
DATA vexp<>+64(SB)/8, $1.4426950408889634073599246810018920
DATA vexp<>+72(SB)/8, $1.4426950408889634073599246810018920
DATA vexp<>+80(SB)/8, $1.4426950408889634073599246810018920
DATA vexp<>+88(SB)/8, $1.4426950408889634073599246810018920
DATA vexp<>+96(SB)/8, $0.69314718055966295651160180568695068359375
DATA vexp<>+104(SB)/8, $0.69314718055966295651160180568695068359375
DATA vexp<>+112(SB)/8, $0.69314718055966295651160180568695068359375
DATA vexp<>+120(SB)/8, $0.69314718055966295651160180568695068359375
DATA vexp<>+128(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA vexp<>+136(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA vexp<>+144(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA vexp<>+152(SB)/8, $0.28235290563031577122588448175013436025525412068e-12
DATA vexp<>+160(SB)/8, $0.0625
DATA vexp<>+168(SB)/8, $0.0625
DATA vexp<>+176(SB)/8, $0.0625
DATA vexp<>+184(SB)/8, $0.0625
DATA vexp<>+192(SB)/8, $2.4801587301587301587e-5
DATA vexp<>+200(SB)/8, $2.4801587301587301587e-5
DATA vexp<>+208(SB)/8, $2.4801587301587301587e-5
DATA vexp<>+216(SB)/8, $2.4801587301587301587e-5
DATA vexp<>+224(SB)/8, $1.9841269841269841270e-4
DATA vexp<>+232(SB)/8, $1.9841269841269841270e-4
DATA vexp<>+240(SB)/8, $1.9841269841269841270e-4
DATA vexp<>+248(SB)/8, $1.9841269841269841270e-4
DATA vexp<>+256(SB)/8, $1.3888888888888888889e-3
DATA vexp<>+264(SB)/8, $1.3888888888888888889e-3
DATA vexp<>+272(SB)/8, $1.3888888888888888889e-3
DATA vexp<>+280(SB)/8, $1.3888888888888888889e-3
DATA vexp<>+288(SB)/8, $8.3333333333333333333e-3
DATA vexp<>+296(SB)/8, $8.3333333333333333333e-3
DATA vexp<>+304(SB)/8, $8.3333333333333333333e-3
DATA vexp<>+312(SB)/8, $8.3333333333333333333e-3
DATA vexp<>+320(SB)/8, $4.1666666666666666667e-2
DATA vexp<>+328(SB)/8, $4.1666666666666666667e-2
DATA vexp<>+336(SB)/8, $4.1666666666666666667e-2
DATA vexp<>+344(SB)/8, $4.1666666666666666667e-2
DATA vexp<>+352(SB)/8, $1.6666666666666666667e-1
DATA vexp<>+360(SB)/8, $1.6666666666666666667e-1
DATA vexp<>+368(SB)/8, $1.6666666666666666667e-1
DATA vexp<>+376(SB)/8, $1.6666666666666666667e-1
DATA vexp<>+384(SB)/8, $0.5
DATA vexp<>+392(SB)/8, $0.5
DATA vexp<>+400(SB)/8, $0.5
DATA vexp<>+408(SB)/8, $0.5
DATA vexp<>+416(SB)/8, $1.0
DATA vexp<>+424(SB)/8, $1.0
DATA vexp<>+432(SB)/8, $1.0
DATA vexp<>+440(SB)/8, $1.0
DATA vexp<>+448(SB)/8, $2.0
DATA vexp<>+456(SB)/8, $2.0
DATA vexp<>+464(SB)/8, $2.0
DATA vexp<>+472(SB)/8, $2.0
DATA vexp<>+480(SB)/8, $0x00000000000003FF
DATA vexp<>+488(SB)/8, $0x00000000000003FF
DATA vexp<>+496(SB)/8, $0x00000000000003FF
DATA vexp<>+504(SB)/8, $0x00000000000003FF
GLOBL vexp<>(SB), RODATA|NOPTR, $512

// func expVec(dst, src *float64, n int) int
TEXT ·expVec(SB), NOSPLIT, $0-32
	MOVQ dst+0(FP), DI
	MOVQ src+8(FP), SI
	MOVQ n+16(FP), CX
	XORQ AX, AX
	SUBQ $3, CX // full 4-groups exist while AX < n-3
	JLE  done

loop:
	CMPQ AX, CX
	JGE  done
	VMOVUPD (SI)(AX*8), Y0

	// Window test: every lane must satisfy -690 <= x <= 690. The
	// ordered compares also reject NaN lanes.
	VCMPPD $0x1D, vexp<>+VLO(SB), Y0, Y1 // GE_OQ
	VCMPPD $0x12, vexp<>+VHI(SB), Y0, Y2 // LE_OQ
	VANDPD Y2, Y1, Y1
	VMOVMSKPD Y1, DX
	CMPL DX, $0xF
	JNE  done

	// k = round-to-nearest(x * LOG2E); t = float64(k).
	// VCVTPD2DQ rounds via MXCSR exactly like the scalar CVTSD2SL.
	VMULPD vexp<>+VLOG2E(SB), Y0, Y1
	VCVTPD2DQY Y1, X1
	VCVTDQ2PD X1, Y2

	// x -= t*LN2U; x -= t*LN2L (both fused, as in the scalar path).
	VFNMADD231PD vexp<>+VLN2U(SB), Y2, Y0
	VFNMADD231PD vexp<>+VLN2L(SB), Y2, Y0

	// Reduce, then the same 7-step fused Taylor evaluation.
	VMULPD vexp<>+VSIXTEENTH(SB), Y0, Y0
	VMOVUPD vexp<>+VC8(SB), Y3
	VFMADD213PD vexp<>+VC7(SB), Y0, Y3
	VFMADD213PD vexp<>+VC6(SB), Y0, Y3
	VFMADD213PD vexp<>+VC5(SB), Y0, Y3
	VFMADD213PD vexp<>+VC4(SB), Y0, Y3
	VFMADD213PD vexp<>+VC3(SB), Y0, Y3
	VFMADD213PD vexp<>+VHALF(SB), Y0, Y3
	VFMADD213PD vexp<>+VONE(SB), Y0, Y3
	VMULPD Y3, Y0, Y0

	// Undo the reduction: three rounds of x *= (x+2), then the final
	// fused x = (x+2)*x + 1.
	VADDPD vexp<>+VTWO(SB), Y0, Y3
	VMULPD Y3, Y0, Y0
	VADDPD vexp<>+VTWO(SB), Y0, Y3
	VMULPD Y3, Y0, Y0
	VADDPD vexp<>+VTWO(SB), Y0, Y3
	VMULPD Y3, Y0, Y0
	VADDPD vexp<>+VTWO(SB), Y0, Y3
	VFMADD213PD vexp<>+VONE(SB), Y3, Y0

	// ldexp: scale by 2**k through exponent-field arithmetic. The
	// window test guarantees k+bias is in (0, 0x7FF), so this cannot
	// hit the denormal or overflow branches the scalar code carries.
	VPMOVSXDQ X1, Y1
	VPADDQ vexp<>+VBIAS(SB), Y1, Y1
	VPSLLQ $52, Y1, Y1
	VMULPD Y1, Y0, Y0

	VMOVUPD Y0, (DI)(AX*8)
	ADDQ $4, AX
	JMP  loop

done:
	VZEROUPPER
	MOVQ AX, ret+24(FP)
	RET

// func cpuidLeaf(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidLeaf(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET
