package vmath

import (
	"math"
	"math/rand"
	"testing"
)

// TestRecip1pSliceBitIdentical pins the windowless sigmoid-finish
// kernel to the scalar expression on ordinary values, the exp-output
// range it actually sees (positive e^x), and every special: NaN, ±Inf,
// signed zeros, and -1 (division by zero → +Inf).
func TestRecip1pSliceBitIdentical(t *testing.T) {
	t.Logf("vector kernel enabled: %v", HaveVec)

	check := func(t *testing.T, src []float64) {
		t.Helper()
		dst := make([]float64, len(src))
		Recip1pSlice(dst, src)
		for i, x := range src {
			want := 1 / (1 + x)
			if math.Float64bits(dst[i]) != math.Float64bits(want) {
				t.Fatalf("recip1p(%v) = %v (bits %016x), scalar = %v (bits %016x) at index %d",
					x, dst[i], math.Float64bits(dst[i]), want, math.Float64bits(want), i)
			}
		}
	}

	t.Run("exp-range", func(t *testing.T) {
		// The batch engine feeds it e^(-clamp(5·pre)) ∈ (0, e^60].
		rnd := rand.New(rand.NewSource(5))
		src := make([]float64, 1<<14)
		for i := range src {
			src[i] = math.Exp((rnd.Float64()*2 - 1) * 60)
		}
		check(t, src)
	})

	t.Run("dense-sweep", func(t *testing.T) {
		src := make([]float64, 0, 40001)
		for x := -2.0; x <= 2.0; x += 0.0001 {
			src = append(src, x)
		}
		check(t, src)
	})

	t.Run("specials", func(t *testing.T) {
		check(t, []float64{
			math.NaN(), math.Inf(1), math.Inf(-1),
			0, math.Copysign(0, -1), -1, // -1 → 1/+0 = +Inf
			math.Nextafter(-1, 0), math.Nextafter(-1, -2),
			math.MaxFloat64, -math.MaxFloat64,
			math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		})
	})

	t.Run("short-slices", func(t *testing.T) {
		for n := 0; n <= 9; n++ {
			src := make([]float64, n)
			for i := range src {
				src[i] = float64(i)*0.3 - 1.2
			}
			check(t, src)
		}
	})
}

func TestRecip1pSliceDstShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Recip1pSlice with short dst did not panic")
		}
	}()
	Recip1pSlice(make([]float64, 3), make([]float64, 4))
}

func BenchmarkRecip1pSlice(b *testing.B) {
	src := make([]float64, 256)
	dst := make([]float64, 256)
	rnd := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = rnd.Float64() * 4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Recip1pSlice(dst, src)
	}
}

var recipSink float64

func BenchmarkRecip1pScalarLoop(b *testing.B) {
	src := make([]float64, 256)
	dst := make([]float64, 256)
	rnd := rand.New(rand.NewSource(9))
	for i := range src {
		src[i] = rnd.Float64() * 4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, x := range src {
			dst[j] = 1 / (1 + x)
		}
		recipSink = dst[255] // keep the divides observable
	}
}
