// Fused 4-lane sin+cos for the octant-zero window 0 < |x| < π/4,
// lane-for-lane identical to math.Sin / math.Cos (the pure-Go Payne
// reduction in $GOROOT/src/math/sin.go). Inside the window the stdlib
// reduction degenerates: j = uint64(|x|·4/π) is 0, the extended-
// precision subtraction z = ((x-0)-0)-0 is the identity, and each
// function is one straight-line polynomial in zz = z². The kernel
// performs exactly those multiplies and adds (no FMA — the scalar code
// has none) in the same order, so every lane reproduces the scalar
// result bit for bit.
//
// Sign handling: the scalar code folds to |x| and negates the sin
// result at the end. IEEE-754 negation is exact and round-to-nearest
// is sign-symmetric, so evaluating the odd sin polynomial directly on
// signed z yields the identical bits (a zero sin result, where +0/-0
// could differ, is impossible in-window for nonzero z: |z·zz·P| < |z|).
// cos touches z only through zz. Exact zeros are excluded from the
// window because math.Sin(±0) returns ±0 while the polynomial yields
// +0; the scalar fallback preserves that sign. NaN and Inf fail the
// ordered window compares and fall back too.
//
// The constant table carries the exact bit patterns of the stdlib
// coefficients (_sin, _cos), broadcast across 4 lanes.

#include "textflag.h"

#define VABS 0       // 0x7FFF... sign-clear mask
#define VFOURPI 32   // 4/π
#define VONE 64
#define VHALF 96
#define VSIN0 128
#define VSIN1 160
#define VSIN2 192
#define VSIN3 224
#define VSIN4 256
#define VSIN5 288
#define VCOS0 320
#define VCOS1 352
#define VCOS2 384
#define VCOS3 416
#define VCOS4 448
#define VCOS5 480

DATA vsincos<>+0(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA vsincos<>+8(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA vsincos<>+16(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA vsincos<>+24(SB)/8, $0x7FFFFFFFFFFFFFFF
DATA vsincos<>+32(SB)/8, $0x3FF45F306DC9C883
DATA vsincos<>+40(SB)/8, $0x3FF45F306DC9C883
DATA vsincos<>+48(SB)/8, $0x3FF45F306DC9C883
DATA vsincos<>+56(SB)/8, $0x3FF45F306DC9C883
DATA vsincos<>+64(SB)/8, $0x3FF0000000000000
DATA vsincos<>+72(SB)/8, $0x3FF0000000000000
DATA vsincos<>+80(SB)/8, $0x3FF0000000000000
DATA vsincos<>+88(SB)/8, $0x3FF0000000000000
DATA vsincos<>+96(SB)/8, $0x3FE0000000000000
DATA vsincos<>+104(SB)/8, $0x3FE0000000000000
DATA vsincos<>+112(SB)/8, $0x3FE0000000000000
DATA vsincos<>+120(SB)/8, $0x3FE0000000000000
DATA vsincos<>+128(SB)/8, $0x3DE5D8FD1FD19CCD
DATA vsincos<>+136(SB)/8, $0x3DE5D8FD1FD19CCD
DATA vsincos<>+144(SB)/8, $0x3DE5D8FD1FD19CCD
DATA vsincos<>+152(SB)/8, $0x3DE5D8FD1FD19CCD
DATA vsincos<>+160(SB)/8, $0xBE5AE5E5A9291F5D
DATA vsincos<>+168(SB)/8, $0xBE5AE5E5A9291F5D
DATA vsincos<>+176(SB)/8, $0xBE5AE5E5A9291F5D
DATA vsincos<>+184(SB)/8, $0xBE5AE5E5A9291F5D
DATA vsincos<>+192(SB)/8, $0x3EC71DE3567D48A1
DATA vsincos<>+200(SB)/8, $0x3EC71DE3567D48A1
DATA vsincos<>+208(SB)/8, $0x3EC71DE3567D48A1
DATA vsincos<>+216(SB)/8, $0x3EC71DE3567D48A1
DATA vsincos<>+224(SB)/8, $0xBF2A01A019BFDF03
DATA vsincos<>+232(SB)/8, $0xBF2A01A019BFDF03
DATA vsincos<>+240(SB)/8, $0xBF2A01A019BFDF03
DATA vsincos<>+248(SB)/8, $0xBF2A01A019BFDF03
DATA vsincos<>+256(SB)/8, $0x3F8111111110F7D0
DATA vsincos<>+264(SB)/8, $0x3F8111111110F7D0
DATA vsincos<>+272(SB)/8, $0x3F8111111110F7D0
DATA vsincos<>+280(SB)/8, $0x3F8111111110F7D0
DATA vsincos<>+288(SB)/8, $0xBFC5555555555548
DATA vsincos<>+296(SB)/8, $0xBFC5555555555548
DATA vsincos<>+304(SB)/8, $0xBFC5555555555548
DATA vsincos<>+312(SB)/8, $0xBFC5555555555548
DATA vsincos<>+320(SB)/8, $0xBDA8FA49A0861A9B
DATA vsincos<>+328(SB)/8, $0xBDA8FA49A0861A9B
DATA vsincos<>+336(SB)/8, $0xBDA8FA49A0861A9B
DATA vsincos<>+344(SB)/8, $0xBDA8FA49A0861A9B
DATA vsincos<>+352(SB)/8, $0x3E21EE9D7B4E3F05
DATA vsincos<>+360(SB)/8, $0x3E21EE9D7B4E3F05
DATA vsincos<>+368(SB)/8, $0x3E21EE9D7B4E3F05
DATA vsincos<>+376(SB)/8, $0x3E21EE9D7B4E3F05
DATA vsincos<>+384(SB)/8, $0xBE927E4F7EAC4BC6
DATA vsincos<>+392(SB)/8, $0xBE927E4F7EAC4BC6
DATA vsincos<>+400(SB)/8, $0xBE927E4F7EAC4BC6
DATA vsincos<>+408(SB)/8, $0xBE927E4F7EAC4BC6
DATA vsincos<>+416(SB)/8, $0x3EFA01A019C844F5
DATA vsincos<>+424(SB)/8, $0x3EFA01A019C844F5
DATA vsincos<>+432(SB)/8, $0x3EFA01A019C844F5
DATA vsincos<>+440(SB)/8, $0x3EFA01A019C844F5
DATA vsincos<>+448(SB)/8, $0xBF56C16C16C14F91
DATA vsincos<>+456(SB)/8, $0xBF56C16C16C14F91
DATA vsincos<>+464(SB)/8, $0xBF56C16C16C14F91
DATA vsincos<>+472(SB)/8, $0xBF56C16C16C14F91
DATA vsincos<>+480(SB)/8, $0x3FA555555555554B
DATA vsincos<>+488(SB)/8, $0x3FA555555555554B
DATA vsincos<>+496(SB)/8, $0x3FA555555555554B
DATA vsincos<>+504(SB)/8, $0x3FA555555555554B
GLOBL vsincos<>(SB), RODATA|NOPTR, $512

// func sinCosVec(sinDst, cosDst, src *float64, n int) int
TEXT ·sinCosVec(SB), NOSPLIT, $0-40
	MOVQ sinDst+0(FP), DI
	MOVQ cosDst+8(FP), R8
	MOVQ src+16(FP), SI
	MOVQ n+24(FP), CX
	XORQ AX, AX
	VXORPD Y9, Y9, Y9 // zero, for the x != 0 test
	SUBQ $3, CX       // full 4-groups exist while AX < n-3
	JLE  done

loop:
	CMPQ AX, CX
	JGE  done
	VMOVUPD (SI)(AX*8), Y0 // z, sign intact

	// Window test: |x|*(4/π) < 1 reproduces j == 0 exactly (and
	// rejects NaN/Inf); x != 0 keeps ±0 on the scalar path where
	// math.Sin preserves the zero's sign.
	VANDPD vsincos<>+VABS(SB), Y0, Y1
	VMULPD vsincos<>+VFOURPI(SB), Y1, Y1
	VCMPPD $0x11, vsincos<>+VONE(SB), Y1, Y1 // LT_OQ
	VCMPPD $0x0C, Y9, Y0, Y4                 // NEQ_OQ
	VANDPD Y4, Y1, Y1
	VMOVMSKPD Y1, DX
	CMPL DX, $0xF
	JNE  done

	VMULPD Y0, Y0, Y2 // zz = z*z

	// Sin polynomial: ((((sin0*zz+sin1)*zz+sin2)*zz+sin3)*zz+sin4)*zz+sin5
	VMOVUPD vsincos<>+VSIN0(SB), Y3
	VMULPD Y2, Y3, Y3
	VADDPD vsincos<>+VSIN1(SB), Y3, Y3
	VMULPD Y2, Y3, Y3
	VADDPD vsincos<>+VSIN2(SB), Y3, Y3
	VMULPD Y2, Y3, Y3
	VADDPD vsincos<>+VSIN3(SB), Y3, Y3
	VMULPD Y2, Y3, Y3
	VADDPD vsincos<>+VSIN4(SB), Y3, Y3
	VMULPD Y2, Y3, Y3
	VADDPD vsincos<>+VSIN5(SB), Y3, Y3

	// sin = z + (z*zz)*poly
	VMULPD Y2, Y0, Y4
	VMULPD Y3, Y4, Y4
	VADDPD Y4, Y0, Y4
	VMOVUPD Y4, (DI)(AX*8)

	// Cos polynomial: ((((cos0*zz+cos1)*zz+cos2)*zz+cos3)*zz+cos4)*zz+cos5
	VMOVUPD vsincos<>+VCOS0(SB), Y5
	VMULPD Y2, Y5, Y5
	VADDPD vsincos<>+VCOS1(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD vsincos<>+VCOS2(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD vsincos<>+VCOS3(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD vsincos<>+VCOS4(SB), Y5, Y5
	VMULPD Y2, Y5, Y5
	VADDPD vsincos<>+VCOS5(SB), Y5, Y5

	// cos = (1 - 0.5*zz) + (zz*zz)*poly
	VMULPD Y2, Y2, Y6
	VMULPD Y5, Y6, Y6
	VMULPD vsincos<>+VHALF(SB), Y2, Y7
	VMOVUPD vsincos<>+VONE(SB), Y8
	VSUBPD Y7, Y8, Y8
	VADDPD Y6, Y8, Y8
	VMOVUPD Y8, (R8)(AX*8)

	ADDQ $4, AX
	JMP  loop

done:
	VZEROUPPER
	MOVQ AX, ret+32(FP)
	RET
