package gene

import (
	"strings"
	"testing"
)

// String methods are part of the debugging surface; verify they carry
// the distinguishing information, not just that they run.
func TestStringRepresentations(t *testing.T) {
	if KindNode.String() != "node" || KindConn.String() != "conn" {
		t.Fatal("kind names wrong")
	}
	for tp, want := range map[NodeType]string{Hidden: "hidden", Input: "input", Output: "output"} {
		if tp.String() != want {
			t.Fatalf("NodeType(%d) = %q", tp, tp.String())
		}
	}
	if NodeType(7).String() == "" {
		t.Fatal("unknown node type renders empty")
	}
	if Activation(15).String() == "" || Aggregation(15).String() == "" {
		t.Fatal("unknown function selects render empty")
	}

	n := NewNode(3, Hidden)
	n.Bias = 0.5
	s := n.String()
	if !strings.Contains(s, "node(3") || !strings.Contains(s, "0.500") {
		t.Fatalf("node string %q", s)
	}
	c := NewConn(1, 2, -0.25)
	if !strings.Contains(c.String(), "1->2") || !strings.Contains(c.String(), "on") {
		t.Fatalf("conn string %q", c.String())
	}
	c.Enabled = false
	if !strings.Contains(c.String(), "off") {
		t.Fatalf("disabled conn string %q", c.String())
	}

	g := NewGenome(9)
	g.Fitness = 1.25
	g.PutNode(n)
	gs := g.String()
	if !strings.Contains(gs, "id=9") || !strings.Contains(gs, "nodes=1") {
		t.Fatalf("genome string %q", gs)
	}

	w := c.Pack()
	ws := w.String()
	if !strings.Contains(ws, "conn(1->2") {
		t.Fatalf("word string %q", ws)
	}
	ks := Key{Kind: KindConn, A: 1, B: 2}.String()
	if ks != "c1->2" {
		t.Fatalf("key string %q", ks)
	}
	if (Key{Kind: KindNode, A: 5}).String() != "n5" {
		t.Fatal("node key string wrong")
	}
}

func TestValidateCatchesClusterMixups(t *testing.T) {
	g := NewGenome(1)
	g.PutNode(NewNode(0, Input))
	g.PutNode(NewNode(1, Output))
	// Forge a node gene into the connection cluster.
	g.Conns = append(g.Conns, NewNode(2, Hidden))
	if err := g.Validate(); err == nil {
		t.Fatal("node gene in conn cluster accepted")
	}
	// Forge an unsorted node cluster.
	h := NewGenome(2)
	h.Nodes = []Gene{NewNode(5, Hidden), NewNode(3, Hidden)}
	if err := h.Validate(); err == nil {
		t.Fatal("unsorted node cluster accepted")
	}
	// Forge an out-of-range node id.
	k := NewGenome(3)
	k.Nodes = []Gene{{Kind: KindNode, NodeID: -1}}
	if err := k.Validate(); err == nil {
		t.Fatal("negative node id accepted")
	}
}
