package gene

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON serialization of genomes — checkpointing for long evolutionary
// runs and interchange of evolved controllers. The format is explicit
// (no packed words) so checkpoints remain readable and diffable; the
// hardware word format (Pack/FromWords) remains the storage model for
// the chip.

// jsonNode is the serialized form of a node gene.
type jsonNode struct {
	ID          int32   `json:"id"`
	Type        string  `json:"type"`
	Bias        float64 `json:"bias"`
	Response    float64 `json:"response"`
	Activation  string  `json:"activation"`
	Aggregation string  `json:"aggregation"`
}

// jsonConn is the serialized form of a connection gene.
type jsonConn struct {
	Src     int32   `json:"src"`
	Dst     int32   `json:"dst"`
	Weight  float64 `json:"weight"`
	Enabled bool    `json:"enabled"`
}

// jsonGenome is the serialized genome.
type jsonGenome struct {
	ID      int64      `json:"id"`
	Fitness float64    `json:"fitness"`
	Nodes   []jsonNode `json:"nodes"`
	Conns   []jsonConn `json:"conns"`
}

// nodeTypeNames maps between NodeType and its serialized name.
var nodeTypeNames = map[NodeType]string{Hidden: "hidden", Input: "input", Output: "output"}

func nodeTypeFromName(s string) (NodeType, error) {
	for t, n := range nodeTypeNames {
		if n == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("gene: unknown node type %q", s)
}

func activationFromName(s string) (Activation, error) {
	for a := Activation(0); int(a) < NumActivations; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("gene: unknown activation %q", s)
}

func aggregationFromName(s string) (Aggregation, error) {
	for a := Aggregation(0); int(a) < NumAggregations; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("gene: unknown aggregation %q", s)
}

// MarshalJSON implements json.Marshaler.
func (g *Genome) MarshalJSON() ([]byte, error) {
	jg := jsonGenome{ID: g.ID, Fitness: g.Fitness}
	for _, n := range g.Nodes {
		jg.Nodes = append(jg.Nodes, jsonNode{
			ID: n.NodeID, Type: nodeTypeNames[n.Type],
			Bias: n.Bias, Response: n.Response,
			Activation: n.Activation.String(), Aggregation: n.Aggregation.String(),
		})
	}
	for _, c := range g.Conns {
		jg.Conns = append(jg.Conns, jsonConn{
			Src: c.Src, Dst: c.Dst, Weight: c.Weight, Enabled: c.Enabled,
		})
	}
	return json.Marshal(jg)
}

// UnmarshalJSON implements json.Unmarshaler and validates the result.
func (g *Genome) UnmarshalJSON(data []byte) error {
	var jg jsonGenome
	if err := json.Unmarshal(data, &jg); err != nil {
		return fmt.Errorf("gene: %w", err)
	}
	out := Genome{ID: jg.ID, Fitness: jg.Fitness}
	for _, n := range jg.Nodes {
		t, err := nodeTypeFromName(n.Type)
		if err != nil {
			return err
		}
		act, err := activationFromName(n.Activation)
		if err != nil {
			return err
		}
		agg, err := aggregationFromName(n.Aggregation)
		if err != nil {
			return err
		}
		out.PutNode(Gene{
			Kind: KindNode, NodeID: n.ID, Type: t,
			Bias: n.Bias, Response: n.Response, Activation: act, Aggregation: agg,
		})
	}
	for _, c := range jg.Conns {
		out.PutConn(Gene{
			Kind: KindConn, Src: c.Src, Dst: c.Dst, Weight: c.Weight, Enabled: c.Enabled,
		})
	}
	if err := out.Validate(); err != nil {
		return err
	}
	*g = out
	return nil
}

// Save writes the genome as indented JSON.
func (g *Genome) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(g)
}

// Load reads a genome from JSON.
func Load(r io.Reader) (*Genome, error) {
	g := &Genome{}
	if err := json.NewDecoder(r).Decode(g); err != nil {
		return nil, err
	}
	return g, nil
}

// SavePopulation writes a genome slice as one JSON document.
func SavePopulation(w io.Writer, genomes []*Genome) error {
	enc := json.NewEncoder(w)
	return enc.Encode(genomes)
}

// LoadPopulation reads a genome slice.
func LoadPopulation(r io.Reader) ([]*Genome, error) {
	var out []*Genome
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}
