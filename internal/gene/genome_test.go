package gene

import (
	"testing"
	"testing/quick"
)

// smallGenome builds a 2-input / 1-output genome with one hidden node.
func smallGenome(t *testing.T) *Genome {
	t.Helper()
	g := NewGenome(1)
	g.PutNode(NewNode(0, Input))
	g.PutNode(NewNode(1, Input))
	g.PutNode(NewNode(2, Output))
	g.PutNode(NewNode(5, Hidden))
	g.PutConn(NewConn(0, 5, 0.5))
	g.PutConn(NewConn(1, 5, -0.5))
	g.PutConn(NewConn(5, 2, 1.0))
	g.PutConn(NewConn(0, 2, 0.25))
	if err := g.Validate(); err != nil {
		t.Fatalf("fixture invalid: %v", err)
	}
	return g
}

func TestPutNodeKeepsSorted(t *testing.T) {
	g := NewGenome(1)
	for _, id := range []int32{5, 1, 9, 3, 7} {
		g.PutNode(NewNode(id, Hidden))
	}
	for i := 1; i < len(g.Nodes); i++ {
		if g.Nodes[i-1].NodeID >= g.Nodes[i].NodeID {
			t.Fatalf("node cluster unsorted: %v", g.Nodes)
		}
	}
}

func TestPutNodeReplaces(t *testing.T) {
	g := NewGenome(1)
	g.PutNode(NewNode(3, Hidden))
	n := NewNode(3, Hidden)
	n.Bias = 2.5
	g.PutNode(n)
	if len(g.Nodes) != 1 {
		t.Fatalf("replace duplicated node: %d entries", len(g.Nodes))
	}
	got, _ := g.Node(3)
	if got.Bias != 2.5 {
		t.Fatalf("replace did not update: %v", got)
	}
}

func TestPutConnKeepsSorted(t *testing.T) {
	g := NewGenome(1)
	for _, p := range [][2]int32{{2, 1}, {0, 3}, {1, 1}, {0, 1}, {2, 0}} {
		g.PutNode(NewNode(p[0], Hidden))
		g.PutNode(NewNode(p[1], Hidden))
		g.PutConn(NewConn(p[0], p[1], 0))
	}
	for i := 1; i < len(g.Conns); i++ {
		p, c := g.Conns[i-1], g.Conns[i]
		if p.Src > c.Src || (p.Src == c.Src && p.Dst >= c.Dst) {
			t.Fatalf("conn cluster unsorted: %v", g.Conns)
		}
	}
}

func TestDeleteNodePrunesDanglingConns(t *testing.T) {
	g := smallGenome(t)
	if !g.DeleteNode(5) {
		t.Fatal("DeleteNode(5) reported missing")
	}
	if g.HasNode(5) {
		t.Fatal("node 5 still present")
	}
	for _, c := range g.Conns {
		if c.Src == 5 || c.Dst == 5 {
			t.Fatalf("dangling connection survived: %v", c)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("post-delete genome invalid: %v", err)
	}
	if len(g.Conns) != 1 {
		t.Fatalf("expected only 0->2 to survive, have %v", g.Conns)
	}
}

func TestDeleteConn(t *testing.T) {
	g := smallGenome(t)
	if !g.DeleteConn(0, 2) {
		t.Fatal("DeleteConn(0,2) reported missing")
	}
	if g.HasConn(0, 2) {
		t.Fatal("conn 0->2 still present")
	}
	if g.DeleteConn(0, 2) {
		t.Fatal("double delete reported success")
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := smallGenome(t)
	c := g.Clone()
	c.Nodes[0].Bias = 99
	c.DeleteConn(0, 2)
	if g.Nodes[0].Bias == 99 {
		t.Fatal("clone shares node storage")
	}
	if !g.HasConn(0, 2) {
		t.Fatal("clone shares conn storage")
	}
}

func TestGenomePackRoundTrip(t *testing.T) {
	g := smallGenome(t)
	words := g.Pack()
	if len(words) != g.NumGenes() {
		t.Fatalf("Pack produced %d words for %d genes", len(words), g.NumGenes())
	}
	back := FromWords(g.ID, words)
	if back.NumGenes() != g.NumGenes() {
		t.Fatalf("round trip lost genes: %d vs %d", back.NumGenes(), g.NumGenes())
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped genome invalid: %v", err)
	}
	for i, n := range back.Nodes {
		if n.NodeID != g.Nodes[i].NodeID || n.Type != g.Nodes[i].Type {
			t.Fatalf("node %d mangled: %v vs %v", i, n, g.Nodes[i])
		}
	}
}

func TestSizeBytes(t *testing.T) {
	g := smallGenome(t)
	if g.SizeBytes() != 8*g.NumGenes() {
		t.Fatalf("SizeBytes = %d for %d genes", g.SizeBytes(), g.NumGenes())
	}
}

func TestTypedIDs(t *testing.T) {
	g := smallGenome(t)
	in, out, hid := g.InputIDs(), g.OutputIDs(), g.HiddenIDs()
	if len(in) != 2 || in[0] != 0 || in[1] != 1 {
		t.Fatalf("InputIDs = %v", in)
	}
	if len(out) != 1 || out[0] != 2 {
		t.Fatalf("OutputIDs = %v", out)
	}
	if len(hid) != 1 || hid[0] != 5 {
		t.Fatalf("HiddenIDs = %v", hid)
	}
}

func TestValidateCatchesDangling(t *testing.T) {
	g := smallGenome(t)
	// Bypass DeleteNode's pruning to forge a dangling connection.
	g.Nodes = append(g.Nodes[:3], g.Nodes[4:]...) // drop node 5 directly
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted dangling connections")
	}
}

func TestValidateCatchesInputDst(t *testing.T) {
	g := smallGenome(t)
	g.PutConn(NewConn(2, 0, 1)) // output -> input is illegal
	if err := g.Validate(); err == nil {
		t.Fatal("Validate accepted connection into input node")
	}
}

func TestMaxNodeIDIn(t *testing.T) {
	g := NewGenome(1)
	if g.MaxNodeIDIn() != -1 {
		t.Fatal("empty genome max id should be -1")
	}
	g.PutNode(NewNode(7, Hidden))
	g.PutNode(NewNode(3, Hidden))
	if g.MaxNodeIDIn() != 7 {
		t.Fatalf("MaxNodeIDIn = %d", g.MaxNodeIDIn())
	}
}

func TestEnabledConns(t *testing.T) {
	g := smallGenome(t)
	c, _ := g.Conn(0, 2)
	c.Enabled = false
	g.PutConn(c)
	en := g.EnabledConns()
	if len(en) != 3 {
		t.Fatalf("EnabledConns = %d, want 3", len(en))
	}
	for _, e := range en {
		if !e.Enabled {
			t.Fatalf("disabled conn in EnabledConns: %v", e)
		}
	}
}

// Property: inserting arbitrary node ids keeps the cluster sorted and
// deduplicated, and DeleteNode leaves a valid genome.
func TestQuickGenomeInvariants(t *testing.T) {
	f := func(ids []uint16, del uint16) bool {
		g := NewGenome(0)
		g.PutNode(NewNode(0, Input))
		g.PutNode(NewNode(1, Output))
		for _, raw := range ids {
			id := int32(raw%500) + 2
			g.PutNode(NewNode(id, Hidden))
			g.PutConn(NewConn(0, id, 1))
			g.PutConn(NewConn(id, 1, 1))
		}
		if err := g.Validate(); err != nil {
			return false
		}
		g.DeleteNode(int32(del%500) + 2)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
