package gene

import "testing"

// The phenotype version stamp is the genome-level-reuse cache key: it
// must be stable across reads and clones, unique across distinct
// genomes, and bumped by every gene edit.

func TestVersionStableAndUnique(t *testing.T) {
	a, b := NewGenome(1), NewGenome(2)
	va := a.Version()
	if va == 0 {
		t.Fatal("version stamp 0 (the unassigned sentinel) leaked")
	}
	if a.Version() != va {
		t.Fatal("Version changed between reads without an edit")
	}
	if b.Version() == va {
		t.Fatal("distinct genomes share a version stamp")
	}
}

func TestCloneKeepsVersion(t *testing.T) {
	g := NewGenome(1)
	g.PutNode(NewNode(0, Input))
	v := g.Version()
	c := g.Clone()
	if c.Version() != v {
		t.Fatalf("clone version %d, want parent's %d (genome-level reuse key)", c.Version(), v)
	}
	// Editing the clone must diverge it without touching the parent.
	c.PutNode(NewNode(1, Hidden))
	if c.Version() == v {
		t.Fatal("edited clone kept the parent's stamp; cache would serve a stale phenotype")
	}
	if g.Version() != v {
		t.Fatal("editing the clone changed the parent's stamp")
	}
}

func TestEveryEditorBumpsVersion(t *testing.T) {
	g := NewGenome(1)
	g.PutNode(NewNode(0, Input))
	g.PutNode(NewNode(1, Output))
	g.PutConn(NewConn(0, 1, 0.5))

	check := func(op string, f func()) {
		t.Helper()
		before := g.Version()
		f()
		if g.Version() == before {
			t.Fatalf("%s did not bump the version stamp", op)
		}
	}
	check("PutNode", func() { g.PutNode(NewNode(2, Hidden)) })
	check("PutConn", func() { g.PutConn(NewConn(0, 2, 1)) })
	check("DeleteConn", func() { g.DeleteConn(0, 2) })
	check("DeleteNode", func() { g.DeleteNode(2) })
}

func TestBumpVersionIsUnique(t *testing.T) {
	g := NewGenome(1)
	seen := map[int64]bool{g.Version(): true}
	for i := 0; i < 100; i++ {
		g.BumpVersion()
		v := g.Version()
		if seen[v] {
			t.Fatalf("BumpVersion reissued stamp %d", v)
		}
		seen[v] = true
	}
}
