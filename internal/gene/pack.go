package gene

import "fmt"

// Word is the packed 64-bit hardware representation of a gene (Fig. 6).
// This is the unit that streams through the EvE interconnect, occupies
// the genome buffer SRAM, and determines the memory footprint figures.
//
// Bit layout (bit 63 is the MSB):
//
//	[63]      kind            0 = node gene, 1 = connection gene
//
// Node gene:
//
//	[62:61]   node type       00 hidden, 01 input, 10 output
//	[60:45]   node id         16-bit unsigned
//	[44:33]   bias            Q4.8 signed fixed point in [-8, 8)
//	[32:21]   response        Q4.8 signed fixed point in [-8, 8)
//	[20:17]   activation      4-bit function select
//	[16:13]   aggregation     4-bit function select
//	[12:0]    reserved
//
// Connection gene:
//
//	[62:47]   src node id     16-bit unsigned
//	[46:31]   dst node id     16-bit unsigned
//	[30:15]   weight          Q4.12 signed fixed point in [-8, 8)
//	[14]      enabled
//	[13:0]    reserved
type Word uint64

// WordBytes is the storage size of one packed gene; the paper's "64 bits
// to capture both types of genes".
const WordBytes = 8

// Fixed-point parameters for the packed attribute fields.
const (
	attrBits12 = 12 // node bias / response field width
	attrBits16 = 16 // connection weight field width
	// AttrLimit bounds the representable attribute magnitude; values are
	// clamped into [-AttrLimit, AttrLimit) when packed, mirroring the
	// "Limit & Quantize" block in the perturbation engine (Fig. 7).
	AttrLimit = 8.0
)

// MaxNodeID is the largest node id representable in the 16-bit id fields.
const MaxNodeID = 1<<16 - 1

// quantize converts v to an unsigned fixed-point field of the given width
// covering [-AttrLimit, AttrLimit).
func quantize(v float64, bits uint) uint64 {
	scale := float64(uint64(1)<<bits) / (2 * AttrLimit)
	if v >= AttrLimit {
		v = AttrLimit - 1/scale
	}
	if v < -AttrLimit {
		v = -AttrLimit
	}
	q := int64(v * scale)
	// Two's-complement into the field width.
	return uint64(q) & (1<<bits - 1)
}

// dequantize inverts quantize.
func dequantize(f uint64, bits uint) float64 {
	scale := float64(uint64(1)<<bits) / (2 * AttrLimit)
	// Sign-extend.
	v := int64(f << (64 - bits))
	v >>= 64 - bits
	return float64(v) / scale
}

// Quantize rounds v to the nearest value representable in the packed
// connection-weight field. The hardware stores quantized attributes, so
// the HW-path inference uses Quantize'd weights.
func Quantize(v float64) float64 {
	return dequantize(quantize(v, attrBits16), attrBits16)
}

// Pack encodes the gene into its 64-bit hardware word, quantizing the
// real-valued attributes.
func (g Gene) Pack() Word {
	if g.Kind == KindNode {
		var w uint64
		w |= uint64(g.Type&3) << 61
		w |= (uint64(g.NodeID) & 0xFFFF) << 45
		w |= quantize(g.Bias, attrBits12) << 33
		w |= quantize(g.Response, attrBits12) << 21
		w |= uint64(g.Activation&0xF) << 17
		w |= uint64(g.Aggregation&0xF) << 13
		return Word(w)
	}
	var w uint64
	w |= 1 << 63
	w |= (uint64(g.Src) & 0xFFFF) << 47
	w |= (uint64(g.Dst) & 0xFFFF) << 31
	w |= quantize(g.Weight, attrBits16) << 15
	if g.Enabled {
		w |= 1 << 14
	}
	return Word(w)
}

// Unpack decodes a hardware word back into a Gene. Attributes come back
// at quantized precision.
func (w Word) Unpack() Gene {
	u := uint64(w)
	if u>>63 == 0 {
		return Gene{
			Kind:        KindNode,
			Type:        NodeType(u >> 61 & 3),
			NodeID:      int32(u >> 45 & 0xFFFF),
			Bias:        dequantize(u>>33&(1<<attrBits12-1), attrBits12),
			Response:    dequantize(u>>21&(1<<attrBits12-1), attrBits12),
			Activation:  Activation(u >> 17 & 0xF),
			Aggregation: Aggregation(u >> 13 & 0xF),
		}
	}
	return Gene{
		Kind:    KindConn,
		Src:     int32(u >> 47 & 0xFFFF),
		Dst:     int32(u >> 31 & 0xFFFF),
		Weight:  dequantize(u>>15&(1<<attrBits16-1), attrBits16),
		Enabled: u>>14&1 == 1,
	}
}

// Kind reports the gene kind encoded in the word without a full unpack.
func (w Word) Kind() Kind {
	if uint64(w)>>63 == 0 {
		return KindNode
	}
	return KindConn
}

// String renders the word via its decoded gene.
func (w Word) String() string {
	return fmt.Sprintf("%016x %s", uint64(w), w.Unpack())
}
