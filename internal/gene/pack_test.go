package gene

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNodePackRoundTrip(t *testing.T) {
	n := NewNode(42, Hidden)
	n.Bias = 1.25
	n.Response = -0.5
	n.Activation = ActReLU
	n.Aggregation = AggMax
	got := n.Pack().Unpack()
	if got.Kind != KindNode || got.NodeID != 42 || got.Type != Hidden {
		t.Fatalf("identity fields mangled: %+v", got)
	}
	if got.Activation != ActReLU || got.Aggregation != AggMax {
		t.Fatalf("function selects mangled: %+v", got)
	}
	if math.Abs(got.Bias-1.25) > 0.01 || math.Abs(got.Response+0.5) > 0.01 {
		t.Fatalf("attributes off: bias=%v resp=%v", got.Bias, got.Response)
	}
}

func TestConnPackRoundTrip(t *testing.T) {
	c := NewConn(3, 7, -2.375)
	got := c.Pack().Unpack()
	if got.Kind != KindConn || got.Src != 3 || got.Dst != 7 || !got.Enabled {
		t.Fatalf("identity fields mangled: %+v", got)
	}
	if math.Abs(got.Weight+2.375) > 0.001 {
		t.Fatalf("weight off: %v", got.Weight)
	}
	c.Enabled = false
	if c.Pack().Unpack().Enabled {
		t.Fatal("disabled flag lost")
	}
}

func TestWordKind(t *testing.T) {
	if NewNode(1, Input).Pack().Kind() != KindNode {
		t.Fatal("node word misclassified")
	}
	if NewConn(1, 2, 0).Pack().Kind() != KindConn {
		t.Fatal("conn word misclassified")
	}
}

func TestQuantizeClamping(t *testing.T) {
	for _, v := range []float64{100, -100, AttrLimit, -AttrLimit} {
		q := Quantize(v)
		if q >= AttrLimit || q < -AttrLimit {
			t.Fatalf("Quantize(%v) = %v escaped [-8,8)", v, q)
		}
	}
}

func TestQuantizeIdempotent(t *testing.T) {
	for _, v := range []float64{0, 0.1, -3.7, 7.99, -8} {
		q := Quantize(v)
		if Quantize(q) != q {
			t.Fatalf("Quantize not idempotent at %v: %v vs %v", v, q, Quantize(q))
		}
	}
}

// Property: node gene attributes survive packing within quantization
// error (Q4.8 step = 1/256).
func TestQuickNodeRoundTrip(t *testing.T) {
	f := func(id uint16, bias, resp float64, act, agg uint8) bool {
		bias = math.Mod(bias, AttrLimit)
		resp = math.Mod(resp, AttrLimit)
		if math.IsNaN(bias) || math.IsNaN(resp) {
			return true
		}
		n := NewNode(int32(id), Hidden)
		n.Bias = bias
		n.Response = resp
		n.Activation = Activation(act % uint8(NumActivations))
		n.Aggregation = Aggregation(agg % uint8(NumAggregations))
		got := n.Pack().Unpack()
		const step12 = 2 * AttrLimit / (1 << 12)
		return got.NodeID == n.NodeID &&
			got.Activation == n.Activation &&
			got.Aggregation == n.Aggregation &&
			math.Abs(got.Bias-bias) <= step12 &&
			math.Abs(got.Response-resp) <= step12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: connection genes round-trip with weight error below the
// Q4.12 step and exact ids/flags.
func TestQuickConnRoundTrip(t *testing.T) {
	f := func(src, dst uint16, w float64, en bool) bool {
		w = math.Mod(w, AttrLimit)
		if math.IsNaN(w) {
			return true
		}
		c := NewConn(int32(src), int32(dst), w)
		c.Enabled = en
		got := c.Pack().Unpack()
		const step16 = 2 * AttrLimit / (1 << 16)
		return got.Src == c.Src && got.Dst == c.Dst && got.Enabled == en &&
			math.Abs(got.Weight-w) <= step16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyOrdering(t *testing.T) {
	n1 := NewNode(1, Hidden).Key()
	n2 := NewNode(2, Hidden).Key()
	c11 := NewConn(1, 1, 0).Key()
	c12 := NewConn(1, 2, 0).Key()
	c21 := NewConn(2, 1, 0).Key()
	if !n1.Less(n2) || n2.Less(n1) {
		t.Fatal("node ordering broken")
	}
	if !n2.Less(c11) {
		t.Fatal("nodes must sort before connections")
	}
	if !c11.Less(c12) || !c12.Less(c21) {
		t.Fatal("connection ordering broken")
	}
	if c11.Less(c11) {
		t.Fatal("Less not irreflexive")
	}
}
