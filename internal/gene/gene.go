// Package gene implements the 64-bit gene encoding used by the GeneSys
// hardware (Fig. 6 of the paper).
//
// NEAT builds genomes from two gene kinds: node genes (vertices of the
// neural-network graph) and connection genes (edges). The paper packs
// both into a single 64-bit word so that one gene streams through an EvE
// processing element per cycle. Node genes carry four attributes —
// bias, response, activation and aggregation — plus a 2-bit node type
// (hidden / input / output). Connection genes carry source and
// destination node ids, a weight, and an enabled flag.
//
// This package defines the in-memory Gene struct the algorithm
// manipulates, the exact bit-level packing the hardware models stream,
// and the quantization used to fit real-valued attributes into the word.
package gene

import "fmt"

// Kind discriminates node genes from connection genes.
type Kind uint8

const (
	// KindNode marks a gene describing a network vertex (neuron).
	KindNode Kind = iota
	// KindConn marks a gene describing a network edge (synapse).
	KindConn
)

// String returns "node" or "conn".
func (k Kind) String() string {
	if k == KindNode {
		return "node"
	}
	return "conn"
}

// NodeType is the 2-bit role field of a node gene (Fig. 6: 00 hidden,
// 01 input, 10 output).
type NodeType uint8

const (
	// Hidden is an evolved interior neuron.
	Hidden NodeType = 0
	// Input is a sensor node fed from the environment observation.
	Input NodeType = 1
	// Output is an actuator node read out as the action.
	Output NodeType = 2
)

// String names the node type.
func (t NodeType) String() string {
	switch t {
	case Hidden:
		return "hidden"
	case Input:
		return "input"
	case Output:
		return "output"
	default:
		return fmt.Sprintf("NodeType(%d)", uint8(t))
	}
}

// Activation enumerates the activation functions a node gene can select.
// The 4-bit field allows 16; we implement the set neat-python ships that
// the paper's characterization used.
type Activation uint8

// Activation function ids. ActSigmoid is NEAT's default.
const (
	ActSigmoid Activation = iota
	ActTanh
	ActReLU
	ActIdentity
	ActSin
	ActGauss
	ActAbs
	ActClamped
	numActivations
)

// NumActivations is the count of defined activation functions.
const NumActivations = int(numActivations)

// String names the activation function.
func (a Activation) String() string {
	names := [...]string{"sigmoid", "tanh", "relu", "identity", "sin", "gauss", "abs", "clamped"}
	if int(a) < len(names) {
		return names[a]
	}
	return fmt.Sprintf("Activation(%d)", uint8(a))
}

// Aggregation enumerates how a node combines its weighted inputs.
type Aggregation uint8

// Aggregation function ids. AggSum is NEAT's default.
const (
	AggSum Aggregation = iota
	AggProduct
	AggMax
	AggMin
	AggMean
	numAggregations
)

// NumAggregations is the count of defined aggregation functions.
const NumAggregations = int(numAggregations)

// String names the aggregation function.
func (a Aggregation) String() string {
	names := [...]string{"sum", "product", "max", "min", "mean"}
	if int(a) < len(names) {
		return names[a]
	}
	return fmt.Sprintf("Aggregation(%d)", uint8(a))
}

// Gene is one NEAT gene: either a node or a connection, per Kind.
// Unused fields for the other kind are ignored. The float attributes are
// full precision in memory; Pack quantizes them into the 64-bit hardware
// word (Word), matching what the chip stores in the genome buffer SRAM.
type Gene struct {
	Kind Kind

	// Node gene fields.
	NodeID      int32
	Type        NodeType
	Bias        float64
	Response    float64
	Activation  Activation
	Aggregation Aggregation

	// Connection gene fields. A connection is keyed by (Src, Dst).
	Src     int32
	Dst     int32
	Weight  float64
	Enabled bool
}

// NewNode returns a node gene with NEAT defaults (bias 0, response 1,
// sigmoid activation, sum aggregation).
func NewNode(id int32, t NodeType) Gene {
	return Gene{
		Kind:        KindNode,
		NodeID:      id,
		Type:        t,
		Bias:        0,
		Response:    1,
		Activation:  ActSigmoid,
		Aggregation: AggSum,
	}
}

// NewConn returns an enabled connection gene from src to dst with the
// given weight.
func NewConn(src, dst int32, weight float64) Gene {
	return Gene{Kind: KindConn, Src: src, Dst: dst, Weight: weight, Enabled: true}
}

// Key returns the identity of the gene within a genome: the node id for
// node genes, and the (src, dst) pair for connection genes. Two genes in
// different genomes with the same key are homologous and line up during
// crossover (NEAT's historical-marking alignment).
func (g Gene) Key() Key {
	if g.Kind == KindNode {
		return Key{Kind: KindNode, A: g.NodeID}
	}
	return Key{Kind: KindConn, A: g.Src, B: g.Dst}
}

// Key identifies a gene within a genome.
type Key struct {
	Kind Kind
	A, B int32
}

// Less orders keys: all node keys before connection keys, then ascending
// by id — the sorted two-cluster genome layout of Section IV-C5.
func (k Key) Less(o Key) bool {
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	if k.A != o.A {
		return k.A < o.A
	}
	return k.B < o.B
}

// String renders the key.
func (k Key) String() string {
	if k.Kind == KindNode {
		return fmt.Sprintf("n%d", k.A)
	}
	return fmt.Sprintf("c%d->%d", k.A, k.B)
}

// String renders the gene in a compact human-readable form.
func (g Gene) String() string {
	if g.Kind == KindNode {
		return fmt.Sprintf("node(%d %s bias=%.3f resp=%.3f %s/%s)",
			g.NodeID, g.Type, g.Bias, g.Response, g.Activation, g.Aggregation)
	}
	en := "on"
	if !g.Enabled {
		en = "off"
	}
	return fmt.Sprintf("conn(%d->%d w=%.3f %s)", g.Src, g.Dst, g.Weight, en)
}
