package gene

import (
	"bytes"
	"strings"
	"testing"
)

func TestGenomeJSONRoundTrip(t *testing.T) {
	g := smallGenome(t)
	g.Fitness = 42.5
	n, _ := g.Node(5)
	n.Activation = ActReLU
	n.Aggregation = AggMax
	n.Bias = 1.5
	g.PutNode(n)
	c, _ := g.Conn(0, 2)
	c.Enabled = false
	g.PutConn(c)

	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.ID != g.ID || back.Fitness != 42.5 {
		t.Fatalf("header mangled: %+v", back)
	}
	if back.NumGenes() != g.NumGenes() {
		t.Fatalf("gene count %d vs %d", back.NumGenes(), g.NumGenes())
	}
	bn, _ := back.Node(5)
	if bn.Activation != ActReLU || bn.Aggregation != AggMax || bn.Bias != 1.5 {
		t.Fatalf("node attributes lost: %v", bn)
	}
	bc, _ := back.Conn(0, 2)
	if bc.Enabled {
		t.Fatal("enabled flag lost")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	cases := map[string]string{
		"garbage":        `{`,
		"bad node type":  `{"id":1,"nodes":[{"id":0,"type":"ghost"}]}`,
		"bad activation": `{"id":1,"nodes":[{"id":0,"type":"input","activation":"magic","aggregation":"sum"}]}`,
		"dangling conn":  `{"id":1,"nodes":[{"id":0,"type":"input","activation":"sigmoid","aggregation":"sum"}],"conns":[{"src":0,"dst":9,"weight":1,"enabled":true}]}`,
	}
	for name, doc := range cases {
		if _, err := Load(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestPopulationRoundTrip(t *testing.T) {
	a := smallGenome(t)
	b := a.Clone()
	b.ID = 2
	b.Fitness = 7
	var buf bytes.Buffer
	if err := SavePopulation(&buf, []*Genome{a, b}); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPopulation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[1].Fitness != 7 || back[0].NumGenes() != a.NumGenes() {
		t.Fatalf("population round trip wrong: %v", back)
	}
}

func TestJSONIsHumanReadable(t *testing.T) {
	g := smallGenome(t)
	var buf bytes.Buffer
	if err := g.Save(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	for _, want := range []string{`"type": "input"`, `"activation": "sigmoid"`, `"src"`} {
		if !strings.Contains(doc, want) {
			t.Fatalf("serialized form missing %q:\n%s", want, doc)
		}
	}
}
