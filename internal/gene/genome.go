package gene

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// versionCounter issues process-unique phenotype version stamps. A
// stamp identifies one exact (topology, attributes) state of a genome:
// any two genomes carrying the same stamp are guaranteed to build the
// same phenotype, which is what lets the network compile cache reuse
// programs across generations (the paper's genome-level reuse applied
// to software). Stamps are never reused, so a cache keyed by stamp can
// never alias two different structures.
var versionCounter atomic.Int64

// Genome is one individual: the complete list of genes describing a
// neural network, plus its identity and most recent fitness.
//
// Genes are stored in the two sorted logical clusters of Section IV-C5 —
// node genes ascending by node id, then connection genes ascending by
// (src, dst). Keeping the in-memory layout identical to the hardware
// layout makes the gene-split streaming in the EvE model a plain walk
// over the slices.
type Genome struct {
	ID      int64
	Fitness float64

	// Nodes holds the node genes sorted by NodeID.
	Nodes []Gene
	// Conns holds the connection genes sorted by (Src, Dst).
	Conns []Gene

	// version is the phenotype version stamp: assigned lazily, copied
	// by Clone, and replaced whenever a gene changes. It is deliberately
	// unexported (and absent from checkpoints — restored genomes get a
	// fresh stamp, landing in an empty cache anyway).
	version int64
}

// Version returns the genome's phenotype version stamp, assigning one on
// first use. Two genomes share a stamp only when one is an unmodified
// clone of the other, so the stamp is a sound compile-cache key.
func (g *Genome) Version() int64 {
	if g.version == 0 {
		g.version = versionCounter.Add(1)
	}
	return g.version
}

// BumpVersion invalidates the genome's phenotype stamp. Every mutation
// path that edits genes in place (rather than through PutNode/PutConn/
// DeleteNode/DeleteConn, which bump automatically) must call this, or a
// compile cache could serve a stale phenotype.
func (g *Genome) BumpVersion() { g.version = versionCounter.Add(1) }

// NewGenome returns an empty genome with the given id.
func NewGenome(id int64) *Genome {
	return &Genome{ID: id}
}

// Clone deep-copies the genome (fitness and phenotype version stamp
// included — an unmodified clone builds the identical phenotype, so it
// shares the parent's compile-cache entry until its first mutation).
func (g *Genome) Clone() *Genome {
	c := &Genome{ID: g.ID, Fitness: g.Fitness, version: g.Version()}
	c.Nodes = append([]Gene(nil), g.Nodes...)
	c.Conns = append([]Gene(nil), g.Conns...)
	return c
}

// NumGenes is the total gene count — the unit of Fig. 4(b).
func (g *Genome) NumGenes() int { return len(g.Nodes) + len(g.Conns) }

// SizeBytes is the genome's storage footprint in the genome buffer:
// one 64-bit word per gene. This is the unit of the Fig. 5(b) and
// Fig. 10(d) memory-footprint results.
func (g *Genome) SizeBytes() int { return g.NumGenes() * WordBytes }

// nodeIndex locates a node gene by id, returning its index and presence.
func (g *Genome) nodeIndex(id int32) (int, bool) {
	i := sort.Search(len(g.Nodes), func(i int) bool { return g.Nodes[i].NodeID >= id })
	if i < len(g.Nodes) && g.Nodes[i].NodeID == id {
		return i, true
	}
	return i, false
}

// connIndex locates a connection gene by (src, dst).
func (g *Genome) connIndex(src, dst int32) (int, bool) {
	i := sort.Search(len(g.Conns), func(i int) bool {
		c := g.Conns[i]
		if c.Src != src {
			return c.Src >= src
		}
		return c.Dst >= dst
	})
	if i < len(g.Conns) && g.Conns[i].Src == src && g.Conns[i].Dst == dst {
		return i, true
	}
	return i, false
}

// Node returns the node gene with the given id, if present.
func (g *Genome) Node(id int32) (Gene, bool) {
	if i, ok := g.nodeIndex(id); ok {
		return g.Nodes[i], true
	}
	return Gene{}, false
}

// Conn returns the connection gene (src → dst), if present.
func (g *Genome) Conn(src, dst int32) (Gene, bool) {
	if i, ok := g.connIndex(src, dst); ok {
		return g.Conns[i], true
	}
	return Gene{}, false
}

// HasNode reports whether the genome contains a node gene with the id.
func (g *Genome) HasNode(id int32) bool { _, ok := g.nodeIndex(id); return ok }

// HasConn reports whether the genome contains the connection (src → dst).
func (g *Genome) HasConn(src, dst int32) bool { _, ok := g.connIndex(src, dst); return ok }

// PutNode inserts or replaces a node gene, keeping the cluster sorted.
func (g *Genome) PutNode(n Gene) {
	if n.Kind != KindNode {
		panic("gene: PutNode with connection gene")
	}
	g.BumpVersion()
	i, ok := g.nodeIndex(n.NodeID)
	if ok {
		g.Nodes[i] = n
		return
	}
	g.Nodes = append(g.Nodes, Gene{})
	copy(g.Nodes[i+1:], g.Nodes[i:])
	g.Nodes[i] = n
}

// PutConn inserts or replaces a connection gene, keeping the cluster
// sorted.
func (g *Genome) PutConn(c Gene) {
	if c.Kind != KindConn {
		panic("gene: PutConn with node gene")
	}
	g.BumpVersion()
	i, ok := g.connIndex(c.Src, c.Dst)
	if ok {
		g.Conns[i] = c
		return
	}
	g.Conns = append(g.Conns, Gene{})
	copy(g.Conns[i+1:], g.Conns[i:])
	g.Conns[i] = c
}

// DeleteNode removes the node gene with the id and every connection gene
// touching it (the dangling-connection pruning the Delete Gene engine
// performs in hardware). It reports whether the node existed.
func (g *Genome) DeleteNode(id int32) bool {
	i, ok := g.nodeIndex(id)
	if !ok {
		return false
	}
	g.BumpVersion()
	g.Nodes = append(g.Nodes[:i], g.Nodes[i+1:]...)
	kept := g.Conns[:0]
	for _, c := range g.Conns {
		if c.Src != id && c.Dst != id {
			kept = append(kept, c)
		}
	}
	g.Conns = kept
	return true
}

// DeleteConn removes the connection (src → dst), reporting whether it
// existed.
func (g *Genome) DeleteConn(src, dst int32) bool {
	i, ok := g.connIndex(src, dst)
	if !ok {
		return false
	}
	g.BumpVersion()
	g.Conns = append(g.Conns[:i], g.Conns[i+1:]...)
	return true
}

// MaxNodeIDIn returns the largest node id present, or -1 for an empty
// genome. The Add Gene engine assigns new-node ids above this value.
func (g *Genome) MaxNodeIDIn() int32 {
	if len(g.Nodes) == 0 {
		return -1
	}
	return g.Nodes[len(g.Nodes)-1].NodeID
}

// InputIDs returns the ids of input-type nodes in ascending order.
func (g *Genome) InputIDs() []int32 { return g.idsOfType(Input) }

// OutputIDs returns the ids of output-type nodes in ascending order.
func (g *Genome) OutputIDs() []int32 { return g.idsOfType(Output) }

// HiddenIDs returns the ids of hidden nodes in ascending order.
func (g *Genome) HiddenIDs() []int32 { return g.idsOfType(Hidden) }

func (g *Genome) idsOfType(t NodeType) []int32 {
	var ids []int32
	for _, n := range g.Nodes {
		if n.Type == t {
			ids = append(ids, n.NodeID)
		}
	}
	return ids
}

// EnabledConns returns the connection genes with Enabled set.
func (g *Genome) EnabledConns() []Gene {
	var out []Gene
	for _, c := range g.Conns {
		if c.Enabled {
			out = append(out, c)
		}
	}
	return out
}

// Pack serializes the genome into its hardware layout: node-gene words
// then connection-gene words, both clusters already sorted.
func (g *Genome) Pack() []Word {
	words := make([]Word, 0, g.NumGenes())
	for _, n := range g.Nodes {
		words = append(words, n.Pack())
	}
	for _, c := range g.Conns {
		words = append(words, c.Pack())
	}
	return words
}

// FromWords reconstructs a genome from packed words. Genes arrive at
// quantized precision, as they would from the genome buffer SRAM.
func FromWords(id int64, words []Word) *Genome {
	g := NewGenome(id)
	for _, w := range words {
		gn := w.Unpack()
		if gn.Kind == KindNode {
			g.PutNode(gn)
		} else {
			g.PutConn(gn)
		}
	}
	return g
}

// Validate checks the genome's structural invariants:
//   - both clusters sorted with unique keys,
//   - every connection endpoint refers to an existing node,
//   - no connection terminates at an input node,
//   - node ids fit the 16-bit hardware field.
func (g *Genome) Validate() error {
	for i, n := range g.Nodes {
		if n.Kind != KindNode {
			return fmt.Errorf("genome %d: non-node gene in node cluster at %d", g.ID, i)
		}
		if n.NodeID < 0 || n.NodeID > MaxNodeID {
			return fmt.Errorf("genome %d: node id %d outside hardware range", g.ID, n.NodeID)
		}
		if i > 0 && g.Nodes[i-1].NodeID >= n.NodeID {
			return fmt.Errorf("genome %d: node cluster unsorted at %d", g.ID, i)
		}
	}
	for i, c := range g.Conns {
		if c.Kind != KindConn {
			return fmt.Errorf("genome %d: non-conn gene in conn cluster at %d", g.ID, i)
		}
		if i > 0 {
			p := g.Conns[i-1]
			if p.Src > c.Src || (p.Src == c.Src && p.Dst >= c.Dst) {
				return fmt.Errorf("genome %d: conn cluster unsorted at %d", g.ID, i)
			}
		}
		if !g.HasNode(c.Src) {
			return fmt.Errorf("genome %d: conn %d->%d has dangling source", g.ID, c.Src, c.Dst)
		}
		if !g.HasNode(c.Dst) {
			return fmt.Errorf("genome %d: conn %d->%d has dangling destination", g.ID, c.Src, c.Dst)
		}
		dst, _ := g.Node(c.Dst)
		if dst.Type == Input {
			return fmt.Errorf("genome %d: conn %d->%d terminates at input node", g.ID, c.Src, c.Dst)
		}
	}
	return nil
}

// String summarizes the genome.
func (g *Genome) String() string {
	return fmt.Sprintf("genome(id=%d fit=%.3f nodes=%d conns=%d)",
		g.ID, g.Fitness, len(g.Nodes), len(g.Conns))
}
