// Package experiments regenerates every table and figure of the paper's
// evaluation (Section III and Section VI). Each generator runs real
// evolution through the real environments, replays the resulting traces
// through the hardware models, prices the same work on the CPU/GPU
// baseline models, and emits the rows/series the paper plots.
//
// Absolute values are model outputs, not silicon measurements; the
// claims being reproduced are the shapes — who wins, by roughly what
// factor, and where the crossovers fall. EXPERIMENTS.md records the
// paper-vs-measured comparison for every experiment.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/env"
	"repro/internal/evolve"
	"repro/internal/gene"
	"repro/internal/neat"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Options tune experiment fidelity. Zero values select the defaults.
type Options struct {
	// Seed is the base RNG seed; runs r of a workload use Seed+r.
	Seed uint64
	// Runs per workload for the distribution/variance figures.
	Runs int
	// MaxGenerations bounds each evolution run.
	MaxGenerations int
	// Population overrides the NEAT population (paper: 150). The
	// default trades fidelity for tractable CI runs; pass 150 for
	// paper-scale characterization.
	Population int
	// RAMPopulation is the population for the 128-input RAM workloads
	// (heavier per genome).
	RAMPopulation int
	// RAMGenerations bounds RAM-workload runs separately.
	RAMGenerations int
	// Parallelism caps the harness's concurrency: generators in flight
	// under RunAll, design points in flight inside a sweep figure, and
	// study runs in flight. 0 means runtime.NumCPU(). 1 is the fully
	// serial harness; outputs are byte-identical at every setting
	// (pinned by TestParallelSerialIdentical).
	Parallelism int
	// BatchWidth caps the lane count of the tensorized batch evaluation
	// engine inside each run (0 = engine default). Execution shape
	// only: results are byte-identical at every width (the batch engine
	// is pinned to the scalar reference by the evolve differential
	// tests), so it is deliberately NOT part of the run-cache key.
	BatchWidth int
	// Ctx, when set, cancels in-flight evolution runs (e.g. on SIGINT);
	// nil means context.Background().
	Ctx context.Context
}

// ctx returns the effective cancellation context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Runs == 0 {
		o.Runs = 3
	}
	if o.MaxGenerations == 0 {
		o.MaxGenerations = 30
	}
	if o.Population == 0 {
		o.Population = 64
	}
	if o.RAMPopulation == 0 {
		o.RAMPopulation = 32
	}
	if o.RAMGenerations == 0 {
		o.RAMGenerations = 6
	}
	return o
}

// Table is one rendered block of an experiment's output.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Raw is pre-rendered text (e.g. an ASCII chart) printed after the
	// rows.
	Raw string
}

// Result is a regenerated experiment: human-readable tables plus the
// raw named series tests assert against.
type Result struct {
	ID     string
	Title  string
	Tables []Table
	Series map[string][]float64
}

// series stores a named raw series.
func (r *Result) series(name string, xs ...float64) {
	if r.Series == nil {
		r.Series = map[string][]float64{}
	}
	r.Series[name] = append(r.Series[name], xs...)
}

// Render writes the result in the fixed-width text form the CLI prints.
func (r *Result) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	for _, t := range r.Tables {
		if t.Title != "" {
			fmt.Fprintf(w, "\n-- %s --\n", t.Title)
		}
		widths := make([]int, len(t.Header))
		for i, h := range t.Header {
			widths[i] = len(h)
		}
		for _, row := range t.Rows {
			for i, c := range row {
				if i < len(widths) && len(c) > widths[i] {
					widths[i] = len(c)
				}
			}
		}
		line := func(cells []string) {
			parts := make([]string, len(cells))
			for i, c := range cells {
				if i < len(widths) {
					parts[i] = fmt.Sprintf("%-*s", widths[i], c)
				} else {
					parts[i] = c
				}
			}
			fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		}
		line(t.Header)
		for _, row := range t.Rows {
			line(row)
		}
		if t.Raw != "" {
			fmt.Fprint(w, t.Raw)
		}
		for _, n := range t.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
	fmt.Fprintln(w)
	return nil
}

// Generator regenerates one experiment.
type Generator func(Options) (*Result, error)

// registry maps experiment ids to generators; populated by init
// functions in the per-area files.
var registry = map[string]Generator{}

func register(id string, g Generator) { registry[id] = g }

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Has reports whether an experiment id is registered.
func Has(id string) bool {
	_, ok := registry[id]
	return ok
}

// Run regenerates the named experiment.
func Run(id string, opt Options) (*Result, error) {
	g, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return g(opt.withDefaults())
}

// --- shared run helpers ---

// isRAM reports whether the workload is one of the 128-byte RAM titles.
func isRAM(workload string) bool { return strings.HasSuffix(workload, "-ram") }

// popFor picks the population size for a workload.
func (o Options) popFor(workload string) int {
	if isRAM(workload) {
		return o.RAMPopulation
	}
	return o.Population
}

// gensFor picks the generation budget for a workload.
func (o Options) gensFor(workload string) int {
	if isRAM(workload) {
		return o.RAMGenerations
	}
	return o.MaxGenerations
}

// evolved is one completed evolution run with its trace.
type evolved struct {
	runner *evolve.Runner
	trace  *trace.Trace
	solved bool
}

// runWorkload returns the workload's evolved run, evolving it on the
// first request and serving every later (or concurrent) request for
// the same (workload, population, generations, seed, run) key from the
// shared run cache. With a persistent store attached (UseStore) a
// cache miss first tries the disk tier and commits what it computes.
// The returned run is shared: callers read its history, population,
// and trace but must not mutate them (re-scoring goes through
// evolve.Runner.ScoreGenome).
func runWorkload(workload string, opt Options, run int) (*evolved, error) {
	key := runKeyFor(workload, opt, run)
	return runCache.get(key, func() (*evolved, error) {
		if e, ok := loadStored(key); ok {
			return e, nil
		}
		e, err := evolveWorkload(workload, opt, run)
		if err != nil {
			return nil, err
		}
		commitStored(key, e)
		return e, nil
	})
}

// evolveWorkload evolves one workload with a trace recorder attached —
// the uncached body of runWorkload.
func evolveWorkload(workload string, opt Options, run int) (*evolved, error) {
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = opt.popFor(workload)
	r, err := evolve.NewRunner(workload, cfg, opt.Seed+uint64(run)*7919)
	if err != nil {
		return nil, err
	}
	r.BatchWidth = opt.BatchWidth
	tr := &trace.Trace{}
	r.SetRecorder(tr)
	evolutionsRun.Add(1)
	solved, err := r.Run(opt.ctx(), opt.gensFor(workload))
	if err != nil {
		return nil, err
	}
	// The run cache retains this entry for the process lifetime, but
	// consumers only read History/Pop/trace (re-scoring goes through the
	// self-contained ScoreGenome), so the evaluation engine — worker
	// pool, batch planes, phenotype cache — is dead weight from here on.
	r.ReleaseEvalState()
	return &evolved{runner: r, trace: tr, solved: solved}, nil
}

// genWorkload extracts the platform charge model's view of one
// generation from a run.
func genWorkload(e *evolved, st evolve.GenStats) (platform.GenWorkload, error) {
	probe, err := env.New(e.runner.Workload.EnvName)
	if err != nil {
		return platform.GenWorkload{}, err
	}
	w := platform.GenWorkload{
		Population:    len(e.runner.Pop.Genomes),
		GeneOps:       st.CrossoverOps + st.MutationOps,
		TotalGenes:    st.TotalGenes,
		EnvSteps:      st.EnvSteps,
		MaxSteps:      probe.MaxSteps(),
		InferenceMACs: st.InferenceMACs,
		VertexUpdates: st.VertexUpdates,
		ObsSize:       probe.ObservationSize(),
		ActSize:       probe.ActionSize(),
	}
	var sumNodes, maxNodes int
	var maxID int32
	for _, g := range e.runner.Pop.Genomes {
		n := len(g.Nodes)
		sumNodes += n
		if n > maxNodes {
			maxNodes = n
		}
		if id := g.MaxNodeIDIn(); id > maxID {
			maxID = id
		}
	}
	if p := w.Population; p > 0 {
		w.MeanNodes = sumNodes / p
	}
	w.MaxNodes = maxNodes
	w.MaxNodeID = int(maxID) + 1
	return w, nil
}

// maxNodeIDOf returns the population's largest node id plus one.
func maxNodeIDOf(genomes []*gene.Genome) int {
	var maxID int32
	for _, g := range genomes {
		if id := g.MaxNodeIDIn(); id > maxID {
			maxID = id
		}
	}
	return int(maxID) + 1
}

// fnum formats a float compactly for table cells.
func fnum(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1e6 || v < 1e-3:
		return fmt.Sprintf("%.3g", v)
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// inum formats an integer cell.
func inum[T int | int64](v T) string { return fmt.Sprintf("%d", v) }
