package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"repro/internal/evolve"
	"repro/internal/neat"
	"repro/internal/store"
	"repro/internal/trace"
)

// This file is the run cache's disk tier. When a persistent store is
// attached (the daemon does this at boot), every single-run cache miss
// first consults the store — a committed artifact rehydrates into the
// same immutable (runner, trace, solved) entry an in-process evolution
// would have produced — and every freshly computed run is committed
// back. The in-memory singleflight layer stays authoritative for
// request coalescing; the store only changes what a cold miss costs:
// a disk read instead of an evolution.
//
// Artifact layout per run (under the store's integrity manifest):
//
//	history.json    — schema-stamped GenStats slice + solved/seed
//	population.json — the final population in neat checkpoint format
//	trace.txt       — the reproduction trace
//
// GenStats fields are float64/int64 and Go's JSON encoding of float64
// is exact (shortest round-trip representation), so a replayed history
// is byte-identical to the computed one after re-marshaling — the
// property the durability test pins.

// runSchema stamps history.json; a mismatch means the artifact was
// written by an incompatible build and must recompute.
const runSchema = "genesys-run/1"

const (
	historyFile    = "history.json"
	populationFile = "population.json"
	traceFile      = "trace.txt"
)

// historyDoc is the history.json payload.
type historyDoc struct {
	Schema  string            `json:"schema"`
	Solved  bool              `json:"solved"`
	Seed    uint64            `json:"seed"`
	History []evolve.GenStats `json:"history"`
}

// activeStore is the attached disk tier (nil = memory-only, the
// default for CLIs and tests).
var activeStore atomic.Pointer[store.Store]

// UseStore attaches (or with nil detaches) the persistent run store
// the single-run cache reads through and writes back to.
func UseStore(s *store.Store) { activeStore.Store(s) }

// storeKeyFor maps a cache key to its store key (same tuple, exported
// form).
func storeKeyFor(k runKey) store.Key {
	return store.Key{Workload: k.workload, Population: k.population, Generations: k.generations, Seed: k.seed}
}

// loadStored tries to rehydrate a run from the disk tier. Any failure
// degrades to (nil, false): semantic decode errors additionally
// quarantine the artifact so the recompute can commit a fresh one.
func loadStored(k runKey) (*evolved, bool) {
	s := activeStore.Load()
	if s == nil {
		return nil, false
	}
	key := storeKeyFor(k)
	art, ok := s.Get(key)
	if !ok {
		return nil, false
	}
	e, err := decodeArtifact(k, art)
	if err != nil {
		// Bytes verified but the payload doesn't decode: as corrupt as a
		// checksum mismatch, handled the same way.
		s.QuarantineKey(key, fmt.Sprintf("decode: %v", err))
		return nil, false
	}
	return e, true
}

// commitStored writes a freshly computed run to the disk tier
// (best-effort: a commit failure only means the next cold process
// recomputes).
func commitStored(k runKey, e *evolved) {
	s := activeStore.Load()
	if s == nil {
		return
	}
	doc := historyDoc{Schema: runSchema, Solved: e.solved, Seed: k.seed, History: e.runner.History}
	history, err := json.Marshal(&doc)
	if err != nil {
		return
	}
	var pop bytes.Buffer
	if err := e.runner.Pop.Save(&pop); err != nil {
		return
	}
	var tr bytes.Buffer
	if _, err := e.trace.WriteTo(&tr); err != nil {
		return
	}
	var best float64
	if n := len(e.runner.History); n > 0 {
		best = e.runner.History[n-1].MaxFitness
	}
	s.Put(storeKeyFor(k),
		store.Meta{Solved: e.solved, BestFitness: best, Generations: len(e.runner.History)},
		map[string][]byte{historyFile: history, populationFile: pop.Bytes(), traceFile: tr.Bytes()})
}

// decodeArtifact rebuilds the immutable run entry from committed
// payloads: the history replays verbatim, the population restores
// through the checkpoint decoder (with full genome validation), and
// the trace re-parses.
func decodeArtifact(k runKey, art *store.Artifact) (*evolved, error) {
	var doc historyDoc
	if err := json.Unmarshal(art.Files[historyFile], &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", historyFile, err)
	}
	if doc.Schema != runSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", historyFile, doc.Schema, runSchema)
	}
	if doc.Seed != k.seed {
		return nil, fmt.Errorf("%s: seed %d, want %d", historyFile, doc.Seed, k.seed)
	}
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = k.population
	r, err := evolve.NewRunner(k.workload, cfg, k.seed)
	if err != nil {
		return nil, err
	}
	tr := &trace.Trace{}
	r.SetRecorder(tr)
	if err := r.RestoreFrom(bytes.NewReader(art.Files[populationFile])); err != nil {
		return nil, fmt.Errorf("%s: %w", populationFile, err)
	}
	parsed, err := trace.Parse(bytes.NewReader(art.Files[traceFile]))
	if err != nil {
		return nil, fmt.Errorf("%s: %w", traceFile, err)
	}
	r.History = doc.History
	r.ReleaseEvalState()
	return &evolved{runner: r, trace: parsed, solved: doc.Solved}, nil
}
