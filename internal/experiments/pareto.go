package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/evolve"
	"repro/internal/hw/hwsim"
	"repro/internal/moea"
	"repro/internal/store"
)

// This file threads the Pareto (multi-objective) run type through the
// same two cache tiers ordinary and island runs use — a singleflight
// memory cache keyed on the full pareto tuple, backed by the
// persistent store (one pareto.json artifact per key) — and registers
// the Pareto-front figure generator over the existing workloads.

// paretoSchema stamps pareto.json artifacts.
const paretoSchema = "genesys-pareto/1"

const paretoFile = "pareto.json"

// paretoDoc is the pareto.json payload.
type paretoDoc struct {
	Schema string            `json:"schema"`
	Run    *evolve.ParetoRun `json:"run"`
}

// ParetoRequest describes one Pareto-mode run to resolve through the
// shared cache. The tuple (Workload, Population, Generations, Seed,
// Objectives — order included) is the identity; the rest shapes
// execution.
type ParetoRequest struct {
	Workload    string
	Population  int
	Generations int
	Seed        uint64
	Objectives  []string

	// Ctx cancels a cache-miss computation; nil means Background.
	Ctx context.Context
	// Parallelism / BatchWidth shape the runner's evaluation.
	Parallelism int
	BatchWidth  int
	// Phases, when set, receives the runner's live per-phase wall-clock
	// counters on a cache-miss computation (metrics only, never stored).
	Phases *hwsim.Counters
	// Sink, when set, receives the live per-generation record stream of
	// a cache-miss computation (replays come from the returned run).
	Sink hwsim.Sink
}

// ParetoOutcome is the result of a shared Pareto request.
type ParetoOutcome struct {
	Run *evolve.ParetoRun
	// Computed is true only for the request whose computation executed.
	Computed bool
	// Stored reports the cache miss was served from the persistent
	// store (no computation ran).
	Stored bool
}

// JoinObjectives renders an objective vector in the canonical '+'
// form used by store keys and the wire ("fitness+genes+energy").
func JoinObjectives(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += "+"
		}
		out += n
	}
	return out
}

// SplitObjectives parses the canonical '+' form back to a vector.
func SplitObjectives(joined string) []string {
	if joined == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(joined); i++ {
		if i == len(joined) || joined[i] == '+' {
			out = append(out, joined[start:i])
			start = i + 1
		}
	}
	return out
}

func (req ParetoRequest) key() paretoKey {
	return paretoKey{
		workload:    req.Workload,
		population:  req.Population,
		generations: req.Generations,
		seed:        req.Seed,
		objectives:  JoinObjectives(req.Objectives),
	}
}

func paretoStoreKeyFor(k paretoKey) store.Key {
	return store.Key{
		Workload:    k.workload,
		Population:  k.population,
		Generations: k.generations,
		Seed:        k.seed,
		Objectives:  k.objectives,
	}
}

// RunSharedPareto resolves one Pareto-mode run through the package's
// singleflight cache and the persistent store, computing on a cold
// miss via evolve.RunPareto.
func RunSharedPareto(req ParetoRequest) (*ParetoOutcome, error) {
	spec := evolve.ParetoSpec{
		Workload:    req.Workload,
		Population:  req.Population,
		Generations: req.Generations,
		Seed:        req.Seed,
		Objectives:  req.Objectives,
		Parallelism: req.Parallelism,
		BatchWidth:  req.BatchWidth,
		Phases:      req.Phases,
		Sink:        req.Sink,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	out := &ParetoOutcome{}
	key := req.key()
	run, err := paretoCache.get(key, func() (*evolve.ParetoRun, error) {
		if stored, ok := loadStoredPareto(key); ok {
			out.Stored = true
			return stored, nil
		}
		out.Computed = true
		ctx := req.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		evolutionsRun.Add(1)
		r, cerr := evolve.RunPareto(ctx, spec)
		if cerr != nil {
			return nil, cerr
		}
		commitStoredPareto(key, r)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out.Run = run
	return out, nil
}

// loadStoredPareto rehydrates a Pareto run from the disk tier.
func loadStoredPareto(k paretoKey) (*evolve.ParetoRun, bool) {
	s := activeStore.Load()
	if s == nil {
		return nil, false
	}
	key := paretoStoreKeyFor(k)
	art, ok := s.Get(key)
	if !ok {
		return nil, false
	}
	var doc paretoDoc
	if err := json.Unmarshal(art.Files[paretoFile], &doc); err != nil || doc.Schema != paretoSchema || doc.Run == nil {
		reason := "decode: bad pareto.json"
		if err != nil {
			reason = fmt.Sprintf("decode: %v", err)
		}
		s.QuarantineKey(key, reason)
		return nil, false
	}
	if doc.Run.Seed != k.seed || JoinObjectives(doc.Run.Objectives) != k.objectives {
		s.QuarantineKey(key, "decode: pareto.json does not match its key")
		return nil, false
	}
	return doc.Run, true
}

// commitStoredPareto writes a freshly computed Pareto run to the disk
// tier (best-effort, like commitStored).
func commitStoredPareto(k paretoKey, run *evolve.ParetoRun) {
	s := activeStore.Load()
	if s == nil {
		return
	}
	payload, err := json.Marshal(&paretoDoc{Schema: paretoSchema, Run: run})
	if err != nil {
		return
	}
	s.Put(paretoStoreKeyFor(k),
		store.Meta{Solved: run.Solved, BestFitness: run.BestFitness, Generations: len(run.History)},
		map[string][]byte{paretoFile: payload})
}

// PeekSharedPareto answers a Pareto request from memory or disk
// without computing — the coordinator's store-hit proxy for pareto
// jobs, mirroring PeekShared/PeekSharedIsland.
func PeekSharedPareto(workload string, population, generations int, seed uint64, objectives []string) (*evolve.ParetoRun, bool, bool) {
	k := paretoKey{
		workload:    workload,
		population:  population,
		generations: generations,
		seed:        seed,
		objectives:  JoinObjectives(objectives),
	}
	if run, ok := paretoCache.peek(k); ok {
		return run, false, true
	}
	stored, ok := loadStoredPareto(k)
	if !ok {
		return nil, false, false
	}
	run, err := paretoCache.get(k, func() (*evolve.ParetoRun, error) { return stored, nil })
	if err != nil {
		return nil, false, false
	}
	return run, true, true
}

// --- the Pareto-front figure ---

func init() {
	register("pareto", ParetoFront)
}

// ParetoFront is the multi-objective experiment over the classic
// control suite: each workload evolves under NSGA-II selection with
// the canonical three-axis vector (task fitness up, genome size down,
// structural chip energy down) and the figure reports the resulting
// Pareto fronts — the accuracy/complexity/energy trade-off surface a
// scalar run collapses to a single champion.
func ParetoFront(opt Options) (*Result, error) {
	res := &Result{ID: "pareto", Title: "Pareto fronts: fitness vs genome size vs chip energy (NSGA-II)"}
	objectives := evolve.DefaultParetoObjectives()
	for _, wl := range evolve.ControlSuite() {
		out, err := RunSharedPareto(ParetoRequest{
			Workload:    wl,
			Population:  opt.popFor(wl),
			Generations: opt.gensFor(wl),
			Seed:        opt.Seed,
			Objectives:  objectives,
			Ctx:         opt.Ctx,
			Parallelism: opt.Parallelism,
			BatchWidth:  opt.BatchWidth,
		})
		if err != nil {
			return nil, err
		}
		run := out.Run
		t := Table{
			Title:  fmt.Sprintf("%s front (pop %d, %d generations, objectives %s)", wl, run.Population, len(run.History), JoinObjectives(run.Objectives)),
			Header: []string{"genome", "fitness", "genes", "energy_pJ", "crowding"},
		}
		minEnergy, maxFit := 0.0, 0.0
		for i, p := range run.Front {
			crowd := "boundary"
			if p.Crowding != moea.CrowdingMax {
				crowd = fnum(p.Crowding)
			}
			t.Rows = append(t.Rows, []string{
				inum(p.GenomeID),
				fnum(p.Values["fitness"]),
				inum(int(p.Values["genes"])),
				fnum(p.Values["energy"]),
				crowd,
			})
			if i == 0 || p.Values["energy"] < minEnergy {
				minEnergy = p.Values["energy"]
			}
			if i == 0 || p.Values["fitness"] > maxFit {
				maxFit = p.Values["fitness"]
			}
		}
		t.Notes = append(t.Notes,
			fmt.Sprintf("front size %d of population %d; best task fitness %s; cheapest front genome %s pJ",
				len(run.Front), run.Population, fnum(run.BestFitness), fnum(minEnergy)))
		res.Tables = append(res.Tables, t)
		res.series(wl+":frontSize", float64(len(run.Front)))
		res.series(wl+":bestFitness", run.BestFitness)
		res.series(wl+":frontMaxFitness", maxFit)
		res.series(wl+":frontMinEnergy", minEnergy)
		res.series(wl+":generations", float64(len(run.History)))
	}
	return res, nil
}
