package experiments

import (
	"fmt"

	"repro/internal/es"
	"repro/internal/evolve"
	"repro/internal/hw/adam"
	"repro/internal/hw/energy"
	"repro/internal/hw/hwsim"
	"repro/internal/hw/soc"
	"repro/internal/network"
	"repro/internal/platform"
	"repro/internal/rl"
)

func init() {
	register("table2", TableII)
	register("table3", TableIII)
	register("footnote1", Footnote1)
	register("fig9a", Fig9a)
	register("fig9b", Fig9b)
	register("fig9c", Fig9c)
	register("fig9d", Fig9d)
	register("fig10ab", Fig10ab)
	register("fig10c", Fig10c)
	register("fig10d", Fig10d)
}

// newADAM builds an ADAM engine from a SoC design point.
func newADAM(cfg energy.SoCConfig) *adam.Engine {
	acfg := adam.DefaultConfig()
	acfg.Rows, acfg.Cols = cfg.ADAMRows, cfg.ADAMCols
	acfg.MACEnergyPJ = cfg.Tech.EMAC
	acfg.SRAMAccessPJ = cfg.Tech.ESRAMAccess
	return adam.New(acfg)
}

// inferenceJobs builds the ADAM job list for the run's current
// population. stepsPerGenome ≤ 0 uses the run's measured mean episode
// length.
func inferenceJobs(e *evolved, stepsPerGenome int) ([]adam.Job, error) {
	last := e.runner.Last()
	if stepsPerGenome <= 0 {
		if n := len(e.runner.Pop.Genomes); n > 0 && last.EnvSteps > 0 {
			stepsPerGenome = int(last.EnvSteps) / n
		}
		if stepsPerGenome <= 0 {
			stepsPerGenome = 1
		}
	}
	jobs := make([]adam.Job, 0, len(e.runner.Pop.Genomes))
	for _, g := range e.runner.Pop.Genomes {
		n, err := network.New(g)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, adam.Job{Plan: n.BuildPlan(false), Steps: stepsPerGenome})
	}
	return jobs, nil
}

// comparison prices one workload's last generation on every platform
// and on the GeneSys SoC model. The GeneSys side is the chip's hwsim
// counter tree: every figure reads it by registry traversal instead of
// plumbing bespoke report fields.
type comparison struct {
	workload string
	reports  map[string]platform.Report
	genesys  hwsim.Report
	soCfg    energy.SoCConfig
}

// runComparison evolves the workload and prices its last generation
// everywhere, memoized in the shared singleflight store: eight
// Fig. 9/10 panels share the same six evolution runs, and concurrent
// panels block on one pricing instead of racing to duplicate it. The
// key is the run key of the underlying evolution (run 0), so the cache
// is insensitive to option fields that do not change the run.
func runComparison(wl string, opt Options) (*comparison, error) {
	return priceCache.get(runKeyFor(wl, opt, 0), func() (*comparison, error) {
		return runComparisonUncached(wl, opt)
	})
}

func runComparisonUncached(wl string, opt Options) (*comparison, error) {
	e, err := runWorkload(wl, opt, 0)
	if err != nil {
		return nil, err
	}
	// Price a generation that actually reproduced: a run that hits the
	// target on its final generation records no reproduction ops there.
	last := e.runner.Last()
	for i := len(e.runner.History) - 1; i >= 0; i-- {
		if st := e.runner.History[i]; st.CrossoverOps+st.MutationOps > 0 {
			last = st
			break
		}
	}
	w, err := genWorkload(e, last)
	if err != nil {
		return nil, err
	}
	c := &comparison{workload: wl, reports: map[string]platform.Report{}, soCfg: energy.DefaultSoC()}
	for _, s := range platform.TableIII() {
		c.reports[s.Legend] = s.Run(w)
	}
	jobs, err := inferenceJobs(e, 0)
	if err != nil {
		return nil, err
	}
	chip := soc.New(c.soCfg)
	chip.RunGeneration(jobs, e.trace.Last(), e.runner.Pop.FootprintBytes())
	c.genesys = chip.Snapshot()
	return c, nil
}

// genesysInferenceCycles is the SoC's evaluation-phase time: ADAM plus
// the scratchpad transfers, read from the counter tree.
func (c *comparison) genesysInferenceCycles() int64 {
	return c.genesys.Int("adam/total_cycles") +
		c.genesys.Int("scratchpad_to_adam_cycles") +
		c.genesys.Int("adam_to_scratchpad_cycles")
}

// genesysInferenceSeconds is the SoC's evaluation-phase time.
func (c *comparison) genesysInferenceSeconds() float64 {
	return c.soCfg.CyclesToSeconds(c.genesysInferenceCycles())
}

// genesysEvolutionSeconds is the SoC's reproduction-phase time.
func (c *comparison) genesysEvolutionSeconds() float64 {
	return c.soCfg.CyclesToSeconds(c.genesys.Int("eve/total_cycles"))
}

// Fig9a regenerates inference runtime per generation across the
// desktop platforms and GeneSys.
func Fig9a(opt Options) (*Result, error) {
	r := &Result{ID: "fig9a", Title: "Inference runtime per generation (seconds)"}
	t := Table{Header: []string{"workload", "CPU_a", "CPU_b", "GPU_a", "GPU_b", "GENESYS", "best-GPU/GENESYS"}}
	if err := warmComparisons(evolve.PaperSuite(), opt); err != nil {
		return nil, err
	}
	for _, wl := range evolve.PaperSuite() {
		c, err := runComparison(wl, opt)
		if err != nil {
			return nil, err
		}
		gs := c.genesysInferenceSeconds()
		bestGPU := c.reports["GPU_a"].InferenceSeconds
		if b := c.reports["GPU_b"].InferenceSeconds; b < bestGPU {
			bestGPU = b
		}
		t.Rows = append(t.Rows, []string{
			wl,
			fnum(c.reports["CPU_a"].InferenceSeconds),
			fnum(c.reports["CPU_b"].InferenceSeconds),
			fnum(c.reports["GPU_a"].InferenceSeconds),
			fnum(c.reports["GPU_b"].InferenceSeconds),
			fnum(gs),
			fnum(bestGPU / gs),
		})
		r.series(wl+":speedupVsBestGPU", bestGPU/gs)
		r.series(wl+":cpuPLPSpeedup",
			c.reports["CPU_a"].InferenceSeconds/c.reports["CPU_b"].InferenceSeconds)
	}
	t.Notes = append(t.Notes, "paper: GeneSys outperforms the best GPU by ~100× in inference")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig9b regenerates inference energy per generation across the
// embedded platforms and GeneSys.
func Fig9b(opt Options) (*Result, error) {
	r := &Result{ID: "fig9b", Title: "Inference energy per generation (joules)"}
	t := Table{Header: []string{"workload", "CPU_c", "CPU_d", "GPU_c", "GPU_d", "GENESYS", "best/GENESYS"}}
	if err := warmComparisons(evolve.PaperSuite(), opt); err != nil {
		return nil, err
	}
	for _, wl := range evolve.PaperSuite() {
		c, err := runComparison(wl, opt)
		if err != nil {
			return nil, err
		}
		gsJ := c.genesys.Float("adam/energy_pj") * 1e-12
		best := c.reports["CPU_c"].InferenceEnergyJ
		for _, l := range []string{"CPU_d", "GPU_c", "GPU_d"} {
			if v := c.reports[l].InferenceEnergyJ; v < best {
				best = v
			}
		}
		t.Rows = append(t.Rows, []string{
			wl,
			fnum(c.reports["CPU_c"].InferenceEnergyJ),
			fnum(c.reports["CPU_d"].InferenceEnergyJ),
			fnum(c.reports["GPU_c"].InferenceEnergyJ),
			fnum(c.reports["GPU_d"].InferenceEnergyJ),
			fnum(gsJ),
			fnum(best / gsJ),
		})
		r.series(wl+":efficiencyVsBest", best/gsJ)
	}
	t.Notes = append(t.Notes, "paper: ADAM contributes ~100× energy efficiency")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig9c regenerates evolution runtime per generation on the CPUs (the
// paper plots CPU_a and CPU_c) with GeneSys for reference.
func Fig9c(opt Options) (*Result, error) {
	r := &Result{ID: "fig9c", Title: "Evolution runtime per generation (seconds)"}
	t := Table{Header: []string{"workload", "CPU_a", "CPU_c", "GENESYS", "CPU_a/GENESYS"}}
	if err := warmComparisons(evolve.PaperSuite(), opt); err != nil {
		return nil, err
	}
	for _, wl := range evolve.PaperSuite() {
		c, err := runComparison(wl, opt)
		if err != nil {
			return nil, err
		}
		gs := c.genesysEvolutionSeconds()
		t.Rows = append(t.Rows, []string{
			wl,
			fnum(c.reports["CPU_a"].EvolutionSeconds),
			fnum(c.reports["CPU_c"].EvolutionSeconds),
			fnum(gs),
			fnum(c.reports["CPU_a"].EvolutionSeconds / gs),
		})
		r.series(wl+":cpuSpeedup", c.reports["CPU_a"].EvolutionSeconds/gs)
	}
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig9d regenerates evolution energy per generation on the GPUs vs
// GeneSys — the headline 4–5 orders of magnitude.
func Fig9d(opt Options) (*Result, error) {
	r := &Result{ID: "fig9d", Title: "Evolution energy per generation (joules)"}
	t := Table{Header: []string{"workload", "GPU_a", "GPU_c", "GENESYS", "GPU_c/GENESYS"}}
	if err := warmComparisons(evolve.PaperSuite(), opt); err != nil {
		return nil, err
	}
	for _, wl := range evolve.PaperSuite() {
		c, err := runComparison(wl, opt)
		if err != nil {
			return nil, err
		}
		gsJ := c.genesys.Float("eve/energy_pj") * 1e-12
		ratio := c.reports["GPU_c"].EvolutionEnergyJ / gsJ
		t.Rows = append(t.Rows, []string{
			wl,
			fnum(c.reports["GPU_a"].EvolutionEnergyJ),
			fnum(c.reports["GPU_c"].EvolutionEnergyJ),
			fnum(gsJ),
			fnum(ratio),
		})
		r.series(wl+":evolutionEfficiency", ratio)
	}
	t.Notes = append(t.Notes, "paper: EvE is 4–5 orders of magnitude more efficient than the GPUs")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig10ab regenerates the GPU inference time split (memcpy vs kernel).
func Fig10ab(opt Options) (*Result, error) {
	r := &Result{ID: "fig10ab", Title: "GPU inference time distribution"}
	if err := warmComparisons(evolve.PaperSuite(), opt); err != nil {
		return nil, err
	}
	for _, legend := range []string{"GPU_a", "GPU_b"} {
		t := Table{
			Title:  legend,
			Header: []string{"workload", "HtoD-ms", "DtoH-ms", "kernel-ms", "memcpy%"},
		}
		for _, wl := range evolve.PaperSuite() {
			c, err := runComparison(wl, opt)
			if err != nil {
				return nil, err
			}
			rep := c.reports[legend]
			t.Rows = append(t.Rows, []string{
				wl,
				fnum(rep.MemcpyHtoDSeconds * 1e3),
				fnum(rep.MemcpyDtoHSeconds * 1e3),
				fnum(rep.KernelSeconds * 1e3),
				fnum(rep.MemcpyFraction() * 100),
			})
			r.series(legend+":"+wl+":memcpyFrac", rep.MemcpyFraction())
		}
		r.Tables = append(r.Tables, t)
	}
	r.Tables[0].Notes = []string{"paper: ~70% of GPU_a inference time is memory transfer"}
	r.Tables[1].Notes = []string{"paper: ~20% for GPU_b"}
	return r, nil
}

// Fig10c regenerates the GeneSys time split.
func Fig10c(opt Options) (*Result, error) {
	r := &Result{ID: "fig10c", Title: "GeneSys inference time distribution"}
	t := Table{Header: []string{"workload", "to-ADAM-ms", "from-ADAM-ms", "compute-ms", "movement%"}}
	if err := warmComparisons(evolve.PaperSuite(), opt); err != nil {
		return nil, err
	}
	for _, wl := range evolve.PaperSuite() {
		c, err := runComparison(wl, opt)
		if err != nil {
			return nil, err
		}
		g := c.genesys
		toMS := c.soCfg.CyclesToSeconds(g.Int("scratchpad_to_adam_cycles")) * 1e3
		fromMS := c.soCfg.CyclesToSeconds(g.Int("adam_to_scratchpad_cycles")) * 1e3
		compMS := c.soCfg.CyclesToSeconds(g.Int("inference_compute_cycles")) * 1e3
		moveFrac := g.Float("data_movement_fraction")
		t.Rows = append(t.Rows, []string{
			wl, fnum(toMS), fnum(fromMS), fnum(compMS),
			fnum(moveFrac * 100),
		})
		r.series(wl+":movementFrac", moveFrac)
	}
	t.Notes = append(t.Notes, "paper: ~15% of GeneSys time is data movement, all of it on-chip")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig10d regenerates the memory-footprint comparison.
func Fig10d(opt Options) (*Result, error) {
	r := &Result{ID: "fig10d", Title: "On-device memory footprint (bytes)"}
	t := Table{Header: []string{"workload", "GPU_a", "GPU_b", "GENESYS", "GENESYS/GPU_a", "GPU_b/GENESYS"}}
	wls := []string{"mountaincar", "amidar-ram"}
	if err := warmComparisons(wls, opt); err != nil {
		return nil, err
	}
	for _, wl := range wls {
		c, err := runComparison(wl, opt)
		if err != nil {
			return nil, err
		}
		fa := float64(c.reports["GPU_a"].FootprintBytes)
		fb := float64(c.reports["GPU_b"].FootprintBytes)
		gs := float64(c.genesys.Int("footprint_bytes"))
		t.Rows = append(t.Rows, []string{
			wl, fnum(fa), fnum(fb), fnum(gs), fnum(gs / fa), fnum(fb / gs),
		})
		r.series(wl+":gpuB/genesys", fb/gs)
		r.series(wl+":genesys/gpuA", gs/fa)
	}
	t.Notes = append(t.Notes,
		"paper: GeneSys ~100× GPU_a (whole population resident) and ~100× below GPU_b")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// TableII regenerates the DQN vs EA comparison.
func TableII(opt Options) (*Result, error) {
	e, err := runWorkload("alien-ram", opt, 0)
	if err != nil {
		return nil, err
	}
	w, err := genWorkload(e, e.runner.Last())
	if err != nil {
		return nil, err
	}
	d := platform.DefaultDQN()
	tab := platform.CompareDQN(d, w)
	r := &Result{ID: "table2", Title: "DQN vs EA (Atari-class workload)"}
	t := Table{
		Header: []string{"metric", "DQN", "EA"},
		Rows: [][]string{
			{"per-step compute", fmt.Sprintf("%d MACs fwd + %d grad ops BP",
				tab.DQNForwardMACs, tab.DQNGradOps),
				fmt.Sprintf("%d MACs inference", tab.EAInferenceMACs)},
			{"reproduction ops/gen", "n/a (SGD)", inum(tab.EAGeneOps)},
			{"memory", fmt.Sprintf("%d MB replay + %d MB params/act",
				tab.DQNReplayBytes>>20, tab.DQNParamBytes>>20),
				fmt.Sprintf("%d KB entire generation", tab.EAMemoryBytes>>10)},
			{"compute ratio (DQN/EA)", fnum(tab.ComputeRatio()), "1"},
			{"memory ratio (DQN/EA)", fnum(tab.MemoryRatio()), "1"},
		},
	}
	t.Notes = append(t.Notes,
		"paper: DQN 3M MACs + 680K gradients, 54 MB; EA 115K MACs + 135K ops, <1 MB")
	r.series("computeRatio", tab.ComputeRatio())
	r.series("memoryRatio", tab.MemoryRatio())
	r.Tables = append(r.Tables, t)

	// Measured corroboration: run the executable DQN briefly on a
	// control task and report its per-step ledger next to the analytic
	// model.
	agent, err := rl.NewAgent("cartpole", rl.DefaultConfig(), opt.Seed)
	if err != nil {
		return nil, err
	}
	if _, err := agent.Train(5); err != nil {
		return nil, err
	}
	meas := agent.Measured()
	fwd, grad := meas.PerStep()
	r.Tables = append(r.Tables, Table{
		Title:  "measured DQN ledger (executable baseline, cartpole, 5 episodes)",
		Header: []string{"fwd-MACs/step", "grad-ops/step", "replay-KB", "param-KB"},
		Rows: [][]string{{
			fnum(fwd), fnum(grad), inum(meas.ReplayBytes >> 10), inum(meas.ParamBytes >> 10),
		}},
		Notes: []string{"internal/rl executes the baseline; counters come from real arithmetic"},
	})
	r.series("measuredFwdMACsPerStep", fwd)
	return r, nil
}

// Footnote1 reproduces the paper's footnote 1: on the same
// environments, NEAT converges robustly while vanilla DQN needs
// shaping/tuning — it improves on dense-reward CartPole but stalls on
// sparse-reward MountainCar within a comparable interaction budget.
func Footnote1(opt Options) (*Result, error) {
	r := &Result{ID: "footnote1", Title: "NE vs RL convergence (paper footnote 1)"}
	t := Table{Header: []string{"task", "learner", "start", "end", "improved"}}

	for _, task := range []string{"cartpole", "mountaincar"} {
		// NEAT side.
		e, err := runWorkload(task, opt, 0)
		if err != nil {
			return nil, err
		}
		h := e.runner.History
		neatStart, neatEnd := h[0].MaxFitness, h[len(h)-1].MaxFitness
		t.Rows = append(t.Rows, []string{
			task, "NEAT", fnum(neatStart), fnum(neatEnd),
			fmt.Sprintf("%v", neatEnd > neatStart || e.solved),
		})
		r.series(task+":neatEnd", neatEnd)

		// DQN side, comparable small budget.
		cfg := rl.DefaultConfig()
		cfg.Hidden = []int{32, 32}
		cfg.BatchSize = 16
		cfg.WarmupSteps = 200
		cfg.EpsilonDecay = 2000
		agent, err := rl.NewAgent(task, cfg, opt.Seed)
		if err != nil {
			return nil, err
		}
		results, err := agent.Train(150)
		if err != nil {
			return nil, err
		}
		head := meanEpisodes(results[:20])
		tail := meanEpisodes(results[len(results)-20:])
		t.Rows = append(t.Rows, []string{
			task, "DQN", fnum(head), fnum(tail), fmt.Sprintf("%v", tail > head+5),
		})
		r.series(task+":dqnDelta", tail-head)

		// Evolution strategies (ref [3]) — the parameter-space EA:
		// forward passes only, like NEAT; fixed topology, unlike NEAT.
		strat, err := es.New(task, es.DefaultConfig(), opt.Seed)
		if err != nil {
			return nil, err
		}
		esHist, esSolved, err := strat.Run(20, 1e18)
		if err != nil {
			return nil, err
		}
		esStart := esHist[0]
		esBest := esStart
		for _, f := range esHist {
			if f > esBest {
				esBest = f
			}
		}
		t.Rows = append(t.Rows, []string{
			task, "ES", fnum(esStart), fnum(esBest),
			fmt.Sprintf("%v", esBest > esStart || esSolved),
		})
		r.series(task+":esBest", esBest)
	}
	t.Notes = append(t.Notes,
		"paper footnote 1: \"certain OpenAI environments never converged [under RL],",
		"or required a lot of tuning\" — sparse-reward mountaincar is the canonical case")
	r.Tables = append(r.Tables, t)
	return r, nil
}

func meanEpisodes(rs []rl.EpisodeResult) float64 {
	var sum float64
	for _, e := range rs {
		sum += e.Reward
	}
	return sum / float64(len(rs))
}

// TableIII dumps the baseline configurations.
func TableIII(opt Options) (*Result, error) {
	r := &Result{ID: "table3", Title: "Target system configurations"}
	t := Table{Header: []string{"legend", "inference", "evolution", "platform", "power-W"}}
	for _, s := range platform.TableIII() {
		t.Rows = append(t.Rows, []string{
			s.Legend, string(s.Inference), string(s.Evolution), s.Device.Name,
			fnum(s.Device.PowerW),
		})
	}
	t.Rows = append(t.Rows, []string{"GENESYS", "plp", "plp+glp", "genesys-soc",
		fnum(energy.DefaultSoC().RooflinePower().Total / 1000)})
	r.series("configs", float64(len(t.Rows)))
	r.Tables = append(r.Tables, t)
	return r, nil
}
