package experiments

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

// persistReq is the tiny run the persistence tests evolve. The seed
// range (777xxx) is private to this file so no other test's cache
// entries alias these keys.
func persistReq(seed uint64) SharedRequest {
	return SharedRequest{Workload: "cartpole", Population: 16, Generations: 2, Seed: seed}
}

func withTestStore(t *testing.T, cfg store.Config) *store.Store {
	t.Helper()
	if cfg.Root == "" {
		cfg.Root = t.TempDir()
	}
	s, err := store.Open(cfg)
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	UseStore(s)
	t.Cleanup(func() {
		UseStore(nil)
		ResetCaches()
	})
	return s
}

func traceBytes(t *testing.T, run *SharedRun) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := run.Trace.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestStoreRoundTripReplaysIdentically is the durability proof at the
// experiments layer: a run computed once, with the in-memory cache
// dropped (a "restart"), replays from disk with no evolution executed
// and a byte-identical history and trace.
func TestStoreRoundTripReplaysIdentically(t *testing.T) {
	withTestStore(t, store.Config{})
	ResetCaches()

	first, err := RunShared(persistReq(777001))
	if err != nil {
		t.Fatal(err)
	}
	if !first.Computed || first.Stored {
		t.Fatalf("first run: Computed=%v Stored=%v", first.Computed, first.Stored)
	}
	wantHist, err := json.Marshal(first.Runner.History)
	if err != nil {
		t.Fatal(err)
	}
	wantTrace := traceBytes(t, first)

	ResetCaches() // the restart: memory gone, disk remains

	second, err := RunShared(persistReq(777001))
	if err != nil {
		t.Fatal(err)
	}
	if second.Computed || !second.Stored {
		t.Fatalf("replay: Computed=%v Stored=%v", second.Computed, second.Stored)
	}
	if got := EvolutionsExecuted(); got != 0 {
		t.Fatalf("replay executed %d evolutions", got)
	}
	gotHist, err := json.Marshal(second.Runner.History)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotHist) != string(wantHist) {
		t.Fatalf("replayed history differs:\n%s\n%s", gotHist, wantHist)
	}
	if second.Solved != first.Solved {
		t.Fatalf("solved: %v vs %v", second.Solved, first.Solved)
	}
	if got := traceBytes(t, second); got != wantTrace {
		t.Fatal("replayed trace differs")
	}
}

// TestStoreCorruptionRecomputes pins graceful degradation end to end:
// a quarantined artifact turns the disk hit back into a compute, and
// the recompute recommits.
func TestStoreCorruptionRecomputes(t *testing.T) {
	s := withTestStore(t, store.Config{})
	ResetCaches()

	if _, err := RunShared(persistReq(777002)); err != nil {
		t.Fatal(err)
	}
	key := store.Key{Workload: "cartpole", Population: 16, Generations: 2, Seed: 777002}
	s.QuarantineKey(key, "test poison")
	ResetCaches()

	got, err := RunShared(persistReq(777002))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Computed || got.Stored {
		t.Fatalf("after quarantine: Computed=%v Stored=%v", got.Computed, got.Stored)
	}
	if _, ok := s.Get(key); !ok {
		t.Fatal("recompute did not recommit")
	}
}

// TestStoreSkipsResumedRuns pins the no-commit-on-resume rule: a run
// that restored a checkpoint carries a truncated history and must not
// enter the store.
func TestStoreSkipsResumedRuns(t *testing.T) {
	s := withTestStore(t, store.Config{})
	ResetCaches()

	// Produce a mid-run checkpoint for the 2-generation key: evolve the
	// same seed one generation and save its population at the path the
	// 2-generation request will look at.
	ckpt := filepath.Join(t.TempDir(), "cartpole-p16-g2-s777003.ckpt")
	g1 := persistReq(777003)
	g1.Generations = 1
	r, err := RunShared(g1)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Runner.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	ResetCaches()

	full := persistReq(777003)
	full.CheckpointPath = ckpt
	full.CheckpointEvery = 1
	res, err := RunShared(full)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed {
		t.Fatal("run did not resume from the planted checkpoint")
	}
	if s.Has(store.Key{Workload: "cartpole", Population: 16, Generations: 2, Seed: 777003}) {
		t.Fatal("resumed run was committed to the store")
	}
}
