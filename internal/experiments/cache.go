package experiments

import (
	"sync"
	"sync/atomic"

	"repro/internal/evolve"
)

// This file is the harness's shared evolution store. The expensive
// artifacts of the pipeline — a single evolved run, a priced
// comparison, a multi-run study — are memoized behind singleflight
// maps, so one cmd/experiments invocation performs each unique
// evolution exactly once no matter how many figures ask for it or how
// many of them are running concurrently. This is the paper's
// genome-level-reuse observation applied to the simulation layer:
// identical work is computed once and shared.
//
// Sharing is sound because a finished run is immutable: every consumer
// reads Runner.History, Pop.Genomes, and the trace; none of them write
// (resilience re-scores champions through the non-mutating
// Runner.ScoreGenome). Byte-identical outputs follow from determinism:
// an evolution run is a pure function of its key, so handing a figure
// the cached run is indistinguishable from letting it re-evolve.

// runKey identifies one unique evolution run. seed is the effective
// run seed (base seed plus the run offset), so the key spaces of
// different base seeds or run indices never collide.
type runKey struct {
	workload    string
	population  int
	generations int
	seed        uint64
}

// runKeyFor derives the cache key runWorkload uses for one
// (workload, options, run) request.
func runKeyFor(workload string, opt Options, run int) runKey {
	return runKey{
		workload:    workload,
		population:  opt.popFor(workload),
		generations: opt.gensFor(workload),
		seed:        opt.Seed + uint64(run)*7919,
	}
}

// islandKey identifies one unique island-model run. Islands and
// migration period are part of identity: the same (workload, pop,
// gens, seed) evolved as 4 islands is a different computation than as
// 2 islands or as one panmictic population.
type islandKey struct {
	workload       string
	population     int
	generations    int
	islands        int
	migrationEvery int
	seed           uint64
}

// paretoKey identifies one unique Pareto-mode run. The objective
// vector (joined '+', identity order) is part of the key: the same
// (workload, pop, gens, seed) evolved under NSGA-II selection is a
// different computation than the scalar run, and a different vector
// order is a different run.
type paretoKey struct {
	workload    string
	population  int
	generations int
	seed        uint64
	objectives  string
}

// studyKey identifies one unique multi-run study. seed is the study
// base seed; per-run seeds derive from it via evolve.RunSeed, a
// different stream from single-run seeds, so studies and single runs
// never share entries.
type studyKey struct {
	workload    string
	population  int
	generations int
	runs        int
	seed        uint64
}

// flight is one in-progress or completed computation.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// flightMap memoizes computations with singleflight semantics: the
// first requester of a key computes, concurrent requesters of the same
// key block on that computation, later requesters get the cached
// value. A failed computation is evicted before its waiters are
// released, so a transient error (a cancelled context) does not poison
// the key forever — but its waiters share the error rather than piling
// on retries.
type flightMap[K comparable, V any] struct {
	mu       sync.Mutex
	m        map[K]*flight[V]
	computes atomic.Int64
}

// peek returns the memoized value for key only when its computation
// already completed successfully — never blocking and never computing.
// The coordinator's dispatch path uses this to answer a job from local
// memory before consulting the fleet.
func (fm *flightMap[K, V]) peek(key K) (V, bool) {
	var zero V
	fm.mu.Lock()
	f, ok := fm.m[key]
	fm.mu.Unlock()
	if !ok {
		return zero, false
	}
	select {
	case <-f.done:
		if f.err != nil {
			return zero, false
		}
		return f.val, true
	default:
		return zero, false
	}
}

// get returns the memoized value for key, computing it via compute if
// this is the key's first request.
func (fm *flightMap[K, V]) get(key K, compute func() (V, error)) (V, error) {
	fm.mu.Lock()
	if fm.m == nil {
		fm.m = map[K]*flight[V]{}
	}
	if f, ok := fm.m[key]; ok {
		fm.mu.Unlock()
		<-f.done
		return f.val, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	fm.m[key] = f
	fm.mu.Unlock()

	fm.computes.Add(1)
	f.val, f.err = compute()
	if f.err != nil {
		fm.mu.Lock()
		delete(fm.m, key)
		fm.mu.Unlock()
	}
	close(f.done)
	return f.val, f.err
}

// reset drops every entry and zeroes the compute counter.
func (fm *flightMap[K, V]) reset() {
	fm.mu.Lock()
	fm.m = nil
	fm.mu.Unlock()
	fm.computes.Store(0)
}

// The three stores, in dependency order: comparisons consume runs,
// figures consume all three.
var (
	runCache    flightMap[runKey, *evolved]
	studyCache  flightMap[studyKey, *evolve.Study]
	priceCache  flightMap[runKey, *comparison]
	islandCache flightMap[islandKey, *evolve.IslandRun]
	paretoCache flightMap[paretoKey, *evolve.ParetoRun]
)

// evolutionsRun counts actual evolution executions — bumped only when
// a runner really runs, not when a cache miss is served from the
// persistent store. runCache.computes keeps counting compute-closure
// invocations (the singleflight accounting its tests pin); this
// counter is the "did we pay for an evolution" ledger the durability
// proof asserts stays flat across a disk replay.
var evolutionsRun atomic.Int64

// ResetCaches drops every memoized run, study, and comparison. A CLI
// invocation never needs this; it exists for benchmarks and tests that
// measure or compare cold-cache behavior within one process.
func ResetCaches() {
	runCache.reset()
	studyCache.reset()
	priceCache.reset()
	islandCache.reset()
	paretoCache.reset()
	evolutionsRun.Store(0)
}

// evolutionsExecuted reports how many evolution computations ran since
// the last reset: single runs plus studies (a study internally
// executes its configured number of runs, but enters the pipeline as
// one computation). Runs replayed from the persistent store are not
// executions and do not count.
func evolutionsExecuted() int64 {
	return evolutionsRun.Load() + studyCache.computes.Load()
}
