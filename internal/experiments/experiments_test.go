package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quickOpt keeps experiment tests fast; the bench harness runs larger
// settings.
func quickOpt() Options {
	return Options{
		Seed:           7,
		Runs:           1,
		MaxGenerations: 6,
		Population:     30,
		RAMPopulation:  12,
		RAMGenerations: 2,
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig10ab", "fig10c", "fig10d", "fig11a", "fig11b", "fig11c",
		"fig2", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b",
		"fig8a", "fig8b", "fig8c", "fig9a", "fig9b", "fig9c", "fig9d",
		"footnote1", "pareto", "resilience", "table1", "table2", "table3",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry: %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", quickOpt()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableI(t *testing.T) {
	r, err := Run("table1", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables[0].Rows) != 10 {
		t.Fatalf("%d environments", len(r.Tables[0].Rows))
	}
	// Table I facts: cartpole 4 obs / alien-ram 128 obs & 18 actions.
	if r.Series["obs:cartpole"][0] != 4 || r.Series["obs:alien-ram"][0] != 128 {
		t.Fatalf("observation widths wrong: %v", r.Series)
	}
	if r.Series["act:alien-ram"][0] != 18 {
		t.Fatal("alien action count wrong")
	}
}

func TestFig2CurvesImprove(t *testing.T) {
	r, err := Run("fig2", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	maxes := r.Series["max"]
	if len(maxes) == 0 {
		t.Fatal("no fitness series")
	}
	if maxes[len(maxes)-1] <= maxes[0] && len(maxes) > 2 {
		t.Fatalf("no improvement on mario: %v", maxes)
	}
	avgs := r.Series["avg"]
	for i := range maxes {
		if avgs[i] > maxes[i]+1e-9 {
			t.Fatalf("avg above max at gen %d", i)
		}
	}
}

func TestFig4bGeneScaleClasses(t *testing.T) {
	r, err := Run("fig4b", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	// Per-genome gene counts: RAM workloads orders of magnitude above
	// control workloads (the two classes of Fig. 4b).
	control := r.Series["cartpole:genesPerGenome"][0]
	ram := r.Series["alien-ram:genesPerGenome"][0]
	if ram < 50*control {
		t.Fatalf("RAM/control genes-per-genome ratio only %.1f", ram/control)
	}
	if ram < 2000 {
		t.Fatalf("alien genes/genome = %v, expected >2000", ram)
	}
}

func TestFig4cReuseExists(t *testing.T) {
	r, err := Run("fig4c", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for k, v := range r.Series {
		if strings.HasSuffix(k, ":maxReuse") && len(v) > 0 && v[0] > 1 {
			any = true
		}
	}
	if !any {
		t.Fatal("no parent reuse observed anywhere")
	}
}

func TestFig5aOpScales(t *testing.T) {
	r, err := Run("fig5a", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	control := r.Series["cartpole:medianOps"][0]
	ram := r.Series["alien-ram:medianOps"][0]
	if control <= 0 || ram <= 0 {
		t.Fatal("missing op medians")
	}
	// Two classes: RAM ops orders of magnitude above control ops.
	if ram < 20*control {
		t.Fatalf("RAM/control op ratio only %.1f", ram/control)
	}
}

func TestFig5bUnder1MB(t *testing.T) {
	r, err := Run("fig5b", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range r.Series {
		if strings.HasSuffix(k, ":maxFootprint") {
			// The paper's bound at pop=150: every workload under ~4 MB
			// (control well under 1 MB).
			if v[0] > 6<<20 {
				t.Fatalf("%s footprint %v B", k, v[0])
			}
		}
	}
	if r.Series["cartpole:maxFootprint"][0] >= 1<<20 {
		t.Fatal("cartpole footprint above 1 MB")
	}
}

func TestFig8Static(t *testing.T) {
	a, err := Run("fig8a", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if a.Series["power"][0] < 900 || a.Series["power"][0] > 1000 {
		t.Fatalf("power %v", a.Series["power"][0])
	}
	b, err := Run("fig8b", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	net := b.Series["net"]
	for i := 1; i < len(net); i++ {
		if net[i] <= net[i-1] {
			t.Fatal("power sweep not monotonic")
		}
	}
	c, err := Run("fig8c", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	tot := c.Series["total"]
	if tot[len(tot)-1] <= tot[0] {
		t.Fatal("area sweep not monotonic")
	}
}

func TestFig9Shapes(t *testing.T) {
	opt := quickOpt()
	a, err := Run("fig9a", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"cartpole", "alien-ram"} {
		sp := a.Series[wl+":speedupVsBestGPU"]
		if len(sp) == 0 || sp[0] < 3 {
			t.Fatalf("%s: GeneSys speedup vs best GPU %v (want ≥3, paper ~100)", wl, sp)
		}
	}
	d, err := Run("fig9d", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"cartpole", "alien-ram"} {
		eff := d.Series[wl+":evolutionEfficiency"]
		if len(eff) == 0 || eff[0] < 1e3 {
			t.Fatalf("%s: evolution efficiency only %v (paper: 10^4-10^5)", wl, eff)
		}
	}
	b, err := Run("fig9b", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"cartpole"} {
		eff := b.Series[wl+":efficiencyVsBest"]
		if len(eff) == 0 || eff[0] < 10 {
			t.Fatalf("%s: inference energy efficiency %v (paper ~100×)", wl, eff)
		}
	}
	if _, err := Run("fig9c", opt); err != nil {
		t.Fatal(err)
	}
}

func TestFig10Shapes(t *testing.T) {
	opt := quickOpt()
	ab, err := Run("fig10ab", opt)
	if err != nil {
		t.Fatal(err)
	}
	// GPU_a memcpy-bound; GPU_b less so on RAM workloads.
	fa := ab.Series["GPU_a:cartpole:memcpyFrac"][0]
	if fa < 0.4 {
		t.Fatalf("GPU_a memcpy fraction %v", fa)
	}
	fbRAM := ab.Series["GPU_b:alien-ram:memcpyFrac"][0]
	if fbRAM > fa {
		t.Fatalf("GPU_b RAM memcpy fraction %v above GPU_a %v", fbRAM, fa)
	}
	c10, err := Run("fig10c", opt)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range c10.Series {
		if v[0] <= 0 || v[0] >= 0.9 {
			t.Fatalf("%s movement fraction %v", k, v[0])
		}
	}
	d10, err := Run("fig10d", opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, wl := range []string{"mountaincar", "amidar-ram"} {
		if d10.Series[wl+":gpuB/genesys"][0] < 3 {
			t.Fatalf("%s: GPU_b/GeneSys footprint ratio %v", wl,
				d10.Series[wl+":gpuB/genesys"][0])
		}
		if d10.Series[wl+":genesys/gpuA"][0] < 3 {
			t.Fatalf("%s: GeneSys/GPU_a footprint ratio %v", wl,
				d10.Series[wl+":genesys/gpuA"][0])
		}
	}
}

func TestFig11Shapes(t *testing.T) {
	opt := quickOpt()
	b, err := Run("fig11b", opt)
	if err != nil {
		t.Fatal(err)
	}
	red := b.Series["reduction"]
	if len(red) == 0 {
		t.Fatal("no reduction series")
	}
	// Reduction grows with PE count and exceeds ~10× at the top end
	// (paper: >100× at pop=150; reuse scales with population size).
	if red[len(red)-1] <= red[0] {
		t.Fatalf("multicast reduction not growing: %v", red)
	}
	c, err := Run("fig11c", opt)
	if err != nil {
		t.Fatal(err)
	}
	cyc := c.Series["eveCycles"]
	if cyc[0] <= cyc[len(cyc)-1]*2 {
		t.Fatalf("EvE cycles not falling with PEs: %v", cyc)
	}
	uj := c.Series["sramUJ"]
	if uj[0] <= uj[len(uj)-1] {
		t.Fatalf("SRAM energy not falling with PEs: %v", uj)
	}
}

func TestTableIIRatios(t *testing.T) {
	r, err := Run("table2", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if r.Series["computeRatio"][0] < 5 {
		t.Fatalf("DQN/EA compute ratio %v", r.Series["computeRatio"][0])
	}
	if r.Series["memoryRatio"][0] < 10 {
		t.Fatalf("DQN/EA memory ratio %v", r.Series["memoryRatio"][0])
	}
}

func TestFitnessFiguresIncludeCharts(t *testing.T) {
	r, err := Run("fig2", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "gen ") {
		t.Fatalf("fig2 output missing the ASCII chart:\n%s", out)
	}
}

func TestRenderAll(t *testing.T) {
	// Everything renders without error and produces non-trivial text.
	opt := quickOpt()
	for _, id := range []string{"table1", "table3", "fig8a", "fig8b", "fig8c"} {
		r, err := Run(id, opt)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		var buf bytes.Buffer
		if err := r.Render(&buf); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if buf.Len() < 50 {
			t.Fatalf("%s rendered only %d bytes", id, buf.Len())
		}
		if !strings.Contains(buf.String(), r.ID) {
			t.Fatalf("%s: header missing", id)
		}
	}
}
