package experiments

import (
	"fmt"

	"repro/internal/env"
	"repro/internal/evolve"
	"repro/internal/hw/hwsim"
	"repro/internal/neat"
	"repro/internal/stats"
)

func init() {
	register("table1", TableI)
	register("fig2", Fig2)
	register("fig4a", Fig4a)
	register("fig4b", Fig4b)
	register("fig4c", Fig4c)
	register("fig5a", Fig5a)
	register("fig5b", Fig5b)
	register("fig11a", Fig11a)
}

// TableI regenerates Table I: the environment suite with observation
// and action spaces.
func TableI(opt Options) (*Result, error) {
	r := &Result{ID: "table1", Title: "OpenAI-gym-equivalent environments"}
	t := Table{Header: []string{"Environment", "Observation", "Action", "MaxSteps"}}
	for _, name := range env.Names() {
		e, err := env.New(name)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			name, inum(e.ObservationSize()), inum(e.ActionSize()), inum(e.MaxSteps()),
		})
		r.series("obs:"+name, float64(e.ObservationSize()))
		r.series("act:"+name, float64(e.ActionSize()))
	}
	t.Notes = append(t.Notes,
		"RAM titles are synthetic 128-byte machines (see DESIGN.md substitutions)")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig2 regenerates the motivating figure: max and average normalized
// fitness per generation against the target, on the Mario surrogate.
func Fig2(opt Options) (*Result, error) {
	r := &Result{ID: "fig2", Title: "Neuro-evolution in action (Mario surrogate)"}
	e, err := runWorkload("mario", opt, 0)
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:  "normalized fitness vs generation (target = 1.0)",
		Header: []string{"gen", "max", "average"},
	}
	for _, st := range e.runner.History {
		t.Rows = append(t.Rows, []string{
			inum(st.Generation), fnum(st.NormMax), fnum(st.NormMean),
		})
		r.series("max", st.NormMax)
		r.series("avg", st.NormMean)
	}
	t.Raw = stats.Chart(r.Series["max"], 60, 10)
	if e.solved {
		t.Notes = append(t.Notes, fmt.Sprintf("target fitness reached at generation %d",
			len(e.runner.History)-1))
	}
	r.Tables = append(r.Tables, t)
	return r, nil
}

// fig4Suite is the workload set plotted in Fig. 4.
func fig4Suite() []string {
	return []string{"cartpole", "lunarlander", "mountaincar", "asterix-ram"}
}

// studyFor returns the workload's multi-run characterization study,
// computing it on first request and serving identical later requests
// from the shared study cache (Fig. 4a, 5a, and 5b previously each
// re-ran the same control studies). Study runs themselves fan out
// under the harness parallelism cap.
func studyFor(wl string, opt Options) (*evolve.Study, error) {
	key := studyKey{
		workload:    wl,
		population:  opt.popFor(wl),
		generations: opt.gensFor(wl),
		runs:        opt.Runs,
		seed:        opt.Seed,
	}
	return studyCache.get(key, func() (*evolve.Study, error) {
		cfg := neat.DefaultConfig(1, 1)
		cfg.PopulationSize = opt.popFor(wl)
		return evolve.RunStudyContext(opt.ctx(), wl, cfg, opt.Runs, opt.gensFor(wl), opt.Seed,
			evolve.StudyOptions{Parallelism: opt.workers()})
	})
}

// studyRecords returns the per-generation record stream of the
// workload's study, synthesized from the cached study's histories in
// (run, generation) order — the same multiset a live sink would have
// captured, in the order hwsim.Log.Records sorts every stream into, so
// downstream readers see identical records either way.
func studyRecords(wl string, opt Options) (*hwsim.Log, error) {
	st, err := studyFor(wl, opt)
	if err != nil {
		return nil, err
	}
	log := &hwsim.Log{}
	for _, res := range st.Results {
		sink := hwsim.Tagged{Sink: log, Workload: wl, Run: res.Run}
		for _, g := range res.History {
			sink.Record(hwsim.Record{Generation: g.Generation, Report: g.CounterReport()})
		}
	}
	return log, nil
}

// Fig4a regenerates the normalized-fitness evolution curves from
// parallel multi-run studies (the paper ran 100 runs per application).
func Fig4a(opt Options) (*Result, error) {
	r := &Result{ID: "fig4a", Title: "Normalized fitness vs generation"}
	if err := warmStudies(fig4Suite(), opt); err != nil {
		return nil, err
	}
	for _, wl := range fig4Suite() {
		st, err := studyFor(wl, opt)
		if err != nil {
			return nil, err
		}
		t := Table{Title: wl, Header: []string{"gen", "norm-max", "norm-mean", "solved"}}
		first := st.Results[0]
		for _, g := range first.History {
			t.Rows = append(t.Rows, []string{
				inum(g.Generation), fnum(g.NormMax), fnum(g.NormMean),
				fmt.Sprintf("%v", g.Solved),
			})
			r.series(wl+":max", g.NormMax)
		}
		for _, res := range st.Results {
			r.series(wl+":final", res.History[len(res.History)-1].NormMax)
			r.series(wl+":generations", float64(len(res.History)))
		}
		t.Raw = stats.Chart(st.MeanNormMaxByGeneration(), 60, 8)
		if sum := st.GenerationsToSolve(); sum.N > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"solved %d/%d runs; generations-to-solve %s (the Fig. 4a run-to-run variance)",
				sum.N, len(st.Results), sum))
		}
		r.Tables = append(r.Tables, t)
	}
	return r, nil
}

// Fig4b regenerates the total-gene growth curves: the control suite in
// the thousands, the RAM suite in the hundred-thousands (scaled by the
// configured population).
func Fig4b(opt Options) (*Result, error) {
	r := &Result{ID: "fig4b", Title: "Population gene totals vs generation"}
	suite := append(evolve.ControlSuite(), "airraid-ram", "alien-ram", "asterix-ram")
	if err := warmRuns(suite, opt); err != nil {
		return nil, err
	}
	t := Table{Header: []string{"workload", "gen0", "mid", "final", "genes/genome", "pop"}}
	for _, wl := range suite {
		e, err := runWorkload(wl, opt, 0)
		if err != nil {
			return nil, err
		}
		h := e.runner.History
		first, mid, last := h[0].TotalGenes, h[len(h)/2].TotalGenes, h[len(h)-1].TotalGenes
		pop := opt.popFor(wl)
		t.Rows = append(t.Rows, []string{
			wl, inum(first), inum(mid), inum(last),
			inum(last / pop), inum(pop),
		})
		r.series(wl+":genes", float64(first), float64(mid), float64(last))
		r.series(wl+":genesPerGenome", float64(last)/float64(pop))
	}
	t.Notes = append(t.Notes,
		"paper (pop=150): control suite ~10^3 total genes, RAM suite ~10^5;",
		"per-genome gene counts are population-independent — multiply by 150 to compare")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig4c regenerates the fittest-parent-reuse curves.
func Fig4c(opt Options) (*Result, error) {
	r := &Result{ID: "fig4c", Title: "Fittest parent reuse vs generation"}
	suite := []string{"acrobot", "cartpole", "lunarlander", "mountaincar",
		"airraid-ram", "alien-ram"}
	if err := warmRuns(suite, opt); err != nil {
		return nil, err
	}
	t := Table{Header: []string{"workload", "mean-reuse", "max-reuse", "reuse/pop"}}
	for _, wl := range suite {
		e, err := runWorkload(wl, opt, 0)
		if err != nil {
			return nil, err
		}
		var reuse []float64
		maxReuse := 0.0
		for _, st := range e.runner.History {
			if st.Solved {
				continue
			}
			reuse = append(reuse, float64(st.FittestParentReuse))
			if m := float64(st.MaxParentReuse); m > maxReuse {
				maxReuse = m
			}
			r.series(wl+":reuse", float64(st.FittestParentReuse))
		}
		s := stats.Summarize(reuse)
		pop := float64(opt.popFor(wl))
		t.Rows = append(t.Rows, []string{
			wl, fnum(s.Mean), fnum(maxReuse), fnum(maxReuse / pop),
		})
		r.series(wl+":maxReuse", maxReuse)
	}
	t.Notes = append(t.Notes,
		"paper (pop=150): fittest parent reused ~20×/generation, up to 80 of 150 children")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig5a regenerates the reproduction-op distributions: thousands of
// gene ops per generation for the control suite, hundred-thousand scale
// for the RAM suite at paper population.
func Fig5a(opt Options) (*Result, error) {
	r := &Result{ID: "fig5a", Title: "Crossover+mutation ops per generation (distribution)"}
	suite := append(evolve.ControlSuite(), "alien-ram")
	if err := warmStudies(suite, opt); err != nil {
		return nil, err
	}
	for _, wl := range suite {
		log, err := studyRecords(wl, opt)
		if err != nil {
			return nil, err
		}
		h := stats.NewLogHistogram(2)
		// Pool the reproduction-op counts across every recorded
		// generation of every run; solved generations record no
		// reproduction, as in Study.OpsPerGeneration.
		var all []float64
		for _, rec := range log.Records() {
			if rec.Report.Int("solved") != 0 {
				continue
			}
			all = append(all, float64(rec.Report.Int("crossover_ops")+rec.Report.Int("mutation_ops")))
		}
		for _, v := range all {
			h.Add(v)
		}
		s := stats.Summarize(all)
		t := Table{
			Title:  wl,
			Header: []string{"bucket-lo", "bucket-hi", "freq%"},
			Notes:  []string{s.String()},
		}
		for _, b := range h.Buckets() {
			t.Rows = append(t.Rows, []string{fnum(b.Lo), fnum(b.Hi), fnum(b.Frac * 100)})
		}
		r.series(wl+":medianOps", s.Median)
		r.Tables = append(r.Tables, t)
	}
	return r, nil
}

// Fig5b regenerates the per-generation memory-footprint distributions
// (<1 MB at paper scale).
func Fig5b(opt Options) (*Result, error) {
	r := &Result{ID: "fig5b", Title: "Memory footprint per generation (distribution)"}
	paperPop := 150.0
	suite := append(evolve.ControlSuite(), "amidar-ram")
	if err := warmStudies(suite, opt); err != nil {
		return nil, err
	}
	for _, wl := range suite {
		log, err := studyRecords(wl, opt)
		if err != nil {
			return nil, err
		}
		scale := paperPop / float64(opt.popFor(wl))
		var all []float64
		for _, v := range log.Series("footprint_bytes") {
			all = append(all, v*scale)
		}
		s := stats.Summarize(all)
		t := Table{
			Title:  wl + " (scaled to pop=150)",
			Header: []string{"min-KB", "median-KB", "max-KB", "<1MB"},
			Rows: [][]string{{
				fnum(s.Min / 1024), fnum(s.Median / 1024), fnum(s.Max / 1024),
				fmt.Sprintf("%v", s.Max < 1<<20),
			}},
		}
		r.series(wl+":maxFootprint", s.Max)
		r.Tables = append(r.Tables, t)
	}
	return r, nil
}

// Fig11a regenerates the gene-type composition per workload.
func Fig11a(opt Options) (*Result, error) {
	r := &Result{ID: "fig11a", Title: "Gene-type composition (connections vs nodes)"}
	t := Table{Header: []string{"workload", "node-genes", "conn-genes", "conn-share%"}}
	if err := warmRuns(evolve.PaperSuite(), opt); err != nil {
		return nil, err
	}
	for _, wl := range evolve.PaperSuite() {
		e, err := runWorkload(wl, opt, 0)
		if err != nil {
			return nil, err
		}
		last := e.runner.Last()
		share := 0.0
		if tot := last.NodeGenes + last.ConnGenes; tot > 0 {
			share = float64(last.ConnGenes) / float64(tot) * 100
		}
		t.Rows = append(t.Rows, []string{
			wl, inum(last.NodeGenes), inum(last.ConnGenes), fnum(share),
		})
		r.series(wl+":connShare", share)
	}
	t.Notes = append(t.Notes,
		"more connection genes → denser packed matrices → higher ADAM utilization")
	r.Tables = append(r.Tables, t)
	return r, nil
}
