package experiments

import (
	"fmt"

	"repro/internal/hw/energy"
	"repro/internal/hw/eve"
	"repro/internal/hw/hwsim"
	"repro/internal/hw/noc"
	"repro/internal/trace"
)

func init() {
	register("fig8a", Fig8a)
	register("fig8b", Fig8b)
	register("fig8c", Fig8c)
	register("fig11b", Fig11b)
	register("fig11c", Fig11c)
}

// peSweep is the PE-count axis of Fig. 8b/8c and Fig. 11.
var peSweep = []int{2, 4, 8, 16, 32, 64, 128, 256, 512}

// Fig8a regenerates the SoC parameter table.
func Fig8a(opt Options) (*Result, error) {
	cfg := energy.DefaultSoC()
	a := cfg.Area()
	p := cfg.RooflinePower()
	r := &Result{ID: "fig8a", Title: "GeneSys SoC parameters (15 nm, 200 MHz, 1.0 V)"}
	t := Table{
		Header: []string{"parameter", "value", "paper"},
		Rows: [][]string{
			{"Num EvE PE", inum(cfg.NumEvEPEs), "256"},
			{"Num ADAM PE", inum(cfg.MACs()), "1024"},
			{"EvE area (mm2)", fnum(a.EvE), "0.89"},
			{"ADAM area (mm2)", fnum(a.ADAM), "0.25"},
			{"GeneSys area (mm2)", fnum(a.Total), "2.45"},
			{"Power (mW)", fnum(p.Total), "947.5"},
			{"SRAM banks", inum(cfg.Tech.SRAMBanks), "48"},
			{"SRAM depth", inum(cfg.Tech.SRAMDepth), "4096"},
		},
	}
	r.series("area", a.Total)
	r.series("power", p.Total)
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig8b regenerates the roofline-power sweep over EvE PE count. Design
// points are independent, so they evaluate in parallel; rows and
// series are assembled from the index-ordered slots, byte-identical to
// the serial sweep.
func Fig8b(opt Options) (*Result, error) {
	r := &Result{ID: "fig8b", Title: "Roofline power vs EvE PE count"}
	t := Table{Header: []string{"PEs", "EvE-mW", "SRAM-mW", "ADAM-mW", "M0-mW", "net-mW"}}
	powers := make([]energy.PowerBreakdown, len(peSweep))
	if err := forIndexed(opt.workers(), len(peSweep), func(i int) error {
		cfg := energy.DefaultSoC()
		cfg.NumEvEPEs = peSweep[i]
		powers[i] = cfg.RooflinePower()
		return nil
	}); err != nil {
		return nil, err
	}
	for i, n := range peSweep {
		p := powers[i]
		t.Rows = append(t.Rows, []string{
			inum(n), fnum(p.EvE), fnum(p.SRAM), fnum(p.ADAM), fnum(p.CPU), fnum(p.Total),
		})
		r.series("net", p.Total)
	}
	t.Notes = append(t.Notes, "paper: 256 PEs stay comfortably under 1 W")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig8c regenerates the area sweep over EvE PE count (parallel design
// points, index-ordered rows, like Fig8b).
func Fig8c(opt Options) (*Result, error) {
	r := &Result{ID: "fig8c", Title: "Area footprint vs EvE PE count"}
	t := Table{Header: []string{"PEs", "EvE-mm2", "SRAM-mm2", "ADAM-mm2", "M0-mm2", "total-mm2"}}
	areas := make([]energy.AreaBreakdown, len(peSweep))
	if err := forIndexed(opt.workers(), len(peSweep), func(i int) error {
		cfg := energy.DefaultSoC()
		cfg.NumEvEPEs = peSweep[i]
		areas[i] = cfg.Area()
		return nil
	}); err != nil {
		return nil, err
	}
	for i, n := range peSweep {
		a := areas[i]
		t.Rows = append(t.Rows, []string{
			inum(n), fnum(a.EvE), fnum(a.SRAM), fnum(a.ADAM), fnum(a.CPU), fnum(a.Total),
		})
		r.series("total", a.Total)
	}
	r.Tables = append(r.Tables, t)
	return r, nil
}

// atariTraceGen produces a representative RAM-workload reproduction
// generation for the NoC/PE sweeps.
func atariTraceGen(opt Options) (*trace.Generation, error) {
	e, err := runWorkload("alien-ram", opt, 0)
	if err != nil {
		return nil, err
	}
	g := e.trace.Last()
	if g == nil {
		return nil, fmt.Errorf("experiments: alien-ram run produced no trace")
	}
	return g, nil
}

// Fig11b regenerates the SRAM-reads-per-cycle comparison: point-to-
// point buses vs the multicast tree, across PE counts, on an Atari
// trace.
func Fig11b(opt Options) (*Result, error) {
	g, err := atariTraceGen(opt)
	if err != nil {
		return nil, err
	}
	r := &Result{ID: "fig11b", Title: "SRAM reads: point-to-point vs multicast tree"}
	t := Table{Header: []string{"PEs", "p2p-reads", "mcast-reads", "p2p-rd/cyc", "mcast-rd/cyc", "reduction"}}
	var sweep []int
	for _, n := range peSweep {
		if n <= 256 { // the paper's Fig 11b sweeps 2..256
			sweep = append(sweep, n)
		}
	}
	// Each design point replays the same trace generation on two private
	// engines; RunGeneration only reads the trace, so the points fan out
	// across workers and land in index-ordered snapshot slots.
	type nocPoint struct{ p2p, mc hwsim.Report }
	points := make([]nocPoint, len(sweep))
	if err := forIndexed(opt.workers(), len(sweep), func(i int) error {
		n := sweep[i]
		// An unthrottled SRAM exposes the raw read-rate demand of each
		// topology (the paper's y-axis), rather than the bandwidth-
		// clamped service rate.
		p2pCfg := eve.DefaultConfig(n, noc.PointToPoint)
		p2pCfg.NoC.SRAMReadsPerCycle = 1 << 20
		mcCfg := eve.DefaultConfig(n, noc.MulticastTree)
		mcCfg.NoC.SRAMReadsPerCycle = 1 << 20
		p2pEng := eve.New(p2pCfg, nil)
		mcEng := eve.New(mcCfg, nil)
		p2pEng.RunGeneration(g)
		mcEng.RunGeneration(g)
		// Read the results off the engines' counter registries — the
		// uniform ledger every hardware block charges.
		points[i] = nocPoint{
			p2p: p2pEng.Counters().Snapshot(),
			mc:  mcEng.Counters().Snapshot(),
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for i, n := range sweep {
		p2p, mc := points[i].p2p, points[i].mc
		red := float64(p2p.Int("sram_reads")) / float64(mc.Int("sram_reads"))
		t.Rows = append(t.Rows, []string{
			inum(n), inum(p2p.Int("sram_reads")), inum(mc.Int("sram_reads")),
			fnum(p2p.Float("reads_per_cycle")), fnum(mc.Float("reads_per_cycle")), fnum(red),
		})
		r.series("p2pRate", p2p.Float("reads_per_cycle"))
		r.series("mcastRate", mc.Float("reads_per_cycle"))
		r.series("reduction", red)
	}
	t.Notes = append(t.Notes, "paper: >100× read reduction with multicast at high PE counts")
	r.Tables = append(r.Tables, t)
	return r, nil
}

// Fig11c regenerates the SRAM-energy and generation-runtime sweep over
// EvE PE count, with ADAM runtime for reference.
func Fig11c(opt Options) (*Result, error) {
	e, err := runWorkload("alien-ram", opt, 0)
	if err != nil {
		return nil, err
	}
	g := e.trace.Last()
	if g == nil {
		return nil, fmt.Errorf("experiments: no trace generation")
	}
	// ADAM single-sweep runtime for the same generation (constant
	// across the EvE sweep, as in the paper).
	jobs, err := inferenceJobs(e, 1)
	if err != nil {
		return nil, err
	}
	soCfg := energy.DefaultSoC()
	adamEng := newADAM(soCfg)
	adamEng.RunGeneration(jobs)
	adamCycles := adamEng.Counters().IntValue("pass_cycles")

	r := &Result{ID: "fig11c", Title: "SRAM energy & generation runtime vs EvE PE count"}
	t := Table{Header: []string{"PEs", "EvE-cycles", "ADAM-cycles", "SRAM-uJ"}}
	snaps := make([]hwsim.Report, len(peSweep))
	if err := forIndexed(opt.workers(), len(peSweep), func(i int) error {
		cfg := eve.DefaultConfig(peSweep[i], noc.MulticastTree)
		eng := eve.New(cfg, nil)
		eng.RunGeneration(g)
		snaps[i] = eng.Counters().Snapshot()
		return nil
	}); err != nil {
		return nil, err
	}
	for i, n := range peSweep {
		rep := snaps[i]
		t.Rows = append(t.Rows, []string{
			inum(n), inum(rep.Int("stream_cycles")), inum(adamCycles),
			fnum(rep.Float("sram_energy_pj") / 1e6),
		})
		r.series("eveCycles", float64(rep.Int("stream_cycles")))
		r.series("sramUJ", rep.Float("sram_energy_pj")/1e6)
	}
	r.series("adamCycles", float64(adamCycles))
	t.Notes = append(t.Notes,
		"paper: SRAM energy falls near-monotonically with PEs (multicast GLR);",
		"evolution is compute-bound at low PE counts, tapering at the population size")
	r.Tables = append(r.Tables, t)
	return r, nil
}
