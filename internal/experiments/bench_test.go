package experiments

import (
	"io"
	"testing"
)

// suiteOpt is the pinned fidelity of the BENCH_PR4 full-suite
// trajectory benchmark: single-run figures at bench population with a
// paper-leaning RAM budget, so the duplicated evolutions the run cache
// removes dominate the pre-change wall clock the way they do at paper
// scale. The BenchmarkExperimentSuite baseline in cmd/benchjson was
// measured with this exact fidelity on the pre-cache harness.
func suiteOpt() Options {
	return Options{
		Seed:           42,
		Runs:           1,
		MaxGenerations: 20,
		Population:     64,
		RAMPopulation:  96,
		RAMGenerations: 12,
	}
}

// BenchmarkExperimentSuite measures one full cmd/experiments
// invocation: every registered experiment regenerated through RunAll
// over a cold shared cache, rendered to a discarded writer. This is
// the harness-level number the PR's ≥2× acceptance criterion is judged
// on; the evolutions/studies metrics record that each unique evolution
// executed exactly once per iteration.
func BenchmarkExperimentSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ResetCaches()
		err := RunAll(IDs(), suiteOpt(), func(o Outcome) {
			if o.Err != nil {
				b.Fatalf("%s: %v", o.ID, o.Err)
			}
			if err := o.Res.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(runCache.computes.Load()), "evolutions")
	b.ReportMetric(float64(studyCache.computes.Load()), "studies")
	ResetCaches()
}

// BenchmarkExperimentSuiteSerial is the same suite pinned to -j 1: the
// cache still dedups, only the overlap is gone. The gap between this
// and BenchmarkExperimentSuite is the scheduling win; the gap to the
// pinned baseline is the dedup win.
func BenchmarkExperimentSuiteSerial(b *testing.B) {
	opt := suiteOpt()
	opt.Parallelism = 1
	for i := 0; i < b.N; i++ {
		ResetCaches()
		err := RunAll(IDs(), opt, func(o Outcome) {
			if o.Err != nil {
				b.Fatalf("%s: %v", o.ID, o.Err)
			}
			if err := o.Res.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	ResetCaches()
}
