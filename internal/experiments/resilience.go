package experiments

import (
	"fmt"
	"math"

	"repro/internal/gene"
	"repro/internal/hw/energy"
	"repro/internal/hw/fault"
	"repro/internal/hw/soc"
)

func init() {
	register("resilience", func(opt Options) (*Result, error) {
		return ResilienceFor("cartpole", opt)
	})
}

// resilienceRates is the per-event fault-rate sweep: from a healthy
// chip through always-on soft-error territory to a badly degraded
// part.
var resilienceRates = []float64{0, 1e-5, 1e-4, 1e-3, 1e-2}

// doubleBitFraction is the share of flipped words carrying a second
// flip (the SECDED-uncorrectable tail) used throughout the sweep.
const doubleBitFraction = 0.1

// ResilienceFor characterizes one workload's degradation under the
// fault model: the hardware cost of protection (cycles and energy of
// an ECC-protected chip vs. an unprotected one at each fault rate,
// with the reliability ledger alongside) and the software cost of
// *not* protecting (fitness of the evolved champion when its weights
// are corrupted at the silent-error rate each scheme lets through).
// Everything is seeded, so the same Options reproduce the same fault
// sites and the same table.
func ResilienceFor(workload string, opt Options) (*Result, error) {
	e, err := runWorkload(workload, opt, 0)
	if err != nil {
		return nil, err
	}
	jobs, err := inferenceJobs(e, 1)
	if err != nil {
		return nil, err
	}
	g := e.trace.Last()
	if g == nil {
		return nil, fmt.Errorf("resilience: %s produced no reproduction trace", workload)
	}
	footprint := e.runner.Pop.FootprintBytes()

	r := &Result{ID: "resilience", Title: "Degradation & protection overhead vs fault rate (" + workload + ")"}

	// Hardware sweep: the same generation replayed on chips that only
	// differ in fault environment and protection scheme.
	hw := Table{
		Title: "SoC overhead: unprotected vs SECDED (same generation, same seed)",
		Header: []string{"rate", "ecc", "cycles", "slowdown", "energy-uJ", "en-ovh",
			"silent", "corrected", "uncorr", "lost-flits", "dead-PEs"},
	}
	var baseCycles int64
	var baseEnergy float64
	for _, rate := range resilienceRates {
		for _, scheme := range []fault.ECC{fault.Unprotected, fault.SECDED} {
			if rate == 0 && scheme != fault.Unprotected {
				continue // a zero-rate chip builds no fault plan at all
			}
			soCfg := energy.DefaultSoC()
			soCfg.Fault = fault.Config{
				Seed:              opt.Seed,
				SRAMWordFlip:      rate,
				DoubleBitFraction: doubleBitFraction,
				ECC:               scheme,
				NoCFlitDrop:       rate,
				PEStuckAt:         rate,
			}
			chip := soc.New(soCfg)
			rep := chip.RunGeneration(jobs, g, footprint)
			snap := chip.Snapshot()
			// The legacy report charges SRAM at logical access counts;
			// the buffer's counter node also carries recovery accesses
			// and ECC code bits. Substitute it in for the true cost.
			energyPJ := rep.TotalEnergyPJ - rep.Evolution.SRAMEnergyPJ +
				snap.Float("sram/energy_pj")
			if rate == 0 {
				baseCycles = rep.TotalCycles
				baseEnergy = energyPJ
			}
			slowdown, enOvh := 1.0, 1.0
			if baseCycles > 0 {
				slowdown = float64(rep.TotalCycles) / float64(baseCycles)
			}
			if baseEnergy > 0 {
				enOvh = energyPJ / baseEnergy
			}
			hw.Rows = append(hw.Rows, []string{
				fnum(rate), scheme.String(),
				inum(rep.TotalCycles), fnum(slowdown),
				fnum(energyPJ / 1e6), fnum(enOvh),
				inum(snap.Int("fault/sram/silent_errors")),
				inum(snap.Int("fault/sram/corrected_words")),
				inum(snap.Int("fault/sram/uncorrectable_words")),
				inum(snap.Int("fault/noc/lost_flits")),
				inum(snap.Int("fault/eve/dead_pes")),
			})
			r.series(fmt.Sprintf("slowdown:%s", scheme), slowdown)
			r.series(fmt.Sprintf("energy_overhead:%s", scheme), enOvh)
			r.series(fmt.Sprintf("silent:%s", scheme),
				float64(snap.Int("fault/sram/silent_errors")))
		}
	}
	hw.Notes = append(hw.Notes,
		"slowdown/en-ovh are relative to the rate-0 chip; SECDED pays code bits and scrubs, unprotected pays nothing but accumulates silent errors")
	r.Tables = append(r.Tables, hw)

	// Software sweep: corrupt the evolved champion's weights at the
	// silent-error rate each scheme passes through, and re-score it.
	best := e.runner.Pop.Best()
	if best == nil {
		return r, nil
	}
	sw := Table{
		Title:  "Champion fitness under silent weight corruption",
		Header: []string{"rate", "scheme", "silent-rate", "flipped", "fitness", "retained"},
	}
	baseFit, err := e.runner.ScoreGenome(opt.ctx(), best)
	if err != nil {
		return nil, err
	}
	for _, rate := range resilienceRates {
		for _, scheme := range []fault.ECC{fault.Unprotected, fault.SECDED} {
			// Unprotected lets every flip through; SECDED only the
			// double-bit tail.
			silent := rate
			if scheme == fault.SECDED {
				silent = rate * doubleBitFraction
			}
			corrupted, flipped := corruptWeights(best, silent, opt.Seed)
			fit := baseFit
			if flipped > 0 {
				if fit, err = e.runner.ScoreGenome(opt.ctx(), corrupted); err != nil {
					return nil, err
				}
			}
			retained := 1.0
			if baseFit != 0 {
				retained = fit / baseFit
			}
			sw.Rows = append(sw.Rows, []string{
				fnum(rate), scheme.String(), fnum(silent), inum(flipped),
				fnum(fit), fnum(retained),
			})
			r.series(fmt.Sprintf("retained:%s", scheme), retained)
			if rate == 0 && scheme == fault.Unprotected {
				break // one baseline row is enough at rate 0
			}
		}
	}
	sw.Notes = append(sw.Notes,
		fmt.Sprintf("baseline fitness %s; corruption flips one seeded bit per struck weight (sign/exponent/mantissa alike)", fnum(baseFit)))
	r.Tables = append(r.Tables, sw)
	return r, nil
}

// corruptWeights flips one deterministic bit in each connection weight
// struck at the given per-weight rate (splitmix64 over seed and the
// gene index, the same construction the hardware injector uses). It
// returns a corrupted clone and the number of struck weights; rate 0
// returns the genome unharmed.
func corruptWeights(g *gene.Genome, rate float64, seed uint64) (*gene.Genome, int) {
	if rate <= 0 {
		return g, 0
	}
	c := g.Clone()
	flipped := 0
	for i := range c.Conns {
		u, bit := weightDraw(seed, uint64(i))
		if u >= rate {
			continue
		}
		c.Conns[i].Weight = math.Float64frombits(
			math.Float64bits(c.Conns[i].Weight) ^ (1 << bit))
		flipped++
	}
	return c, flipped
}

// weightDraw yields the strike decision and bit position for one
// weight: a splitmix64 finalizer, uniform in [0,1) plus a bit index.
func weightDraw(seed, i uint64) (float64, uint) {
	x := seed ^ 0xA3EC647659359ACD ^ i*0xD1B54A32D192ED03
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return float64(x>>11) / (1 << 53), uint(x & 63)
}
