package experiments

import (
	"context"
	"sync"
	"testing"
)

// TestRunCacheSingleflight pins the tentpole's core guarantee: many
// generators concurrently requesting the same (workload, population,
// generations, seed, run) key block on ONE evolution and share its
// result. Run under -race in scripts/check.sh.
func TestRunCacheSingleflight(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)
	opt := quickOpt().withDefaults()

	const callers = 8
	runs := make([]*evolved, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			e, err := runWorkload("cartpole", opt, 0)
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
				return
			}
			runs[i] = e
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i := 1; i < callers; i++ {
		if runs[i] != runs[0] {
			t.Fatalf("caller %d got a different run instance", i)
		}
	}
	if n := runCache.computes.Load(); n != 1 {
		t.Fatalf("%d evolutions for one unique key, want 1", n)
	}

	// A different key (other run index) is a separate evolution.
	if _, err := runWorkload("cartpole", opt, 1); err != nil {
		t.Fatal(err)
	}
	if n := runCache.computes.Load(); n != 2 {
		t.Fatalf("%d evolutions for two unique keys, want 2", n)
	}
}

// TestRunCacheErrorEvicted pins the retry path: a failed computation
// (here: a pre-cancelled context) must not poison its key.
func TestRunCacheErrorEvicted(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)
	opt := quickOpt().withDefaults()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	bad := opt
	bad.Ctx = ctx
	if _, err := runWorkload("mountaincar", bad, 0); err == nil {
		t.Fatal("cancelled run succeeded")
	}
	e, err := runWorkload("mountaincar", opt, 0)
	if err != nil {
		t.Fatalf("key poisoned by earlier failure: %v", err)
	}
	if e == nil || len(e.runner.History) == 0 {
		t.Fatal("retried run has no history")
	}
}

// TestStudyCacheShared pins that studyFor and studyRecords share one
// study computation per unique key.
func TestStudyCacheShared(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)
	opt := quickOpt().withDefaults()

	st, err := studyFor("cartpole", opt)
	if err != nil {
		t.Fatal(err)
	}
	log, err := studyRecords("cartpole", opt)
	if err != nil {
		t.Fatal(err)
	}
	if n := studyCache.computes.Load(); n != 1 {
		t.Fatalf("%d study computations, want 1", n)
	}
	// The synthesized record stream matches the study's histories.
	want := 0
	for _, res := range st.Results {
		want += len(res.History)
	}
	if log.Len() != want {
		t.Fatalf("synthesized log has %d records, study has %d generations", log.Len(), want)
	}
	for _, rec := range log.Records() {
		if rec.Workload != "cartpole" {
			t.Fatalf("record workload %q", rec.Workload)
		}
		if got := st.Results[rec.Run].History[rec.Generation].CounterReport(); got.Ints["total_genes"] != rec.Report.Ints["total_genes"] {
			t.Fatalf("run %d gen %d: synthesized record diverges", rec.Run, rec.Generation)
		}
	}
}
