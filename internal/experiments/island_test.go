package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"testing"

	"repro/internal/evolve"
	"repro/internal/store"
)

// islandReq is the tiny island run these tests resolve. The seed range
// (888xxx) is private to this file.
func islandReq(seed uint64) IslandRequest {
	return IslandRequest{
		Workload:       "cartpole",
		Population:     16,
		Generations:    4,
		Islands:        2,
		MigrationEvery: 2,
		Seed:           seed,
	}
}

func TestRunSharedIslandSingleflight(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)

	const callers = 4
	outs := make([]*IslandOutcome, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = RunSharedIsland(islandReq(888001))
		}(i)
	}
	wg.Wait()
	computed := 0
	for i := range outs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if outs[i].Computed {
			computed++
		}
		if outs[i].Run != outs[0].Run {
			t.Fatal("concurrent callers got different run objects")
		}
	}
	if computed != 1 {
		t.Fatalf("%d computations for one key, want exactly 1", computed)
	}
}

// TestIslandStoreRoundTrip: an island run committed to the store
// replays after a cache reset (the "restart") with no evolution
// executed and a byte-identical result.
func TestIslandStoreRoundTrip(t *testing.T) {
	withTestStore(t, store.Config{})
	ResetCaches()

	first, err := RunSharedIsland(islandReq(888002))
	if err != nil {
		t.Fatal(err)
	}
	if !first.Computed || first.Stored {
		t.Fatalf("first run: Computed=%v Stored=%v", first.Computed, first.Stored)
	}
	want, err := json.Marshal(first.Run)
	if err != nil {
		t.Fatal(err)
	}
	execs := EvolutionsExecuted()

	ResetCaches() // drop memory, keep disk: simulated restart
	second, err := RunSharedIsland(islandReq(888002))
	if err != nil {
		t.Fatal(err)
	}
	if second.Computed || !second.Stored {
		t.Fatalf("replay: Computed=%v Stored=%v", second.Computed, second.Stored)
	}
	got, err := json.Marshal(second.Run)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatal("stored island run is not byte-identical to the computed one")
	}
	// ResetCaches zeroed the counter; a disk replay must not execute.
	_ = execs
	if EvolutionsExecuted() != 0 {
		t.Fatalf("replay executed %d evolutions, want 0", EvolutionsExecuted())
	}
}

func TestPeekSharedIsland(t *testing.T) {
	withTestStore(t, store.Config{})
	ResetCaches()

	req := islandReq(888003)
	if _, _, ok := PeekSharedIsland(req.Workload, req.Population, req.Generations, req.Islands, req.MigrationEvery, req.Seed); ok {
		t.Fatal("peek hit before anything ran")
	}
	first, err := RunSharedIsland(req)
	if err != nil {
		t.Fatal(err)
	}
	run, stored, ok := PeekSharedIsland(req.Workload, req.Population, req.Generations, req.Islands, req.MigrationEvery, req.Seed)
	if !ok || stored || run != first.Run {
		t.Fatalf("memory peek: ok=%v stored=%v same=%v", ok, stored, run == first.Run)
	}

	ResetCaches()
	run, stored, ok = PeekSharedIsland(req.Workload, req.Population, req.Generations, req.Islands, req.MigrationEvery, req.Seed)
	if !ok || !stored {
		t.Fatalf("disk peek: ok=%v stored=%v", ok, stored)
	}
	if run.Seed != req.Seed || run.Islands != req.Islands {
		t.Fatalf("disk peek returned the wrong run: %+v", run)
	}
	if EvolutionsExecuted() != 0 {
		t.Fatal("peek executed an evolution")
	}
}

// TestRunSharedIslandCustomRun: the pluggable Run closure (the
// coordinator's distributed executor seam) is used on a cold miss and
// its result is what lands in cache and store.
func TestRunSharedIslandCustomRun(t *testing.T) {
	withTestStore(t, store.Config{})
	ResetCaches()

	req := islandReq(888004)
	calls := 0
	req.Run = func(ctx context.Context) (*evolve.IslandRun, error) {
		calls++
		return evolve.RunIslands(ctx, evolve.IslandSpec{
			Workload:       req.Workload,
			Population:     req.Population,
			Generations:    req.Generations,
			Islands:        req.Islands,
			MigrationEvery: req.MigrationEvery,
			Seed:           req.Seed,
		})
	}
	out, err := RunSharedIsland(req)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || !out.Computed {
		t.Fatalf("custom Run called %d times, Computed=%v", calls, out.Computed)
	}
	// Second request: served from memory, closure untouched.
	again, err := RunSharedIsland(req)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || again.Computed || again.Run != out.Run {
		t.Fatalf("cache hit recomputed: calls=%d Computed=%v", calls, again.Computed)
	}
}

func TestRunSharedIslandErrorNotCached(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)

	req := islandReq(888005)
	boom := errors.New("worker died")
	req.Run = func(ctx context.Context) (*evolve.IslandRun, error) { return nil, boom }
	if _, err := RunSharedIsland(req); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// The failure must not poison the key: a retry without the failing
	// closure computes locally and succeeds.
	req.Run = nil
	out, err := RunSharedIsland(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Computed {
		t.Fatal("retry after failure did not compute")
	}
}

func TestRunSharedIslandValidates(t *testing.T) {
	req := islandReq(888006)
	req.Islands = 3 // population 16 not divisible
	if _, err := RunSharedIsland(req); err == nil {
		t.Fatal("invalid island spec accepted")
	}
}
