package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Outcome is one experiment's result as delivered by RunAll.
type Outcome struct {
	ID  string
	Res *Result
	Err error
}

// RunAll regenerates the named experiments with at most opt.workers()
// generators in flight and delivers every outcome to emit in the order
// the ids were given — the same results, in the same order, a serial
// loop over Run would produce, regardless of which generator finishes
// first. emit runs on RunAll's own goroutine, so rendering from it is
// interleaving-free. Unknown ids fail fast before anything runs, so a
// typo cannot waste an hour of evolution; generator errors are
// collected per id (joined in id order in the returned error) without
// stopping the other experiments.
func RunAll(ids []string, opt Options, emit func(Outcome)) error {
	opt = opt.withDefaults()
	for _, id := range ids {
		if _, ok := registry[id]; !ok {
			return fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
		}
	}
	ctx := opt.ctx()
	sem := make(chan struct{}, opt.workers())
	outcomes := make([]chan Outcome, len(ids))
	for i := range ids {
		outcomes[i] = make(chan Outcome, 1)
		go func(i int, id string) {
			sem <- struct{}{}
			defer func() { <-sem }()
			o := Outcome{ID: id}
			defer func() {
				if p := recover(); p != nil {
					o.Res, o.Err = nil, fmt.Errorf("generator panic: %v", p)
				}
				outcomes[i] <- o
			}()
			if err := ctx.Err(); err != nil {
				o.Err = err
				return
			}
			o.Res, o.Err = Run(id, opt)
		}(i, ids[i])
	}
	var errs []error
	for i, id := range ids {
		o := <-outcomes[i]
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", id, o.Err))
		}
		if emit != nil {
			emit(o)
		}
	}
	return errors.Join(errs...)
}

// forIndexed runs f(i) for every i in [0, n) with at most workers
// concurrent calls, returning the lowest-index error. It is the
// fan-out primitive of the design-point sweeps and the warm-up
// prefetches: callers write results into index-addressed slots and
// assemble them serially afterwards, so a parallel sweep emits rows in
// exactly the order the serial loop did. workers ≤ 1 degenerates to a
// plain loop with no goroutines.
func forIndexed(workers, n int, f func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if p := recover(); p != nil {
					errs[i] = fmt.Errorf("sweep point %d: panic: %v", i, p)
				}
			}()
			errs[i] = f(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// workers resolves the effective harness parallelism.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.NumCPU()
}

// warmRuns prefetches run 0 of each workload into the run cache, up to
// opt.workers() evolutions at a time. Figures that loop over a suite
// call it first: the loop body then assembles rows from cache hits, so
// row order stays serial while the evolutions overlap.
func warmRuns(workloads []string, opt Options) error {
	return forIndexed(opt.workers(), len(workloads), func(i int) error {
		_, err := runWorkload(workloads[i], opt, 0)
		return err
	})
}

// warmComparisons prefetches priced comparisons the same way.
func warmComparisons(workloads []string, opt Options) error {
	return forIndexed(opt.workers(), len(workloads), func(i int) error {
		_, err := runComparison(workloads[i], opt)
		return err
	})
}

// warmStudies prefetches multi-run studies the same way.
func warmStudies(workloads []string, opt Options) error {
	return forIndexed(opt.workers(), len(workloads), func(i int) error {
		_, err := studyFor(workloads[i], opt)
		return err
	})
}
