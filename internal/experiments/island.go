package experiments

import (
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/evolve"
	"repro/internal/hw/hwsim"
	"repro/internal/store"
)

// This file threads the island-model run type through the same two
// cache tiers ordinary runs use: a singleflight memory cache keyed on
// the full island tuple, backed by the persistent store (one
// islands.json artifact per key). The computation itself is
// pluggable — the single-process reference by default, the
// coordinator's distributed executor in cluster mode — because both
// produce byte-identical IslandRuns, so what lands in the cache and
// the store is independent of where the islands evolved.

// islandSchema stamps islands.json artifacts.
const islandSchema = "genesys-island/1"

const islandsFile = "islands.json"

// islandDoc is the islands.json payload.
type islandDoc struct {
	Schema string            `json:"schema"`
	Run    *evolve.IslandRun `json:"run"`
}

// IslandRequest describes one island-model run to resolve through the
// shared cache. The tuple (Workload, Population, Generations, Islands,
// MigrationEvery, Seed) is the identity; the rest shapes execution.
type IslandRequest struct {
	Workload       string
	Population     int
	Generations    int
	Islands        int
	MigrationEvery int
	Seed           uint64

	// Ctx cancels a cache-miss computation; nil means Background.
	Ctx context.Context
	// Parallelism / BatchWidth shape each island runner's evaluation
	// (single-process path only; a distributed Run ships its own).
	Parallelism int
	BatchWidth  int
	// Phases, when set, receives the island runners' live per-phase
	// wall-clock counters on a single-process cache-miss computation
	// (metrics only, never stored).
	Phases *hwsim.Counters
	// Run, when set, executes the cache-miss computation — the
	// coordinator passes the distributed fleet executor here. Nil runs
	// the single-process reference (evolve.RunIslands). Either way the
	// result must be the deterministic IslandRun of the tuple.
	Run func(ctx context.Context) (*evolve.IslandRun, error)
}

// IslandOutcome is the result of a shared island request.
type IslandOutcome struct {
	Run *evolve.IslandRun
	// Computed is true only for the request whose computation executed.
	Computed bool
	// Stored reports the cache miss was served from the persistent
	// store (no computation ran).
	Stored bool
}

func (req IslandRequest) key() islandKey {
	return islandKey{
		workload:       req.Workload,
		population:     req.Population,
		generations:    req.Generations,
		islands:        req.Islands,
		migrationEvery: req.MigrationEvery,
		seed:           req.Seed,
	}
}

func islandStoreKeyFor(k islandKey) store.Key {
	return store.Key{
		Workload:       k.workload,
		Population:     k.population,
		Generations:    k.generations,
		Seed:           k.seed,
		Islands:        k.islands,
		MigrationEvery: k.migrationEvery,
	}
}

// RunSharedIsland resolves one island-model run through the package's
// singleflight cache and the persistent store, computing on a cold
// miss via req.Run (or the single-process reference when unset).
func RunSharedIsland(req IslandRequest) (*IslandOutcome, error) {
	spec := evolve.IslandSpec{
		Workload:       req.Workload,
		Population:     req.Population,
		Generations:    req.Generations,
		Islands:        req.Islands,
		MigrationEvery: req.MigrationEvery,
		Seed:           req.Seed,
		Parallelism:    req.Parallelism,
		BatchWidth:     req.BatchWidth,
		Phases:         req.Phases,
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	out := &IslandOutcome{}
	key := req.key()
	run, err := islandCache.get(key, func() (*evolve.IslandRun, error) {
		if stored, ok := loadStoredIsland(key); ok {
			out.Stored = true
			return stored, nil
		}
		out.Computed = true
		ctx := req.Ctx
		if ctx == nil {
			ctx = context.Background()
		}
		evolutionsRun.Add(1)
		var r *evolve.IslandRun
		var cerr error
		if req.Run != nil {
			r, cerr = req.Run(ctx)
		} else {
			r, cerr = evolve.RunIslands(ctx, spec)
		}
		if cerr != nil {
			return nil, cerr
		}
		commitStoredIsland(key, r)
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	out.Run = run
	return out, nil
}

// loadStoredIsland rehydrates an island run from the disk tier.
func loadStoredIsland(k islandKey) (*evolve.IslandRun, bool) {
	s := activeStore.Load()
	if s == nil {
		return nil, false
	}
	key := islandStoreKeyFor(k)
	art, ok := s.Get(key)
	if !ok {
		return nil, false
	}
	var doc islandDoc
	if err := json.Unmarshal(art.Files[islandsFile], &doc); err != nil || doc.Schema != islandSchema || doc.Run == nil {
		reason := "decode: bad islands.json"
		if err != nil {
			reason = fmt.Sprintf("decode: %v", err)
		}
		s.QuarantineKey(key, reason)
		return nil, false
	}
	if doc.Run.Seed != k.seed || doc.Run.Islands != k.islands {
		s.QuarantineKey(key, "decode: islands.json does not match its key")
		return nil, false
	}
	return doc.Run, true
}

// commitStoredIsland writes a freshly computed island run to the disk
// tier (best-effort, like commitStored).
func commitStoredIsland(k islandKey, run *evolve.IslandRun) {
	s := activeStore.Load()
	if s == nil {
		return
	}
	payload, err := json.Marshal(&islandDoc{Schema: islandSchema, Run: run})
	if err != nil {
		return
	}
	gens := 0
	for _, ir := range run.Results {
		if len(ir.History) > gens {
			gens = len(ir.History)
		}
	}
	s.Put(islandStoreKeyFor(k),
		store.Meta{Solved: run.Solved, BestFitness: run.BestFitness, Generations: gens},
		map[string][]byte{islandsFile: payload})
}

// PeekSharedIsland answers an island request from memory or disk
// without computing — the coordinator's store-hit proxy for island
// jobs, mirroring PeekShared.
func PeekSharedIsland(workload string, population, generations, islands, migrationEvery int, seed uint64) (*evolve.IslandRun, bool, bool) {
	k := islandKey{
		workload:       workload,
		population:     population,
		generations:    generations,
		islands:        islands,
		migrationEvery: migrationEvery,
		seed:           seed,
	}
	if run, ok := islandCache.peek(k); ok {
		return run, false, true
	}
	stored, ok := loadStoredIsland(k)
	if !ok {
		return nil, false, false
	}
	run, err := islandCache.get(k, func() (*evolve.IslandRun, error) { return stored, nil })
	if err != nil {
		return nil, false, false
	}
	return run, true, true
}
