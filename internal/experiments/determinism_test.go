package experiments

import (
	"bytes"
	"testing"
)

// renderAll regenerates every registered experiment through RunAll at
// the given parallelism, returning each id's rendered text.
func renderAll(t *testing.T, parallelism int) map[string]string {
	t.Helper()
	ResetCaches()
	opt := quickOpt()
	opt.Parallelism = parallelism
	out := map[string]string{}
	err := RunAll(IDs(), opt, func(o Outcome) {
		if o.Err != nil {
			t.Errorf("%s: %v", o.ID, o.Err)
			return
		}
		var buf bytes.Buffer
		if err := o.Res.Render(&buf); err != nil {
			t.Errorf("%s: render: %v", o.ID, err)
			return
		}
		out[o.ID] = buf.String()
	})
	if err != nil {
		t.Fatal(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	return out
}

// TestParallelSerialIdentical is the PR's correctness bar: every
// registered figure/table renders byte-identically whether the harness
// runs fully serial (-j 1) or wide (-j 8). Evolution is a pure
// function of its cache key and sweep rows assemble in index order, so
// scheduling must not be observable in any output.
func TestParallelSerialIdentical(t *testing.T) {
	t.Cleanup(ResetCaches)
	serial := renderAll(t, 1)
	parallel := renderAll(t, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("serial rendered %d ids, parallel %d", len(serial), len(parallel))
	}
	for _, id := range IDs() {
		if serial[id] != parallel[id] {
			t.Errorf("%s: parallel output differs from serial\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial[id], parallel[id])
		}
	}
}

// TestRunAllOrderAndErrors pins RunAll's contract: outcomes arrive in
// the order ids were given, and an unknown id fails fast before any
// evolution runs.
func TestRunAllOrderAndErrors(t *testing.T) {
	t.Cleanup(ResetCaches)
	ResetCaches()
	ids := []string{"table3", "fig8a", "fig8b"}
	var got []string
	err := RunAll(ids, quickOpt(), func(o Outcome) {
		if o.Err != nil {
			t.Fatalf("%s: %v", o.ID, o.Err)
		}
		got = append(got, o.ID)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ids {
		if got[i] != ids[i] {
			t.Fatalf("outcome order %v, want %v", got, ids)
		}
	}

	if err := RunAll([]string{"table3", "nope"}, quickOpt(), nil); err == nil {
		t.Fatal("unknown id accepted")
	} else if want := `unknown experiment "nope"`; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Fatalf("error %q does not name the unknown id", err)
	}
	if n := evolutionsExecuted(); n != 0 {
		t.Fatalf("unknown id still ran %d evolutions", n)
	}
}
