package experiments

import (
	"context"
	"os"

	"repro/internal/evolve"
	"repro/internal/hw/hwsim"
	"repro/internal/neat"
	"repro/internal/trace"
)

// This file is the exported face of the run cache: the serving layer
// (internal/serve) submits evolution jobs through the exact same
// singleflight store the figure generators use, so a daemon job, a
// figure regeneration, and a duplicate client submission of the same
// (workload, population, generations, seed) all resolve to one
// executed evolution per process. Cached entries are uniform — every
// compute attaches a trace recorder — so an entry evolved for a
// daemon job can later feed a hardware-replay figure and vice versa.

// SharedRequest describes one evolution to run (or fetch) through the
// shared run cache. The tuple (Workload, Population, Generations,
// Seed) is the cache key; everything else shapes how a cache miss
// executes and does not affect identity.
type SharedRequest struct {
	Workload    string
	Population  int
	Generations int
	Seed        uint64

	// Ctx cancels a cache-miss evolution; nil means Background. A
	// cancelled compute is evicted from the cache (concurrent waiters
	// share the cancellation error; a later identical request
	// recomputes — and resumes from CheckpointPath if one was written).
	Ctx context.Context
	// Sink, when set, receives this run's per-generation records live
	// while it evolves. Only the computing request streams; a request
	// served from cache (Computed=false) gets no live records and
	// should replay SharedRun.Runner.History instead.
	Sink hwsim.Sink
	// Parallelism caps the runner's evaluation worker pool (0 =
	// GOMAXPROCS); a scheduler running many jobs passes 1 so its own
	// worker slots are the only parallelism.
	Parallelism int
	// BatchWidth caps the batch evaluation engine's lane count (0 =
	// engine default). Like Parallelism it shapes execution without
	// affecting identity — batch results are byte-identical to the
	// scalar reference at every width — so it is not in the cache key.
	BatchWidth int
	// CheckpointPath + CheckpointEvery enable the PR 2 checkpoint
	// machinery on a cache miss: the run persists at generation
	// boundaries, resumes from an existing file at that path, and the
	// file is removed after an uninterrupted completion (a stale
	// checkpoint never shadows a fresh run of a different key because
	// the path should encode the key).
	CheckpointPath  string
	CheckpointEvery int
	// ResumeFromPath, when set, is the checkpoint file the run restores
	// from instead of CheckpointPath — the cluster failover seam: a
	// worker taking over a dead worker's job resumes from the orphan's
	// owner-suffixed checkpoint while writing its own checkpoints to its
	// own CheckpointPath, so two workers never share a write target.
	// Both files are removed after an uninterrupted completion.
	ResumeFromPath string
	// OnRunner, when set, is called with the live runner just before a
	// cache-miss run starts — the hook a serving layer uses to wire
	// per-job control (Runner.RequestCheckpoint). The runner is owned
	// by the computing goroutine; callers must only use the
	// goroutine-safe Runner surface.
	OnRunner func(*evolve.Runner)
	// Phases, when set, receives the runner's per-phase wall-clock
	// counters (evaluate/speciate/reproduce) on a cache miss — a live
	// accounting node, not part of the cache key or the memoized run.
	// Cache hits and store replays execute no phases and charge nothing.
	Phases *hwsim.Counters
}

// SharedRun is the outcome of a shared-cache request.
type SharedRun struct {
	// Runner holds the finished run: History, Pop, workload. Shared
	// and immutable by contract — re-scoring goes through the
	// non-mutating Runner.ScoreGenome.
	Runner *evolve.Runner
	// Trace is the reproduction trace recorded during the run.
	Trace *trace.Trace
	// Solved reports whether the run reached the workload target.
	Solved bool
	// Resumed reports whether the compute restored a checkpoint (its
	// History then covers only the post-restore generations).
	Resumed bool
	// Computed is true only for the request whose compute executed the
	// evolution; concurrent and later requests of the same key see
	// false and share the first request's artifacts.
	Computed bool
	// Stored reports that this request's cache miss was served from the
	// persistent store: a full history replay with no evolution
	// executed. Like a memory hit it leaves Computed false, so callers
	// replay Runner.History.
	Stored bool
}

// RunShared resolves one evolution through the package's singleflight
// run cache: the first request of a key executes it (honoring Sink,
// checkpointing, and cancellation), concurrent requests block on that
// execution, later requests return the memoized run immediately.
func RunShared(req SharedRequest) (*SharedRun, error) {
	opt := Options{
		Seed:           req.Seed,
		MaxGenerations: req.Generations,
		Population:     req.Population,
		// Mirror the sizes into the RAM knobs so the cache key is the
		// literal request tuple for RAM workloads too.
		RAMPopulation:  req.Population,
		RAMGenerations: req.Generations,
	}
	out := &SharedRun{}
	key := runKeyFor(req.Workload, opt, 0)
	e, err := runCache.get(key, func() (*evolved, error) {
		if se, ok := loadStored(key); ok {
			out.Stored = true
			return se, nil
		}
		out.Computed = true
		e, cerr := evolveSharedLocked(req, out)
		if cerr != nil {
			return nil, cerr
		}
		// A resumed run's History covers only the post-restore
		// generations (the SharedRun contract), so committing it would
		// poison byte-identical replay; only uninterrupted runs persist.
		if !out.Resumed {
			commitStored(key, e)
		}
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	out.Runner, out.Trace, out.Solved = e.runner, e.trace, e.solved
	return out, nil
}

// PeekShared answers a run request from what this process already has
// — the memory cache, then the persistent store — without ever
// computing. It is the coordinator's store-hit proxy seam: before
// dispatching a job to the fleet, the coordinator checks whether it
// can replay the run locally. A store hit is memoized so repeated
// peeks of the same key read disk once.
func PeekShared(workload string, population, generations int, seed uint64) (*SharedRun, bool) {
	opt := Options{
		Seed:           seed,
		MaxGenerations: generations,
		Population:     population,
		RAMPopulation:  population,
		RAMGenerations: generations,
	}
	key := runKeyFor(workload, opt, 0)
	if e, ok := runCache.peek(key); ok {
		return &SharedRun{Runner: e.runner, Trace: e.trace, Solved: e.solved}, true
	}
	se, ok := loadStored(key)
	if !ok {
		return nil, false
	}
	e, err := runCache.get(key, func() (*evolved, error) { return se, nil })
	if err != nil {
		return nil, false
	}
	return &SharedRun{Runner: e.runner, Trace: e.trace, Solved: e.solved, Stored: true}, true
}

// EvolutionsExecuted reports how many evolution computations (single
// runs plus studies) have executed since the last cache reset — the
// execution counter admission tests and the daemon's metrics use to
// prove deduplication.
func EvolutionsExecuted() int64 { return evolutionsExecuted() }

// evolveSharedLocked is the cache-miss body of RunShared. It runs on
// the requesting goroutine under the key's singleflight slot.
func evolveSharedLocked(req SharedRequest, out *SharedRun) (*evolved, error) {
	ctx := req.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	cfg := neat.DefaultConfig(1, 1)
	cfg.PopulationSize = req.Population
	r, err := evolve.NewRunner(req.Workload, cfg, req.Seed)
	if err != nil {
		return nil, err
	}
	r.Parallelism = req.Parallelism
	r.BatchWidth = req.BatchWidth
	r.Sink = req.Sink
	r.Phases = req.Phases
	tr := &trace.Trace{}
	r.SetRecorder(tr)
	if req.CheckpointPath != "" {
		r.CheckpointPath = req.CheckpointPath
		r.CheckpointEvery = req.CheckpointEvery
	}
	resume := req.ResumeFromPath
	if resume == "" {
		resume = req.CheckpointPath
	}
	if resume != "" {
		if _, serr := os.Stat(resume); serr == nil {
			if rerr := r.RestoreCheckpoint(resume); rerr != nil {
				return nil, rerr
			}
			out.Resumed = true
		}
	}
	if req.OnRunner != nil {
		req.OnRunner(r)
	}
	evolutionsRun.Add(1)
	solved, err := r.Run(ctx, req.Generations)
	if err != nil {
		return nil, err
	}
	// A completed run's checkpoint has served its purpose; removing it
	// keeps a later run that reuses the path (same key after a cache
	// reset) from "resuming" a finished population. The failover resume
	// source (the dead worker's orphan) is reclaimed too.
	if req.CheckpointPath != "" {
		os.Remove(req.CheckpointPath)
	}
	if req.ResumeFromPath != "" && req.ResumeFromPath != req.CheckpointPath {
		os.Remove(req.ResumeFromPath)
	}
	// Cached entries are read-only (History/Pop/trace; re-scoring uses
	// the self-contained ScoreGenome), so drop the evaluation engine
	// before the cache pins this runner for the process lifetime —
	// otherwise every finished daemon job keeps its batch planes and
	// environment pool live and GC scan time grows with jobs completed.
	r.ReleaseEvalState()
	return &evolved{runner: r, trace: tr, solved: solved}, nil
}
