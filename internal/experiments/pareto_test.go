package experiments

import (
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/store"
)

// paretoReq is the tiny Pareto run these tests resolve. The seed range
// (889xxx) is private to this file.
func paretoReq(seed uint64) ParetoRequest {
	return ParetoRequest{
		Workload:    "cartpole",
		Population:  16,
		Generations: 4,
		Seed:        seed,
		Objectives:  []string{"fitness", "genes", "energy"},
	}
}

func TestJoinSplitObjectives(t *testing.T) {
	v := []string{"fitness", "genes", "energy"}
	j := JoinObjectives(v)
	if j != "fitness+genes+energy" {
		t.Fatalf("JoinObjectives = %q", j)
	}
	back := SplitObjectives(j)
	if len(back) != 3 || back[0] != "fitness" || back[1] != "genes" || back[2] != "energy" {
		t.Fatalf("SplitObjectives = %v", back)
	}
	if SplitObjectives("") != nil {
		t.Fatal("SplitObjectives(\"\") not nil")
	}
}

func TestRunSharedParetoSingleflight(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)

	const callers = 4
	outs := make([]*ParetoOutcome, callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			outs[i], errs[i] = RunSharedPareto(paretoReq(889001))
		}(i)
	}
	wg.Wait()
	computed := 0
	for i := range outs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if outs[i].Computed {
			computed++
		}
		if outs[i].Run != outs[0].Run {
			t.Fatal("concurrent callers got different run objects")
		}
	}
	if computed != 1 {
		t.Fatalf("%d computations for one key, want exactly 1", computed)
	}
	if len(outs[0].Run.Front) == 0 {
		t.Fatal("empty front")
	}
}

// TestParetoStoreRoundTrip: a Pareto run committed to the store
// replays after a cache reset (the "restart") with no evolution
// executed and a byte-identical result — fronts included.
func TestParetoStoreRoundTrip(t *testing.T) {
	withTestStore(t, store.Config{})
	ResetCaches()

	first, err := RunSharedPareto(paretoReq(889002))
	if err != nil {
		t.Fatal(err)
	}
	if !first.Computed || first.Stored {
		t.Fatalf("first run: Computed=%v Stored=%v", first.Computed, first.Stored)
	}
	want, err := json.Marshal(first.Run)
	if err != nil {
		t.Fatal(err)
	}

	ResetCaches() // drop memory, keep disk: simulated restart
	second, err := RunSharedPareto(paretoReq(889002))
	if err != nil {
		t.Fatal(err)
	}
	if second.Computed || !second.Stored {
		t.Fatalf("replay: Computed=%v Stored=%v", second.Computed, second.Stored)
	}
	got, err := json.Marshal(second.Run)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Fatal("stored pareto run is not byte-identical to the computed one")
	}
	if EvolutionsExecuted() != 0 {
		t.Fatalf("replay executed %d evolutions, want 0", EvolutionsExecuted())
	}
}

func TestPeekSharedPareto(t *testing.T) {
	withTestStore(t, store.Config{})
	ResetCaches()

	req := paretoReq(889003)
	if _, _, ok := PeekSharedPareto(req.Workload, req.Population, req.Generations, req.Seed, req.Objectives); ok {
		t.Fatal("peek hit before anything ran")
	}
	first, err := RunSharedPareto(req)
	if err != nil {
		t.Fatal(err)
	}
	run, stored, ok := PeekSharedPareto(req.Workload, req.Population, req.Generations, req.Seed, req.Objectives)
	if !ok || stored || run != first.Run {
		t.Fatalf("memory peek: ok=%v stored=%v same=%v", ok, stored, run == first.Run)
	}

	ResetCaches()
	run, stored, ok = PeekSharedPareto(req.Workload, req.Population, req.Generations, req.Seed, req.Objectives)
	if !ok || !stored {
		t.Fatalf("disk peek: ok=%v stored=%v", ok, stored)
	}
	if run.Seed != req.Seed || JoinObjectives(run.Objectives) != JoinObjectives(req.Objectives) {
		t.Fatalf("disk peek returned the wrong run: %+v", run)
	}
	if EvolutionsExecuted() != 0 {
		t.Fatal("peek executed an evolution")
	}
}

// TestParetoObjectiveOrderIsIdentity: the same tuple with a reordered
// objective vector is a different computation with its own cache and
// store entry.
func TestParetoObjectiveOrderIsIdentity(t *testing.T) {
	withTestStore(t, store.Config{})
	ResetCaches()
	t.Cleanup(ResetCaches)

	a, err := RunSharedPareto(paretoReq(889004))
	if err != nil {
		t.Fatal(err)
	}
	req := paretoReq(889004)
	req.Objectives = []string{"energy", "genes", "fitness"}
	b, err := RunSharedPareto(req)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Computed || !b.Computed {
		t.Fatalf("reordered vector shared a computation: a=%v b=%v", a.Computed, b.Computed)
	}
	if a.Run == b.Run {
		t.Fatal("reordered vector returned the same run object")
	}
}

func TestRunSharedParetoValidates(t *testing.T) {
	req := paretoReq(889005)
	req.Objectives = []string{"fitness"}
	if _, err := RunSharedPareto(req); err == nil {
		t.Fatal("single-objective pareto spec accepted")
	}
	req = paretoReq(889006)
	req.Workload = "nope"
	if _, err := RunSharedPareto(req); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

// TestParetoQuarantineOnBadSchema: a corrupt pareto.json is
// quarantined and recomputed rather than replayed.
func TestParetoQuarantineOnBadSchema(t *testing.T) {
	s := withTestStore(t, store.Config{})
	ResetCaches()

	// Seed the store with a wrong-schema artifact under the run's key
	// (content hashes valid, so only the semantic decode can catch it).
	req := paretoReq(889007)
	key := paretoStoreKeyFor(req.key())
	if err := s.Put(key, store.Meta{}, map[string][]byte{
		paretoFile: []byte(`{"schema":"genesys-wrong/9","run":null}`),
	}); err != nil {
		t.Fatal(err)
	}
	out, err := RunSharedPareto(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Computed || out.Stored {
		t.Fatalf("bad artifact replayed: Computed=%v Stored=%v", out.Computed, out.Stored)
	}
	if len(s.Quarantined()) == 0 {
		t.Fatal("bad artifact not quarantined")
	}
}

// TestParetoFigure runs the registered experiment end to end.
func TestParetoFigure(t *testing.T) {
	ResetCaches()
	t.Cleanup(ResetCaches)

	r, err := Run("pareto", quickOpt())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Tables) != 3 {
		t.Fatalf("%d tables, want one per control workload", len(r.Tables))
	}
	for _, wl := range []string{"cartpole", "mountaincar", "lunarlander"} {
		if v, ok := r.Series[wl+":frontSize"]; !ok || v[0] < 1 {
			t.Fatalf("%s front missing or empty: %v", wl, r.Series)
		}
	}
}
