// Package dnn is a minimal dense neural network with backpropagation —
// the substrate the paper's reinforcement-learning baselines (DQN, the
// footnote-1 comparison) train with. It exists to make Table II's
// comparison measurable rather than quoted: the MLP counts its forward
// MACs and backward gradient operations, so the DQN-vs-EA compute rows
// come from executed arithmetic.
//
// Design: plain fully-connected layers, ReLU hidden activations,
// linear output, mean-squared error on selected outputs (the DQN TD
// loss), and SGD with gradient clipping. No tensors, no
// vectorization — clarity and countability over speed.
package dnn

import (
	"fmt"

	"repro/internal/rng"
)

// MLP is a fully-connected network with ReLU hidden layers and a
// linear output layer.
type MLP struct {
	sizes []int
	// w[l][i][j] is the weight from unit j of layer l to unit i of
	// layer l+1; b[l][i] the bias of unit i of layer l+1.
	w [][][]float64
	b [][]float64

	// Per-example caches (reused across calls).
	acts [][]float64 // post-activation values per layer
	pre  [][]float64 // pre-activation values per non-input layer
	dw   [][][]float64
	db   [][]float64

	// Counters for the Table II comparison.
	ForwardMACs int64
	GradOps     int64
}

// NewMLP builds a network with the given layer sizes (input first),
// He-initialized weights.
func NewMLP(r *rng.XorWow, sizes ...int) (*MLP, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("dnn: need at least input and output layers, have %v", sizes)
	}
	for _, s := range sizes {
		if s <= 0 {
			return nil, fmt.Errorf("dnn: non-positive layer size in %v", sizes)
		}
	}
	m := &MLP{sizes: append([]int(nil), sizes...)}
	for l := 0; l+1 < len(sizes); l++ {
		in, out := sizes[l], sizes[l+1]
		wl := make([][]float64, out)
		scale := 1.41421356 / sqrtFloat(float64(in)) // He init
		for i := range wl {
			wl[i] = make([]float64, in)
			for j := range wl[i] {
				wl[i][j] = r.NormFloat64() * scale
			}
		}
		m.w = append(m.w, wl)
		m.b = append(m.b, make([]float64, out))
		m.dw = append(m.dw, zeros2(out, in))
		m.db = append(m.db, make([]float64, out))
	}
	m.acts = make([][]float64, len(sizes))
	m.pre = make([][]float64, len(sizes)-1)
	for l, s := range sizes {
		m.acts[l] = make([]float64, s)
		if l > 0 {
			m.pre[l-1] = make([]float64, s)
		}
	}
	return m, nil
}

func zeros2(r, c int) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
	}
	return out
}

func sqrtFloat(v float64) float64 {
	// Newton iterations are plenty for an init scale.
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 32; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// NumInputs returns the input width.
func (m *MLP) NumInputs() int { return m.sizes[0] }

// NumOutputs returns the output width.
func (m *MLP) NumOutputs() int { return m.sizes[len(m.sizes)-1] }

// Params returns the parameter count.
func (m *MLP) Params() int64 {
	var n int64
	for l := range m.w {
		n += int64(len(m.w[l]))*int64(len(m.w[l][0])) + int64(len(m.b[l]))
	}
	return n
}

// Forward evaluates the network; the returned slice is reused across
// calls.
func (m *MLP) Forward(x []float64) ([]float64, error) {
	if len(x) != m.sizes[0] {
		return nil, fmt.Errorf("dnn: input width %d, want %d", len(x), m.sizes[0])
	}
	copy(m.acts[0], x)
	last := len(m.w) - 1
	for l := range m.w {
		in := m.acts[l]
		for i := range m.w[l] {
			sum := m.b[l][i]
			row := m.w[l][i]
			for j, v := range in {
				sum += row[j] * v
			}
			m.ForwardMACs += int64(len(in))
			m.pre[l][i] = sum
			if l < last && sum < 0 { // ReLU on hidden layers
				sum = 0
			}
			m.acts[l+1][i] = sum
		}
	}
	return m.acts[len(m.acts)-1], nil
}

// BackwardMSE backpropagates a mean-squared-error loss applied to a
// subset of outputs: for each (index, target) pair the output-layer
// error is (out - target); other outputs carry zero error (the DQN TD
// update touches only the taken action's Q value). Gradients
// accumulate into the internal buffers until SGDStep applies them.
// Forward must have been called for this example.
func (m *MLP) BackwardMSE(indices []int, targets []float64) error {
	if len(indices) != len(targets) {
		return fmt.Errorf("dnn: %d indices for %d targets", len(indices), len(targets))
	}
	last := len(m.w) - 1
	delta := make([]float64, m.sizes[len(m.sizes)-1])
	for k, idx := range indices {
		if idx < 0 || idx >= len(delta) {
			return fmt.Errorf("dnn: output index %d out of range", idx)
		}
		delta[idx] = m.acts[len(m.acts)-1][idx] - targets[k]
	}
	for l := last; l >= 0; l-- {
		in := m.acts[l]
		nextDelta := make([]float64, m.sizes[l])
		for i, d := range delta {
			if d == 0 {
				continue
			}
			m.db[l][i] += d
			row := m.w[l][i]
			drow := m.dw[l][i]
			for j := range row {
				drow[j] += d * in[j]
				nextDelta[j] += d * row[j]
			}
			m.GradOps += 2 * int64(len(row))
		}
		if l > 0 {
			// ReLU derivative of the upstream layer.
			for j := range nextDelta {
				if m.pre[l-1][j] <= 0 {
					nextDelta[j] = 0
				}
			}
		}
		delta = nextDelta
	}
	return nil
}

// SGDStep applies accumulated gradients scaled by lr/batch with
// element-wise clipping, then clears them.
func (m *MLP) SGDStep(lr float64, batch int, clip float64) {
	if batch < 1 {
		batch = 1
	}
	scale := lr / float64(batch)
	for l := range m.w {
		for i := range m.w[l] {
			for j := range m.w[l][i] {
				g := m.dw[l][i][j] * scale
				if clip > 0 {
					if g > clip {
						g = clip
					}
					if g < -clip {
						g = -clip
					}
				}
				m.w[l][i][j] -= g
				m.dw[l][i][j] = 0
			}
			g := m.db[l][i] * scale
			if clip > 0 {
				if g > clip {
					g = clip
				}
				if g < -clip {
					g = -clip
				}
			}
			m.b[l][i] -= g
			m.db[l][i] = 0
		}
	}
}

// CopyFrom copies the other network's parameters (target-network
// refresh). Shapes must match.
func (m *MLP) CopyFrom(o *MLP) error {
	if len(m.w) != len(o.w) {
		return fmt.Errorf("dnn: layer count mismatch")
	}
	for l := range m.w {
		if len(m.w[l]) != len(o.w[l]) || len(m.w[l][0]) != len(o.w[l][0]) {
			return fmt.Errorf("dnn: layer %d shape mismatch", l)
		}
		for i := range m.w[l] {
			copy(m.w[l][i], o.w[l][i])
		}
		copy(m.b[l], o.b[l])
	}
	return nil
}

// FlatParams returns all parameters as one vector (weights
// layer-major, then biases) — the parameter space evolution strategies
// perturb.
func (m *MLP) FlatParams() []float64 {
	out := make([]float64, 0, m.Params())
	for l := range m.w {
		for i := range m.w[l] {
			out = append(out, m.w[l][i]...)
		}
	}
	for l := range m.b {
		out = append(out, m.b[l]...)
	}
	return out
}

// SetFlatParams installs a parameter vector produced by FlatParams.
func (m *MLP) SetFlatParams(p []float64) error {
	if int64(len(p)) != m.Params() {
		return fmt.Errorf("dnn: %d params, want %d", len(p), m.Params())
	}
	k := 0
	for l := range m.w {
		for i := range m.w[l] {
			k += copy(m.w[l][i], p[k:])
		}
	}
	for l := range m.b {
		k += copy(m.b[l], p[k:])
	}
	return nil
}

// MemoryBytes returns the parameter + activation storage in float64s
// ×8 (the measured counterpart of Table II's params/activations row).
func (m *MLP) MemoryBytes() int64 {
	var acts int64
	for _, s := range m.sizes {
		acts += int64(s)
	}
	return (m.Params() + acts) * 8
}
