package dnn

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewMLPValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewMLP(r, 4); err == nil {
		t.Fatal("single-layer network accepted")
	}
	if _, err := NewMLP(r, 4, 0, 2); err == nil {
		t.Fatal("zero-width layer accepted")
	}
	m, err := NewMLP(r, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumInputs() != 4 || m.NumOutputs() != 2 {
		t.Fatalf("io %d/%d", m.NumInputs(), m.NumOutputs())
	}
	if m.Params() != 4*8+8+8*2+2 {
		t.Fatalf("params %d", m.Params())
	}
}

func TestForwardWidthCheck(t *testing.T) {
	m, _ := NewMLP(rng.New(1), 3, 2)
	if _, err := m.Forward([]float64{1}); err == nil {
		t.Fatal("wrong input width accepted")
	}
}

func TestForwardCountsMACs(t *testing.T) {
	m, _ := NewMLP(rng.New(1), 4, 8, 2)
	if _, err := m.Forward(make([]float64, 4)); err != nil {
		t.Fatal(err)
	}
	if m.ForwardMACs != 4*8+8*2 {
		t.Fatalf("forward MACs %d, want 48", m.ForwardMACs)
	}
}

// TestGradientCheck verifies backprop against numerical gradients —
// the canonical correctness property of a backprop engine.
func TestGradientCheck(t *testing.T) {
	r := rng.New(7)
	m, _ := NewMLP(r, 3, 5, 4, 2)
	x := []float64{0.5, -0.3, 0.8}
	outIdx, target := 1, 0.7

	loss := func() float64 {
		out, err := m.Forward(x)
		if err != nil {
			t.Fatal(err)
		}
		d := out[outIdx] - target
		return 0.5 * d * d
	}

	// Analytic gradients.
	if _, err := m.Forward(x); err != nil {
		t.Fatal(err)
	}
	if err := m.BackwardMSE([]int{outIdx}, []float64{target}); err != nil {
		t.Fatal(err)
	}

	const eps = 1e-6
	checks := 0
	for l := range m.w {
		for i := 0; i < len(m.w[l]); i += 2 {
			for j := 0; j < len(m.w[l][i]); j += 2 {
				orig := m.w[l][i][j]
				m.w[l][i][j] = orig + eps
				up := loss()
				m.w[l][i][j] = orig - eps
				down := loss()
				m.w[l][i][j] = orig
				numeric := (up - down) / (2 * eps)
				analytic := m.dw[l][i][j]
				if math.Abs(numeric-analytic) > 1e-4*(1+math.Abs(numeric)) {
					t.Fatalf("grad mismatch at w[%d][%d][%d]: analytic %v numeric %v",
						l, i, j, analytic, numeric)
				}
				checks++
			}
		}
	}
	if checks < 10 {
		t.Fatalf("only %d gradient checks ran", checks)
	}
}

func TestSGDReducesLoss(t *testing.T) {
	r := rng.New(3)
	m, _ := NewMLP(r, 2, 16, 1)
	// Fit y = x0 + 2*x1 on a few points.
	points := [][3]float64{{0.1, 0.2, 0.5}, {0.5, -0.1, 0.3}, {-0.3, 0.4, 0.5}, {0.8, 0.1, 1.0}}
	mse := func() float64 {
		var sum float64
		for _, p := range points {
			out, _ := m.Forward(p[:2])
			d := out[0] - p[2]
			sum += d * d
		}
		return sum / float64(len(points))
	}
	before := mse()
	for iter := 0; iter < 500; iter++ {
		for _, p := range points {
			if _, err := m.Forward(p[:2]); err != nil {
				t.Fatal(err)
			}
			if err := m.BackwardMSE([]int{0}, []float64{p[2]}); err != nil {
				t.Fatal(err)
			}
		}
		m.SGDStep(0.05, len(points), 1)
	}
	after := mse()
	if after > before/10 {
		t.Fatalf("training did not converge: %v -> %v", before, after)
	}
	if m.GradOps == 0 {
		t.Fatal("no gradient ops counted")
	}
}

func TestCopyFrom(t *testing.T) {
	a, _ := NewMLP(rng.New(1), 3, 4, 2)
	b, _ := NewMLP(rng.New(2), 3, 4, 2)
	if err := b.CopyFrom(a); err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.2, 0.9}
	ya, _ := a.Forward(x)
	ya = append([]float64(nil), ya...)
	yb, _ := b.Forward(x)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("copied network differs at output %d", i)
		}
	}
	c, _ := NewMLP(rng.New(3), 3, 5, 2)
	if err := c.CopyFrom(a); err == nil {
		t.Fatal("shape mismatch accepted")
	}
}

func TestBackwardValidation(t *testing.T) {
	m, _ := NewMLP(rng.New(1), 2, 2)
	if _, err := m.Forward([]float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.BackwardMSE([]int{0, 1}, []float64{1}); err == nil {
		t.Fatal("mismatched indices/targets accepted")
	}
	if err := m.BackwardMSE([]int{5}, []float64{1}); err == nil {
		t.Fatal("out-of-range output index accepted")
	}
}

func TestFlatParamsVectorSemantics(t *testing.T) {
	m, _ := NewMLP(rng.New(5), 3, 4, 2)
	p := m.FlatParams()
	if int64(len(p)) != m.Params() {
		t.Fatalf("flat vector %d entries for %d params", len(p), m.Params())
	}
	// Round trip must preserve behaviour exactly.
	x := []float64{0.5, -1, 0.25}
	before, _ := m.Forward(x)
	before = append([]float64(nil), before...)
	if err := m.SetFlatParams(p); err != nil {
		t.Fatal(err)
	}
	after, _ := m.Forward(x)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("flat-param round trip changed the function")
		}
	}
	// Zeroing the vector must zero the function.
	zero := make([]float64, len(p))
	if err := m.SetFlatParams(zero); err != nil {
		t.Fatal(err)
	}
	out, _ := m.Forward(x)
	for _, v := range out {
		if v != 0 {
			t.Fatalf("zero parameters produced %v", v)
		}
	}
	if err := m.SetFlatParams(zero[:3]); err == nil {
		t.Fatal("short vector accepted")
	}
}

func TestSGDClipping(t *testing.T) {
	m, _ := NewMLP(rng.New(9), 1, 1)
	before := m.FlatParams()
	if _, err := m.Forward([]float64{1000}); err != nil {
		t.Fatal(err)
	}
	if err := m.BackwardMSE([]int{0}, []float64{-1000}); err != nil {
		t.Fatal(err)
	}
	m.SGDStep(1.0, 1, 0.01) // huge gradient, tight clip
	after := m.FlatParams()
	for i := range before {
		if d := after[i] - before[i]; d > 0.011 || d < -0.011 {
			t.Fatalf("clipped step moved param %d by %v", i, d)
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	m, _ := NewMLP(rng.New(1), 4, 8, 2)
	want := (m.Params() + 4 + 8 + 2) * 8
	if m.MemoryBytes() != want {
		t.Fatalf("memory %d, want %d", m.MemoryBytes(), want)
	}
}
