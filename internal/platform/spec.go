// Package platform provides analytic cost models of the CPU and GPU
// baselines the paper measures GeneSys against (Table III): desktop
// (Intel i7 / GTX 1080) and embedded (ARM Cortex A57 / Tegra, both on
// the Jetson TX2) devices running the optimized NEAT implementations.
//
// The paper instruments physical machines (Intel Power Gadget, INA3221,
// nvidia-smi, nvprof). None of that hardware exists here, so each
// platform is an explicit charge model: software gene-ops and MACs cost
// device-dependent time, GPU work pays kernel-launch and PCIe/memcpy
// overheads, and energy is time × device power. The constants are
// calibrated so the relative orderings and rough factors the paper
// reports (Fig. 9, Fig. 10) hold; absolute values are model outputs,
// not measurements.
package platform

import "fmt"

// ExecMode describes how a phase is parallelized (the legend of
// Table III).
type ExecMode string

// Execution modes from Table III.
const (
	Serial ExecMode = "serial"
	PLP    ExecMode = "plp"     // population-level parallelism
	BSP    ExecMode = "bsp"     // bulk-synchronous (GPU), GLP only
	BSPPLP ExecMode = "bsp+plp" // GPU exploiting GLP and PLP together
)

// Device holds the physical-device constants of one platform.
type Device struct {
	Name string
	// PowerW is the active power while running the workload.
	PowerW float64
	// IsGPU selects the GPU charge model.
	IsGPU bool

	// CPU model: effective per-operation times for the optimized
	// host implementation (interpreter + runtime overheads included,
	// matching the paper's NEAT-python-derived codebase).
	GeneOpNS float64 // one crossover/mutation gene op
	MACNS    float64 // one multiply-accumulate in inference
	VertexNS float64 // per-vertex-update bookkeeping
	// Threads and ThreadEff bound PLP speedup on CPUs (the paper
	// measured 3.5× from 4 threads).
	Threads   int
	ThreadEff float64

	// GPU model.
	GPUMACNS       float64 // per-MAC time in compact (compute-bound) kernels
	GPUSparseMACNS float64 // per-element time in padded sparse kernels (memory-bound)
	GPUGeneOpNS    float64 // effective per-gene-op time (divergent code)
	KernelLaunchUS float64 // per-kernel launch latency
	MemcpyLatUS    float64 // per-transfer fixed latency
	MemcpyGBps     float64 // transfer bandwidth
	CompactionNS   float64 // host-side per-gene compaction time (GPU_a)
}

// The four physical devices of the evaluation.
var (
	// DesktopCPU is the 6th-gen Intel i7.
	DesktopCPU = Device{
		Name: "i7-6700", PowerW: 45,
		GeneOpNS: 900, MACNS: 45, VertexNS: 250,
		Threads: 4, ThreadEff: 0.875,
	}
	// EmbeddedCPU is the ARM Cortex A57 on the Jetson TX2.
	EmbeddedCPU = Device{
		Name: "cortex-a57", PowerW: 5,
		GeneOpNS: 4500, MACNS: 220, VertexNS: 1200,
		Threads: 4, ThreadEff: 0.875,
	}
	// DesktopGPU is the NVIDIA GTX 1080.
	DesktopGPU = Device{
		Name: "gtx1080", PowerW: 180, IsGPU: true,
		GPUMACNS: 0.0005, GPUSparseMACNS: 0.0125, GPUGeneOpNS: 5,
		KernelLaunchUS: 10, MemcpyLatUS: 20, MemcpyGBps: 10,
		CompactionNS: 100,
	}
	// EmbeddedGPU is the NVIDIA Tegra (Pascal) on the Jetson TX2.
	EmbeddedGPU = Device{
		Name: "tegra", PowerW: 10, IsGPU: true,
		GPUMACNS: 0.004, GPUSparseMACNS: 0.08, GPUGeneOpNS: 50,
		KernelLaunchUS: 25, MemcpyLatUS: 35, MemcpyGBps: 5,
		CompactionNS: 500,
	}
)

// Spec is one Table III configuration: a device plus the execution
// modes of the two phases.
type Spec struct {
	Legend    string
	Device    Device
	Inference ExecMode
	Evolution ExecMode
}

// TableIII returns the eight baseline configurations in the paper's
// order.
func TableIII() []Spec {
	return []Spec{
		{Legend: "CPU_a", Device: DesktopCPU, Inference: Serial, Evolution: Serial},
		{Legend: "CPU_b", Device: DesktopCPU, Inference: PLP, Evolution: Serial},
		{Legend: "GPU_a", Device: DesktopGPU, Inference: BSP, Evolution: PLP},
		{Legend: "GPU_b", Device: DesktopGPU, Inference: BSPPLP, Evolution: PLP},
		{Legend: "CPU_c", Device: EmbeddedCPU, Inference: Serial, Evolution: Serial},
		{Legend: "CPU_d", Device: EmbeddedCPU, Inference: PLP, Evolution: Serial},
		{Legend: "GPU_c", Device: EmbeddedGPU, Inference: BSP, Evolution: PLP},
		{Legend: "GPU_d", Device: EmbeddedGPU, Inference: BSPPLP, Evolution: PLP},
	}
}

// ByLegend returns the named configuration.
func ByLegend(legend string) (Spec, error) {
	for _, s := range TableIII() {
		if s.Legend == legend {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("platform: unknown configuration %q", legend)
}

// String renders the spec like the Table III row.
func (s Spec) String() string {
	return fmt.Sprintf("%s: inference=%s evolution=%s on %s (%.0f W)",
		s.Legend, s.Inference, s.Evolution, s.Device.Name, s.Device.PowerW)
}
