package platform

import (
	"math"
	"testing"
)

// cartpoleGen approximates a CartPole generation's aggregates.
func cartpoleGen() GenWorkload {
	return GenWorkload{
		Population:    150,
		GeneOps:       6000,
		TotalGenes:    1800,
		EnvSteps:      150 * 150,
		MaxSteps:      200,
		InferenceMACs: 150 * 150 * 8,
		VertexUpdates: 150 * 150 * 3,
		ObsSize:       4, ActSize: 1,
		MeanNodes: 7, MaxNodes: 10, MaxNodeID: 40,
	}
}

// atariGen approximates an Alien-ram generation's aggregates.
func atariGen() GenWorkload {
	return GenWorkload{
		Population:    150,
		GeneOps:       150000,
		TotalGenes:    150 * 2450,
		EnvSteps:      150 * 300,
		MaxSteps:      300,
		InferenceMACs: 150 * 300 * 2300,
		VertexUpdates: 150 * 300 * 150,
		ObsSize:       128, ActSize: 18,
		MeanNodes: 146, MaxNodes: 170, MaxNodeID: 400,
	}
}

func TestTableIIIComplete(t *testing.T) {
	specs := TableIII()
	if len(specs) != 8 {
		t.Fatalf("%d configurations", len(specs))
	}
	want := map[string][2]ExecMode{
		"CPU_a": {Serial, Serial}, "CPU_b": {PLP, Serial},
		"GPU_a": {BSP, PLP}, "GPU_b": {BSPPLP, PLP},
		"CPU_c": {Serial, Serial}, "CPU_d": {PLP, Serial},
		"GPU_c": {BSP, PLP}, "GPU_d": {BSPPLP, PLP},
	}
	for _, s := range specs {
		modes, ok := want[s.Legend]
		if !ok {
			t.Fatalf("unexpected legend %s", s.Legend)
		}
		if s.Inference != modes[0] || s.Evolution != modes[1] {
			t.Fatalf("%s modes %s/%s", s.Legend, s.Inference, s.Evolution)
		}
	}
	if _, err := ByLegend("GPU_a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByLegend("TPU_a"); err == nil {
		t.Fatal("unknown legend accepted")
	}
}

func TestPLPSpeedsUpCPUInference(t *testing.T) {
	w := cartpoleGen()
	a, _ := ByLegend("CPU_a")
	b, _ := ByLegend("CPU_b")
	ra, rb := a.Run(w), b.Run(w)
	speedup := ra.InferenceSeconds / rb.InferenceSeconds
	if math.Abs(speedup-3.5) > 0.01 {
		t.Fatalf("PLP speedup %.2f, paper measured 3.5", speedup)
	}
	// Evolution stays serial, identical on both.
	if ra.EvolutionSeconds != rb.EvolutionSeconds {
		t.Fatal("evolution should be serial on both CPU configs")
	}
}

func TestEmbeddedSlowerThanDesktop(t *testing.T) {
	w := atariGen()
	for _, pair := range [][2]string{{"CPU_a", "CPU_c"}, {"GPU_a", "GPU_c"}} {
		d, _ := ByLegend(pair[0])
		e, _ := ByLegend(pair[1])
		rd, re := d.Run(w), e.Run(w)
		if re.InferenceSeconds <= rd.InferenceSeconds {
			t.Fatalf("%s inference not slower than %s", pair[1], pair[0])
		}
		if re.EvolutionSeconds <= rd.EvolutionSeconds {
			t.Fatalf("%s evolution not slower than %s", pair[1], pair[0])
		}
	}
}

func TestDesktopBurnsMoreEnergyThanEmbedded(t *testing.T) {
	w := cartpoleGen()
	a, _ := ByLegend("CPU_a")
	c, _ := ByLegend("CPU_c")
	ra, rc := a.Run(w), c.Run(w)
	// The i7 is faster but at 45 W vs 5 W it still spends more energy
	// per generation on this codebase (5× slower embedded vs 9× power).
	if ra.EvolutionEnergyJ <= rc.EvolutionEnergyJ {
		t.Fatalf("desktop evolution energy %.3g not above embedded %.3g",
			ra.EvolutionEnergyJ, rc.EvolutionEnergyJ)
	}
}

func TestGPUAMemcpyDominates(t *testing.T) {
	w := cartpoleGen()
	ga, _ := ByLegend("GPU_a")
	r := ga.Run(w)
	f := r.MemcpyFraction()
	// Paper: ~70% of GPU_a inference time is memory transfer.
	if f < 0.55 || f > 0.85 {
		t.Fatalf("GPU_a memcpy fraction %.2f, paper ~0.70", f)
	}
}

func TestGPUBMemcpyModest(t *testing.T) {
	w := atariGen()
	gb, _ := ByLegend("GPU_b")
	r := gb.Run(w)
	f := r.MemcpyFraction()
	// Paper: ~20% for GPU_b.
	if f < 0.05 || f > 0.45 {
		t.Fatalf("GPU_b memcpy fraction %.2f, paper ~0.20", f)
	}
	ga, _ := ByLegend("GPU_a")
	if ga.Run(w).MemcpyFraction() <= f {
		t.Fatal("GPU_a should spend relatively more time in memcpy than GPU_b")
	}
}

func TestGPUBFasterThanGPUAOnInference(t *testing.T) {
	w := atariGen()
	ga, _ := ByLegend("GPU_a")
	gb, _ := ByLegend("GPU_b")
	if gb.Run(w).InferenceSeconds >= ga.Run(w).InferenceSeconds {
		t.Fatal("batched GPU_b not faster than per-genome GPU_a")
	}
}

func TestFootprintOrdering(t *testing.T) {
	// Fig. 10d: GPU_a (compact, one genome) ≪ GeneSys (population of
	// genomes) ≪ GPU_b (padded sparse tensors for the population).
	for _, w := range []GenWorkload{cartpoleGen(), atariGen()} {
		ga, _ := ByLegend("GPU_a")
		gb, _ := ByLegend("GPU_b")
		fa := ga.Run(w).FootprintBytes
		fb := gb.Run(w).FootprintBytes
		genesys := int64(w.TotalGenes) * 8
		if !(fa < genesys && genesys < fb) {
			t.Fatalf("footprint ordering broken: GPU_a=%d GeneSys=%d GPU_b=%d",
				fa, genesys, fb)
		}
		if fb/genesys < 10 {
			t.Fatalf("GPU_b only %d× GeneSys footprint", fb/genesys)
		}
	}
}

func TestEnergyIsTimeTimesPower(t *testing.T) {
	w := cartpoleGen()
	for _, s := range TableIII() {
		r := s.Run(w)
		wantInf := r.InferenceSeconds * s.Device.PowerW
		if math.Abs(r.InferenceEnergyJ-wantInf) > 1e-12 {
			t.Fatalf("%s: inference energy %v, want %v", s.Legend, r.InferenceEnergyJ, wantInf)
		}
		if r.InferenceSeconds <= 0 || r.EvolutionSeconds <= 0 {
			t.Fatalf("%s: degenerate times %+v", s.Legend, r)
		}
	}
}

func TestDQNTableII(t *testing.T) {
	d := DefaultDQN()
	// "3M MAC ops in forward pass".
	if d.ForwardMACs() < 2_500_000 || d.ForwardMACs() > 4_000_000 {
		t.Fatalf("DQN forward MACs %d, paper ~3M", d.ForwardMACs())
	}
	// "50 MB for replay memory of 100 entries".
	if d.ReplayBytes() != 100*500*1024 {
		t.Fatalf("replay bytes %d", d.ReplayBytes())
	}
	// "4 MB for parameters and activation" (order of magnitude).
	pa := d.ParamActivationBytes()
	if pa < 2<<20 || pa > 32<<20 {
		t.Fatalf("param+activation bytes %d", pa)
	}

	tab := CompareDQN(d, atariGen())
	// Table II: EA inference ~115K MACs vs DQN 3M (≈26×); EA memory
	// <1MB vs DQN >50MB.
	if tab.EAInferenceMACs >= tab.DQNForwardMACs {
		t.Fatal("EA inference not below DQN forward pass")
	}
	if tab.ComputeRatio() < 5 {
		t.Fatalf("DQN/EA compute ratio only %.1f", tab.ComputeRatio())
	}
	if tab.MemoryRatio() < 10 {
		t.Fatalf("DQN/EA memory ratio only %.1f", tab.MemoryRatio())
	}
	if tab.EAMemoryBytes >= 4<<20 {
		t.Fatalf("EA generation footprint %d ≥ 4 MB", tab.EAMemoryBytes)
	}
}

func TestSpecString(t *testing.T) {
	s, _ := ByLegend("GPU_b")
	if s.String() == "" {
		t.Fatal("empty spec string")
	}
}
