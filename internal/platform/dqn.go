package platform

// DQN is the analytic model behind Table II: the compute and memory
// demands of a Deep Q-Network agent (Mnih et al. 2013) playing Atari,
// compared against the evolutionary algorithm's demands on the same
// task. The paper's Table II is itself an analytic comparison; this
// reproduces it from the architecture definition rather than quoting
// the numbers.
type DQN struct {
	// Layers are the fully-connected layer widths, input first. The
	// default models a RAM-observation DQN: 4 stacked 128-byte frames
	// into three hidden layers down to the action set.
	Layers []int
	// ReplayEntries is the replay-memory capacity the paper quotes
	// (100 entries).
	ReplayEntries int
	// FrameBytes is the stored size of one state in the replay memory.
	// The canonical DQN stores 4 stacked 84×84 luminance frames as
	// float32 for both s and s'.
	FrameBytes int
	// BatchSize is the SGD mini-batch (32 in the paper).
	BatchSize int
}

// DefaultDQN reproduces the Table II configuration.
func DefaultDQN() DQN {
	return DQN{
		// 512 (4×128 RAM bytes) → 2048 → 1024 → 18 actions:
		// ≈ 3.2 M MACs forward, the paper's "3M MAC ops".
		Layers:        []int{512, 2048, 1024, 18},
		ReplayEntries: 100,
		// 2 states × 4 frames × 84×84 × float32 ≈ 226 KB per entry →
		// ≈ 23 MB per 100 entries... the paper charges 50 MB for 100
		// entries, i.e. ~500 KB/entry (s, s', action, reward and the
		// framework's bookkeeping); we use that figure.
		FrameBytes: 500 * 1024,
		BatchSize:  32,
	}
}

// Params returns the weight count (biases folded in).
func (d DQN) Params() int64 {
	var p int64
	for i := 1; i < len(d.Layers); i++ {
		p += int64(d.Layers[i-1])*int64(d.Layers[i]) + int64(d.Layers[i])
	}
	return p
}

// ForwardMACs returns the MACs of one forward pass.
func (d DQN) ForwardMACs() int64 {
	var m int64
	for i := 1; i < len(d.Layers); i++ {
		m += int64(d.Layers[i-1]) * int64(d.Layers[i])
	}
	return m
}

// BackpropGradOps returns the gradient calculations of one backward
// pass: one per activation (deltas) plus the output-layer terms —
// the "gradient calculations in BP" row of Table II (weight-gradient
// MACs are charged separately as compute).
func (d DQN) BackpropGradOps() int64 {
	var g int64
	for i := 1; i < len(d.Layers); i++ {
		g += int64(d.Layers[i])
	}
	// Delta propagation per non-output layer ≈ fan-out MACs.
	for i := 1; i < len(d.Layers)-1; i++ {
		g += int64(d.Layers[i]) * int64(d.Layers[i+1])
	}
	return g
}

// ReplayBytes returns the replay-memory footprint.
func (d DQN) ReplayBytes() int64 {
	return int64(d.ReplayEntries) * int64(d.FrameBytes)
}

// ParamActivationBytes returns parameter plus activation storage for a
// mini-batch (float32), the paper's "4 MB for parameters and activation
// given mini-batch size of 32".
func (d DQN) ParamActivationBytes() int64 {
	act := int64(0)
	for _, l := range d.Layers {
		act += int64(l)
	}
	return d.Params()*4 + act*int64(d.BatchSize)*4
}

// TableII compares the DQN model against measured EA behaviour on the
// same task.
type TableII struct {
	DQNForwardMACs int64
	DQNGradOps     int64
	DQNReplayBytes int64
	DQNParamBytes  int64

	EAInferenceMACs int64
	EAGeneOps       int64
	EAMemoryBytes   int64
}

// ComputeRatio is DQN forward+backward ops over EA inference+evolution
// ops.
func (t TableII) ComputeRatio() float64 {
	ea := t.EAInferenceMACs + t.EAGeneOps
	if ea == 0 {
		return 0
	}
	return float64(t.DQNForwardMACs+t.DQNGradOps) / float64(ea)
}

// MemoryRatio is DQN memory over EA memory.
func (t TableII) MemoryRatio() float64 {
	if t.EAMemoryBytes == 0 {
		return 0
	}
	return float64(t.DQNReplayBytes+t.DQNParamBytes) / float64(t.EAMemoryBytes)
}

// CompareDQN builds Table II from the DQN model and an EA generation's
// measured per-step work: EA inference MACs are per environment step
// (matching DQN's per-step forward pass), gene ops are the per-
// generation reproduction total amortized per step, and memory is the
// full population.
func CompareDQN(d DQN, w GenWorkload) TableII {
	t := TableII{
		DQNForwardMACs: d.ForwardMACs(),
		DQNGradOps:     d.BackpropGradOps(),
		DQNReplayBytes: d.ReplayBytes(),
		DQNParamBytes:  d.ParamActivationBytes(),
		EAMemoryBytes:  int64(w.TotalGenes) * 8,
		EAGeneOps:      w.GeneOps,
	}
	if w.EnvSteps > 0 {
		// Per-step inference MACs of one genome (DQN also acts one
		// policy per step).
		t.EAInferenceMACs = w.InferenceMACs / w.EnvSteps
	}
	return t
}
