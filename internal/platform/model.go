package platform

import "math"

// GenWorkload is the per-generation activity a platform is charged for,
// extracted from a real evolution run (package evolve) so every
// platform — and the GeneSys model — prices exactly the same work.
type GenWorkload struct {
	// Population is the genome count.
	Population int
	// GeneOps is the crossover+mutation gene-op total of reproduction.
	GeneOps int64
	// TotalGenes is the population's gene count (×8 B = genome bytes).
	TotalGenes int
	// EnvSteps is the total environment steps across the population.
	EnvSteps int64
	// MaxSteps is the longest episode (the number of lock-step
	// inference rounds a PLP implementation executes).
	MaxSteps int
	// InferenceMACs is the useful MAC total of the evaluation phase.
	InferenceMACs int64
	// VertexUpdates is the vertex-evaluation total.
	VertexUpdates int64
	// ObsSize and ActSize are the per-step transfer widths.
	ObsSize, ActSize int
	// MeanNodes and MaxNodes describe genome vertex counts (sparse
	// tensor sizing for the BSP+PLP GPU implementation).
	MeanNodes, MaxNodes int
	// MaxNodeID is the largest node id in the population. NEAT never
	// reuses ids, so the uncompacted tensors of the BSP+PLP GPU
	// implementation — which index by node id — are padded to this
	// dimension, far beyond any genome's live node count. This is what
	// makes the GPU_b footprint ~100× GeneSys's (Fig. 10d).
	MaxNodeID int
}

// sparseDim is the padded tensor dimension of the BSP+PLP GPU
// implementation.
func (w GenWorkload) sparseDim() float64 {
	if w.MaxNodeID > w.MaxNodes {
		return float64(w.MaxNodeID)
	}
	return float64(w.MaxNodes)
}

// meanGenomeGenes is the average genes per genome.
func (w GenWorkload) meanGenomeGenes() float64 {
	if w.Population == 0 {
		return 0
	}
	return float64(w.TotalGenes) / float64(w.Population)
}

// Report prices one generation on one platform.
type Report struct {
	Legend string

	InferenceSeconds float64
	EvolutionSeconds float64
	InferenceEnergyJ float64
	EvolutionEnergyJ float64

	// Inference time split (Fig. 10a/b): host→device copies,
	// device→host copies, and kernel execution. Zero on CPUs.
	MemcpyHtoDSeconds float64
	MemcpyDtoHSeconds float64
	KernelSeconds     float64

	// FootprintBytes is the device-resident working set (Fig. 10d).
	FootprintBytes int64
}

// MemcpyFraction is the share of inference time spent in transfers —
// ~70% for GPU_a and ~20% for GPU_b in the paper.
func (r Report) MemcpyFraction() float64 {
	if r.InferenceSeconds == 0 {
		return 0
	}
	return (r.MemcpyHtoDSeconds + r.MemcpyDtoHSeconds) / r.InferenceSeconds
}

// Run prices the generation on this configuration.
func (s Spec) Run(w GenWorkload) Report {
	r := Report{Legend: s.Legend}
	if s.Device.IsGPU {
		s.gpuInference(w, &r)
	} else {
		s.cpuInference(w, &r)
	}
	s.evolution(w, &r)
	r.InferenceEnergyJ = r.InferenceSeconds * s.Device.PowerW
	r.EvolutionEnergyJ = r.EvolutionSeconds * s.Device.PowerW
	return r
}

// cpuInference charges the software DAG evaluation; PLP divides by the
// measured multithreading speedup.
func (s Spec) cpuInference(w GenWorkload, r *Report) {
	d := s.Device
	ns := float64(w.InferenceMACs)*d.MACNS + float64(w.VertexUpdates)*d.VertexNS
	if s.Inference == PLP {
		speedup := float64(d.Threads) * d.ThreadEff
		ns /= speedup
	}
	r.InferenceSeconds = ns * 1e-9
	// Working set: one compact network at a time per thread.
	r.FootprintBytes = int64(w.meanGenomeGenes()) * 8
	if s.Inference == PLP {
		r.FootprintBytes *= int64(s.Device.Threads)
	}
}

// gpuInference charges the two GPU implementations of Section VI-B.
func (s Spec) gpuInference(w GenWorkload, r *Report) {
	d := s.Device
	switch s.Inference {
	case BSP:
		// GPU_a: one genome at a time. Per genome-step: host-side
		// compaction of the input vector, HtoD of the compact
		// vectors, a kernel over that genome's vertices, DtoH of the
		// outputs. The per-transfer latencies dominate for the tiny
		// matrices NEAT produces — the 70%-memcpy profile of Fig. 10a.
		perStepMACs := 0.0
		if w.EnvSteps > 0 {
			perStepMACs = float64(w.InferenceMACs) / float64(w.EnvSteps)
		}
		vecBytes := float64(w.MeanNodes) * 4
		htod := d.MemcpyLatUS*1e-6 + vecBytes/(d.MemcpyGBps*1e9)
		dtoh := d.MemcpyLatUS*1e-6 + float64(w.ActSize)*4/(d.MemcpyGBps*1e9)
		kernel := d.KernelLaunchUS*1e-6 + perStepMACs*d.GPUMACNS*1e-9
		// Serial host-side packing of the ready node values into the
		// input vector, per genome-step.
		compaction := float64(w.MeanNodes) * d.CompactionNS * 1e-9

		n := float64(w.EnvSteps) // one of each per genome-step
		r.MemcpyHtoDSeconds = htod * n
		r.MemcpyDtoHSeconds = dtoh * n
		r.KernelSeconds = (kernel + compaction) * n
		// Device holds one genome's compact matrices at a time.
		r.FootprintBytes = int64((w.meanGenomeGenes() + float64(w.MeanNodes)) * 4)

	case BSPPLP:
		// GPU_b: all genomes' vertices in parallel. Inputs and weights
		// can no longer be compacted, so the device holds tensors
		// padded to the node-id space for the whole population (the
		// 100× footprint of Fig. 10d) and the memory-bound kernels
		// multiply through the zeros. Per lock-step round: batched
		// HtoD of all observations, one kernel, batched DtoH of all
		// actions.
		dim := w.sparseDim()
		padded := float64(w.Population) * dim * dim
		rounds := float64(w.MaxSteps)
		obsBytes := float64(w.Population*w.ObsSize) * 4
		actBytes := float64(w.Population*w.ActSize) * 4
		htod := d.MemcpyLatUS*1e-6 + obsBytes/(d.MemcpyGBps*1e9)
		dtoh := d.MemcpyLatUS*1e-6 + actBytes/(d.MemcpyGBps*1e9)
		kernel := d.KernelLaunchUS*1e-6 + padded*d.GPUSparseMACNS*1e-9

		r.MemcpyHtoDSeconds = htod * rounds
		r.MemcpyDtoHSeconds = dtoh * rounds
		r.KernelSeconds = kernel * rounds
		// Weights shipped once per generation.
		weightBytes := padded * 4
		r.MemcpyHtoDSeconds += d.MemcpyLatUS*1e-6 + weightBytes/(d.MemcpyGBps*1e9)
		// Weights + input/activation tensors resident.
		r.FootprintBytes = int64(weightBytes * 2)
	}
	r.InferenceSeconds = r.MemcpyHtoDSeconds + r.MemcpyDtoHSeconds + r.KernelSeconds
}

// evolution charges reproduction.
func (s Spec) evolution(w GenWorkload, r *Report) {
	d := s.Device
	switch {
	case !d.IsGPU:
		// Software reproduction is serial on the CPUs (Table III).
		r.EvolutionSeconds = float64(w.GeneOps) * d.GeneOpNS * 1e-9
	default:
		// PLP on the GPU: ship the parent genomes, run the
		// reproduction kernels, ship the children back. Gene ops are
		// branchy and divergent, so the effective rate is far below
		// the device's MAC throughput.
		genomeBytes := float64(w.TotalGenes) * 8
		copyTime := 2 * (d.MemcpyLatUS*1e-6 + genomeBytes/(d.MemcpyGBps*1e9))
		kernels := math.Ceil(float64(w.Population) / 1024) // one block per child
		kernel := kernels*d.KernelLaunchUS*1e-6 +
			float64(w.GeneOps)*d.GPUGeneOpNS*1e-9
		r.EvolutionSeconds = copyTime + kernel
	}
}
