package env

import (
	"math"

	"repro/internal/rng"
)

// CartPole is the CartPole-v0 task: balance an inverted pendulum on a
// cart driven left or right (Table I). Four-float observation
// (position, velocity, angle, angular velocity); one binary action
// decoded from a single network output (>0.5 pushes right). Reward is
// +1 per surviving step; the episode ends when the pole tips past 12°,
// the cart leaves ±2.4, or 200 steps elapse.
//
// Dynamics follow Barto, Sutton & Anderson (1983) exactly as the gym
// implementation does (Euler integration, τ = 0.02 s).
type CartPole struct {
	x, xDot, theta, thetaDot float64
	steps                    int
	rnd                      *rng.XorWow
	obs                      [4]float64
}

const (
	cpGravity      = 9.8
	cpMassCart     = 1.0
	cpMassPole     = 0.1
	cpTotalMass    = cpMassCart + cpMassPole
	cpLength       = 0.5 // half the pole length
	cpPoleMassLen  = cpMassPole * cpLength
	cpForceMag     = 10.0
	cpTau          = 0.02
	cpThetaLimit   = 12 * math.Pi / 180
	cpXLimit       = 2.4
	cartPoleBudget = 200
)

func init() { register("cartpole", func() Env { return &CartPole{rnd: rng.New(0)} }) }

// Name implements Env.
func (c *CartPole) Name() string { return "cartpole" }

// ObservationSize implements Env.
func (c *CartPole) ObservationSize() int { return 4 }

// ActionSize implements Env: one binary output per Table I.
func (c *CartPole) ActionSize() int { return 1 }

// MaxSteps implements Env.
func (c *CartPole) MaxSteps() int { return cartPoleBudget }

// Reset implements Env: state uniform in ±0.05 as in gym.
func (c *CartPole) Reset(seed uint64) []float64 {
	c.rnd.Seed(seed)
	c.x = c.rnd.Range(-0.05, 0.05)
	c.xDot = c.rnd.Range(-0.05, 0.05)
	c.theta = c.rnd.Range(-0.05, 0.05)
	c.thetaDot = c.rnd.Range(-0.05, 0.05)
	c.steps = 0
	return c.observe()
}

func (c *CartPole) observe() []float64 {
	c.obs = [4]float64{c.x, c.xDot, c.theta, c.thetaDot}
	return c.obs[:]
}

// Step implements Env.
func (c *CartPole) Step(action []float64) ([]float64, float64, bool) {
	force := -cpForceMag
	if len(action) > 0 && action[0] > 0.5 {
		force = cpForceMag
	}
	cosT, sinT := math.Cos(c.theta), math.Sin(c.theta)
	temp := (force + cpPoleMassLen*c.thetaDot*c.thetaDot*sinT) / cpTotalMass
	thetaAcc := (cpGravity*sinT - cosT*temp) /
		(cpLength * (4.0/3.0 - cpMassPole*cosT*cosT/cpTotalMass))
	xAcc := temp - cpPoleMassLen*thetaAcc*cosT/cpTotalMass

	c.x += cpTau * c.xDot
	c.xDot += cpTau * xAcc
	c.theta += cpTau * c.thetaDot
	c.thetaDot += cpTau * thetaAcc
	c.steps++

	done := c.x < -cpXLimit || c.x > cpXLimit ||
		c.theta < -cpThetaLimit || c.theta > cpThetaLimit ||
		c.steps >= cartPoleBudget
	return c.observe(), 1, done
}
