// Package env provides the learning environments of Table I in pure Go.
//
// The paper evaluates GeneSys on a suite of OpenAI gym tasks. The gym
// ecosystem is Python; this package rebuilds the classic-control
// environments from their published dynamics equations and substitutes
// deterministic synthetic "RAM game" machines for the Atari titles (see
// DESIGN.md for the substitution argument). All environments implement
// the same Env interface the evaluation loop drives, matching the
// state→inference→action→reward cycle of the GeneSys walkthrough
// (steps 2–5).
package env

import (
	"fmt"
	"sort"
)

// Env is one episodic learning task.
//
// Reset must be called before the first Step; it reseeds the
// environment's private randomness so that population-level parallel
// rollouts are reproducible. Step consumes the raw network output
// vector (each environment documents how it decodes actions from it)
// and returns the new observation, the step reward, and whether the
// episode ended.
type Env interface {
	// Name is the workload identifier used throughout the experiments,
	// e.g. "cartpole".
	Name() string
	// ObservationSize is the input width of the policy network.
	ObservationSize() int
	// ActionSize is the output width of the policy network.
	ActionSize() int
	// MaxSteps bounds the episode length.
	MaxSteps() int
	// Reset starts a new episode and returns the initial observation.
	Reset(seed uint64) []float64
	// Step advances one timestep on the raw policy output.
	Step(action []float64) (obs []float64, reward float64, done bool)
}

// factories registers constructors by workload name.
var factories = map[string]func() Env{}

// register installs a constructor; called from each environment's file.
func register(name string, f func() Env) { factories[name] = f }

// New constructs the named environment.
func New(name string) (Env, error) {
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("env: unknown environment %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists the registered environments in sorted order.
func Names() []string {
	out := make([]string, 0, len(factories))
	for n := range factories {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// argmax returns the index of the largest element — the discrete-action
// decode shared by several environments.
func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	_ = xs[best]
	return best
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
