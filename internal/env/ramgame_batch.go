package env

import "repro/internal/rng"

// ramGameBatch is the native struct-of-arrays RAM machine: per-lane
// registers, counters, and RNG streams in parallel arrays, advanced in
// one flat loop. Each lane executes the exact statement sequence of
// RAMGame.Step (same mixing, same graded reward, same RNG draws), so a
// lane is bit-equal to a scalar RAMGame with the same seed and actions.
type ramGameBatch struct {
	title     string
	actions   int
	threatIdx int
	scoreIdx  int
	livesIdx  int
	budget    int
	width     int

	ram    [][128]byte
	score  []int
	lives  []int
	misses []int
	steps  []int
	rnd    []rng.XorWow
}

func init() {
	for name := range ramTitles {
		name := name
		registerBatch(name, func(width int) Batch { return newRAMGameBatch(name, width) })
	}
}

func newRAMGameBatch(title string, width int) *ramGameBatch {
	t := ramTitles[title]
	return &ramGameBatch{
		title:     title,
		actions:   t.actions,
		threatIdx: t.threatIdx,
		scoreIdx:  126,
		livesIdx:  127,
		budget:    t.budget,
		width:     width,
		ram:       make([][128]byte, width),
		score:     make([]int, width),
		lives:     make([]int, width),
		misses:    make([]int, width),
		steps:     make([]int, width),
		rnd:       make([]rng.XorWow, width),
	}
}

func (b *ramGameBatch) Name() string         { return b.title }
func (b *ramGameBatch) ObservationSize() int { return 128 }
func (b *ramGameBatch) ActionSize() int      { return b.actions }
func (b *ramGameBatch) MaxSteps() int        { return b.budget }
func (b *ramGameBatch) Width() int           { return b.width }
func (b *ramGameBatch) LaneEnv(int) Env      { return nil }

func (b *ramGameBatch) syncStatusCells(lane int) {
	b.ram[lane][b.scoreIdx] = byte(b.score[lane])
	b.ram[lane][b.livesIdx] = byte(b.lives[lane])
}

func (b *ramGameBatch) observe(lane int, obs []float64) {
	w := b.width
	for i, v := range b.ram[lane] {
		obs[i*w+lane] = float64(v) / 255
	}
}

func (b *ramGameBatch) ResetLane(lane int, seed uint64, obs []float64) {
	r := &b.rnd[lane]
	r.Seed(seed ^ uint64(len(b.title))<<32)
	for i := range b.ram[lane] {
		b.ram[lane][i] = r.Byte()
	}
	b.score[lane] = 0
	b.lives[lane] = 3
	b.misses[lane] = 0
	b.steps[lane] = 0
	b.syncStatusCells(lane)
	b.observe(lane, obs)
}

// laneArgmax decodes one lane's action column with argmax's exact
// comparison order (first strict maximum wins).
func (b *ramGameBatch) laneArgmax(actions []float64, lane int) int {
	w := b.width
	best := 0
	for i := 1; i < b.actions; i++ {
		if actions[i*w+lane] > actions[best*w+lane] {
			best = i
		}
	}
	return best
}

func (b *ramGameBatch) StepAll(obs, rewards []float64, done []bool, actions []float64, active int) {
	for lane := 0; lane < active; lane++ {
		ram := &b.ram[lane]
		want := int(ram[b.threatIdx]) * b.actions / 256
		got := b.laneArgmax(actions, lane)

		reward := 0.0
		switch {
		case got == want:
			b.score[lane]++
			b.misses[lane] = 0
			reward = 1
		case got == want-1 || got == want+1:
			b.misses[lane] = 0
			reward = 0.25
		default:
			b.misses[lane]++
			if b.misses[lane] >= 4 {
				b.lives[lane]--
				b.misses[lane] = 0
				reward = -1
			}
		}

		for i := 0; i < b.scoreIdx; i++ {
			v := ram[i]
			v ^= v << 3
			v ^= v >> 5
			ram[i] = v + byte(i) + byte(b.steps[lane])
		}
		ram[b.threatIdx] = b.rnd[lane].Byte()
		b.steps[lane]++
		b.syncStatusCells(lane)

		done[lane] = b.lives[lane] <= 0 || b.steps[lane] >= b.budget
		rewards[lane] = reward
		b.observe(lane, obs)
	}
}

func (b *ramGameBatch) SwapLanes(i, j int) {
	b.ram[i], b.ram[j] = b.ram[j], b.ram[i]
	b.score[i], b.score[j] = b.score[j], b.score[i]
	b.lives[i], b.lives[j] = b.lives[j], b.lives[i]
	b.misses[i], b.misses[j] = b.misses[j], b.misses[i]
	b.steps[i], b.steps[j] = b.steps[j], b.steps[i]
	b.rnd[i], b.rnd[j] = b.rnd[j], b.rnd[i]
}
