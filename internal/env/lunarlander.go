package env

import (
	"math"

	"repro/internal/rng"
)

// LunarLander is a from-scratch port of the LunarLander-v2 task: guide
// a module to a soft touchdown on a landing pad by firing its main and
// side thrusters (Table I). Eight-float observation (position,
// velocity, angle, angular velocity, two leg-contact flags); four
// discrete actions (coast / left thruster / main thruster / right
// thruster) decoded by argmax over four network outputs.
//
// The gym original runs on Box2D. This port integrates the same rigid
// body (position, velocity, attitude) with the same thrust/gravity
// magnitudes and reward shaping, but replaces contact resolution with
// an analytic flat-ground + pad model: what the policy experiences —
// the shaping gradients toward the pad and the crash/land outcomes —
// is preserved, which is what drives the evolution behaviour the paper
// characterizes.
type LunarLander struct {
	x, y       float64 // position, pad at origin, units ~ gym's viewport halves
	vx, vy     float64
	angle, vA  float64
	leg1, leg2 bool
	steps      int
	crashed    bool
	landed     bool
	awake      bool
	rnd        *rng.XorWow
	obs        [8]float64
}

const (
	llGravity    = -1.63 // per-step² units tuned to gym's scaled dynamics
	llMainThrust = 3.5   // main engine acceleration
	llSideThrust = 0.6   // side engine linear acceleration
	llSideTorque = 0.12  // side engine angular acceleration
	llDt         = 0.025 // integration step
	llPadHalf    = 0.2   // landing pad half-width
	llBudget     = 400   // step budget
	llSafeVy     = -0.30 // touchdown speed limit
	llSafeAngle  = 0.25  // touchdown attitude limit (rad)
	llFieldHalf  = 1.0   // playfield half-width
)

func init() { register("lunarlander", func() Env { return &LunarLander{rnd: rng.New(0)} }) }

// Name implements Env.
func (l *LunarLander) Name() string { return "lunarlander" }

// ObservationSize implements Env.
func (l *LunarLander) ObservationSize() int { return 8 }

// ActionSize implements Env.
func (l *LunarLander) ActionSize() int { return 4 }

// MaxSteps implements Env.
func (l *LunarLander) MaxSteps() int { return llBudget }

// Reset implements Env: the lander starts at the top of the field with
// a random lateral push, as in gym.
func (l *LunarLander) Reset(seed uint64) []float64 {
	l.rnd.Seed(seed)
	l.x = l.rnd.Range(-0.3, 0.3)
	l.y = 1.0
	l.vx = l.rnd.Range(-0.3, 0.3)
	l.vy = l.rnd.Range(-0.1, 0)
	l.angle = l.rnd.Range(-0.1, 0.1)
	l.vA = 0
	l.leg1, l.leg2 = false, false
	l.steps = 0
	l.crashed, l.landed = false, false
	l.awake = true
	return l.observe()
}

func (l *LunarLander) observe() []float64 {
	b := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	l.obs = [8]float64{l.x, l.y, l.vx, l.vy, l.angle, l.vA, b(l.leg1), b(l.leg2)}
	return l.obs[:]
}

// shaping is the gym potential function: closer / slower / more upright
// is better; leg contact adds bonuses.
func (l *LunarLander) shaping() float64 {
	s := -100*math.Sqrt(l.x*l.x+l.y*l.y) -
		100*math.Sqrt(l.vx*l.vx+l.vy*l.vy) -
		100*math.Abs(l.angle)
	if l.leg1 {
		s += 10
	}
	if l.leg2 {
		s += 10
	}
	return s
}

// Step implements Env.
func (l *LunarLander) Step(action []float64) ([]float64, float64, bool) {
	if !l.awake {
		return l.observe(), 0, true
	}
	prev := l.shaping()
	a := argmax(action) // 0 coast, 1 left, 2 main, 3 right
	fuel := 0.0

	cosA, sinA := math.Cos(l.angle), math.Sin(l.angle)
	switch a {
	case 1: // left thruster pushes right and rotates
		l.vx += llSideThrust * cosA * llDt
		l.vA -= llSideTorque
		fuel = 0.03
	case 2: // main engine thrusts along body axis
		l.vx += -llMainThrust * sinA * llDt
		l.vy += llMainThrust * cosA * llDt
		fuel = 0.3
	case 3:
		l.vx += -llSideThrust * cosA * llDt
		l.vA += llSideTorque
		fuel = 0.03
	}
	l.vy += llGravity * llDt
	l.x += l.vx * llDt
	l.y += l.vy * llDt
	l.angle += l.vA * llDt
	l.vA *= 0.99 // rotational damping
	l.steps++

	reward := 0.0
	// Ground interaction.
	if l.y <= 0 {
		l.y = 0
		onPad := math.Abs(l.x) <= llPadHalf
		soft := l.vy >= llSafeVy && math.Abs(l.angle) <= llSafeAngle
		if onPad && soft {
			l.leg1, l.leg2 = true, true
			// Settle: zero velocities; landed when still.
			l.vx, l.vy, l.vA = 0, 0, 0
			l.landed = true
			l.awake = false
			reward += 100
		} else {
			l.crashed = true
			l.awake = false
			reward -= 100
		}
	}
	// Out of the playfield counts as a crash.
	if math.Abs(l.x) > llFieldHalf || l.y > 1.5 {
		l.crashed = true
		l.awake = false
		reward -= 100
	}

	reward += l.shaping() - prev
	reward -= fuel
	done := !l.awake || l.steps >= llBudget
	return l.observe(), reward, done
}

// Landed reports a successful touchdown.
func (l *LunarLander) Landed() bool { return l.landed }

// Crashed reports a crash or flyaway.
func (l *LunarLander) Crashed() bool { return l.crashed }
