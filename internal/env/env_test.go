package env

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// allEnvNames covers the full Table I suite plus the Fig. 2 surrogate.
func allEnvNames() []string { return Names() }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"acrobot", "airraid-ram", "alien-ram", "amidar-ram", "asterix-ram",
		"bipedal", "cartpole", "lunarlander", "mario", "mountaincar",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := New("pong"); err == nil {
		t.Fatal("unknown env accepted")
	}
}

// TestEnvContract drives every environment through the generic
// contract: observation widths stable, episodes terminate within
// MaxSteps, rewards finite, Reset reproducible.
func TestEnvContract(t *testing.T) {
	for _, name := range allEnvNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			if e.Name() != name {
				t.Fatalf("Name() = %q", e.Name())
			}
			if e.ObservationSize() <= 0 || e.ActionSize() <= 0 || e.MaxSteps() <= 0 {
				t.Fatalf("degenerate dimensions: obs=%d act=%d steps=%d",
					e.ObservationSize(), e.ActionSize(), e.MaxSteps())
			}
			obs := e.Reset(7)
			if len(obs) != e.ObservationSize() {
				t.Fatalf("reset obs width %d, want %d", len(obs), e.ObservationSize())
			}
			action := make([]float64, e.ActionSize())
			steps := 0
			for {
				o, r, done := e.Step(action)
				steps++
				if len(o) != e.ObservationSize() {
					t.Fatalf("step obs width %d", len(o))
				}
				if math.IsNaN(r) || math.IsInf(r, 0) {
					t.Fatalf("non-finite reward %v", r)
				}
				for _, v := range o {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("non-finite observation %v", v)
					}
				}
				if done {
					break
				}
				if steps > e.MaxSteps()+1 {
					t.Fatalf("episode exceeded MaxSteps (%d)", e.MaxSteps())
				}
			}
		})
	}
}

func TestResetDeterminism(t *testing.T) {
	for _, name := range allEnvNames() {
		e1, _ := New(name)
		e2, _ := New(name)
		o1 := e1.Reset(123)
		o2 := e2.Reset(123)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("%s: reset not deterministic at obs[%d]", name, i)
			}
		}
		// Same action sequence must give the same trajectory.
		a := make([]float64, e1.ActionSize())
		for s := 0; s < 20; s++ {
			x1, r1, d1 := e1.Step(a)
			x2, r2, d2 := e2.Step(a)
			if r1 != r2 || d1 != d2 {
				t.Fatalf("%s: trajectory diverged at step %d", name, s)
			}
			for i := range x1 {
				if x1[i] != x2[i] {
					t.Fatalf("%s: obs diverged at step %d", name, s)
				}
			}
			if d1 {
				break
			}
		}
	}
}

func TestCartPoleFallsWithoutControl(t *testing.T) {
	e, _ := New("cartpole")
	e.Reset(1)
	// Constant push-right destabilizes well before the step budget.
	steps := 0
	for {
		_, _, done := e.Step([]float64{1})
		steps++
		if done {
			break
		}
	}
	if steps >= cartPoleBudget {
		t.Fatalf("constant action balanced for %d steps", steps)
	}
}

func TestCartPoleBangBangSurvives(t *testing.T) {
	cp := &CartPole{rnd: newTestRNG()}
	cp.Reset(3)
	// A simple hand policy: push toward the pole's lean.
	steps := 0
	for {
		a := 0.0
		if cp.theta+0.2*cp.thetaDot > 0 {
			a = 1.0
		}
		_, _, done := cp.Step([]float64{a})
		steps++
		if done {
			break
		}
	}
	if steps < cartPoleBudget {
		t.Fatalf("hand policy fell after %d steps", steps)
	}
}

func TestMountainCarMomentumPolicy(t *testing.T) {
	mc := &MountainCar{rnd: newTestRNG()}
	mc.Reset(5)
	// Push in the direction of motion — the classic solution.
	for i := 0; i < mcBudget; i++ {
		a := []float64{0, 0, 0}
		if mc.vel >= 0 {
			a[2] = 1
		} else {
			a[0] = 1
		}
		_, _, done := mc.Step(a)
		if done {
			break
		}
	}
	if !mc.AtGoal() {
		t.Fatalf("momentum policy failed, pos=%v", mc.Position())
	}
}

func TestMountainCarCoastingFails(t *testing.T) {
	mc := &MountainCar{rnd: newTestRNG()}
	mc.Reset(5)
	for i := 0; i < mcBudget; i++ {
		if _, _, done := mc.Step([]float64{0, 1, 0}); done {
			break
		}
	}
	if mc.AtGoal() {
		t.Fatal("coasting reached the goal")
	}
}

func TestAcrobotEnergyPumpRaisesTip(t *testing.T) {
	ac := &Acrobot{rnd: newTestRNG()}
	ac.Reset(7)
	low := ac.TipHeight()
	best := low
	// Torque with the velocity of the first link pumps energy.
	for i := 0; i < acBudget; i++ {
		tq := 1.0
		if ac.dth1 < 0 {
			tq = -1
		}
		_, _, done := ac.Step([]float64{tq})
		if h := ac.TipHeight(); h > best {
			best = h
		}
		if done {
			break
		}
	}
	if best <= low+0.5 {
		t.Fatalf("energy pumping raised tip only %v -> %v", low, best)
	}
}

func TestLunarLanderCrashesUnpowered(t *testing.T) {
	ll := &LunarLander{rnd: newTestRNG()}
	ll.Reset(9)
	for i := 0; i < llBudget; i++ {
		if _, _, done := ll.Step([]float64{1, 0, 0, 0}); done {
			break
		}
	}
	if !ll.Crashed() {
		t.Fatal("free fall did not crash")
	}
	if ll.Landed() {
		t.Fatal("free fall counted as landing")
	}
}

func TestLunarLanderHoverPolicyCanLand(t *testing.T) {
	ll := &LunarLander{rnd: newTestRNG()}
	landed := 0
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		ll.Reset(uint64(trial))
		for i := 0; i < llBudget; i++ {
			// Hand controller: fire main engine when sinking fast,
			// side engines to null attitude and drift.
			a := []float64{1, 0, 0, 0}
			target := 0.15 * ll.angle
			switch {
			case ll.vy < -0.20 && ll.y < 0.8:
				a = []float64{0, 0, 1, 0}
			case ll.angle+0.5*ll.vA > 0.05+target || ll.x+ll.vx > 0.2:
				a = []float64{0, 0, 0, 1}
			case ll.angle+0.5*ll.vA < -0.05-target || ll.x+ll.vx < -0.2:
				a = []float64{0, 1, 0, 0}
			}
			if _, _, done := ll.Step(a); done {
				break
			}
		}
		if ll.Landed() {
			landed++
		}
	}
	if landed == 0 {
		t.Fatal("hand controller never landed in 10 trials")
	}
}

func TestBipedalAlternatingGaitOutrunsConstant(t *testing.T) {
	run := func(policy func(step int) []float64) float64 {
		bw := &Bipedal{rnd: newTestRNG()}
		bw.Reset(3)
		for i := 0; i < bwBudget; i++ {
			if _, _, done := bw.Step(policy(i)); done {
				break
			}
		}
		return bw.Distance()
	}
	constant := run(func(int) []float64 { return []float64{1, 0, 1, 0} })
	alternating := run(func(step int) []float64 {
		phase := math.Sin(float64(step) * 0.3)
		return []float64{phase, 0.2 * phase, -phase, -0.2 * phase}
	})
	if alternating <= constant {
		t.Fatalf("alternating gait (%v) not better than constant torque (%v)",
			alternating, constant)
	}
}

func TestRAMGameActionSizes(t *testing.T) {
	want := map[string]int{
		"airraid-ram": 6, "alien-ram": 18, "asterix-ram": 9, "amidar-ram": 10,
	}
	for name, actions := range want {
		e, _ := New(name)
		if e.ActionSize() != actions {
			t.Errorf("%s: %d actions, want %d", name, e.ActionSize(), actions)
		}
		if e.ObservationSize() != 128 {
			t.Errorf("%s: obs %d, want 128", name, e.ObservationSize())
		}
	}
}

func TestRAMGameOraclePolicyScores(t *testing.T) {
	g := newRAMGame("asterix-ram")
	g.Reset(11)
	var reward float64
	for i := 0; i < g.budget; i++ {
		// Oracle: read the threat cell like a perfect policy would.
		a := make([]float64, g.actions)
		a[g.correctAction()] = 1
		_, r, done := g.Step(a)
		reward += r
		if done {
			break
		}
	}
	if g.Score() < g.budget*9/10 {
		t.Fatalf("oracle policy scored only %d/%d", g.Score(), g.budget)
	}
	if g.Lives() != 3 {
		t.Fatalf("oracle policy lost lives: %d", g.Lives())
	}
}

func TestRAMGameRandomPolicyDies(t *testing.T) {
	g := newRAMGame("alien-ram")
	g.Reset(13)
	a := make([]float64, g.actions) // constant action 0
	steps := 0
	for {
		_, _, done := g.Step(a)
		steps++
		if done {
			break
		}
	}
	if g.Lives() > 0 && steps >= g.budget {
		t.Log("constant policy survived on score; acceptable but unusual")
	}
	if g.Score() >= g.budget/2 {
		t.Fatalf("constant policy scored %d — task is trivial", g.Score())
	}
}

func TestRAMGameStatusCellsExposed(t *testing.T) {
	g := newRAMGame("amidar-ram")
	obs := g.Reset(17)
	if obs[g.livesIdx]*255 != 3 {
		t.Fatalf("lives cell = %v, want 3/255", obs[g.livesIdx])
	}
}

func TestMarioPerfectPolicyFinishes(t *testing.T) {
	m := &Mario{rnd: newTestRNG()}
	m.Reset(19)
	for i := 0; i < marioBudget; i++ {
		a, _ := m.nextObstacles()
		act := []float64{1, 0, 0}
		dist := a.at - m.pos
		if dist < 1.6 && dist > 0 {
			if a.kind == 1 {
				act = []float64{0, 0, 1} // squat
			} else {
				act = []float64{0, 1, 0} // jump
			}
		}
		_, _, done := m.Step(act)
		if done {
			break
		}
	}
	if m.Progress() < 0.95 {
		t.Fatalf("oracle mario reached only %.0f%%", m.Progress()*100)
	}
}

func TestMarioRunnerDies(t *testing.T) {
	m := &Mario{rnd: newTestRNG()}
	m.Reset(19)
	for i := 0; i < marioBudget; i++ {
		if _, _, done := m.Step([]float64{1, 0, 0}); done {
			break
		}
	}
	if !m.dead {
		t.Fatal("never-jumping mario survived the whole level")
	}
}

func newTestRNG() *rng.XorWow { return rng.New(0) }
