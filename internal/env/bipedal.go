package env

import (
	"math"

	"repro/internal/rng"
)

// Bipedal is a simplified stand-in for BipedalWalker (Table I): evolve
// locomotion control for a two-legged hull over gently varying terrain.
// It keeps the interface of the gym task — a 24-float observation
// (hull state, joint angles/speeds, leg contacts and a 10-ray terrain
// lidar) and 4 continuous torque outputs — while replacing the Box2D
// articulated body with a reduced planar model: each leg is a
// hip+knee chain whose foot supports the hull when in stance, and
// forward progress comes from coordinated stance-leg torque, so the
// policy must still discover an alternating gait rather than a single
// constant output.
type Bipedal struct {
	// hull state
	x, vx, y, vy, pitch, vPitch float64
	// joints: hip and knee per leg
	hip, knee, dHip, dKnee [2]float64
	contact                [2]bool
	steps                  int
	fallen                 bool
	terrainSeed            uint64
	rnd                    *rng.XorWow
	obs                    [24]float64
}

const (
	bwDt        = 0.05
	bwBudget    = 600
	bwJointVel  = 3.0  // torque-to-joint-speed gain
	bwStride    = 0.35 // stance-leg drive to hull speed
	bwHullDamp  = 0.90
	bwPitchGain = 0.08
	bwFallPitch = 0.9
	bwLidarLen  = 10
)

func init() { register("bipedal", func() Env { return &Bipedal{rnd: rng.New(0)} }) }

// Name implements Env.
func (b *Bipedal) Name() string { return "bipedal" }

// ObservationSize implements Env.
func (b *Bipedal) ObservationSize() int { return 24 }

// ActionSize implements Env: hip and knee torques for both legs.
func (b *Bipedal) ActionSize() int { return 4 }

// MaxSteps implements Env.
func (b *Bipedal) MaxSteps() int { return bwBudget }

// Reset implements Env.
func (b *Bipedal) Reset(seed uint64) []float64 {
	b.rnd.Seed(seed)
	b.terrainSeed = seed
	b.x, b.vx = 0, 0
	b.y, b.vy = 1, 0
	b.pitch, b.vPitch = b.rnd.Range(-0.05, 0.05), 0
	for i := 0; i < 2; i++ {
		b.hip[i] = b.rnd.Range(-0.2, 0.2)
		b.knee[i] = b.rnd.Range(-0.2, 0.2)
		b.dHip[i], b.dKnee[i] = 0, 0
	}
	b.contact = [2]bool{true, false}
	b.steps = 0
	b.fallen = false
	return b.observe()
}

// terrainHeight is a deterministic rolling ground profile.
func (b *Bipedal) terrainHeight(x float64) float64 {
	s := float64(b.terrainSeed%97) / 97
	return 0.08*math.Sin(0.7*x+6*s) + 0.04*math.Sin(1.9*x+13*s)
}

func (b *Bipedal) observe() []float64 {
	o := b.obs[:0]
	bf := func(v bool) float64 {
		if v {
			return 1
		}
		return 0
	}
	o = append(o, b.pitch, b.vPitch, b.vx, b.vy)
	for i := 0; i < 2; i++ {
		o = append(o, b.hip[i], b.dHip[i], b.knee[i], b.dKnee[i], bf(b.contact[i]))
	}
	// 10-ray forward terrain lidar.
	for r := 0; r < bwLidarLen; r++ {
		ahead := b.x + 0.2*float64(r+1)
		o = append(o, b.terrainHeight(ahead)-b.terrainHeight(b.x))
	}
	copy(b.obs[:], o)
	return b.obs[:]
}

// Step implements Env. Torques move the joints; the stance leg's hip
// torque propels the hull; pitch follows the asymmetry of the leg
// poses and the hull falls when it tips too far.
func (b *Bipedal) Step(action []float64) ([]float64, float64, bool) {
	if b.fallen {
		return b.observe(), 0, true
	}
	var torque [4]float64
	for i := 0; i < 4 && i < len(action); i++ {
		torque[i] = clamp(action[i], -1, 1)
	}
	fuel := 0.0
	for i := 0; i < 2; i++ {
		b.dHip[i] = bwJointVel * torque[2*i]
		b.dKnee[i] = bwJointVel * torque[2*i+1]
		b.hip[i] = clamp(b.hip[i]+b.dHip[i]*bwDt, -1.2, 1.2)
		b.knee[i] = clamp(b.knee[i]+b.dKnee[i]*bwDt, -1.2, 1.2)
		fuel += math.Abs(torque[2*i]) + math.Abs(torque[2*i+1])
	}

	// Stance detection: the lower (more extended) leg carries the hull.
	ext := [2]float64{}
	for i := 0; i < 2; i++ {
		// Foot drop below hip: extended knee and forward hip lengthen
		// the leg.
		ext[i] = math.Cos(b.hip[i]) + math.Cos(b.knee[i])
	}
	stance := 0
	if ext[1] > ext[0] {
		stance = 1
	}
	swing := 1 - stance
	b.contact[stance] = true
	b.contact[swing] = ext[swing] > ext[stance]-0.05

	// Propulsion: stance hip rotating backwards drives the hull
	// forwards; if both legs push the same way the gait stalls (pitch
	// grows), so alternation is required.
	drive := -b.dHip[stance] * bwStride
	b.vx = bwHullDamp*b.vx + drive*bwDt*10
	b.vx = clamp(b.vx, -1.5, 1.5)
	b.x += b.vx * bwDt

	// Pitch follows leg-pose asymmetry and propulsion torque.
	b.vPitch += bwPitchGain * (b.hip[0] + b.hip[1]) * bwDt * 10
	b.vPitch *= 0.95
	b.pitch += b.vPitch * bwDt * 10
	b.steps++

	if math.Abs(b.pitch) > bwFallPitch {
		b.fallen = true
	}
	reward := 10*b.vx*bwDt - 0.003*fuel - 0.05*math.Abs(b.pitch)
	if b.fallen {
		reward -= 100
	}
	done := b.fallen || b.steps >= bwBudget
	return b.observe(), reward, done
}

// Distance returns the hull's forward progress.
func (b *Bipedal) Distance() float64 { return b.x }
