package env

import (
	"math"

	"repro/internal/rng"
)

// MountainCar is the MountainCar-v0 task: drive an underpowered car out
// of a valley by building momentum (Table I). Two-float observation
// (position, velocity); three discrete actions (push left / coast /
// push right) decoded by argmax over three network outputs. Reward is
// −1 per step until the car reaches the right peak at x ≥ 0.5; episode
// budget 200 steps.
//
// Dynamics follow Moore (1990) / the gym implementation.
type MountainCar struct {
	pos, vel float64
	steps    int
	rnd      *rng.XorWow
	obs      [2]float64
}

const (
	mcMinPos   = -1.2
	mcMaxPos   = 0.6
	mcMaxSpeed = 0.07
	mcGoal     = 0.5
	mcForce    = 0.001
	mcGravity  = 0.0025
	mcBudget   = 200
)

func init() { register("mountaincar", func() Env { return &MountainCar{rnd: rng.New(0)} }) }

// Name implements Env.
func (m *MountainCar) Name() string { return "mountaincar" }

// ObservationSize implements Env.
func (m *MountainCar) ObservationSize() int { return 2 }

// ActionSize implements Env.
func (m *MountainCar) ActionSize() int { return 3 }

// MaxSteps implements Env.
func (m *MountainCar) MaxSteps() int { return mcBudget }

// Reset implements Env: position uniform in [-0.6, -0.4), zero velocity.
func (m *MountainCar) Reset(seed uint64) []float64 {
	m.rnd.Seed(seed)
	m.pos = m.rnd.Range(-0.6, -0.4)
	m.vel = 0
	m.steps = 0
	return m.observe()
}

func (m *MountainCar) observe() []float64 {
	m.obs = [2]float64{m.pos, m.vel}
	return m.obs[:]
}

// Step implements Env.
func (m *MountainCar) Step(action []float64) ([]float64, float64, bool) {
	a := argmax(action) // 0 left, 1 coast, 2 right
	m.vel += float64(a-1)*mcForce - math.Cos(3*m.pos)*mcGravity
	m.vel = clamp(m.vel, -mcMaxSpeed, mcMaxSpeed)
	m.pos += m.vel
	m.pos = clamp(m.pos, mcMinPos, mcMaxPos)
	if m.pos <= mcMinPos && m.vel < 0 {
		m.vel = 0
	}
	m.steps++
	done := m.pos >= mcGoal || m.steps >= mcBudget
	return m.observe(), -1, done
}

// AtGoal reports whether the car has reached the flag — used by the
// fitness shaping for this workload.
func (m *MountainCar) AtGoal() bool { return m.pos >= mcGoal }

// Position returns the car's current position (fitness shaping input).
func (m *MountainCar) Position() float64 { return m.pos }
