package env

import "repro/internal/rng"

// Mario is a side-scrolling platformer surrogate used to reproduce the
// paper's motivating Fig. 2 ("evolving NNs to play Mario"). The agent
// runs rightward past pits and blocks; the observation is a compact
// 6-float sensor view (distances/heights of the next two obstacles,
// vertical state), and the three outputs select run / jump / squat.
// Fitness is distance covered, normalized by the level length, so the
// max/average fitness curves of Fig. 2 fall out directly.
type Mario struct {
	pos      float64 // horizontal progress
	vy       float64
	height   float64 // 0 = ground
	squat    bool
	steps    int
	level    []obstacle
	levelLen float64
	dead     bool
	rnd      *rng.XorWow
	obs      [6]float64
}

type obstacle struct {
	at   float64
	kind int // 0 pit (jump over), 1 low bar (squat under), 2 block (jump)
}

const (
	marioBudget  = 500
	marioSpeed   = 0.5
	marioGravity = 0.6
	marioJumpV   = 2.4
	marioLevel   = 120.0
)

func init() { register("mario", func() Env { return &Mario{rnd: rng.New(0)} }) }

// Name implements Env.
func (m *Mario) Name() string { return "mario" }

// ObservationSize implements Env.
func (m *Mario) ObservationSize() int { return 6 }

// ActionSize implements Env: run / jump / squat.
func (m *Mario) ActionSize() int { return 3 }

// MaxSteps implements Env.
func (m *Mario) MaxSteps() int { return marioBudget }

// Reset implements Env: lays out a deterministic obstacle course for
// the seed.
func (m *Mario) Reset(seed uint64) []float64 {
	m.rnd.Seed(seed)
	m.pos, m.vy, m.height = 0, 0, 0
	m.squat, m.dead = false, false
	m.steps = 0
	m.level = m.level[:0]
	at := 6.0
	for at < marioLevel {
		m.level = append(m.level, obstacle{at: at, kind: m.rnd.Intn(3)})
		at += 4 + m.rnd.Range(0, 6)
	}
	m.levelLen = marioLevel
	return m.observe()
}

// nextObstacles returns the two nearest obstacles ahead.
func (m *Mario) nextObstacles() (a, b obstacle) {
	a, b = obstacle{at: m.levelLen + 10}, obstacle{at: m.levelLen + 20}
	found := 0
	for _, o := range m.level {
		if o.at >= m.pos-0.5 {
			if found == 0 {
				a = o
				found++
			} else {
				b = o
				break
			}
		}
	}
	return a, b
}

func (m *Mario) observe() []float64 {
	a, b := m.nextObstacles()
	sq := 0.0
	if m.squat {
		sq = 1
	}
	m.obs = [6]float64{
		clamp((a.at-m.pos)/10, 0, 1), float64(a.kind) / 2,
		clamp((b.at-m.pos)/10, 0, 1), float64(b.kind) / 2,
		m.height / 3, sq,
	}
	return m.obs[:]
}

// Step implements Env.
func (m *Mario) Step(action []float64) ([]float64, float64, bool) {
	if m.dead {
		return m.observe(), 0, true
	}
	a := argmax(action) // 0 run, 1 jump, 2 squat
	m.squat = a == 2 && m.height == 0
	if a == 1 && m.height == 0 {
		m.vy = marioJumpV
	}
	m.vy -= marioGravity
	m.height += m.vy * 0.3
	if m.height <= 0 {
		m.height, m.vy = 0, 0
	}
	prev := m.pos
	m.pos += marioSpeed
	m.steps++

	// Collision with any obstacle crossed this step.
	for _, o := range m.level {
		if o.at > prev && o.at <= m.pos {
			switch o.kind {
			case 0, 2: // pit / block: must be airborne
				if m.height < 0.5 {
					m.dead = true
				}
			case 1: // low bar: must squat (and be grounded)
				if !m.squat || m.height > 0.2 {
					m.dead = true
				}
			}
		}
	}
	reward := (m.pos - prev) / m.levelLen
	if m.dead {
		reward = 0
	}
	done := m.dead || m.pos >= m.levelLen || m.steps >= marioBudget
	return m.observe(), reward, done
}

// Progress returns the normalized distance covered in [0, 1].
func (m *Mario) Progress() float64 { return clamp(m.pos/m.levelLen, 0, 1) }
