package env

import (
	"repro/internal/rng"
	"repro/internal/vmath"
)

// cartPoleBatch is the native struct-of-arrays CartPole: per-lane state
// lives in parallel arrays and StepAll advances every live lane in one
// flat loop. Each lane executes the exact statement sequence of
// CartPole.Step — same expressions, same order, its own XorWow stream —
// so a lane is bit-equal to a scalar CartPole driven with the same
// seed and actions. The pole-angle sin/cos of all lanes are computed
// up front by the fused vector kernel, which is bit-identical to the
// math.Sin/math.Cos calls the scalar stepper makes.
type cartPoleBatch struct {
	width                    int
	x, xDot, theta, thetaDot []float64
	sinT, cosT               []float64 // per-step trig scratch
	steps                    []int
	rnd                      []rng.XorWow
}

func init() {
	registerBatch("cartpole", func(width int) Batch {
		b := &cartPoleBatch{
			width:    width,
			x:        make([]float64, width),
			xDot:     make([]float64, width),
			theta:    make([]float64, width),
			thetaDot: make([]float64, width),
			sinT:     make([]float64, width),
			cosT:     make([]float64, width),
			steps:    make([]int, width),
			rnd:      make([]rng.XorWow, width),
		}
		// Seed angles with a harmless in-window value so never-loaded
		// lanes can serve as vector padding in StepAll (an exact zero
		// would push the whole 4-group to the scalar trig fallback).
		for i := range b.theta {
			b.theta[i] = 0.01
		}
		return b
	})
}

func (b *cartPoleBatch) Name() string         { return "cartpole" }
func (b *cartPoleBatch) ObservationSize() int { return 4 }
func (b *cartPoleBatch) ActionSize() int      { return 1 }
func (b *cartPoleBatch) MaxSteps() int        { return cartPoleBudget }
func (b *cartPoleBatch) Width() int           { return b.width }
func (b *cartPoleBatch) LaneEnv(int) Env      { return nil }

func (b *cartPoleBatch) observe(lane int, obs []float64) {
	w := b.width
	obs[0*w+lane] = b.x[lane]
	obs[1*w+lane] = b.xDot[lane]
	obs[2*w+lane] = b.theta[lane]
	obs[3*w+lane] = b.thetaDot[lane]
}

func (b *cartPoleBatch) ResetLane(lane int, seed uint64, obs []float64) {
	r := &b.rnd[lane]
	r.Seed(seed)
	b.x[lane] = r.Range(-0.05, 0.05)
	b.xDot[lane] = r.Range(-0.05, 0.05)
	b.theta[lane] = r.Range(-0.05, 0.05)
	b.thetaDot[lane] = r.Range(-0.05, 0.05)
	b.steps[lane] = 0
	b.observe(lane, obs)
}

func (b *cartPoleBatch) StepAll(obs, rewards []float64, done []bool, actions []float64, active int) {
	// Active-prefix reslices: one bounds check each here buys a
	// check-free inner loop, and the per-row observation slices turn
	// the column-major observe() writes into dense row writes.
	w := b.width
	xs, xDs := b.x[:active], b.xDot[:active]
	ths, thDs := b.theta[:active], b.thetaDot[:active]
	sts := b.steps[:active]
	act := actions[:active]
	rw, dn := rewards[:active], done[:active]
	obs0 := obs[0*w : 0*w+active]
	obs1 := obs[1*w : 1*w+active]
	obs2 := obs[2*w : 2*w+active]
	obs3 := obs[3*w : 3*w+active]
	// Pad the trig call to the 4-lane vector quantum: pad lanes hold a
	// retired lane's last angle or the constructor's in-window seed
	// value, their results are never read, and an out-of-window pad
	// only costs the scalar fallback (still bit-exact).
	r4 := (active + 3) &^ 3
	if r4 > w {
		r4 = w
	}
	vmath.SinCosSlice(b.sinT[:r4], b.cosT[:r4], b.theta[:r4])
	sins, coss := b.sinT[:active], b.cosT[:active]
	for lane := range xs {
		force := -cpForceMag
		if act[lane] > 0.5 { // action plane row 0
			force = cpForceMag
		}
		theta, thetaDot := ths[lane], thDs[lane]
		cosT, sinT := coss[lane], sins[lane]
		temp := (force + cpPoleMassLen*thetaDot*thetaDot*sinT) / cpTotalMass
		thetaAcc := (cpGravity*sinT - cosT*temp) /
			(cpLength * (4.0/3.0 - cpMassPole*cosT*cosT/cpTotalMass))
		xAcc := temp - cpPoleMassLen*thetaAcc*cosT/cpTotalMass

		x := xs[lane] + cpTau*xDs[lane]
		xDot := xDs[lane] + cpTau*xAcc
		theta += cpTau * thetaDot
		thetaDot += cpTau * thetaAcc
		xs[lane], xDs[lane], ths[lane], thDs[lane] = x, xDot, theta, thetaDot
		sts[lane]++

		dn[lane] = x < -cpXLimit || x > cpXLimit ||
			theta < -cpThetaLimit || theta > cpThetaLimit ||
			sts[lane] >= cartPoleBudget
		rw[lane] = 1
		obs0[lane], obs1[lane], obs2[lane], obs3[lane] = x, xDot, theta, thetaDot
	}
}

func (b *cartPoleBatch) SwapLanes(i, j int) {
	b.x[i], b.x[j] = b.x[j], b.x[i]
	b.xDot[i], b.xDot[j] = b.xDot[j], b.xDot[i]
	b.theta[i], b.theta[j] = b.theta[j], b.theta[i]
	b.thetaDot[i], b.thetaDot[j] = b.thetaDot[j], b.thetaDot[i]
	b.steps[i], b.steps[j] = b.steps[j], b.steps[i]
	b.rnd[i], b.rnd[j] = b.rnd[j], b.rnd[i]
}
