package env

import (
	"math"

	"repro/internal/rng"
)

// Acrobot is the two-link underactuated pendulum of Table I: swing the
// tip of a double pendulum above the bar by torquing only the joint
// between the links. Six-float observation (cos/sin of both joint
// angles plus both angular velocities); one continuous action (torque,
// clamped to ±1) per Table I's "one floating point number". Reward is
// −1 per step until the tip exceeds one link-length above the pivot;
// budget 500 steps.
//
// Dynamics are the standard Spong (1995) equations used by gym,
// integrated with RK4 at dt = 0.2 s.
type Acrobot struct {
	th1, th2, dth1, dth2 float64
	steps                int
	rnd                  *rng.XorWow
	obs                  [6]float64
}

const (
	acLinkLen1  = 1.0
	acLinkMass  = 1.0
	acLinkCOM   = 0.5
	acInertia   = 1.0
	acGravity   = 9.8
	acDt        = 0.2
	acMaxVel1   = 4 * math.Pi
	acMaxVel2   = 9 * math.Pi
	acBudget    = 500
	acTorqueMax = 1.0
)

func init() { register("acrobot", func() Env { return &Acrobot{rnd: rng.New(0)} }) }

// Name implements Env.
func (a *Acrobot) Name() string { return "acrobot" }

// ObservationSize implements Env.
func (a *Acrobot) ObservationSize() int { return 6 }

// ActionSize implements Env.
func (a *Acrobot) ActionSize() int { return 1 }

// MaxSteps implements Env.
func (a *Acrobot) MaxSteps() int { return acBudget }

// Reset implements Env: all state uniform in ±0.1.
func (a *Acrobot) Reset(seed uint64) []float64 {
	a.rnd.Seed(seed)
	a.th1 = a.rnd.Range(-0.1, 0.1)
	a.th2 = a.rnd.Range(-0.1, 0.1)
	a.dth1 = a.rnd.Range(-0.1, 0.1)
	a.dth2 = a.rnd.Range(-0.1, 0.1)
	a.steps = 0
	return a.observe()
}

func (a *Acrobot) observe() []float64 {
	a.obs = [6]float64{
		math.Cos(a.th1), math.Sin(a.th1),
		math.Cos(a.th2), math.Sin(a.th2),
		a.dth1, a.dth2,
	}
	return a.obs[:]
}

// dynamics returns the state derivative for the Spong acrobot model.
func acrobotDeriv(s [4]float64, torque float64) [4]float64 {
	th1, th2, dth1, dth2 := s[0], s[1], s[2], s[3]
	m, l1, lc, i, g := acLinkMass, acLinkLen1, acLinkCOM, acInertia, acGravity

	d1 := m*lc*lc + m*(l1*l1+lc*lc+2*l1*lc*math.Cos(th2)) + 2*i
	d2 := m*(lc*lc+l1*lc*math.Cos(th2)) + i
	phi2 := m * lc * g * math.Cos(th1+th2-math.Pi/2)
	phi1 := -m*l1*lc*dth2*dth2*math.Sin(th2) -
		2*m*l1*lc*dth2*dth1*math.Sin(th2) +
		(m*lc+m*l1)*g*math.Cos(th1-math.Pi/2) + phi2

	ddth2 := (torque + d2/d1*phi1 - m*l1*lc*dth1*dth1*math.Sin(th2) - phi2) /
		(m*lc*lc + i - d2*d2/d1)
	ddth1 := -(d2*ddth2 + phi1) / d1
	return [4]float64{dth1, dth2, ddth1, ddth2}
}

// Step implements Env using one RK4 step.
func (a *Acrobot) Step(action []float64) ([]float64, float64, bool) {
	torque := 0.0
	if len(action) > 0 {
		torque = clamp(action[0], -acTorqueMax, acTorqueMax)
	}
	s := [4]float64{a.th1, a.th2, a.dth1, a.dth2}
	k1 := acrobotDeriv(s, torque)
	k2 := acrobotDeriv(addScaled(s, k1, acDt/2), torque)
	k3 := acrobotDeriv(addScaled(s, k2, acDt/2), torque)
	k4 := acrobotDeriv(addScaled(s, k3, acDt), torque)
	for j := 0; j < 4; j++ {
		s[j] += acDt / 6 * (k1[j] + 2*k2[j] + 2*k3[j] + k4[j])
	}
	a.th1 = wrapAngle(s[0])
	a.th2 = wrapAngle(s[1])
	a.dth1 = clamp(s[2], -acMaxVel1, acMaxVel1)
	a.dth2 = clamp(s[3], -acMaxVel2, acMaxVel2)
	a.steps++

	// Terminal when the tip rises one link length above the pivot.
	tip := -math.Cos(a.th1) - math.Cos(a.th2+a.th1)
	done := tip > 1.0 || a.steps >= acBudget
	return a.observe(), -1, done
}

// TipHeight returns the tip elevation (fitness shaping input).
func (a *Acrobot) TipHeight() float64 {
	return -math.Cos(a.th1) - math.Cos(a.th2+a.th1)
}

func addScaled(s, d [4]float64, h float64) [4]float64 {
	for j := 0; j < 4; j++ {
		s[j] += h * d[j]
	}
	return s
}

func wrapAngle(th float64) float64 {
	for th > math.Pi {
		th -= 2 * math.Pi
	}
	for th < -math.Pi {
		th += 2 * math.Pi
	}
	return th
}
