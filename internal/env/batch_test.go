package env

import (
	"math"
	"math/rand"
	"testing"
)

// swapCols exchanges two lane columns of a plane with the given row
// count — what the batch scheduler does to keep caller-owned planes
// aligned with SwapLanes.
func swapCols(plane []float64, width, rows, a, b int) {
	for r := 0; r < rows; r++ {
		plane[r*width+a], plane[r*width+b] = plane[r*width+b], plane[r*width+a]
	}
}

// driveBatchVsScalar locks a Batch against per-lane scalar envs: same
// seeds, same action columns, bit-compared observations, rewards, and
// done flags every step, with finished lanes compacted out of the
// active prefix via SwapLanes (exercising the scheduler's retire path).
func driveBatchVsScalar(t *testing.T, name string, mk func(width int) Batch, seedBase uint64) {
	t.Helper()
	const width = 5
	b := mk(width)
	scalars := make([]Env, width)
	for i := range scalars {
		e, err := New(name)
		if err != nil {
			t.Fatal(err)
		}
		scalars[i] = e
	}
	obsRows, actRows := b.ObservationSize(), b.ActionSize()
	obs := make([]float64, obsRows*width)
	rewards := make([]float64, width)
	done := make([]bool, width)
	actions := make([]float64, actRows*width)
	scalarObs := make([][]float64, width)
	act := make([]float64, actRows)

	for lane := 0; lane < width; lane++ {
		seed := seedBase + uint64(lane)*977
		b.ResetLane(lane, seed, obs)
		scalarObs[lane] = append([]float64(nil), scalars[lane].Reset(seed)...)
	}
	compareObs := func(active int, step int) {
		t.Helper()
		for lane := 0; lane < active; lane++ {
			for r := 0; r < obsRows; r++ {
				got, want := obs[r*width+lane], scalarObs[lane][r]
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("step %d lane %d obs[%d]: batch %v != scalar %v", step, lane, r, got, want)
				}
			}
		}
	}
	compareObs(width, -1)

	rnd := rand.New(rand.NewSource(int64(seedBase)))
	active := width
	for step := 0; active > 0 && step < b.MaxSteps()+5; step++ {
		for i := 0; i < actRows*width; i++ {
			actions[i] = rnd.Float64()*2 - 0.5
		}
		b.StepAll(obs, rewards, done, actions, active)
		for lane := 0; lane < active; lane++ {
			for r := 0; r < actRows; r++ {
				act[r] = actions[r*width+lane]
			}
			o, rw, d := scalars[lane].Step(act)
			copy(scalarObs[lane], o)
			if math.Float64bits(rw) != math.Float64bits(rewards[lane]) {
				t.Fatalf("step %d lane %d: batch reward %v != scalar %v", step, lane, rewards[lane], rw)
			}
			if d != done[lane] {
				t.Fatalf("step %d lane %d: batch done %v != scalar %v", step, lane, done[lane], d)
			}
		}
		compareObs(active, step)
		for lane := active - 1; lane >= 0; lane-- {
			if !done[lane] {
				continue
			}
			last := active - 1
			if lane != last {
				b.SwapLanes(lane, last)
				swapCols(obs, width, obsRows, lane, last)
				scalars[lane], scalars[last] = scalars[last], scalars[lane]
				scalarObs[lane], scalarObs[last] = scalarObs[last], scalarObs[lane]
				done[lane], done[last] = done[last], done[lane]
			}
			active--
		}
	}
	if active > 0 {
		t.Fatalf("%d lanes never finished within MaxSteps", active)
	}
}

// TestBatchMatchesScalar pins every registered environment, through
// whatever NewBatch serves (native for cartpole and the RAM titles,
// generic otherwise), to the scalar path bit for bit.
func TestBatchMatchesScalar(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			driveBatchVsScalar(t, name, func(width int) Batch {
				b, err := NewBatch(name, width)
				if err != nil {
					t.Fatal(err)
				}
				return b
			}, 0xC0FFEE)
		})
	}
}

// TestGenericBatchMatchesScalar forces the generic adapter even for
// environments with native batches, pinning the fallback path itself.
func TestGenericBatchMatchesScalar(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			driveBatchVsScalar(t, name, func(width int) Batch {
				f := factories[name]
				g := &genericBatch{name: name, width: width, inner: make([]Env, width)}
				for i := range g.inner {
					g.inner[i] = f()
				}
				g.act = make([]float64, g.inner[0].ActionSize())
				return g
			}, 0xBEEF)
		})
	}
}

// TestNewBatchErrors covers the construction guards.
func TestNewBatchErrors(t *testing.T) {
	if _, err := NewBatch("cartpole", 0); err == nil {
		t.Fatal("width 0 must fail")
	}
	if _, err := NewBatch("no-such-env", 4); err == nil {
		t.Fatal("unknown env must fail")
	}
}

// TestNativeBatchRegistered pins that the workloads the tentpole names
// actually get the vectorized implementation from NewBatch.
func TestNativeBatchRegistered(t *testing.T) {
	for _, name := range []string{"cartpole", "airraid-ram", "alien-ram", "asterix-ram", "amidar-ram"} {
		b, err := NewBatch(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if b.LaneEnv(0) != nil {
			t.Fatalf("%s: expected native batch (LaneEnv nil), got generic", name)
		}
	}
	b, err := NewBatch("mountaincar", 3)
	if err != nil {
		t.Fatal(err)
	}
	if b.LaneEnv(0) == nil {
		t.Fatal("mountaincar: expected generic batch with real lane envs")
	}
}
