package env

import (
	"math"
	"testing"
)

// TestRAMTitlesDiverge: the four titles are distinct machines — same
// seed, same actions, different trajectories and threat cells.
func TestRAMTitlesDiverge(t *testing.T) {
	titles := []string{"airraid-ram", "alien-ram", "asterix-ram", "amidar-ram"}
	trajectories := map[string][]float64{}
	for _, title := range titles {
		e, _ := New(title)
		e.Reset(42)
		a := make([]float64, e.ActionSize())
		var rewards []float64
		for i := 0; i < 30; i++ {
			_, r, done := e.Step(a)
			rewards = append(rewards, r)
			if done {
				break
			}
		}
		trajectories[title] = rewards
	}
	for i, a := range titles {
		for _, b := range titles[i+1:] {
			same := true
			ra, rb := trajectories[a], trajectories[b]
			for k := 0; k < len(ra) && k < len(rb); k++ {
				if ra[k] != rb[k] {
					same = false
					break
				}
			}
			if same {
				t.Fatalf("%s and %s produced identical reward streams", a, b)
			}
		}
	}
}

func TestRAMNearMissPartialCredit(t *testing.T) {
	g := newRAMGame("amidar-ram")
	g.Reset(3)
	want := g.correctAction()
	near := (want + 1) % g.actions
	a := make([]float64, g.actions)
	a[near] = 1
	_, r, _ := g.Step(a)
	// Adjacent action: graded reward, no score, no life loss.
	if near == want-1 || near == want+1 {
		if r != 0.25 {
			t.Fatalf("near miss reward %v, want 0.25", r)
		}
	}
	if g.Lives() != 3 {
		t.Fatal("near miss cost a life")
	}
}

func TestBipedalFallsOnViolentPitch(t *testing.T) {
	b := &Bipedal{rnd: newTestRNG()}
	b.Reset(1)
	// Constant maximal same-side torque destabilizes the pitch.
	steps := 0
	for i := 0; i < bwBudget; i++ {
		_, _, done := b.Step([]float64{1, 1, 1, 1})
		steps++
		if done {
			break
		}
	}
	if !b.fallen {
		t.Fatalf("violent torque never toppled the hull in %d steps", steps)
	}
}

func TestAcrobotAngleWrap(t *testing.T) {
	if w := wrapAngle(3 * math.Pi); math.Abs(w-math.Pi) > 1e-9 && math.Abs(w+math.Pi) > 1e-9 {
		t.Fatalf("wrap(3π) = %v", w)
	}
	if w := wrapAngle(-3 * math.Pi); w < -math.Pi || w > math.Pi {
		t.Fatalf("wrap(-3π) = %v", w)
	}
	if w := wrapAngle(0.5); w != 0.5 {
		t.Fatalf("wrap(0.5) = %v", w)
	}
}

func TestMarioObstacleKinds(t *testing.T) {
	m := &Mario{rnd: newTestRNG()}
	m.Reset(7)
	kinds := map[int]bool{}
	for _, o := range m.level {
		kinds[o.kind] = true
		if o.kind < 0 || o.kind > 2 {
			t.Fatalf("unknown obstacle kind %d", o.kind)
		}
	}
	if len(kinds) < 2 {
		t.Fatalf("level too uniform: kinds %v", kinds)
	}
}

func BenchmarkCartPoleStep(b *testing.B) {
	e, _ := New("cartpole")
	e.Reset(1)
	a := []float64{1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, done := e.Step(a); done {
			e.Reset(uint64(i))
		}
	}
}

func BenchmarkRAMGameStep(b *testing.B) {
	e, _ := New("alien-ram")
	e.Reset(1)
	a := make([]float64, e.ActionSize())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, done := e.Step(a); done {
			e.Reset(uint64(i))
		}
	}
}
