package env

import (
	"fmt"

	"repro/internal/rng"
)

// RAMGame is the synthetic stand-in for the Atari RAM environments of
// Table I (AirRaid-ram, Alien-ram, Asterix-ram, Amidar-ram). The real
// titles need an Atari 2600 emulator and the original ROMs; what the
// GeneSys characterization depends on is their interface and scale —
// a 128-byte machine-state observation driving genomes with ~10⁵ genes
// per population (Fig. 4b) and hundred-thousand-scale reproduction ops
// per generation (Fig. 5a) — plus a reward signal a policy can
// actually improve against.
//
// Each title is a deterministic 128-byte register machine: every step
// the RAM mixes under a xorshift automaton, a designated (but
// undocumented to the agent) threat cell selects which of the title's
// actions scores, and sustained wrong answers drain lives. The correct
// action is a piecewise-constant function of observable RAM bytes, so
// evolution improves fitness incrementally exactly as it does against
// the real RAM observations.
type RAMGame struct {
	title     string
	actions   int
	threatIdx int
	scoreIdx  int
	livesIdx  int
	ram       [128]byte
	score     int
	lives     int
	misses    int
	steps     int
	budget    int
	rnd       *rng.XorWow
	obs       [128]float64
}

// ramTitle holds the per-title parameters.
type ramTitle struct {
	actions   int
	threatIdx int
	budget    int
}

// The action-set sizes match the real ALE titles.
var ramTitles = map[string]ramTitle{
	"airraid-ram": {actions: 6, threatIdx: 17, budget: 300},
	"alien-ram":   {actions: 18, threatIdx: 42, budget: 300},
	"asterix-ram": {actions: 9, threatIdx: 73, budget: 300},
	"amidar-ram":  {actions: 10, threatIdx: 101, budget: 300},
}

func init() {
	for name := range ramTitles {
		name := name
		register(name, func() Env { return newRAMGame(name) })
	}
}

func newRAMGame(title string) *RAMGame {
	t, ok := ramTitles[title]
	if !ok {
		panic(fmt.Sprintf("env: unknown RAM title %q", title))
	}
	return &RAMGame{
		title:     title,
		actions:   t.actions,
		threatIdx: t.threatIdx,
		scoreIdx:  126,
		livesIdx:  127,
		budget:    t.budget,
		rnd:       rng.New(0),
	}
}

// Name implements Env.
func (g *RAMGame) Name() string { return g.title }

// ObservationSize implements Env: the full 128-byte RAM.
func (g *RAMGame) ObservationSize() int { return 128 }

// ActionSize implements Env: one output per button action.
func (g *RAMGame) ActionSize() int { return g.actions }

// MaxSteps implements Env.
func (g *RAMGame) MaxSteps() int { return g.budget }

// Reset implements Env.
func (g *RAMGame) Reset(seed uint64) []float64 {
	g.rnd.Seed(seed ^ uint64(len(g.title))<<32)
	for i := range g.ram {
		g.ram[i] = g.rnd.Byte()
	}
	g.score = 0
	g.lives = 3
	g.misses = 0
	g.steps = 0
	g.syncStatusCells()
	return g.observe()
}

func (g *RAMGame) syncStatusCells() {
	g.ram[g.scoreIdx] = byte(g.score)
	g.ram[g.livesIdx] = byte(g.lives)
}

func (g *RAMGame) observe() []float64 {
	for i, b := range g.ram {
		g.obs[i] = float64(b) / 255
	}
	return g.obs[:]
}

// correctAction is the scoring button for the current machine state: the
// high bits of the threat cell. It is a simple function of one
// observable byte, so policies can learn it incrementally.
func (g *RAMGame) correctAction() int {
	return int(g.ram[g.threatIdx]) * g.actions / 256
}

// Step implements Env.
func (g *RAMGame) Step(action []float64) ([]float64, float64, bool) {
	want := g.correctAction()
	got := argmax(action[:min(len(action), g.actions)])

	reward := 0.0
	switch {
	case got == want:
		g.score++
		g.misses = 0
		reward = 1
	case got == want-1 || got == want+1:
		// Near miss: graded scoring, as the real titles' point values
		// grade partial play; this is what makes the reward landscape
		// evolvable rather than a needle.
		g.misses = 0
		reward = 0.25
	default:
		g.misses++
		if g.misses >= 4 {
			g.lives--
			g.misses = 0
			reward = -1
		}
	}

	// Advance the machine: xorshift-mix the playfield cells; the threat
	// cell takes a fresh pseudo-random value each step so the policy
	// must read it rather than memorize a sequence.
	for i := 0; i < g.scoreIdx; i++ {
		v := g.ram[i]
		v ^= v << 3
		v ^= v >> 5
		g.ram[i] = v + byte(i) + byte(g.steps)
	}
	g.ram[g.threatIdx] = g.rnd.Byte()
	g.steps++
	g.syncStatusCells()

	done := g.lives <= 0 || g.steps >= g.budget
	return g.observe(), reward, done
}

// Score returns the accumulated game score.
func (g *RAMGame) Score() int { return g.score }

// Lives returns the remaining lives.
func (g *RAMGame) Lives() int { return g.lives }
