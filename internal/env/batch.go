package env

import "fmt"

// Batch drives up to Width independent instances ("lanes") of one
// environment in lock-step, exchanging state with the batched network
// kernel through struct-of-arrays planes: row i of the observation
// plane holds input i of every lane contiguously (obs[i*Width+lane]),
// and likewise for the action plane. This is the environment half of
// the population-level-parallel rollout: one StepAll advances every
// live episode exactly one timestep.
//
// Lanes are independent episodes. ResetLane (re)starts one lane with
// its own seed — the backfill operation of the batch scheduler — and
// SwapLanes exchanges two lanes' entire episode state so finished
// episodes can be compacted out of the active prefix. StepAll must not
// be called on a lane whose previous step reported done (mirroring the
// scalar contract that an Env is Reset before further Steps).
//
// Per lane, a Batch implementation performs exactly the float and RNG
// operations of the scalar Env it mirrors, in the same order — batched
// evaluation is pinned byte-identical to the serial path.
type Batch interface {
	// Name is the workload identifier, e.g. "cartpole".
	Name() string
	// ObservationSize is the row count of the observation plane.
	ObservationSize() int
	// ActionSize is the row count of the action plane.
	ActionSize() int
	// MaxSteps bounds every lane's episode length.
	MaxSteps() int
	// Width is the lane capacity (the plane stride).
	Width() int
	// ResetLane restarts lane with the given episode seed and writes
	// its initial observation column into the obs plane.
	ResetLane(lane int, seed uint64, obs []float64)
	// StepAll advances lanes [0, active) one timestep on the action
	// plane, writing new observation columns, per-lane rewards, and
	// per-lane done flags.
	StepAll(obs, rewards []float64, done []bool, actions []float64, active int)
	// SwapLanes exchanges the episode state of two lanes.
	SwapLanes(a, b int)
	// LaneEnv returns the scalar Env backing one lane, or nil for
	// native struct-of-arrays implementations that have no per-lane
	// Env value. Fitness shapers that type-assert their concrete
	// environment only exist for workloads served by the generic
	// (Env-backed) adapter, where this is never nil.
	LaneEnv(lane int) Env
}

// batchFactories registers native struct-of-arrays implementations by
// workload name; everything else is served by the generic adapter.
var batchFactories = map[string]func(width int) Batch{}

func registerBatch(name string, f func(width int) Batch) { batchFactories[name] = f }

// NewBatch constructs a width-lane batch of the named environment:
// a native vectorized implementation when one is registered (cartpole
// and the RAM titles), otherwise a generic adapter looping over fresh
// scalar instances.
func NewBatch(name string, width int) (Batch, error) {
	if width < 1 {
		return nil, fmt.Errorf("env: batch width %d < 1", width)
	}
	if f, ok := batchFactories[name]; ok {
		return f(width), nil
	}
	f, ok := factories[name]
	if !ok {
		return nil, fmt.Errorf("env: unknown environment %q (have %v)", name, Names())
	}
	g := &genericBatch{name: name, width: width, inner: make([]Env, width)}
	for i := range g.inner {
		g.inner[i] = f()
	}
	g.act = make([]float64, g.inner[0].ActionSize())
	return g, nil
}

// genericBatch adapts any registered Env to the Batch interface by
// holding one scalar instance per lane and looping. No vector speedup —
// its job is uniformity: the batch scheduler drives every workload
// through one code path, and each lane still performs exactly the
// scalar operation sequence (same instance reuse semantics as the
// serial runner: Reset fully re-initializes an instance).
type genericBatch struct {
	name  string
	width int
	inner []Env
	act   []float64 // gather scratch, one lane's action column
}

func (g *genericBatch) Name() string         { return g.name }
func (g *genericBatch) ObservationSize() int { return g.inner[0].ObservationSize() }
func (g *genericBatch) ActionSize() int      { return g.inner[0].ActionSize() }
func (g *genericBatch) MaxSteps() int        { return g.inner[0].MaxSteps() }
func (g *genericBatch) Width() int           { return g.width }
func (g *genericBatch) LaneEnv(lane int) Env { return g.inner[lane] }

func (g *genericBatch) ResetLane(lane int, seed uint64, obs []float64) {
	col := g.inner[lane].Reset(seed)
	for i, v := range col {
		obs[i*g.width+lane] = v
	}
}

func (g *genericBatch) StepAll(obs, rewards []float64, done []bool, actions []float64, active int) {
	w := g.width
	for lane := 0; lane < active; lane++ {
		for i := range g.act {
			g.act[i] = actions[i*w+lane]
		}
		col, r, d := g.inner[lane].Step(g.act)
		for i, v := range col {
			obs[i*w+lane] = v
		}
		rewards[lane] = r
		done[lane] = d
	}
}

func (g *genericBatch) SwapLanes(a, b int) {
	g.inner[a], g.inner[b] = g.inner[b], g.inner[a]
}
