package neat

import (
	"sort"

	"repro/internal/gene"
	"repro/internal/rng"
)

// mutator applies the NEAT mutation operators to one child genome,
// emitting one trace event per gene-level operation. It corresponds to
// the mutation stages of the EvE PE pipeline (perturbation engine,
// delete gene engine, add gene engine).
type mutator struct {
	cfg *Config
	rnd *rng.XorWow
	rec Recorder
	ids *idAssigner
	// scratch holds the population's reusable buffers (candidate-id
	// slices, cycle-search visited set). Lazily allocated when the
	// mutator is built standalone, e.g. in tests.
	scratch *epochScratch

	generation int
	child      int64
	parent1    int64
	parent2    int64
}

func (m *mutator) scratchBuf() *epochScratch {
	if m.scratch == nil {
		m.scratch = &epochScratch{}
	}
	return m.scratch
}

func (m *mutator) emit(op Op, k gene.Key) {
	if m.rec != nil {
		m.rec.Record(Event{
			Generation: m.generation,
			Child:      m.child,
			Parent1:    m.parent1,
			Parent2:    m.parent2,
			Key:        k,
			Op:         op,
		})
	}
}

// mutate applies, in hardware pipeline order, attribute perturbation,
// gene deletion, and gene addition to g.
func (m *mutator) mutate(g *gene.Genome) {
	m.perturb(g)
	m.deleteGenes(g)
	m.addGenes(g)
}

// perturb walks every gene and stochastically perturbs its attributes —
// the perturbation engine stage. One event is emitted per gene touched.
// Because it edits genes in place (bypassing the Put* editors), it must
// bump the genome's phenotype version itself when anything changed.
func (m *mutator) perturb(g *gene.Genome) {
	cfg, r := m.cfg, m.rnd
	changed := false
	for i := range g.Nodes {
		n := &g.Nodes[i]
		if n.Type == gene.Input {
			// Input nodes carry no evolvable attributes; they are fed
			// directly from the observation.
			continue
		}
		touched := false
		if r.Bool(cfg.BiasMutateRate) {
			n.Bias = clampAttr(n.Bias + r.NormFloat64()*cfg.BiasPerturbPower)
			touched = true
		}
		if r.Bool(cfg.ResponseMutateRate) {
			n.Response = clampAttr(n.Response + r.NormFloat64()*cfg.ResponsePerturbPower)
			touched = true
		}
		if r.Bool(cfg.ActivationMutateRate) {
			n.Activation = gene.Activation(r.Intn(gene.NumActivations))
			touched = true
		}
		if r.Bool(cfg.AggregationMutateRate) {
			n.Aggregation = gene.Aggregation(r.Intn(gene.NumAggregations))
			touched = true
		}
		if touched {
			changed = true
			m.emit(OpPerturb, n.Key())
		}
	}
	for i := range g.Conns {
		c := &g.Conns[i]
		touched := false
		if r.Bool(cfg.WeightMutateRate) {
			if r.Bool(cfg.WeightReplaceRate) {
				c.Weight = clampAttr(r.NormFloat64() * cfg.WeightInitPower)
			} else {
				c.Weight = clampAttr(c.Weight + r.NormFloat64()*cfg.WeightPerturbPower)
			}
			touched = true
		}
		if r.Bool(cfg.EnableMutateRate) {
			c.Enabled = !c.Enabled
			touched = true
		}
		if touched {
			changed = true
			m.emit(OpPerturb, c.Key())
		}
	}
	if changed {
		g.BumpVersion()
	}
}

// clampAttr keeps attributes inside the hardware-representable range.
func clampAttr(v float64) float64 {
	const lim = gene.AttrLimit
	if v >= lim {
		return lim - 1.0/(1<<12)
	}
	if v < -lim {
		return -lim
	}
	return v
}

// deleteGenes is the delete-gene engine stage: with the configured
// probabilities, remove a hidden node (pruning its connections) or a
// connection. Node deletions are capped per child by MaxDeletedNodes to
// keep the genome alive, mirroring the hardware's deleted-node counter.
func (m *mutator) deleteGenes(g *gene.Genome) {
	cfg, r := m.cfg, m.rnd
	deletedNodes := 0
	if r.Bool(cfg.DeleteNodeProb) && deletedNodes < cfg.MaxDeletedNodes {
		// Count-then-pick the k-th hidden node in ascending-id order —
		// the same draw and the same victim as indexing g.HiddenIDs()
		// (Nodes are id-sorted), without materializing the id slice.
		hiddenCount := 0
		for _, n := range g.Nodes {
			if n.Type == gene.Hidden {
				hiddenCount++
			}
		}
		if hiddenCount > 0 {
			k := r.Intn(hiddenCount)
			var id int32
			for _, n := range g.Nodes {
				if n.Type == gene.Hidden {
					if k == 0 {
						id = n.NodeID
						break
					}
					k--
				}
			}
			// Count the node and each pruned connection as deletion ops.
			for _, c := range g.Conns {
				if c.Src == id || c.Dst == id {
					m.emit(OpDeleteConn, c.Key())
				}
			}
			g.DeleteNode(id)
			deletedNodes++
			m.emit(OpDeleteNode, gene.Key{Kind: gene.KindNode, A: id})
		}
	}
	if r.Bool(cfg.DeleteConnProb) && len(g.Conns) > 1 {
		i := r.Intn(len(g.Conns))
		c := g.Conns[i]
		g.DeleteConn(c.Src, c.Dst)
		m.emit(OpDeleteConn, c.Key())
	}
}

// addGenes is the add-gene engine stage: with the configured
// probabilities, split a connection with a new node, or add a fresh
// connection between previously unconnected nodes.
func (m *mutator) addGenes(g *gene.Genome) {
	if m.rnd.Bool(m.cfg.AddNodeProb) {
		m.addNode(g)
	}
	if m.rnd.Bool(m.cfg.AddConnProb) {
		m.addConn(g)
	}
}

// addNode splits a random enabled connection a→b: the connection is
// disabled and replaced by a→n (weight 1) and n→b (original weight),
// with n a fresh node carrying default attributes.
func (m *mutator) addNode(g *gene.Genome) {
	r := m.rnd
	// Count-then-pick the k-th enabled connection in key order — the
	// same draw and victim as indexing g.EnabledConns() without the
	// slice allocation.
	enabledCount := 0
	for i := range g.Conns {
		if g.Conns[i].Enabled {
			enabledCount++
		}
	}
	if enabledCount == 0 {
		return
	}
	k := r.Intn(enabledCount)
	var c gene.Gene
	for i := range g.Conns {
		if g.Conns[i].Enabled {
			if k == 0 {
				c = g.Conns[i]
				break
			}
			k--
		}
	}
	id := m.ids.nodeIDForSplit(g, c.Src, c.Dst)
	if id > gene.MaxNodeID || g.HasNode(id) {
		return
	}
	n := gene.NewNode(id, gene.Hidden)
	g.PutNode(n)
	// Disable the split connection rather than deleting it, preserving
	// the historical gene (classic NEAT).
	c.Enabled = false
	g.PutConn(c)
	in := gene.NewConn(c.Src, id, 1.0)
	out := gene.NewConn(id, c.Dst, c.Weight)
	g.PutConn(in)
	g.PutConn(out)
	m.emit(OpAddNode, n.Key())
	m.emit(OpAddConn, in.Key())
	m.emit(OpAddConn, out.Key())
}

// addConn adds one new connection src→dst where src is an input or
// hidden node, dst is a hidden or output node, the pair is not already
// connected, and (in feed-forward mode) the edge does not close a cycle.
func (m *mutator) addConn(g *gene.Genome) {
	r, s := m.rnd, m.scratchBuf()
	srcs, dsts := s.srcs[:0], s.dsts[:0]
	for _, n := range g.Nodes {
		if n.Type != gene.Output {
			srcs = append(srcs, n.NodeID)
		}
		if n.Type != gene.Input {
			dsts = append(dsts, n.NodeID)
		}
	}
	s.srcs, s.dsts = srcs, dsts
	if len(srcs) == 0 || len(dsts) == 0 {
		return
	}
	// A few random probes rather than enumerating the O(V^2) candidate
	// set; dense genomes simply fail to add, as in neat-python.
	for attempt := 0; attempt < 8; attempt++ {
		src := srcs[r.Intn(len(srcs))]
		dst := dsts[r.Intn(len(dsts))]
		if src == dst || g.HasConn(src, dst) {
			continue
		}
		if m.cfg.FeedForwardOnly && cycleSearch(g, src, dst, s) {
			continue
		}
		c := gene.NewConn(src, dst, clampAttr(r.NormFloat64()*m.cfg.WeightInitPower))
		g.PutConn(c)
		m.emit(OpAddConn, c.Key())
		return
	}
}

// createsCycle reports whether adding edge src→dst would close a cycle,
// i.e. whether dst already reaches src through existing connections.
func createsCycle(g *gene.Genome, src, dst int32) bool {
	var s epochScratch
	return cycleSearch(g, src, dst, &s)
}

// cycleSearch is the depth-first reachability walk behind createsCycle.
// Instead of materializing an adjacency map per call, it exploits the
// (Src, Dst) sort invariant of g.Conns: a node's out-edges are one
// contiguous run, located by binary search. The visited set and DFS
// stack live in the caller's scratch.
func cycleSearch(g *gene.Genome, src, dst int32, s *epochScratch) bool {
	if src == dst {
		return true
	}
	if s.seen == nil {
		s.seen = make(map[int32]bool, len(g.Nodes))
	} else {
		clear(s.seen)
	}
	stack := append(s.stack[:0], dst)
	s.seen[dst] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == src {
			s.stack = stack
			return true
		}
		lo := sort.Search(len(g.Conns), func(i int) bool { return g.Conns[i].Src >= n })
		for i := lo; i < len(g.Conns) && g.Conns[i].Src == n; i++ {
			next := g.Conns[i].Dst
			if !s.seen[next] {
				s.seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	s.stack = stack
	return false
}
