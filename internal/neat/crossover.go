package neat

import "repro/internal/gene"

// crossover produces a child genome from two parents, parent1 being the
// fitter (ties broken by the caller). It implements the crossover engine
// semantics of Fig. 7:
//
//   - genes are aligned by key (node id / connection endpoints) — the
//     gene-split block's alignment job;
//   - for matching genes, each attribute is cherry-picked from one of
//     the two parents by comparing a PRNG draw against the programmable
//     bias (CrossoverBias, default 0.5 — attributes from the fitter
//     parent win with that probability);
//   - disjoint and excess genes are inherited from the fitter parent,
//     so the child's topology equals parent1's (classic NEAT).
//
// One OpCrossover event is emitted per child gene, the gene-level
// parallelism unit of Fig. 5(a).
func (m *mutator) crossover(p1, p2 *gene.Genome, childID int64) *gene.Genome {
	child := gene.NewGenome(childID)
	child.Nodes = make([]gene.Gene, 0, len(p1.Nodes))
	child.Conns = make([]gene.Gene, 0, len(p1.Conns))

	// Merge-join gene alignment: both parents keep Nodes sorted by id
	// and Conns sorted by (Src, Dst), so matching genes are found by
	// advancing a single p2 cursor instead of a binary search per p1
	// gene. PRNG draws happen only at matches, in p1 order — exactly
	// where the lookup-based alignment drew them.
	j := 0
	for _, n1 := range p1.Nodes {
		for j < len(p2.Nodes) && p2.Nodes[j].NodeID < n1.NodeID {
			j++
		}
		n := n1
		if j < len(p2.Nodes) && p2.Nodes[j].NodeID == n1.NodeID {
			n = m.mixNode(n1, p2.Nodes[j])
		}
		child.Nodes = append(child.Nodes, n)
		m.emit(OpCrossover, n.Key())
	}
	j = 0
	for _, c1 := range p1.Conns {
		for j < len(p2.Conns) && connKeyLess(&p2.Conns[j], &c1) {
			j++
		}
		c := c1
		if j < len(p2.Conns) && p2.Conns[j].Src == c1.Src && p2.Conns[j].Dst == c1.Dst {
			c = m.mixConn(c1, p2.Conns[j])
		}
		child.Conns = append(child.Conns, c)
		m.emit(OpCrossover, c.Key())
	}
	return child
}

// connKeyLess orders connection genes by their (Src, Dst) sort key.
func connKeyLess(a, b *gene.Gene) bool {
	return a.Src < b.Src || (a.Src == b.Src && a.Dst < b.Dst)
}

// pick1 reports whether the attribute should come from the fitter
// parent: PRNG draw compared against the crossover bias, one comparator
// per attribute in the hardware.
func (m *mutator) pick1() bool { return m.rnd.Float64() < m.cfg.CrossoverBias }

// mixNode cherry-picks the four node attributes between homologous node
// genes.
func (m *mutator) mixNode(a, b gene.Gene) gene.Gene {
	out := a
	if !m.pick1() {
		out.Bias = b.Bias
	}
	if !m.pick1() {
		out.Response = b.Response
	}
	if !m.pick1() {
		out.Activation = b.Activation
	}
	if !m.pick1() {
		out.Aggregation = b.Aggregation
	}
	return out
}

// mixConn cherry-picks weight and enabled flag between homologous
// connection genes.
func (m *mutator) mixConn(a, b gene.Gene) gene.Gene {
	out := a
	if !m.pick1() {
		out.Weight = b.Weight
	}
	if !m.pick1() {
		out.Enabled = b.Enabled
	}
	return out
}
