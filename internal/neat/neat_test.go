package neat

import (
	"math"
	"testing"

	"repro/internal/gene"
	"repro/internal/rng"
)

func testConfig() Config {
	return DefaultConfig(4, 2)
}

func newMutator(cfg *Config, seed uint64) *mutator {
	return &mutator{
		cfg: cfg,
		rnd: rng.New(seed),
		ids: newIDAssigner(cfg),
	}
}

func TestConfigValidate(t *testing.T) {
	cfg := testConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := cfg
	bad.PopulationSize = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero population")
	}
	bad = cfg
	bad.NumInputs = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero inputs")
	}
	bad = cfg
	bad.InitialConnection = "sparse"
	if bad.Validate() == nil {
		t.Fatal("accepted unknown initial connection")
	}
	bad = cfg
	bad.SurvivalThreshold = 0
	if bad.Validate() == nil {
		t.Fatal("accepted zero survival threshold")
	}
}

func TestSeedGenomeTopology(t *testing.T) {
	cfg := testConfig()
	p, err := NewPopulation(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Genomes) != cfg.PopulationSize {
		t.Fatalf("population size %d", len(p.Genomes))
	}
	g := p.Genomes[0]
	if len(g.Nodes) != cfg.NumInputs+cfg.NumOutputs {
		t.Fatalf("seed genome has %d nodes", len(g.Nodes))
	}
	if len(g.Conns) != cfg.NumInputs*cfg.NumOutputs {
		t.Fatalf("seed genome has %d conns", len(g.Conns))
	}
	for _, c := range g.Conns {
		if c.Weight != 0 {
			t.Fatalf("seed weights must start at zero, got %v", c.Weight)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSeedGenomeNoneConnection(t *testing.T) {
	cfg := testConfig()
	cfg.InitialConnection = "none"
	p, err := NewPopulation(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Genomes[0].Conns) != 0 {
		t.Fatal("'none' initial connection produced connections")
	}
}

func TestAddNodeSplitsConnection(t *testing.T) {
	cfg := testConfig()
	m := newMutator(&cfg, 7)
	g := gene.NewGenome(0)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Output))
	g.PutConn(gene.NewConn(0, 1, 0.75))

	m.addNode(g)

	if len(g.Nodes) != 3 {
		t.Fatalf("expected 3 nodes after split, got %d", len(g.Nodes))
	}
	old, _ := g.Conn(0, 1)
	if old.Enabled {
		t.Fatal("split connection not disabled")
	}
	newID := g.HiddenIDs()[0]
	in, ok1 := g.Conn(0, newID)
	out, ok2 := g.Conn(newID, 1)
	if !ok1 || !ok2 {
		t.Fatal("split connections missing")
	}
	if in.Weight != 1.0 {
		t.Fatalf("incoming split weight = %v, want 1", in.Weight)
	}
	if math.Abs(out.Weight-0.75) > 1e-9 {
		t.Fatalf("outgoing split weight = %v, want 0.75", out.Weight)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAddConnNoDuplicatesNoCycles(t *testing.T) {
	cfg := testConfig()
	m := newMutator(&cfg, 11)
	g := gene.NewGenome(0)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Output))
	g.PutNode(gene.NewNode(2, gene.Hidden))
	g.PutNode(gene.NewNode(3, gene.Hidden))
	g.PutConn(gene.NewConn(2, 3, 1)) // 2 -> 3 exists; 3 -> 2 would cycle

	for i := 0; i < 200; i++ {
		m.addConn(g)
	}
	seen := map[[2]int32]bool{}
	for _, c := range g.Conns {
		k := [2]int32{c.Src, c.Dst}
		if seen[k] {
			t.Fatalf("duplicate connection %v", k)
		}
		seen[k] = true
	}
	if g.HasConn(3, 2) {
		t.Fatal("cycle 3->2 created despite 2->3")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCreatesCycle(t *testing.T) {
	g := gene.NewGenome(0)
	for i := int32(0); i < 4; i++ {
		g.PutNode(gene.NewNode(i, gene.Hidden))
	}
	g.PutConn(gene.NewConn(0, 1, 1))
	g.PutConn(gene.NewConn(1, 2, 1))
	if !createsCycle(g, 2, 0) {
		t.Fatal("2->0 closes 0->1->2 but was not detected")
	}
	if createsCycle(g, 0, 3) {
		t.Fatal("0->3 reported as cycle")
	}
	if !createsCycle(g, 1, 1) {
		t.Fatal("self loop not detected")
	}
}

func TestDeleteNodeMutationKeepsValid(t *testing.T) {
	cfg := testConfig()
	cfg.DeleteNodeProb = 1.0
	cfg.DeleteConnProb = 0
	m := newMutator(&cfg, 3)
	g := gene.NewGenome(0)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Output))
	g.PutNode(gene.NewNode(2, gene.Hidden))
	g.PutConn(gene.NewConn(0, 2, 1))
	g.PutConn(gene.NewConn(2, 1, 1))
	g.PutConn(gene.NewConn(0, 1, 1))

	m.deleteGenes(g)
	if g.HasNode(2) {
		t.Fatal("hidden node not deleted with prob 1")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Inputs and outputs must never be deleted.
	if !g.HasNode(0) || !g.HasNode(1) {
		t.Fatal("io node deleted")
	}
}

func TestPerturbRespectsAttrLimit(t *testing.T) {
	cfg := testConfig()
	cfg.WeightMutateRate = 1
	cfg.WeightPerturbPower = 10 // violent
	cfg.BiasMutateRate = 1
	cfg.BiasPerturbPower = 10
	m := newMutator(&cfg, 5)
	g := gene.NewGenome(0)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Output))
	g.PutConn(gene.NewConn(0, 1, 0))
	for i := 0; i < 100; i++ {
		m.perturb(g)
		c, _ := g.Conn(0, 1)
		if c.Weight >= gene.AttrLimit || c.Weight < -gene.AttrLimit {
			t.Fatalf("weight escaped hardware range: %v", c.Weight)
		}
		n, _ := g.Node(1)
		if n.Bias >= gene.AttrLimit || n.Bias < -gene.AttrLimit {
			t.Fatalf("bias escaped hardware range: %v", n.Bias)
		}
	}
}

func TestInputNodesNeverPerturbed(t *testing.T) {
	cfg := testConfig()
	cfg.BiasMutateRate = 1
	cfg.ResponseMutateRate = 1
	cfg.ActivationMutateRate = 1
	m := newMutator(&cfg, 9)
	g := gene.NewGenome(0)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Output))
	for i := 0; i < 20; i++ {
		m.perturb(g)
	}
	in, _ := g.Node(0)
	if in.Bias != 0 || in.Response != 1 || in.Activation != gene.ActSigmoid {
		t.Fatalf("input node attributes mutated: %v", in)
	}
}

func TestCrossoverTopologyFromFitterParent(t *testing.T) {
	cfg := testConfig()
	m := newMutator(&cfg, 13)

	p1 := gene.NewGenome(1)
	p1.Fitness = 10
	p1.PutNode(gene.NewNode(0, gene.Input))
	p1.PutNode(gene.NewNode(1, gene.Output))
	p1.PutNode(gene.NewNode(6, gene.Hidden)) // disjoint in p1
	p1.PutConn(gene.NewConn(0, 1, 0.5))
	p1.PutConn(gene.NewConn(0, 6, 0.1))
	p1.PutConn(gene.NewConn(6, 1, 0.2))

	p2 := gene.NewGenome(2)
	p2.Fitness = 5
	p2.PutNode(gene.NewNode(0, gene.Input))
	p2.PutNode(gene.NewNode(1, gene.Output))
	p2.PutNode(gene.NewNode(9, gene.Hidden)) // disjoint in p2, must not appear
	p2.PutConn(gene.NewConn(0, 1, -0.5))
	p2.PutConn(gene.NewConn(0, 9, 0.3))

	child := m.crossover(p1, p2, 3)
	if child.NumGenes() != p1.NumGenes() {
		t.Fatalf("child topology differs from fitter parent: %d vs %d genes",
			child.NumGenes(), p1.NumGenes())
	}
	if child.HasNode(9) || child.HasConn(0, 9) {
		t.Fatal("child inherited disjoint genes from less-fit parent")
	}
	if err := child.Validate(); err != nil {
		t.Fatal(err)
	}
	// The matched connection's weight must come from one of the parents.
	c, _ := child.Conn(0, 1)
	if c.Weight != 0.5 && c.Weight != -0.5 {
		t.Fatalf("matched gene weight %v from neither parent", c.Weight)
	}
}

func TestCrossoverMixesAttributes(t *testing.T) {
	cfg := testConfig()
	m := newMutator(&cfg, 17)
	p1 := gene.NewGenome(1)
	p1.PutNode(gene.NewNode(0, gene.Input))
	p1.PutNode(gene.NewNode(1, gene.Output))
	p1.PutConn(gene.NewConn(0, 1, 1.0))
	p2 := p1.Clone()
	p2.ID = 2
	c, _ := p2.Conn(0, 1)
	c.Weight = -1.0
	p2.PutConn(c)

	fromP2 := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		child := m.crossover(p1, p2, int64(10+i))
		w, _ := child.Conn(0, 1)
		if w.Weight == -1.0 {
			fromP2++
		}
	}
	// With bias 0.5 expect roughly half from each parent.
	if fromP2 < trials/4 || fromP2 > 3*trials/4 {
		t.Fatalf("attribute mixing skewed: %d/%d from parent 2", fromP2, trials)
	}
}

func TestCompatDistanceProperties(t *testing.T) {
	cfg := testConfig()
	g := gene.NewGenome(1)
	g.PutNode(gene.NewNode(0, gene.Input))
	g.PutNode(gene.NewNode(1, gene.Output))
	g.PutConn(gene.NewConn(0, 1, 0.5))

	if d := CompatDistance(g, g, &cfg); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	h := g.Clone()
	c, _ := h.Conn(0, 1)
	c.Weight = 1.5
	h.PutConn(c)
	d1 := CompatDistance(g, h, &cfg)
	if d1 <= 0 {
		t.Fatalf("weight difference gave distance %v", d1)
	}
	if d2 := CompatDistance(h, g, &cfg); math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("distance asymmetric: %v vs %v", d1, d2)
	}
	// Structural difference should dominate small weight noise.
	k := g.Clone()
	k.PutNode(gene.NewNode(7, gene.Hidden))
	k.PutConn(gene.NewConn(0, 7, 1))
	k.PutConn(gene.NewConn(7, 1, 1))
	if ds := CompatDistance(g, k, &cfg); ds <= d1 {
		t.Fatalf("structural distance %v not above weight distance %v", ds, d1)
	}
}

func TestSpeciateGroupsIdenticalGenomes(t *testing.T) {
	cfg := testConfig()
	p, _ := NewPopulation(cfg, 3)
	next := 0
	species := speciate(p.Genomes, nil, &cfg, 0, &next)
	if len(species) != 1 {
		t.Fatalf("identical seed genomes split into %d species", len(species))
	}
	if len(species[0].Members) != cfg.PopulationSize {
		t.Fatalf("species holds %d members", len(species[0].Members))
	}
}

func TestSpeciateSeparatesDistantGenomes(t *testing.T) {
	cfg := testConfig()
	cfg.CompatThreshold = 0.5
	a := gene.NewGenome(1)
	a.PutNode(gene.NewNode(0, gene.Input))
	a.PutNode(gene.NewNode(1, gene.Output))
	a.PutConn(gene.NewConn(0, 1, 0))
	b := a.Clone()
	b.ID = 2
	for i := int32(10); i < 20; i++ {
		b.PutNode(gene.NewNode(i, gene.Hidden))
		b.PutConn(gene.NewConn(0, i, 1))
		b.PutConn(gene.NewConn(i, 1, 1))
	}
	next := 0
	species := speciate([]*gene.Genome{a, b}, nil, &cfg, 0, &next)
	if len(species) != 2 {
		t.Fatalf("distant genomes grouped into %d species", len(species))
	}
}

func TestStagnation(t *testing.T) {
	s := &Species{LastImproved: 5}
	if s.Stagnant(10, 15) {
		t.Fatal("species stagnant too early")
	}
	if !s.Stagnant(21, 15) {
		t.Fatal("species not stagnant after threshold")
	}
}

func TestEpochProducesFullValidGeneration(t *testing.T) {
	cfg := testConfig()
	p, err := NewPopulation(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rng.New(99)
	for gen := 0; gen < 5; gen++ {
		for _, g := range p.Genomes {
			g.Fitness = rnd.Float64()
		}
		stats, err := p.Epoch()
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if len(p.Genomes) != cfg.PopulationSize {
			t.Fatalf("gen %d: population %d", gen, len(p.Genomes))
		}
		if stats.Offspring != cfg.PopulationSize {
			t.Fatalf("gen %d: offspring %d", gen, stats.Offspring)
		}
		ids := map[int64]bool{}
		for _, g := range p.Genomes {
			if err := g.Validate(); err != nil {
				t.Fatalf("gen %d: %v", gen, err)
			}
			if ids[g.ID] {
				t.Fatalf("gen %d: duplicate genome id %d", gen, g.ID)
			}
			ids[g.ID] = true
		}
	}
	if p.Generation != 5 {
		t.Fatalf("generation counter = %d", p.Generation)
	}
}

func TestEpochElitismPreservesBest(t *testing.T) {
	cfg := testConfig()
	p, _ := NewPopulation(cfg, 7)
	for i, g := range p.Genomes {
		g.Fitness = float64(i)
	}
	best := p.Best()
	bestGenes := best.NumGenes()
	if _, err := p.Epoch(); err != nil {
		t.Fatal(err)
	}
	// An elite clone with identical structure must exist in the next
	// generation (weights identical too since elites skip mutation).
	found := false
	for _, g := range p.Genomes {
		if g.NumGenes() == bestGenes && CompatDistance(g, best, &cfg) == 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no verbatim elite copy of the best genome survived")
	}
	if p.BestEver == nil || p.BestEver.Fitness != best.Fitness {
		t.Fatalf("BestEver not tracked: %v", p.BestEver)
	}
}

func TestEpochRecordsOps(t *testing.T) {
	cfg := testConfig()
	p, _ := NewPopulation(cfg, 9)
	var counts OpCounts
	p.SetRecorder(&counts)
	for _, g := range p.Genomes {
		g.Fitness = 1
	}
	if _, err := p.Epoch(); err != nil {
		t.Fatal(err)
	}
	if counts.Crossovers() == 0 {
		t.Fatal("no crossover ops recorded")
	}
	if counts.Mutations() == 0 {
		t.Fatal("no mutation ops recorded")
	}
	// Crossover ops are per-gene: must be on the order of genes per
	// genome times crossover children.
	if counts.Crossovers() < int64(cfg.NumInputs*cfg.NumOutputs) {
		t.Fatalf("implausibly few crossover ops: %d", counts.Crossovers())
	}
}

func TestEpochParentReuse(t *testing.T) {
	cfg := testConfig()
	p, _ := NewPopulation(cfg, 11)
	for _, g := range p.Genomes {
		g.Fitness = 1
	}
	// Make one genome dominant so it lands in every parent pool.
	p.Genomes[0].Fitness = 100
	stats, err := p.Epoch()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FittestParentReuse == 0 {
		t.Fatal("dominant parent never reused")
	}
	if stats.MaxParentReuse < stats.FittestParentReuse {
		t.Fatal("max reuse below fittest reuse")
	}
	total := 0
	for _, n := range stats.ParentUse {
		total += n
	}
	if total == 0 {
		t.Fatal("no parent usage recorded")
	}
}

func TestEpochDeterminism(t *testing.T) {
	run := func() []int {
		cfg := testConfig()
		p, _ := NewPopulation(cfg, 42)
		sizes := []int{}
		for gen := 0; gen < 3; gen++ {
			for i, g := range p.Genomes {
				g.Fitness = float64(i % 7)
			}
			if _, err := p.Epoch(); err != nil {
				t.Fatal(err)
			}
			sizes = append(sizes, p.TotalGenes())
		}
		return sizes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic evolution: %v vs %v", a, b)
		}
	}
}

func TestGenesGrowOverGenerations(t *testing.T) {
	cfg := testConfig()
	cfg.AddNodeProb = 0.3
	cfg.AddConnProb = 0.5
	cfg.DeleteNodeProb = 0
	cfg.DeleteConnProb = 0
	p, _ := NewPopulation(cfg, 21)
	start := p.TotalGenes()
	for gen := 0; gen < 10; gen++ {
		for i, g := range p.Genomes {
			g.Fitness = float64(i)
		}
		if _, err := p.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	if p.TotalGenes() <= start {
		t.Fatalf("population did not complexify: %d -> %d genes", start, p.TotalGenes())
	}
}

func TestIDAssignerSplitReuse(t *testing.T) {
	cfg := testConfig()
	a := newIDAssigner(&cfg)
	g1 := gene.NewGenome(1)
	g2 := gene.NewGenome(2)
	id1 := a.nodeIDForSplit(g1, 0, 5)
	id2 := a.nodeIDForSplit(g2, 0, 5)
	if id1 != id2 {
		t.Fatalf("same split got different ids: %d vs %d", id1, id2)
	}
	id3 := a.nodeIDForSplit(g1, 1, 5)
	if id3 == id1 {
		t.Fatal("different split reused id")
	}
	a.newGeneration()
	id4 := a.nodeIDForSplit(g1, 0, 5)
	if id4 == id1 {
		t.Fatal("split reuse table not cleared across generations")
	}
}

func TestIDAssignerLocalMode(t *testing.T) {
	cfg := testConfig()
	cfg.LocalNodeIDs = true
	a := newIDAssigner(&cfg)
	g := gene.NewGenome(1)
	g.PutNode(gene.NewNode(9, gene.Hidden))
	if id := a.nodeIDForSplit(g, 0, 1); id != 10 {
		t.Fatalf("local mode id = %d, want maxID+1 = 10", id)
	}
}

func TestOpCounts(t *testing.T) {
	var c OpCounts
	c.Record(Event{Op: OpCrossover})
	c.Record(Event{Op: OpPerturb})
	c.Record(Event{Op: OpAddNode})
	c.Record(Event{Op: OpDeleteConn})
	if c.Crossovers() != 1 || c.Mutations() != 3 || c.Total() != 4 {
		t.Fatalf("counts wrong: %+v", c)
	}
	c.Reset()
	if c.Total() != 0 {
		t.Fatal("reset failed")
	}
}

func TestMultiRecorder(t *testing.T) {
	var a, b OpCounts
	r := MultiRecorder(&a, nil, &b)
	r.Record(Event{Op: OpPerturb})
	if a.Total() != 1 || b.Total() != 1 {
		t.Fatal("fan-out failed")
	}
	if MultiRecorder(nil, nil) != nil {
		t.Fatal("all-nil should collapse to nil")
	}
	if MultiRecorder(&a) != Recorder(&a) {
		t.Fatal("single recorder should be returned unwrapped")
	}
}

func TestTournamentSelectionConcentratesReuse(t *testing.T) {
	run := func(tournament int) int {
		cfg := testConfig()
		cfg.TournamentSize = tournament
		p, _ := NewPopulation(cfg, 31)
		for i, g := range p.Genomes {
			g.Fitness = float64(i)
		}
		stats, err := p.Epoch()
		if err != nil {
			t.Fatal(err)
		}
		return stats.MaxParentReuse
	}
	uniform := run(1)
	biased := run(3)
	if biased <= uniform {
		t.Fatalf("tournament selection did not concentrate reuse: %d vs %d",
			biased, uniform)
	}
	// The paper's Fig. 4c regime: the hottest parent serves a double-
	// digit share of the 150 children.
	if biased < 15 {
		t.Fatalf("max reuse %d too low for tournament-3", biased)
	}
}

func TestOpStrings(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		if op.String() == "op?" {
			t.Fatalf("op %d has no name", op)
		}
	}
	if OpCrossover.IsMutation() {
		t.Fatal("crossover classified as mutation")
	}
	if !OpAddNode.IsMutation() {
		t.Fatal("add-node not classified as mutation")
	}
}
