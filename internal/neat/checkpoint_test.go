package neat

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/rng"
)

// evolvedPopulation builds a population with some history.
func evolvedPopulation(t *testing.T) *Population {
	t.Helper()
	cfg := DefaultConfig(3, 2)
	cfg.PopulationSize = 30
	p, err := NewPopulation(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for gen := 0; gen < 4; gen++ {
		for _, g := range p.Genomes {
			g.Fitness = r.Float64() * 10
		}
		if _, err := p.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestCheckpointRoundTrip(t *testing.T) {
	p := evolvedPopulation(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Restore(&buf, 99)
	if err != nil {
		t.Fatal(err)
	}
	if q.Generation != p.Generation {
		t.Fatalf("generation %d vs %d", q.Generation, p.Generation)
	}
	if len(q.Genomes) != len(p.Genomes) {
		t.Fatalf("genomes %d vs %d", len(q.Genomes), len(p.Genomes))
	}
	if q.TotalGenes() != p.TotalGenes() {
		t.Fatalf("genes %d vs %d", q.TotalGenes(), p.TotalGenes())
	}
	if len(q.Species) != len(p.Species) {
		t.Fatalf("species %d vs %d", len(q.Species), len(p.Species))
	}
	if q.BestEver == nil || q.BestEver.Fitness != p.BestEver.Fitness {
		t.Fatal("BestEver lost")
	}
}

func TestRestoredPopulationEvolves(t *testing.T) {
	p := evolvedPopulation(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Restore(&buf, 42)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(5)
	for gen := 0; gen < 3; gen++ {
		for _, g := range q.Genomes {
			g.Fitness = r.Float64()
		}
		if _, err := q.Epoch(); err != nil {
			t.Fatalf("restored population failed to evolve: %v", err)
		}
	}
	// Fresh genome ids must not collide with checkpointed ones.
	seen := map[int64]bool{}
	for _, g := range q.Genomes {
		if seen[g.ID] {
			t.Fatalf("duplicate genome id %d after restore", g.ID)
		}
		seen[g.ID] = true
	}
	for _, g := range q.Genomes {
		if err := g.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSaveRestoreSaveByteIdentical: a checkpoint is a fixed point —
// restoring and immediately re-saving loses nothing.
func TestSaveRestoreSaveByteIdentical(t *testing.T) {
	p := evolvedPopulation(t)
	var first bytes.Buffer
	if err := p.Save(&first); err != nil {
		t.Fatal(err)
	}
	q, err := Restore(bytes.NewReader(first.Bytes()), 12345)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := q.Save(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("save/restore/save not byte-identical:\n%s\nvs\n%s",
			first.Bytes(), second.Bytes())
	}
}

// TestRestoreContinuesBitIdentically: the checkpoint carries the live
// PRNG stream, so a restored population evolves exactly like the
// uninterrupted one under identical fitness assignments.
func TestRestoreContinuesBitIdentically(t *testing.T) {
	p := evolvedPopulation(t)
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A deliberately different restore seed: the checkpointed stream
	// must win over it.
	q, err := Restore(&buf, 0xDEAD)
	if err != nil {
		t.Fatal(err)
	}
	score := func(pop *Population) {
		for _, g := range pop.Genomes {
			// Deterministic per-genome fitness so both populations see
			// identical selection pressure.
			g.Fitness = float64(g.ID%17) + float64(g.NumGenes())/100
		}
	}
	for gen := 0; gen < 3; gen++ {
		score(p)
		score(q)
		if _, err := p.Epoch(); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Epoch(); err != nil {
			t.Fatal(err)
		}
	}
	var a, b bytes.Buffer
	if err := p.Save(&a); err != nil {
		t.Fatal(err)
	}
	if err := q.Save(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("restored population diverged from the uninterrupted one")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"not json":   "{",
		"empty":      `{"config":{"PopulationSize":10,"NumInputs":2,"NumOutputs":1,"InitialConnection":"full","CompatThreshold":3,"SurvivalThreshold":0.2,"TournamentSize":3},"genomes":[]}`,
		"bad config": `{"config":{"PopulationSize":0},"genomes":[{"id":1,"nodes":[],"conns":[]}]}`,
	}
	for name, doc := range cases {
		if _, err := Restore(strings.NewReader(doc), 1); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRestorePreservesNodeIDCounter(t *testing.T) {
	p := evolvedPopulation(t)
	before := p.ids.next
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatal(err)
	}
	q, err := Restore(&buf, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q.ids.next < before {
		t.Fatalf("node id counter regressed: %d < %d — future splits would collide",
			q.ids.next, before)
	}
}
