package neat

import "repro/internal/gene"

// Op identifies one gene-level reproduction operation — the unit of work
// an EvE PE pipeline stage performs, and the unit counted in Fig. 5(a).
type Op uint8

// The operation alphabet of Fig. 3(d): crossover plus the three mutation
// classes (perturbation, gene addition, gene deletion). Additions and
// deletions are split by gene kind because the hardware engines treat
// node and connection genes differently.
const (
	OpCrossover Op = iota
	OpPerturb
	OpAddNode
	OpAddConn
	OpDeleteNode
	OpDeleteConn
	numOps
)

// NumOps is the number of distinct operation types.
const NumOps = int(numOps)

// String names the op.
func (o Op) String() string {
	names := [...]string{"crossover", "perturb", "add-node", "add-conn", "del-node", "del-conn"}
	if int(o) < len(names) {
		return names[o]
	}
	return "op?"
}

// IsMutation reports whether the op belongs to the mutation class.
func (o Op) IsMutation() bool { return o != OpCrossover }

// Event is one reproduction-trace record: the paper's methodology
// (Section VI-A) captures "the generation, the child gene and genome id,
// the type of operation — mutation or crossover, and the parameters
// changed or added or deleted". These events drive the EvE hardware
// model exactly as the NEAT-python traces drove the paper's evaluation.
type Event struct {
	Generation int
	Child      int64 // child genome id
	Parent1    int64 // primary (fitter) parent genome id
	Parent2    int64 // secondary parent id, or -1 for mutation-only children
	Key        gene.Key
	Op         Op
}

// Recorder receives reproduction events. Implementations must be cheap;
// reproduction emits one event per gene-level operation.
type Recorder interface {
	Record(Event)
}

// GenerationStarter is an optional Recorder extension: recorders that
// also implement it are handed a snapshot of the parent population at
// the start of every reproduction round (the genome sizes the gene-split
// block will stream from the genome buffer).
type GenerationStarter interface {
	StartGeneration(gen int, genomes []*gene.Genome)
}

// OpCounts tallies gene-level operations by type. It implements Recorder
// so it can be used directly when only aggregate counts are needed
// (Fig. 5(a)).
type OpCounts struct {
	ByOp [NumOps]int64
}

// Record tallies the event.
func (c *OpCounts) Record(e Event) { c.ByOp[e.Op]++ }

// Crossovers returns the crossover-op count.
func (c *OpCounts) Crossovers() int64 { return c.ByOp[OpCrossover] }

// Mutations returns the total mutation-op count across the five
// mutation types.
func (c *OpCounts) Mutations() int64 {
	var n int64
	for op := OpPerturb; op < Op(NumOps); op++ {
		n += c.ByOp[op]
	}
	return n
}

// Total returns all gene-level ops.
func (c *OpCounts) Total() int64 { return c.Crossovers() + c.Mutations() }

// Reset zeroes the tallies.
func (c *OpCounts) Reset() { c.ByOp = [NumOps]int64{} }

// multiRecorder fans events out to several recorders.
type multiRecorder []Recorder

func (m multiRecorder) Record(e Event) {
	for _, r := range m {
		r.Record(e)
	}
}

// StartGeneration forwards the snapshot to every member that wants it.
func (m multiRecorder) StartGeneration(gen int, genomes []*gene.Genome) {
	for _, r := range m {
		if gs, ok := r.(GenerationStarter); ok {
			gs.StartGeneration(gen, genomes)
		}
	}
}

// MultiRecorder combines recorders; nils are dropped. It returns nil if
// none remain.
func MultiRecorder(rs ...Recorder) Recorder {
	var out multiRecorder
	for _, r := range rs {
		if r != nil {
			out = append(out, r)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}
