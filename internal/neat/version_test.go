package neat

import (
	"testing"
)

// TestPerturbBumpsVersion covers the in-place editing path: perturb
// writes node/conn attributes directly (bypassing the Put* editors), so
// it must bump the phenotype version itself whenever anything changed.
func TestPerturbBumpsVersion(t *testing.T) {
	cfg := testConfig()
	cfg.BiasMutateRate = 1 // guarantee at least one touched gene
	pop, err := NewPopulation(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := newMutator(&cfg, 3)
	g := pop.Genomes[0]
	before := g.Version()
	m.perturb(g)
	if g.Version() == before {
		t.Fatal("perturb changed attributes in place without bumping the version stamp")
	}
}

func TestPerturbNoChangeKeepsVersion(t *testing.T) {
	cfg := testConfig()
	cfg.BiasMutateRate = 0
	cfg.ResponseMutateRate = 0
	cfg.ActivationMutateRate = 0
	cfg.AggregationMutateRate = 0
	cfg.WeightMutateRate = 0
	cfg.EnableMutateRate = 0
	pop, err := NewPopulation(cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	m := newMutator(&cfg, 3)
	g := pop.Genomes[0]
	before := g.Version()
	m.perturb(g)
	if g.Version() != before {
		t.Fatal("no-op perturb bumped the version stamp; elites would never hit the reuse cache")
	}
}

// TestEpochEliteKeepsVersion pins the genome-level-reuse contract at the
// population level: the elite copied into the next generation carries
// its parent's stamp (cache hit), while every mutated child gets a new
// one.
func TestEpochEliteKeepsVersion(t *testing.T) {
	cfg := testConfig()
	cfg.PopulationSize = 24
	pop, err := NewPopulation(cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range pop.Genomes {
		g.Fitness = float64(i)
	}
	bestVersion := pop.Best().Version()
	if _, err := pop.Epoch(); err != nil {
		t.Fatal(err)
	}

	eliteSurvived := false
	for _, g := range pop.Genomes {
		if g.Version() == bestVersion {
			eliteSurvived = true
			break
		}
	}
	if !eliteSurvived {
		t.Fatal("no next-generation genome carries the elite's version stamp; the reuse cache can never hit")
	}
}
