package neat

import (
	"fmt"
	"sort"

	"repro/internal/gene"
	"repro/internal/rng"
)

// Population drives the NEAT generational loop: a set of genomes, their
// species partition, and the reproduction machinery. The caller owns the
// evaluation half of the loop (running each genome in an environment and
// assigning Fitness); Epoch performs selection and reproduction —
// exactly the split between ADAM (inference) and EvE (evolution) in the
// GeneSys SoC.
type Population struct {
	Config  Config
	Genomes []*gene.Genome
	Species []*Species
	// Generation counts completed reproduction rounds; the initial
	// random population is generation 0.
	Generation int
	// BestEver is a copy of the highest-fitness genome observed across
	// all generations.
	BestEver *gene.Genome

	rnd           *rng.XorWow
	ids           *idAssigner
	rec           Recorder
	nextGenomeID  int64
	nextSpeciesID int
}

// NewPopulation builds the initial population: PopulationSize genomes
// each with the minimal topology of Section III-B — input and output
// node genes, fully connected with zero-weight connections when
// InitialConnection is "full".
func NewPopulation(cfg Config, seed uint64) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Population{
		Config: cfg,
		rnd:    rng.New(seed),
		ids:    newIDAssigner(&cfg),
	}
	p.Genomes = make([]*gene.Genome, cfg.PopulationSize)
	for i := range p.Genomes {
		p.Genomes[i] = p.seedGenome()
	}
	return p, nil
}

// seedGenome constructs one minimal-topology genome.
func (p *Population) seedGenome() *gene.Genome {
	cfg := &p.Config
	g := gene.NewGenome(p.nextGenomeID)
	p.nextGenomeID++
	for _, id := range cfg.InputIDs() {
		g.PutNode(gene.NewNode(id, gene.Input))
	}
	for _, id := range cfg.OutputIDs() {
		n := gene.NewNode(id, gene.Output)
		g.PutNode(n)
	}
	if cfg.InitialConnection == "full" {
		for _, in := range cfg.InputIDs() {
			for _, out := range cfg.OutputIDs() {
				// Weights start at zero per the paper; the first
				// perturbation round diversifies them.
				g.PutConn(gene.NewConn(in, out, 0))
			}
		}
	}
	return g
}

// SetRecorder installs a reproduction-event recorder (op counters,
// hardware traces). Pass nil to disable.
func (p *Population) SetRecorder(r Recorder) { p.rec = r }

// Best returns the fittest genome of the current generation.
func (p *Population) Best() *gene.Genome {
	var b *gene.Genome
	for _, g := range p.Genomes {
		if b == nil || g.Fitness > b.Fitness {
			b = g
		}
	}
	return b
}

// MeanFitness returns the current generation's mean fitness.
func (p *Population) MeanFitness() float64 {
	if len(p.Genomes) == 0 {
		return 0
	}
	var sum float64
	for _, g := range p.Genomes {
		sum += g.Fitness
	}
	return sum / float64(len(p.Genomes))
}

// TotalGenes returns the gene count summed over the population — the
// Fig. 4(b) metric and, times gene.WordBytes, the genome-buffer
// footprint of Fig. 5(b).
func (p *Population) TotalGenes() int {
	n := 0
	for _, g := range p.Genomes {
		n += g.NumGenes()
	}
	return n
}

// FootprintBytes is the genome-buffer SRAM footprint of the whole
// generation.
func (p *Population) FootprintBytes() int { return p.TotalGenes() * gene.WordBytes }

// GeneComposition returns the population-wide node and connection gene
// counts (Fig. 11(a)).
func (p *Population) GeneComposition() (nodes, conns int) {
	for _, g := range p.Genomes {
		nodes += len(g.Nodes)
		conns += len(g.Conns)
	}
	return nodes, conns
}

// SpeciesInfo is the per-species snapshot exposed in ReproStats.
type SpeciesInfo struct {
	ID          int
	Size        int
	BestFitness float64
	// Age is generations since the species was founded.
	Age int
	// Stagnant marks species culled this round for lack of progress.
	Stagnant bool
}

// ReproStats summarizes one reproduction round.
type ReproStats struct {
	Generation int
	// NumSpecies after speciation, before reproduction.
	NumSpecies int
	// Species snapshots, ordered by descending best fitness.
	Species []SpeciesInfo
	// Offspring actually produced (== population size).
	Offspring int
	// Elites copied verbatim.
	Elites int
	// ParentUse maps parent genome id → number of children it
	// contributed to (either slot).
	ParentUse map[int64]int
	// FittestParentID / FittestParentReuse report how many children the
	// generation's fittest genome parented — the genome-level-reuse
	// opportunity of Fig. 4(c).
	FittestParentID    int64
	FittestParentReuse int
	// MaxParentReuse is the reuse of whichever parent was used most.
	MaxParentReuse int
}

// Epoch runs selection and reproduction: speciates the evaluated
// population, culls stagnant species, apportions offspring by shared
// fitness, and produces the next generation through elitism, crossover
// and mutation. Fitness values must be assigned before calling.
func (p *Population) Epoch() (ReproStats, error) {
	cfg := &p.Config
	p.ids.newGeneration()
	if gs, ok := p.rec.(GenerationStarter); ok {
		gs.StartGeneration(p.Generation, p.Genomes)
	}

	// Track the best genome ever seen.
	if b := p.Best(); b != nil && (p.BestEver == nil || b.Fitness > p.BestEver.Fitness) {
		p.BestEver = b.Clone()
	}

	p.Species = speciate(p.Genomes, p.Species, cfg, p.Generation, &p.nextSpeciesID)
	stats := ReproStats{
		Generation: p.Generation,
		NumSpecies: len(p.Species),
		ParentUse:  make(map[int64]int),
	}

	survivors := p.cullStagnant()
	if len(survivors) == 0 {
		return stats, fmt.Errorf("neat: generation %d: all species extinct", p.Generation)
	}
	surviving := make(map[int]bool, len(survivors))
	for _, s := range survivors {
		surviving[s.ID] = true
	}
	for _, s := range p.Species {
		stats.Species = append(stats.Species, SpeciesInfo{
			ID:          s.ID,
			Size:        len(s.Members),
			BestFitness: s.BestFitness,
			Age:         p.Generation - s.Created,
			Stagnant:    !surviving[s.ID],
		})
	}
	sort.Slice(stats.Species, func(i, j int) bool {
		return stats.Species[i].BestFitness > stats.Species[j].BestFitness
	})

	quotas := p.apportion(survivors)
	next := make([]*gene.Genome, 0, cfg.PopulationSize)

	for si, s := range survivors {
		quota := quotas[si]
		if quota <= 0 {
			continue
		}
		members := append([]*gene.Genome(nil), s.Members...)
		sort.Slice(members, func(i, j int) bool {
			if members[i].Fitness != members[j].Fitness {
				return members[i].Fitness > members[j].Fitness
			}
			return members[i].ID < members[j].ID // deterministic tiebreak
		})

		// Elites survive unchanged.
		for e := 0; e < cfg.Elitism && e < len(members) && quota > 0; e++ {
			elite := members[e].Clone()
			elite.ID = p.nextGenomeID
			p.nextGenomeID++
			next = append(next, elite)
			quota--
			stats.Elites++
		}

		// Parent pool: the top SurvivalThreshold fraction, at least one.
		cut := int(float64(len(members))*cfg.SurvivalThreshold + 0.5)
		if cut < 1 {
			cut = 1
		}
		parents := members[:cut]

		for ; quota > 0; quota-- {
			child := p.makeChild(parents, stats.ParentUse)
			next = append(next, child)
		}
	}

	// Rounding in apportionment can leave the next generation short or
	// long; trim or top up from the global parent pool.
	for len(next) > cfg.PopulationSize {
		next = next[:len(next)-1]
	}
	if len(next) < cfg.PopulationSize {
		all := p.allParents(survivors)
		for len(next) < cfg.PopulationSize {
			next = append(next, p.makeChild(all, stats.ParentUse))
		}
	}

	// Fig. 4(c) metrics: reuse of the fittest parent and the max-reused
	// parent.
	if b := p.Best(); b != nil {
		stats.FittestParentID = b.ID
		stats.FittestParentReuse = stats.ParentUse[b.ID]
	}
	for _, n := range stats.ParentUse {
		if n > stats.MaxParentReuse {
			stats.MaxParentReuse = n
		}
	}
	stats.Offspring = len(next)

	p.Genomes = next
	p.Generation++
	return stats, nil
}

// cullStagnant removes species stagnant beyond MaxStagnation, always
// preserving at least SpeciesElitism species (the fittest ones).
func (p *Population) cullStagnant() []*Species {
	cfg := &p.Config
	ordered := append([]*Species(nil), p.Species...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].BestFitness > ordered[j].BestFitness })
	var out []*Species
	for rank, s := range ordered {
		if rank < cfg.SpeciesElitism || !s.Stagnant(p.Generation, cfg.MaxStagnation) {
			out = append(out, s)
		}
	}
	return out
}

// apportion distributes PopulationSize offspring across species in
// proportion to their mean (shared) fitness, flooring at MinSpeciesSize.
func (p *Population) apportion(species []*Species) []int {
	cfg := &p.Config
	means := make([]float64, len(species))
	minMean := means[0]
	for i, s := range species {
		means[i] = s.MeanAdjustedFitness()
		if i == 0 || means[i] < minMean {
			minMean = means[i]
		}
	}
	// Shift to non-negative and add a floor so zero-fitness species
	// still reproduce.
	var total float64
	for i := range means {
		means[i] = means[i] - minMean + 1e-9
		total += means[i]
	}
	quotas := make([]int, len(species))
	assigned := 0
	for i := range species {
		q := int(float64(cfg.PopulationSize) * means[i] / total)
		if q < cfg.MinSpeciesSize {
			q = cfg.MinSpeciesSize
		}
		quotas[i] = q
		assigned += q
	}
	// Normalize to exactly PopulationSize by trimming the largest /
	// growing the smallest quotas.
	for assigned > cfg.PopulationSize {
		maxI := 0
		for i, q := range quotas {
			if q > quotas[maxI] {
				maxI = i
			}
		}
		if quotas[maxI] <= cfg.MinSpeciesSize {
			break
		}
		quotas[maxI]--
		assigned--
	}
	for assigned < cfg.PopulationSize {
		minI := 0
		for i, q := range quotas {
			if q < quotas[minI] {
				minI = i
			}
		}
		quotas[minI]++
		assigned++
	}
	return quotas
}

// allParents concatenates every species' survivor pool.
func (p *Population) allParents(species []*Species) []*gene.Genome {
	var out []*gene.Genome
	for _, s := range species {
		members := append([]*gene.Genome(nil), s.Members...)
		sort.Slice(members, func(i, j int) bool { return members[i].Fitness > members[j].Fitness })
		cut := int(float64(len(members))*p.Config.SurvivalThreshold + 0.5)
		if cut < 1 {
			cut = 1
		}
		out = append(out, members[:cut]...)
	}
	return out
}

// pickParent selects a parent by tournament: the fittest of
// TournamentSize uniform draws (size ≤ 1 degenerates to uniform).
func (p *Population) pickParent(parents []*gene.Genome) *gene.Genome {
	best := parents[p.rnd.Intn(len(parents))]
	for t := 1; t < p.Config.TournamentSize; t++ {
		c := parents[p.rnd.Intn(len(parents))]
		if c.Fitness > best.Fitness {
			best = c
		}
	}
	return best
}

// makeChild produces one offspring from the parent pool: crossover with
// probability CrossoverRate (fitter parent first), otherwise a clone of
// a single parent; then the mutation pipeline.
func (p *Population) makeChild(parents []*gene.Genome, use map[int64]int) *gene.Genome {
	cfg := &p.Config
	childID := p.nextGenomeID
	p.nextGenomeID++

	p1 := p.pickParent(parents)
	m := &mutator{
		cfg:        cfg,
		rnd:        p.rnd,
		rec:        p.rec,
		ids:        p.ids,
		generation: p.Generation,
		child:      childID,
		parent1:    p1.ID,
		parent2:    -1,
	}

	var child *gene.Genome
	if len(parents) > 1 && p.rnd.Bool(cfg.CrossoverRate) {
		p2 := p.pickParent(parents)
		for p2 == p1 {
			p2 = parents[p.rnd.Intn(len(parents))]
		}
		if p2.Fitness > p1.Fitness {
			p1, p2 = p2, p1
		}
		m.parent1, m.parent2 = p1.ID, p2.ID
		child = m.crossover(p1, p2, childID)
		use[p2.ID]++
	} else {
		child = p1.Clone()
		child.ID = childID
		child.Fitness = 0
	}
	use[p1.ID]++

	m.mutate(child)
	child.Fitness = 0
	return child
}
