package neat

import (
	"fmt"
	"slices"
	"sort"
	"time"

	"repro/internal/gene"
	"repro/internal/rng"
)

// Population drives the NEAT generational loop: a set of genomes, their
// species partition, and the reproduction machinery. The caller owns the
// evaluation half of the loop (running each genome in an environment and
// assigning Fitness); Epoch performs selection and reproduction —
// exactly the split between ADAM (inference) and EvE (evolution) in the
// GeneSys SoC.
type Population struct {
	Config  Config
	Genomes []*gene.Genome
	Species []*Species
	// Generation counts completed reproduction rounds; the initial
	// random population is generation 0.
	Generation int
	// BestEver is a copy of the highest-fitness genome observed across
	// all generations.
	BestEver *gene.Genome
	// EpochParallelism bounds the workers of the speciation kernel's
	// parallel distance pass (0 = GOMAXPROCS). Purely an execution-shape
	// knob: the epoch's outputs are byte-identical at every setting —
	// the distances fanned out are pure functions of the genomes, and
	// assignment stays serial. Never serialized.
	EpochParallelism int

	rnd           *rng.XorWow
	ids           *idAssigner
	rec           Recorder
	nextGenomeID  int64
	nextSpeciesID int

	// spec is the speciation kernel's cross-generation state (distance
	// memo + scratch); scratch is the reproduction side's reusable
	// buffers. Neither is serialized — a restored population rebuilds
	// both lazily.
	spec    speciator
	scratch epochScratch
}

// epochScratch is the reproduction machinery's reusable per-population
// storage: sort buffers, the parent-use ledger, the survivor set, and
// the mutation-stage scratch. One generation's reproduction allocates
// only what escapes into the next generation (the child genomes
// themselves).
type epochScratch struct {
	members   []*gene.Genome // per-species fitness-sort buffer
	parents   []*gene.Genome // allParents concatenation buffer
	ordered   []*Species     // cullStagnant sort buffer
	survivors []*Species
	surviving map[int]bool
	parentUse map[int64]int
	means     []float64
	quotas    []int

	// Mutation-stage scratch (see mutate.go).
	srcs  []int32
	dsts  []int32
	seen  map[int32]bool
	stack []int32
}

// NewPopulation builds the initial population: PopulationSize genomes
// each with the minimal topology of Section III-B — input and output
// node genes, fully connected with zero-weight connections when
// InitialConnection is "full".
func NewPopulation(cfg Config, seed uint64) (*Population, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	p := &Population{
		Config: cfg,
		rnd:    rng.New(seed),
		ids:    newIDAssigner(&cfg),
	}
	p.Genomes = make([]*gene.Genome, cfg.PopulationSize)
	for i := range p.Genomes {
		p.Genomes[i] = p.seedGenome()
	}
	return p, nil
}

// seedGenome constructs one minimal-topology genome.
func (p *Population) seedGenome() *gene.Genome {
	cfg := &p.Config
	g := gene.NewGenome(p.nextGenomeID)
	p.nextGenomeID++
	for _, id := range cfg.InputIDs() {
		g.PutNode(gene.NewNode(id, gene.Input))
	}
	for _, id := range cfg.OutputIDs() {
		n := gene.NewNode(id, gene.Output)
		g.PutNode(n)
	}
	if cfg.InitialConnection == "full" {
		for _, in := range cfg.InputIDs() {
			for _, out := range cfg.OutputIDs() {
				// Weights start at zero per the paper; the first
				// perturbation round diversifies them.
				g.PutConn(gene.NewConn(in, out, 0))
			}
		}
	}
	return g
}

// SetRecorder installs a reproduction-event recorder (op counters,
// hardware traces). Pass nil to disable.
func (p *Population) SetRecorder(r Recorder) { p.rec = r }

// Best returns the fittest genome of the current generation.
func (p *Population) Best() *gene.Genome {
	var b *gene.Genome
	for _, g := range p.Genomes {
		if b == nil || g.Fitness > b.Fitness {
			b = g
		}
	}
	return b
}

// MeanFitness returns the current generation's mean fitness.
func (p *Population) MeanFitness() float64 {
	if len(p.Genomes) == 0 {
		return 0
	}
	var sum float64
	for _, g := range p.Genomes {
		sum += g.Fitness
	}
	return sum / float64(len(p.Genomes))
}

// TotalGenes returns the gene count summed over the population — the
// Fig. 4(b) metric and, times gene.WordBytes, the genome-buffer
// footprint of Fig. 5(b).
func (p *Population) TotalGenes() int {
	n := 0
	for _, g := range p.Genomes {
		n += g.NumGenes()
	}
	return n
}

// FootprintBytes is the genome-buffer SRAM footprint of the whole
// generation.
func (p *Population) FootprintBytes() int { return p.TotalGenes() * gene.WordBytes }

// GeneComposition returns the population-wide node and connection gene
// counts (Fig. 11(a)).
func (p *Population) GeneComposition() (nodes, conns int) {
	for _, g := range p.Genomes {
		nodes += len(g.Nodes)
		conns += len(g.Conns)
	}
	return nodes, conns
}

// SpeciesInfo is the per-species snapshot exposed in ReproStats.
type SpeciesInfo struct {
	ID          int
	Size        int
	BestFitness float64
	// Age is generations since the species was founded.
	Age int
	// Stagnant marks species culled this round for lack of progress.
	Stagnant bool
}

// ReproStats summarizes one reproduction round.
type ReproStats struct {
	Generation int
	// NumSpecies after speciation, before reproduction.
	NumSpecies int
	// Species snapshots, ordered by descending best fitness.
	Species []SpeciesInfo
	// Offspring actually produced (== population size).
	Offspring int
	// Elites copied verbatim.
	Elites int
	// ParentUse maps parent genome id → number of children it
	// contributed to (either slot). The map is reused scratch: it is
	// valid until the population's next Epoch call (copy it to retain).
	ParentUse map[int64]int
	// FittestParentID / FittestParentReuse report how many children the
	// generation's fittest genome parented — the genome-level-reuse
	// opportunity of Fig. 4(c).
	FittestParentID    int64
	FittestParentReuse int
	// MaxParentReuse is the reuse of whichever parent was used most.
	MaxParentReuse int
	// SpeciateDur is the wall-clock time of the speciation phase within
	// this epoch — observability only, deliberately excluded from
	// serialization so histories stay byte-identical across hosts.
	SpeciateDur time.Duration `json:"-"`
}

// Epoch runs selection and reproduction: speciates the evaluated
// population, culls stagnant species, apportions offspring by shared
// fitness, and produces the next generation through elitism, crossover
// and mutation. Fitness values must be assigned before calling.
func (p *Population) Epoch() (ReproStats, error) {
	cfg := &p.Config
	p.ids.newGeneration()
	if gs, ok := p.rec.(GenerationStarter); ok {
		gs.StartGeneration(p.Generation, p.Genomes)
	}

	// Track the best genome ever seen.
	if b := p.Best(); b != nil && (p.BestEver == nil || b.Fitness > p.BestEver.Fitness) {
		p.BestEver = b.Clone()
	}

	specStart := time.Now()
	p.spec.workers = p.EpochParallelism
	p.Species = p.spec.speciate(p.Genomes, p.Species, cfg, p.Generation, &p.nextSpeciesID)
	specDur := time.Since(specStart)

	if p.scratch.parentUse == nil {
		p.scratch.parentUse = make(map[int64]int)
	} else {
		clear(p.scratch.parentUse)
	}
	stats := ReproStats{
		Generation:  p.Generation,
		NumSpecies:  len(p.Species),
		ParentUse:   p.scratch.parentUse,
		SpeciateDur: specDur,
	}

	survivors := p.cullStagnant()
	if len(survivors) == 0 {
		return stats, fmt.Errorf("neat: generation %d: all species extinct", p.Generation)
	}
	if p.scratch.surviving == nil {
		p.scratch.surviving = make(map[int]bool, len(survivors))
	} else {
		clear(p.scratch.surviving)
	}
	surviving := p.scratch.surviving
	for _, s := range survivors {
		surviving[s.ID] = true
	}
	stats.Species = make([]SpeciesInfo, 0, len(p.Species))
	for _, s := range p.Species {
		stats.Species = append(stats.Species, SpeciesInfo{
			ID:          s.ID,
			Size:        len(s.Members),
			BestFitness: s.BestFitness,
			Age:         p.Generation - s.Created,
			Stagnant:    !surviving[s.ID],
		})
	}
	// Non-total comparator (best-fitness ties possible): stays on
	// sort.Slice so tie order matches the pre-kernel implementation
	// exactly.
	sort.Slice(stats.Species, func(i, j int) bool {
		return stats.Species[i].BestFitness > stats.Species[j].BestFitness
	})

	quotas := p.apportion(survivors)
	next := make([]*gene.Genome, 0, cfg.PopulationSize)

	for si, s := range survivors {
		quota := quotas[si]
		if quota <= 0 {
			continue
		}
		// Sort into the reusable member buffer (s.Members keeps its
		// assignment order — MeanAdjustedFitness and the next epoch
		// depend on it). The buffer is recycled per species: parents
		// aliases it only within this iteration.
		members := append(p.scratch.members[:0], s.Members...)
		p.scratch.members = members
		slices.SortFunc(members, compareMembers)

		// Elites survive unchanged.
		for e := 0; e < cfg.Elitism && e < len(members) && quota > 0; e++ {
			elite := members[e].Clone()
			elite.ID = p.nextGenomeID
			p.nextGenomeID++
			next = append(next, elite)
			quota--
			stats.Elites++
		}

		// Parent pool: the top SurvivalThreshold fraction, at least one.
		cut := int(float64(len(members))*cfg.SurvivalThreshold + 0.5)
		if cut < 1 {
			cut = 1
		}
		parents := members[:cut]

		for ; quota > 0; quota-- {
			child := p.makeChild(parents, stats.ParentUse)
			next = append(next, child)
		}
	}

	// Rounding in apportionment can leave the next generation short or
	// long; trim or top up from the global parent pool.
	for len(next) > cfg.PopulationSize {
		next = next[:len(next)-1]
	}
	if len(next) < cfg.PopulationSize {
		all := p.allParents(survivors)
		for len(next) < cfg.PopulationSize {
			next = append(next, p.makeChild(all, stats.ParentUse))
		}
	}

	// Fig. 4(c) metrics: reuse of the fittest parent and the max-reused
	// parent.
	if b := p.Best(); b != nil {
		stats.FittestParentID = b.ID
		stats.FittestParentReuse = stats.ParentUse[b.ID]
	}
	for _, n := range stats.ParentUse {
		if n > stats.MaxParentReuse {
			stats.MaxParentReuse = n
		}
	}
	stats.Offspring = len(next)

	p.Genomes = next
	p.Generation++
	return stats, nil
}

// compareMembers is the member sort order: fitness descending, genome
// id ascending as the deterministic tiebreak. The comparator is total
// (ids are unique), so the unstable sort has a unique result and the
// slices.SortFunc swap from sort.Slice cannot reorder ties.
func compareMembers(a, b *gene.Genome) int {
	switch {
	case a.Fitness > b.Fitness:
		return -1
	case a.Fitness < b.Fitness:
		return 1
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// cullStagnant removes species stagnant beyond MaxStagnation, always
// preserving at least SpeciesElitism species (the fittest ones).
func (p *Population) cullStagnant() []*Species {
	cfg := &p.Config
	ordered := append(p.scratch.ordered[:0], p.Species...)
	p.scratch.ordered = ordered
	// Non-total comparator (best-fitness ties decide survival rank):
	// stays on sort.Slice for byte-identical tie order.
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].BestFitness > ordered[j].BestFitness })
	out := p.scratch.survivors[:0]
	for rank, s := range ordered {
		if rank < cfg.SpeciesElitism || !s.Stagnant(p.Generation, cfg.MaxStagnation) {
			out = append(out, s)
		}
	}
	p.scratch.survivors = out
	if len(out) == 0 {
		return nil
	}
	return out
}

// apportion distributes PopulationSize offspring across species in
// proportion to their mean (shared) fitness, flooring at MinSpeciesSize.
func (p *Population) apportion(species []*Species) []int {
	cfg := &p.Config
	means := append(p.scratch.means[:0], make([]float64, len(species))...)
	p.scratch.means = means
	minMean := means[0]
	for i, s := range species {
		means[i] = s.MeanAdjustedFitness()
		if i == 0 || means[i] < minMean {
			minMean = means[i]
		}
	}
	// Shift to non-negative and add a floor so zero-fitness species
	// still reproduce.
	var total float64
	for i := range means {
		means[i] = means[i] - minMean + 1e-9
		total += means[i]
	}
	quotas := p.scratch.quotas[:0]
	assigned := 0
	for i := range species {
		q := int(float64(cfg.PopulationSize) * means[i] / total)
		if q < cfg.MinSpeciesSize {
			q = cfg.MinSpeciesSize
		}
		quotas = append(quotas, q)
		assigned += q
	}
	p.scratch.quotas = quotas
	// Normalize to exactly PopulationSize by trimming the largest /
	// growing the smallest quotas.
	for assigned > cfg.PopulationSize {
		maxI := 0
		for i, q := range quotas {
			if q > quotas[maxI] {
				maxI = i
			}
		}
		if quotas[maxI] <= cfg.MinSpeciesSize {
			break
		}
		quotas[maxI]--
		assigned--
	}
	for assigned < cfg.PopulationSize {
		minI := 0
		for i, q := range quotas {
			if q < quotas[minI] {
				minI = i
			}
		}
		quotas[minI]++
		assigned++
	}
	return quotas
}

// allParents concatenates every species' survivor pool into the shared
// parent scratch buffer (valid until the next Epoch).
func (p *Population) allParents(species []*Species) []*gene.Genome {
	out := p.scratch.parents[:0]
	for _, s := range species {
		members := append(p.scratch.members[:0], s.Members...)
		p.scratch.members = members
		// Non-total comparator (fitness ties): stays on sort.Slice for
		// byte-identical tie order with the pre-kernel implementation.
		sort.Slice(members, func(i, j int) bool { return members[i].Fitness > members[j].Fitness })
		cut := int(float64(len(members))*p.Config.SurvivalThreshold + 0.5)
		if cut < 1 {
			cut = 1
		}
		out = append(out, members[:cut]...)
	}
	p.scratch.parents = out
	return out
}

// pickParent selects a parent by tournament: the fittest of
// TournamentSize uniform draws (size ≤ 1 degenerates to uniform).
func (p *Population) pickParent(parents []*gene.Genome) *gene.Genome {
	best := parents[p.rnd.Intn(len(parents))]
	for t := 1; t < p.Config.TournamentSize; t++ {
		c := parents[p.rnd.Intn(len(parents))]
		if c.Fitness > best.Fitness {
			best = c
		}
	}
	return best
}

// makeChild produces one offspring from the parent pool: crossover with
// probability CrossoverRate (fitter parent first), otherwise a clone of
// a single parent; then the mutation pipeline.
func (p *Population) makeChild(parents []*gene.Genome, use map[int64]int) *gene.Genome {
	cfg := &p.Config
	childID := p.nextGenomeID
	p.nextGenomeID++

	p1 := p.pickParent(parents)
	m := mutator{
		cfg:        cfg,
		rnd:        p.rnd,
		rec:        p.rec,
		ids:        p.ids,
		scratch:    &p.scratch,
		generation: p.Generation,
		child:      childID,
		parent1:    p1.ID,
		parent2:    -1,
	}

	var child *gene.Genome
	if len(parents) > 1 && p.rnd.Bool(cfg.CrossoverRate) {
		p2 := p.pickParent(parents)
		for p2 == p1 {
			p2 = parents[p.rnd.Intn(len(parents))]
		}
		if p2.Fitness > p1.Fitness {
			p1, p2 = p2, p1
		}
		m.parent1, m.parent2 = p1.ID, p2.ID
		child = m.crossover(p1, p2, childID)
		use[p2.ID]++
	} else {
		child = p1.Clone()
		child.ID = childID
		child.Fitness = 0
	}
	use[p1.ID]++

	m.mutate(child)
	child.Fitness = 0
	return child
}
