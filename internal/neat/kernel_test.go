package neat

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"repro/internal/env"
)

// diversify runs a few reproduction rounds with synthetic fitness so
// the population develops real topological and attribute diversity —
// multiple species, disjoint genes, perturbed weights — before a test
// or benchmark measures the kernel on it.
func diversify(tb testing.TB, p *Population, epochs int) {
	tb.Helper()
	for e := 0; e < epochs; e++ {
		for j, g := range p.Genomes {
			g.Fitness = float64((e*7 + j) % 17)
		}
		if _, err := p.Epoch(); err != nil {
			tb.Fatal(err)
		}
	}
}

// TestCompatDistanceMatchesReference pins the merge-join distance
// kernel bit-identical to the binary-search reference over genuinely
// evolved genome pairs (disjoint genes, deleted nodes, perturbed
// attributes), and checks the symmetry the memo key relies on.
func TestCompatDistanceMatchesReference(t *testing.T) {
	for _, shape := range []struct{ in, out int }{{4, 2}, {16, 4}} {
		cfg := DefaultConfig(shape.in, shape.out)
		cfg.PopulationSize = 24
		p, err := NewPopulation(cfg, 11)
		if err != nil {
			t.Fatal(err)
		}
		diversify(t, p, 6)
		for i, a := range p.Genomes {
			for _, b := range p.Genomes[i:] {
				want := slowCompatDistance(a, b, &cfg)
				got := CompatDistance(a, b, &cfg)
				if math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("shape %dx%d: CompatDistance(%d,%d) = %v, reference %v",
						shape.in, shape.out, a.ID, b.ID, got, want)
				}
				rev := CompatDistance(b, a, &cfg)
				if math.Float64bits(rev) != math.Float64bits(got) {
					t.Fatalf("shape %dx%d: asymmetric distance (%d,%d): %v vs %v",
						shape.in, shape.out, a.ID, b.ID, got, rev)
				}
			}
		}
	}
}

// TestEpochKernelMatchesReference is the golden-digest differential of
// the reproduction kernel: two same-seeded populations evolve side by
// side — one through the kernel (memoized merge-join distances,
// parallel distance rows, refresh reuse), one through the pre-kernel
// reference path (speciator slow mode) — across every workload
// environment shape × several seeds. Each generation, the serialized
// populations (genome ids, gene lists, species, PRNG stream) must be
// byte-identical and the ReproStats equal; any divergence in distance
// bits, tie-breaking, or PRNG consumption order trips it immediately.
func TestEpochKernelMatchesReference(t *testing.T) {
	// One env name per workload family (workload.go); shapes dedupe —
	// the four *-ram workloads share the 128-observation RAM shape.
	envNames := []string{
		"cartpole", "mountaincar", "acrobot", "lunarlander",
		"bipedal", "mario", "airraid-ram", "alien-ram",
		"asterix-ram", "amidar-ram",
	}
	type shape struct{ in, out int }
	seen := map[shape]bool{}
	for _, name := range envNames {
		probe, err := env.New(name)
		if err != nil {
			t.Fatal(err)
		}
		sh := shape{probe.ObservationSize(), probe.ActionSize()}
		if seen[sh] {
			continue
		}
		seen[sh] = true

		for seed := uint64(1); seed <= 3; seed++ {
			cfg := DefaultConfig(sh.in, sh.out)
			cfg.PopulationSize = 48
			fast, err := NewPopulation(cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			// Force real fan-out in the parallel distance pass even on a
			// single-core host.
			fast.EpochParallelism = 4
			slow, err := NewPopulation(cfg, seed)
			if err != nil {
				t.Fatal(err)
			}
			slow.spec.slow = true

			for gen := 0; gen < 5; gen++ {
				for j := range fast.Genomes {
					f := float64((gen*13+j*7)%23) / 3
					fast.Genomes[j].Fitness = f
					slow.Genomes[j].Fitness = f
				}
				fs, ferr := fast.Epoch()
				ss, serr := slow.Epoch()
				if (ferr == nil) != (serr == nil) {
					t.Fatalf("%s seed %d gen %d: kernel err %v, reference err %v",
						name, seed, gen, ferr, serr)
				}
				if ferr != nil {
					break
				}
				fs.SpeciateDur, ss.SpeciateDur = 0, 0
				if !reflect.DeepEqual(fs, ss) {
					t.Fatalf("%s seed %d gen %d: ReproStats diverged\nkernel:    %+v\nreference: %+v",
						name, seed, gen, fs, ss)
				}
				var fb, sb bytes.Buffer
				if err := fast.Save(&fb); err != nil {
					t.Fatal(err)
				}
				if err := slow.Save(&sb); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fb.Bytes(), sb.Bytes()) {
					for j := range fast.Genomes {
						fg, sg := fast.Genomes[j], slow.Genomes[j]
						if fg.ID != sg.ID || !reflect.DeepEqual(fg.Nodes, sg.Nodes) ||
							!reflect.DeepEqual(fg.Conns, sg.Conns) {
							t.Fatalf("%s seed %d gen %d: genome slot %d diverged (kernel id %d, reference id %d)",
								name, seed, gen, j, fg.ID, sg.ID)
						}
					}
					t.Fatalf("%s seed %d gen %d: serialized populations diverged outside genome slots",
						name, seed, gen)
				}
			}
		}
	}
}

// TestSpeciateMemoWarmPath pins that a warm memo (the steady daemon
// state) still yields the identical partition: same population, two
// speciators — one cold, one that already speciated the same inputs —
// must produce identical species.
func TestSpeciateMemoWarmPath(t *testing.T) {
	cfg := DefaultConfig(8, 4)
	cfg.PopulationSize = 32
	p, err := NewPopulation(cfg, 21)
	if err != nil {
		t.Fatal(err)
	}
	diversify(t, p, 5)

	var warm speciator
	id1 := p.nextSpeciesID
	first := warm.speciate(p.Genomes, p.Species, &p.Config, p.Generation, &id1)
	id2 := p.nextSpeciesID
	second := warm.speciate(p.Genomes, p.Species, &p.Config, p.Generation, &id2)

	var cold speciator
	id3 := p.nextSpeciesID
	ref := cold.speciate(p.Genomes, p.Species, &p.Config, p.Generation, &id3)

	if id1 != id2 || id1 != id3 {
		t.Fatalf("species id allocation diverged: %d %d %d", id1, id2, id3)
	}
	for _, got := range [][]*Species{first, second} {
		if len(got) != len(ref) {
			t.Fatalf("species count %d, want %d", len(got), len(ref))
		}
		for i := range got {
			if got[i].ID != ref[i].ID ||
				got[i].Representative.ID != ref[i].Representative.ID ||
				len(got[i].Members) != len(ref[i].Members) {
				t.Fatalf("species %d diverged: {id %d rep %d n %d} vs {id %d rep %d n %d}",
					i, got[i].ID, got[i].Representative.ID, len(got[i].Members),
					ref[i].ID, ref[i].Representative.ID, len(ref[i].Members))
			}
			for j := range got[i].Members {
				if got[i].Members[j].ID != ref[i].Members[j].ID {
					t.Fatalf("species %d member %d: %d vs %d",
						i, j, got[i].Members[j].ID, ref[i].Members[j].ID)
				}
			}
		}
	}
}

// benchPopulation builds a diversified RAM-scale population — the
// heaviest workload shape, where speciation dominated generation time
// before the kernel.
func benchPopulation(b *testing.B, inputs, outputs, pop, epochs int) *Population {
	b.Helper()
	cfg := DefaultConfig(inputs, outputs)
	cfg.PopulationSize = pop
	p, err := NewPopulation(cfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	diversify(b, p, epochs)
	return p
}

// BenchmarkSpeciate measures one cold speciation pass (fresh speciator
// per iteration — no memo carry-over, so the number isolates the
// merge-join distance kernel) at the RAM workload scale.
func BenchmarkSpeciate(b *testing.B) {
	p := benchPopulation(b, 128, 18, 150, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := p.nextSpeciesID
		speciate(p.Genomes, p.Species, &p.Config, p.Generation, &id)
	}
}

// BenchmarkEpoch measures the full reproduction round — speciation
// (warm memo, the steady state), culling, apportionment, crossover,
// mutation — at the RAM workload scale.
func BenchmarkEpoch(b *testing.B) {
	p := benchPopulation(b, 128, 18, 150, 8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, g := range p.Genomes {
			g.Fitness = float64((i + j) % 13)
		}
		if _, err := p.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
}
