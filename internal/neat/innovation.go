package neat

import "repro/internal/gene"

// splitKey identifies an add-node mutation site: the connection being
// split. Two genomes splitting the same connection in the same
// generation receive the same new node id, the innovation-reuse rule
// that keeps structural mutations alignable during crossover.
type splitKey struct {
	src, dst int32
}

// idAssigner hands out node ids for structural mutations.
//
// The default mode keeps a global counter (neat-python semantics) with
// per-generation reuse of ids for identical splits. The hardware-
// faithful mode (Config.LocalNodeIDs) instead implements the Add Gene
// engine's rule — "a node ID greater than any other node present in the
// network" — which needs no global state and is what the chip does.
type idAssigner struct {
	local   bool
	next    int32
	bySplit map[splitKey]int32
}

func newIDAssigner(cfg *Config) *idAssigner {
	return &idAssigner{
		local:   cfg.LocalNodeIDs,
		next:    int32(cfg.NumInputs + cfg.NumOutputs),
		bySplit: make(map[splitKey]int32),
	}
}

// newGeneration clears the per-generation split-reuse table.
func (a *idAssigner) newGeneration() {
	if len(a.bySplit) > 0 {
		a.bySplit = make(map[splitKey]int32)
	}
}

// nodeIDForSplit returns the id for a node splitting conn (src → dst) in
// genome g.
func (a *idAssigner) nodeIDForSplit(g *gene.Genome, src, dst int32) int32 {
	if a.local {
		return g.MaxNodeIDIn() + 1
	}
	k := splitKey{src, dst}
	if id, ok := a.bySplit[k]; ok && !g.HasNode(id) {
		return id
	}
	id := a.next
	a.next++
	a.bySplit[k] = id
	return id
}
