package neat

import (
	"math"

	"repro/internal/gene"
)

// CompatDistance computes the NEAT compatibility distance between two
// genomes:
//
//	δ = c_d · U/N + c_w · W̄
//
// where U is the number of unmatched (disjoint or excess) genes, N the
// size of the larger genome, and W̄ the mean attribute distance of
// matching genes. Matching is by key, following neat-python. This is the
// niche metric behind speciation (Section II-D).
func CompatDistance(a, b *gene.Genome, cfg *Config) float64 {
	if a.NumGenes() == 0 && b.NumGenes() == 0 {
		return 0
	}
	var unmatched int
	var attrDist float64
	var matched int

	for _, n1 := range a.Nodes {
		if n2, ok := b.Node(n1.NodeID); ok {
			attrDist += nodeDistance(n1, n2)
			matched++
		} else {
			unmatched++
		}
	}
	for _, n2 := range b.Nodes {
		if !a.HasNode(n2.NodeID) {
			unmatched++
		}
	}
	for _, c1 := range a.Conns {
		if c2, ok := b.Conn(c1.Src, c1.Dst); ok {
			attrDist += connDistance(c1, c2)
			matched++
		} else {
			unmatched++
		}
	}
	for _, c2 := range b.Conns {
		if !a.HasConn(c2.Src, c2.Dst) {
			unmatched++
		}
	}

	n := a.NumGenes()
	if b.NumGenes() > n {
		n = b.NumGenes()
	}
	if n == 0 {
		n = 1
	}
	d := cfg.CompatDisjointCoeff * float64(unmatched) / float64(n)
	if matched > 0 {
		d += cfg.CompatWeightCoeff * attrDist / float64(matched)
	}
	return d
}

// nodeDistance is the attribute distance of two homologous node genes
// (neat-python's node gene distance).
func nodeDistance(a, b gene.Gene) float64 {
	d := math.Abs(a.Bias-b.Bias) + math.Abs(a.Response-b.Response)
	if a.Activation != b.Activation {
		d++
	}
	if a.Aggregation != b.Aggregation {
		d++
	}
	return d
}

// connDistance is the attribute distance of two homologous connection
// genes.
func connDistance(a, b gene.Gene) float64 {
	d := math.Abs(a.Weight - b.Weight)
	if a.Enabled != b.Enabled {
		d++
	}
	return d
}

// Species is a niche of structurally similar genomes sharing fitness.
type Species struct {
	ID             int
	Representative *gene.Genome
	Members        []*gene.Genome

	// BestFitness is the best raw fitness the species ever achieved;
	// LastImproved is the generation it last rose — the stagnation
	// inputs.
	BestFitness  float64
	LastImproved int
	Created      int
}

// Stagnant reports whether the species has gone maxStagnation
// generations without improving.
func (s *Species) Stagnant(generation, maxStagnation int) bool {
	return generation-s.LastImproved > maxStagnation
}

// MeanAdjustedFitness returns the fitness-sharing value: the species'
// mean member fitness. Sharing by species size is implicit — a species'
// reproduction quota is proportional to its mean, not its sum, so large
// species do not swamp small ones and young topological innovations
// survive long enough to optimize (the paper's "fitness sharing").
func (s *Species) MeanAdjustedFitness() float64 {
	if len(s.Members) == 0 {
		return 0
	}
	var sum float64
	for _, m := range s.Members {
		sum += m.Fitness
	}
	return sum / float64(len(s.Members))
}

// best returns the fittest member, or nil for an empty species.
func (s *Species) best() *gene.Genome {
	var b *gene.Genome
	for _, m := range s.Members {
		if b == nil || m.Fitness > b.Fitness {
			b = m
		}
	}
	return b
}

// speciate partitions genomes into species. Existing species keep their
// identity via representatives; genomes join the first species whose
// representative is within the compatibility threshold, and found new
// species otherwise. Representatives are refreshed to the member closest
// to the previous representative (neat-python semantics).
func speciate(genomes []*gene.Genome, prev []*Species, cfg *Config, generation int, nextSpeciesID *int) []*Species {
	species := make([]*Species, 0, len(prev))
	for _, s := range prev {
		species = append(species, &Species{
			ID:             s.ID,
			Representative: s.Representative,
			BestFitness:    s.BestFitness,
			LastImproved:   s.LastImproved,
			Created:        s.Created,
		})
	}

	for _, g := range genomes {
		placed := false
		bestIdx, bestDist := -1, math.Inf(1)
		for i, s := range species {
			d := CompatDistance(g, s.Representative, cfg)
			if d < cfg.CompatThreshold && d < bestDist {
				bestIdx, bestDist = i, d
				placed = true
			}
		}
		if placed {
			species[bestIdx].Members = append(species[bestIdx].Members, g)
			continue
		}
		*nextSpeciesID++
		species = append(species, &Species{
			ID:             *nextSpeciesID,
			Representative: g,
			Members:        []*gene.Genome{g},
			LastImproved:   generation,
			Created:        generation,
		})
	}

	// Drop species that attracted no members, refresh representatives,
	// and update stagnation state.
	alive := species[:0]
	for _, s := range species {
		if len(s.Members) == 0 {
			continue
		}
		closest, closestDist := s.Members[0], math.Inf(1)
		for _, m := range s.Members {
			d := CompatDistance(m, s.Representative, cfg)
			if d < closestDist {
				closest, closestDist = m, d
			}
		}
		s.Representative = closest
		if b := s.best(); b != nil && b.Fitness > s.BestFitness {
			s.BestFitness = b.Fitness
			s.LastImproved = generation
		}
		alive = append(alive, s)
	}
	return alive
}
