package neat

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/gene"
)

// CompatDistance computes the NEAT compatibility distance between two
// genomes:
//
//	δ = c_d · U/N + c_w · W̄
//
// where U is the number of unmatched (disjoint or excess) genes, N the
// size of the larger genome, and W̄ the mean attribute distance of
// matching genes. Matching is by key, following neat-python. This is the
// niche metric behind speciation (Section II-D).
//
// Gene alignment is a linear merge-join over the two genomes' sorted
// clusters (Nodes ascending by id, Conns ascending by (src, dst) — the
// invariant gene.Genome maintains and Validate enforces), O(G) per pair
// instead of the per-gene binary search of slowCompatDistance. Matched
// attribute distances accumulate in ascending key order — the same
// float addition order as the reference — so the result is bit-identical
// to slowCompatDistance (pinned by TestCompatDistanceMatchesReference).
func CompatDistance(a, b *gene.Genome, cfg *Config) float64 {
	if a.NumGenes() == 0 && b.NumGenes() == 0 {
		return 0
	}
	var unmatched int
	var attrDist float64
	var matched int

	i, j := 0, 0
	for i < len(a.Nodes) && j < len(b.Nodes) {
		an, bn := a.Nodes[i].NodeID, b.Nodes[j].NodeID
		switch {
		case an == bn:
			attrDist += nodeDistance(a.Nodes[i], b.Nodes[j])
			matched++
			i++
			j++
		case an < bn:
			unmatched++
			i++
		default:
			unmatched++
			j++
		}
	}
	unmatched += (len(a.Nodes) - i) + (len(b.Nodes) - j)

	i, j = 0, 0
	for i < len(a.Conns) && j < len(b.Conns) {
		ac, bc := a.Conns[i], b.Conns[j]
		switch {
		case ac.Src == bc.Src && ac.Dst == bc.Dst:
			attrDist += connDistance(ac, bc)
			matched++
			i++
			j++
		case ac.Src < bc.Src || (ac.Src == bc.Src && ac.Dst < bc.Dst):
			unmatched++
			i++
		default:
			unmatched++
			j++
		}
	}
	unmatched += (len(a.Conns) - i) + (len(b.Conns) - j)

	n := a.NumGenes()
	if b.NumGenes() > n {
		n = b.NumGenes()
	}
	if n == 0 {
		n = 1
	}
	d := cfg.CompatDisjointCoeff * float64(unmatched) / float64(n)
	if matched > 0 {
		d += cfg.CompatWeightCoeff * attrDist / float64(matched)
	}
	return d
}

// slowCompatDistance is the pre-kernel reference implementation: gene
// alignment by per-gene binary search (Genome.Node/Conn/HasNode) over
// both genomes. It is kept as the executable specification of
// CompatDistance — the differential tests pin the merge-join kernel
// bit-identical to this, and the reference speciation path (speciator
// slow mode) runs on it.
func slowCompatDistance(a, b *gene.Genome, cfg *Config) float64 {
	if a.NumGenes() == 0 && b.NumGenes() == 0 {
		return 0
	}
	var unmatched int
	var attrDist float64
	var matched int

	for _, n1 := range a.Nodes {
		if n2, ok := b.Node(n1.NodeID); ok {
			attrDist += nodeDistance(n1, n2)
			matched++
		} else {
			unmatched++
		}
	}
	for _, n2 := range b.Nodes {
		if !a.HasNode(n2.NodeID) {
			unmatched++
		}
	}
	for _, c1 := range a.Conns {
		if c2, ok := b.Conn(c1.Src, c1.Dst); ok {
			attrDist += connDistance(c1, c2)
			matched++
		} else {
			unmatched++
		}
	}
	for _, c2 := range b.Conns {
		if !a.HasConn(c2.Src, c2.Dst) {
			unmatched++
		}
	}

	n := a.NumGenes()
	if b.NumGenes() > n {
		n = b.NumGenes()
	}
	if n == 0 {
		n = 1
	}
	d := cfg.CompatDisjointCoeff * float64(unmatched) / float64(n)
	if matched > 0 {
		d += cfg.CompatWeightCoeff * attrDist / float64(matched)
	}
	return d
}

// nodeDistance is the attribute distance of two homologous node genes
// (neat-python's node gene distance).
func nodeDistance(a, b gene.Gene) float64 {
	d := math.Abs(a.Bias-b.Bias) + math.Abs(a.Response-b.Response)
	if a.Activation != b.Activation {
		d++
	}
	if a.Aggregation != b.Aggregation {
		d++
	}
	return d
}

// connDistance is the attribute distance of two homologous connection
// genes.
func connDistance(a, b gene.Gene) float64 {
	d := math.Abs(a.Weight - b.Weight)
	if a.Enabled != b.Enabled {
		d++
	}
	return d
}

// Species is a niche of structurally similar genomes sharing fitness.
type Species struct {
	ID             int
	Representative *gene.Genome
	Members        []*gene.Genome

	// BestFitness is the best raw fitness the species ever achieved;
	// LastImproved is the generation it last rose — the stagnation
	// inputs.
	BestFitness  float64
	LastImproved int
	Created      int
}

// Stagnant reports whether the species has gone maxStagnation
// generations without improving.
func (s *Species) Stagnant(generation, maxStagnation int) bool {
	return generation-s.LastImproved > maxStagnation
}

// MeanAdjustedFitness returns the fitness-sharing value: the species'
// mean member fitness. Sharing by species size is implicit — a species'
// reproduction quota is proportional to its mean, not its sum, so large
// species do not swamp small ones and young topological innovations
// survive long enough to optimize (the paper's "fitness sharing").
func (s *Species) MeanAdjustedFitness() float64 {
	if len(s.Members) == 0 {
		return 0
	}
	var sum float64
	for _, m := range s.Members {
		sum += m.Fitness
	}
	return sum / float64(len(s.Members))
}

// best returns the fittest member, or nil for an empty species.
func (s *Species) best() *gene.Genome {
	var b *gene.Genome
	for _, m := range s.Members {
		if b == nil || m.Fitness > b.Fitness {
			b = m
		}
	}
	return b
}

// distKey is the distance-memo key: the unordered pair of phenotype
// version stamps. CompatDistance is exactly symmetric (matched
// attribute distances are |a-b| terms summed in ascending key order
// regardless of argument order), so the pair is normalized lo ≤ hi and
// one entry serves both orientations.
type distKey struct{ lo, hi int64 }

func pairKey(a, b int64) distKey {
	if a > b {
		a, b = b, a
	}
	return distKey{lo: a, hi: b}
}

// speciator is the speciation kernel's cross-generation state: the
// version-stamp-keyed distance memo and the reusable scratch of the
// parallel distance pass. It lives on the Population (one per
// population, never serialized — a restored population starts cold,
// which only costs one generation of memo warm-up).
//
// Memo soundness: a phenotype version stamp identifies one exact
// (topology, attributes) gene state — stamps are process-unique, copied
// by Clone and replaced by every mutation (see gene.Genome). Two
// genomes carry the same stamp only when one is an unmodified clone of
// the other, so a distance keyed by the stamp pair can never alias two
// different gene states. Elites and unmodified clones cross generations
// carrying their parent's stamp, which is what makes re-measuring a
// surviving representative against last generation's elite a memo hit.
//
// Eviction is generational: lookups promote entries from the previous
// epoch's map into the current one, and endEpoch discards everything
// not touched for two epochs — the live set (population × species) is
// small, so the memo stays bounded at roughly two generations of pairs.
type speciator struct {
	// workers bounds the parallel distance pass; 0 means GOMAXPROCS.
	// Assignment is always serial regardless — only the pure distance
	// computations fan out.
	workers int
	// slow selects the pre-kernel reference path: serial
	// slowCompatDistance for every pair, no memo, representative refresh
	// by recomputation. The golden-digest differential tests run it
	// against the kernel and require byte-identical populations.
	slow bool

	memo map[distKey]float64 // current-epoch entries
	prev map[distKey]float64 // previous-epoch entries (promotion source)

	// Scratch reused across epochs.
	rows   []float64   // P×S0 distance matrix of the parallel pass
	miss   []int       // rows indices whose pair missed the memo
	dists  [][]float64 // per-species member distances (refresh reuse)
	spares [][]float64 // retired dists rows for reuse
}

// lookup consults the two-generation memo, promoting previous-epoch
// hits into the current epoch.
func (sp *speciator) lookup(k distKey) (float64, bool) {
	if d, ok := sp.memo[k]; ok {
		return d, true
	}
	if d, ok := sp.prev[k]; ok {
		sp.memo[k] = d
		return d, true
	}
	return 0, false
}

// distance returns the memoized compatibility distance between a genome
// and a representative, computing and recording it on a miss. Serial
// use only (assignment pass); the parallel pass pre-fills the memo.
func (sp *speciator) distance(a, b *gene.Genome, cfg *Config) float64 {
	k := pairKey(a.Version(), b.Version())
	if d, ok := sp.lookup(k); ok {
		return d
	}
	d := CompatDistance(a, b, cfg)
	sp.memo[k] = d
	return d
}

// endEpoch rotates the memo generations: entries untouched for two
// epochs are discarded, the retired map's storage is reused.
func (sp *speciator) endEpoch() {
	old := sp.prev
	sp.prev = sp.memo
	clear(old)
	sp.memo = old
}

// resetMemo drops all memoized distances (benchmarks measure the cold
// kernel with it; tests use it to force recomputation).
func (sp *speciator) resetMemo() {
	clear(sp.memo)
	clear(sp.prev)
}

// parallelism resolves the worker count for n independent distance
// computations: the configured cap (GOMAXPROCS when unset — an explicit
// cap is honored as given, so tests can force real fan-out on a
// single-core host; the Runner clamps its cap to GOMAXPROCS before
// handing it down), and not worth fanning out at all below a small
// floor.
func (sp *speciator) parallelism(n int) int {
	w := sp.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	// Each worker should own a meaningful chunk; tiny batches stay
	// serial (goroutine startup would dominate).
	const minChunk = 16
	if max := n / minChunk; w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// speciate partitions genomes into species. Existing species keep their
// identity via representatives; genomes join the first species whose
// representative is within the compatibility threshold, and found new
// species otherwise. Representatives are refreshed to the member closest
// to the previous representative (neat-python semantics).
//
// The kernel splits the pass in two: the P×S0 distance rows against the
// surviving representatives are pure in all inputs and are computed
// up front — memo first, misses in parallel over bounded workers — and
// the assignment walk itself stays serial and order-identical to the
// reference, reading distances from the precomputed rows (distances to
// species founded mid-walk are memoized on demand). Every distance
// recorded during assignment is reused for the representative refresh,
// which the reference recomputed from scratch. Speciation consumes no
// PRNG state and every distance is bit-equal to the reference's, so the
// resulting partition — and everything downstream of it — is
// byte-identical (pinned by TestEpochKernelMatchesReference).
func (sp *speciator) speciate(genomes []*gene.Genome, prev []*Species, cfg *Config, generation int, nextSpeciesID *int) []*Species {
	species := make([]*Species, 0, len(prev))
	for _, s := range prev {
		species = append(species, &Species{
			ID:             s.ID,
			Representative: s.Representative,
			BestFitness:    s.BestFitness,
			LastImproved:   s.LastImproved,
			Created:        s.Created,
		})
	}

	if sp.slow {
		return sp.speciateReference(genomes, species, cfg, generation, nextSpeciesID)
	}
	if sp.memo == nil {
		sp.memo = make(map[distKey]float64)
		sp.prev = make(map[distKey]float64)
	}

	// Distance rows vs the surviving representatives: memo hits fill
	// directly, misses are computed in parallel. Version stamps are
	// assigned (lazily) here, on this goroutine, so the workers only
	// ever read the genomes.
	s0 := len(species)
	rows := sp.rows[:0]
	if cap(rows) < len(genomes)*s0 {
		rows = make([]float64, len(genomes)*s0)
	} else {
		rows = rows[:len(genomes)*s0]
	}
	sp.rows = rows
	miss := sp.miss[:0]
	for gi, g := range genomes {
		vg := g.Version()
		for si, s := range species {
			k := pairKey(vg, s.Representative.Version())
			if d, ok := sp.lookup(k); ok {
				rows[gi*s0+si] = d
			} else {
				miss = append(miss, gi*s0+si)
			}
		}
	}
	sp.miss = miss
	if workers := sp.parallelism(len(miss)); workers > 1 {
		var wg sync.WaitGroup
		chunk := (len(miss) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(miss))
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(part []int) {
				defer wg.Done()
				for _, idx := range part {
					rows[idx] = CompatDistance(genomes[idx/s0], species[idx%s0].Representative, cfg)
				}
			}(miss[lo:hi])
		}
		wg.Wait()
	} else {
		for _, idx := range miss {
			rows[idx] = CompatDistance(genomes[idx/s0], species[idx%s0].Representative, cfg)
		}
	}
	// Install the computed misses serially (workers never touch the
	// memo maps).
	for _, idx := range miss {
		k := pairKey(genomes[idx/s0].Version(), species[idx%s0].Representative.Version())
		sp.memo[k] = rows[idx]
	}

	// Serial assignment, order-identical to the reference: each genome
	// joins the closest in-threshold species, founding a new one
	// otherwise. dists records, per species, each member's distance to
	// the (pre-refresh) representative — the refresh input.
	dists := sp.dists[:0]
	grab := func() []float64 {
		if n := len(sp.spares); n > 0 {
			row := sp.spares[n-1][:0]
			sp.spares = sp.spares[:n-1]
			return row
		}
		return nil
	}
	for range species {
		dists = append(dists, grab())
	}
	for gi, g := range genomes {
		placed := false
		bestIdx, bestDist := -1, math.Inf(1)
		for si, s := range species {
			var d float64
			if si < s0 {
				d = rows[gi*s0+si]
			} else {
				d = sp.distance(g, s.Representative, cfg)
			}
			if d < cfg.CompatThreshold && d < bestDist {
				bestIdx, bestDist = si, d
				placed = true
			}
		}
		if placed {
			species[bestIdx].Members = append(species[bestIdx].Members, g)
			dists[bestIdx] = append(dists[bestIdx], bestDist)
			continue
		}
		*nextSpeciesID++
		species = append(species, &Species{
			ID:             *nextSpeciesID,
			Representative: g,
			Members:        []*gene.Genome{g},
			LastImproved:   generation,
			Created:        generation,
		})
		// The founder's distance to its own representative (itself) is
		// exactly 0 — what the reference's refresh recomputation yields
		// for identical genomes.
		dists = append(dists, append(grab(), 0))
	}

	// Drop species that attracted no members, refresh representatives
	// from the recorded assignment distances (the reference recomputed
	// every pair here), and update stagnation state.
	alive := species[:0]
	for i, s := range species {
		if len(s.Members) == 0 {
			continue
		}
		closest, closestDist := s.Members[0], math.Inf(1)
		for k, m := range s.Members {
			if d := dists[i][k]; d < closestDist {
				closest, closestDist = m, d
			}
		}
		s.Representative = closest
		if b := s.best(); b != nil && b.Fitness > s.BestFitness {
			s.BestFitness = b.Fitness
			s.LastImproved = generation
		}
		alive = append(alive, s)
	}
	// Retire the dists rows into the spare pool for the next epoch.
	sp.spares = sp.spares[:0]
	for _, row := range dists {
		if row != nil {
			sp.spares = append(sp.spares, row)
		}
	}
	sp.dists = dists[:0]
	sp.endEpoch()
	return alive
}

// speciateReference is the pre-kernel speciation loop, verbatim: every
// distance via slowCompatDistance, serial, no memo, and a full
// recomputation pass for the representative refresh. It is the
// executable specification the kernel's differential tests compare
// against byte for byte.
func (sp *speciator) speciateReference(genomes []*gene.Genome, species []*Species, cfg *Config, generation int, nextSpeciesID *int) []*Species {
	for _, g := range genomes {
		placed := false
		bestIdx, bestDist := -1, math.Inf(1)
		for i, s := range species {
			d := slowCompatDistance(g, s.Representative, cfg)
			if d < cfg.CompatThreshold && d < bestDist {
				bestIdx, bestDist = i, d
				placed = true
			}
		}
		if placed {
			species[bestIdx].Members = append(species[bestIdx].Members, g)
			continue
		}
		*nextSpeciesID++
		species = append(species, &Species{
			ID:             *nextSpeciesID,
			Representative: g,
			Members:        []*gene.Genome{g},
			LastImproved:   generation,
			Created:        generation,
		})
	}

	alive := species[:0]
	for _, s := range species {
		if len(s.Members) == 0 {
			continue
		}
		closest, closestDist := s.Members[0], math.Inf(1)
		for _, m := range s.Members {
			d := slowCompatDistance(m, s.Representative, cfg)
			if d < closestDist {
				closest, closestDist = m, d
			}
		}
		s.Representative = closest
		if b := s.best(); b != nil && b.Fitness > s.BestFitness {
			s.BestFitness = b.Fitness
			s.LastImproved = generation
		}
		alive = append(alive, s)
	}
	return alive
}

// speciate is the kernel entry point with the historical free-function
// signature (tests use it); it runs a fresh cold speciator.
func speciate(genomes []*gene.Genome, prev []*Species, cfg *Config, generation int, nextSpeciesID *int) []*Species {
	var sp speciator
	return sp.speciate(genomes, prev, cfg, generation, nextSpeciesID)
}
