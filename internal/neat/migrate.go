package neat

import "repro/internal/gene"

// ReceiveMigrant injects an immigrant genome into the population,
// replacing the current worst member — the island-model migration
// primitive: an island imports a neighbor's champion without growing
// its population. The migrant is cloned and assigned a fresh local
// genome ID (IDs seed episode PRNGs and must stay unique within a
// population's ID stream), so the caller's genome is never aliased and
// the operation is deterministic: the replaced slot is the
// lowest-fitness genome, ties broken by lowest slot index. Returns the
// replaced slot index, or -1 when the population is empty.
//
// The migrant's carried fitness is kept — it only orders the next
// generation's evaluation dispatch; every fitness is re-evaluated
// before selection, so a stale value cannot influence reproduction.
func (p *Population) ReceiveMigrant(g *gene.Genome) int {
	if len(p.Genomes) == 0 {
		return -1
	}
	worst := 0
	for i, cand := range p.Genomes {
		if cand.Fitness < p.Genomes[worst].Fitness {
			worst = i
		}
	}
	m := g.Clone()
	m.ID = p.nextGenomeID
	p.nextGenomeID++
	p.Genomes[worst] = m
	return worst
}
