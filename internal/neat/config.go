// Package neat implements the NEAT neuro-evolution algorithm
// (Stanley & Miikkulainen, GECCO 2002) — the learning algorithm the
// GeneSys hardware accelerates.
//
// NEAT evolves both the topology and the weights of neural networks
// (a TWEANN). A population of genomes starts from minimal
// input↔output topologies; each generation the genomes are scored in an
// environment, grouped into species by structural similarity, protected
// by fitness sharing, and reproduced through crossover and four kinds of
// mutation (perturb, add node, add connection, delete gene) — exactly
// the operation set the EvE processing-element pipeline implements
// (Fig. 3(d) and Fig. 7 of the paper).
//
// The implementation follows the neat-python semantics the paper's
// characterization used (key-based gene alignment, per-species fitness
// apportioning, stagnation) while exposing the per-gene operation
// counters and reproduction traces that drive the hardware models.
package neat

import (
	"fmt"

	"repro/internal/gene"
)

// Config collects every tunable of the algorithm. DefaultConfig returns
// the values used throughout the paper reproduction; the zero value is
// not usable.
type Config struct {
	// PopulationSize is the number of genomes per generation. The paper
	// runs NEAT's classic 150.
	PopulationSize int

	// NumInputs and NumOutputs fix the sensor/actuator interface; the
	// initial population is fully connected input→output with zero
	// weights (Section III-B of the paper).
	NumInputs  int
	NumOutputs int

	// InitialConnection selects how the first generation is wired:
	// "full" (every input to every output, the paper's setup) or
	// "none" (unconnected; connections must evolve).
	InitialConnection string

	// --- Speciation ---

	// CompatThreshold is the compatibility-distance cutoff for species
	// membership.
	CompatThreshold float64
	// CompatDisjointCoeff scales the unmatched-gene term of the
	// compatibility distance.
	CompatDisjointCoeff float64
	// CompatWeightCoeff scales the matching-gene attribute-difference
	// term.
	CompatWeightCoeff float64
	// MaxStagnation is the number of generations a species may go
	// without improving before it is culled.
	MaxStagnation int
	// SpeciesElitism is the minimum number of species protected from
	// stagnation culling.
	SpeciesElitism int

	// --- Reproduction ---

	// Elitism is the number of top genomes copied verbatim into the next
	// generation within each species.
	Elitism int
	// SurvivalThreshold is the fraction of each species allowed to be a
	// parent.
	SurvivalThreshold float64
	// CrossoverRate is the probability a child is produced by two-parent
	// crossover (otherwise a single parent is cloned before mutation).
	CrossoverRate float64
	// MinSpeciesSize floors the offspring apportioned to each species.
	MinSpeciesSize int
	// TournamentSize biases parent picks toward fitter survivors: each
	// parent is the fittest of this many uniform draws from the pool.
	// Size 1 is uniform selection. Fitness-concentrated selection is
	// what produces the paper's genome-level reuse — the fittest parent
	// contributing to tens of children per generation (Fig. 4c) — which
	// the multicast NoC then exploits.
	TournamentSize int

	// --- Mutation: connection weights / node attributes ---

	// WeightMutateRate is the per-gene probability a connection weight
	// is perturbed or replaced.
	WeightMutateRate float64
	// WeightReplaceRate is the sub-probability (within a weight
	// mutation) that the weight is redrawn rather than perturbed.
	WeightReplaceRate float64
	// WeightPerturbPower is the standard deviation of weight
	// perturbations.
	WeightPerturbPower float64
	// WeightInitPower is the standard deviation used when a weight is
	// initialized or replaced.
	WeightInitPower float64
	// BiasMutateRate, BiasPerturbPower control node-bias mutation.
	BiasMutateRate   float64
	BiasPerturbPower float64
	// ResponseMutateRate, ResponsePerturbPower control the node response
	// (gain) attribute.
	ResponseMutateRate   float64
	ResponsePerturbPower float64
	// ActivationMutateRate is the per-node probability of switching the
	// activation function.
	ActivationMutateRate float64
	// AggregationMutateRate is the per-node probability of switching the
	// aggregation function.
	AggregationMutateRate float64
	// EnableMutateRate is the per-connection probability of toggling the
	// enabled flag.
	EnableMutateRate float64

	// --- Mutation: structural ---

	// AddNodeProb is the per-child probability of splitting a connection
	// with a new node.
	AddNodeProb float64
	// AddConnProb is the per-child probability of adding a connection.
	AddConnProb float64
	// DeleteNodeProb is the per-child probability of deleting a hidden
	// node (the Delete Gene engine's node path).
	DeleteNodeProb float64
	// DeleteConnProb is the per-child probability of deleting a
	// connection.
	DeleteConnProb float64
	// MaxDeletedNodes caps node deletions per child — the "threshold
	// amount of nodes previously deleted" check that keeps the genome
	// alive in the Delete Gene engine (Section IV-C3).
	MaxDeletedNodes int

	// CrossoverBias is the probability that each attribute of a matching
	// gene is taken from the fitter parent — the programmable bias input
	// of the crossover engine (Fig. 7). Default 0.5.
	CrossoverBias float64

	// LocalNodeIDs switches new-node id assignment from the global
	// population counter (neat-python semantics, default) to the
	// hardware-faithful "max id in this genome + 1" rule the Add Gene
	// engine implements. Used by the ablation benches.
	LocalNodeIDs bool

	// FeedForwardOnly rejects mutations that would create cycles, so
	// every phenotype stays a DAG (the paper's inference model processes
	// acyclic directed graphs).
	FeedForwardOnly bool
}

// DefaultConfig returns the configuration used for the paper
// reproduction: NEAT's classic population of 150 with neat-python-style
// rates, sized for io inputs and outputs.
func DefaultConfig(numInputs, numOutputs int) Config {
	return Config{
		PopulationSize:    150,
		NumInputs:         numInputs,
		NumOutputs:        numOutputs,
		InitialConnection: "full",

		CompatThreshold:     3.0,
		CompatDisjointCoeff: 1.0,
		CompatWeightCoeff:   0.5,
		MaxStagnation:       15,
		SpeciesElitism:      2,

		Elitism:           2,
		SurvivalThreshold: 0.2,
		CrossoverRate:     0.75,
		MinSpeciesSize:    2,
		TournamentSize:    3,

		WeightMutateRate:      0.8,
		WeightReplaceRate:     0.1,
		WeightPerturbPower:    0.5,
		WeightInitPower:       1.0,
		BiasMutateRate:        0.7,
		BiasPerturbPower:      0.5,
		ResponseMutateRate:    0.1,
		ResponsePerturbPower:  0.1,
		ActivationMutateRate:  0.05,
		AggregationMutateRate: 0.03,
		EnableMutateRate:      0.05,

		AddNodeProb:     0.1,
		AddConnProb:     0.3,
		DeleteNodeProb:  0.05,
		DeleteConnProb:  0.15,
		MaxDeletedNodes: 1,

		CrossoverBias: 0.5,

		FeedForwardOnly: true,
	}
}

// Validate reports configuration errors before a run starts.
func (c Config) Validate() error {
	switch {
	case c.PopulationSize <= 0:
		return fmt.Errorf("neat: population size %d must be positive", c.PopulationSize)
	case c.NumInputs <= 0:
		return fmt.Errorf("neat: need at least one input, have %d", c.NumInputs)
	case c.NumOutputs <= 0:
		return fmt.Errorf("neat: need at least one output, have %d", c.NumOutputs)
	case c.NumInputs+c.NumOutputs > gene.MaxNodeID:
		return fmt.Errorf("neat: %d io nodes exceed the 16-bit hardware id space",
			c.NumInputs+c.NumOutputs)
	case c.InitialConnection != "full" && c.InitialConnection != "none":
		return fmt.Errorf("neat: unknown initial connection scheme %q", c.InitialConnection)
	case c.SurvivalThreshold <= 0 || c.SurvivalThreshold > 1:
		return fmt.Errorf("neat: survival threshold %v outside (0,1]", c.SurvivalThreshold)
	case c.CrossoverRate < 0 || c.CrossoverRate > 1:
		return fmt.Errorf("neat: crossover rate %v outside [0,1]", c.CrossoverRate)
	case c.CompatThreshold <= 0:
		return fmt.Errorf("neat: compatibility threshold %v must be positive", c.CompatThreshold)
	case c.Elitism < 0:
		return fmt.Errorf("neat: elitism %d must be non-negative", c.Elitism)
	}
	return nil
}

// InputIDs returns the node ids reserved for inputs: 0..NumInputs-1.
func (c Config) InputIDs() []int32 {
	ids := make([]int32, c.NumInputs)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// OutputIDs returns the node ids reserved for outputs:
// NumInputs..NumInputs+NumOutputs-1.
func (c Config) OutputIDs() []int32 {
	ids := make([]int32, c.NumOutputs)
	for i := range ids {
		ids[i] = int32(c.NumInputs + i)
	}
	return ids
}
