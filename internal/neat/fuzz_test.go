package neat

import (
	"bytes"
	"testing"
)

// FuzzRestore hardens checkpoint decoding against malformed input:
// Restore must never panic, and anything it accepts must save again
// and restore from that save.
func FuzzRestore(f *testing.F) {
	// Seed corpus: a real checkpoint from a small evolved population,
	// plus structured garbage near the rejection boundaries.
	cfg := DefaultConfig(2, 1)
	cfg.PopulationSize = 8
	p, err := NewPopulation(cfg, 1)
	if err != nil {
		f.Fatal(err)
	}
	for gen := 0; gen < 2; gen++ {
		for i, g := range p.Genomes {
			g.Fitness = float64(i)
		}
		if _, err := p.Epoch(); err != nil {
			f.Fatal(err)
		}
	}
	var seed bytes.Buffer
	if err := p.Save(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("{"))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"config":{"PopulationSize":10},"genomes":[]}`))
	f.Add([]byte(`{"config":{"PopulationSize":10,"NumInputs":2,"NumOutputs":1,` +
		`"InitialConnection":"full","CompatThreshold":3,"SurvivalThreshold":0.2,` +
		`"TournamentSize":3},"genomes":[{"id":1,"nodes":[],"conns":[]}],` +
		`"rng":{"x":0,"y":0,"z":0,"w":0,"v":0,"d":0}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := Restore(bytes.NewReader(data), 7)
		if err != nil {
			return // rejection is fine; panics are not
		}
		var out bytes.Buffer
		if err := q.Save(&out); err != nil {
			t.Fatalf("accepted checkpoint failed to save: %v", err)
		}
		if _, err := Restore(bytes.NewReader(out.Bytes()), 8); err != nil {
			t.Fatalf("re-saved checkpoint failed to restore: %v", err)
		}
	})
}
