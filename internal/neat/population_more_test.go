package neat

import (
	"testing"

	"repro/internal/gene"
)

// TestApportionExactlyPopulation checks the quota normalization across
// skewed fitness distributions.
func TestApportionExactlyPopulation(t *testing.T) {
	cfg := testConfig()
	p, _ := NewPopulation(cfg, 3)
	species := []*Species{
		{ID: 1, Members: manyGenomes(10, 100)},
		{ID: 2, Members: manyGenomes(5, 0.001)},
		{ID: 3, Members: manyGenomes(2, -50)},
	}
	quotas := p.apportion(species)
	total := 0
	for i, q := range quotas {
		if q < cfg.MinSpeciesSize {
			t.Fatalf("species %d quota %d below floor", i, q)
		}
		total += q
	}
	if total != cfg.PopulationSize {
		t.Fatalf("quotas sum to %d, want %d", total, cfg.PopulationSize)
	}
	// The fittest species gets the largest share.
	if quotas[0] <= quotas[2] {
		t.Fatalf("fitness-proportional apportionment broken: %v", quotas)
	}
}

func manyGenomes(n int, fitness float64) []*gene.Genome {
	out := make([]*gene.Genome, n)
	for i := range out {
		g := gene.NewGenome(int64(i))
		g.Fitness = fitness
		out[i] = g
	}
	return out
}

// TestCullPreservesEliteSpecies: even fully stagnant populations keep
// SpeciesElitism species alive.
func TestCullPreservesEliteSpecies(t *testing.T) {
	cfg := testConfig()
	cfg.MaxStagnation = 1
	cfg.SpeciesElitism = 2
	p, _ := NewPopulation(cfg, 5)
	p.Generation = 100 // far beyond every species' LastImproved
	p.Species = []*Species{
		{ID: 1, BestFitness: 5, LastImproved: 0, Members: manyGenomes(3, 5)},
		{ID: 2, BestFitness: 9, LastImproved: 0, Members: manyGenomes(3, 9)},
		{ID: 3, BestFitness: 1, LastImproved: 0, Members: manyGenomes(3, 1)},
	}
	out := p.cullStagnant()
	if len(out) != 2 {
		t.Fatalf("culled to %d species, elitism is 2", len(out))
	}
	// The two fittest survive.
	ids := map[int]bool{}
	for _, s := range out {
		ids[s.ID] = true
	}
	if !ids[2] || !ids[1] {
		t.Fatalf("wrong survivors: %v", ids)
	}
}

// TestEpochSurvivesSingleGenomePool exercises the degenerate pool path
// (one parent, clone-only children).
func TestEpochSurvivesSingleGenomePool(t *testing.T) {
	cfg := testConfig()
	cfg.PopulationSize = 4
	cfg.SurvivalThreshold = 0.01 // pool collapses to a single parent
	p, _ := NewPopulation(cfg, 9)
	for _, g := range p.Genomes {
		g.Fitness = 1
	}
	if _, err := p.Epoch(); err != nil {
		t.Fatal(err)
	}
	if len(p.Genomes) != 4 {
		t.Fatalf("population %d", len(p.Genomes))
	}
}

func BenchmarkEpochCartpoleScale(b *testing.B) {
	cfg := DefaultConfig(4, 1)
	cfg.PopulationSize = 150
	p, err := NewPopulation(cfg, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j, g := range p.Genomes {
			g.Fitness = float64((i + j) % 13)
		}
		if _, err := p.Epoch(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompatDistanceRAMScale(b *testing.B) {
	cfg := DefaultConfig(128, 18)
	p, err := NewPopulation(cfg, 3)
	if err != nil {
		b.Fatal(err)
	}
	a, c := p.Genomes[0], p.Genomes[1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompatDistance(a, c, &cfg)
	}
}
