package neat

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/gene"
)

// Checkpointing: long evolutionary runs (the paper's MountainCar tail
// reached generation 160) need save/restore of the full algorithm
// state — genomes, species bookkeeping, id counters — not just the
// genome list.

// checkpoint is the serialized population state.
type checkpoint struct {
	Config        Config              `json:"config"`
	Generation    int                 `json:"generation"`
	NextGenomeID  int64               `json:"nextGenomeId"`
	NextSpeciesID int                 `json:"nextSpeciesId"`
	NextNodeID    int32               `json:"nextNodeId"`
	Genomes       []*gene.Genome      `json:"genomes"`
	BestEver      *gene.Genome        `json:"bestEver,omitempty"`
	Species       []speciesCheckpoint `json:"species,omitempty"`
}

// speciesCheckpoint captures one species' identity and stagnation
// state; membership is reconstructed by re-speciating on restore.
type speciesCheckpoint struct {
	ID             int          `json:"id"`
	Representative *gene.Genome `json:"representative"`
	BestFitness    float64      `json:"bestFitness"`
	LastImproved   int          `json:"lastImproved"`
	Created        int          `json:"created"`
}

// Save writes the population state as JSON. The PRNG stream is not
// serialized: a restored run continues deterministically from the
// restore seed, not bit-identically to the uninterrupted run.
func (p *Population) Save(w io.Writer) error {
	cp := checkpoint{
		Config:        p.Config,
		Generation:    p.Generation,
		NextGenomeID:  p.nextGenomeID,
		NextSpeciesID: p.nextSpeciesID,
		NextNodeID:    p.ids.next,
		Genomes:       p.Genomes,
		BestEver:      p.BestEver,
	}
	for _, s := range p.Species {
		cp.Species = append(cp.Species, speciesCheckpoint{
			ID:             s.ID,
			Representative: s.Representative,
			BestFitness:    s.BestFitness,
			LastImproved:   s.LastImproved,
			Created:        s.Created,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(cp)
}

// Restore reads a checkpoint and resumes it with a fresh PRNG seeded
// by restoreSeed.
func Restore(r io.Reader, restoreSeed uint64) (*Population, error) {
	var cp checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("neat: restore: %w", err)
	}
	if err := cp.Config.Validate(); err != nil {
		return nil, fmt.Errorf("neat: restore: %w", err)
	}
	if len(cp.Genomes) == 0 {
		return nil, fmt.Errorf("neat: restore: checkpoint has no genomes")
	}
	p, err := NewPopulation(cp.Config, restoreSeed)
	if err != nil {
		return nil, err
	}
	p.Genomes = cp.Genomes
	p.Generation = cp.Generation
	p.nextGenomeID = cp.NextGenomeID
	p.nextSpeciesID = cp.NextSpeciesID
	p.BestEver = cp.BestEver
	if cp.NextNodeID > p.ids.next {
		p.ids.next = cp.NextNodeID
	}
	for _, sc := range cp.Species {
		p.Species = append(p.Species, &Species{
			ID:             sc.ID,
			Representative: sc.Representative,
			BestFitness:    sc.BestFitness,
			LastImproved:   sc.LastImproved,
			Created:        sc.Created,
		})
	}
	for _, g := range p.Genomes {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("neat: restore: %w", err)
		}
	}
	return p, nil
}
