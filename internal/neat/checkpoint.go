package neat

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/gene"
	"repro/internal/rng"
)

// Checkpointing: long evolutionary runs (the paper's MountainCar tail
// reached generation 160) need save/restore of the full algorithm
// state — genomes, species bookkeeping, id counters — not just the
// genome list.

// checkpoint is the serialized population state.
type checkpoint struct {
	Config        Config              `json:"config"`
	Generation    int                 `json:"generation"`
	NextGenomeID  int64               `json:"nextGenomeId"`
	NextSpeciesID int                 `json:"nextSpeciesId"`
	NextNodeID    int32               `json:"nextNodeId"`
	Genomes       []*gene.Genome      `json:"genomes"`
	BestEver      *gene.Genome        `json:"bestEver,omitempty"`
	Species       []speciesCheckpoint `json:"species,omitempty"`
	// RNG is the live PRNG stream at save time. When present, Restore
	// continues the stream bit-identically; older checkpoints without
	// it fall back to re-seeding from the restore seed.
	RNG *rng.State `json:"rng,omitempty"`
}

// speciesCheckpoint captures one species' identity and stagnation
// state; membership is reconstructed by re-speciating on restore.
type speciesCheckpoint struct {
	ID             int          `json:"id"`
	Representative *gene.Genome `json:"representative"`
	BestFitness    float64      `json:"bestFitness"`
	LastImproved   int          `json:"lastImproved"`
	Created        int          `json:"created"`
}

// Save writes the population state as JSON, including the live PRNG
// stream: a restored run continues bit-identically to the
// uninterrupted one, generation for generation.
func (p *Population) Save(w io.Writer) error {
	st := p.rnd.State()
	cp := checkpoint{
		Config:        p.Config,
		Generation:    p.Generation,
		NextGenomeID:  p.nextGenomeID,
		NextSpeciesID: p.nextSpeciesID,
		NextNodeID:    p.ids.next,
		Genomes:       p.Genomes,
		BestEver:      p.BestEver,
		RNG:           &st,
	}
	for _, s := range p.Species {
		cp.Species = append(cp.Species, speciesCheckpoint{
			ID:             s.ID,
			Representative: s.Representative,
			BestFitness:    s.BestFitness,
			LastImproved:   s.LastImproved,
			Created:        s.Created,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(cp)
}

// Restore reads a checkpoint and resumes it. When the checkpoint
// carries a PRNG state (every checkpoint this version writes), the
// stream continues bit-identically and restoreSeed is only the
// fallback for older, stream-less checkpoints.
func Restore(r io.Reader, restoreSeed uint64) (*Population, error) {
	var cp checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("neat: restore: %w", err)
	}
	if err := cp.Config.Validate(); err != nil {
		return nil, fmt.Errorf("neat: restore: %w", err)
	}
	if len(cp.Genomes) == 0 {
		return nil, fmt.Errorf("neat: restore: checkpoint has no genomes")
	}
	// Save always writes exactly PopulationSize genomes; a mismatch
	// means a corrupt or hand-edited checkpoint. Checking before
	// NewPopulation also bounds the work a hostile PopulationSize can
	// demand to the size of the document itself.
	if len(cp.Genomes) != cp.Config.PopulationSize {
		return nil, fmt.Errorf("neat: restore: checkpoint has %d genomes for population size %d",
			len(cp.Genomes), cp.Config.PopulationSize)
	}
	p, err := NewPopulation(cp.Config, restoreSeed)
	if err != nil {
		return nil, err
	}
	if cp.RNG != nil {
		p.rnd.SetState(*cp.RNG)
	}
	p.Genomes = cp.Genomes
	p.Generation = cp.Generation
	p.nextGenomeID = cp.NextGenomeID
	p.nextSpeciesID = cp.NextSpeciesID
	p.BestEver = cp.BestEver
	if cp.NextNodeID > p.ids.next {
		p.ids.next = cp.NextNodeID
	}
	for _, sc := range cp.Species {
		p.Species = append(p.Species, &Species{
			ID:             sc.ID,
			Representative: sc.Representative,
			BestFitness:    sc.BestFitness,
			LastImproved:   sc.LastImproved,
			Created:        sc.Created,
		})
	}
	for _, g := range p.Genomes {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("neat: restore: %w", err)
		}
	}
	return p, nil
}
