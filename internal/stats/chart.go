package stats

import (
	"fmt"
	"math"
	"strings"
)

// Chart renders a numeric series as a fixed-width ASCII line chart —
// the CLI form of the paper's fitness-curve figures (Fig. 2, Fig. 4a).
// Width and height are the plot area in characters; axes and labels
// are added around it.
func Chart(series []float64, width, height int) string {
	if len(series) == 0 {
		return "(no data)\n"
	}
	if width < 8 {
		width = 8
	}
	if height < 3 {
		height = 3
	}
	lo, hi := series[0], series[0]
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		hi = lo + 1
	}

	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", width))
	}
	// Sample the series onto the columns.
	for c := 0; c < width; c++ {
		pos := float64(c) * float64(len(series)-1) / float64(width-1)
		i := int(pos)
		v := series[i]
		if i+1 < len(series) {
			frac := pos - float64(i)
			v = series[i]*(1-frac) + series[i+1]*frac
		}
		row := int(math.Round((hi - v) / (hi - lo) * float64(height-1)))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][c] = '*'
	}

	var sb strings.Builder
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3g ", hi)
		}
		if r == height-1 {
			label = fmt.Sprintf("%7.3g ", lo)
		}
		sb.WriteString(label)
		sb.WriteString("|")
		sb.WriteString(string(line))
		sb.WriteString("\n")
	}
	sb.WriteString("        +")
	sb.WriteString(strings.Repeat("-", width))
	sb.WriteString("\n")
	sb.WriteString(fmt.Sprintf("         0%*s\n", width-1, fmt.Sprintf("gen %d", len(series)-1)))
	return sb.String()
}
