// Package stats provides the small statistics toolkit the
// characterization experiments use: summary statistics and
// logarithmically-bucketed histograms for the distribution plots of
// Fig. 5.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Std        float64
	P25, Median, P75 float64
}

// Summarize computes summary statistics; it returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	variance := sumsq/float64(len(xs)) - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P25 = percentile(sorted, 0.25)
	s.Median = percentile(sorted, 0.5)
	s.P75 = percentile(sorted, 0.75)
	return s
}

// percentile interpolates the q-th percentile of a sorted sample.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.3g p25=%.3g med=%.3g p75=%.3g max=%.3g mean=%.3g±%.3g",
		s.N, s.Min, s.P25, s.Median, s.P75, s.Max, s.Mean, s.Std)
}

// LogHistogram buckets positive samples by order of magnitude with
// BucketsPerDecade subdivisions — the relative-frequency form of the
// Fig. 5 distributions.
type LogHistogram struct {
	BucketsPerDecade int
	counts           map[int]int
	total            int
	zeroOrNeg        int
}

// NewLogHistogram returns a histogram with the given resolution
// (buckets per factor of 10); resolution 1 gives decade buckets.
func NewLogHistogram(bucketsPerDecade int) *LogHistogram {
	if bucketsPerDecade < 1 {
		bucketsPerDecade = 1
	}
	return &LogHistogram{BucketsPerDecade: bucketsPerDecade, counts: map[int]int{}}
}

// Add inserts one sample. Non-positive samples are tallied separately.
func (h *LogHistogram) Add(x float64) {
	h.total++
	if x <= 0 {
		h.zeroOrNeg++
		return
	}
	b := int(math.Floor(math.Log10(x) * float64(h.BucketsPerDecade)))
	h.counts[b]++
}

// Total returns the sample count.
func (h *LogHistogram) Total() int { return h.total }

// Bucket is one histogram bar.
type Bucket struct {
	Lo, Hi float64
	Count  int
	Frac   float64
}

// Buckets returns the non-empty buckets in ascending order.
func (h *LogHistogram) Buckets() []Bucket {
	if h.total == 0 {
		return nil
	}
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]Bucket, 0, len(keys)+1)
	if h.zeroOrNeg > 0 {
		out = append(out, Bucket{Lo: 0, Hi: 0, Count: h.zeroOrNeg,
			Frac: float64(h.zeroOrNeg) / float64(h.total)})
	}
	for _, k := range keys {
		lo := math.Pow(10, float64(k)/float64(h.BucketsPerDecade))
		hi := math.Pow(10, float64(k+1)/float64(h.BucketsPerDecade))
		c := h.counts[k]
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c,
			Frac: float64(c) / float64(h.total)})
	}
	return out
}

// Mode returns the bucket with the highest count.
func (h *LogHistogram) Mode() Bucket {
	var best Bucket
	for _, b := range h.Buckets() {
		if b.Count > best.Count {
			best = b
		}
	}
	return best
}

// Render draws the histogram as fixed-width text bars, the form the
// experiment CLI prints.
func (h *LogHistogram) Render(width int) string {
	bs := h.Buckets()
	if len(bs) == 0 {
		return "(empty)\n"
	}
	maxFrac := 0.0
	for _, b := range bs {
		if b.Frac > maxFrac {
			maxFrac = b.Frac
		}
	}
	var sb strings.Builder
	for _, b := range bs {
		bar := int(b.Frac / maxFrac * float64(width))
		fmt.Fprintf(&sb, "%10.3g-%-10.3g %5.1f%% %s\n",
			b.Lo, b.Hi, b.Frac*100, strings.Repeat("#", bar))
	}
	return sb.String()
}
