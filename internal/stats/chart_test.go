package stats

import (
	"strings"
	"testing"
)

func TestChartEmpty(t *testing.T) {
	if Chart(nil, 40, 8) != "(no data)\n" {
		t.Fatal("empty chart wrong")
	}
}

func TestChartRendersAllColumns(t *testing.T) {
	series := []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	out := Chart(series, 20, 6)
	lines := strings.Split(out, "\n")
	stars := strings.Count(out, "*")
	if stars < 20 {
		t.Fatalf("only %d plot points for 20 columns:\n%s", stars, out)
	}
	// Rising series: the star in the first column sits below the star
	// in the last column.
	firstRow, lastRow := -1, -1
	for r, line := range lines {
		idx := strings.IndexRune(line, '|')
		if idx < 0 {
			continue
		}
		body := line[idx+1:]
		if len(body) > 0 && body[0] == '*' {
			firstRow = r
		}
		if strings.HasSuffix(body, "*") {
			lastRow = r
		}
	}
	if firstRow <= lastRow {
		t.Fatalf("rising series rendered non-rising (first row %d, last row %d):\n%s",
			firstRow, lastRow, out)
	}
}

func TestChartLabelsBounds(t *testing.T) {
	out := Chart([]float64{-2, 5}, 12, 4)
	if !strings.Contains(out, "5") || !strings.Contains(out, "-2") {
		t.Fatalf("bounds missing:\n%s", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	out := Chart([]float64{3, 3, 3}, 10, 4)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series rendered nothing:\n%s", out)
	}
}

func TestChartClampsTinyDims(t *testing.T) {
	out := Chart([]float64{1, 2}, 1, 1)
	if len(out) == 0 {
		t.Fatal("degenerate dims produced nothing")
	}
}
