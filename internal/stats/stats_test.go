package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("bounds wrong: %+v", s)
	}
	if s.Mean != 3 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Median != 3 {
		t.Fatalf("median = %v", s.Median)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-9 {
		t.Fatalf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if s := Summarize(nil); s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Median != 7 || s.Std != 0 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.Median != 5 {
		t.Fatalf("median of {0,10} = %v", s.Median)
	}
	if s.P25 != 2.5 || s.P75 != 7.5 {
		t.Fatalf("quartiles %v/%v", s.P25, s.P75)
	}
}

// Property: min <= p25 <= median <= p75 <= max and min <= mean <= max.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1e6))
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P25 && s.P25 <= s.Median && s.Median <= s.P75 &&
			s.P75 <= s.Max && s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogHistogramBuckets(t *testing.T) {
	h := NewLogHistogram(1)
	for _, x := range []float64{5, 50, 55, 500, 5000, 5500, 5900} {
		h.Add(x)
	}
	bs := h.Buckets()
	if len(bs) != 4 {
		t.Fatalf("bucket count %d: %+v", len(bs), bs)
	}
	if h.Mode().Count != 3 {
		t.Fatalf("mode %+v", h.Mode())
	}
	var fracSum float64
	for _, b := range bs {
		fracSum += b.Frac
		if b.Lo > b.Hi {
			t.Fatalf("inverted bucket %+v", b)
		}
	}
	if math.Abs(fracSum-1) > 1e-9 {
		t.Fatalf("fractions sum to %v", fracSum)
	}
}

func TestLogHistogramNonPositive(t *testing.T) {
	h := NewLogHistogram(1)
	h.Add(0)
	h.Add(-3)
	h.Add(10)
	bs := h.Buckets()
	if bs[0].Count != 2 || bs[0].Lo != 0 {
		t.Fatalf("zero bucket %+v", bs[0])
	}
	if h.Total() != 3 {
		t.Fatalf("total %d", h.Total())
	}
}

func TestLogHistogramResolutionFloor(t *testing.T) {
	h := NewLogHistogram(0)
	if h.BucketsPerDecade != 1 {
		t.Fatalf("resolution not floored: %d", h.BucketsPerDecade)
	}
}

func TestRender(t *testing.T) {
	h := NewLogHistogram(1)
	for i := 0; i < 10; i++ {
		h.Add(100)
	}
	out := h.Render(20)
	if !strings.Contains(out, "#") {
		t.Fatalf("render produced no bars:\n%s", out)
	}
	empty := NewLogHistogram(1)
	if empty.Render(20) != "(empty)\n" {
		t.Fatal("empty render wrong")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if !strings.Contains(s.String(), "n=3") {
		t.Fatalf("summary string %q", s.String())
	}
}
